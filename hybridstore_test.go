package hybridstore

import (
	"math"
	"testing"

	"hybridstore/internal/workload"
)

func TestQuickstartFlow(t *testing.T) {
	db := Open(Options{ChunkRows: 128, HotChunks: 1, DevicePlacement: true})
	s, err := NewSchema(
		Int64Attr("id"),
		CharAttr("name", 8),
		Float64Attr("balance"),
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", s)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	if tbl.Name() != "accounts" || tbl.Schema().Arity() != 3 {
		t.Fatal("metadata broken")
	}

	for i := 0; i < 500; i++ {
		if _, err := tbl.Insert(Record{
			IntValue(int64(i)), CharValue("acct"), FloatValue(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Rows() != 500 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	sum, err := tbl.SumFloat64(2)
	if err != nil || sum != 499*500/2 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	if err := tbl.Update(10, 2, FloatValue(0)); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(10)
	if err != nil || rec[2].F != 0 {
		t.Fatalf("get = %v, %v", rec, err)
	}
	recs, err := tbl.Materialize([]uint64{1, 2, 3})
	if err != nil || len(recs) != 3 {
		t.Fatalf("materialize = %v, %v", recs, err)
	}
	if db.SimulatedSeconds() <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	if db.DeviceFreeMemory() <= 0 {
		t.Fatal("device memory accessor broken")
	}
}

func TestTransactions(t *testing.T) {
	db := Open(Options{})
	tbl, err := db.CreateTable("t", mustSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	tbl.Insert(Record{IntValue(1), CharValue("x"), FloatValue(100)})

	a := tbl.Begin()
	b := tbl.Begin()
	if err := a.Update(0, 2, FloatValue(50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(0, 2, FloatValue(60)); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err == nil {
		t.Fatal("conflicting commit succeeded")
	}
	rec, err := tbl.Get(0)
	if err != nil || rec[2].F != 50 {
		t.Fatalf("get = %v, %v", rec, err)
	}
	// Snapshot read + abort path.
	r := tbl.Begin()
	if _, err := r.Read(0); err != nil {
		t.Fatal(err)
	}
	r.Abort()
}

func TestAdaptAndPlacement(t *testing.T) {
	db := Open(Options{ChunkRows: 64, HotChunks: 1, DevicePlacement: true})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	for i := uint64(0); i < 400; i++ {
		if _, err := tbl.Insert(Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Analytic phase feeds the monitor; at this demo scale the cost-aware
	// advisor keeps the column on the host, so place it explicitly.
	for i := 0; i < 10; i++ {
		if _, err := tbl.SumFloat64(ItemPriceColumn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.PlaceColumn(ItemPriceColumn); err != nil {
		t.Fatal(err)
	}
	if len(tbl.DeviceColumns()) == 0 {
		t.Fatal("price column not placed")
	}
	st := tbl.Stats()
	if st.Rows != 400 || st.Freezes == 0 || st.ColdChunks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Explicit eviction and re-placement.
	if err := tbl.EvictColumn(ItemPriceColumn); err != nil {
		t.Fatal(err)
	}
	if err := tbl.PlaceColumn(ItemPriceColumn); err != nil {
		t.Fatal(err)
	}
	sum, err := tbl.SumFloat64(ItemPriceColumn)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(400)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyMeetsReferenceDesign(t *testing.T) {
	db := Open(Options{ChunkRows: 64, HotChunks: 1, DevicePlacement: true})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	for i := uint64(0); i < 300; i++ {
		tbl.Insert(Item(i))
	}
	// Scan-dominant analytics on the price column plus occasional point
	// reads: the advisor fuses the co-accessed columns and keeps the
	// price column thin.
	for i := 0; i < 30; i++ {
		tbl.SumFloat64(ItemPriceColumn)
	}
	for i := 0; i < 5; i++ {
		tbl.Get(5)
	}
	tbl.Adapt()
	c, err := tbl.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Flexibility.Strong() {
		t.Errorf("flexibility = %v", c.Flexibility)
	}
	if c.Name != "HybridStore" {
		t.Errorf("name = %q", c.Name)
	}
}

func TestCustomerWorkloadReexports(t *testing.T) {
	if CustomerSchema().Arity() != 21 || CustomerSchema().Width() != 96 {
		t.Fatal("customer schema re-export broken")
	}
	if len(Customer(1)) != 21 || len(Item(1)) != 5 {
		t.Fatal("record generators broken")
	}
}

func mustSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(Int64Attr("id"), CharAttr("name", 8), Float64Attr("balance"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrimaryKeyAPI(t *testing.T) {
	db := Open(Options{})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	for i := uint64(0); i < 50; i++ {
		tbl.Insert(Item(i))
	}
	rec, err := tbl.GetByPK(33)
	if err != nil || !rec.Equal(Item(33)) {
		t.Fatalf("GetByPK = %v, %v", rec, err)
	}
	if row, ok := tbl.LookupPK(7); !ok || row != 7 {
		t.Fatalf("LookupPK = %d, %v", row, ok)
	}
	x := tbl.Begin()
	defer x.Abort()
	if _, err := x.ReadByPK(12); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByAPI(t *testing.T) {
	db := Open(Options{ChunkRows: 128, HotChunks: 1})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	for i := uint64(0); i < 300; i++ {
		tbl.Insert(Item(i))
	}
	groups, err := tbl.GroupSumFloat64(1, ItemPriceColumn)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, g := range groups {
		total += g.Sum
	}
	if math.Abs(total-workload.ExpectedItemPriceSum(300)) > 1e-6 {
		t.Fatalf("total = %v", total)
	}
}

func TestPredicateAPI(t *testing.T) {
	db := Open(Options{ChunkRows: 128, HotChunks: 1})
	tbl, err := db.CreateTable("item", ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	const n = 600
	for i := uint64(0); i < n; i++ {
		tbl.Insert(Item(i))
	}
	// An update far outside the generated price domain must surface
	// through the MVCC patch even when every base fragment is pruned.
	if err := tbl.Update(42, ItemPriceColumn, FloatValue(500)); err != nil {
		t.Fatal(err)
	}
	check := func(p FloatPred) {
		t.Helper()
		var wantSum float64
		var wantN int64
		for i := uint64(0); i < n; i++ {
			x := workload.ItemPrice(i)
			if i == 42 {
				x = 500
			}
			if p.Match(x) {
				wantSum += x
				wantN++
			}
		}
		sum, cnt, err := tbl.SumFloat64Where(ItemPriceColumn, p)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != wantN || math.Abs(sum-wantSum) > 1e-9 {
			t.Fatalf("%v: got (%v, %d), want (%v, %d)", p, sum, cnt, wantSum, wantN)
		}
		gotN, err := tbl.CountWhereFloat64(ItemPriceColumn, p)
		if err != nil || gotN != wantN {
			t.Fatalf("%v: count = %d (%v), want %d", p, gotN, err, wantN)
		}
	}
	check(GtFloat(100))         // only the updated outlier
	check(LtFloat(3))           // a sliver of the base domain
	check(BetweenFloat(2, 4.5)) // mid-range
	check(EqFloat(workload.ItemPrice(7)))
	check(BetweenFloat(20, 30)) // provably empty
	if !EqInt(3).Match(3) || LtInt(3).Match(3) || GtInt(3).Match(3) || !BetweenInt(1, 3).Match(3) {
		t.Fatal("int predicate constructors broken")
	}
}
