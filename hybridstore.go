// Package hybridstore is the public face of this repository: a storage
// engine library for hybrid transactional/analytical processing (HTAP)
// on cooperating CPUs and GPUs, reproducing and operationalizing
//
//	Pinnecke, Broneske, Campero Durand, Saake. "Are Databases Fit for
//	Hybrid Workloads on GPUs? A Storage Engine's Perspective." ICDE 2017.
//
// The package exposes the paper's proposed reference engine design
// (internal/core) behind a small API: open a DB, create tables, run
// transactional point operations and analytic scans, let the engine
// adapt its physical layouts — column grouping, NSM/DSM linearization,
// and host/device placement — to the observed workload.
//
// The ten surveyed engines, the taxonomy and classifier, the software
// GPU, and the Figure-2 experiment harness live in internal packages and
// are exercised by the cmd/ tools, the examples/ programs and the
// benchmark suite.
package hybridstore

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/wal"
	"hybridstore/internal/workload"
)

// Re-exported schema vocabulary, so downstream users never import
// internal packages directly.
type (
	// Schema describes a relation's attributes.
	Schema = schema.Schema
	// Attribute describes one column.
	Attribute = schema.Attribute
	// Value is a dynamically-typed field value.
	Value = schema.Value
	// Record is one tuple's values.
	Record = schema.Record
	// Classification is a storage-engine survey row under the paper's
	// taxonomy.
	Classification = taxonomy.Classification
)

// Schema and value constructors, re-exported.
var (
	// NewSchema validates attributes and builds a schema.
	NewSchema = schema.New
	// Int32Attr, Int64Attr, Float64Attr and CharAttr build attributes.
	Int32Attr   = schema.Int32Attr
	Int64Attr   = schema.Int64Attr
	Float64Attr = schema.Float64Attr
	CharAttr    = schema.CharAttr
	// IntValue, Int32Value, FloatValue and CharValue build values.
	IntValue   = schema.IntValue
	Int32Value = schema.Int32Value
	FloatValue = schema.FloatValue
	CharValue  = schema.CharValue
)

// ExecPolicy selects the host threading policy for analytic operators.
type ExecPolicy = exec.Policy

// Execution policies, re-exported from internal/exec.
const (
	// SingleThreaded runs operators sequentially on the calling
	// goroutine (the default).
	SingleThreaded = exec.SingleThreaded
	// MultiThreaded partitions operators blockwise over
	// runtime.GOMAXPROCS(0) fresh goroutines per call.
	MultiThreaded = exec.MultiThreaded
	// MorselDriven executes operators on the process-wide resident
	// worker pool in fixed-size morsels, amortizing scheduling and
	// recycling result buffers across queries.
	MorselDriven = exec.MorselDriven
)

// Options tunes a DB.
type Options struct {
	// ChunkRows is the horizontal chunk capacity (default 1024).
	ChunkRows uint64
	// HotChunks is the number of newest chunks kept in the OLTP region
	// (default 2).
	HotChunks int
	// Affinity is the co-access threshold for column grouping, in (0,1]
	// (default 0.5).
	Affinity float64
	// DevicePlacement enables moving scan-hot columns to the simulated
	// GPU.
	DevicePlacement bool
	// DeviceCache routes cold-region analytic scans through the device
	// fragment cache: column images are shipped once, kept resident, and
	// reused until a write invalidates them, so repeated scans over
	// unchanged data cost zero bus bytes. Independent of DevicePlacement,
	// which moves fragments instead of caching images.
	DeviceCache bool
	// Compress seals side-car compressed images (RLE, dictionary, or
	// frame-of-reference — whichever fits best) of cold numeric columns at
	// the freeze point. Analytic scans over the cold region then evaluate
	// predicates in the compressed domain, and — combined with DeviceCache
	// — ship the compressed image over the bus, so transfer cost and cache
	// footprint shrink by the compression ratio.
	Compress bool
	// Policy is the host execution policy for analytic operators
	// (default SingleThreaded).
	Policy ExecPolicy
	// Devices selects how many simulated cards the platform carries.
	// 0 or 1 keeps the default single device; >= 2 builds a card fleet
	// with hash-sharded fragment placement and routes device-eligible
	// scans through the cross-device scheduler, which fans fragments
	// across all cards (and the host morsel pool) simultaneously.
	// Meaningful together with DeviceCache.
	Devices int
	// Durability tunes write-ahead logging and checkpointing. Consulted
	// only by OpenDir; Open builds a memory-only DB regardless.
	Durability Durability
	// ResultCache enables the cross-request query-result cache: answers
	// to point reads and analytic aggregates are kept stamped with the
	// fragment-version vector they were computed over, and a repeat of
	// the same query over unchanged fragments is served with an
	// O(#fragments) version compare instead of a scan. Invalidation is
	// purely passive — any write bumps a fragment version, the stamp
	// stops matching, and the entry dies on its next probe. Zero Cap
	// leaves caching off.
	ResultCache ResultCacheOptions
}

// ResultCacheOptions tunes the cross-request result cache.
type ResultCacheOptions struct {
	// Cap bounds resident entry bytes; the cache evicts LRU-first above
	// it. Cap <= 0 disables the cache entirely.
	Cap int64
	// TTL optionally expires entries by age even when their stamp still
	// matches. Zero means stamp-only invalidation (recommended: stamps
	// are exact, age adds nothing for correctness).
	TTL time.Duration
}

// DB is an open hybridstore instance: one simulated platform (host
// memory, device memory, calibrated clock) plus the reference engine.
type DB struct {
	env *engine.Env
	eng *core.Engine

	// dir, wal and dur are set only on a DB opened with OpenDir: the
	// durable directory, the shared write-ahead log, and the durability
	// options (for the per-table opt-in list).
	dir string
	wal *wal.Log
	dur Durability

	mu     sync.RWMutex
	tables map[string]*Table
}

// Open creates a DB.
func Open(opts Options) *DB {
	var env *engine.Env
	if opts.Devices >= 2 {
		env = engine.NewEnvDevices(opts.Devices)
	} else {
		env = engine.NewEnv()
	}
	env.ExecPolicy = opts.Policy
	return &DB{
		env: env,
		dur: opts.Durability,
		eng: core.New(env, core.Options{
			ChunkRows:        opts.ChunkRows,
			HotChunks:        opts.HotChunks,
			Affinity:         opts.Affinity,
			DevicePlacement:  opts.DevicePlacement,
			DeviceCache:      opts.DeviceCache,
			Compress:         opts.Compress,
			ResultCacheBytes: opts.ResultCache.Cap,
			ResultCacheTTL:   opts.ResultCache.TTL,
		}),
		tables: make(map[string]*Table),
	}
}

// DeviceCacheStats is a snapshot of the device fragment cache's meters:
// hits, misses, evictions, resident and pinned bytes, live entries.
type DeviceCacheStats = device.FragCacheStats

// DeviceCacheStats returns the device fragment cache's meters, summed
// across the fleet when Options.Devices >= 2. The caches populate only
// when Options.DeviceCache is on; with it off the counts stay zero.
func (db *DB) DeviceCacheStats() DeviceCacheStats {
	s := db.env.Cache.Stats()
	if db.env.Fleet != nil {
		f := db.env.Fleet.CacheStats()
		s.Hits += f.Hits
		s.Misses += f.Misses
		s.Evictions += f.Evictions
		s.DupUploads += f.DupUploads
		s.ResidentBytes += f.ResidentBytes
		s.PinnedBytes += f.PinnedBytes
		s.Entries += f.Entries
	}
	return s
}

// ResultCacheStats is a snapshot of the result cache's meters: lookups,
// hits, misses (stale a subset of misses), evictions, puts, resident
// bytes and entries. Hits + misses always equals lookups.
type ResultCacheStats = rescache.Stats

// ResultCacheStats returns the result cache's meters; all-zero when
// Options.ResultCache left caching off.
func (db *DB) ResultCacheStats() ResultCacheStats {
	if c := db.eng.ResultCache(); c != nil {
		return c.Stats()
	}
	return ResultCacheStats{}
}

// Devices returns the simulated card count: 1 for the default single
// device, the fleet size when Options.Devices configured one.
func (db *DB) Devices() int {
	if db.env.Fleet != nil {
		return db.env.Fleet.N()
	}
	return 1
}

// SimulatedSeconds returns the simulated platform time consumed so far
// (the calibrated model's pricing of all executed work).
func (db *DB) SimulatedSeconds() float64 {
	return db.env.Clock.ElapsedNs() / 1e9
}

// DeviceFreeMemory returns the simulated GPU's free global memory.
func (db *DB) DeviceFreeMemory() int64 { return db.env.GPU.FreeMemory() }

// Table is one hybridstore relation.
type Table struct {
	db  *DB
	t   *core.Table
	e   *core.Engine
	nam string
	// durable marks a table that logs to the DB's write-ahead log and
	// participates in checkpoints.
	durable bool
}

// CreateTable makes an empty table. On a DB opened with OpenDir, a
// table covered by the durability opt-in list logs its creation (and
// from then on every write) before this call acknowledges.
func (db *DB) CreateTable(name string, s *Schema) (*Table, error) {
	t, err := db.eng.Create(name, s)
	if err != nil {
		return nil, fmt.Errorf("hybridstore: creating table %q: %w", name, err)
	}
	tbl := &Table{db: db, t: t.(*core.Table), e: db.eng, nam: name}
	if db.wal != nil && db.durableName(name) {
		lsn, err := db.wal.Append(&wal.Record{Kind: wal.KindCreate, Table: name, Engine: "core", Schema: s})
		if err == nil {
			err = db.wal.Sync(lsn)
		}
		if err != nil {
			tbl.t.Free()
			return nil, fmt.Errorf("hybridstore: logging create of %q: %w", name, err)
		}
		tbl.t.EnableWAL(db.wal)
		tbl.durable = true
	}
	db.mu.Lock()
	db.tables[name] = tbl
	db.mu.Unlock()
	return tbl, nil
}

// Table resolves a table by name, or nil when no such table exists. The
// serving layer uses this registry to bind prepared statements.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// Name returns the table name.
func (t *Table) Name() string { return t.nam }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.t.Schema() }

// Rows returns the row count.
func (t *Table) Rows() uint64 { return t.t.Rows() }

// Insert appends a record and returns its position.
func (t *Table) Insert(rec Record) (uint64, error) { return t.t.Insert(rec) }

// Get materializes the record at the given position.
func (t *Table) Get(row uint64) (Record, error) { return t.t.Get(row) }

// Update overwrites one field through a single-operation transaction.
func (t *Table) Update(row uint64, col int, v Value) error { return t.t.Update(row, col, v) }

// SumFloat64 aggregates a float64 attribute over an MVCC snapshot.
func (t *Table) SumFloat64(col int) (float64, error) { return t.t.SumFloat64(col) }

// Materialize resolves a sorted position list to full records.
func (t *Table) Materialize(positions []uint64) ([]Record, error) {
	return t.t.Materialize(positions)
}

// FloatPred and IntPred are sargable predicates over float64 and int64
// attributes: equality, open ranges and closed intervals. Engines
// evaluate them with specialized fused scan kernels and use per-fragment
// zone maps to skip fragments whose value envelope cannot match.
type (
	FloatPred = exec.Pred[float64]
	IntPred   = exec.Pred[int64]
)

// Predicate constructors. The generic exec constructors are wrapped at
// concrete types so callers never need type arguments.

// EqFloat matches x == v.
func EqFloat(v float64) FloatPred { return exec.Eq(v) }

// LtFloat matches x < v.
func LtFloat(v float64) FloatPred { return exec.Lt(v) }

// GtFloat matches x > v.
func GtFloat(v float64) FloatPred { return exec.Gt(v) }

// BetweenFloat matches lo <= x <= hi.
func BetweenFloat(lo, hi float64) FloatPred { return exec.Between(lo, hi) }

// EqInt matches x == v.
func EqInt(v int64) IntPred { return exec.Eq(v) }

// LtInt matches x < v.
func LtInt(v int64) IntPred { return exec.Lt(v) }

// GtInt matches x > v.
func GtInt(v int64) IntPred { return exec.Gt(v) }

// BetweenInt matches lo <= x <= hi.
func BetweenInt(lo, hi int64) IntPred { return exec.Between(lo, hi) }

// SumFloat64Where computes SELECT SUM(col), COUNT(*) WHERE p over an
// MVCC snapshot with one fused filter+aggregate pass, skipping fragments
// whose zone maps rule the predicate out (device-resident fragments are
// neither transferred nor reduced when pruned).
func (t *Table) SumFloat64Where(col int, p FloatPred) (float64, int64, error) {
	return t.t.SumFloat64Where(col, p)
}

// CountWhereFloat64 computes SELECT COUNT(*) WHERE p with the same
// pruned fused pass.
func (t *Table) CountWhereFloat64(col int, p FloatPred) (int64, error) {
	return t.t.CountWhereFloat64(col, p)
}

// SumFloat64WhereMulti answers one SumFloat64Where per predicate from a
// single shared pass over the column: one MVCC snapshot, one walk of the
// storage, host fragments streamed once for all predicates. Result k is
// exactly SumFloat64Where(col, preds[k]) against that snapshot — the
// serving layer's batching scheduler collapses concurrent compatible
// queries into this call.
func (t *Table) SumFloat64WhereMulti(col int, preds []FloatPred) ([]float64, []int64, error) {
	return t.t.SumFloat64WhereMulti(col, preds)
}

// GroupResult is one group of a grouped aggregation.
type GroupResult = exec.GroupResult

// GroupSumFloat64 computes SELECT keyCol, SUM(valCol), COUNT(*) GROUP BY
// keyCol over an MVCC snapshot. keyCol must be an integer attribute,
// valCol a float64 one; results come back sorted by key.
func (t *Table) GroupSumFloat64(keyCol, valCol int) ([]GroupResult, error) {
	return t.t.GroupSumFloat64(keyCol, valCol)
}

// GroupBySumWhere computes SELECT keyCol, SUM(valCol), COUNT(*) WHERE p
// GROUP BY keyCol over an MVCC snapshot in ONE fused pass: each element
// is filtered and folded straight into per-worker group tables — no
// intermediate selection vector — with zone-pruned fragments never
// touched and compressed cold chunks aggregated in the compressed
// domain. keyCol must be an integer attribute, valCol a float64 one;
// results come back sorted by key.
func (t *Table) GroupBySumWhere(keyCol, valCol int, p FloatPred) ([]GroupResult, error) {
	return t.t.GroupSumFloat64Where(keyCol, valCol, p)
}

// GetByPK answers the paper's query Q1 — SELECT * FROM R WHERE pk = c —
// through the primary-key hash index over attribute 0 (which must be an
// int64; primary keys are immutable once indexed).
func (t *Table) GetByPK(pk int64) (Record, error) { return t.t.GetByPK(pk) }

// LookupPK resolves a primary key to its row position.
func (t *Table) LookupPK(pk int64) (uint64, bool) { return t.t.LookupPK(pk) }

// GetMulti materializes many rows from one MVCC snapshot, bit-identical
// to one Get per row against that snapshot but with one lock
// acquisition and device gathers charged per chunk instead of per row —
// the storage half of the serving layer's point-read fan-in.
func (t *Table) GetMulti(rowIDs []uint64) ([]Record, error) { return t.t.GetMulti(rowIDs) }

// The Cached* methods consult the result cache WITHOUT executing
// anything: ok=false means disabled, unanswerable from the cache, or
// simply absent — run the real query. They are the serving layer's
// pre-admission fast path and are valid linearizations: a hit's
// version stamp matches the live fragment state at probe time.

// CachedGet answers Get(row) from the result cache only.
func (t *Table) CachedGet(row uint64) (Record, bool) { return t.t.CachedGet(row) }

// CachedSumFloat64 answers SumFloat64(col) from the result cache only.
func (t *Table) CachedSumFloat64(col int) (float64, bool) { return t.t.CachedSumFloat64(col) }

// CachedSumFloat64Where answers SumFloat64Where(col, p) from the result
// cache only; CountWhereFloat64 shares the entry (second return).
func (t *Table) CachedSumFloat64Where(col int, p FloatPred) (float64, int64, bool) {
	return t.t.CachedSumFloat64Where(col, p)
}

// CachedGroupBySumWhere answers GroupBySumWhere from the result cache
// only.
func (t *Table) CachedGroupBySumWhere(keyCol, valCol int, p FloatPred) ([]GroupResult, bool) {
	return t.t.CachedGroupSumFloat64Where(keyCol, valCol, p)
}

// Begin opens a snapshot-isolated multi-operation transaction.
func (t *Table) Begin() *Txn { return &Txn{x: t.t.Begin()} }

// Adapt runs the layout advisor once; most applications call it
// periodically or after workload shifts.
func (t *Table) Adapt() (bool, error) { return t.t.Adapt() }

// Merge folds settled MVCC versions back into the base fragments.
func (t *Table) Merge() error { return t.t.Merge() }

// PlaceColumn moves a column's cold fragments to the device explicitly
// (Adapt does this automatically when DevicePlacement is on).
func (t *Table) PlaceColumn(col int) error { return t.t.PlaceColumn(col) }

// EvictColumn moves a column's device fragments back to the host.
func (t *Table) EvictColumn(col int) error { return t.t.EvictColumn(col) }

// DeviceColumns lists the device-resident columns.
func (t *Table) DeviceColumns() []int { return t.t.DeviceColumns() }

// Stats summarizes the table's physical state.
type Stats struct {
	// Rows is the row count.
	Rows uint64
	// HotChunks and ColdChunks count the OLTP and OLAP regions.
	HotChunks, ColdChunks int
	// Freezes and Adapts count hot→cold moves and advisor runs.
	Freezes, Adapts int
	// PendingVersions counts unmerged MVCC versions.
	PendingVersions int
	// DeviceColumns lists device-resident columns.
	DeviceColumns []int
}

// Stats returns the table's physical state.
func (t *Table) Stats() Stats {
	return Stats{
		Rows:            t.t.Rows(),
		HotChunks:       t.t.HotChunks(),
		ColdChunks:      t.t.ColdChunks(),
		Freezes:         t.t.Freezes(),
		Adapts:          t.t.Adapts(),
		PendingVersions: t.t.PendingVersions(),
		DeviceColumns:   t.t.DeviceColumns(),
	}
}

// Classify derives the table's survey row under the paper's taxonomy
// from its live physical structure.
func (t *Table) Classify() (Classification, error) {
	return engine.Classify(t.e, t.t)
}

// Free releases the table's storage.
func (t *Table) Free() { t.t.Free() }

// Txn is a snapshot-isolated transaction.
type Txn struct {
	x *core.Txn
}

// Read returns the record at row under the transaction's snapshot.
func (x *Txn) Read(row uint64) (Record, error) { return x.x.Read(row) }

// Update buffers a field update.
func (x *Txn) Update(row uint64, col int, v Value) error { return x.x.Update(row, col, v) }

// ReadByPK is the transaction-scoped Q1: a snapshot read identified by
// primary key.
func (x *Txn) ReadByPK(pk int64) (Record, error) { return x.x.ReadByPK(pk) }

// Commit installs the buffered writes; it fails with a conflict error if
// another transaction committed first (first committer wins).
func (x *Txn) Commit() error { return x.x.Commit() }

// Abort discards the transaction.
func (x *Txn) Abort() { x.x.Abort() }

// MetricsSnapshot is a point-in-time copy of the process-wide
// observability registry: every counter, gauge and latency histogram the
// library maintains (pool scheduling, operator invocations, device bus
// traffic, transaction outcomes, adaptation decisions), plus the most
// recent structural spans and events.
type MetricsSnapshot = obs.Snapshot

// HistogramStats summarizes one latency histogram inside a
// MetricsSnapshot.
type HistogramStats = obs.HistogramSnapshot

// Metrics returns a consistent snapshot of the process-wide metrics
// registry. Counters are cumulative since process start (or the last
// ResetMetrics); taking a snapshot is cheap and safe to do concurrently
// with running queries.
func Metrics() MetricsSnapshot { return obs.TakeSnapshot() }

// WriteMetricsJSON writes the current metrics snapshot to w as one JSON
// object (an expvar-style dump, convenient for scraping or diffing).
func WriteMetricsJSON(w io.Writer) error { return obs.Default.WriteJSON(w) }

// ResetMetrics zeroes every registered metric and clears the span and
// event rings. Handles stay valid; benchmarks use this to isolate phases.
func ResetMetrics() { obs.Reset() }

// TPC-C-style demo workload, re-exported for examples and quickstarts.
var (
	// ItemSchema and CustomerSchema are the paper's experiment tables.
	ItemSchema = workload.ItemSchema
	// CustomerSchema is the 21-field, 96-byte customer relation.
	CustomerSchema = workload.CustomerSchema
	// Item and Customer generate deterministic records.
	Item = workload.Item
	// Customer generates deterministic customer records.
	Customer = workload.Customer
)

// ItemPriceColumn is the price attribute index of ItemSchema.
const ItemPriceColumn = workload.ItemPriceCol
