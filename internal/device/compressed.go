package device

import (
	"fmt"

	"hybridstore/internal/compress"
)

// Compressed-domain device execution: the scan ships a column's
// compressed image (compress.Column.Marshal) over the bus instead of
// its raw bytes, and the card runs a decode kernel fused with the
// filter+reduction. The software card computes the real answer through
// the compressed-domain operators of internal/compress; the priced cost
// is the decode kernel (compressed bytes read + raw bytes written at
// global bandwidth, perfmodel.DecodeKernelNs) plus the usual dense
// tree-reduction over the decoded column. Three launches are counted:
// decode, grid reduction, final block.

// ReduceSumFloat64WhereCompressed decodes the compressed column image
// resident in buf and reduces SUM/COUNT of the elements inside the
// closed interval [lo, hi].
func (g *GPU) ReduceSumFloat64WhereCompressed(buf *Buffer, lo, hi float64, cfg LaunchConfig) (float64, int64, error) {
	total, n, ns, err := g.reduceSumFloat64WhereCompressed(buf, lo, hi, cfg)
	if err != nil {
		return 0, 0, err
	}
	g.charge(ns)
	return total, n, nil
}

// reduceSumFloat64WhereCompressed runs the decode+reduce and returns its
// priced duration without advancing the clock (streams charge an
// overlapped total at Wait).
func (g *GPU) reduceSumFloat64WhereCompressed(buf *Buffer, lo, hi float64, cfg LaunchConfig) (float64, int64, float64, error) {
	if err := g.validate(cfg, true); err != nil {
		return 0, 0, 0, err
	}
	data, err := buf.bytes()
	if err != nil {
		return 0, 0, 0, err
	}
	col, err := compress.Decode(data)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("device: compressed image: %w", err)
	}
	if col.ElementSize() != 8 {
		return 0, 0, 0, fmt.Errorf("%w: float64 reduction over %d-byte elements", ErrBadLaunch, col.ElementSize())
	}
	total, n, err := col.SumFloat64Where(compress.Pred[float64]{Op: compress.OpBetween, Lo: lo, Hi: hi})
	if err != nil {
		return 0, 0, 0, err
	}
	g.countKernels(3)
	ns := g.prof.DecodeKernelNs(int64(len(data)), int64(col.Len()*col.ElementSize())) +
		g.prof.ReduceKernelNs(int64(col.Len()), col.ElementSize(), col.ElementSize(), cfg.Blocks, cfg.ThreadsPerBlock)
	return total, n, ns, nil
}

// ReduceSumFloat64WhereCompressed enqueues the decode+reduce pipeline on
// the stream; both kernel phases land in the compute lane, so the next
// piece's (compressed) H2D copy overlaps them.
func (s *Stream) ReduceSumFloat64WhereCompressed(buf *Buffer, lo, hi float64, cfg LaunchConfig) (float64, int64, error) {
	total, n, ns, err := s.gpu.reduceSumFloat64WhereCompressed(buf, lo, hi, cfg)
	if err != nil {
		return 0, 0, err
	}
	s.addCompute(ns)
	return total, n, nil
}

// ReduceSumFloat64Compressed is the unfiltered decode+reduce: the whole
// decoded column sums, NaNs included, matching ReduceSumFloat64 over the
// dense image.
func (g *GPU) ReduceSumFloat64Compressed(buf *Buffer, cfg LaunchConfig) (float64, error) {
	total, ns, err := g.reduceSumFloat64Compressed(buf, cfg)
	if err != nil {
		return 0, err
	}
	g.charge(ns)
	return total, nil
}

// reduceSumFloat64Compressed runs the unfiltered decode+reduce and
// returns its priced duration without advancing the clock.
func (g *GPU) reduceSumFloat64Compressed(buf *Buffer, cfg LaunchConfig) (float64, float64, error) {
	if err := g.validate(cfg, true); err != nil {
		return 0, 0, err
	}
	data, err := buf.bytes()
	if err != nil {
		return 0, 0, err
	}
	col, err := compress.Decode(data)
	if err != nil {
		return 0, 0, fmt.Errorf("device: compressed image: %w", err)
	}
	if col.ElementSize() != 8 {
		return 0, 0, fmt.Errorf("%w: float64 reduction over %d-byte elements", ErrBadLaunch, col.ElementSize())
	}
	total, err := col.SumFloat64()
	if err != nil {
		return 0, 0, err
	}
	g.countKernels(3)
	ns := g.prof.DecodeKernelNs(int64(len(data)), int64(col.Len()*col.ElementSize())) +
		g.prof.ReduceKernelNs(int64(col.Len()), col.ElementSize(), col.ElementSize(), cfg.Blocks, cfg.ThreadsPerBlock)
	return total, ns, nil
}

// ReduceSumFloat64Compressed enqueues the unfiltered decode+reduce on
// the stream's compute lane.
func (s *Stream) ReduceSumFloat64Compressed(buf *Buffer, cfg LaunchConfig) (float64, error) {
	total, ns, err := s.gpu.reduceSumFloat64Compressed(buf, cfg)
	if err != nil {
		return 0, err
	}
	s.addCompute(ns)
	return total, nil
}
