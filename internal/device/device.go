// Package device implements the software GPU this reproduction substitutes
// for the paper's CUDA card (DESIGN.md Section 2). It is a real executor —
// kernels actually compute over device-resident buffers, with per-block
// concurrency and a faithful Harris-style tree reduction — wrapped in the
// calibrated timing model of internal/perfmodel, so both the answers and
// the Figure-2 cost shapes (transfer wall, launch overhead, coalescing)
// are reproduced.
//
// The device owns a capacity-limited global-memory allocator (4044 MB in
// the default profile, matching the paper's footnote 4); engines that
// place fragments on the device must handle mem.ErrOutOfMemory, which is
// exactly the condition CoGaDB's "all or nothing" placement reacts to.
package device

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hybridstore/internal/mem"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
)

// Process-wide device counters. Each GPU instance also keeps its own
// per-instance counters (Stats); these registry handles aggregate across
// every simulated card so `htapbench -metrics` sees total bus traffic no
// matter how many Envs a run creates.
var (
	mH2DBytes = obs.NewCounter("device.h2d_bytes")
	mD2HBytes = obs.NewCounter("device.d2h_bytes")
	mH2DOps   = obs.NewCounter("device.h2d_ops")
	mD2HOps   = obs.NewCounter("device.d2h_ops")
	mKernels  = obs.NewCounter("device.kernels")
)

// Device errors.
var (
	// ErrBadLaunch is returned for invalid kernel launch geometry.
	ErrBadLaunch = errors.New("device: bad launch configuration")
	// ErrBufferFreed is returned when using a freed buffer.
	ErrBufferFreed = errors.New("device: buffer already freed")
	// ErrShortBuffer is returned when a copy or kernel would run past the
	// end of a buffer.
	ErrShortBuffer = errors.New("device: access beyond buffer size")
)

// GPU is one simulated graphics card.
type GPU struct {
	prof  perfmodel.DeviceProfile
	alloc *mem.Allocator

	mu    sync.Mutex // guards clock
	clock *perfmodel.Clock

	// Per-instance traffic counters; lock-free (previously int64s under
	// mu, which serialized concurrent kernels on pure bookkeeping).
	h2d     obs.Counter // bytes host→device
	d2h     obs.Counter // bytes device→host
	h2dOps  obs.Counter
	d2hOps  obs.Counter
	kernels obs.Counter

	// card, when non-nil, mirrors traffic onto the per-card registry
	// counters (device.<i>.*) a multi-device Env registers, so metrics
	// attribute bus bytes and launches to individual cards while the
	// process-global device.* totals keep aggregating everything.
	card *cardCounters

	// scratch recycles the float64 working sets of the block reducers
	// (partial slots and shared-memory images) so a steady stream of
	// reductions — the serving layer's warm device-cached scans — runs
	// without per-launch allocation.
	scratchMu sync.Mutex
	scratch   [][]float64
}

// getF64 pops a zeroed scratch slice of length n.
func (g *GPU) getF64(n int) []float64 {
	g.scratchMu.Lock()
	for i := len(g.scratch) - 1; i >= 0; i-- {
		if cap(g.scratch[i]) >= n {
			s := g.scratch[i][:n]
			g.scratch = append(g.scratch[:i], g.scratch[i+1:]...)
			g.scratchMu.Unlock()
			for j := range s {
				s[j] = 0
			}
			return s
		}
	}
	g.scratchMu.Unlock()
	return make([]float64, n)
}

// putF64 recycles a scratch slice. The free list stays small: scratch
// live at any instant is bounded by concurrent launches × (partials +
// per-SM shared images).
func (g *GPU) putF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	g.scratchMu.Lock()
	if len(g.scratch) < 64 {
		g.scratch = append(g.scratch, s[:0])
	}
	g.scratchMu.Unlock()
}

// cardCounters are the registry handles of one indexed card.
type cardCounters struct {
	h2dBytes, d2hBytes, h2dOps, d2hOps, kernels *obs.Counter
}

// New creates a GPU with the given profile, charging simulated time to
// clock. A nil clock disables time accounting (pure functional use).
func New(prof perfmodel.DeviceProfile, clock *perfmodel.Clock) *GPU {
	return &GPU{
		prof:  prof,
		alloc: mem.NewAllocator(mem.Device, prof.GlobalMemory),
		clock: clock,
	}
}

// NewIndexed creates a GPU that additionally mirrors its traffic onto the
// per-card registry counters device.<index>.{h2d_bytes, d2h_bytes,
// h2d_ops, d2h_ops, kernels}. The registry finds-or-creates by name, so
// every Env run reuses one counter set per index and the per-card series
// stay cumulative exactly like the process-global device.* totals.
func NewIndexed(prof perfmodel.DeviceProfile, clock *perfmodel.Clock, index int) *GPU {
	g := New(prof, clock)
	p := fmt.Sprintf("device.%d.", index)
	g.card = &cardCounters{
		h2dBytes: obs.NewCounter(p + "h2d_bytes"),
		d2hBytes: obs.NewCounter(p + "d2h_bytes"),
		h2dOps:   obs.NewCounter(p + "h2d_ops"),
		d2hOps:   obs.NewCounter(p + "d2h_ops"),
		kernels:  obs.NewCounter(p + "kernels"),
	}
	return g
}

// Profile returns the device profile.
func (g *GPU) Profile() perfmodel.DeviceProfile { return g.prof }

// Allocator exposes the device global-memory allocator so storage engines
// can place fragments in device memory.
func (g *GPU) Allocator() *mem.Allocator { return g.alloc }

// FreeMemory returns the unallocated global-memory bytes.
func (g *GPU) FreeMemory() int64 { return g.alloc.Available() }

// charge advances the simulated clock under the device lock.
func (g *GPU) charge(ns float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.clock != nil {
		g.clock.Advance(ns)
	}
}

// TransferStats summarizes bus traffic and kernel launches.
type TransferStats struct {
	HostToDeviceBytes, DeviceToHostBytes int64
	HostToDeviceOps, DeviceToHostOps     int64
	KernelLaunches                       int64
}

// Stats returns a snapshot of the device counters.
func (g *GPU) Stats() TransferStats {
	return TransferStats{
		HostToDeviceBytes: g.h2d.Load(), DeviceToHostBytes: g.d2h.Load(),
		HostToDeviceOps: g.h2dOps.Load(), DeviceToHostOps: g.d2hOps.Load(),
		KernelLaunches: g.kernels.Load(),
	}
}

// countTransfer records n transferred bytes in the given direction on
// both the per-instance and the process-wide counters.
func (g *GPU) countTransfer(n int64, toDevice bool) {
	if toDevice {
		g.h2d.Add(n)
		g.h2dOps.Inc()
		mH2DBytes.Add(n)
		mH2DOps.Inc()
		if g.card != nil {
			g.card.h2dBytes.Add(n)
			g.card.h2dOps.Inc()
		}
		return
	}
	g.d2h.Add(n)
	g.d2hOps.Inc()
	mD2HBytes.Add(n)
	mD2HOps.Inc()
	if g.card != nil {
		g.card.d2hBytes.Add(n)
		g.card.d2hOps.Inc()
	}
}

// countKernels records k kernel launches.
func (g *GPU) countKernels(k int64) {
	g.kernels.Add(k)
	mKernels.Add(k)
	if g.card != nil {
		g.card.kernels.Add(k)
	}
}

// ChargeTransfer accounts for n bytes moved over the bus outside the
// Buffer copy paths — engines that relocate fragment blocks directly
// between host and device memory (placement, eviction) call this so the
// traffic is priced and counted exactly like an explicit CopyToDevice /
// CopyToHost.
func (g *GPU) ChargeTransfer(n int64, toDevice bool) {
	if n <= 0 {
		return
	}
	g.charge(g.prof.TransferNs(n))
	g.countTransfer(n, toDevice)
}

// Buffer is a device-global-memory allocation. Free may race with
// in-flight kernels reading the buffer: the freed flag is atomic, so a
// concurrent kernel either observes the buffer live (and reads bytes the
// block still backs — mem.Block.Free is sync.Once-guarded and only nils
// its slice after the flag flips) or fails cleanly with ErrBufferFreed.
type Buffer struct {
	gpu   *GPU
	block *mem.Block
	// data is the backing store captured once at allocation: kernels read
	// it through bytes() without touching the block again, so a
	// concurrent Free (which nils the block's slice) cannot race with an
	// in-flight kernel's loads.
	data  []byte
	freed atomic.Bool
}

// Alloc reserves n bytes of device global memory.
func (g *GPU) Alloc(n int) (*Buffer, error) {
	b, err := g.alloc.Alloc(n)
	if err != nil {
		return nil, err
	}
	return &Buffer{gpu: g, block: b, data: b.Bytes()}, nil
}

// Len returns the buffer size in bytes.
func (b *Buffer) Len() int {
	if b.freed.Load() {
		return 0
	}
	return len(b.data)
}

// Free releases the buffer's device memory. Idempotent and safe to call
// concurrently with kernels using the buffer (they fail with
// ErrBufferFreed instead of racing).
func (b *Buffer) Free() {
	if b.freed.CompareAndSwap(false, true) {
		b.block.Free()
	}
}

// bytes returns the backing store or an error if freed.
func (b *Buffer) bytes() ([]byte, error) {
	if b.freed.Load() {
		return nil, ErrBufferFreed
	}
	return b.data, nil
}

// CopyToDevice copies src into the buffer at offset off, charging bus time.
func (g *GPU) CopyToDevice(dst *Buffer, off int, src []byte) error {
	ns, err := g.copyToDevice(dst, off, src)
	if err != nil {
		return err
	}
	g.charge(ns)
	return nil
}

// copyToDevice performs the copy and returns its priced duration without
// advancing the clock.
func (g *GPU) copyToDevice(dst *Buffer, off int, src []byte) (float64, error) {
	buf, err := dst.bytes()
	if err != nil {
		return 0, err
	}
	if off < 0 || off+len(src) > len(buf) {
		return 0, fmt.Errorf("%w: copy [%d,%d) into %d-byte buffer", ErrShortBuffer, off, off+len(src), len(buf))
	}
	copy(buf[off:], src)
	g.countTransfer(int64(len(src)), true)
	return g.prof.TransferNs(int64(len(src))), nil
}

// CopyToHost copies the buffer region [off, off+len(dst)) back to the host.
func (g *GPU) CopyToHost(dst []byte, src *Buffer, off int) error {
	ns, err := g.copyToHost(dst, src, off)
	if err != nil {
		return err
	}
	g.charge(ns)
	return nil
}

// copyToHost performs the copy and returns its priced duration without
// advancing the clock.
func (g *GPU) copyToHost(dst []byte, src *Buffer, off int) (float64, error) {
	buf, err := src.bytes()
	if err != nil {
		return 0, err
	}
	if off < 0 || off+len(dst) > len(buf) {
		return 0, fmt.Errorf("%w: copy [%d,%d) from %d-byte buffer", ErrShortBuffer, off, off+len(dst), len(buf))
	}
	copy(dst, buf[off:])
	g.countTransfer(int64(len(dst)), false)
	return g.prof.TransferNs(int64(len(dst))), nil
}

// LaunchConfig is the kernel grid geometry: Blocks thread blocks of
// ThreadsPerBlock threads each, mirroring the paper's configuration of
// "at least 1024 blocks (each having 512 threads)".
type LaunchConfig struct {
	Blocks, ThreadsPerBlock int
}

// DefaultReduceConfig is the launch geometry the paper used for its
// parallel reduction kernel.
func DefaultReduceConfig() LaunchConfig { return LaunchConfig{Blocks: 1024, ThreadsPerBlock: 512} }

// validate checks the launch geometry against device limits; tree
// reductions additionally require a power-of-two block size.
func (g *GPU) validate(cfg LaunchConfig, powerOfTwo bool) error {
	if cfg.Blocks < 1 || cfg.ThreadsPerBlock < 1 {
		return fmt.Errorf("%w: %d blocks × %d threads", ErrBadLaunch, cfg.Blocks, cfg.ThreadsPerBlock)
	}
	if cfg.ThreadsPerBlock > g.prof.MaxThreadsPerBlock {
		return fmt.Errorf("%w: %d threads/block exceeds device limit %d",
			ErrBadLaunch, cfg.ThreadsPerBlock, g.prof.MaxThreadsPerBlock)
	}
	if powerOfTwo && cfg.ThreadsPerBlock&(cfg.ThreadsPerBlock-1) != 0 {
		return fmt.Errorf("%w: tree reduction requires power-of-two block size, got %d",
			ErrBadLaunch, cfg.ThreadsPerBlock)
	}
	return nil
}

// Vec describes a strided element vector in device global memory, the
// device-side counterpart of layout.ColVector: element i lives at
// Base + i*Stride and is Size bytes. The backing store is either a device
// Buffer (Buf) or, for fragments whose blocks were allocated from the
// device allocator, the raw block bytes (Data); exactly one must be set.
type Vec struct {
	Buf    *Buffer
	Data   []byte
	Base   int
	Stride int
	Size   int
	Len    int
}

// check validates the vector against its backing store, enforcing the
// documented invariant that exactly one of Buf and Data is set.
func (v Vec) check() ([]byte, error) {
	buf := v.Data
	if v.Buf != nil {
		if buf != nil {
			return nil, fmt.Errorf("%w: vec sets both Buf and Data", ErrBadLaunch)
		}
		var err error
		if buf, err = v.Buf.bytes(); err != nil {
			return nil, err
		}
	} else if buf == nil {
		return nil, fmt.Errorf("%w: vec has no backing store", ErrShortBuffer)
	}
	if v.Len < 0 || v.Size <= 0 || v.Stride < v.Size || v.Base < 0 {
		return nil, fmt.Errorf("%w: vec base=%d stride=%d size=%d len=%d", ErrShortBuffer, v.Base, v.Stride, v.Size, v.Len)
	}
	if v.Len > 0 {
		last := v.Base + (v.Len-1)*v.Stride + v.Size
		if last > len(buf) {
			return nil, fmt.Errorf("%w: vec ends at %d, buffer is %d bytes", ErrShortBuffer, last, len(buf))
		}
	}
	return buf, nil
}

// ReduceSumFloat64 runs a parallel tree reduction summing v's float64
// elements with the given launch geometry: each block reduces its grid-
// stride slice in shared memory (tree-style, halving the active threads
// per step), then a final single-block pass reduces the per-block
// partials — the structure of the Harris reduction kernel the paper used.
// Blocks execute concurrently.
func (g *GPU) ReduceSumFloat64(v Vec, cfg LaunchConfig) (float64, error) {
	total, ns, err := g.reduceSumFloat64(v, cfg)
	if err != nil {
		return 0, err
	}
	g.charge(ns)
	return total, nil
}

// reduceSumFloat64 runs the reduction and returns its priced duration
// without advancing the clock (streams charge an overlapped total at Wait).
func (g *GPU) reduceSumFloat64(v Vec, cfg LaunchConfig) (float64, float64, error) {
	if err := g.validate(cfg, true); err != nil {
		return 0, 0, err
	}
	buf, err := v.check()
	if err != nil {
		return 0, 0, err
	}
	if v.Size != 8 {
		return 0, 0, fmt.Errorf("%w: float64 reduction over %d-byte elements", ErrBadLaunch, v.Size)
	}
	load := func(i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[v.Base+i*v.Stride:]))
	}
	partials := g.blockReduce(v.Len, cfg, load)
	// Final pass: one block reduces the per-block partials.
	total := treeReduceInPlace(partials)
	g.putF64(partials)
	g.countKernels(2)
	return total, g.prof.ReduceKernelNs(int64(v.Len), v.Size, v.Stride, cfg.Blocks, cfg.ThreadsPerBlock), nil
}

// ReduceSumInt64 is ReduceSumFloat64 for int64 elements.
func (g *GPU) ReduceSumInt64(v Vec, cfg LaunchConfig) (int64, error) {
	total, ns, err := g.reduceSumInt64(v, cfg)
	if err != nil {
		return 0, err
	}
	g.charge(ns)
	return total, nil
}

// reduceSumInt64 runs the reduction and returns its priced duration
// without advancing the clock.
func (g *GPU) reduceSumInt64(v Vec, cfg LaunchConfig) (int64, float64, error) {
	if err := g.validate(cfg, true); err != nil {
		return 0, 0, err
	}
	buf, err := v.check()
	if err != nil {
		return 0, 0, err
	}
	if v.Size != 8 {
		return 0, 0, fmt.Errorf("%w: int64 reduction over %d-byte elements", ErrBadLaunch, v.Size)
	}
	load := func(i int) float64 {
		return float64(int64(binary.LittleEndian.Uint64(buf[v.Base+i*v.Stride:])))
	}
	// Int64 sums in the engines stay well inside float64's exact-integer
	// range; the shared block reducer keeps one code path.
	partials := g.blockReduce(v.Len, cfg, load)
	total := treeReduceInPlace(partials)
	g.putF64(partials)
	g.countKernels(2)
	return int64(total), g.prof.ReduceKernelNs(int64(v.Len), v.Size, v.Stride, cfg.Blocks, cfg.ThreadsPerBlock), nil
}

// ReduceSumFloat64Where fuses a closed-interval filter [lo, hi] into
// the tree reduction: each thread loads its grid-stride elements, keeps
// those inside the interval, and accumulates the running sum and the
// match count in registers; the shared-memory tree then folds the
// (sum, count) pairs exactly like the plain Harris reduction. The fused
// form replaces a select → materialize → reduce chain with the same two
// launches an unfiltered reduction costs, which is the operator-fusion
// win the data-path-fusion literature reports for GPU scans. Strict
// predicate bounds are normalized to closed intervals host-side (see
// exec.ClosedFloat64), keeping the kernel branch-free of modes.
func (g *GPU) ReduceSumFloat64Where(v Vec, lo, hi float64, cfg LaunchConfig) (float64, int64, error) {
	total, n, ns, err := g.reduceSumFloat64Where(v, lo, hi, cfg)
	if err != nil {
		return 0, 0, err
	}
	g.charge(ns)
	return total, n, nil
}

// reduceSumFloat64Where runs the fused filter+reduction and returns its
// priced duration without advancing the clock.
func (g *GPU) reduceSumFloat64Where(v Vec, lo, hi float64, cfg LaunchConfig) (float64, int64, float64, error) {
	if err := g.validate(cfg, true); err != nil {
		return 0, 0, 0, err
	}
	buf, err := v.check()
	if err != nil {
		return 0, 0, 0, err
	}
	if v.Size != 8 {
		return 0, 0, 0, fmt.Errorf("%w: float64 reduction over %d-byte elements", ErrBadLaunch, v.Size)
	}
	load := func(i int) (float64, float64) {
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[v.Base+i*v.Stride:]))
		if lo <= x && x <= hi {
			return x, 1
		}
		return 0, 0
	}
	sums, counts := g.blockReduce2(v.Len, cfg, load)
	total := treeReduceInPlace(sums)
	n := treeReduceInPlace(counts)
	g.putF64(sums)
	g.putF64(counts)
	g.countKernels(2)
	return total, int64(n), g.prof.ReduceKernelNs(int64(v.Len), v.Size, v.Stride, cfg.Blocks, cfg.ThreadsPerBlock), nil
}

// blockReduce2 is blockReduce over (sum, count) pairs: two shared-memory
// images fold side by side, the way a fused kernel carries both
// accumulators in registers.
func (g *GPU) blockReduce2(n int, cfg LaunchConfig, load func(int) (float64, float64)) (sums, counts []float64) {
	sums = g.getF64(cfg.Blocks)
	counts = g.getF64(cfg.Blocks)
	perBlock := (n + cfg.Blocks - 1) / cfg.Blocks
	active := 0
	if perBlock > 0 {
		active = (n + perBlock - 1) / perBlock
	}
	workers := g.prof.SMs
	if workers > active {
		workers = active
	}
	// SM-worker model: the hardware runs SMs in parallel and
	// time-slices blocks over them, so launch one goroutine per SM and
	// let each pull block indices — per-block results are identical to
	// a goroutine-per-block launch, but the shared-memory images are
	// reused across a worker's blocks instead of reallocated.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sharedS := g.getF64(cfg.ThreadsPerBlock)
			sharedC := g.getF64(cfg.ThreadsPerBlock)
			defer g.putF64(sharedS)
			defer g.putF64(sharedC)
			for {
				b := int(next.Add(1)) - 1
				if b >= active {
					return
				}
				begin := b * perBlock
				end := begin + perBlock
				if end > n {
					end = n
				}
				for t := 0; t < cfg.ThreadsPerBlock; t++ {
					var accS, accC float64
					for i := begin + t; i < end; i += cfg.ThreadsPerBlock {
						s, c := load(i)
						accS += s
						accC += c
					}
					sharedS[t], sharedC[t] = accS, accC
				}
				for s := cfg.ThreadsPerBlock / 2; s > 0; s >>= 1 {
					for t := 0; t < s; t++ {
						sharedS[t] += sharedS[t+s]
						sharedC[t] += sharedC[t+s]
					}
				}
				sums[b], counts[b] = sharedS[0], sharedC[0]
			}
		}()
	}
	wg.Wait()
	return sums, counts
}

// blockReduce computes per-block partial sums concurrently. Each block b
// owns the grid-stride element range and reduces it tree-style over a
// shared-memory image of ThreadsPerBlock slots.
func (g *GPU) blockReduce(n int, cfg LaunchConfig, load func(int) float64) []float64 {
	partials := g.getF64(cfg.Blocks)
	perBlock := (n + cfg.Blocks - 1) / cfg.Blocks
	active := 0
	if perBlock > 0 {
		active = (n + perBlock - 1) / perBlock
	}
	// One worker per SM, blocks time-sliced over them (see
	// blockReduce2): identical per-block partials, reused shared
	// images.
	workers := g.prof.SMs
	if workers > active {
		workers = active
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Shared-memory image: each thread t accumulates elements
			// begin+t, begin+t+T, ... then the tree reduction folds the
			// T slots.
			shared := g.getF64(cfg.ThreadsPerBlock)
			defer g.putF64(shared)
			for {
				b := int(next.Add(1)) - 1
				if b >= active {
					return
				}
				begin := b * perBlock
				end := begin + perBlock
				if end > n {
					end = n
				}
				for t := 0; t < cfg.ThreadsPerBlock; t++ {
					var acc float64
					for i := begin + t; i < end; i += cfg.ThreadsPerBlock {
						acc += load(i)
					}
					shared[t] = acc
				}
				for s := cfg.ThreadsPerBlock / 2; s > 0; s >>= 1 {
					for t := 0; t < s; t++ {
						shared[t] += shared[t+s]
					}
				}
				partials[b] = shared[0]
			}
		}()
	}
	wg.Wait()
	return partials
}

// treeReduce folds a slice pairwise, mirroring the final one-block pass.
func treeReduce(xs []float64) float64 {
	return treeReduceInPlace(append([]float64(nil), xs...))
}

// treeReduceInPlace is treeReduce over a buffer the caller owns — the
// reducers fold their recycled partial slots without a defensive copy.
func treeReduceInPlace(buf []float64) float64 {
	for len(buf) > 1 {
		half := (len(buf) + 1) / 2
		for i := 0; i+half < len(buf); i++ {
			buf[i] += buf[i+half]
		}
		buf = buf[:half]
	}
	if len(buf) == 0 {
		return 0
	}
	return buf[0]
}

// Gather copies the records at the given positions (each recordWidth
// bytes, record i at i*recordWidth) from the buffer into a host slice,
// charging gather-kernel plus result-transfer time. It is the device-side
// materialization primitive.
func (g *GPU) Gather(src *Buffer, recordWidth int, positions []int) ([]byte, error) {
	buf, err := src.bytes()
	if err != nil {
		return nil, err
	}
	if recordWidth <= 0 {
		return nil, fmt.Errorf("%w: record width %d", ErrBadLaunch, recordWidth)
	}
	out := make([]byte, len(positions)*recordWidth)
	for i, p := range positions {
		off := p * recordWidth
		if p < 0 || off+recordWidth > len(buf) {
			return nil, fmt.Errorf("%w: record %d at %d", ErrShortBuffer, p, off)
		}
		copy(out[i*recordWidth:], buf[off:off+recordWidth])
	}
	g.countKernels(1)
	g.countTransfer(int64(len(out)), false)
	n := int64(src.Len() / recordWidth)
	// One charge for the whole operation, priced through OverlapNs like
	// the stream paths. The synchronous call has no pipeline (stages=1),
	// so kernel and result transfer serialize — the same total the two
	// separate charges produced, now symmetric with Scatter's single
	// combined price.
	g.charge(g.prof.OverlapNs(
		g.prof.TransferNs(int64(len(out))),
		g.prof.GatherKernelNs(int64(len(positions)), n, recordWidth), 1))
	return out, nil
}

// Scatter writes vals[i] (elemSize bytes each, concatenated) to element
// positions[i] of the strided vector v. It is the device-side bulk-update
// primitive GPUTx's transaction batches compile into. The value bytes
// travel host→device before the kernel runs, so the call counts and
// prices the bus crossing exactly like CopyToDevice (the D2H mirror of
// what Gather charges for its result delivery).
func (g *GPU) Scatter(v Vec, positions []int, vals []byte) error {
	ns, err := g.scatter(v, positions, vals)
	if err != nil {
		return err
	}
	g.charge(ns)
	return nil
}

// scatter performs the scatter and returns its priced duration without
// advancing the clock (streams charge an overlapped total at Wait).
func (g *GPU) scatter(v Vec, positions []int, vals []byte) (float64, error) {
	buf, err := v.check()
	if err != nil {
		return 0, err
	}
	if len(vals) != len(positions)*v.Size {
		return 0, fmt.Errorf("%w: %d values bytes for %d positions of size %d",
			ErrShortBuffer, len(vals), len(positions), v.Size)
	}
	for i, p := range positions {
		if p < 0 || p >= v.Len {
			return 0, fmt.Errorf("%w: scatter position %d of %d", ErrShortBuffer, p, v.Len)
		}
		copy(buf[v.Base+p*v.Stride:v.Base+p*v.Stride+v.Size], vals[i*v.Size:(i+1)*v.Size])
	}
	g.countKernels(1)
	g.countTransfer(int64(len(vals)), true)
	return g.prof.TransferNs(int64(len(vals))) +
		g.prof.ScatterKernelNs(int64(len(positions)), v.Size), nil
}
