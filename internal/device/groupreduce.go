package device

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"hybridstore/internal/compress"
)

// Fused filter+group-by kernels: the device-side leaf of the fused
// predicate→group-by pipeline. One launch sweeps the key and value
// columns together, tests each value against the closed interval
// [lo, hi], and folds matches into per-SM shared-memory group tables
// that merge before the kernel retires; the merged group table is the
// only thing that crosses the bus back — one D2H per call, priced by
// perfmodel.GroupKernelNs + TransferNs. This replaces the
// select→materialize-positions→aggregate chain (two launches plus an
// intermediate position-list round trip) with exactly one launch and
// one result transfer per fragment.

// GroupPartial is one group of a device grouped aggregation, the wire
// format of the group-table D2H (24 bytes per group: key, sum, count).
type GroupPartial struct {
	// Key is the grouping value (int64-widened).
	Key int64
	// Sum is the aggregated float64 total of matching elements.
	Sum float64
	// Count is the number of matching elements in the group.
	Count int64
}

// groupPartialBytes is the D2H wire size of one group-table entry.
const groupPartialBytes = 24

// checkGroupVecs validates the aligned key/value device vectors.
func checkGroupVecs(keys, vals Vec) (kbuf, vbuf []byte, err error) {
	kbuf, err = keys.check()
	if err != nil {
		return nil, nil, err
	}
	vbuf, err = vals.check()
	if err != nil {
		return nil, nil, err
	}
	if vals.Size != 8 {
		return nil, nil, fmt.Errorf("%w: float64 grouped reduction over %d-byte elements", ErrBadLaunch, vals.Size)
	}
	if keys.Size != 8 && keys.Size != 4 {
		return nil, nil, fmt.Errorf("%w: group key of %d bytes", ErrBadLaunch, keys.Size)
	}
	if keys.Len != vals.Len {
		return nil, nil, fmt.Errorf("%w: %d keys vs %d values", ErrBadLaunch, keys.Len, vals.Len)
	}
	return kbuf, vbuf, nil
}

// GroupReduceSumFloat64Where runs the fused filter+hash-aggregate
// kernel over aligned key/value vectors and returns the merged group
// table sorted by key. Exactly one kernel launch and one D2H (the group
// table) are counted and priced.
func (g *GPU) GroupReduceSumFloat64Where(keys, vals Vec, lo, hi float64, cfg LaunchConfig) ([]GroupPartial, error) {
	groups, kernelNs, d2hNs, err := g.groupReduceSumFloat64Where(keys, vals, lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	g.charge(kernelNs + d2hNs)
	return groups, nil
}

// groupReduceSumFloat64Where runs the fused kernel and returns the
// priced (kernel, D2H) durations without advancing the clock — streams
// split them across their compute and transfer lanes.
func (g *GPU) groupReduceSumFloat64Where(keys, vals Vec, lo, hi float64, cfg LaunchConfig) ([]GroupPartial, float64, float64, error) {
	if err := g.validate(cfg, false); err != nil {
		return nil, 0, 0, err
	}
	kbuf, vbuf, err := checkGroupVecs(keys, vals)
	if err != nil {
		return nil, 0, 0, err
	}
	table := make(map[int64]*GroupPartial)
	var matched int64
	key8 := keys.Size == 8
	kOff, vOff := keys.Base, vals.Base
	// Ascending element order keeps per-group float accumulation
	// bit-identical to the host fused kernel's.
	for i := 0; i < vals.Len; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(vbuf[vOff:]))
		if lo <= x && x <= hi {
			var key int64
			if key8 {
				key = int64(binary.LittleEndian.Uint64(kbuf[kOff:]))
			} else {
				key = int64(int32(binary.LittleEndian.Uint32(kbuf[kOff:])))
			}
			if gr, ok := table[key]; ok {
				gr.Sum += x
				gr.Count++
			} else {
				table[key] = &GroupPartial{Key: key, Sum: x, Count: 1}
			}
			matched++
		}
		kOff += keys.Stride
		vOff += vals.Stride
	}
	groups := sortedGroups(table)
	g.countKernels(1)
	resultBytes := int64(len(groups)) * groupPartialBytes
	g.countTransfer(resultBytes, false)
	kernelNs := g.prof.GroupKernelNs(int64(vals.Len), matched, vals.Size, vals.Stride, cfg.Blocks, cfg.ThreadsPerBlock)
	return groups, kernelNs, g.prof.TransferNs(resultBytes), nil
}

// GroupReduceSumFloat64Where enqueues the fused grouped kernel on the
// stream: the launch lands in the compute lane, the group-table D2H in
// the transfer lane, so the next fragment's upload overlaps both.
func (s *Stream) GroupReduceSumFloat64Where(keys, vals Vec, lo, hi float64, cfg LaunchConfig) ([]GroupPartial, error) {
	groups, kernelNs, d2hNs, err := s.gpu.groupReduceSumFloat64Where(keys, vals, lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	s.addCompute(kernelNs)
	s.addTransfer(d2hNs)
	return groups, nil
}

// GroupReduceSumFloat64WhereCompressed is the fused kernel over a
// compressed value image resident in buf (keys stay a raw device
// vector): decode, filter and hash-aggregate fuse into the SAME single
// launch — the decode cost is added to the kernel price, but no dense
// scratch column round-trips and the launch count stays one.
func (g *GPU) GroupReduceSumFloat64WhereCompressed(keys Vec, buf *Buffer, lo, hi float64, cfg LaunchConfig) ([]GroupPartial, error) {
	groups, kernelNs, d2hNs, err := g.groupReduceSumFloat64WhereCompressed(keys, buf, lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	g.charge(kernelNs + d2hNs)
	return groups, nil
}

// groupReduceSumFloat64WhereCompressed runs the fused decode+group
// kernel and returns the priced (kernel, D2H) durations without
// advancing the clock.
func (g *GPU) groupReduceSumFloat64WhereCompressed(keys Vec, buf *Buffer, lo, hi float64, cfg LaunchConfig) ([]GroupPartial, float64, float64, error) {
	if err := g.validate(cfg, false); err != nil {
		return nil, 0, 0, err
	}
	kbuf, err := keys.check()
	if err != nil {
		return nil, 0, 0, err
	}
	if keys.Size != 8 && keys.Size != 4 {
		return nil, 0, 0, fmt.Errorf("%w: group key of %d bytes", ErrBadLaunch, keys.Size)
	}
	data, err := buf.bytes()
	if err != nil {
		return nil, 0, 0, err
	}
	col, err := compress.Decode(data)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("device: compressed image: %w", err)
	}
	if col.ElementSize() != 8 {
		return nil, 0, 0, fmt.Errorf("%w: float64 grouped reduction over %d-byte elements", ErrBadLaunch, col.ElementSize())
	}
	if col.Len() != keys.Len {
		return nil, 0, 0, fmt.Errorf("%w: %d keys vs %d compressed values", ErrBadLaunch, keys.Len, col.Len())
	}
	key8 := keys.Size == 8
	keyAt := func(i int) int64 {
		off := keys.Base + i*keys.Stride
		if key8 {
			return int64(binary.LittleEndian.Uint64(kbuf[off:]))
		}
		return int64(int32(binary.LittleEndian.Uint32(kbuf[off:])))
	}
	table := make(map[int64]*GroupPartial)
	var matched int64
	err = col.GroupSumFloat64Where(compress.Pred[float64]{Op: compress.OpBetween, Lo: lo, Hi: hi}, keyAt,
		func(key int64, v float64) {
			if gr, ok := table[key]; ok {
				gr.Sum += v
				gr.Count++
			} else {
				table[key] = &GroupPartial{Key: key, Sum: v, Count: 1}
			}
			matched++
		})
	if err != nil {
		return nil, 0, 0, err
	}
	groups := sortedGroups(table)
	g.countKernels(1)
	resultBytes := int64(len(groups)) * groupPartialBytes
	g.countTransfer(resultBytes, false)
	kernelNs := g.prof.DecodeKernelNs(int64(len(data)), int64(col.Len()*col.ElementSize())) +
		g.prof.GroupKernelNs(int64(col.Len()), matched, col.ElementSize(), col.ElementSize(), cfg.Blocks, cfg.ThreadsPerBlock)
	return groups, kernelNs, g.prof.TransferNs(resultBytes), nil
}

// GroupReduceSumFloat64WhereCompressed enqueues the fused
// decode+group kernel on the stream's lanes.
func (s *Stream) GroupReduceSumFloat64WhereCompressed(keys Vec, buf *Buffer, lo, hi float64, cfg LaunchConfig) ([]GroupPartial, error) {
	groups, kernelNs, d2hNs, err := s.gpu.groupReduceSumFloat64WhereCompressed(keys, buf, lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	s.addCompute(kernelNs)
	s.addTransfer(d2hNs)
	return groups, nil
}

// sortedGroups flattens a group table sorted by key.
func sortedGroups(table map[int64]*GroupPartial) []GroupPartial {
	out := make([]GroupPartial, 0, len(table))
	for _, gr := range table {
		out = append(out, *gr)
	}
	slices.SortFunc(out, func(a, b GroupPartial) int { return cmp.Compare(a.Key, b.Key) })
	return out
}
