package device

import (
	"math"
	"testing"
)

// streamFixture uploads n floats synchronously (so the stream lanes start
// empty) and returns the device vector.
func streamFixture(t *testing.T, g *GPU, n int) (*Buffer, Vec) {
	t.Helper()
	buf, v, err := fillFloats(g, n, 8, func(i int) float64 { return float64(i % 13) })
	if err != nil {
		t.Fatal(err)
	}
	return buf, v
}

func TestStreamChargesOverlapNotSum(t *testing.T) {
	g, clk := newGPU()
	n := 1 << 20
	buf, v := streamFixture(t, g, n)
	defer buf.Free()

	host := make([]byte, n*8)
	s := g.NewStream()
	clk.Reset()
	if err := s.CopyToDevice(buf, 0, host); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReduceSumFloat64(v, DefaultReduceConfig()); err != nil {
		t.Fatal(err)
	}
	if clk.ElapsedNs() != 0 {
		t.Fatalf("enqueue charged %.0fns before Wait", clk.ElapsedNs())
	}
	tr, cp := s.Lanes()
	if tr <= 0 || cp <= 0 {
		t.Fatalf("lanes = (%.0f, %.0f), want both positive", tr, cp)
	}
	s.Wait()
	want := g.Profile().OverlapNs(tr, cp, DefaultStreamStages)
	if math.Abs(clk.ElapsedNs()-want) > 1 {
		t.Errorf("Wait charged %.0fns, want overlap %.0fns", clk.ElapsedNs(), want)
	}
	if want >= tr+cp {
		t.Errorf("overlap %.0fns did not beat serial %.0fns", want, tr+cp)
	}
}

func TestStreamDepthOneMatchesSynchronous(t *testing.T) {
	g, clk := newGPU()
	n := 100_000
	buf, v := streamFixture(t, g, n)
	defer buf.Free()

	s := g.NewStreamDepth(1)
	clk.Reset()
	if err := s.CopyToDevice(buf, 0, make([]byte, n*8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReduceSumFloat64(v, DefaultReduceConfig()); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	tr, cp := s.Lanes()
	if math.Abs(clk.ElapsedNs()-(tr+cp)) > 1 {
		t.Errorf("depth-1 stream charged %.0fns, want serial %.0fns", clk.ElapsedNs(), tr+cp)
	}
}

func TestStreamWaitIsIdempotent(t *testing.T) {
	g, clk := newGPU()
	buf, v := streamFixture(t, g, 50_000)
	defer buf.Free()

	s := g.NewStream()
	if _, err := s.ReduceSumFloat64(v, LaunchConfig{Blocks: 16, ThreadsPerBlock: 64}); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	first := clk.ElapsedNs()
	s.Wait()
	s.Wait()
	if clk.ElapsedNs() != first {
		t.Errorf("repeated Wait moved the clock: %.0f -> %.0f", first, clk.ElapsedNs())
	}
}

func TestStreamEventChargesPrefixOnly(t *testing.T) {
	g, clk := newGPU()
	buf, v := streamFixture(t, g, 200_000)
	defer buf.Free()

	s := g.NewStream()
	if _, err := s.ReduceSumFloat64(v, DefaultReduceConfig()); err != nil {
		t.Fatal(err)
	}
	e := s.Record()
	if err := s.CopyToDevice(buf, 0, make([]byte, 200_000*8)); err != nil {
		t.Fatal(err)
	}

	clk.Reset()
	s.WaitEvent(e)
	prefix := g.Profile().OverlapNs(e.transferNs, e.computeNs, DefaultStreamStages)
	if math.Abs(clk.ElapsedNs()-prefix) > 1 {
		t.Errorf("WaitEvent charged %.0fns, want prefix %.0fns", clk.ElapsedNs(), prefix)
	}

	s.Wait()
	tr, cp := s.Lanes()
	total := g.Profile().OverlapNs(tr, cp, DefaultStreamStages)
	if math.Abs(clk.ElapsedNs()-total) > 1 {
		t.Errorf("Wait after event charged to %.0fns, want %.0fns", clk.ElapsedNs(), total)
	}

	// An event from before the settle charges nothing more, and a foreign
	// stream's event is ignored outright.
	before := clk.ElapsedNs()
	s.WaitEvent(e)
	other := g.NewStream()
	other.WaitEvent(e)
	if clk.ElapsedNs() != before {
		t.Errorf("stale/foreign event moved the clock: %.0f -> %.0f", before, clk.ElapsedNs())
	}
}

func TestStreamScatterSplitsLanes(t *testing.T) {
	g, _ := newGPU()
	buf, v := streamFixture(t, g, 10_000)
	defer buf.Free()

	s := g.NewStream()
	positions := []int{1, 5, 9, 4096}
	vals := make([]byte, len(positions)*8)
	if err := s.Scatter(v, positions, vals); err != nil {
		t.Fatal(err)
	}
	tr, cp := s.Lanes()
	wantTransfer := g.Profile().TransferNs(int64(len(vals)))
	if math.Abs(tr-wantTransfer) > 1 {
		t.Errorf("transfer lane %.0fns, want value-shipping cost %.0fns", tr, wantTransfer)
	}
	if cp <= 0 {
		t.Errorf("compute lane %.0fns, want positive kernel share", cp)
	}
}

func TestStreamResultsMatchSynchronous(t *testing.T) {
	g, _ := newGPU()
	buf, v := streamFixture(t, g, 30_000)
	defer buf.Free()

	want, err := g.ReduceSumFloat64(v, DefaultReduceConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := g.NewStream()
	got, err := s.ReduceSumFloat64(v, DefaultReduceConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Wait()
	if got != want {
		t.Errorf("stream reduce = %v, sync reduce = %v", got, want)
	}
}
