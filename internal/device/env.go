package device

import (
	"fmt"
	"sync"

	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
)

// Card is one member of a multi-device Env: a GPU with its own allocator
// and fragment cache, charging its work to a private lane clock. Lane time
// folds into the platform's shared clock either serially (Sync, for
// synchronous single-card use) or as the maximum across concurrently
// running lanes (Env.SettleMax, the cross-device scheduler's accounting).
type Card struct {
	env   *Env
	index int
	gpu   *GPU
	cache *FragCache
	lane  *perfmodel.Clock

	// synced is the lane watermark already folded into the shared clock;
	// guarded by env.mu.
	synced float64
}

// Index returns the card's position in the fleet.
func (c *Card) Index() int { return c.index }

// GPU returns the card's device.
func (c *Card) GPU() *GPU { return c.gpu }

// Cache returns the card's fragment cache.
func (c *Card) Cache() *FragCache { return c.cache }

// Lane returns the card's private lane clock.
func (c *Card) Lane() *perfmodel.Clock { return c.lane }

// Sync folds the card's un-synced lane time into the shared clock
// serially — the accounting for synchronous use of one card outside the
// cross-device scheduler (e.g. a transaction batch that runs on exactly
// one card while nothing else overlaps it).
func (c *Card) Sync() {
	c.env.mu.Lock()
	d := c.lane.ElapsedNs() - c.synced
	c.synced = c.lane.ElapsedNs()
	c.env.mu.Unlock()
	if c.env.shared != nil {
		c.env.shared.Advance(d)
	}
}

// Mark returns the card's current lane position, for callers that want to
// measure a lane delta themselves (tests, panels).
func (c *Card) Mark() float64 { return c.lane.ElapsedNs() }

// Env is a fleet of N simulated cards sharing one platform clock. Each
// card owns its allocator, fragment cache, streams and a private lane
// clock; per-card obs counters (device.<i>.h2d_bytes, ...,
// device.<i>.cache.hits/misses) attribute traffic per card while the
// process-global device.* counters keep aggregating across the fleet.
//
// Cards run concurrently under the cross-device scheduler
// (exec.MultiDeviceScan): each lane accumulates its own simulated time and
// SettleMax advances the shared clock by the longest lane delta — the
// wall-clock of a fan-out is the slowest participant, which is where the
// multi-device throughput scaling comes from.
type Env struct {
	prof   perfmodel.DeviceProfile
	shared *perfmodel.Clock

	mu    sync.Mutex // guards card sync watermarks
	cards []*Card
}

// NewEnv creates a fleet of n cards (n < 1 is clamped to 1) with the given
// per-card profile, folding lane time into shared. Each card's cache is
// allocator-limited; use NewEnvCacheCap to leave headroom for uncached
// direct transfers.
func NewEnv(n int, prof perfmodel.DeviceProfile, shared *perfmodel.Clock) *Env {
	return NewEnvCacheCap(n, prof, shared, 0)
}

// NewEnvCacheCap is NewEnv with an explicit per-card cache budget in bytes
// (0 = allocator-limited).
func NewEnvCacheCap(n int, prof perfmodel.DeviceProfile, shared *perfmodel.Clock, cacheCap int64) *Env {
	if n < 1 {
		n = 1
	}
	e := &Env{prof: prof, shared: shared}
	for i := 0; i < n; i++ {
		lane := &perfmodel.Clock{}
		gpu := NewIndexed(prof, lane, i)
		cache := NewFragCacheCap(gpu, cacheCap)
		cache.cardHits = obs.NewCounter(fmt.Sprintf("device.%d.cache.hits", i))
		cache.cardMisses = obs.NewCounter(fmt.Sprintf("device.%d.cache.misses", i))
		e.cards = append(e.cards, &Card{env: e, index: i, gpu: gpu, cache: cache, lane: lane})
	}
	return e
}

// N returns the card count.
func (e *Env) N() int { return len(e.cards) }

// Card returns card i.
func (e *Env) Card(i int) *Card { return e.cards[i] }

// Cards returns the fleet in index order. The slice is shared; do not
// mutate.
func (e *Env) Cards() []*Card { return e.cards }

// Clock returns the shared platform clock lane time folds into.
func (e *Env) Clock() *perfmodel.Clock { return e.shared }

// Profile returns the per-card device profile.
func (e *Env) Profile() perfmodel.DeviceProfile { return e.prof }

// SettleMax folds the fleet's un-synced lane time into the shared clock as
// a single concurrent phase: the shared clock advances by the largest
// per-card lane delta since the last settle (or extraNs — e.g. a host lane
// that ran alongside the cards — if that is larger), and every card's
// watermark catches up. Called by the cross-device scheduler after joining
// a fan-out.
func (e *Env) SettleMax(extraNs float64) {
	e.mu.Lock()
	maxD := extraNs
	for _, c := range e.cards {
		if d := c.lane.ElapsedNs() - c.synced; d > maxD {
			maxD = d
		}
		c.synced = c.lane.ElapsedNs()
	}
	e.mu.Unlock()
	if e.shared != nil {
		e.shared.Advance(maxD)
	}
}

// InvalidateFrag retires cached images of one fragment on every card.
func (e *Env) InvalidateFrag(table string, frag uint64) {
	for _, c := range e.cards {
		c.cache.InvalidateFrag(table, frag)
	}
}

// InvalidateTable retires cached images of one table on every card.
func (e *Env) InvalidateTable(table string) {
	for _, c := range e.cards {
		c.cache.InvalidateTable(table)
	}
}

// Flush retires every unpinned image on every card.
func (e *Env) Flush() {
	for _, c := range e.cards {
		c.cache.Flush()
	}
}

// Stats sums the per-card transfer stats into one fleet snapshot.
func (e *Env) Stats() TransferStats {
	var t TransferStats
	for _, c := range e.cards {
		s := c.gpu.Stats()
		t.HostToDeviceBytes += s.HostToDeviceBytes
		t.DeviceToHostBytes += s.DeviceToHostBytes
		t.HostToDeviceOps += s.HostToDeviceOps
		t.DeviceToHostOps += s.DeviceToHostOps
		t.KernelLaunches += s.KernelLaunches
	}
	return t
}

// CacheStats sums the per-card cache meters into one fleet snapshot.
func (e *Env) CacheStats() FragCacheStats {
	var t FragCacheStats
	for _, c := range e.cards {
		s := c.cache.Stats()
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Evictions += s.Evictions
		t.DupUploads += s.DupUploads
		t.ResidentBytes += s.ResidentBytes
		t.PinnedBytes += s.PinnedBytes
		t.Entries += s.Entries
	}
	return t
}
