package device

import "sort"

// ResidentCol names one column of a table with at least one cache-
// resident device image, in the format it is resident in. Checkpoint
// manifests persist this list so a warm restart can re-prime the cache
// to the pre-crash working set without waiting for the first scans to
// miss.
type ResidentCol struct {
	// Col is the relation attribute index.
	Col int
	// Comp marks the compressed wire image rather than dense bytes.
	Comp bool
}

// ResidentColumns lists the distinct (column, format) pairs of one
// table with resident images, sorted by column then format. Pinned and
// unpinned images both count; versions are irrelevant — the list names
// what was warm, not which bytes were.
func (c *FragCache) ResidentColumns(table string) []ResidentCol {
	c.mu.Lock()
	seen := make(map[ResidentCol]bool)
	for key := range c.entries {
		if key.Table == table {
			seen[ResidentCol{Col: key.Col, Comp: key.Comp}] = true
		}
	}
	c.mu.Unlock()
	out := make([]ResidentCol, 0, len(seen))
	for rc := range seen {
		out = append(out, rc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return !out[i].Comp && out[j].Comp
	})
	return out
}
