package device

import (
	"errors"
	"testing"

	"hybridstore/internal/obs"
)

// TestVecRejectsBothBackings: a Vec must name exactly one backing —
// device buffer or host slice. Both set is an ambiguous launch (which
// image would the kernel read?) and must fail loudly, not pick one.
func TestVecRejectsBothBackings(t *testing.T) {
	g, _ := newGPU()
	buf, v, err := fillFloats(g, 64, 8, func(i int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()

	bad := v
	bad.Data = make([]byte, 64*8)
	cfg := LaunchConfig{Blocks: 2, ThreadsPerBlock: 32}
	if _, err := g.ReduceSumFloat64(bad, cfg); !errors.Is(err, ErrBadLaunch) {
		t.Errorf("both Buf and Data: err = %v, want ErrBadLaunch", err)
	}
	if _, err := g.ReduceSumInt64(bad, cfg); !errors.Is(err, ErrBadLaunch) {
		t.Errorf("int64 reduce: err = %v, want ErrBadLaunch", err)
	}
	if _, _, err := g.ReduceSumFloat64Where(bad, 0, 1, cfg); !errors.Is(err, ErrBadLaunch) {
		t.Errorf("fused reduce: err = %v, want ErrBadLaunch", err)
	}
	if err := g.Scatter(bad, []int{0}, make([]byte, 8)); !errors.Is(err, ErrBadLaunch) {
		t.Errorf("scatter: err = %v, want ErrBadLaunch", err)
	}

	none := v
	none.Buf = nil
	if _, err := g.ReduceSumFloat64(none, cfg); err == nil {
		t.Error("neither Buf nor Data: want an error, got nil")
	}
}

// TestAccountingConformance: after a mixed workload, the per-instance
// GPU.Stats() meters and the process-wide device.* counters must have
// moved by exactly the same amounts, and every byte that crossed the bus
// must be visible. This is the regression test for the Scatter hole
// where value bytes were shipped H2D but never counted.
func TestAccountingConformance(t *testing.T) {
	before := obs.TakeSnapshot()
	g, _ := newGPU()

	n := 4096
	buf, v, err := fillFloats(g, n, 8, func(i int) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	cfg := LaunchConfig{Blocks: 16, ThreadsPerBlock: 64}
	if _, err := g.ReduceSumFloat64(v, cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.ReduceSumFloat64Where(v, 10, 20, cfg); err != nil {
		t.Fatal(err)
	}
	host := make([]byte, n*8)
	if err := g.CopyToHost(host, buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Gather(buf, 8, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	positions := []int{0, 7, 9}
	vals := make([]byte, len(positions)*8)
	if err := g.Scatter(v, positions, vals); err != nil {
		t.Fatal(err)
	}
	// Streamed commands count the moment they execute, same as sync ones.
	s := g.NewStream()
	if err := s.CopyToDevice(buf, 0, host); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReduceSumFloat64(v, cfg); err != nil {
		t.Fatal(err)
	}
	s.Wait()

	st := g.Stats()
	after := obs.TakeSnapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }

	if got := delta("device.h2d_bytes"); got != st.HostToDeviceBytes {
		t.Errorf("process h2d_bytes moved %d, instance says %d", got, st.HostToDeviceBytes)
	}
	if got := delta("device.d2h_bytes"); got != st.DeviceToHostBytes {
		t.Errorf("process d2h_bytes moved %d, instance says %d", got, st.DeviceToHostBytes)
	}
	if got := delta("device.h2d_ops"); got != st.HostToDeviceOps {
		t.Errorf("process h2d_ops moved %d, instance says %d", got, st.HostToDeviceOps)
	}
	if got := delta("device.d2h_ops"); got != st.DeviceToHostOps {
		t.Errorf("process d2h_ops moved %d, instance says %d", got, st.DeviceToHostOps)
	}
	if got := delta("device.kernels"); got != st.KernelLaunches {
		t.Errorf("process kernels moved %d, instance says %d", got, st.KernelLaunches)
	}

	// Scatter's value bytes are part of the H2D total: initial fill +
	// stream re-upload + scattered values.
	wantH2D := int64(n*8)*2 + int64(len(vals))
	if st.HostToDeviceBytes != wantH2D {
		t.Errorf("h2d_bytes = %d, want %d (scatter values counted)", st.HostToDeviceBytes, wantH2D)
	}
	if st.DeviceToHostOps == 0 || st.KernelLaunches == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
}
