package device

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
)

func newGPU() (*GPU, *perfmodel.Clock) {
	var clk perfmodel.Clock
	return New(perfmodel.DefaultDevice(), &clk), &clk
}

// fillFloats writes n little-endian float64s with the given stride.
func fillFloats(g *GPU, n int, stride int, gen func(i int) float64) (*Buffer, Vec, error) {
	buf, err := g.Alloc(n * stride)
	if err != nil {
		return nil, Vec{}, err
	}
	host := make([]byte, n*stride)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(host[i*stride:], math.Float64bits(gen(i)))
	}
	if err := g.CopyToDevice(buf, 0, host); err != nil {
		return nil, Vec{}, err
	}
	return buf, Vec{Buf: buf, Base: 0, Stride: stride, Size: 8, Len: n}, nil
}

func TestReduceSumFloat64Exact(t *testing.T) {
	g, _ := newGPU()
	n := 10_000
	buf, v, err := fillFloats(g, n, 8, func(i int) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	got, err := g.ReduceSumFloat64(v, DefaultReduceConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n-1) * float64(n) / 2
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestReduceSumStrided(t *testing.T) {
	// NSM-resident column: 28-byte records, price at offset 20.
	g, _ := newGPU()
	n := 5000
	stride := 28
	buf, err := g.Alloc(n * stride)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	host := make([]byte, n*stride)
	var want float64
	for i := 0; i < n; i++ {
		p := float64(i%97) + 0.5
		want += p
		binary.LittleEndian.PutUint64(host[i*stride+20:], math.Float64bits(p))
	}
	if err := g.CopyToDevice(buf, 0, host); err != nil {
		t.Fatal(err)
	}
	v := Vec{Buf: buf, Base: 20, Stride: stride, Size: 8, Len: n}
	got, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: 64, ThreadsPerBlock: 128})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("strided sum = %v, want %v", got, want)
	}
}

func TestReduceSumInt64(t *testing.T) {
	g, _ := newGPU()
	n := 4096
	buf, err := g.Alloc(n * 8)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	host := make([]byte, n*8)
	var want int64
	for i := 0; i < n; i++ {
		x := int64(i*3 - 1000)
		want += x
		binary.LittleEndian.PutUint64(host[i*8:], uint64(x))
	}
	g.CopyToDevice(buf, 0, host)
	v := Vec{Buf: buf, Stride: 8, Size: 8, Len: n}
	got, err := g.ReduceSumInt64(v, LaunchConfig{Blocks: 32, ThreadsPerBlock: 64})
	if err != nil || got != want {
		t.Fatalf("sum = %d, %v; want %d", got, err, want)
	}
}

func TestReduceEmptyVector(t *testing.T) {
	g, _ := newGPU()
	buf, _ := g.Alloc(8)
	defer buf.Free()
	got, err := g.ReduceSumFloat64(Vec{Buf: buf, Stride: 8, Size: 8, Len: 0}, DefaultReduceConfig())
	if err != nil || got != 0 {
		t.Fatalf("empty reduce = %v, %v", got, err)
	}
}

func TestLaunchValidation(t *testing.T) {
	g, _ := newGPU()
	buf, _ := g.Alloc(64)
	defer buf.Free()
	v := Vec{Buf: buf, Stride: 8, Size: 8, Len: 8}
	cases := []LaunchConfig{
		{Blocks: 0, ThreadsPerBlock: 128},
		{Blocks: 8, ThreadsPerBlock: 0},
		{Blocks: 8, ThreadsPerBlock: 2048}, // beyond MaxThreadsPerBlock
		{Blocks: 8, ThreadsPerBlock: 96},   // not a power of two
	}
	for _, cfg := range cases {
		if _, err := g.ReduceSumFloat64(v, cfg); !errors.Is(err, ErrBadLaunch) {
			t.Errorf("cfg %+v: err = %v, want ErrBadLaunch", cfg, err)
		}
	}
	// Wrong element size.
	if _, err := g.ReduceSumFloat64(Vec{Buf: buf, Stride: 4, Size: 4, Len: 8}, DefaultReduceConfig()); !errors.Is(err, ErrBadLaunch) {
		t.Errorf("size-4 reduce err = %v", err)
	}
}

func TestVecBoundsChecked(t *testing.T) {
	g, _ := newGPU()
	buf, _ := g.Alloc(64)
	defer buf.Free()
	bad := []Vec{
		{Buf: buf, Base: 0, Stride: 8, Size: 8, Len: 9},  // runs past end
		{Buf: buf, Base: -1, Stride: 8, Size: 8, Len: 1}, // negative base
		{Buf: buf, Base: 0, Stride: 4, Size: 8, Len: 1},  // stride < size
		{Buf: buf, Base: 60, Stride: 8, Size: 8, Len: 1}, // tail past end
		{Buf: buf, Base: 0, Stride: 8, Size: 8, Len: -1}, // negative len
	}
	for i, v := range bad {
		if _, err := g.ReduceSumFloat64(v, DefaultReduceConfig()); !errors.Is(err, ErrShortBuffer) {
			t.Errorf("vec %d: err = %v, want ErrShortBuffer", i, err)
		}
	}
}

func TestCopyBounds(t *testing.T) {
	g, _ := newGPU()
	buf, _ := g.Alloc(16)
	defer buf.Free()
	if err := g.CopyToDevice(buf, 8, make([]byte, 16)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("overrun copy err = %v", err)
	}
	if err := g.CopyToDevice(buf, -1, make([]byte, 4)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("negative offset err = %v", err)
	}
	if err := g.CopyToHost(make([]byte, 32), buf, 0); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("overread err = %v", err)
	}
}

func TestCopyRoundTripAndStats(t *testing.T) {
	g, clk := newGPU()
	buf, _ := g.Alloc(32)
	defer buf.Free()
	src := []byte("0123456789abcdef0123456789abcdef")
	if err := g.CopyToDevice(buf, 0, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 32)
	if err := g.CopyToHost(dst, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(src) {
		t.Fatal("round trip corrupted data")
	}
	st := g.Stats()
	if st.HostToDeviceBytes != 32 || st.DeviceToHostBytes != 32 || st.HostToDeviceOps != 1 || st.DeviceToHostOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if clk.ElapsedNs() < 2*g.Profile().TransferLatencyNs {
		t.Error("transfers did not charge bus latency")
	}
}

func TestUseAfterFree(t *testing.T) {
	g, _ := newGPU()
	buf, _ := g.Alloc(16)
	buf.Free()
	buf.Free() // idempotent
	if buf.Len() != 0 {
		t.Error("freed buffer reports nonzero length")
	}
	if err := g.CopyToDevice(buf, 0, []byte{1}); !errors.Is(err, ErrBufferFreed) {
		t.Errorf("copy-to-freed err = %v", err)
	}
	if _, err := g.ReduceSumFloat64(Vec{Buf: buf, Stride: 8, Size: 8, Len: 1}, DefaultReduceConfig()); !errors.Is(err, ErrBufferFreed) {
		t.Errorf("reduce-on-freed err = %v", err)
	}
}

func TestDeviceMemoryCapacity(t *testing.T) {
	g, _ := newGPU()
	if _, err := g.Alloc(int(g.Profile().GlobalMemory + 1)); !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	free := g.FreeMemory()
	buf, err := g.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if g.FreeMemory() != free-(1<<20) {
		t.Error("FreeMemory accounting wrong")
	}
	buf.Free()
}

func TestGather(t *testing.T) {
	g, clk := newGPU()
	const width = 12
	n := 100
	buf, _ := g.Alloc(n * width)
	defer buf.Free()
	host := make([]byte, n*width)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*width:], uint32(i))
	}
	g.CopyToDevice(buf, 0, host)
	before := clk.ElapsedNs()
	out, err := g.Gather(buf, width, []int{5, 99, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3*width {
		t.Fatalf("gathered %d bytes", len(out))
	}
	for i, want := range []uint32{5, 99, 0} {
		if got := binary.LittleEndian.Uint32(out[i*width:]); got != want {
			t.Errorf("record %d = %d, want %d", i, got, want)
		}
	}
	if clk.ElapsedNs() <= before {
		t.Error("gather charged no time")
	}
	if _, err := g.Gather(buf, width, []int{n}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("out-of-range gather err = %v", err)
	}
	if _, err := g.Gather(buf, 0, nil); !errors.Is(err, ErrBadLaunch) {
		t.Errorf("zero-width gather err = %v", err)
	}
}

func TestScatter(t *testing.T) {
	g, _ := newGPU()
	n := 16
	buf, _ := g.Alloc(n * 8)
	defer buf.Free()
	g.CopyToDevice(buf, 0, make([]byte, n*8))
	v := Vec{Buf: buf, Stride: 8, Size: 8, Len: n}
	vals := make([]byte, 2*8)
	binary.LittleEndian.PutUint64(vals[0:], math.Float64bits(1.5))
	binary.LittleEndian.PutUint64(vals[8:], math.Float64bits(2.5))
	if err := g.Scatter(v, []int{3, 7}, vals); err != nil {
		t.Fatal(err)
	}
	sum, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: 4, ThreadsPerBlock: 8})
	if err != nil || sum != 4.0 {
		t.Fatalf("post-scatter sum = %v, %v", sum, err)
	}
	if err := g.Scatter(v, []int{99}, vals[:8]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("bad position err = %v", err)
	}
	if err := g.Scatter(v, []int{1, 2}, vals[:8]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("length mismatch err = %v", err)
	}
}

// Property: the device reduction equals a sequential host sum for random
// data, geometry and stride.
func TestQuickReduceMatchesHostSum(t *testing.T) {
	g, _ := newGPU()
	f := func(seed int64, nRaw uint16, blocksRaw, threadsExp uint8) bool {
		n := int(nRaw)%5000 + 1
		blocks := int(blocksRaw)%64 + 1
		threads := 1 << (int(threadsExp)%8 + 1) // 2..256
		r := rand.New(rand.NewSource(seed))
		buf, v, err := fillFloats(g, n, 8, func(int) float64 { return math.Floor(r.Float64() * 1000) })
		if err != nil {
			return false
		}
		defer buf.Free()
		var want float64
		raw, _ := buf.bytes()
		for i := 0; i < n; i++ {
			want += math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		got, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads})
		return err == nil && math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelChargesModelTime(t *testing.T) {
	g, clk := newGPU()
	n := 1_000_000
	buf, v, err := fillFloats(g, n, 8, func(i int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	clk.Reset()
	if _, err := g.ReduceSumFloat64(v, DefaultReduceConfig()); err != nil {
		t.Fatal(err)
	}
	want := g.Profile().ReduceKernelNs(int64(n), 8, 8, 1024, 512)
	if math.Abs(clk.ElapsedNs()-want) > 1 {
		t.Errorf("charged %.0fns, want %.0fns", clk.ElapsedNs(), want)
	}
}

func TestNilClockIsSafe(t *testing.T) {
	g := New(perfmodel.DefaultDevice(), nil)
	buf, v, err := fillFloats(g, 100, 8, func(i int) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if _, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: 2, ThreadsPerBlock: 32}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeReduce(t *testing.T) {
	if got := treeReduce(nil); got != 0 {
		t.Errorf("treeReduce(nil) = %v", got)
	}
	if got := treeReduce([]float64{1, 2, 3, 4, 5}); got != 15 {
		t.Errorf("treeReduce = %v, want 15", got)
	}
}
