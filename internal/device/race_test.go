package device

import (
	"errors"
	"sync"
	"testing"
)

// TestReduceConcurrentWithFree exercises the Buffer lifetime race fixed by
// the atomic freed flag: kernels snapshotting the backing bytes while
// another goroutine frees the buffer. Run under -race; any interleaving
// must either complete the reduction or fail with ErrBufferFreed — never
// tear.
func TestReduceConcurrentWithFree(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		g, _ := newGPU()
		buf, v, err := fillFloats(g, 4096, 8, func(i int) float64 { return 1 })
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				got, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: 16, ThreadsPerBlock: 64})
				if err != nil && !errors.Is(err, ErrBufferFreed) {
					t.Errorf("reduce: %v", err)
				}
				if err == nil && got != 4096 {
					t.Errorf("torn reduce = %v, want 4096", got)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			buf.Free()
			buf.Free() // Free is idempotent
		}()
		close(start)
		wg.Wait()
	}
}

// TestCacheConcurrentAcquireRelease hammers one FragCache from many
// goroutines mixing hits, version bumps, and invalidations. Run under
// -race.
func TestCacheConcurrentAcquireRelease(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	data := hostFloats(512)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := FragKey{Table: "t", Frag: uint64(i % 4), Rows: 512}
				version := uint64(i % 3)
				buf, release, _, err := c.Acquire(key, version, len(data), func(b *Buffer) error {
					return g.CopyToDevice(b, 0, data)
				})
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				v := Vec{Buf: buf, Stride: 8, Size: 8, Len: 512}
				if _, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}); err != nil && !errors.Is(err, ErrBufferFreed) {
					t.Errorf("reduce: %v", err)
				}
				if w == 0 && i%17 == 0 {
					c.InvalidateFrag("t", uint64(i%4))
				}
				release()
			}
		}(w)
	}
	wg.Wait()
}
