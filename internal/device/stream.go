package device

import (
	"fmt"
	"sync"

	"hybridstore/internal/obs"
)

// Stream observability: one span per Wait (annotated with the simulated
// charge), plus histograms of the overlapped totals so htapbench can
// report how much bus time the pipeline actually hid.
var (
	spStream         = obs.NewSpanFamily("device.stream")
	mStreamChargedNs = obs.NewHistogram("device.stream.charged_ns")
	mStreamSavedNs   = obs.NewHistogram("device.stream.saved_ns")
)

// DefaultStreamStages is the double-buffering depth of a stream: two
// staging slots, the classic cp.async ping-pong pipeline (one slice in
// flight on the bus while the previous one is being consumed by the
// kernel).
const DefaultStreamStages = 2

// Stream is an ordered asynchronous command queue on one GPU, the
// simulated counterpart of a CUDA stream. Commands execute eagerly — the
// software card computes real results, so enqueue calls return them
// directly — but their priced durations are not charged to the clock one
// by one. Instead they accumulate in two lanes, transfer and compute, and
// Wait charges the overlapped total perfmodel.OverlapNs(transfer,
// compute, stages): the longer lane plus a pipeline fill/drain bubble of
// the shorter lane divided by the stage count. With stages=2 a scan whose
// H2D copy and kernel are balanced costs ~max(transfer, compute) + half
// the shorter phase instead of their sum — the overlap win a
// double-buffered cp.async pipeline buys on real hardware.
//
// A Stream is not safe for concurrent use; like a CUDA stream it
// serializes the commands of one issuing thread. Create one stream per
// worker instead of sharing.
type Stream struct {
	gpu    *GPU
	stages int

	mu         sync.Mutex
	transferNs float64 // lane: bus crossings enqueued since creation
	computeNs  float64 // lane: kernel launches enqueued since creation
	chargedNs  float64 // watermark: overlapped ns already charged by Wait
	savedNs    float64 // watermark: ns hidden by overlap, already reported
	ops        int     // commands enqueued since the last Wait
}

// NewStream opens a stream with the default double-buffered pipeline
// depth.
func (g *GPU) NewStream() *Stream { return g.NewStreamDepth(DefaultStreamStages) }

// NewStreamDepth opens a stream with an explicit pipeline depth. Depth 1
// disables overlap (transfer and compute serialize, matching the
// synchronous GPU methods exactly); deeper pipelines shrink the fill/
// drain bubble.
func (g *GPU) NewStreamDepth(stages int) *Stream {
	if stages < 1 {
		stages = 1
	}
	return &Stream{gpu: g, stages: stages}
}

// addTransfer accumulates priced bus time in the transfer lane.
func (s *Stream) addTransfer(ns float64) {
	s.mu.Lock()
	s.transferNs += ns
	s.ops++
	s.mu.Unlock()
}

// addCompute accumulates priced kernel time in the compute lane.
func (s *Stream) addCompute(ns float64) {
	s.mu.Lock()
	s.computeNs += ns
	s.ops++
	s.mu.Unlock()
}

// CopyToDevice enqueues an async H2D copy. The copy is performed (and
// counted) immediately; its bus time lands in the transfer lane.
func (s *Stream) CopyToDevice(dst *Buffer, off int, src []byte) error {
	ns, err := s.gpu.copyToDevice(dst, off, src)
	if err != nil {
		return err
	}
	s.addTransfer(ns)
	return nil
}

// CopyToHost enqueues an async D2H copy.
func (s *Stream) CopyToHost(dst []byte, src *Buffer, off int) error {
	ns, err := s.gpu.copyToHost(dst, src, off)
	if err != nil {
		return err
	}
	s.addTransfer(ns)
	return nil
}

// ReduceSumFloat64 enqueues a reduction kernel; its time lands in the
// compute lane. The result is available immediately (the simulated card
// computes eagerly), but the clock charge waits for Wait.
func (s *Stream) ReduceSumFloat64(v Vec, cfg LaunchConfig) (float64, error) {
	total, ns, err := s.gpu.reduceSumFloat64(v, cfg)
	if err != nil {
		return 0, err
	}
	s.addCompute(ns)
	return total, nil
}

// ReduceSumInt64 enqueues an int64 reduction kernel.
func (s *Stream) ReduceSumInt64(v Vec, cfg LaunchConfig) (int64, error) {
	total, ns, err := s.gpu.reduceSumInt64(v, cfg)
	if err != nil {
		return 0, err
	}
	s.addCompute(ns)
	return total, nil
}

// ReduceSumFloat64Where enqueues a fused filter+reduction kernel.
func (s *Stream) ReduceSumFloat64Where(v Vec, lo, hi float64, cfg LaunchConfig) (float64, int64, error) {
	total, n, ns, err := s.gpu.reduceSumFloat64Where(v, lo, hi, cfg)
	if err != nil {
		return 0, 0, err
	}
	s.addCompute(ns)
	return total, n, nil
}

// Scatter enqueues a scatter whose value bytes cross the bus H2D before
// the kernel runs: the transfer share lands in the transfer lane and the
// kernel share in the compute lane, so batched transactional writes
// (gputx) overlap their value shipping with the scatter kernels.
func (s *Stream) Scatter(v Vec, positions []int, vals []byte) error {
	ns, err := s.gpu.scatter(v, positions, vals)
	if err != nil {
		return err
	}
	transfer := s.gpu.prof.TransferNs(int64(len(vals)))
	s.mu.Lock()
	s.transferNs += transfer
	s.computeNs += ns - transfer
	s.ops++
	s.mu.Unlock()
	return nil
}

// Event marks a point in a stream's command order: a snapshot of both
// lanes at Record time. Waiting on the event charges the overlapped cost
// of everything enqueued before it, and nothing after.
type Event struct {
	stream                *Stream
	transferNs, computeNs float64
}

// Record snapshots the stream's lanes.
func (s *Stream) Record() Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Event{stream: s, transferNs: s.transferNs, computeNs: s.computeNs}
}

// Wait blocks until every enqueued command is complete (immediate on the
// simulated card) and charges the clock the overlapped total of both
// lanes since creation, minus what earlier Waits already charged.
func (s *Stream) Wait() {
	s.mu.Lock()
	t, c := s.transferNs, s.computeNs
	s.mu.Unlock()
	s.settle(t, c)
}

// WaitEvent charges up to the event's snapshot only.
func (s *Stream) WaitEvent(e Event) {
	if e.stream != s {
		return
	}
	s.settle(e.transferNs, e.computeNs)
}

// settle charges the clock so that the cumulative charge equals the
// overlap-priced cost of lanes (t, c). OverlapNs is monotone in both
// lanes, so the delta against the watermark is never negative for a
// later snapshot; an event from before the last Wait charges nothing.
func (s *Stream) settle(t, c float64) {
	sp := spStream.Start()
	s.mu.Lock()
	due := s.gpu.prof.OverlapNs(t, c, s.stages)
	delta := due - s.chargedNs
	saved := ((t + c) - due) - s.savedNs
	ops := s.ops
	if delta > 0 {
		s.chargedNs = due
		s.savedNs = (t + c) - due
	}
	s.ops = 0
	s.mu.Unlock()
	if delta > 0 {
		s.gpu.charge(delta)
		mStreamChargedNs.Observe(int64(delta))
		// saved = what the synchronous path would have charged for the same
		// commands minus the overlapped price; the histogram totals the bus
		// time the pipeline hid.
		mStreamSavedNs.Observe(int64(saved))
	}
	sp.EndWith(fmt.Sprintf("ops=%d charged_ns=%.0f", ops, delta))
}

// Lanes reports the accumulated (transfer, compute) lane totals, for
// tests and the perf panels.
func (s *Stream) Lanes() (transferNs, computeNs float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transferNs, s.computeNs
}
