package device

import (
	"sync"
	"testing"

	"hybridstore/internal/perfmodel"
)

// TestCacheDupUploadRace is the regression test for the concurrent-miss
// accounting bug: two cold Acquires race on the same key, both upload,
// and the loser discards its copy. The loser must stay a miss (it paid
// the bus) and count as a duplicate upload — hits+misses must equal the
// acquire count, never exceed it.
func TestCacheDupUploadRace(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	key := FragKey{Table: "race", Frag: 1, Col: 0, Rows: 256}
	data := hostFloats(256)

	// Both goroutines reach the middle of their uploads before either
	// installs: the barrier guarantees the second installer finds the
	// winner's entry already resident.
	var barrier sync.WaitGroup
	barrier.Add(2)
	var wg sync.WaitGroup
	hits := make([]bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, release, hit, err := c.Acquire(key, 1, len(data), func(b *Buffer) error {
				barrier.Done()
				barrier.Wait()
				return g.CopyToDevice(b, 0, data)
			})
			if err != nil {
				t.Error(err)
				return
			}
			hits[i] = hit
			if buf == nil {
				t.Error("nil buffer from racing acquire")
			}
			release()
		}(i)
	}
	wg.Wait()

	if hits[0] || hits[1] {
		t.Fatalf("a racing cold acquire reported a hit (hits=%v); both paid the bus", hits)
	}
	st := c.Stats()
	if st.Hits+st.Misses != 2 {
		t.Fatalf("hits %d + misses %d = %d, want 2 (one per acquire)", st.Hits, st.Misses, st.Hits+st.Misses)
	}
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
	if st.DupUploads != 1 {
		t.Fatalf("dup uploads = %d, want exactly 1 (the race loser)", st.DupUploads)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (loser's copy discarded)", st.Entries)
	}
	// Both goroutines shipped the image: the bus was charged twice.
	if got, want := g.Stats().HostToDeviceBytes, int64(2*len(data)); got != want {
		t.Fatalf("H2D bytes = %d, want %d (both uploads crossed the bus)", got, want)
	}
	// The survivor serves subsequent lookups as a plain hit.
	_, release, hit := acquireUpload(t, c, key, 1, data)
	release()
	if !hit {
		t.Fatal("post-race acquire missed; the winner's image should be resident")
	}
}

// TestGatherChargesOverlapOnce pins the transfer-pricing fix: a Gather
// costs exactly one combined OverlapNs(transfer, kernel, 1) charge —
// symmetric with Scatter — rather than separate kernel and transfer
// charges drifting apart from the stream paths.
func TestGatherChargesOverlapOnce(t *testing.T) {
	g, clk := newGPU()
	const n, width = 1024, 16
	buf, err := g.Alloc(n * width)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if err := g.CopyToDevice(buf, 0, make([]byte, n*width)); err != nil {
		t.Fatal(err)
	}
	positions := []int{1, 3, 5, 7, 11}

	before := clk.ElapsedNs()
	out, err := g.Gather(buf, width, positions)
	if err != nil {
		t.Fatal(err)
	}
	got := clk.ElapsedNs() - before

	prof := g.Profile()
	want := prof.OverlapNs(
		prof.TransferNs(int64(len(out))),
		prof.GatherKernelNs(int64(len(positions)), int64(n), width), 1)
	if got != want {
		t.Fatalf("gather charged %v ns, want single overlap charge %v ns", got, want)
	}
}

// TestEnvCardsChargeLanesNotShared pins the fleet clock model: card work
// accrues on private lane clocks, Sync folds one card serially, and
// SettleMax folds a concurrent phase at the maximum lane delta.
func TestEnvCardsChargeLanesNotShared(t *testing.T) {
	shared := &perfmodel.Clock{}
	env := NewEnv(2, perfmodel.DefaultDevice(), shared)

	buf0, err := env.Card(0).GPU().Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer buf0.Free()
	if err := env.Card(0).GPU().CopyToDevice(buf0, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if shared.ElapsedNs() != 0 {
		t.Fatalf("card work leaked onto the shared clock: %v ns", shared.ElapsedNs())
	}
	lane0 := env.Card(0).Mark()
	if lane0 <= 0 {
		t.Fatal("card 0 lane did not advance")
	}

	// Card 1 does twice the work; SettleMax folds the longer lane only.
	buf1, err := env.Card(1).GPU().Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	defer buf1.Free()
	if err := env.Card(1).GPU().CopyToDevice(buf1, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	lane1 := env.Card(1).Mark()
	if lane1 <= lane0 {
		t.Fatalf("lane1 %v should exceed lane0 %v", lane1, lane0)
	}
	env.SettleMax(0)
	if got := shared.ElapsedNs(); got != lane1 {
		t.Fatalf("SettleMax advanced shared by %v, want max lane %v", got, lane1)
	}
	// Settled lanes fold nothing further.
	env.SettleMax(0)
	if got := shared.ElapsedNs(); got != lane1 {
		t.Fatalf("second SettleMax moved shared to %v, want unchanged %v", got, lane1)
	}

	// Serial Sync after new work folds that card's delta serially.
	before := shared.ElapsedNs()
	if err := env.Card(0).GPU().CopyToDevice(buf0, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	d := env.Card(0).Mark() - lane0
	env.Card(0).Sync()
	if got := shared.ElapsedNs() - before; got != d {
		t.Fatalf("Sync advanced shared by %v, want lane delta %v", got, d)
	}
}

// TestEnvPerCardRegistryCounters pins that an Env's cards register
// device.<i>.* counters and mirror every transfer onto them.
func TestEnvPerCardRegistryCounters(t *testing.T) {
	shared := &perfmodel.Clock{}
	env := NewEnv(2, perfmodel.DefaultDevice(), shared)
	for i := 0; i < 2; i++ {
		gpu := env.Card(i).GPU()
		buf, err := gpu.Alloc(1024 * (i + 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := gpu.CopyToDevice(buf, 0, make([]byte, 1024*(i+1))); err != nil {
			t.Fatal(err)
		}
		buf.Free()
		st := gpu.Stats()
		if st.HostToDeviceBytes != int64(1024*(i+1)) {
			t.Fatalf("card %d H2D bytes = %d, want %d", i, st.HostToDeviceBytes, 1024*(i+1))
		}
	}
	// Fleet aggregation sums the cards.
	if got, want := env.Stats().HostToDeviceBytes, int64(1024+2048); got != want {
		t.Fatalf("fleet H2D bytes = %d, want %d", got, want)
	}
}
