package device

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"hybridstore/internal/mem"
	"hybridstore/internal/obs"
)

// Process-wide cache counters, aggregated across every FragCache the run
// creates (mirrors the device.* transfer counters above).
var (
	mCacheHits       = obs.NewCounter("device.cache.hits")
	mCacheMisses     = obs.NewCounter("device.cache.misses")
	mCacheEvictions  = obs.NewCounter("device.cache.evictions")
	mCacheDupUploads = obs.NewCounter("device.cache.dup_uploads")
	mCachePinned     = obs.NewGauge("device.cache.pinned_bytes")
	mCacheResident   = obs.NewGauge("device.cache.resident_bytes")
)

// ErrCachePinned is returned when eviction cannot make room because every
// resident image is pinned by an in-flight scan.
var ErrCachePinned = errors.New("device: cache full of pinned fragments")

// FragKey identifies one cached column image: a (table, fragment, column)
// coordinate plus the [Row0, Row0+Rows) clip of the fragment the image
// covers. The clip is part of the key because exec.ColumnView hands scans
// clipped vectors (MVCC patching, zone pruning); two different clips of
// the same column are distinct device images.
//
// Versions are deliberately NOT part of the key: the cache stores the
// version a resident image was uploaded at and treats a lookup with a
// newer version as a miss that eagerly retires the stale image. Keying by
// version instead would leave every stale image resident until capacity
// pressure found it.
type FragKey struct {
	Table string
	Frag  uint64
	Col   int
	Row0  int
	Rows  int
	// Comp marks an entry holding the column's compressed wire image
	// (compress.Column.Marshal) rather than its dense bytes, so the two
	// forms of the same clip never collide. Compressed entries are sized
	// at the image length, which is how the cache's effective capacity
	// grows by the compression ratio.
	Comp bool
}

// fragRef is the invalidation coordinate: every clip/column image of one
// fragment dies together when the fragment is written.
type fragRef struct {
	Table string
	Frag  uint64
}

type cacheEntry struct {
	key     FragKey
	version uint64
	buf     *Buffer
	size    int64
	pins    int
	// dead marks an entry invalidated while pinned: it is already
	// unlinked from the lookup maps, and the last Release frees it.
	dead bool
	elem *list.Element // nil while pinned (pinned entries leave the LRU)
}

// FragCacheStats is a snapshot of one cache's meters.
type FragCacheStats struct {
	Hits, Misses, Evictions int64
	// DupUploads counts acquires that lost a concurrent-miss race: the
	// loser uploaded an image a faster acquirer had already made resident
	// and discarded its own copy. Such an acquire stays a miss (it paid
	// the bus), never a hit. hits+misses always equals total acquires.
	DupUploads    int64
	ResidentBytes int64
	PinnedBytes   int64
	Entries       int
}

// FragCache keeps device-resident images of fragment columns so repeated
// scans over unchanged data cost zero bus bytes — the caching column
// manager of CoGaDB and the hot/cold placement of HyPer, reduced to its
// storage-engine core (paper Section IV-C: "mixed data location"). Images
// are keyed by (table, fragment, column, clip) and stamped with the
// fragment version they were uploaded at; any write to the fragment bumps
// the version (layout.Fragment), so the next lookup misses and re-ships
// exactly that fragment. Capacity comes from the device's own
// mem.Allocator: when an upload hits mem.ErrOutOfMemory the cache evicts
// least-recently-used unpinned images until the allocation fits.
//
// Acquire pins the returned image (refcounted) so concurrent eviction or
// invalidation cannot free a buffer mid-kernel; callers must Release.
// All methods are safe for concurrent use.
type FragCache struct {
	gpu *GPU
	// capBytes, when positive, is an explicit budget below the device
	// allocator's capacity: the cache evicts (and reports ErrCachePinned)
	// once resident images would exceed it, leaving allocator headroom for
	// uncached direct transfers. Zero means allocator-limited (the
	// original behavior). The budget is checked at allocation time, so a
	// burst of concurrent misses may briefly overshoot it; it is a
	// steering wheel, not a hard fence.
	capBytes int64

	mu      sync.Mutex
	entries map[FragKey]*cacheEntry
	byFrag  map[fragRef]map[FragKey]*cacheEntry
	lru     *list.List // unpinned entries only; front = most recent

	resident int64 // bytes of live images (pinned + unpinned)
	pinned   int64 // bytes of pinned images

	hits, misses, evictions, dupUploads obs.Counter

	// cardHits/cardMisses, when non-nil, mirror hit/miss traffic onto the
	// per-card registry counters (device.<i>.cache.*) an Env wires up, so
	// htapbench -metrics can attribute residency per card.
	cardHits, cardMisses *obs.Counter
}

// NewFragCache creates a cache over the GPU's global memory.
func NewFragCache(g *GPU) *FragCache {
	return &FragCache{
		gpu:     g,
		entries: make(map[FragKey]*cacheEntry),
		byFrag:  make(map[fragRef]map[FragKey]*cacheEntry),
		lru:     list.New(),
	}
}

// NewFragCacheCap creates a cache with an explicit byte budget below the
// allocator's capacity (0 = allocator-limited). Keeping the budget under
// the device memory lets ErrCachePinned scans degrade to uncached direct
// transfers instead of failing outright.
func NewFragCacheCap(g *GPU, capBytes int64) *FragCache {
	c := NewFragCache(g)
	c.capBytes = capBytes
	return c
}

// GPU returns the device this cache populates.
func (c *FragCache) GPU() *GPU { return c.gpu }

// Acquire returns a pinned device image of the keyed column clip at the
// given version. On a hit the image is reused as-is (zero bus bytes); on
// a miss — absent, or resident at an older version — the stale image is
// retired, size bytes are allocated (evicting LRU unpinned images on
// memory pressure), and fill is called once to upload the data. A fill
// that wants transfer/compute overlap can enqueue its copy on a Stream.
//
// The returned release closure must be called (once) after the kernel
// consuming the image completes. It is bound to the pinned entry, not
// the key: an image invalidated mid-scan is unlinked from the lookup
// maps immediately but stays alive until its release, so a key-based
// unpin could never reach it.
func (c *FragCache) Acquire(key FragKey, version uint64, size int, fill func(*Buffer) error) (*Buffer, func(), bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.version == version {
			c.pin(e)
			c.mu.Unlock()
			c.hits.Inc()
			mCacheHits.Inc()
			if c.cardHits != nil {
				c.cardHits.Inc()
			}
			return e.buf, c.releaser(e), true, nil
		}
		// Stale image: retire it now rather than letting capacity
		// pressure find it.
		c.retireLocked(e)
	}
	c.mu.Unlock()
	c.misses.Inc()
	mCacheMisses.Inc()
	if c.cardMisses != nil {
		c.cardMisses.Inc()
	}

	buf, err := c.allocEvicting(size)
	if err != nil {
		return nil, nil, false, err
	}
	if err := fill(buf); err != nil {
		buf.Free()
		return nil, nil, false, fmt.Errorf("device: cache fill: %w", err)
	}

	e := &cacheEntry{key: key, version: version, buf: buf, size: int64(size), pins: 1}
	c.mu.Lock()
	if prev, ok := c.entries[key]; ok {
		// A concurrent miss on the same key uploaded first; keep the
		// resident image and drop ours. This acquire already counted its
		// miss and charged the bus for the discarded image, so it is a
		// duplicate upload — never a hit (hits+misses stays equal to the
		// acquire count).
		if prev.version == version {
			c.pin(prev)
			c.mu.Unlock()
			buf.Free()
			c.dupUploads.Inc()
			mCacheDupUploads.Inc()
			return prev.buf, c.releaser(prev), false, nil
		}
		c.retireLocked(prev)
	}
	c.entries[key] = e
	ref := fragRef{Table: key.Table, Frag: key.Frag}
	if c.byFrag[ref] == nil {
		c.byFrag[ref] = make(map[FragKey]*cacheEntry)
	}
	c.byFrag[ref][key] = e
	c.resident += e.size
	c.pinned += e.size
	mCacheResident.Add(e.size)
	mCachePinned.Add(e.size)
	c.mu.Unlock()
	return buf, c.releaser(e), false, nil
}

// releaser binds one pin of e to an idempotent unpin closure.
func (c *FragCache) releaser(e *cacheEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.unpinLocked(e)
			c.mu.Unlock()
		})
	}
}

// pin increments the refcount and removes the entry from the LRU (pinned
// images are not eviction candidates). Caller holds c.mu.
func (c *FragCache) pin(e *cacheEntry) {
	if e.pins == 0 {
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.pinned += e.size
		mCachePinned.Add(e.size)
	}
	e.pins++
}

// unpinLocked drops one pin from e, returning it to the LRU as the most
// recently used entry when the last pin goes. Releasing the last pin of
// an invalidated (dead) image frees it. Caller holds c.mu.
func (c *FragCache) unpinLocked(e *cacheEntry) {
	e.pins--
	if e.pins > 0 {
		return
	}
	c.pinned -= e.size
	mCachePinned.Add(-e.size)
	if e.dead {
		e.buf.Free()
		return
	}
	e.elem = c.lru.PushFront(e)
}

// retireLocked unlinks e from the lookup maps and frees it if unpinned;
// a pinned entry is marked dead and freed by its last Release. Caller
// holds c.mu.
func (c *FragCache) retireLocked(e *cacheEntry) {
	delete(c.entries, e.key)
	ref := fragRef{Table: e.key.Table, Frag: e.key.Frag}
	if m := c.byFrag[ref]; m != nil {
		delete(m, e.key)
		if len(m) == 0 {
			delete(c.byFrag, ref)
		}
	}
	c.resident -= e.size
	mCacheResident.Add(-e.size)
	if e.pins > 0 {
		e.dead = true
		return
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	e.buf.Free()
}

// allocEvicting allocates size device bytes, evicting LRU unpinned images
// until the allocation fits — against the explicit byte budget when one is
// set, then against the allocator. ErrCachePinned is returned when nothing
// evictable remains (every resident image is pinned by an in-flight scan),
// so callers can fall back to an uncached direct transfer; other allocator
// errors pass through.
func (c *FragCache) allocEvicting(size int) (*Buffer, error) {
	for {
		if c.capBytes > 0 {
			c.mu.Lock()
			if c.resident+int64(size) > c.capBytes {
				if !c.evictLRULocked() {
					c.mu.Unlock()
					return nil, fmt.Errorf("%w: need %d bytes", ErrCachePinned, size)
				}
				c.mu.Unlock()
				continue
			}
			c.mu.Unlock()
		}
		buf, err := c.gpu.Alloc(size)
		if err == nil {
			return buf, nil
		}
		if !errors.Is(err, mem.ErrOutOfMemory) {
			return nil, err
		}
		c.mu.Lock()
		ok := c.evictLRULocked()
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: need %d bytes", ErrCachePinned, size)
		}
	}
}

// evictLRULocked retires the least-recently-used unpinned image, reporting
// false when none exists. Caller holds c.mu.
func (c *FragCache) evictLRULocked() bool {
	back := c.lru.Back()
	if back == nil {
		return false
	}
	c.retireLocked(back.Value.(*cacheEntry))
	c.evictions.Inc()
	mCacheEvictions.Inc()
	return true
}

// Resident reports whether an image of the keyed clip at the given version
// is currently resident (pinned or not) without touching LRU order or the
// meters — the warmth probe the cross-device scheduler's placement uses.
func (c *FragCache) Resident(key FragKey, version uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.version == version
}

// InvalidateFrag retires every cached image of one fragment — all columns
// and clips. Write paths call this when a fragment's backing store is
// replaced or freed outright (freeze/regroup, delta merge, compaction);
// in-place writes need no call because they bump the fragment version and
// versions are checked on every Acquire.
func (c *FragCache) InvalidateFrag(table string, frag uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.byFrag[fragRef{Table: table, Frag: frag}] {
		c.retireLocked(e)
	}
}

// InvalidateTable retires every cached image of one table (drop table,
// bulk load).
func (c *FragCache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for ref, m := range c.byFrag {
		if ref.Table != table {
			continue
		}
		for _, e := range m {
			c.retireLocked(e)
		}
	}
}

// Flush retires every unpinned image, returning its device memory.
func (c *FragCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.pins == 0 {
			c.retireLocked(e)
		}
	}
}

// Stats snapshots the cache meters.
func (c *FragCache) Stats() FragCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return FragCacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load(),
		DupUploads:    c.dupUploads.Load(),
		ResidentBytes: c.resident, PinnedBytes: c.pinned, Entries: len(c.entries),
	}
}
