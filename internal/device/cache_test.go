package device

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"hybridstore/internal/perfmodel"
)

// smallGPU returns a device with room for only a few cached images, so
// eviction paths trigger without gigabyte allocations.
func smallGPU(capacity int64) *GPU {
	prof := perfmodel.DefaultDevice()
	prof.GlobalMemory = capacity
	var clk perfmodel.Clock
	return New(prof, &clk)
}

func hostFloats(n int) []byte {
	b := make([]byte, n*8)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(float64(i)))
	}
	return b
}

func acquireUpload(t *testing.T, c *FragCache, key FragKey, version uint64, data []byte) (*Buffer, func(), bool) {
	t.Helper()
	buf, release, hit, err := c.Acquire(key, version, len(data), func(b *Buffer) error {
		return c.GPU().CopyToDevice(b, 0, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf, release, hit
}

func TestCacheHitCostsZeroBusBytes(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	key := FragKey{Table: "item", Frag: 1, Col: 0, Row0: 0, Rows: 1000}
	data := hostFloats(1000)

	_, release, hit := acquireUpload(t, c, key, 7, data)
	if hit {
		t.Fatal("first Acquire reported a hit")
	}
	release()
	shipped := g.Stats().HostToDeviceBytes

	buf, release, hit := acquireUpload(t, c, key, 7, data)
	if !hit {
		t.Fatal("second Acquire at the same version missed")
	}
	if g.Stats().HostToDeviceBytes != shipped {
		t.Errorf("hit shipped %d extra H2D bytes, want 0", g.Stats().HostToDeviceBytes-shipped)
	}
	// The cached image is usable as a kernel operand.
	v := Vec{Buf: buf, Stride: 8, Size: 8, Len: 1000}
	got, err := g.ReduceSumFloat64(v, LaunchConfig{Blocks: 8, ThreadsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(999) * 1000 / 2; got != want {
		t.Errorf("reduce over cached image = %v, want %v", got, want)
	}
	release()
	release() // idempotent

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.PinnedBytes != 0 {
		t.Errorf("pinned = %d after release, want 0", st.PinnedBytes)
	}
}

func TestCacheVersionBumpRetiresStaleImage(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	key := FragKey{Table: "item", Frag: 2, Col: 1, Rows: 64}
	data := hostFloats(64)

	_, release, _ := acquireUpload(t, c, key, 1, data)
	release()
	free := g.FreeMemory()

	_, release, hit := acquireUpload(t, c, key, 2, data)
	if hit {
		t.Fatal("Acquire at a newer version hit the stale image")
	}
	release()
	if g.FreeMemory() != free {
		t.Errorf("stale image leaked: free %d -> %d", free, g.FreeMemory())
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 entry / 2 misses", st)
	}
}

func TestCacheClipsAreDistinctImages(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	whole := FragKey{Table: "item", Frag: 3, Col: 0, Row0: 0, Rows: 100}
	clip := FragKey{Table: "item", Frag: 3, Col: 0, Row0: 50, Rows: 50}

	_, relWhole, _ := acquireUpload(t, c, whole, 1, hostFloats(100))
	_, relClip, hit := acquireUpload(t, c, clip, 1, hostFloats(50))
	if hit {
		t.Fatal("a different clip of the same column hit")
	}
	relWhole()
	relClip()
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2 distinct clip images", st.Entries)
	}
}

func TestCacheEvictsLRUUnderPressure(t *testing.T) {
	const img = 1 << 20
	g := smallGPU(2*img + img/2) // room for two images, not three
	c := NewFragCache(g)
	data := make([]byte, img)
	k1 := FragKey{Table: "t", Frag: 1, Rows: 1}
	k2 := FragKey{Table: "t", Frag: 2, Rows: 1}
	k3 := FragKey{Table: "t", Frag: 3, Rows: 1}

	_, release, _ := acquireUpload(t, c, k1, 1, data)
	release()
	_, release, _ = acquireUpload(t, c, k2, 1, data)
	release()
	// Touch k1 so k2 becomes the LRU victim.
	_, release, hit := acquireUpload(t, c, k1, 1, data)
	if !hit {
		t.Fatal("warm k1 missed")
	}
	release()

	_, release, _ = acquireUpload(t, c, k3, 1, data)
	release()
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	_, release, hit = acquireUpload(t, c, k1, 1, data)
	if !hit {
		t.Error("k1 was evicted; expected k2 (the LRU entry) to go")
	}
	release()
}

func TestCacheAllPinnedRefusesEviction(t *testing.T) {
	const img = 1 << 20
	g := smallGPU(img + img/2)
	c := NewFragCache(g)
	data := make([]byte, img)
	k1 := FragKey{Table: "t", Frag: 1, Rows: 1}

	_, release, _ := acquireUpload(t, c, k1, 1, data) // still pinned
	_, _, _, err := c.Acquire(FragKey{Table: "t", Frag: 2, Rows: 1}, 1, img, func(*Buffer) error { return nil })
	if !errors.Is(err, ErrCachePinned) {
		t.Fatalf("err = %v, want ErrCachePinned", err)
	}
	release()

	// With the pin gone the same allocation succeeds by evicting k1.
	_, release2, _, err := c.Acquire(FragKey{Table: "t", Frag: 2, Rows: 1}, 1, img, func(*Buffer) error { return nil })
	if err != nil {
		t.Fatalf("post-release Acquire: %v", err)
	}
	release2()
}

func TestCacheInvalidateWhilePinnedDefersFree(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	key := FragKey{Table: "item", Frag: 9, Rows: 128}
	data := hostFloats(128)
	free := g.FreeMemory()

	buf, release, _ := acquireUpload(t, c, key, 1, data)
	c.InvalidateFrag("item", 9)
	// The image survives its invalidation while pinned: the in-flight
	// kernel can still read it.
	if _, err := g.ReduceSumFloat64(Vec{Buf: buf, Stride: 8, Size: 8, Len: 128}, LaunchConfig{Blocks: 4, ThreadsPerBlock: 32}); err != nil {
		t.Fatalf("kernel over invalidated-but-pinned image: %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d after invalidate, want 0", st.Entries)
	}
	release()
	if g.FreeMemory() != free {
		t.Errorf("deferred free leaked: %d -> %d", free, g.FreeMemory())
	}
}

func TestCacheInvalidateFragIsExact(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	data := hostFloats(32)
	kA := FragKey{Table: "item", Frag: 1, Col: 0, Rows: 32}
	kB := FragKey{Table: "item", Frag: 1, Col: 1, Rows: 32}
	kC := FragKey{Table: "item", Frag: 2, Col: 0, Rows: 32}
	for _, k := range []FragKey{kA, kB, kC} {
		_, release, _ := acquireUpload(t, c, k, 1, data)
		release()
	}

	c.InvalidateFrag("item", 1)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want only fragment 2's image left", st.Entries)
	}
	_, release, hit := acquireUpload(t, c, kC, 1, data)
	if !hit {
		t.Error("fragment 2's image was collaterally invalidated")
	}
	release()

	c.InvalidateTable("item")
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d after InvalidateTable, want 0", st.Entries)
	}
}

func TestCacheFlushReturnsMemory(t *testing.T) {
	g, _ := newGPU()
	c := NewFragCache(g)
	free := g.FreeMemory()
	for i := uint64(0); i < 4; i++ {
		k := FragKey{Table: "t", Frag: i, Rows: 256}
		_, release, _ := acquireUpload(t, c, k, 1, hostFloats(256))
		release()
	}
	c.Flush()
	if g.FreeMemory() != free {
		t.Errorf("flush leaked: free %d -> %d", free, g.FreeMemory())
	}
	if st := c.Stats(); st.Entries != 0 || st.ResidentBytes != 0 {
		t.Errorf("stats after flush = %+v", st)
	}
}
