// Package engine defines the common contract every surveyed storage
// engine in internal/engines (and the reference engine in internal/core)
// implements, plus the shared environment (memory spaces, the simulated
// device, the simulated clock) engines are constructed against.
//
// The contract deliberately mirrors the two access patterns of the
// paper's experiment: Materialize is the record-centric query Q1
// generalized to a position list, SumFloat64 is the attribute-centric
// query Q2. Snapshot exposes the live layout structure so that
// taxonomy.Classify can derive each engine's Table-1 row from what the
// engine actually built rather than from hand-written claims.
package engine

import (
	"errors"

	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// Shared engine errors. Individual engines may add their own.
var (
	// ErrNoSuchRow is returned for reads/updates of rows that do not exist.
	ErrNoSuchRow = errors.New("engine: no such row")
	// ErrReadOnly is returned by engines (or engine regions) that reject
	// writes, e.g. compressed base pages.
	ErrReadOnly = errors.New("engine: read-only")
	// ErrUnsupported is returned for operations outside an engine's
	// designed workload (e.g. updates on the OLAP-only CoGaDB port).
	ErrUnsupported = errors.New("engine: operation unsupported by this engine")
)

// Env is the platform an engine runs on: allocators for each memory
// space, the simulated device, the host profile, and the simulated clock
// shared by all cost accounting.
type Env struct {
	// Host allocates main memory (unlimited).
	Host *mem.Allocator
	// Disk allocates secondary storage (unlimited).
	Disk *mem.Allocator
	// GPU is the simulated device; engines without device support ignore it.
	GPU *device.GPU
	// HostProfile prices host-side work.
	HostProfile perfmodel.HostProfile
	// Clock accumulates simulated time across the platform. May be nil.
	Clock *perfmodel.Clock
	// ExecPolicy is the host threading policy engines configure their
	// bulk operators with: SingleThreaded (the zero value), blockwise
	// MultiThreaded, or MorselDriven on the shared resident pool.
	ExecPolicy exec.Policy
	// Cache keeps device-resident fragment images so repeated device
	// scans over unchanged data skip the bus (paper Section IV-C, "mixed
	// data location"). Engines treat a nil cache as "re-ship every scan".
	Cache *device.FragCache
	// Fleet, when non-nil, is a multi-card device environment: engines
	// route device-eligible scans through the cross-device scheduler
	// (exec.MultiDeviceScan) instead of the single-card DeviceScan. Nil
	// keeps the single-device behavior (GPU + Cache above).
	Fleet *device.Env
	// Shards maps fragment IDs to fleet cards; nil with a fleet falls
	// back to hashing the fragment ID.
	Shards *layout.ShardMap
}

// NewEnv builds a default environment: unlimited host and disk, a device
// with the paper's profile, one shared clock.
func NewEnv() *Env {
	clk := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clk)
	return &Env{
		Host:        mem.NewAllocator(mem.Host, 0),
		Disk:        mem.NewAllocator(mem.Secondary, 0),
		GPU:         gpu,
		HostProfile: perfmodel.DefaultHost(),
		Clock:       clk,
		Cache:       device.NewFragCache(gpu),
	}
}

// NewEnvDevices builds an environment with an n-card fleet (hash-sharded
// placement) alongside the default single device. n < 1 is clamped to 1;
// even a one-card fleet routes scans through the cross-device scheduler,
// which is what makes the multidevice panel's device-count series
// comparable.
func NewEnvDevices(n int) *Env {
	e := NewEnv()
	e.Fleet = device.NewEnv(n, perfmodel.DefaultDevice(), e.Clock)
	e.Shards = layout.NewShardMap(n, layout.ShardHash)
	return e
}

// DeviceExec returns the device-routed scan executor for one table: the
// cross-device scheduler when a fleet is configured, the single-card
// DeviceScan otherwise. The host lane of the fleet scheduler runs with
// the environment's exec policy and profile.
func (e *Env) DeviceExec(table string) exec.ScanExecutor {
	if e.Fleet != nil {
		return &exec.MultiDeviceScan{
			Env:      e.Fleet,
			Table:    table,
			Shards:   e.Shards,
			Host:     exec.Config{Policy: e.ExecPolicy, Host: e.HostProfile, Clock: e.Clock},
			HostLane: true,
		}
	}
	return exec.DeviceScan{GPU: e.GPU, Cache: e.Cache, Table: table}
}

// InvalidateFrag retires cached device images of one fragment everywhere
// — the single-card cache and every fleet card. Engines call this when a
// fragment's backing store is replaced or freed outright.
func (e *Env) InvalidateFrag(table string, frag uint64) {
	if e.Cache != nil {
		e.Cache.InvalidateFrag(table, frag)
	}
	if e.Fleet != nil {
		e.Fleet.InvalidateFrag(table, frag)
	}
}

// InvalidateTable retires cached device images of one table everywhere.
func (e *Env) InvalidateTable(table string) {
	if e.Cache != nil {
		e.Cache.InvalidateTable(table)
	}
	if e.Fleet != nil {
		e.Fleet.InvalidateTable(table)
	}
}

// Table is one relation managed by a storage engine.
type Table interface {
	// Schema returns the relation schema.
	Schema() *schema.Schema
	// Rows returns the visible row count.
	Rows() uint64
	// Insert appends a record and returns its position.
	Insert(rec schema.Record) (uint64, error)
	// Get materializes the full record at the given position.
	Get(row uint64) (schema.Record, error)
	// Update overwrites one field of one record.
	Update(row uint64, col int, v schema.Value) error
	// SumFloat64 aggregates a float64 attribute over all records (the
	// paper's attribute-centric query Q2).
	SumFloat64(col int) (float64, error)
	// Materialize resolves a sorted position list to full records (the
	// paper's record-centric access pattern).
	Materialize(positions []uint64) ([]schema.Record, error)
	// Snapshot digests the live physical structure for classification.
	Snapshot() layout.Snapshot
	// Free releases all storage held by the table.
	Free()
}

// Engine creates tables and declares its behavioural capabilities.
type Engine interface {
	// Name is the engine name as printed in the survey table.
	Name() string
	// Capabilities declares the behavioural facts the classifier cannot
	// derive structurally.
	Capabilities() taxonomy.Capabilities
	// Create makes a new empty table.
	Create(name string, s *schema.Schema) (Table, error)
}

// Adaptive is implemented by tables whose layouts respond to workload
// changes (the paper's "responsive" adaptability).
type Adaptive interface {
	// Observe feeds one workload operation into the table's monitor.
	Observe(op workload.Op)
	// Adapt re-organizes the table's layout if the observed pattern asks
	// for it, returning whether anything changed.
	Adapt() (bool, error)
}

// Historian is implemented by tables with historic querying (L-Store).
type Historian interface {
	// GetVersion materializes the record at the given position as of
	// `back` updates ago (0 = current).
	GetVersion(row uint64, back int) (schema.Record, error)
}

// Classify derives the engine's survey row from a representative table.
func Classify(e Engine, t Table) (taxonomy.Classification, error) {
	return taxonomy.Classify(e.Name(), t.Snapshot(), e.Capabilities())
}

// Audit classifies the table and validates the result against the
// taxonomy's consistency rules, returning the classification and any
// violations.
func Audit(e Engine, t Table) (taxonomy.Classification, []taxonomy.Violation, error) {
	c, err := Classify(e, t)
	if err != nil {
		return taxonomy.Classification{}, nil, err
	}
	return c, taxonomy.Validate(c, t.Snapshot(), e.Capabilities()), nil
}
