package engine

import (
	"testing"

	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
)

func TestNewEnvWiresPlatform(t *testing.T) {
	env := NewEnv()
	if env.Host.Space() != mem.Host || env.Host.Capacity() != 0 {
		t.Error("host allocator misconfigured")
	}
	if env.Disk.Space() != mem.Secondary {
		t.Error("disk allocator misconfigured")
	}
	if env.GPU == nil || env.GPU.FreeMemory() <= 0 {
		t.Error("GPU missing")
	}
	if env.Clock == nil {
		t.Error("clock missing")
	}
	if env.HostProfile.Threads != 8 {
		t.Error("host profile not the paper's")
	}
	// The GPU charges the shared clock.
	buf, err := env.GPU.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if err := env.GPU.CopyToDevice(buf, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if env.Clock.ElapsedNs() <= 0 {
		t.Error("GPU does not charge the shared clock")
	}
}

// fakeEngine is a minimal Engine for Classify/Audit tests.
type fakeEngine struct{ caps taxonomy.Capabilities }

func (f *fakeEngine) Name() string                        { return "Fake" }
func (f *fakeEngine) Capabilities() taxonomy.Capabilities { return f.caps }
func (f *fakeEngine) Create(name string, s *schema.Schema) (Table, error) {
	return nil, ErrUnsupported
}

// fakeTable wraps a relation for snapshots.
type fakeTable struct{ rel *layout.Relation }

func (f *fakeTable) Schema() *schema.Schema { return f.rel.Schema() }
func (f *fakeTable) Rows() uint64           { return f.rel.Rows() }
func (f *fakeTable) Insert(schema.Record) (uint64, error) {
	return 0, ErrUnsupported
}
func (f *fakeTable) Get(uint64) (schema.Record, error)             { return nil, ErrNoSuchRow }
func (f *fakeTable) Update(uint64, int, schema.Value) error        { return ErrReadOnly }
func (f *fakeTable) SumFloat64(int) (float64, error)               { return 0, ErrUnsupported }
func (f *fakeTable) Materialize([]uint64) ([]schema.Record, error) { return nil, ErrUnsupported }
func (f *fakeTable) Snapshot() layout.Snapshot                     { return f.rel.Digest() }
func (f *fakeTable) Free()                                         {}

func TestClassifyAndAudit(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"), schema.Int64Attr("b"))
	rel := layout.NewRelation("r", s)
	l, err := layout.Horizontal(mem.NewAllocator(mem.Host, 0), "h", s, 10, 5, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	rel.AddLayout(l)
	e := &fakeEngine{caps: taxonomy.Capabilities{Workloads: taxonomy.HTAP}}
	tbl := &fakeTable{rel: rel}

	c, err := Classify(e, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Fake" || c.Flexibility != taxonomy.WeakFlexible {
		t.Fatalf("classification = %+v", c)
	}

	_, violations, err := Audit(e, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations = %v", violations)
	}
}

func TestAuditPropagatesClassifyError(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"))
	rel := layout.NewRelation("empty", s)
	e := &fakeEngine{}
	if _, _, err := Audit(e, &fakeTable{rel: rel}); err == nil {
		t.Fatal("empty snapshot classified")
	}
}
