package layout

import (
	"fmt"

	"hybridstore/internal/stats"
)

// RestoreContent fills the fragment wholesale from a checkpointed byte
// image and sets its length — the recovery twin of Raw()+SetLen. Unlike
// SetLen it does NOT invalidate the zone maps: the caller restores the
// checkpointed zone snapshots immediately after via RestoreZone, so a
// warm restart re-seals nothing. raw must not exceed the fragment's
// block; n must fit the capacity.
func (f *Fragment) RestoreContent(raw []byte, n int) error {
	if n < 0 || n > f.Cap() {
		return fmt.Errorf("%w: len %d, capacity %d", ErrOutOfRange, n, f.Cap())
	}
	dst := f.block.Bytes()
	if len(raw) > len(dst) {
		return fmt.Errorf("%w: image %d bytes into %d-byte block", ErrOutOfRange, len(raw), len(dst))
	}
	copy(dst, raw)
	f.n = n
	f.version.Add(1)
	return nil
}

// RestoreZone installs a checkpointed zone snapshot for relation
// attribute c, preserving its sealed flag. Columns that carry no zone
// (non-8-byte-numeric) reject the restore; kind mismatches mean the
// snapshot and schema disagree — corruption, not a repairable state.
func (f *Fragment) RestoreZone(c int, s stats.Snapshot) error {
	p := f.colPos(c)
	if p < 0 || f.zones[p] == nil {
		return fmt.Errorf("%w: column %d carries no zone", ErrOutOfRange, c)
	}
	if f.zones[p].Kind() != s.Kind {
		return fmt.Errorf("%w: zone kind %s, snapshot %s", ErrBadFragment, f.zones[p].Kind(), s.Kind)
	}
	f.zones[p] = stats.FromSnapshot(s)
	return nil
}
