package layout

import (
	"fmt"

	"hybridstore/internal/mem"
)

// Grow returns a fragment with the same columns and linearization whose
// row range is extended to [Rows().Begin, Rows().Begin+newCap), preserving
// all stored tuplets. The receiver is freed on success and must not be
// used afterwards. Growing is how single-fragment engines (Fractured
// Mirrors' full-relation mirrors, CoGaDB's resident columns) absorb
// appends; chunked engines allocate new fragments instead.
func (f *Fragment) Grow(alloc *mem.Allocator, newCap int) (*Fragment, error) {
	if newCap < f.n {
		return nil, fmt.Errorf("%w: grow to %d below stored %d tuplets", ErrOutOfRange, newCap, f.n)
	}
	if newCap == f.Cap() {
		return f, nil
	}
	rows := RowRange{Begin: f.rows.Begin, End: f.rows.Begin + uint64(newCap)}
	nf, err := NewFragment(alloc, f.rel, f.cols, rows, f.lin)
	if err != nil {
		return nil, err
	}
	switch f.lin {
	case NSM, Direct:
		// Tuplets are a contiguous prefix; one copy moves everything.
		copy(nf.block.Bytes(), f.block.Bytes()[:f.n*f.width])
	case DSM:
		// Column regions are strided by capacity: copy each column's
		// filled prefix into its new region.
		for p, c := range f.cols {
			size := f.rel.Attr(c).Size
			src := f.block.Bytes()[f.colOff[p] : f.colOff[p]+f.n*size]
			copy(nf.block.Bytes()[nf.colOff[p]:], src)
		}
	}
	nf.n = f.n
	for p, z := range f.zones {
		if z != nil {
			nf.zones[p] = z.Clone()
		}
	}
	f.Free()
	return nf, nil
}
