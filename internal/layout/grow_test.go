package layout

import (
	"errors"
	"testing"
	"testing/quick"

	"hybridstore/internal/schema"
)

func TestGrowPreservesDataAllLinearizations(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"), schema.Int64Attr("b"))
	for _, lin := range []Linearization{NSM, DSM} {
		a := hostAlloc()
		f, err := NewFragment(a, s, []int{0, 1}, RowRange{0, 3}, lin)
		if err != nil {
			t.Fatal(err)
		}
		appendRows(t, f, [][]int64{{1, 10}, {2, 20}, {3, 30}})
		g, err := f.Grow(a, 10)
		if err != nil {
			t.Fatalf("%v Grow: %v", lin, err)
		}
		if g.Cap() != 10 || g.Len() != 3 {
			t.Fatalf("%v: cap=%d len=%d", lin, g.Cap(), g.Len())
		}
		for i, want := range []int64{10, 20, 30} {
			v, err := g.Get(i, 1)
			if err != nil || v.I != want {
				t.Fatalf("%v Get(%d,1) = %v, %v; want %d", lin, i, v, err, want)
			}
		}
		// New capacity is usable.
		if err := g.AppendTuplet([]schema.Value{schema.IntValue(4), schema.IntValue(40)}); err != nil {
			t.Fatalf("%v append after grow: %v", lin, err)
		}
		// Old block returned to the allocator.
		if a.Used() != int64(g.SizeBytes()) {
			t.Errorf("%v: allocator used %d, want %d", lin, a.Used(), g.SizeBytes())
		}
	}
}

func TestGrowDirect(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"), schema.Int64Attr("b"))
	a := hostAlloc()
	f, _ := NewFragment(a, s, []int{1}, RowRange{0, 2}, Direct)
	appendRows(t, f, [][]int64{{7}, {8}})
	g, err := f.Grow(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := g.Get(1, 1)
	if v.I != 8 {
		t.Fatalf("direct grow lost data: %v", v)
	}
}

func TestGrowRejectsShrinkBelowStored(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"))
	a := hostAlloc()
	f, _ := NewFragment(a, s, []int{0}, RowRange{0, 4}, Direct)
	appendRows(t, f, [][]int64{{1}, {2}, {3}})
	if _, err := f.Grow(a, 2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if f.Len() != 3 {
		t.Error("failed Grow corrupted fragment")
	}
}

func TestGrowSameCapIsNoOp(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"))
	a := hostAlloc()
	f, _ := NewFragment(a, s, []int{0}, RowRange{0, 4}, Direct)
	g, err := f.Grow(a, 4)
	if err != nil || g != f {
		t.Fatalf("same-cap grow: %v, %v", g, err)
	}
}

func TestGrowPreservesRowRangeBegin(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"), schema.Int64Attr("b"))
	a := hostAlloc()
	f, _ := NewFragment(a, s, []int{0, 1}, RowRange{100, 104}, NSM)
	g, err := f.Grow(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != (RowRange{100, 108}) {
		t.Fatalf("rows = %v", g.Rows())
	}
}

// Property: Grow then full readback equals the original contents for
// random fill levels and growth factors.
func TestQuickGrowRoundTrip(t *testing.T) {
	s := schema.MustNew(schema.Int64Attr("a"), schema.Float64Attr("b"), schema.CharAttr("c", 3))
	f := func(fill, extra uint8, dsm bool) bool {
		a := hostAlloc()
		lin := NSM
		if dsm {
			lin = DSM
		}
		capacity := int(fill)%20 + 2
		n := capacity / 2
		fr, err := NewFragment(a, s, []int{0, 1, 2}, RowRange{0, uint64(capacity)}, lin)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if fr.AppendTuplet([]schema.Value{
				schema.IntValue(int64(i)), schema.FloatValue(float64(i) / 2), schema.CharValue("x"),
			}) != nil {
				return false
			}
		}
		g, err := fr.Grow(a, capacity+int(extra)%50)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			v, err := g.Get(i, 0)
			if err != nil || v.I != int64(i) {
				return false
			}
			w, err := g.Get(i, 1)
			if err != nil || w.F != float64(i)/2 {
				return false
			}
		}
		return g.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
