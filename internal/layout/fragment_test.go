package layout

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
)

func hostAlloc() *mem.Allocator { return mem.NewAllocator(mem.Host, 0) }

// twoColSchema is a two-int64-attribute schema used by byte-layout tests.
func twoColSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(schema.Int64Attr("a"), schema.Int64Attr("b"))
}

func appendRows(t *testing.T, f *Fragment, rows [][]int64) {
	t.Helper()
	for _, r := range rows {
		vals := make([]schema.Value, len(r))
		for i, v := range r {
			vals[i] = schema.IntValue(v)
		}
		if err := f.AppendTuplet(vals); err != nil {
			t.Fatalf("AppendTuplet(%v): %v", r, err)
		}
	}
}

func u64at(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }

func TestNSMByteLayout(t *testing.T) {
	s := twoColSchema(t)
	f, err := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, NSM)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, f, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	raw := f.Raw()
	// NSM: a1 b1 a2 b2 a3 b3
	want := []uint64{1, 10, 2, 20, 3, 30}
	for i, w := range want {
		if got := u64at(raw, i*8); got != w {
			t.Errorf("NSM byte %d: got %d, want %d", i, got, w)
		}
	}
}

func TestDSMByteLayout(t *testing.T) {
	s := twoColSchema(t)
	f, err := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, DSM)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, f, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	raw := f.Raw()
	// DSM with capacity 4: a1 a2 a3 _ b1 b2 b3 _  (column region sized by capacity)
	wantA := []uint64{1, 2, 3}
	wantB := []uint64{10, 20, 30}
	for i, w := range wantA {
		if got := u64at(raw, i*8); got != w {
			t.Errorf("DSM col a slot %d: got %d, want %d", i, got, w)
		}
	}
	for i, w := range wantB {
		if got := u64at(raw, (4+i)*8); got != w {
			t.Errorf("DSM col b slot %d: got %d, want %d", i, got, w)
		}
	}
}

func TestDirectByteLayout(t *testing.T) {
	s := twoColSchema(t)
	f, err := NewFragment(hostAlloc(), s, []int{1}, RowRange{0, 3}, Direct)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, f, [][]int64{{7}, {8}, {9}})
	raw := f.Raw()
	for i, w := range []uint64{7, 8, 9} {
		if got := u64at(raw, i*8); got != w {
			t.Errorf("direct slot %d: got %d, want %d", i, got, w)
		}
	}
}

func TestNewFragmentValidation(t *testing.T) {
	s := twoColSchema(t)
	a := hostAlloc()
	cases := []struct {
		name string
		cols []int
		rows RowRange
		lin  Linearization
		want error
	}{
		{"no cols", nil, RowRange{0, 4}, NSM, ErrBadFragment},
		{"empty rows", []int{0}, RowRange{4, 4}, Direct, ErrBadFragment},
		{"col out of range", []int{2}, RowRange{0, 4}, Direct, ErrBadFragment},
		{"negative col", []int{-1}, RowRange{0, 4}, Direct, ErrBadFragment},
		{"duplicate col", []int{0, 0}, RowRange{0, 4}, NSM, ErrBadFragment},
		{"direct on fat", []int{0, 1}, RowRange{0, 4}, Direct, ErrBadLinearization},
		{"unknown lin", []int{0, 1}, RowRange{0, 4}, Linearization(9), ErrBadLinearization},
	}
	for _, c := range cases {
		if _, err := NewFragment(a, s, c.cols, c.rows, c.lin); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, err := NewFragment(a, nil, []int{0}, RowRange{0, 1}, Direct); !errors.Is(err, ErrBadFragment) {
		t.Error("nil schema accepted")
	}
}

func TestDegenerateFatAllowsNSMAndDSM(t *testing.T) {
	s := twoColSchema(t)
	// Single column with NSM/DSM: both orders coincide; allowed.
	for _, lin := range []Linearization{NSM, DSM} {
		f, err := NewFragment(hostAlloc(), s, []int{0}, RowRange{0, 4}, lin)
		if err != nil {
			t.Fatalf("single-col %v: %v", lin, err)
		}
		if f.IsFat() {
			t.Errorf("single-col fragment reported fat")
		}
	}
	// Single row, two cols: thin by the paper's definition.
	f, err := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 1}, NSM)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsFat() {
		t.Error("1-row fragment reported fat")
	}
}

func TestFragmentFull(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 2}, NSM)
	appendRows(t, f, [][]int64{{1, 1}, {2, 2}})
	err := f.AppendTuplet([]schema.Value{schema.IntValue(3), schema.IntValue(3)})
	if !errors.Is(err, ErrFragmentFull) {
		t.Fatalf("err = %v, want ErrFragmentFull", err)
	}
}

func TestAppendTupletArityAndRollback(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 2}, NSM)
	if err := f.AppendTuplet([]schema.Value{schema.IntValue(1)}); !errors.Is(err, schema.ErrArityMismatch) {
		t.Fatalf("arity err = %v", err)
	}
	// Kind mismatch mid-tuplet must roll back the length reservation.
	err := f.AppendTuplet([]schema.Value{schema.IntValue(1), schema.FloatValue(2)})
	if err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if f.Len() != 0 {
		t.Fatalf("failed append left Len = %d, want 0", f.Len())
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	s := twoColSchema(t)
	for _, lin := range []Linearization{NSM, DSM} {
		f, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, lin)
		appendRows(t, f, [][]int64{{1, 10}, {2, 20}})
		if err := f.Set(1, 1, schema.IntValue(99)); err != nil {
			t.Fatalf("%v Set: %v", lin, err)
		}
		v, err := f.Get(1, 1)
		if err != nil || v.I != 99 {
			t.Fatalf("%v Get = %v, %v; want 99", lin, v, err)
		}
		v, _ = f.Get(0, 0)
		if v.I != 1 {
			t.Fatalf("%v neighbouring field clobbered: %v", lin, v)
		}
	}
}

func TestGetSetErrors(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{0}, RowRange{0, 4}, Direct)
	appendRows(t, f, [][]int64{{1}})
	if _, err := f.Get(0, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Get missing col: %v", err)
	}
	if _, err := f.Get(1, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Get beyond len: %v", err)
	}
	if err := f.Set(0, 1, schema.IntValue(1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Set missing col: %v", err)
	}
	if err := f.Set(-1, 0, schema.IntValue(1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Set negative: %v", err)
	}
}

func TestTuplet(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{1, 0}, RowRange{0, 2}, NSM) // reversed col order
	appendRows(t, f, [][]int64{{10, 1}})                                  // b=10, a=1
	tp, err := f.Tuplet(0)
	if err != nil {
		t.Fatal(err)
	}
	if tp[0].I != 10 || tp[1].I != 1 {
		t.Fatalf("Tuplet = %v, want [10 1]", tp)
	}
	if _, err := f.Tuplet(1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Tuplet(1) err = %v", err)
	}
}

func TestColVectorStrides(t *testing.T) {
	s := twoColSchema(t)
	nsm, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, NSM)
	dsm, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, DSM)
	appendRows(t, nsm, [][]int64{{1, 10}, {2, 20}})
	appendRows(t, dsm, [][]int64{{1, 10}, {2, 20}})

	v, err := nsm.ColVector(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Contiguous() || v.Stride != 16 || v.Base != 8 || v.Len != 2 {
		t.Fatalf("NSM ColVector = %+v", v)
	}
	if got := u64at(v.Data, v.Base+v.Stride); got != 20 {
		t.Fatalf("NSM strided read = %d, want 20", got)
	}

	v, err = dsm.ColVector(1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Contiguous() || v.Base != 32 {
		t.Fatalf("DSM ColVector = %+v", v)
	}
	if _, err := dsm.ColVector(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("missing col err = %v", err)
	}
}

func TestTupletBytes(t *testing.T) {
	s := twoColSchema(t)
	nsm, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 2}, NSM)
	appendRows(t, nsm, [][]int64{{1, 10}})
	b, err := nsm.TupletBytes(0)
	if err != nil || len(b) != 16 {
		t.Fatalf("TupletBytes = %d bytes, %v", len(b), err)
	}
	dsm, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 2}, DSM)
	appendRows(t, dsm, [][]int64{{1, 10}})
	if _, err := dsm.TupletBytes(0); !errors.Is(err, ErrBadLinearization) {
		t.Errorf("DSM TupletBytes err = %v", err)
	}
	if _, err := nsm.TupletBytes(3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range err = %v", err)
	}
}

func TestRelinearizePreservesData(t *testing.T) {
	s := twoColSchema(t)
	a := hostAlloc()
	f, _ := NewFragment(a, s, []int{0, 1}, RowRange{0, 8}, NSM)
	appendRows(t, f, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	g, err := f.Relinearize(a, DSM)
	if err != nil {
		t.Fatal(err)
	}
	if g.Lin() != DSM || g.Len() != 3 {
		t.Fatalf("relinearized: %v", g)
	}
	for i, want := range []int64{10, 20, 30} {
		v, err := g.Get(i, 1)
		if err != nil || v.I != want {
			t.Fatalf("Get(%d,1) = %v, %v; want %d", i, v, err, want)
		}
	}
	// Old block freed: allocator usage equals just the new fragment.
	if a.Used() != int64(g.SizeBytes()) {
		t.Errorf("allocator used = %d, want %d", a.Used(), g.SizeBytes())
	}
}

func TestRelinearizeOOM(t *testing.T) {
	s := twoColSchema(t)
	tight := mem.NewAllocator(mem.Device, 64)
	f, err := NewFragment(tight, s, []int{0, 1}, RowRange{0, 4}, NSM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Relinearize(tight, DSM); !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if f.Len() != 0 || f.Raw() == nil {
		t.Error("failed relinearize corrupted source fragment")
	}
}

func TestCloneToOtherSpace(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, DSM)
	appendRows(t, f, [][]int64{{1, 10}, {2, 20}})
	dev := mem.NewAllocator(mem.Device, 1<<20)
	g, err := f.CloneTo(dev)
	if err != nil {
		t.Fatal(err)
	}
	if g.Space() != mem.Device || g.Len() != 2 {
		t.Fatalf("clone: space=%v len=%d", g.Space(), g.Len())
	}
	v, _ := g.Get(1, 1)
	if v.I != 20 {
		t.Fatalf("clone data mismatch: %v", v)
	}
}

func TestSetLen(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{0}, RowRange{0, 4}, Direct)
	if err := f.SetLen(3); err != nil || f.Len() != 3 {
		t.Fatalf("SetLen(3): %v, len=%d", err, f.Len())
	}
	if err := f.SetLen(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetLen(5) err = %v", err)
	}
	if err := f.SetLen(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetLen(-1) err = %v", err)
	}
}

func TestRowRange(t *testing.T) {
	r := RowRange{2, 5}
	if r.Len() != 3 || !r.Contains(2) || r.Contains(5) || r.Contains(1) {
		t.Fatalf("RowRange basics broken: %v", r)
	}
	if !r.Overlaps(RowRange{4, 9}) || r.Overlaps(RowRange{5, 9}) {
		t.Fatal("Overlaps broken")
	}
	if (RowRange{5, 2}).Len() != 0 {
		t.Fatal("inverted range Len should be 0")
	}
}

func TestLinearizationString(t *testing.T) {
	cases := map[Linearization]string{Direct: "direct", NSM: "NSM", DSM: "DSM", Linearization(7): "Linearization(7)"}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
}

// Property: NSM and DSM fragments with identical appends agree on every
// Get, and Relinearize is an identity on contents.
func TestQuickLinearizationEquivalence(t *testing.T) {
	s := schema.MustNew(
		schema.Int64Attr("a"), schema.Float64Attr("b"),
		schema.Int32Attr("c"), schema.CharAttr("d", 5),
	)
	f := func(seed int64, nRows uint8) bool {
		n := int(nRows)%32 + 2
		r := rand.New(rand.NewSource(seed))
		a := hostAlloc()
		nsm, err := NewFragment(a, s, []int{0, 1, 2, 3}, RowRange{0, uint64(n)}, NSM)
		if err != nil {
			return false
		}
		dsm, err := NewFragment(a, s, []int{0, 1, 2, 3}, RowRange{0, uint64(n)}, DSM)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			vals := []schema.Value{
				schema.IntValue(r.Int63()),
				schema.FloatValue(r.NormFloat64()),
				schema.Int32Value(int32(r.Int31())),
				schema.CharValue(string([]byte{byte('a' + r.Intn(26))})),
			}
			if nsm.AppendTuplet(vals) != nil || dsm.AppendTuplet(vals) != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			for c := 0; c < 4; c++ {
				va, e1 := nsm.Get(i, c)
				vb, e2 := dsm.Get(i, c)
				if e1 != nil || e2 != nil || !va.Equal(vb) {
					return false
				}
			}
		}
		re, err := nsm.Relinearize(a, DSM)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for c := 0; c < 4; c++ {
				va, e1 := re.Get(i, c)
				vb, e2 := dsm.Get(i, c)
				if e1 != nil || e2 != nil || !va.Equal(vb) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentString(t *testing.T) {
	s := twoColSchema(t)
	f, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, NSM)
	got := f.String()
	for _, want := range []string{"fat", "NSM", "host", "0/4"} {
		if !contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
