package layout

import (
	"errors"
	"fmt"
	"sort"

	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
)

// Layout errors.
var (
	// ErrNoFragments is returned for layouts without fragments.
	ErrNoFragments = errors.New("layout: layout has no fragments")
	// ErrNotCovered is returned when a requested cell is not covered by
	// any fragment of the layout.
	ErrNotCovered = errors.New("layout: cell not covered by any fragment")
)

// Layout is one alternative physical organization of a relation: a named
// set of possibly overlapping fragments. Whether fragments may overlap,
// whether the layout must cover the relation, and how appends are routed
// is engine policy; Layout provides the mechanics plus structural
// predicates the taxonomy classifier consumes.
type Layout struct {
	name  string
	rel   *schema.Schema
	frags []*Fragment
}

// NewLayout creates an empty layout over the relation schema rel.
func NewLayout(name string, rel *schema.Schema) *Layout {
	return &Layout{name: name, rel: rel}
}

// Name returns the layout's name.
func (l *Layout) Name() string { return l.name }

// Schema returns the relation schema.
func (l *Layout) Schema() *schema.Schema { return l.rel }

// Fragments returns the fragment list (shared slice; do not mutate).
func (l *Layout) Fragments() []*Fragment { return l.frags }

// Add appends a fragment to the layout. The fragment must belong to the
// same relation schema.
func (l *Layout) Add(f *Fragment) error {
	if f.Schema() != l.rel && !f.Schema().Equal(l.rel) {
		return fmt.Errorf("%w: fragment schema differs from layout schema", ErrBadFragment)
	}
	l.frags = append(l.frags, f)
	return nil
}

// Remove deletes the fragment from the layout (without freeing it).
func (l *Layout) Remove(f *Fragment) {
	for i, g := range l.frags {
		if g == f {
			l.frags = append(l.frags[:i], l.frags[i+1:]...)
			return
		}
	}
}

// Replace swaps old for new in place, preserving order.
func (l *Layout) Replace(old, new *Fragment) error {
	for i, g := range l.frags {
		if g == old {
			l.frags[i] = new
			return nil
		}
	}
	return fmt.Errorf("%w: fragment not in layout", ErrOutOfRange)
}

// Free releases every fragment in the layout.
func (l *Layout) Free() {
	for _, f := range l.frags {
		f.Free()
	}
	l.frags = nil
}

// FragmentAt returns the first fragment covering cell (row, col), or an
// ErrNotCovered error.
func (l *Layout) FragmentAt(row uint64, col int) (*Fragment, error) {
	for _, f := range l.frags {
		if f.Rows().Contains(row) && f.HasCol(col) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("%w: row %d, col %d in layout %q", ErrNotCovered, row, col, l.name)
}

// Covers reports whether every cell (row, col) for row < rows and every
// attribute is covered by at least one fragment. A covering layout is a
// "complete relation divided into fragments" in the paper's sense.
func (l *Layout) Covers(rows uint64) bool {
	for c := 0; c < l.rel.Arity(); c++ {
		if !l.coversColumn(c, rows) {
			return false
		}
	}
	return true
}

// coversColumn checks row coverage of one attribute via interval merging.
func (l *Layout) coversColumn(col int, rows uint64) bool {
	if rows == 0 {
		return true
	}
	var ivals []RowRange
	for _, f := range l.frags {
		if f.HasCol(col) {
			ivals = append(ivals, f.Rows())
		}
	}
	sort.Slice(ivals, func(i, j int) bool { return ivals[i].Begin < ivals[j].Begin })
	var covered uint64
	for _, iv := range ivals {
		if iv.Begin > covered {
			return false
		}
		if iv.End > covered {
			covered = iv.End
		}
		if covered >= rows {
			return true
		}
	}
	return covered >= rows
}

// Overlapping reports whether any two fragments share a cell.
func (l *Layout) Overlapping() bool {
	for i := 0; i < len(l.frags); i++ {
		for j := i + 1; j < len(l.frags); j++ {
			a, b := l.frags[i], l.frags[j]
			if !a.Rows().Overlaps(b.Rows()) {
				continue
			}
			for _, c := range a.cols {
				if b.HasCol(c) {
					return true
				}
			}
		}
	}
	return false
}

// VerticalOnly reports whether the layout is a pure vertical fragmentation:
// all fragments span the same row range and their column sets partition the
// schema. Such fragments are the paper's sub-relations.
func (l *Layout) VerticalOnly() bool {
	if len(l.frags) == 0 {
		return false
	}
	rows := l.frags[0].Rows()
	seen := make(map[int]bool)
	for _, f := range l.frags {
		if f.Rows() != rows {
			return false
		}
		for _, c := range f.cols {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
	}
	return len(seen) == l.rel.Arity()
}

// HorizontalOnly reports whether the layout is a pure horizontal
// fragmentation: every fragment spans the full schema and the row ranges
// are disjoint.
func (l *Layout) HorizontalOnly() bool {
	if len(l.frags) == 0 {
		return false
	}
	for _, f := range l.frags {
		if f.Arity() != l.rel.Arity() {
			return false
		}
	}
	for i := 0; i < len(l.frags); i++ {
		for j := i + 1; j < len(l.frags); j++ {
			if l.frags[i].Rows().Overlaps(l.frags[j].Rows()) {
				return false
			}
		}
	}
	return true
}

// Combined reports whether the layout mixes vertical and horizontal
// partitioning (the structural signature of a strong flexible layout).
func (l *Layout) Combined() bool {
	return len(l.frags) > 1 && !l.VerticalOnly() && !l.HorizontalOnly()
}

// Spaces returns the distinct memory spaces the layout's fragments occupy.
func (l *Layout) Spaces() []mem.Space {
	seen := make(map[mem.Space]bool)
	var out []mem.Space
	for _, f := range l.frags {
		if !seen[f.Space()] {
			seen[f.Space()] = true
			out = append(out, f.Space())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Record materializes the full record at relation row position row,
// reading each attribute from the first covering fragment. The row index
// inside each fragment is row - fragment.Rows().Begin.
func (l *Layout) Record(row uint64) (schema.Record, error) {
	rec := make(schema.Record, l.rel.Arity())
	for c := 0; c < l.rel.Arity(); c++ {
		f, err := l.FragmentAt(row, c)
		if err != nil {
			return nil, err
		}
		v, err := f.Get(int(row-f.Rows().Begin), c)
		if err != nil {
			return nil, fmt.Errorf("layout %q row %d col %d: %w", l.name, row, c, err)
		}
		rec[c] = v
	}
	return rec, nil
}

// Vertical builds a pure vertical layout: groups lists the column groups
// (each a set of relation attribute indexes); every group becomes one
// fragment spanning rows [0, rowCap). lin picks the linearization per
// group; thin groups (single column) are forced to Direct.
func Vertical(alloc *mem.Allocator, name string, rel *schema.Schema, groups [][]int, rowCap uint64, lin func(group []int) Linearization) (*Layout, error) {
	l := NewLayout(name, rel)
	for _, g := range groups {
		gl := Direct
		if len(g) > 1 {
			gl = lin(g)
		}
		f, err := NewFragment(alloc, rel, g, RowRange{0, rowCap}, gl)
		if err != nil {
			l.Free()
			return nil, err
		}
		if err := l.Add(f); err != nil {
			f.Free()
			l.Free()
			return nil, err
		}
	}
	return l, nil
}

// Horizontal builds a pure horizontal layout: the relation's full schema is
// chunked into fragments of chunkRows rows each up to totalRows, all with
// the same linearization.
func Horizontal(alloc *mem.Allocator, name string, rel *schema.Schema, totalRows, chunkRows uint64, lin Linearization) (*Layout, error) {
	if chunkRows == 0 {
		return nil, fmt.Errorf("%w: zero chunk size", ErrBadFragment)
	}
	l := NewLayout(name, rel)
	all := make([]int, rel.Arity())
	for i := range all {
		all[i] = i
	}
	for begin := uint64(0); begin < totalRows; begin += chunkRows {
		end := begin + chunkRows
		if end > totalRows {
			end = totalRows
		}
		f, err := NewFragment(alloc, rel, all, RowRange{begin, end}, lin)
		if err != nil {
			l.Free()
			return nil, err
		}
		if err := l.Add(f); err != nil {
			f.Free()
			l.Free()
			return nil, err
		}
	}
	return l, nil
}

// AllCols returns [0, 1, ..., arity-1] for a schema; a convenience for
// full-width fragments.
func AllCols(rel *schema.Schema) []int {
	all := make([]int, rel.Arity())
	for i := range all {
		all[i] = i
	}
	return all
}

// String summarizes the layout.
func (l *Layout) String() string {
	return fmt.Sprintf("layout{%q, %d fragments}", l.name, len(l.frags))
}
