package layout

import "sync"

// ShardPolicy selects how fragment IDs map to devices.
type ShardPolicy uint8

const (
	// ShardHash scatters fragments across devices by a mixed hash of the
	// fragment ID — balanced placement regardless of allocation order.
	ShardHash ShardPolicy = iota
	// ShardRange places runs of consecutively allocated fragment IDs on
	// the same device (round-robin across devices per run), preserving
	// allocation locality: a table loaded in one burst lands in large
	// contiguous stripes.
	ShardRange
)

// DefaultShardSpan is the run length of ShardRange placement.
const DefaultShardSpan = 4

// ShardMap assigns fragments to the cards of a multi-device fleet, keyed
// by the process-unique fragment ID (Fragment.ID). The hash and range
// policies are deterministic; Pin overrides the policy for individual
// fragments (explicit placement, e.g. after a migration). Safe for
// concurrent use.
type ShardMap struct {
	devices int
	policy  ShardPolicy
	span    uint64

	mu     sync.RWMutex
	pinned map[uint64]int
}

// NewShardMap creates a map over the given device count (clamped to ≥ 1)
// with the given policy.
func NewShardMap(devices int, policy ShardPolicy) *ShardMap {
	if devices < 1 {
		devices = 1
	}
	return &ShardMap{devices: devices, policy: policy, span: DefaultShardSpan}
}

// NewShardMapSpan is NewShardMap with an explicit ShardRange run length.
func NewShardMapSpan(devices int, policy ShardPolicy, span uint64) *ShardMap {
	m := NewShardMap(devices, policy)
	if span >= 1 {
		m.span = span
	}
	return m
}

// Devices returns the device count the map shards over.
func (m *ShardMap) Devices() int { return m.devices }

// Policy returns the placement policy.
func (m *ShardMap) Policy() ShardPolicy { return m.policy }

// DeviceFor returns the device index owning the fragment.
func (m *ShardMap) DeviceFor(fragID uint64) int {
	m.mu.RLock()
	if d, ok := m.pinned[fragID]; ok {
		m.mu.RUnlock()
		return d
	}
	m.mu.RUnlock()
	if m.devices == 1 {
		return 0
	}
	switch m.policy {
	case ShardRange:
		return int((fragID / m.span) % uint64(m.devices))
	default:
		return int(mix64(fragID) % uint64(m.devices))
	}
}

// Pin overrides the policy for one fragment. Out-of-range devices clamp
// into the fleet.
func (m *ShardMap) Pin(fragID uint64, device int) {
	if device < 0 {
		device = 0
	}
	if device >= m.devices {
		device = m.devices - 1
	}
	m.mu.Lock()
	if m.pinned == nil {
		m.pinned = make(map[uint64]int)
	}
	m.pinned[fragID] = device
	m.mu.Unlock()
}

// Unpin removes an explicit placement, returning the fragment to the
// policy.
func (m *ShardMap) Unpin(fragID uint64) {
	m.mu.Lock()
	delete(m.pinned, fragID)
	m.mu.Unlock()
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// so consecutive fragment IDs land on unrelated devices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
