package layout

import "hybridstore/internal/mem"

// The snapshot types give the taxonomy classifier a structural view of an
// engine's live layouts without coupling it to fragment internals. Engines
// expose snapshots of representative relations; internal/taxonomy derives
// classification properties (Table 1 of the paper) from them.

// FragmentInfo is the structural digest of one fragment.
type FragmentInfo struct {
	// Rows is the covered row range.
	Rows RowRange
	// Cols are the covered relation attribute indexes.
	Cols []int
	// Lin is the fragment's physical linearization.
	Lin Linearization
	// Space is the memory space holding the fragment's bytes.
	Space mem.Space
	// Fat records the paper's fat/thin distinction.
	Fat bool
}

// LayoutInfo is the structural digest of one layout.
type LayoutInfo struct {
	// Name is the layout name.
	Name string
	// Fragments digests each fragment.
	Fragments []FragmentInfo
	// VerticalOnly, HorizontalOnly and Combined mirror the layout
	// predicates of the same names.
	VerticalOnly, HorizontalOnly, Combined bool
}

// Snapshot is the structural digest of one relation's physical state.
type Snapshot struct {
	// Relation is the relation name.
	Relation string
	// Arity is the schema arity.
	Arity int
	// Rows is the logical row count.
	Rows uint64
	// Layouts digests each layout.
	Layouts []LayoutInfo
}

// Digest builds the structural digest of a fragment.
func (f *Fragment) Digest() FragmentInfo {
	return FragmentInfo{
		Rows:  f.Rows(),
		Cols:  f.Cols(),
		Lin:   f.Lin(),
		Space: f.Space(),
		Fat:   f.IsFat(),
	}
}

// Digest builds the structural digest of a layout.
func (l *Layout) Digest() LayoutInfo {
	info := LayoutInfo{
		Name:           l.Name(),
		VerticalOnly:   l.VerticalOnly(),
		HorizontalOnly: l.HorizontalOnly(),
		Combined:       l.Combined(),
	}
	for _, f := range l.Fragments() {
		info.Fragments = append(info.Fragments, f.Digest())
	}
	return info
}

// Digest builds the structural digest of a relation.
func (r *Relation) Digest() Snapshot {
	s := Snapshot{Relation: r.Name(), Arity: r.Schema().Arity(), Rows: r.Rows()}
	for _, l := range r.Layouts() {
		s.Layouts = append(s.Layouts, l.Digest())
	}
	return s
}
