package layout

import (
	"errors"
	"fmt"

	"hybridstore/internal/schema"
)

// ErrNoLayout is returned when a relation operation needs a layout and the
// relation has none.
var ErrNoLayout = errors.New("layout: relation has no layout")

// Relation is the logical object of the paper's terminology: a named
// schema with one or more alternative physical layouts and a row count.
// Engines own the policy of how layouts are kept coherent (replication or
// delegation, Section III "Fragment scheme"); Relation only carries the
// structure.
type Relation struct {
	name    string
	rel     *schema.Schema
	layouts []*Layout
	rows    uint64
}

// NewRelation creates a relation with no layouts yet.
func NewRelation(name string, s *schema.Schema) *Relation {
	return &Relation{name: name, rel: s}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *schema.Schema { return r.rel }

// Rows returns the logical row count.
func (r *Relation) Rows() uint64 { return r.rows }

// SetRows updates the logical row count (engines call this after appends).
func (r *Relation) SetRows(n uint64) { r.rows = n }

// Layouts returns the layout list (shared slice; do not mutate).
func (r *Relation) Layouts() []*Layout { return r.layouts }

// AddLayout attaches a layout to the relation.
func (r *Relation) AddLayout(l *Layout) { r.layouts = append(r.layouts, l) }

// RemoveLayout detaches a layout (without freeing it).
func (r *Relation) RemoveLayout(l *Layout) {
	for i, x := range r.layouts {
		if x == l {
			r.layouts = append(r.layouts[:i], r.layouts[i+1:]...)
			return
		}
	}
}

// Primary returns the first layout, the conventional default for engines
// with a single layout.
func (r *Relation) Primary() (*Layout, error) {
	if len(r.layouts) == 0 {
		return nil, fmt.Errorf("%w: relation %q", ErrNoLayout, r.name)
	}
	return r.layouts[0], nil
}

// Layout returns the named layout, or nil.
func (r *Relation) Layout(name string) *Layout {
	for _, l := range r.layouts {
		if l.Name() == name {
			return l
		}
	}
	return nil
}

// Free releases all layouts.
func (r *Relation) Free() {
	for _, l := range r.layouts {
		l.Free()
	}
	r.layouts = nil
	r.rows = 0
}

// String summarizes the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("relation{%q, %d rows, %d layouts}", r.name, r.rows, len(r.layouts))
}
