package layout

import "testing"

// TestShardHashBalancesAndIsStable pins the hash policy: placement is a
// pure function of the fragment ID, and a run of consecutive IDs spreads
// over every device without pathological skew.
func TestShardHashBalancesAndIsStable(t *testing.T) {
	const devices, frags = 4, 4096
	m := NewShardMap(devices, ShardHash)
	counts := make([]int, devices)
	for id := uint64(1); id <= frags; id++ {
		d := m.DeviceFor(id)
		if d < 0 || d >= devices {
			t.Fatalf("fragment %d placed on device %d, fleet has %d", id, d, devices)
		}
		if again := m.DeviceFor(id); again != d {
			t.Fatalf("fragment %d moved: %d then %d", id, d, again)
		}
		counts[d]++
	}
	ideal := frags / devices
	for d, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Fatalf("device %d holds %d of %d fragments (ideal %d): hash placement is skewed", d, c, frags, ideal)
		}
	}
}

// TestShardRangeStripes pins the range policy: runs of span consecutive
// IDs share a device, and successive runs round-robin across the fleet.
func TestShardRangeStripes(t *testing.T) {
	m := NewShardMapSpan(3, ShardRange, 4)
	for id := uint64(0); id < 48; id++ {
		want := int((id / 4) % 3)
		if got := m.DeviceFor(id); got != want {
			t.Fatalf("fragment %d on device %d, want stripe %d", id, got, want)
		}
	}
}

// TestShardPinOverridesPolicy pins the explicit-placement escape hatch:
// Pin wins over the policy (with out-of-range devices clamped into the
// fleet) and Unpin restores it.
func TestShardPinOverridesPolicy(t *testing.T) {
	m := NewShardMap(2, ShardHash)
	const id = uint64(7)
	home := m.DeviceFor(id)

	m.Pin(id, 1-home)
	if got := m.DeviceFor(id); got != 1-home {
		t.Fatalf("pinned fragment on device %d, want %d", got, 1-home)
	}
	m.Pin(id, 99)
	if got := m.DeviceFor(id); got != 1 {
		t.Fatalf("overshooting pin placed on device %d, want clamp to 1", got)
	}
	m.Pin(id, -5)
	if got := m.DeviceFor(id); got != 0 {
		t.Fatalf("negative pin placed on device %d, want clamp to 0", got)
	}
	m.Unpin(id)
	if got := m.DeviceFor(id); got != home {
		t.Fatalf("unpinned fragment on device %d, want policy home %d", got, home)
	}
}

// TestShardSingleDeviceDegenerates pins that a one-card fleet (or a
// clamped zero-card request) places everything on device 0.
func TestShardSingleDeviceDegenerates(t *testing.T) {
	for _, m := range []*ShardMap{NewShardMap(1, ShardHash), NewShardMap(0, ShardRange)} {
		if m.Devices() != 1 {
			t.Fatalf("devices = %d, want clamp to 1", m.Devices())
		}
		for id := uint64(0); id < 32; id++ {
			if got := m.DeviceFor(id); got != 0 {
				t.Fatalf("fragment %d on device %d, want 0", id, got)
			}
		}
	}
}
