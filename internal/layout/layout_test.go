package layout

import (
	"errors"
	"testing"

	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
)

// figure3Schema is the paper's Figure 3 relation R(A,B,C,D,E).
func figure3Schema(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Int64Attr("A"), schema.Int64Attr("B"), schema.Int64Attr("C"),
		schema.Int64Attr("D"), schema.Int64Attr("E"),
	)
}

// buildFigure3Layout2 builds the paper's "Layout 2 for R (strong
// flexible)": a fat fragment over {A,B,C} plus thin fragments over {D} and
// {E}, all spanning the full 4-row relation.
func buildFigure3Layout2(t *testing.T, lin Linearization) *Layout {
	t.Helper()
	s := figure3Schema(t)
	a := hostAlloc()
	l := NewLayout("layout2", s)
	fat, err := NewFragment(a, s, []int{0, 1, 2}, RowRange{0, 4}, lin)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewFragment(a, s, []int{3}, RowRange{0, 4}, Direct)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFragment(a, s, []int{4}, RowRange{0, 4}, Direct)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Fragment{fat, d, e} {
		if err := l.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	// Fill rows r_i = (a_i, b_i, c_i, d_i, e_i) with a_i = 10i+1 etc.
	for i := int64(0); i < 4; i++ {
		if err := fat.AppendTuplet([]schema.Value{
			schema.IntValue(10*i + 1), schema.IntValue(10*i + 2), schema.IntValue(10*i + 3),
		}); err != nil {
			t.Fatal(err)
		}
		if err := d.AppendTuplet([]schema.Value{schema.IntValue(10*i + 4)}); err != nil {
			t.Fatal(err)
		}
		if err := e.AppendTuplet([]schema.Value{schema.IntValue(10*i + 5)}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestFigure3StrongFlexibleLayout(t *testing.T) {
	l := buildFigure3Layout2(t, NSM)
	if !l.Covers(4) {
		t.Error("layout 2 should cover the 4-row relation")
	}
	if l.VerticalOnly() {
		// {A,B,C} vs {D} vs {E} all span the full row range and partition
		// the schema — this IS a pure vertical fragmentation.
		_ = l
	} else {
		t.Error("figure 3 layout 2 is a vertical fragmentation into sub-relations")
	}
	if l.Overlapping() {
		t.Error("fragments should be disjoint")
	}
	// Record materialization crosses fragments.
	rec, err := l.Record(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{21, 22, 23, 24, 25}
	for i, w := range want {
		if rec[i].I != w {
			t.Errorf("Record(2)[%d] = %d, want %d", i, rec[i].I, w)
		}
	}
}

func TestFigure3Linearizations(t *testing.T) {
	// NSM-fixed on the fat {A,B,C} fragment: a1 b1 c1 a2 b2 c2 ...
	l := buildFigure3Layout2(t, NSM)
	fat := l.Fragments()[0]
	raw := fat.Raw()
	wantNSM := []uint64{1, 2, 3, 11, 12, 13, 21, 22, 23, 31, 32, 33}
	for i, w := range wantNSM {
		if got := u64at(raw, i*8); got != w {
			t.Errorf("NSM-fixed slot %d = %d, want %d", i, got, w)
		}
	}
	// DSM-fixed: a1 a2 a3 a4 b1 b2 b3 b4 c1 c2 c3 c4.
	l2 := buildFigure3Layout2(t, DSM)
	raw = l2.Fragments()[0].Raw()
	wantDSM := []uint64{1, 11, 21, 31, 2, 12, 22, 32, 3, 13, 23, 33}
	for i, w := range wantDSM {
		if got := u64at(raw, i*8); got != w {
			t.Errorf("DSM-fixed slot %d = %d, want %d", i, got, w)
		}
	}
	// DSM-emulated on thin {D}: d1 d2 d3 d4 in its own block.
	dRaw := l.Fragments()[1].Raw()
	for i, w := range []uint64{4, 14, 24, 34} {
		if got := u64at(dRaw, i*8); got != w {
			t.Errorf("DSM-emulated D slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestLayoutAddRejectsForeignSchema(t *testing.T) {
	s1 := figure3Schema(t)
	s2 := schema.MustNew(schema.Int64Attr("x"))
	l := NewLayout("l", s1)
	f, _ := NewFragment(hostAlloc(), s2, []int{0}, RowRange{0, 2}, Direct)
	if err := l.Add(f); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("err = %v, want ErrBadFragment", err)
	}
}

func TestLayoutAddAcceptsEqualSchema(t *testing.T) {
	// A structurally equal but distinct schema object must be accepted.
	s1 := figure3Schema(t)
	s2 := figure3Schema(t)
	l := NewLayout("l", s1)
	f, _ := NewFragment(hostAlloc(), s2, []int{0}, RowRange{0, 2}, Direct)
	if err := l.Add(f); err != nil {
		t.Fatalf("Add with equal schema: %v", err)
	}
}

func TestCoversDetectsGaps(t *testing.T) {
	s := figure3Schema(t)
	a := hostAlloc()
	l := NewLayout("gappy", s)
	// Cover rows [0,2) and [3,5) of all columns: gap at row 2.
	f1, _ := NewFragment(a, s, AllCols(s), RowRange{0, 2}, NSM)
	f2, _ := NewFragment(a, s, AllCols(s), RowRange{3, 5}, NSM)
	l.Add(f1)
	l.Add(f2)
	if l.Covers(5) {
		t.Error("gap at row 2 not detected")
	}
	if !l.Covers(2) {
		t.Error("prefix [0,2) should be covered")
	}
	if !l.Covers(0) {
		t.Error("empty relation should always be covered")
	}
}

func TestCoversDetectsMissingColumn(t *testing.T) {
	s := figure3Schema(t)
	l := NewLayout("partial", s)
	f, _ := NewFragment(hostAlloc(), s, []int{0, 1}, RowRange{0, 4}, NSM)
	l.Add(f)
	if l.Covers(4) {
		t.Error("columns C,D,E uncovered but Covers returned true")
	}
}

func TestOverlapping(t *testing.T) {
	s := figure3Schema(t)
	a := hostAlloc()
	l := NewLayout("ovl", s)
	f1, _ := NewFragment(a, s, []int{0, 1}, RowRange{0, 4}, NSM)
	f2, _ := NewFragment(a, s, []int{1, 2}, RowRange{2, 6}, NSM)
	l.Add(f1)
	l.Add(f2)
	if !l.Overlapping() {
		t.Error("col 1 rows [2,4) overlap not detected")
	}
	l2 := NewLayout("disjoint", s)
	f3, _ := NewFragment(a, s, []int{0, 1}, RowRange{0, 4}, NSM)
	f4, _ := NewFragment(a, s, []int{2, 3}, RowRange{0, 4}, NSM)
	l2.Add(f3)
	l2.Add(f4)
	if l2.Overlapping() {
		t.Error("disjoint column groups flagged as overlapping")
	}
}

func TestHorizontalOnly(t *testing.T) {
	s := figure3Schema(t)
	l, err := Horizontal(hostAlloc(), "h", s, 10, 4, NSM)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Fragments()) != 3 {
		t.Fatalf("chunks = %d, want 3 (4+4+2)", len(l.Fragments()))
	}
	if got := l.Fragments()[2].Cap(); got != 2 {
		t.Fatalf("tail chunk capacity = %d, want 2", got)
	}
	if !l.HorizontalOnly() || l.VerticalOnly() || l.Combined() {
		t.Error("pure horizontal layout misclassified")
	}
}

func TestHorizontalRejectsZeroChunk(t *testing.T) {
	s := figure3Schema(t)
	if _, err := Horizontal(hostAlloc(), "h", s, 10, 0, NSM); !errors.Is(err, ErrBadFragment) {
		t.Fatalf("err = %v, want ErrBadFragment", err)
	}
}

func TestVerticalBuilder(t *testing.T) {
	s := figure3Schema(t)
	l, err := Vertical(hostAlloc(), "v", s, [][]int{{0, 1, 2}, {3}, {4}}, 8,
		func([]int) Linearization { return NSM })
	if err != nil {
		t.Fatal(err)
	}
	if !l.VerticalOnly() || l.HorizontalOnly() {
		t.Error("pure vertical layout misclassified")
	}
	if l.Fragments()[1].Lin() != Direct {
		t.Error("thin group not forced to Direct")
	}
	if l.Fragments()[0].Lin() != NSM {
		t.Error("fat group linearization not honored")
	}
}

func TestVerticalBuilderPropagatesErrors(t *testing.T) {
	s := figure3Schema(t)
	_, err := Vertical(hostAlloc(), "v", s, [][]int{{0, 9}}, 8,
		func([]int) Linearization { return NSM })
	if !errors.Is(err, ErrBadFragment) {
		t.Fatalf("err = %v, want ErrBadFragment", err)
	}
}

func TestCombinedLayout(t *testing.T) {
	s := figure3Schema(t)
	a := hostAlloc()
	l := NewLayout("grid", s)
	// Vertical split {A,B} vs {C,D,E}, with {A,B} further chunked.
	f1, _ := NewFragment(a, s, []int{0, 1}, RowRange{0, 2}, NSM)
	f2, _ := NewFragment(a, s, []int{0, 1}, RowRange{2, 4}, NSM)
	f3, _ := NewFragment(a, s, []int{2, 3, 4}, RowRange{0, 4}, DSM)
	for _, f := range []*Fragment{f1, f2, f3} {
		l.Add(f)
	}
	if !l.Combined() {
		t.Error("mixed layout not reported Combined")
	}
	if !l.Covers(4) {
		t.Error("grid should cover relation")
	}
}

func TestFragmentAtAndRecordErrors(t *testing.T) {
	s := figure3Schema(t)
	l := NewLayout("empty", s)
	if _, err := l.FragmentAt(0, 0); !errors.Is(err, ErrNotCovered) {
		t.Errorf("err = %v, want ErrNotCovered", err)
	}
	if _, err := l.Record(0); !errors.Is(err, ErrNotCovered) {
		t.Errorf("Record err = %v, want ErrNotCovered", err)
	}
}

func TestReplaceAndRemove(t *testing.T) {
	s := figure3Schema(t)
	a := hostAlloc()
	l := NewLayout("l", s)
	f1, _ := NewFragment(a, s, []int{0}, RowRange{0, 2}, Direct)
	f2, _ := NewFragment(a, s, []int{0}, RowRange{0, 2}, Direct)
	l.Add(f1)
	if err := l.Replace(f1, f2); err != nil {
		t.Fatal(err)
	}
	if l.Fragments()[0] != f2 {
		t.Error("Replace did not swap")
	}
	if err := l.Replace(f1, f2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Replace missing: %v", err)
	}
	l.Remove(f2)
	if len(l.Fragments()) != 0 {
		t.Error("Remove failed")
	}
	l.Remove(f2) // removing absent fragment is a no-op
}

func TestSpaces(t *testing.T) {
	s := figure3Schema(t)
	host := hostAlloc()
	dev := mem.NewAllocator(mem.Device, 1<<20)
	l := NewLayout("mixed", s)
	f1, _ := NewFragment(host, s, []int{0}, RowRange{0, 2}, Direct)
	f2, _ := NewFragment(dev, s, []int{1}, RowRange{0, 2}, Direct)
	l.Add(f1)
	l.Add(f2)
	sp := l.Spaces()
	if len(sp) != 2 || sp[0] != mem.Host || sp[1] != mem.Device {
		t.Fatalf("Spaces = %v", sp)
	}
}

func TestRelationLifecycle(t *testing.T) {
	s := figure3Schema(t)
	r := NewRelation("R", s)
	if _, err := r.Primary(); !errors.Is(err, ErrNoLayout) {
		t.Errorf("Primary on empty: %v", err)
	}
	l1 := NewLayout("row", s)
	l2 := NewLayout("col", s)
	r.AddLayout(l1)
	r.AddLayout(l2)
	p, err := r.Primary()
	if err != nil || p != l1 {
		t.Fatalf("Primary = %v, %v", p, err)
	}
	if r.Layout("col") != l2 || r.Layout("nope") != nil {
		t.Error("Layout lookup broken")
	}
	r.SetRows(7)
	if r.Rows() != 7 {
		t.Error("SetRows")
	}
	r.RemoveLayout(l1)
	if len(r.Layouts()) != 1 || r.Layouts()[0] != l2 {
		t.Error("RemoveLayout")
	}
	r.Free()
	if len(r.Layouts()) != 0 || r.Rows() != 0 {
		t.Error("Free did not reset")
	}
}

func TestDigests(t *testing.T) {
	l := buildFigure3Layout2(t, NSM)
	s := figure3Schema(t)
	r := NewRelation("R", s)
	r.AddLayout(l)
	r.SetRows(4)
	snap := r.Digest()
	if snap.Relation != "R" || snap.Arity != 5 || snap.Rows != 4 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Layouts) != 1 {
		t.Fatalf("layouts = %d", len(snap.Layouts))
	}
	li := snap.Layouts[0]
	if !li.VerticalOnly || li.Combined || len(li.Fragments) != 3 {
		t.Fatalf("layout digest = %+v", li)
	}
	if !li.Fragments[0].Fat || li.Fragments[1].Fat {
		t.Error("fat/thin digest wrong")
	}
	if li.Fragments[0].Lin != NSM || li.Fragments[1].Lin != Direct {
		t.Error("linearization digest wrong")
	}
	if li.Fragments[0].Space != mem.Host {
		t.Error("space digest wrong")
	}
}

func TestStringers(t *testing.T) {
	s := figure3Schema(t)
	r := NewRelation("R", s)
	l := NewLayout("l", s)
	if r.String() == "" || l.String() == "" {
		t.Error("empty String()")
	}
}
