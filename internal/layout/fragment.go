// Package layout implements the paper's unified terminology for physical
// record organization (Pinnecke et al., ICDE 2017, Section III) as an
// executable data model:
//
//   - A Relation can have multiple alternative Layouts.
//   - A Layout divides the relation into possibly overlapping Fragments.
//   - A Fragment spans a gapless rectangular region of the relation: a
//     contiguous row range crossed with a subset of the attributes.
//   - The per-tuple portion falling inside a fragment is a tuplet.
//   - A fat fragment (≥2 tuplet slots and ≥2 attributes) must be
//     linearized into one-dimensional memory with NSM or DSM; a thin
//     fragment is one-dimensional and is stored directly.
//
// Every surveyed storage engine in internal/engines is a composition of
// these primitives, which is what lets the taxonomy classifier derive
// Table 1 of the paper from live engine structure.
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"hybridstore/internal/mem"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/stats"
)

// fragIDs hands out process-unique fragment identities; see Fragment.ID.
var fragIDs atomic.Uint64

// Linearization is the physical order of tuplets inside one fragment.
type Linearization uint8

// Per-fragment linearization techniques (Section III, "Fragment
// linearization properties"). Engine-level properties such as "variable"
// (supports both NSM and DSM) or "DSM-emulated" (thin-only fragments per
// column) are derived by the taxonomy classifier from fragment structure.
const (
	// Direct stores a thin fragment's single dimension as-is.
	Direct Linearization = iota
	// NSM stores fat fragments record-by-record (row-major).
	NSM
	// DSM stores fat fragments column-by-column (column-major).
	DSM
)

// String names the linearization.
func (l Linearization) String() string {
	switch l {
	case Direct:
		return "direct"
	case NSM:
		return "NSM"
	case DSM:
		return "DSM"
	default:
		return fmt.Sprintf("Linearization(%d)", uint8(l))
	}
}

// RowRange is a half-open range [Begin, End) of relation row positions.
type RowRange struct {
	Begin, End uint64
}

// Len returns the number of row slots in the range.
func (r RowRange) Len() uint64 {
	if r.End < r.Begin {
		return 0
	}
	return r.End - r.Begin
}

// Contains reports whether row is inside the range.
func (r RowRange) Contains(row uint64) bool { return row >= r.Begin && row < r.End }

// Overlaps reports whether two ranges share any row.
func (r RowRange) Overlaps(o RowRange) bool { return r.Begin < o.End && o.Begin < r.End }

// String renders the range as "[begin,end)".
func (r RowRange) String() string { return fmt.Sprintf("[%d,%d)", r.Begin, r.End) }

// Fragment errors.
var (
	// ErrBadFragment is returned for structurally invalid fragments.
	ErrBadFragment = errors.New("layout: bad fragment")
	// ErrBadLinearization is returned when the linearization does not fit
	// the fragment shape (e.g. Direct on a fat fragment).
	ErrBadLinearization = errors.New("layout: linearization does not fit fragment shape")
	// ErrFragmentFull is returned when appending beyond the row capacity.
	ErrFragmentFull = errors.New("layout: fragment full")
	// ErrOutOfRange is returned for tuplet or column indexes out of range.
	ErrOutOfRange = errors.New("layout: index out of range")
)

// Fragment is a gapless rectangular region of a relation, physically
// materialized in one memory block of one memory space.
//
// The vertical extent is the ordered attribute-index list Cols (indexes
// into the relation schema); the horizontal extent is the row range Rows,
// which fixes the tuplet capacity. Tuplets are appended in row order.
type Fragment struct {
	rel    *schema.Schema
	cols   []int
	rows   RowRange
	lin    Linearization
	block  *mem.Block
	n      int           // tuplets stored
	width  int           // bytes per tuplet
	offs   []int         // per-col byte offset inside an NSM tuplet
	colOff []int         // per-col byte offset of the column region under DSM
	zones  []*stats.Zone // per-col zone maps (nil for non-8-byte-numeric columns)

	// id is a process-unique identity and version a monotone write
	// counter; together they key device-resident images of this fragment
	// (device.FragCache), so any mutation makes every cached image of the
	// old bytes unreachable. version is atomic because placement decisions
	// read it outside the engine locks that serialize writes.
	id      uint64
	version atomic.Uint64
}

// NewFragment allocates a fragment for the given region of a relation with
// schema rel. cols lists the covered attribute indexes in storage order;
// rows fixes the capacity. The linearization must fit the shape: Direct is
// only valid for thin fragments, NSM/DSM only for fat ones (degenerate
// single-column fat fragments are permitted under DSM/NSM as well, since
// both orders coincide there).
func NewFragment(alloc *mem.Allocator, rel *schema.Schema, cols []int, rows RowRange, lin Linearization) (*Fragment, error) {
	if rel == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrBadFragment)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrBadFragment)
	}
	if rows.Len() == 0 {
		return nil, fmt.Errorf("%w: empty row range %v", ErrBadFragment, rows)
	}
	seen := make(map[int]bool, len(cols))
	f := &Fragment{
		id:     fragIDs.Add(1),
		rel:    rel,
		cols:   append([]int(nil), cols...),
		rows:   rows,
		lin:    lin,
		offs:   make([]int, len(cols)),
		colOff: make([]int, len(cols)),
	}
	for i, c := range cols {
		if c < 0 || c >= rel.Arity() {
			return nil, fmt.Errorf("%w: column %d out of range [0,%d)", ErrBadFragment, c, rel.Arity())
		}
		if seen[c] {
			return nil, fmt.Errorf("%w: duplicate column %d", ErrBadFragment, c)
		}
		seen[c] = true
		f.offs[i] = f.width
		f.width += rel.Attr(c).Size
	}
	cap64 := rows.Len()
	for i := 1; i < len(cols); i++ {
		prev := cols[i-1]
		f.colOff[i] = f.colOff[i-1] + rel.Attr(prev).Size*int(cap64)
	}
	fat := f.IsFat()
	switch lin {
	case Direct:
		if fat {
			return nil, fmt.Errorf("%w: direct linearization on fat fragment (%d cols × %d rows)",
				ErrBadLinearization, len(cols), cap64)
		}
	case NSM, DSM:
		// Valid for fat fragments and degenerate thin ones alike.
	default:
		return nil, fmt.Errorf("%w: unknown linearization %d", ErrBadLinearization, lin)
	}
	block, err := alloc.Alloc(f.width * int(cap64))
	if err != nil {
		return nil, fmt.Errorf("layout: allocating fragment: %w", err)
	}
	f.block = block
	f.zones = make([]*stats.Zone, len(cols))
	for i, c := range cols {
		a := rel.Attr(c)
		switch {
		case a.Kind == schema.Int64 && a.Size == 8:
			f.zones[i] = stats.NewZone(stats.Int64)
		case a.Kind == schema.Float64 && a.Size == 8:
			f.zones[i] = stats.NewZone(stats.Float64)
		}
	}
	return f, nil
}

// Schema returns the relation schema the fragment belongs to.
func (f *Fragment) Schema() *schema.Schema { return f.rel }

// ID returns the fragment's process-unique identity. Rebuilds that
// replace the backing store (Relinearize, CloneTo) produce fragments with
// fresh IDs, so an ID never outlives the bytes it names.
func (f *Fragment) ID() uint64 { return f.id }

// Version returns the fragment's write version. It starts at zero and is
// bumped by every mutation (Set, AppendTuplet, SetLen, BumpVersion), so a
// device-resident image uploaded at version v is bytewise current iff the
// fragment still reports v.
func (f *Fragment) Version() uint64 { return f.version.Load() }

// BumpVersion records an out-of-band mutation of the fragment's bytes —
// writes that bypass the typed Set path, such as a device scatter into
// the fragment's block. Engines performing raw writes must call this so
// cached images of the old bytes stop validating.
func (f *Fragment) BumpVersion() { f.version.Add(1) }

// Cols returns the covered attribute indexes (copy).
func (f *Fragment) Cols() []int { return append([]int(nil), f.cols...) }

// HasCol reports whether relation attribute c is covered.
func (f *Fragment) HasCol(c int) bool { return f.colPos(c) >= 0 }

// colPos returns the storage position of relation attribute c, or -1.
func (f *Fragment) colPos(c int) int {
	for i, cc := range f.cols {
		if cc == c {
			return i
		}
	}
	return -1
}

// Rows returns the covered row range.
func (f *Fragment) Rows() RowRange { return f.rows }

// Lin returns the fragment's linearization.
func (f *Fragment) Lin() Linearization { return f.lin }

// Space returns the memory space the fragment's bytes live in.
func (f *Fragment) Space() mem.Space { return f.block.Space() }

// Arity returns the number of covered attributes.
func (f *Fragment) Arity() int { return len(f.cols) }

// Len returns the number of tuplets stored.
func (f *Fragment) Len() int { return f.n }

// Cap returns the tuplet capacity (the row-range length).
func (f *Fragment) Cap() int { return int(f.rows.Len()) }

// TupletWidth returns the bytes one tuplet occupies.
func (f *Fragment) TupletWidth() int { return f.width }

// SizeBytes returns the fragment's allocated byte size.
func (f *Fragment) SizeBytes() int { return f.block.Len() }

// IsFat reports whether the fragment is fat per the paper's definition:
// at least two tuplet slots and at least two attributes.
func (f *Fragment) IsFat() bool { return len(f.cols) >= 2 && f.rows.Len() >= 2 }

// IsThin reports the complement of IsFat.
func (f *Fragment) IsThin() bool { return !f.IsFat() }

// Free releases the fragment's memory block.
func (f *Fragment) Free() {
	if f.block != nil {
		f.block.Free()
	}
	f.n = 0
}

// fieldRegion returns the byte offset of field (tuplet i, storage col p)
// inside the block, honoring the linearization.
func (f *Fragment) fieldOffset(i, p int) int {
	switch f.lin {
	case NSM:
		return i*f.width + f.offs[p]
	case DSM:
		return f.colOff[p] + i*f.rel.Attr(f.cols[p]).Size
	default: // Direct: single column, contiguous.
		return i * f.width
	}
}

// FieldBytes returns the raw bytes of the field at tuplet i, relation
// attribute c. The slice aliases fragment storage; treat as read-only
// unless immediately re-encoded.
func (f *Fragment) FieldBytes(i int, c int) ([]byte, error) {
	p := f.colPos(c)
	if p < 0 {
		return nil, fmt.Errorf("%w: attribute %d not in fragment", ErrOutOfRange, c)
	}
	if i < 0 || i >= f.n {
		return nil, fmt.Errorf("%w: tuplet %d of %d", ErrOutOfRange, i, f.n)
	}
	off := f.fieldOffset(i, p)
	size := f.rel.Attr(c).Size
	return f.block.Bytes()[off : off+size], nil
}

// Get decodes the field at tuplet i, relation attribute c.
func (f *Fragment) Get(i int, c int) (schema.Value, error) {
	b, err := f.FieldBytes(i, c)
	if err != nil {
		return schema.Value{}, err
	}
	return schema.DecodeValue(b, f.rel.Attr(c))
}

// Set encodes v into the field at tuplet i, relation attribute c.
func (f *Fragment) Set(i int, c int, v schema.Value) error {
	p := f.colPos(c)
	if p < 0 {
		return fmt.Errorf("%w: attribute %d not in fragment", ErrOutOfRange, c)
	}
	if i < 0 || i >= f.n {
		return fmt.Errorf("%w: tuplet %d of %d", ErrOutOfRange, i, f.n)
	}
	off := f.fieldOffset(i, p)
	if err := schema.EncodeValue(f.block.Bytes()[off:], f.rel.Attr(c), v); err != nil {
		return err
	}
	f.version.Add(1)
	if z := f.zones[p]; z != nil {
		// In-place overwrite: the envelope can only widen (the old value
		// may survive in the bounds), which keeps pruning conservative.
		switch z.Kind() {
		case stats.Int64:
			z.WidenInt64(v.I)
		case stats.Float64:
			z.WidenFloat64(v.F)
		}
	}
	return nil
}

// AppendTuplet appends one tuplet. vals must align positionally with the
// fragment's column list.
func (f *Fragment) AppendTuplet(vals []schema.Value) error {
	if len(vals) != len(f.cols) {
		return fmt.Errorf("%w: tuplet arity %d, fragment arity %d", schema.ErrArityMismatch, len(vals), len(f.cols))
	}
	if f.n >= f.Cap() {
		return fmt.Errorf("%w: capacity %d", ErrFragmentFull, f.Cap())
	}
	i := f.n
	f.n++ // reserve the slot so fieldOffset bounds checks pass
	for p, c := range f.cols {
		off := f.fieldOffset(i, p)
		if err := schema.EncodeValue(f.block.Bytes()[off:], f.rel.Attr(c), vals[p]); err != nil {
			f.n-- // roll back the reservation
			return fmt.Errorf("layout: appending tuplet: %w", err)
		}
	}
	f.version.Add(1)
	// All fields landed; fold the tuplet into the zone maps.
	for p := range f.cols {
		if z := f.zones[p]; z != nil {
			switch z.Kind() {
			case stats.Int64:
				z.ObserveInt64(vals[p].I)
			case stats.Float64:
				z.ObserveFloat64(vals[p].F)
			}
		}
	}
	return nil
}

// Tuplet decodes all fields of tuplet i in column-list order.
func (f *Fragment) Tuplet(i int) ([]schema.Value, error) {
	if i < 0 || i >= f.n {
		return nil, fmt.Errorf("%w: tuplet %d of %d", ErrOutOfRange, i, f.n)
	}
	out := make([]schema.Value, len(f.cols))
	for p, c := range f.cols {
		v, err := f.Get(i, c)
		if err != nil {
			return nil, err
		}
		out[p] = v
	}
	return out, nil
}

// ColVector describes raw strided access to one attribute of a fragment:
// the first field lives at Base into Data, consecutive tuplets are Stride
// bytes apart, and each field is Size bytes. Under DSM/Direct the column is
// contiguous (Stride == Size); under NSM it is strided by the tuplet width.
// Bulk operators in internal/exec consume this to implement cache-accurate
// column scans over any linearization.
type ColVector struct {
	Data   []byte
	Base   int
	Stride int
	Size   int
	Len    int
}

// Contiguous reports whether the column occupies one dense byte run.
func (v ColVector) Contiguous() bool { return v.Stride == v.Size }

// ColVector returns strided access to relation attribute c.
func (f *Fragment) ColVector(c int) (ColVector, error) {
	p := f.colPos(c)
	if p < 0 {
		return ColVector{}, fmt.Errorf("%w: attribute %d not in fragment", ErrOutOfRange, c)
	}
	size := f.rel.Attr(c).Size
	switch f.lin {
	case NSM:
		return ColVector{Data: f.block.Bytes(), Base: f.offs[p], Stride: f.width, Size: size, Len: f.n}, nil
	case DSM:
		return ColVector{Data: f.block.Bytes(), Base: f.colOff[p], Stride: size, Size: size, Len: f.n}, nil
	default:
		return ColVector{Data: f.block.Bytes(), Base: 0, Stride: size, Size: size, Len: f.n}, nil
	}
}

// TupletBytes returns the raw bytes of tuplet i under NSM linearization.
// It fails for non-NSM fragments, where a tuplet is not contiguous.
func (f *Fragment) TupletBytes(i int) ([]byte, error) {
	if f.lin != NSM && f.Arity() != 1 {
		return nil, fmt.Errorf("%w: tuplet bytes are only contiguous under NSM", ErrBadLinearization)
	}
	if i < 0 || i >= f.n {
		return nil, fmt.Errorf("%w: tuplet %d of %d", ErrOutOfRange, i, f.n)
	}
	return f.block.Bytes()[i*f.width : (i+1)*f.width], nil
}

// Relinearize rewrites the fragment in the given linearization, allocating
// a fresh block from alloc (which may target a different memory space).
// It returns the rewritten fragment; the receiver is freed on success.
// This is the primitive behind responsive layout adaptation (HYRISE re-
// widthing, H₂O layout adoption, Peloton layout tuning).
func (f *Fragment) Relinearize(alloc *mem.Allocator, lin Linearization) (*Fragment, error) {
	nf, err := NewFragment(alloc, f.rel, f.cols, f.rows, lin)
	if err != nil {
		return nil, err
	}
	vals := make([]schema.Value, len(f.cols))
	for i := 0; i < f.n; i++ {
		for p, c := range f.cols {
			v, err := f.Get(i, c)
			if err != nil {
				nf.Free()
				return nil, err
			}
			vals[p] = v
		}
		if err := nf.AppendTuplet(vals); err != nil {
			nf.Free()
			return nil, err
		}
	}
	// The rebuild re-observed every value, so the new zones are exact;
	// carry over the sealed flag where the source had tight bounds.
	for p, z := range f.zones {
		if z != nil && z.Sealed() && nf.zones[p] != nil {
			nf.zones[p].MarkSealed()
		}
	}
	f.Free()
	return nf, nil
}

// CloneTo copies the fragment byte-for-byte into a new block from alloc,
// preserving shape and linearization. Used by replication-based fragment
// schemes (Fractured Mirrors, CoGaDB host/device copies).
func (f *Fragment) CloneTo(alloc *mem.Allocator) (*Fragment, error) {
	nf, err := NewFragment(alloc, f.rel, f.cols, f.rows, f.lin)
	if err != nil {
		return nil, err
	}
	copy(nf.block.Bytes(), f.block.Bytes())
	nf.n = f.n
	for p, z := range f.zones {
		if z != nil {
			nf.zones[p] = z.Clone()
		}
	}
	return nf, nil
}

// Raw exposes the fragment's full backing bytes (for transfer simulation
// and checksumming). Treat as read-only.
func (f *Fragment) Raw() []byte { return f.block.Bytes() }

// SetLen is used by engine code that fills fragment bytes wholesale (e.g.
// after a device transfer). n must not exceed capacity. Because the
// bytes bypassed the typed append path, the zone maps cannot vouch for
// them: a shrink to zero resets the zones, anything else invalidates
// them until the next SealStats.
func (f *Fragment) SetLen(n int) error {
	if n < 0 || n > f.Cap() {
		return fmt.Errorf("%w: len %d, capacity %d", ErrOutOfRange, n, f.Cap())
	}
	f.n = n
	f.version.Add(1)
	for _, z := range f.zones {
		if z == nil {
			continue
		}
		if n == 0 {
			z.Reset()
		} else {
			z.Invalidate()
		}
	}
	return nil
}

// Stats returns the zone map of relation attribute c, or nil when the
// column carries none (non-8-byte or non-numeric kinds). The returned
// zone aliases fragment state; callers must hold the same locks they
// would for reading the fragment.
func (f *Fragment) Stats(c int) *stats.Zone {
	p := f.colPos(c)
	if p < 0 {
		return nil
	}
	return f.zones[p]
}

// mSeals counts full zone-map seal passes. Each is a scan of the
// fragment's bytes; a warm restart that re-seals anything is re-paying
// work its checkpoint already paid, so recovery tests assert a zero
// delta across restore.
var mSeals = obs.NewCounter("layout.seals")

// SealStats recomputes every zone map exactly from the stored bytes and
// marks them sealed. Engines call this at their freeze points — the
// paper's hot→cold transitions — where a fragment's contents become
// (mostly) immutable and tight bounds pay off for the rest of its life.
func (f *Fragment) SealStats() {
	mSeals.Inc()
	for p, z := range f.zones {
		if z == nil {
			continue
		}
		z.Reset()
		b := f.block.Bytes()
		switch z.Kind() {
		case stats.Int64:
			for i := 0; i < f.n; i++ {
				z.ObserveInt64(int64(binary.LittleEndian.Uint64(b[f.fieldOffset(i, p):])))
			}
		case stats.Float64:
			for i := 0; i < f.n; i++ {
				z.ObserveFloat64(math.Float64frombits(binary.LittleEndian.Uint64(b[f.fieldOffset(i, p):])))
			}
		}
		z.MarkSealed()
	}
}

// String summarizes the fragment.
func (f *Fragment) String() string {
	kind := "thin"
	if f.IsFat() {
		kind = "fat"
	}
	return fmt.Sprintf("fragment{%s, cols=%v, rows=%v, lin=%s, space=%s, len=%d/%d}",
		kind, f.cols, f.rows, f.lin, f.Space(), f.n, f.Cap())
}
