// Package server is the network serving layer: an HTTP/1.1-over-TCP
// front end on the hybridstore facade with sessions, prepared
// statements, per-tenant admission control, and a batching scheduler
// that collapses concurrent compatible analytic requests into one
// shared storage pass (internal/core's SumFloat64WhereMulti).
//
// The wire format is flat JSON. The exec hot path never touches
// encoding/json: requests are scanned in place by the minimal parser in
// this file and responses are appended into recycled pool buffers, so a
// served query costs a small fixed number of allocations
// (BenchmarkServeSumWhere gates the budget).
package server

import (
	"fmt"
	"strconv"

	"hybridstore/internal/exec"
)

// errProto is the malformed-request error class; the HTTP layer maps it
// to 400.
var errProto = fmt.Errorf("server: malformed request")

// scanObject walks one flat JSON object in place, invoking fn once per
// key with the raw value bytes (strings WITHOUT quotes; nested objects
// and arrays with their brackets, for a second scanObject/scanArray
// pass). It supports exactly the serving protocol's subset: string,
// number, bool, null, and balanced nesting — no escape sequences inside
// the short identifier strings the protocol uses. Returns the offset
// one past the object's closing brace.
func scanObject(b []byte, fn func(key, val []byte) error) (int, error) {
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '{' {
		return i, fmt.Errorf("%w: expected object", errProto)
	}
	i++
	for {
		i = skipWS(b, i)
		if i >= len(b) {
			return i, fmt.Errorf("%w: unterminated object", errProto)
		}
		if b[i] == '}' {
			return i + 1, nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		if b[i] != '"' {
			return i, fmt.Errorf("%w: expected key at %d", errProto, i)
		}
		keyEnd := scanString(b, i)
		if keyEnd < 0 {
			return i, fmt.Errorf("%w: unterminated key", errProto)
		}
		key := b[i+1 : keyEnd-1]
		i = skipWS(b, keyEnd)
		if i >= len(b) || b[i] != ':' {
			return i, fmt.Errorf("%w: expected ':' after %q", errProto, key)
		}
		i = skipWS(b, i+1)
		valEnd, err := scanValue(b, i)
		if err != nil {
			return i, err
		}
		val := b[i:valEnd]
		if len(val) > 0 && val[0] == '"' {
			val = val[1 : len(val)-1]
		}
		if err := fn(key, val); err != nil {
			return valEnd, err
		}
		i = valEnd
	}
}

// scanArray walks one JSON array, invoking fn per raw element (strings
// without quotes, nested structures raw).
func scanArray(b []byte, fn func(val []byte) error) error {
	i := skipWS(b, 0)
	if i >= len(b) || b[i] != '[' {
		return fmt.Errorf("%w: expected array", errProto)
	}
	i++
	for {
		i = skipWS(b, i)
		if i >= len(b) {
			return fmt.Errorf("%w: unterminated array", errProto)
		}
		if b[i] == ']' {
			return nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		end, err := scanValue(b, i)
		if err != nil {
			return err
		}
		val := b[i:end]
		if len(val) > 0 && val[0] == '"' {
			val = val[1 : len(val)-1]
		}
		if err := fn(val); err != nil {
			return err
		}
		i = end
	}
}

func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanString returns the offset one past the closing quote of the
// string starting at b[i] (which must be '"'), or -1.
func scanString(b []byte, i int) int {
	for j := i + 1; j < len(b); j++ {
		switch b[j] {
		case '\\':
			j++ // protocol strings carry no escapes, but stay balanced
		case '"':
			return j + 1
		}
	}
	return -1
}

// scanValue returns the offset one past the JSON value starting at b[i].
func scanValue(b []byte, i int) (int, error) {
	if i >= len(b) {
		return i, fmt.Errorf("%w: missing value", errProto)
	}
	switch b[i] {
	case '"':
		end := scanString(b, i)
		if end < 0 {
			return i, fmt.Errorf("%w: unterminated string", errProto)
		}
		return end, nil
	case '{', '[':
		open, close := b[i], byte('}')
		if open == '[' {
			close = ']'
		}
		depth := 0
		for j := i; j < len(b); j++ {
			switch b[j] {
			case '"':
				end := scanString(b, j)
				if end < 0 {
					return i, fmt.Errorf("%w: unterminated string", errProto)
				}
				j = end - 1
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					return j + 1, nil
				}
			}
		}
		return i, fmt.Errorf("%w: unbalanced %c", errProto, open)
	default:
		j := i
		for j < len(b) {
			switch b[j] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return j, nil
			}
			j++
		}
		return j, nil
	}
}

// parseF64 parses a JSON number without retaining the backing bytes.
func parseF64(b []byte) (float64, error) {
	return strconv.ParseFloat(string(b), 64)
}

// parseI64 parses a JSON integer.
func parseI64(b []byte) (int64, error) {
	return strconv.ParseInt(string(b), 10, 64)
}

// parsePred decodes a predicate object — {"kind":"lt|gt|eq|between",
// "lo":x,"hi":y} — into the exec vocabulary. "eq" takes its bound from
// "lo" (or "v"), "lt" from "hi", "gt" from "lo".
//
// The decoded predicate is canonicalized with exec.Normalize before it
// becomes a batching or cache key: a between with equal bounds and the
// equivalent eq, or bounds spelled "-0.0" vs "0", would otherwise
// split one compatibility class into separate cohorts and separate
// result-cache entries. Normalization never changes the match set, so
// the collapsed key answers every spelling.
func parsePred(raw []byte) (exec.Pred[float64], error) {
	var kind []byte
	var lo, hi float64
	var p exec.Pred[float64]
	_, err := scanObject(raw, func(key, val []byte) error {
		switch string(key) {
		case "kind":
			kind = val
		case "lo", "v":
			f, err := parseF64(val)
			if err != nil {
				return fmt.Errorf("%w: pred lo: %v", errProto, err)
			}
			lo = f
		case "hi":
			f, err := parseF64(val)
			if err != nil {
				return fmt.Errorf("%w: pred hi: %v", errProto, err)
			}
			hi = f
		}
		return nil
	})
	if err != nil {
		return p, err
	}
	switch string(kind) {
	case "eq":
		return exec.Normalize(exec.Eq(lo)), nil
	case "lt":
		return exec.Normalize(exec.Lt(hi)), nil
	case "gt":
		return exec.Normalize(exec.Gt(lo)), nil
	case "between":
		return exec.Normalize(exec.Between(lo, hi)), nil
	default:
		return p, fmt.Errorf("%w: pred kind %q", errProto, kind)
	}
}

// appendPredJSON renders p back to the wire form parsePred accepts —
// the exact bits survive the round trip because bounds are printed with
// strconv's shortest-exact format.
func appendPredJSON(buf []byte, p exec.Pred[float64]) []byte {
	buf = append(buf, `{"kind":"`...)
	buf = append(buf, p.Op.String()...)
	buf = append(buf, '"')
	switch p.Op {
	case exec.OpLT:
		buf = append(buf, `,"hi":`...)
		buf = appendF64(buf, p.Hi)
	case exec.OpGT, exec.OpEQ:
		buf = append(buf, `,"lo":`...)
		buf = appendF64(buf, p.Lo)
	case exec.OpBetween:
		buf = append(buf, `,"lo":`...)
		buf = appendF64(buf, p.Lo)
		buf = append(buf, `,"hi":`...)
		buf = appendF64(buf, p.Hi)
	}
	return append(buf, '}')
}

// appendF64 appends v in the shortest decimal form that parses back to
// exactly the same float64 bits — the serving layer's end-to-end
// bit-identity contract depends on this round trip.
func appendF64(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendI64 appends v in decimal.
func appendI64(buf []byte, v int64) []byte {
	return strconv.AppendInt(buf, v, 10)
}
