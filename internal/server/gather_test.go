package server

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridstore"
	"hybridstore/internal/obs"
)

// TestGatherFanInBitIdentity: under a live batching window, concurrent
// point reads on one table ride shared gather passes and each client
// still receives exactly the bytes a solo Get produces. A hot set of
// rows forces duplicate collapsing inside cohorts.
func TestGatherFanInBitIdentity(t *testing.T) {
	s, tbl := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 300 * time.Microsecond})
	sid := s.CreateSession("")
	get := prep(t, s, sid, "get", 0, 0)

	// Ground truth: the facade record, serialized exactly as the server
	// serializes it. Writes are quiesced for the whole read phase.
	rows := tbl.Rows()
	want := make([]string, rows)
	for r := uint64(0); r < rows; r++ {
		rec, err := tbl.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		want[r] = string(appendRecord(nil, rec))
	}

	before := obs.TakeSnapshot()
	const clients = 24
	const reqsEach = 25
	var wg sync.WaitGroup
	errs := make(chan string, clients*reqsEach)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < reqsEach; i++ {
				// Half the reads target an 8-row hot set so cohorts see
				// duplicate row IDs; the rest spread over the table.
				var row uint64
				if r.Intn(2) == 0 {
					row = uint64(r.Intn(8))
				} else {
					row = uint64(r.Intn(int(rows)))
				}
				resp, code := exec1(s, fmt.Sprintf(
					`{"session_id":"%s","stmt_id":%d,"row":%d}`, sid, get, row))
				if code != 200 || resp != want[row] {
					errs <- fmt.Sprintf("row %d: %d %s\nwant %s", row, code, resp, want[row])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	after := obs.TakeSnapshot()
	flushes := after.Counter("server.gather.flushes") - before.Counter("server.gather.flushes")
	joined := after.Counter("server.gather.joined") - before.Counter("server.gather.joined")
	collapsed := after.Counter("server.gather.collapsed") - before.Counter("server.gather.collapsed")
	if flushes == 0 {
		t.Error("no gather flushes under 24 concurrent point readers")
	}
	if joined == 0 {
		t.Error("no point reads joined a shared gather")
	}
	if collapsed == 0 {
		t.Error("hot-set duplicates never collapsed to a shared slot")
	}
	total := int64(clients * reqsEach)
	if flushes >= total {
		t.Errorf("flushes %d not smaller than requests %d: nothing was shared", flushes, total)
	}
}

// TestGatherLeaderError: a failing gather pass must propagate to every
// cohort member — never a zero record, never a hang.
func TestGatherLeaderError(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	boom := errors.New("injected gather failure")
	s.bat.execGet = func(_ *hybridstore.Table, _ []uint64) ([]hybridstore.Record, error) {
		return nil, boom
	}
	sid := s.CreateSession("")
	get := prep(t, s, sid, "get", 0, 0)

	const waiters = 6
	codes := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":%d}`, sid, get, i)
			resp, code := exec1(s, body)
			if code == 500 && !strings.Contains(resp, "injected gather failure") {
				t.Errorf("request %d: 500 without the leader's error: %s", i, resp)
			}
			codes <- code
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gather cohort hung on a failed leader")
	}
	close(codes)
	for code := range codes {
		if code != 500 {
			t.Fatalf("cohort member finished %d, want 500", code)
		}
	}
}

// TestGatherLeaderPanic: a panicking gather pass still releases the
// cohort, with the panic surfaced as the group error.
func TestGatherLeaderPanic(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	s.bat.execGet = func(_ *hybridstore.Table, _ []uint64) ([]hybridstore.Record, error) {
		panic("injected gather panic")
	}
	sid := s.CreateSession("")
	get := prep(t, s, sid, "get", 0, 0)

	const waiters = 4
	var wg sync.WaitGroup
	fails := make(chan string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":%d}`, sid, get, i)
			resp, code := exec1(s, body)
			if code != 500 || !strings.Contains(resp, "panicked") {
				fails <- fmt.Sprintf("request %d: %d %s", i, code, resp)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gather cohort hung on a panicked leader")
	}
	close(fails)
	for f := range fails {
		t.Error(f)
	}
}

// TestGatherLeaderShortResults: a pass that under-delivers records is
// an error for the whole cohort, not an out-of-range panic or a
// silently wrong record.
func TestGatherLeaderShortResults(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	s.bat.execGet = func(_ *hybridstore.Table, _ []uint64) ([]hybridstore.Record, error) {
		return nil, nil // zero records for any cohort
	}
	sid := s.CreateSession("")
	get := prep(t, s, sid, "get", 0, 0)

	const waiters = 4
	var wg sync.WaitGroup
	codes := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":%d}`, sid, get, i)
			_, code := exec1(s, body)
			codes <- code
		}(i)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != 500 {
			t.Fatalf("cohort member finished %d, want 500", code)
		}
	}
}

// TestGatherOutOfRangeSoloPath: a point read beyond the table takes the
// solo path immediately — it fails alone without erroring a concurrent
// valid cohort and without waiting out the batch window.
func TestGatherOutOfRangeSoloPath(t *testing.T) {
	s, tbl := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 10 * time.Millisecond})
	sid := s.CreateSession("")
	get := prep(t, s, sid, "get", 0, 0)

	rec, err := tbl.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	want := string(appendRecord(nil, rec))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, code := exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":3}`, sid, get))
		if code != 200 || resp != want {
			t.Errorf("valid read poisoned by out-of-range neighbor: %d %s", code, resp)
		}
	}()
	go func() {
		defer wg.Done()
		_, code := exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":999999}`, sid, get))
		if code != 500 {
			t.Errorf("out-of-range read returned %d, want 500", code)
		}
	}()
	wg.Wait()
}

// TestServeCachePreCheck: with the result cache enabled, a repeated
// query is answered from the pre-check before admission to the batch
// scheduler — the per-op server.cache counters account every lookup and
// hit, and the cached bytes equal the executed bytes exactly.
func TestServeCachePreCheck(t *testing.T) {
	s, tbl := newItemServer(t,
		hybridstore.Options{ChunkRows: 128,
			ResultCache: hybridstore.ResultCacheOptions{Cap: 1 << 20}},
		Config{})
	// Fold the MVCC deltas the fixture leaves behind: aggregates over a
	// table with live deltas are deliberately uncacheable.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	sid := s.CreateSession("")
	get := prep(t, s, sid, "get", 0, 0)
	pks := prep(t, s, sid, "get_pk", 0, 0)
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)
	grp := prep(t, s, sid, "group_sum_where", hybridstore.ItemPriceColumn, 1)

	before := obs.TakeSnapshot()
	delta := func(name string) int64 {
		return obs.TakeSnapshot().Counter(name) - before.Counter(name)
	}

	// Aggregate: first execution publishes, the repeat is a cache hit
	// with byte-identical payload.
	body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":3}}`, sid, sum)
	first, code := exec1(s, body)
	if code != 200 {
		t.Fatalf("sum_where: %d %s", code, first)
	}
	again, code := exec1(s, body)
	if code != 200 || again != first {
		t.Fatalf("cached sum_where diverged: %q vs %q", again, first)
	}
	if lk, hit := delta("server.cache.sum_where.lookups"), delta("server.cache.sum_where.hits"); lk != 2 || hit != 1 {
		t.Fatalf("sum_where cache counters: lookups=%d hits=%d, want 2/1", lk, hit)
	}

	// The between-spelling of the same predicate hits the same entry:
	// key normalization happens before the cache, not after.
	bw := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"between","lo":2,"hi":2}}`, sid, sum)
	eq := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"eq","lo":2}}`, sid, sum)
	bwResp, _ := exec1(s, bw)
	eqResp, code := exec1(s, eq)
	if code != 200 || eqResp != bwResp {
		t.Fatalf("eq(2) did not share between(2,2)'s entry: %q vs %q", eqResp, bwResp)
	}
	if hit := delta("server.cache.sum_where.hits"); hit != 2 {
		t.Fatalf("normalized repeat not served from cache: hits=%d, want 2", hit)
	}

	// Grouped aggregate: repeat is a hit, bytes identical.
	gbody := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"gt","lo":1.5}}`, sid, grp)
	g1, code := exec1(s, gbody)
	if code != 200 {
		t.Fatalf("group_sum_where: %d %s", code, g1)
	}
	g2, code := exec1(s, gbody)
	if code != 200 || g2 != g1 {
		t.Fatalf("cached group_sum_where diverged: %q vs %q", g2, g1)
	}
	if lk, hit := delta("server.cache.group_sum_where.lookups"), delta("server.cache.group_sum_where.hits"); lk != 2 || hit != 1 {
		t.Fatalf("group cache counters: lookups=%d hits=%d, want 2/1", lk, hit)
	}

	// Point read: the first Get publishes the row entry; the repeat and
	// the PK spelling of the same row are both served from it.
	rbody := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":7}`, sid, get)
	r1, code := exec1(s, rbody)
	if code != 200 {
		t.Fatalf("get: %d %s", code, r1)
	}
	r2, code := exec1(s, rbody)
	if code != 200 || r2 != r1 {
		t.Fatalf("cached get diverged: %q vs %q", r2, r1)
	}
	if hit := delta("server.cache.get.hits"); hit != 1 {
		t.Fatalf("get cache hits=%d, want 1", hit)
	}
	r3, code := exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pk":7}`, sid, pks))
	if code != 200 || r3 != r1 {
		t.Fatalf("get_pk(7) did not share get(7)'s entry: %q vs %q", r3, r1)
	}
	if hit := delta("server.cache.get_pk.hits"); hit != 1 {
		t.Fatalf("get_pk cache hits=%d, want 1", hit)
	}

	// A write invalidates: the repeat after an update re-executes and
	// serves the new value, and the hit counter does not move.
	ubody := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":7,"value":4.5}`,
		sid, prep(t, s, sid, "update", hybridstore.ItemPriceColumn, 0))
	if resp, code := exec1(s, ubody); code != 200 {
		t.Fatalf("update: %d %s", code, resp)
	}
	hitsBefore := delta("server.cache.get.hits")
	r4, code := exec1(s, rbody)
	if code != 200 || r4 == r1 {
		t.Fatalf("stale record served after update: %d %s", code, r4)
	}
	if !strings.Contains(r4, "4.5") {
		t.Fatalf("post-update read missing new value: %s", r4)
	}
	if delta("server.cache.get.hits") != hitsBefore {
		t.Fatal("invalidated entry counted as a hit")
	}

	// Facade-level stats agree with the serving-path story.
	st := s.db.ResultCacheStats()
	if st.Lookups == 0 || st.Hits+st.Misses != st.Lookups {
		t.Fatalf("facade cache stats violate hits+misses==lookups: %+v", st)
	}
}
