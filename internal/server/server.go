package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
)

// Config assembles a Server.
type Config struct {
	// DB is the open store the server fronts. Required.
	DB *hybridstore.DB
	// BatchWindow is the shared-scan collection window: the first
	// request of a compatibility class waits this long for co-runners
	// before executing one shared pass for the whole cohort. 0 disables
	// batching (every request executes solo). Default 0 — callers opt
	// in; DefaultBatchWindow is the tuned serving value.
	BatchWindow time.Duration
	// Admission is the per-tenant load-shedding policy. The zero value
	// admits everything.
	Admission Admission
}

// DefaultBatchWindow is the collection window the serving benchmarks
// run with: long enough that a 32-client burst lands in one cohort,
// short enough to be invisible next to a cold scan.
const DefaultBatchWindow = 200 * time.Microsecond

// Server is the serving layer: sessions, prepared statements,
// admission control and the batching scheduler over one DB.
type Server struct {
	db  *hybridstore.DB
	adm *admitter
	bat *batcher

	mu       sync.RWMutex
	sessions map[string]*session
	nextSess atomic.Uint64

	// Per-op-class telemetry, indexed by opKind. Latency is observed
	// BEFORE the op counter increments (the obs snapshot pairing
	// convention), so a metrics scrape never sees an op whose latency
	// is missing.
	opNs  [opCount]*obs.Histogram
	opOps [opCount]*obs.Counter
	opErr [opCount]*obs.Counter

	// Result-cache pre-check telemetry per op class: lookups counts
	// every dispatch that consulted the cache before paying for
	// execution (and, for reads, the batch collection window); hits the
	// subset answered on the spot. Write classes never consult, so
	// their counters stay zero.
	opCacheLk  [opCount]*obs.Counter
	opCacheHit [opCount]*obs.Counter
}

// New builds a Server over cfg.DB.
func New(cfg Config) *Server {
	s := &Server{
		db:       cfg.DB,
		adm:      newAdmitter(cfg.Admission),
		bat:      newBatcher(cfg.BatchWindow),
		sessions: make(map[string]*session),
	}
	for k := range opName {
		s.opNs[k] = obs.NewHistogram("server.exec." + opName[k] + ".ns")
		s.opOps[k] = obs.NewCounter("server.exec." + opName[k] + ".ops")
		s.opErr[k] = obs.NewCounter("server.exec." + opName[k] + ".errors")
		s.opCacheLk[k] = obs.NewCounter("server.cache." + opName[k] + ".lookups")
		s.opCacheHit[k] = obs.NewCounter("server.cache." + opName[k] + ".hits")
	}
	return s
}

// execStatus carries a non-200 outcome of the exec path.
var (
	errThrottled = errors.New("server: tenant throttled")
	errOverload  = errors.New("server: tenant overloaded")
)

// Exec runs one prepared statement from its wire-format body and
// appends the response JSON to out — the transport-independent core
// the HTTP handler, the benchmarks and the in-process load harness all
// drive. Returns the extended buffer and the HTTP status code.
//
// The body is scanned in place and the response built into the
// caller's (pooled) buffer: a warm sum_where costs a fixed handful of
// allocations end to end (gated by BenchmarkServeSumWhere).
func (s *Server) Exec(body, out []byte) ([]byte, int) {
	var (
		sessID, value, predRaw, recordRaw []byte
		stmtID, row, pk                   int64
		hasRow, hasPK                     bool
	)
	stmtID = -1
	_, err := scanObject(body, func(key, val []byte) error {
		switch string(key) {
		case "session_id":
			sessID = val
		case "stmt_id":
			n, err := parseI64(val)
			if err != nil {
				return fmt.Errorf("%w: stmt_id: %v", errProto, err)
			}
			stmtID = n
		case "row":
			n, err := parseI64(val)
			if err != nil {
				return fmt.Errorf("%w: row: %v", errProto, err)
			}
			row, hasRow = n, true
		case "pk":
			n, err := parseI64(val)
			if err != nil {
				return fmt.Errorf("%w: pk: %v", errProto, err)
			}
			pk, hasPK = n, true
		case "value":
			value = val
		case "pred":
			predRaw = val
		case "record":
			recordRaw = val
		}
		return nil
	})
	if err != nil {
		return appendError(out, err), 400
	}
	ss := s.session(sessID)
	if ss == nil {
		return appendError(out, fmt.Errorf("server: unknown session %q", sessID)), 404
	}
	st := ss.stmt(stmtID)
	if st == nil {
		return appendError(out, fmt.Errorf("server: unknown statement %d", stmtID)), 404
	}
	release, code := s.adm.admit(ss.tenant)
	if code != 0 {
		if code == 429 {
			return appendError(out, errThrottled), code
		}
		return appendError(out, errOverload), code
	}
	defer release()

	t0 := time.Now()
	out, err = s.dispatch(st, out, execArgs{
		row: row, pk: pk, hasRow: hasRow, hasPK: hasPK,
		value: value, predRaw: predRaw, recordRaw: recordRaw,
	})
	s.opNs[st.op].ObserveSince(t0)
	s.opOps[st.op].Inc()
	if err != nil {
		s.opErr[st.op].Inc()
		if errors.Is(err, errProto) {
			return appendError(out, err), 400
		}
		return appendError(out, err), 500
	}
	return out, 200
}

// execArgs is the decoded argument set of one Exec call.
type execArgs struct {
	row, pk       int64
	hasRow, hasPK bool
	value         []byte
	predRaw       []byte
	recordRaw     []byte
}

// dispatch executes st and appends the success payload to out. On
// error the partial payload is discarded by the caller via appendError.
func (s *Server) dispatch(st *stmt, out []byte, a execArgs) ([]byte, error) {
	switch st.op {
	case opGet, opGetPK:
		// Pre-check the result cache before joining a gather cohort: a
		// hit skips both the collection window and the storage pass.
		var rec hybridstore.Record
		var err error
		if st.op == opGetPK {
			if !a.hasPK {
				return out, fmt.Errorf("%w: get_pk needs pk", errProto)
			}
			s.opCacheLk[opGetPK].Inc()
			if row, ok := st.tbl.LookupPK(a.pk); ok {
				if cached, hit := st.tbl.CachedGet(row); hit {
					s.opCacheHit[opGetPK].Inc()
					return appendRecord(out, cached), nil
				}
			}
			rec, err = st.tbl.GetByPK(a.pk)
		} else {
			if !a.hasRow {
				return out, fmt.Errorf("%w: get needs row", errProto)
			}
			s.opCacheLk[opGet].Inc()
			if cached, hit := st.tbl.CachedGet(uint64(a.row)); hit {
				s.opCacheHit[opGet].Inc()
				return appendRecord(out, cached), nil
			}
			rec, err = s.bat.get(st.tbl, uint64(a.row))
		}
		if err != nil {
			return out, err
		}
		return appendRecord(out, rec), nil

	case opUpdate:
		if !a.hasRow || a.value == nil {
			return out, fmt.Errorf("%w: update needs row and value", errProto)
		}
		v, err := decodeValue(st.colKind, a.value)
		if err != nil {
			return out, err
		}
		if err := st.tbl.Update(uint64(a.row), st.col, v); err != nil {
			return out, err
		}
		return append(out, `{"ok":true}`...), nil

	case opInsert:
		if a.recordRaw == nil {
			return out, fmt.Errorf("%w: insert needs record", errProto)
		}
		sc := st.tbl.Schema()
		rec := make(hybridstore.Record, 0, sc.Arity())
		i := 0
		err := scanArray(a.recordRaw, func(val []byte) error {
			if i >= sc.Arity() {
				return fmt.Errorf("%w: record has more than %d fields", errProto, sc.Arity())
			}
			v, err := decodeValue(sc.Attr(i).Kind, val)
			if err != nil {
				return err
			}
			rec = append(rec, v)
			i++
			return nil
		})
		if err != nil {
			return out, err
		}
		if i != sc.Arity() {
			return out, fmt.Errorf("%w: record has %d of %d fields", errProto, i, sc.Arity())
		}
		rowID, err := st.tbl.Insert(rec)
		if err != nil {
			return out, err
		}
		out = append(out, `{"row":`...)
		out = appendI64(out, int64(rowID))
		return append(out, '}'), nil

	case opSum:
		s.opCacheLk[opSum].Inc()
		sum, hit := st.tbl.CachedSumFloat64(st.col)
		if hit {
			s.opCacheHit[opSum].Inc()
		} else {
			var err error
			sum, err = st.tbl.SumFloat64(st.col)
			if err != nil {
				return out, err
			}
		}
		out = append(out, `{"sum":`...)
		out = appendF64(out, sum)
		return append(out, '}'), nil

	case opSumWhere, opCountWhere:
		if a.predRaw == nil {
			return out, fmt.Errorf("%w: %s needs pred", errProto, opName[st.op])
		}
		p, err := parsePred(a.predRaw)
		if err != nil {
			return out, err
		}
		s.opCacheLk[st.op].Inc()
		sum, n, hit := st.tbl.CachedSumFloat64Where(st.col, p)
		if hit {
			s.opCacheHit[st.op].Inc()
		} else if sum, n, err = s.bat.sumWhere(st.tbl, st.col, p); err != nil {
			return out, err
		}
		if st.op == opCountWhere {
			out = append(out, `{"count":`...)
			out = appendI64(out, n)
			return append(out, '}'), nil
		}
		out = append(out, `{"sum":`...)
		out = appendF64(out, sum)
		out = append(out, `,"count":`...)
		out = appendI64(out, n)
		return append(out, '}'), nil

	case opGroupSumWhere:
		if a.predRaw == nil {
			return out, fmt.Errorf("%w: group_sum_where needs pred", errProto)
		}
		p, err := parsePred(a.predRaw)
		if err != nil {
			return out, err
		}
		s.opCacheLk[opGroupSumWhere].Inc()
		groups, hit := st.tbl.CachedGroupBySumWhere(st.keyCol, st.col, p)
		if hit {
			s.opCacheHit[opGroupSumWhere].Inc()
		} else if groups, err = s.bat.groupSumWhere(st.tbl, st.keyCol, st.col, p); err != nil {
			return out, err
		}
		// groups may be shared with other batch waiters: read-only.
		out = append(out, `{"groups":[`...)
		for i, g := range groups {
			if i > 0 {
				out = append(out, ',')
			}
			out = append(out, '[')
			out = appendI64(out, g.Key)
			out = append(out, ',')
			out = appendF64(out, g.Sum)
			out = append(out, ',')
			out = appendI64(out, g.Count)
			out = append(out, ']')
		}
		return append(out, `]}`...), nil
	}
	return out, fmt.Errorf("server: unhandled op %d", st.op)
}

// decodeValue builds the schema value of kind k from raw wire bytes.
func decodeValue(k schema.Kind, raw []byte) (schema.Value, error) {
	switch k {
	case schema.Float64:
		f, err := parseF64(raw)
		if err != nil {
			return schema.Value{}, fmt.Errorf("%w: float value: %v", errProto, err)
		}
		return schema.FloatValue(f), nil
	case schema.Int64:
		n, err := parseI64(raw)
		if err != nil {
			return schema.Value{}, fmt.Errorf("%w: int value: %v", errProto, err)
		}
		return schema.IntValue(n), nil
	case schema.Int32:
		n, err := parseI64(raw)
		if err != nil {
			return schema.Value{}, fmt.Errorf("%w: int32 value: %v", errProto, err)
		}
		return schema.Int32Value(int32(n)), nil
	case schema.Char:
		return schema.CharValue(string(raw)), nil
	default:
		return schema.Value{}, fmt.Errorf("%w: unsupported kind %v", errProto, k)
	}
}

// appendRecord renders a record as a JSON array of field values.
func appendRecord(out []byte, rec hybridstore.Record) []byte {
	out = append(out, `{"record":[`...)
	for i, v := range rec {
		if i > 0 {
			out = append(out, ',')
		}
		switch v.Kind {
		case schema.Float64:
			out = appendF64(out, v.F)
		case schema.Char:
			out = append(out, '"')
			out = append(out, v.S...)
			out = append(out, '"')
		default:
			out = appendI64(out, v.I)
		}
	}
	return append(out, `]}`...)
}

// appendError resets out to an {"error":...} payload. The partial
// response built before the failure is discarded; the buffer is reused.
func appendError(out []byte, err error) []byte {
	out = out[:0]
	out = append(out, `{"error":"`...)
	msg := err.Error()
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '"' || c == '\\' {
			out = append(out, '\\')
		}
		if c < 0x20 {
			c = ' '
		}
		out = append(out, c)
	}
	return append(out, `"}`...)
}
