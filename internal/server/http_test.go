package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridstore"
)

// post sends a JSON body and returns status and response body.
func post(t *testing.T, client *http.Client, url, body string) (int, string) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHTTPEndToEnd drives the full wire protocol over a real TCP
// loopback listener: session, prepare, exec of every op class, metrics
// and health — the same path cmd/loadgen exercises.
func TestHTTPEndToEnd(t *testing.T) {
	s, tbl := newItemServer(t,
		hybridstore.Options{ChunkRows: 128, DeviceCache: true},
		Config{BatchWindow: 200 * time.Microsecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	code, body := post(t, c, ts.URL+"/v1/session", `{"tenant":"t1"}`)
	if code != 200 || !strings.HasPrefix(body, `{"session_id":"`) {
		t.Fatalf("session: %d %s", code, body)
	}
	sid := strings.TrimSuffix(strings.TrimPrefix(body, `{"session_id":"`), `"}`)

	code, body = post(t, c, ts.URL+"/v1/prepare", fmt.Sprintf(
		`{"session_id":"%s","op":"sum_where","table":"item","col":%d}`, sid, hybridstore.ItemPriceColumn))
	if code != 200 || body != `{"stmt_id":0}` {
		t.Fatalf("prepare: %d %s", code, body)
	}

	ws, wn, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, hybridstore.LtFloat(30))
	if err != nil {
		t.Fatal(err)
	}
	code, body = post(t, c, ts.URL+"/v1/exec", fmt.Sprintf(
		`{"session_id":"%s","stmt_id":0,"pred":{"kind":"lt","hi":30}}`, sid))
	want := fmt.Sprintf(`{"sum":%s,"count":%d}`, string(appendF64(nil, ws)), wn)
	if code != 200 || body != want {
		t.Fatalf("exec: %d %s, want %s", code, body, want)
	}

	// Protocol errors surface as HTTP statuses with error payloads.
	code, body = post(t, c, ts.URL+"/v1/exec", `{"session_id":"zz","stmt_id":0}`)
	if code != 404 || !strings.Contains(body, "error") {
		t.Fatalf("unknown session over HTTP: %d %s", code, body)
	}

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(mb), "server.exec.sum_where.ops") {
		t.Fatalf("metrics: %d (%d bytes)", resp.StatusCode, len(mb))
	}
	resp, err = c.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(hb) != `{"ok":true}` {
		t.Fatalf("healthz: %d %s", resp.StatusCode, hb)
	}
}
