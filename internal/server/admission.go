package server

import (
	"sync"
	"time"

	"hybridstore/internal/obs"
)

// Admission tunes per-tenant load shedding. The server never queues
// work it cannot afford: requests beyond the token rate bounce with 429
// (retryable throttle), requests beyond the in-flight ceiling bounce
// with 503 (overload) — the warp-style load harness counts both
// separately from hard errors.
type Admission struct {
	// Rate is the sustained request rate per tenant, in requests per
	// second. 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth: how many requests above the
	// sustained rate a tenant may fire back to back. Defaults to max(1,
	// Rate/10) when Rate is set.
	Burst float64
	// MaxInFlight caps a tenant's concurrently executing requests. 0
	// disables the ceiling.
	MaxInFlight int
}

// Admission outcome counters, plus the live in-flight gauge: every
// admitted request raises it and its release lowers it, across all
// tenants and regardless of policy — a gauge stuck above zero on an
// idle server means a leaked admission token.
var (
	mAdmitted  = obs.NewCounter("server.admission.admitted")
	mThrottled = obs.NewCounter("server.admission.throttled")
	mOverload  = obs.NewCounter("server.admission.overload")
	gInFlight  = obs.NewGauge("server.admission.inflight")
)

// tenantState is one tenant's token bucket plus in-flight count. Both
// live under one small mutex: admission is a few dozen nanoseconds of
// arithmetic, never a blocking wait.
type tenantState struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int
}

// admitter applies one Admission policy across all tenants.
type admitter struct {
	cfg     Admission
	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newAdmitter(cfg Admission) *admitter {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate / 10
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &admitter{cfg: cfg, tenants: make(map[string]*tenantState)}
}

func (a *admitter) tenant(name string) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenants[name]
	if ts == nil {
		ts = &tenantState{tokens: a.cfg.Burst, last: time.Now()}
		a.tenants[name] = ts
	}
	return ts
}

// admit decides the request's fate now — it never blocks. On success
// the returned release func must be called when the request finishes;
// on rejection release is nil and code is the HTTP status to surface
// (429 throttled, 503 overloaded). Release is idempotent: a path that
// calls it twice (an error return racing a deferred cleanup) gives
// back exactly one token, so the ceiling can never be over-admitted.
func (a *admitter) admit(tenant string) (release func(), code int) {
	if a.cfg.Rate <= 0 && a.cfg.MaxInFlight <= 0 {
		mAdmitted.Inc()
		gInFlight.Add(1)
		var once sync.Once
		return func() { once.Do(func() { gInFlight.Add(-1) }) }, 0
	}
	ts := a.tenant(tenant)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if a.cfg.Rate > 0 {
		now := time.Now()
		ts.tokens += now.Sub(ts.last).Seconds() * a.cfg.Rate
		if ts.tokens > a.cfg.Burst {
			ts.tokens = a.cfg.Burst
		}
		ts.last = now
		if ts.tokens < 1 {
			mThrottled.Inc()
			return nil, 429
		}
		ts.tokens--
	}
	if a.cfg.MaxInFlight > 0 {
		if ts.inflight >= a.cfg.MaxInFlight {
			if a.cfg.Rate > 0 {
				ts.tokens++ // the rejected request spent no capacity
			}
			mOverload.Inc()
			return nil, 503
		}
		ts.inflight++
	}
	mAdmitted.Inc()
	gInFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			ts.mu.Lock()
			if a.cfg.MaxInFlight > 0 {
				ts.inflight--
			}
			ts.mu.Unlock()
			gInFlight.Add(-1)
		})
	}, 0
}
