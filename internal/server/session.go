package server

import (
	"fmt"
	"sync"

	"hybridstore"
	"hybridstore/internal/schema"
)

// opKind enumerates the prepared-statement operations — the serving
// protocol's whole query surface. Analytic classes (sum_where,
// count_where, group_sum_where) are batchable; the rest execute
// directly.
type opKind uint8

const (
	opGet opKind = iota
	opGetPK
	opUpdate
	opInsert
	opSum
	opSumWhere
	opCountWhere
	opGroupSumWhere
	opCount // number of kinds
)

// opName is the wire name of each kind, also the op-class label in
// metrics and the load harness.
var opName = [opCount]string{
	opGet:           "get",
	opGetPK:         "get_pk",
	opUpdate:        "update",
	opInsert:        "insert",
	opSum:           "sum",
	opSumWhere:      "sum_where",
	opCountWhere:    "count_where",
	opGroupSumWhere: "group_sum_where",
}

func opKindOf(name []byte) (opKind, bool) {
	for k, n := range opName {
		if n == string(name) {
			return opKind(k), true
		}
	}
	return 0, false
}

// stmt is one prepared statement: the parse/bind work — table lookup,
// column validation, kind resolution — done once at Prepare so Exec
// only decodes arguments.
type stmt struct {
	op      opKind
	tbl     *hybridstore.Table
	col     int         // value column (update/sum/sum_where/count_where, valCol alias)
	keyCol  int         // group key column (group_sum_where)
	colKind schema.Kind // kind of col, resolved at prepare
}

// session is one client's statement namespace. Statements are
// append-only and identified by index, so Exec resolves a statement
// with one bounds check under a read lock.
type session struct {
	id     string
	tenant string
	mu     sync.RWMutex
	stmts  []*stmt
}

func (ss *session) stmt(id int64) *stmt {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if id < 0 || id >= int64(len(ss.stmts)) {
		return nil
	}
	return ss.stmts[id]
}

// CreateSession registers a new session for tenant (empty means
// "default") and returns its id.
func (s *Server) CreateSession(tenant string) string {
	if tenant == "" {
		tenant = "default"
	}
	id := fmt.Sprintf("s%d", s.nextSess.Add(1))
	ss := &session{id: id, tenant: tenant}
	s.mu.Lock()
	s.sessions[id] = ss
	s.mu.Unlock()
	return id
}

func (s *Server) session(id []byte) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[string(id)] // map lookup by []byte key does not allocate
}

// Prepare resolves and validates a statement in session sid, returning
// the statement id Exec uses.
func (s *Server) Prepare(sid, op, table string, col, keyCol int) (int, error) {
	ss := s.session([]byte(sid))
	if ss == nil {
		return 0, fmt.Errorf("server: unknown session %q", sid)
	}
	kind, ok := opKindOf([]byte(op))
	if !ok {
		return 0, fmt.Errorf("server: unknown op %q", op)
	}
	tbl := s.db.Table(table)
	if tbl == nil {
		return 0, fmt.Errorf("server: unknown table %q", table)
	}
	sc := tbl.Schema()
	st := &stmt{op: kind, tbl: tbl, col: col, keyCol: keyCol}
	switch kind {
	case opGet, opGetPK, opInsert:
		// No column binding.
	case opUpdate:
		if col < 0 || col >= sc.Arity() {
			return 0, fmt.Errorf("server: col %d out of range", col)
		}
		st.colKind = sc.Attr(col).Kind
	case opSum, opSumWhere, opCountWhere:
		if col < 0 || col >= sc.Arity() || sc.Attr(col).Kind != schema.Float64 {
			return 0, fmt.Errorf("server: col %d is not a float64 attribute", col)
		}
		st.colKind = schema.Float64
	case opGroupSumWhere:
		if col < 0 || col >= sc.Arity() || sc.Attr(col).Kind != schema.Float64 {
			return 0, fmt.Errorf("server: val col %d is not a float64 attribute", col)
		}
		if keyCol < 0 || keyCol >= sc.Arity() {
			return 0, fmt.Errorf("server: key col %d out of range", keyCol)
		}
		st.colKind = schema.Float64
	}
	ss.mu.Lock()
	ss.stmts = append(ss.stmts, st)
	id := len(ss.stmts) - 1
	ss.mu.Unlock()
	return id, nil
}
