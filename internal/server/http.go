package server

import (
	"fmt"
	"io"
	"net"
	"net/http"

	"hybridstore"
	"hybridstore/internal/exec/pool"
	"hybridstore/internal/obs"
)

// HTTP front end. Endpoints:
//
//	POST /v1/session  {"tenant":"t"}                          → {"session_id":"s1"}
//	POST /v1/prepare  {"session_id","op","table","col",
//	                   "key_col"}                             → {"stmt_id":0}
//	POST /v1/exec     {"session_id","stmt_id", ...args}       → op-specific payload
//	GET  /metrics                                             → full obs registry JSON
//	GET  /healthz                                             → {"ok":true}
//
// The exec handler moves request and response bytes through recycled
// pool buffers; session and prepare are cold-path and favour clarity.
var mHTTPRequests = obs.NewCounter("server.http.requests")

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/session", s.handleSession)
	mux.HandleFunc("/v1/prepare", s.handlePrepare)
	mux.HandleFunc("/v1/exec", s.handleExec)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		w.Header().Set("Content-Type", "application/json")
		if err := hybridstore.WriteMetricsJSON(w); err != nil {
			http.Error(w, err.Error(), 500)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		mHTTPRequests.Inc()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	})
	return mux
}

// Serve answers HTTP on l until l closes.
func (s *Server) Serve(l net.Listener) error {
	return (&http.Server{Handler: s.Handler()}).Serve(l)
}

// readBody drains r into a pooled buffer sized by Content-Length.
// Callers must PutBytes the result.
func readBody(r *http.Request) ([]byte, error) {
	n := int(r.ContentLength)
	if n < 0 {
		n = 512
	}
	buf := pool.GetBytesCap(n)
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			pool.PutBytes(buf)
			return nil, err
		}
	}
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	mHTTPRequests.Inc()
	body, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), 400)
		return
	}
	// Deferred so a panicking statement cannot leak the pooled buffers
	// (net/http recovers the panic per connection; the server keeps
	// serving and the pool keeps its pages).
	defer pool.PutBytes(body)
	out := pool.GetBytes()[:0]
	defer func() { pool.PutBytes(out) }()
	out, code := s.Exec(body, out)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(out)
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	mHTTPRequests.Inc()
	body, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), 400)
		return
	}
	defer pool.PutBytes(body)
	tenant := ""
	if len(body) > 0 {
		_, err = scanObject(body, func(key, val []byte) error {
			if string(key) == "tenant" {
				tenant = string(val)
			}
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
	}
	id := s.CreateSession(tenant)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"session_id":%q}`, id)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	mHTTPRequests.Inc()
	body, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), 400)
		return
	}
	defer pool.PutBytes(body)
	var sid, op, table string
	col, keyCol := -1, -1
	_, err = scanObject(body, func(key, val []byte) error {
		switch string(key) {
		case "session_id":
			sid = string(val)
		case "op":
			op = string(val)
		case "table":
			table = string(val)
		case "col", "val_col":
			n, err := parseI64(val)
			if err != nil {
				return fmt.Errorf("%w: col: %v", errProto, err)
			}
			col = int(n)
		case "key_col":
			n, err := parseI64(val)
			if err != nil {
				return fmt.Errorf("%w: key_col: %v", errProto, err)
			}
			keyCol = int(n)
		}
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), 400)
		return
	}
	id, err := s.Prepare(sid, op, table, col, keyCol)
	if err != nil {
		http.Error(w, err.Error(), 400)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"stmt_id":%d}`, id)
}
