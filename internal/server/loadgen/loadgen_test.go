package loadgen

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hybridstore"
	"hybridstore/internal/server"
)

func testServer(t *testing.T, window time.Duration) *httptest.Server {
	t.Helper()
	db := hybridstore.Open(hybridstore.Options{ChunkRows: 128, DeviceCache: true})
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Free)
	for i := uint64(0); i < 512; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(server.Config{DB: db, BatchWindow: window})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("write=10,point=15,sum=55,group=20")
	if err != nil || m != (Mix{Write: 10, Point: 15, Sum: 55, Group: 20}) {
		t.Fatalf("got %+v, %v", m, err)
	}
	if m, err = ParseMix(""); err != nil || m != DefaultMix {
		t.Fatalf("empty mix: %+v, %v", m, err)
	}
	if m, err = ParseMix("sum=100"); err != nil || m != (Mix{Sum: 100}) {
		t.Fatalf("single class: %+v, %v", m, err)
	}
	if m, err = ParseMix("point=100"); err != nil || m != (Mix{Point: 100}) {
		t.Fatalf("point class: %+v, %v", m, err)
	}
	for _, bad := range []string{"write=0,point=0,sum=0,group=0", "read=5", "sum=x", "sum"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestRunClosedLoop drives a real loopback server with the full mix and
// checks the report is coherent: every class served traffic, no errors,
// latencies ordered, QPS consistent with the op counts.
func TestRunClosedLoop(t *testing.T) {
	ts := testServer(t, server.DefaultBatchWindow)
	res, err := Run(Options{
		BaseURL:     ts.URL,
		Rows:        512,
		Concurrency: 8,
		Duration:    400 * time.Millisecond,
		Mix:         Mix{Write: 25, Point: 25, Sum: 35, Group: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalErrs != 0 || res.TotalShed != 0 {
		t.Fatalf("errors %d, shed %d:\n%s", res.TotalErrs, res.TotalShed, res)
	}
	if res.TotalOps == 0 || res.QPS <= 0 {
		t.Fatalf("no throughput:\n%s", res)
	}
	var sumOps int64
	for _, c := range res.Classes {
		if c.Ops == 0 {
			t.Errorf("class %s served nothing:\n%s", c.Name, res)
		}
		if c.P50 > c.P95 || c.P95 > c.P99 {
			t.Errorf("class %s latencies out of order: %v %v %v", c.Name, c.P50, c.P95, c.P99)
		}
		sumOps += c.Ops
	}
	if sumOps != res.TotalOps {
		t.Fatalf("class ops %d != total %d", sumOps, res.TotalOps)
	}
	out := res.String()
	csv := res.CSV()
	for _, want := range []string{"write", "point", "sum", "group", "p99", "cache%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(csv, "class,ops,qps,shed,errors,p50_us,p95_us,p99_us,cache_hit_pct\n") || !strings.Contains(csv, "\ntotal,") {
		t.Errorf("bad csv:\n%s", csv)
	}
}

// TestPointClassCacheHitRate drives a point-heavy zipfian mix against a
// result-cached server: the hot head repeats, so the per-class cache
// hit rate scraped from /metrics must be positive for the point class
// and every lookup must be accounted.
func TestPointClassCacheHitRate(t *testing.T) {
	db := hybridstore.Open(hybridstore.Options{ChunkRows: 128,
		ResultCache: hybridstore.ResultCacheOptions{Cap: 1 << 20}})
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Free)
	for i := uint64(0); i < 512; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(server.Config{DB: db, BatchWindow: server.DefaultBatchWindow})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	res, err := Run(Options{
		BaseURL:     ts.URL,
		Rows:        512,
		Concurrency: 8,
		Duration:    400 * time.Millisecond,
		Mix:         Mix{Point: 80, Sum: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalErrs != 0 {
		t.Fatalf("errors:\n%s", res)
	}
	pt := res.Classes[ClassPoint]
	if pt.Ops == 0 {
		t.Fatalf("point class served nothing:\n%s", res)
	}
	if pt.CacheLookups < pt.Ops {
		t.Fatalf("point lookups %d < ops %d: pre-check not consulted per request", pt.CacheLookups, pt.Ops)
	}
	if pt.CacheHits == 0 || pt.CacheHitPct <= 0 {
		t.Fatalf("zipfian point reads never hit the result cache:\n%s", res)
	}
	if pt.CacheHits > pt.CacheLookups {
		t.Fatalf("hits %d > lookups %d", pt.CacheHits, pt.CacheLookups)
	}
	// The write class never consults the cache.
	if w := res.Classes[ClassWrite]; w.CacheLookups != 0 || w.CacheHits != 0 {
		t.Fatalf("write class reported cache traffic: %+v", w)
	}
}

// TestRunOpenLoop paces arrivals at a modest fixed rate; completed ops
// must track the offered load, not the service capacity.
func TestRunOpenLoop(t *testing.T) {
	ts := testServer(t, 0)
	res, err := Run(Options{
		BaseURL:     ts.URL,
		Rows:        512,
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		Mix:         Mix{Sum: 100},
		OpenRate:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalErrs != 0 {
		t.Fatalf("errors:\n%s", res)
	}
	// ~100 arrivals offered; the server clears them easily, so ops
	// should sit near the offered count, far below closed-loop rates.
	if res.TotalOps == 0 {
		t.Fatalf("no throughput:\n%s", res)
	}
	if res.QPS > 400 {
		t.Fatalf("open loop at 200 req/s measured %.0f qps — pacing is not limiting", res.QPS)
	}
}

// TestAutoTerm ends a steady closed-loop run well before the duration
// ceiling.
func TestAutoTerm(t *testing.T) {
	ts := testServer(t, server.DefaultBatchWindow)
	res, err := Run(Options{
		BaseURL:       ts.URL,
		Rows:          512,
		Concurrency:   4,
		Duration:      30 * time.Second,
		Mix:           Mix{Sum: 100},
		AutoTerm:      true,
		StabWindow:    100 * time.Millisecond,
		StabCount:     3,
		StabSpreadPct: 80, // generous: CI machines are noisy
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized {
		t.Fatalf("did not stabilize:\n%s", res)
	}
	if res.Wall > 10*time.Second {
		t.Fatalf("autoterm took %v", res.Wall)
	}
}

func TestRunRejectsWriteMixWithoutRows(t *testing.T) {
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:1", Mix: Mix{Write: 1}}); err == nil {
		t.Fatal("accepted write mix without Rows")
	}
}

// TestShedAccounting runs against a throttled tenant: admission
// rejections must land in Shed, not Errors, and must not fail the run.
func TestShedAccounting(t *testing.T) {
	db := hybridstore.Open(hybridstore.Options{ChunkRows: 128})
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Free)
	for i := uint64(0); i < 128; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(server.Config{DB: db, Admission: server.Admission{Rate: 50, Burst: 5}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	res, err := Run(Options{
		BaseURL:     ts.URL,
		Rows:        128,
		Concurrency: 8,
		Duration:    300 * time.Millisecond,
		Mix:         Mix{Sum: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalErrs != 0 {
		t.Fatalf("admission rejections counted as errors:\n%s", res)
	}
	if res.TotalShed == 0 {
		t.Fatalf("throttled run shed nothing:\n%s", res)
	}
}
