// Package loadgen is the warp-style concurrent load harness for the
// serving layer: a swarm of client lanes drives the HTTP front end
// with a configurable mix of point writes, zipfian point reads,
// predicate sums and grouped aggregations, in closed-loop (next
// request after the last response)
// or open-loop (fixed arrival rate) mode, and reports wall-clock
// throughput plus p50/p95/p99 latency per operation class.
//
// Analytic predicates are drawn from a small fixed set of cuts, so
// concurrent lanes issue compatible queries and the server's batching
// scheduler has real collapse opportunities — the same shape a fleet
// of dashboard clients produces.
//
// With AutoTerm set, the run self-terminates once throughput
// stabilizes: when the last few window QPS samples stay within a
// relative spread, more wall time cannot change the story.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/obs"
)

// Class indexes one operation class of the mix.
type Class int

// The operation classes.
const (
	ClassWrite Class = iota // point price update
	ClassPoint              // point read (get) with zipfian row IDs
	ClassSum                // predicate sum (sum_where)
	ClassGroup              // fused grouped aggregation (group_sum_where)
	numClasses
)

var className = [numClasses]string{"write", "point", "sum", "group"}

// classCacheOp maps a class to its server-side result-cache counter
// namespace (server.cache.<op>.*); writes never consult the cache.
var classCacheOp = [numClasses]string{"", "get", "sum_where", "group_sum_where"}

// Mix is the operation mix in percent. Fields need not total exactly
// 100; draws are weighted by the given shares.
type Mix struct {
	Write, Point, Sum, Group int
}

// DefaultMix is a write-light hybrid serving mix with a zipfian
// point-read lane — the shape a dashboard fleet plus an OLTP app
// produces.
var DefaultMix = Mix{Write: 20, Point: 20, Sum: 45, Group: 15}

// ParseMix parses "write=20,point=20,sum=45,group=15" (classes may be
// omitted).
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return DefaultMix, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("loadgen: bad mix element %q", part)
		}
		var n int
		if _, err := fmt.Sscanf(kv[1], "%d", &n); err != nil || n < 0 {
			return m, fmt.Errorf("loadgen: bad mix share %q", part)
		}
		switch kv[0] {
		case "write":
			m.Write = n
		case "point":
			m.Point = n
		case "sum":
			m.Sum = n
		case "group":
			m.Group = n
		default:
			return m, fmt.Errorf("loadgen: unknown mix class %q", kv[0])
		}
	}
	if m.Write+m.Point+m.Sum+m.Group == 0 {
		return m, fmt.Errorf("loadgen: empty mix %q", s)
	}
	return m, nil
}

// Options configures a run.
type Options struct {
	// BaseURL is the serving endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Table is the target table (default "item"; must follow the item
	// schema's column layout).
	Table string
	// Rows is the row-id domain point writes draw from. Required for a
	// mix with writes.
	Rows uint64
	// Concurrency is the number of client lanes (default 8).
	Concurrency int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Mix is the operation mix (zero value: DefaultMix).
	Mix Mix
	// OpenRate, when positive, switches to open-loop mode: arrivals
	// fire at this aggregate rate per second regardless of completions,
	// queueing when all lanes are busy. Zero selects closed-loop mode.
	OpenRate float64
	// AutoTerm stops the run early once throughput stabilizes.
	AutoTerm bool
	// StabWindow is the QPS sampling window for AutoTerm (default
	// 500ms).
	StabWindow time.Duration
	// StabCount is how many consecutive windows must agree (default 4).
	StabCount int
	// StabSpreadPct is the allowed relative spread (max-min)/mean of
	// those windows, in percent (default 5).
	StabSpreadPct float64
	// Client overrides the HTTP client (default: keep-alive transport
	// sized to Concurrency).
	Client *http.Client
	// Seed seeds the per-lane generators (default 1).
	Seed int64
}

// ClassStats is the per-class report.
type ClassStats struct {
	Name string
	// Ops are completed requests with 200 responses; Shed counts
	// admission rejections (429/503); Errors everything else.
	Ops, Shed, Errors int64
	QPS               float64
	P50, P95, P99     time.Duration
	// CacheLookups/CacheHits are the server's result-cache pre-check
	// counters for this class, diffed across the run via /metrics.
	// Zero for classes that never consult the cache (writes) or when
	// the endpoint exposes no metrics.
	CacheLookups, CacheHits int64
	CacheHitPct             float64
}

// Result is one run's report.
type Result struct {
	Wall    time.Duration
	Classes [numClasses]ClassStats
	// Stabilized is true when AutoTerm ended the run early.
	Stabilized bool
	TotalOps   int64
	TotalShed  int64
	TotalErrs  int64
	QPS        float64
}

// lane-shared run state.
type runState struct {
	opts    Options
	client  *http.Client
	execURL string
	sid     string
	stmts   [numClasses]int

	ops  [numClasses]atomic.Int64
	shed [numClasses]atomic.Int64
	errs [numClasses]atomic.Int64
	lat  [numClasses]*obs.Histogram
}

// The fixed predicate cuts analytic lanes draw from (over the item
// price domain [1, 101) plus written integer values). A small set on
// purpose: concurrent lanes repeat cuts, so shared passes collapse.
var predCuts = []string{
	`{"kind":"lt","hi":30}`,
	`{"kind":"gt","lo":50}`,
	`{"kind":"between","lo":10,"hi":60}`,
	`{"kind":"between","lo":20,"hi":80}`,
}

// Run executes one load test and reports it.
func Run(opts Options) (*Result, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Mix == (Mix{}) {
		opts.Mix = DefaultMix
	}
	if opts.Table == "" {
		opts.Table = "item"
	}
	if opts.StabWindow <= 0 {
		opts.StabWindow = 500 * time.Millisecond
	}
	if opts.StabCount <= 0 {
		opts.StabCount = 4
	}
	if opts.StabSpreadPct <= 0 {
		opts.StabSpreadPct = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if (opts.Mix.Write > 0 || opts.Mix.Point > 0) && opts.Rows == 0 {
		return nil, fmt.Errorf("loadgen: write/point mix needs Rows")
	}
	st := &runState{opts: opts, client: opts.Client}
	if st.client == nil {
		tr := &http.Transport{
			MaxIdleConns:        opts.Concurrency * 2,
			MaxIdleConnsPerHost: opts.Concurrency * 2,
		}
		st.client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	for c := range st.lat {
		st.lat[c] = &obs.Histogram{}
	}
	if err := st.prepare(); err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Duration)
	defer cancel()

	// Open-loop arrivals: a pacer goroutine deposits fire tokens at the
	// target rate; lanes block on the queue. Closed loop: lanes fire
	// back to back.
	var arrivals chan struct{}
	if opts.OpenRate > 0 {
		arrivals = make(chan struct{}, 4*opts.Concurrency)
		go func() {
			interval := time.Duration(float64(time.Second) / opts.OpenRate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case arrivals <- struct{}{}:
					default: // queue full: the lanes are saturated
					}
				}
			}
		}()
	}

	stabilized := make(chan struct{})
	if opts.AutoTerm {
		go st.watchStability(ctx, cancel, stabilized)
	}

	cacheBefore := st.scrapeCacheCounters()
	t0 := time.Now()
	var wg sync.WaitGroup
	for lane := 0; lane < opts.Concurrency; lane++ {
		lane := lane
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.runLane(ctx, lane, arrivals)
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	cacheAfter := st.scrapeCacheCounters()

	res := &Result{Wall: wall}
	select {
	case <-stabilized:
		res.Stabilized = true
	default:
	}
	secs := wall.Seconds()
	for c := 0; c < int(numClasses); c++ {
		cs := ClassStats{
			Name:   className[c],
			Ops:    st.ops[c].Load(),
			Shed:   st.shed[c].Load(),
			Errors: st.errs[c].Load(),
			P50:    time.Duration(st.lat[c].Quantile(0.50)),
			P95:    time.Duration(st.lat[c].Quantile(0.95)),
			P99:    time.Duration(st.lat[c].Quantile(0.99)),
		}
		if secs > 0 {
			cs.QPS = float64(cs.Ops) / secs
		}
		if op := classCacheOp[c]; op != "" && cacheBefore != nil && cacheAfter != nil {
			cs.CacheLookups = cacheAfter["server.cache."+op+".lookups"] - cacheBefore["server.cache."+op+".lookups"]
			cs.CacheHits = cacheAfter["server.cache."+op+".hits"] - cacheBefore["server.cache."+op+".hits"]
			if cs.CacheLookups > 0 {
				cs.CacheHitPct = float64(cs.CacheHits) / float64(cs.CacheLookups) * 100
			}
		}
		res.Classes[c] = cs
		res.TotalOps += cs.Ops
		res.TotalShed += cs.Shed
		res.TotalErrs += cs.Errors
	}
	if secs > 0 {
		res.QPS = float64(res.TotalOps) / secs
	}
	return res, nil
}

// prepare opens the session and prepared statements every lane shares.
func (st *runState) prepare() error {
	body, code, err := st.post("/v1/session", `{"tenant":"loadgen"}`)
	if err != nil || code != 200 {
		return fmt.Errorf("loadgen: session: %v (status %d, %s)", err, code, body)
	}
	st.sid = strings.TrimSuffix(strings.TrimPrefix(body, `{"session_id":"`), `"}`)
	if st.sid == "" || strings.Contains(st.sid, `"`) {
		return fmt.Errorf("loadgen: bad session response %q", body)
	}
	st.execURL = st.opts.BaseURL + "/v1/exec"
	// Item-schema column layout: price is column 4, group key column 1.
	specs := [numClasses]string{
		ClassWrite: fmt.Sprintf(`{"session_id":"%s","op":"update","table":"%s","col":4}`, st.sid, st.opts.Table),
		ClassPoint: fmt.Sprintf(`{"session_id":"%s","op":"get","table":"%s"}`, st.sid, st.opts.Table),
		ClassSum:   fmt.Sprintf(`{"session_id":"%s","op":"sum_where","table":"%s","col":4}`, st.sid, st.opts.Table),
		ClassGroup: fmt.Sprintf(`{"session_id":"%s","op":"group_sum_where","table":"%s","col":4,"key_col":1}`, st.sid, st.opts.Table),
	}
	for c, spec := range specs {
		body, code, err := st.post("/v1/prepare", spec)
		if err != nil || code != 200 {
			return fmt.Errorf("loadgen: prepare %s: %v (status %d, %s)", className[c], err, code, body)
		}
		var id int
		if _, err := fmt.Sscanf(body, `{"stmt_id":%d}`, &id); err != nil {
			return fmt.Errorf("loadgen: bad prepare response %q", body)
		}
		st.stmts[c] = id
	}
	return nil
}

// scrapeCacheCounters reads the server's counter registry from
// /metrics. Per-class cache hit rates are the before/after diff of
// server.cache.<op>.{lookups,hits}. A missing or malformed endpoint
// degrades to nil — hit rates then report zero instead of failing the
// run, since an external -addr target need not expose metrics.
func (st *runState) scrapeCacheCounters() map[string]int64 {
	resp, err := st.client.Get(st.opts.BaseURL + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return snap.Counters
}

func (st *runState) post(path, body string) (string, int, error) {
	resp, err := st.client.Post(st.opts.BaseURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.StatusCode, err
	}
	return string(b), resp.StatusCode, nil
}

// runLane is one client lane's request loop.
func (st *runState) runLane(ctx context.Context, lane int, arrivals <-chan struct{}) {
	r := rand.New(rand.NewSource(st.opts.Seed + int64(lane)*7919))
	total := st.opts.Mix.Write + st.opts.Mix.Point + st.opts.Mix.Sum + st.opts.Mix.Group
	// Point reads are zipfian over the row domain: a hot head repeats
	// across lanes, so gather cohorts collapse duplicates and the result
	// cache sees real re-reference.
	var zipf *rand.Zipf
	if st.opts.Mix.Point > 0 {
		zipf = rand.NewZipf(r, 1.2, 8, st.opts.Rows-1)
	}
	var body strings.Builder
	for {
		if arrivals != nil {
			select {
			case <-ctx.Done():
				return
			case <-arrivals:
			}
		} else if ctx.Err() != nil {
			return
		}
		var class Class
		switch d := r.Intn(total); {
		case d < st.opts.Mix.Write:
			class = ClassWrite
		case d < st.opts.Mix.Write+st.opts.Mix.Point:
			class = ClassPoint
		case d < st.opts.Mix.Write+st.opts.Mix.Point+st.opts.Mix.Sum:
			class = ClassSum
		default:
			class = ClassGroup
		}
		body.Reset()
		fmt.Fprintf(&body, `{"session_id":"%s","stmt_id":%d`, st.sid, st.stmts[class])
		switch class {
		case ClassWrite:
			fmt.Fprintf(&body, `,"row":%d,"value":%d`, r.Int63n(int64(st.opts.Rows)), r.Intn(100))
		case ClassPoint:
			fmt.Fprintf(&body, `,"row":%d`, zipf.Uint64())
		default:
			fmt.Fprintf(&body, `,"pred":%s`, predCuts[r.Intn(len(predCuts))])
		}
		body.WriteByte('}')

		t0 := time.Now()
		resp, err := st.client.Post(st.execURL, "application/json", strings.NewReader(body.String()))
		if err != nil {
			if ctx.Err() != nil {
				return // shutdown race, not a server error
			}
			st.errs[class].Add(1)
			continue
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		st.lat[class].ObserveSince(t0)
		switch {
		case resp.StatusCode == 200 && cerr == nil:
			st.ops[class].Add(1)
		case resp.StatusCode == 429 || resp.StatusCode == 503:
			st.shed[class].Add(1)
		default:
			st.errs[class].Add(1)
		}
	}
}

// watchStability samples aggregate throughput per window and cancels
// the run once StabCount consecutive windows agree within
// StabSpreadPct.
func (st *runState) watchStability(ctx context.Context, cancel context.CancelFunc, stabilized chan<- struct{}) {
	tick := time.NewTicker(st.opts.StabWindow)
	defer tick.Stop()
	var last int64
	var windows []float64
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var cur int64
		for c := range st.ops {
			cur += st.ops[c].Load()
		}
		windows = append(windows, float64(cur-last))
		last = cur
		if len(windows) < st.opts.StabCount {
			continue
		}
		recent := windows[len(windows)-st.opts.StabCount:]
		lo, hi, sum := recent[0], recent[0], 0.0
		for _, w := range recent {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
			sum += w
		}
		mean := sum / float64(len(recent))
		if mean > 0 && (hi-lo)/mean*100 <= st.opts.StabSpreadPct {
			close(stabilized)
			cancel()
			return
		}
	}
}

// String renders the classic harness report table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall %.2fs  qps %.0f  ops %d  shed %d  errors %d", r.Wall.Seconds(), r.QPS, r.TotalOps, r.TotalShed, r.TotalErrs)
	if r.Stabilized {
		b.WriteString("  (stabilized)")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %8s %10s %10s %10s %7s\n", "class", "ops", "qps", "shed", "errors", "p50", "p95", "p99", "cache%")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-8s %10d %10.0f %8d %8d %10s %10s %10s %7.1f\n",
			c.Name, c.Ops, c.QPS, c.Shed, c.Errors, c.P50, c.P95, c.P99, c.CacheHitPct)
	}
	return b.String()
}

// CSV renders the per-class panel (microsecond latencies), one header
// plus one row per class and a total row — the serving_panel.csv
// artifact CI uploads.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("class,ops,qps,shed,errors,p50_us,p95_us,p99_us,cache_hit_pct\n")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%s,%d,%.1f,%d,%d,%.1f,%.1f,%.1f,%.1f\n",
			c.Name, c.Ops, c.QPS, c.Shed, c.Errors,
			float64(c.P50.Nanoseconds())/1e3, float64(c.P95.Nanoseconds())/1e3, float64(c.P99.Nanoseconds())/1e3,
			c.CacheHitPct)
	}
	fmt.Fprintf(&b, "total,%d,%.1f,%d,%d,,,,\n", r.TotalOps, r.QPS, r.TotalShed, r.TotalErrs)
	return b.String()
}
