package server

import (
	"fmt"
	"sync"
	"time"

	"hybridstore"
	"hybridstore/internal/obs"
)

// The batching scheduler collapses concurrent compatible requests into
// one shared storage pass — the serving-layer half of shared-scan
// batching (Crescando/SharedDB style), paired with the storage half in
// core.SumFloat64WhereMulti.
//
// Compatibility classes:
//
//   - sum_where / count_where over the same (table, column): all
//     predicates that arrive within one collection window ride a single
//     SumFloat64WhereMulti call — the column is streamed once for the
//     whole cohort, and textually identical predicates collapse to one
//     slot of the batch.
//   - group_sum_where with identical (table, keyCol, valCol, predicate):
//     one fused grouped pass, its result slice fanned to every waiter.
//
// Linearizability: the first request of a class becomes the leader,
// sleeps one collection window, then REMOVES the group from the intake
// map before executing — every request that joined is answered from one
// MVCC snapshot taken after all of them arrived, which is a valid
// linearization point; requests arriving after the removal start a new
// group. A failed pass propagates its error to every waiter.
var (
	mBatchFlushes   = obs.NewCounter("server.batch.flushes")
	mBatchJoined    = obs.NewCounter("server.batch.joined")
	mBatchCollapsed = obs.NewCounter("server.batch.collapsed")
	mBatchPreds     = obs.NewCounter("server.batch.preds")
	hBatchSize      = obs.NewHistogram("server.batch.size")

	mGatherFlushes   = obs.NewCounter("server.gather.flushes")
	mGatherJoined    = obs.NewCounter("server.gather.joined")
	mGatherCollapsed = obs.NewCounter("server.gather.collapsed")
	mGatherRows      = obs.NewCounter("server.gather.rows")
	hGatherSize      = obs.NewHistogram("server.gather.size")
)

// sumKey identifies a sum/count compatibility class.
type sumKey struct {
	table string
	col   int
}

// sumBatch is one in-flight sum/count cohort.
type sumBatch struct {
	preds []hybridstore.FloatPred
	slot  map[hybridstore.FloatPred]int // identical predicates share a slot
	done  chan struct{}
	sums  []float64
	cnts  []int64
	err   error
}

// getKey identifies a point-read fan-in class: every concurrent point
// read on one table rides a single shared gather pass.
type getKey struct {
	table string
}

// getBatch is one in-flight gather cohort.
type getBatch struct {
	rows []uint64
	slot map[uint64]int // duplicate row IDs share a slot
	done chan struct{}
	recs []hybridstore.Record
	err  error
}

// groupKey identifies a grouped-aggregation compatibility class: the
// scheduler only merges textually identical grouped queries.
type groupKey struct {
	table          string
	keyCol, valCol int
	pred           hybridstore.FloatPred
}

// groupBatch is one in-flight grouped cohort.
type groupBatch struct {
	done   chan struct{}
	joined int
	res    []hybridstore.GroupResult
	err    error
}

// batcher is the collection-window scheduler. A zero window degrades
// every request to its solo execution path.
type batcher struct {
	window time.Duration
	mu     sync.Mutex
	sums   map[sumKey]*sumBatch
	groups map[groupKey]*groupBatch
	gets   map[getKey]*getBatch
	// execSum, execGroup and execGet are the storage passes a flush
	// leader runs. They default to the table methods; tests substitute
	// failing or panicking ones to drive the leader-failure paths.
	execSum   func(tbl *hybridstore.Table, col int, preds []hybridstore.FloatPred) ([]float64, []int64, error)
	execGroup func(tbl *hybridstore.Table, keyCol, valCol int, p hybridstore.FloatPred) ([]hybridstore.GroupResult, error)
	execGet   func(tbl *hybridstore.Table, rows []uint64) ([]hybridstore.Record, error)
}

func newBatcher(window time.Duration) *batcher {
	return &batcher{
		window: window,
		sums:   make(map[sumKey]*sumBatch),
		groups: make(map[groupKey]*groupBatch),
		gets:   make(map[getKey]*getBatch),
		execSum: func(tbl *hybridstore.Table, col int, preds []hybridstore.FloatPred) ([]float64, []int64, error) {
			return tbl.SumFloat64WhereMulti(col, preds)
		},
		execGroup: func(tbl *hybridstore.Table, keyCol, valCol int, p hybridstore.FloatPred) ([]hybridstore.GroupResult, error) {
			return tbl.GroupBySumWhere(keyCol, valCol, p)
		},
		execGet: func(tbl *hybridstore.Table, rows []uint64) ([]hybridstore.Record, error) {
			return tbl.GetMulti(rows)
		},
	}
}

// sumWhere answers one SELECT SUM(col), COUNT(*) WHERE p, riding a
// shared pass when compatible requests are in flight.
func (b *batcher) sumWhere(tbl *hybridstore.Table, col int, p hybridstore.FloatPred) (float64, int64, error) {
	if b == nil || b.window <= 0 {
		return tbl.SumFloat64Where(col, p)
	}
	k := sumKey{table: tbl.Name(), col: col}
	b.mu.Lock()
	if g := b.sums[k]; g != nil {
		// Join the open cohort; identical predicates share one slot of
		// the multi-scan.
		idx, dup := g.slot[p]
		if dup {
			mBatchCollapsed.Inc()
		} else {
			idx = len(g.preds)
			g.preds = append(g.preds, p)
			g.slot[p] = idx
		}
		b.mu.Unlock()
		mBatchJoined.Inc()
		<-g.done
		if g.err != nil {
			return 0, 0, g.err
		}
		return g.sums[idx], g.cnts[idx], nil
	}
	g := &sumBatch{
		preds: []hybridstore.FloatPred{p},
		slot:  map[hybridstore.FloatPred]int{p: 0},
		done:  make(chan struct{}),
	}
	b.sums[k] = g
	b.mu.Unlock()

	time.Sleep(b.window)

	b.mu.Lock()
	delete(b.sums, k) // close intake BEFORE executing: see linearizability note
	b.mu.Unlock()
	mBatchFlushes.Inc()
	mBatchPreds.Add(int64(len(g.preds)))
	hBatchSize.Observe(int64(len(g.preds)))
	// The cohort must be released however the pass ends: a leader that
	// panics mid-pass still owes every waiter an answer, so the panic
	// becomes the group error instead of a permanent hang, and a pass
	// that under-delivers results is an error, never a zero answer.
	func() {
		defer func() {
			if r := recover(); r != nil {
				g.err = fmt.Errorf("server: batch leader panicked: %v", r)
			}
			if g.err == nil && (len(g.sums) != len(g.preds) || len(g.cnts) != len(g.preds)) {
				g.err = fmt.Errorf("server: batch pass returned %d sums, %d counts for %d predicates",
					len(g.sums), len(g.cnts), len(g.preds))
			}
			close(g.done)
		}()
		g.sums, g.cnts, g.err = b.execSum(tbl, col, g.preds)
	}()
	if g.err != nil {
		return 0, 0, g.err
	}
	return g.sums[0], g.cnts[0], nil
}

// groupSumWhere answers one fused grouped aggregation, sharing the pass
// with every identical in-flight query. The returned slice is shared
// read-only by all waiters — serialization must not mutate it.
func (b *batcher) groupSumWhere(tbl *hybridstore.Table, keyCol, valCol int, p hybridstore.FloatPred) ([]hybridstore.GroupResult, error) {
	if b == nil || b.window <= 0 {
		return tbl.GroupBySumWhere(keyCol, valCol, p)
	}
	k := groupKey{table: tbl.Name(), keyCol: keyCol, valCol: valCol, pred: p}
	b.mu.Lock()
	if g := b.groups[k]; g != nil {
		g.joined++
		b.mu.Unlock()
		mBatchJoined.Inc()
		mBatchCollapsed.Inc()
		<-g.done
		return g.res, g.err
	}
	g := &groupBatch{done: make(chan struct{})}
	b.groups[k] = g
	b.mu.Unlock()

	time.Sleep(b.window)

	b.mu.Lock()
	delete(b.groups, k)
	b.mu.Unlock()
	mBatchFlushes.Inc()
	hBatchSize.Observe(int64(g.joined + 1))
	func() {
		defer func() {
			if r := recover(); r != nil {
				g.err = fmt.Errorf("server: batch leader panicked: %v", r)
			}
			close(g.done)
		}()
		g.res, g.err = b.execGroup(tbl, keyCol, valCol, p)
	}()
	return g.res, g.err
}

// get answers one point read, riding a shared gather pass when
// concurrent point reads on the same table are in flight: the leader
// collects row IDs for one window, runs a single GetMulti (one lock
// acquisition, device gathers charged per chunk instead of per row) and
// fans the records out bit-identically. Duplicate row IDs collapse to
// one slot of the gather.
//
// A row at or beyond the current row count takes the solo path
// immediately: it would error the whole cohort, and since tables only
// grow, a row valid at join time stays valid at flush time.
func (b *batcher) get(tbl *hybridstore.Table, row uint64) (hybridstore.Record, error) {
	if b == nil || b.window <= 0 || row >= tbl.Rows() {
		return tbl.Get(row)
	}
	k := getKey{table: tbl.Name()}
	b.mu.Lock()
	if g := b.gets[k]; g != nil {
		idx, dup := g.slot[row]
		if dup {
			mGatherCollapsed.Inc()
		} else {
			idx = len(g.rows)
			g.rows = append(g.rows, row)
			g.slot[row] = idx
		}
		b.mu.Unlock()
		mGatherJoined.Inc()
		<-g.done
		if g.err != nil {
			return nil, g.err
		}
		return g.recs[idx], nil
	}
	g := &getBatch{
		rows: []uint64{row},
		slot: map[uint64]int{row: 0},
		done: make(chan struct{}),
	}
	b.gets[k] = g
	b.mu.Unlock()

	time.Sleep(b.window)

	b.mu.Lock()
	delete(b.gets, k) // close intake BEFORE executing: see linearizability note
	b.mu.Unlock()
	mGatherFlushes.Inc()
	mGatherRows.Add(int64(len(g.rows)))
	hGatherSize.Observe(int64(len(g.rows)))
	func() {
		defer func() {
			if r := recover(); r != nil {
				g.err = fmt.Errorf("server: gather leader panicked: %v", r)
			}
			if g.err == nil && len(g.recs) != len(g.rows) {
				g.err = fmt.Errorf("server: gather pass returned %d records for %d rows",
					len(g.recs), len(g.rows))
			}
			close(g.done)
		}()
		g.recs, g.err = b.execGet(tbl, g.rows)
	}()
	if g.err != nil {
		return nil, g.err
	}
	return g.recs[0], nil
}
