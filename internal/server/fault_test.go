package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridstore"
	"hybridstore/internal/obs"
)

// TestBatchLeaderError: when the shared pass fails, the leader AND
// every waiter must see the error — never a zero answer, never a hang.
func TestBatchLeaderError(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	boom := errors.New("injected storage failure")
	s.bat.execSum = func(_ *hybridstore.Table, _ int, preds []hybridstore.FloatPred) ([]float64, []int64, error) {
		return nil, nil, boom
	}
	sid := s.CreateSession("")
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)

	const waiters = 6
	codes := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":%d}}`, sid, sum, 10+i)
			resp, code := exec1(s, body)
			if code == 500 && !strings.Contains(resp, "injected storage failure") {
				t.Errorf("request %d: 500 without the leader's error: %s", i, resp)
			}
			codes <- code
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch cohort hung on a failed leader")
	}
	close(codes)
	for code := range codes {
		if code != 500 {
			t.Fatalf("cohort member finished %d, want 500", code)
		}
	}
}

// TestBatchLeaderPanic: a panicking shared pass must still release the
// cohort, with the panic surfaced as the group error.
func TestBatchLeaderPanic(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	s.bat.execSum = func(_ *hybridstore.Table, _ int, _ []hybridstore.FloatPred) ([]float64, []int64, error) {
		panic("injected leader panic")
	}
	sid := s.CreateSession("")
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)

	const waiters = 4
	var wg sync.WaitGroup
	fails := make(chan string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":%d}}`, sid, sum, 10+i)
			resp, code := exec1(s, body)
			if code != 500 || !strings.Contains(resp, "panicked") {
				fails <- fmt.Sprintf("request %d: %d %s", i, code, resp)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch cohort hung on a panicked leader")
	}
	close(fails)
	for f := range fails {
		t.Error(f)
	}
}

// TestBatchLeaderShortResults: a pass that returns fewer results than
// predicates is an error for everyone, not an out-of-range panic or a
// silently wrong zero.
func TestBatchLeaderShortResults(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	s.bat.execSum = func(_ *hybridstore.Table, _ int, _ []hybridstore.FloatPred) ([]float64, []int64, error) {
		return []float64{1}, []int64{1}, nil // always short for a cohort >= 2
	}
	sid := s.CreateSession("")
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)

	const waiters = 4
	var wg sync.WaitGroup
	codes := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":%d}}`, sid, sum, 10+i)
			_, code := exec1(s, body)
			codes <- code
		}(i)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != 500 {
			t.Fatalf("cohort member finished %d, want 500", code)
		}
	}
}

// TestBatchGroupLeaderPanic drives the grouped cohort's release path.
func TestBatchGroupLeaderPanic(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 20 * time.Millisecond})
	s.bat.execGroup = func(_ *hybridstore.Table, _, _ int, _ hybridstore.FloatPred) ([]hybridstore.GroupResult, error) {
		panic("injected group leader panic")
	}
	sid := s.CreateSession("")
	grp := prep(t, s, sid, "group_sum_where", hybridstore.ItemPriceColumn, 0)
	body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":30}}`, sid, grp)

	const waiters = 4
	var wg sync.WaitGroup
	fails := make(chan string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, code := exec1(s, body)
			if code != 500 || !strings.Contains(resp, "panicked") {
				fails <- fmt.Sprintf("request %d: %d %s", i, code, resp)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("grouped cohort hung on a panicked leader")
	}
	close(fails)
	for f := range fails {
		t.Error(f)
	}
}

// TestAdmissionInFlightStorm fires a storm of requests where many fail
// (unknown rows, failing batch leaders, throttles and overloads mixed
// in) and asserts the in-flight gauge returns exactly to its starting
// level: no error path may leak an admission token.
func TestAdmissionInFlightStorm(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: time.Millisecond,
			Admission: Admission{Rate: 1e6, MaxInFlight: 8}})
	boom := errors.New("injected storm failure")
	s.bat.execSum = func(_ *hybridstore.Table, _ int, _ []hybridstore.FloatPred) ([]float64, []int64, error) {
		return nil, nil, boom
	}
	sid := s.CreateSession("storm")
	get := prep(t, s, sid, "get", 0, 0)
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)

	before := obs.TakeSnapshot().Gauge("server.admission.inflight")
	const workers, perWorker = 16, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var body string
				switch i % 3 {
				case 0: // bad row → 500
					body = fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":999999}`, sid, get)
				case 1: // failing batch leader → 500
					body = fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":%d}}`, sid, sum, i)
				default: // fine
					body = fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":1}`, sid, get)
				}
				exec1(s, body)
			}
		}(w)
	}
	wg.Wait()
	after := obs.TakeSnapshot().Gauge("server.admission.inflight")
	if after != before {
		t.Fatalf("in-flight gauge leaked: %d before storm, %d after", before, after)
	}
}
