package server

import (
	"fmt"
	"testing"

	"hybridstore"
	"hybridstore/internal/exec/pool"
)

// benchServer builds the warm serving fixture: device-cached item
// table, batching disabled so the benchmark measures the pure
// per-request path.
func benchServer(tb testing.TB) (*Server, string) {
	db := hybridstore.Open(hybridstore.Options{ChunkRows: 256, DeviceCache: true})
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(tbl.Free)
	for i := uint64(0); i < 2048; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			tb.Fatal(err)
		}
	}
	s := New(Config{DB: db})
	sid := s.CreateSession("")
	if _, err := s.Prepare(sid, "sum_where", "item", hybridstore.ItemPriceColumn, 0); err != nil {
		tb.Fatal(err)
	}
	body := fmt.Sprintf(`{"session_id":"%s","stmt_id":0,"pred":{"kind":"between","lo":10,"hi":60}}`, sid)
	// Warm: first pass populates the device cache and the pool buffers.
	out, code := s.Exec([]byte(body), pool.GetBytes())
	if code != 200 {
		tb.Fatalf("warmup: %d %s", code, out)
	}
	pool.PutBytes(out)
	return s, body
}

// serveSumWhereAllocBudget is the response-path allocation ceiling for
// one warm sum_where request end to end — request scan, admission,
// dispatch, the fused scan itself, and response serialization into a
// recycled buffer. Measured ~63 (dominated by the MVCC snapshot and
// the per-launch SM-worker goroutines of the simulated device; wire
// handling itself runs on recycled pool buffers); the gate holds slack
// for scheduler variance. Raising it needs a deliberate decision, not
// an accidental regression.
const serveSumWhereAllocBudget = 80

func TestServeSumWhereAllocBudget(t *testing.T) {
	s, body := benchServer(t)
	raw := []byte(body)
	got := testing.AllocsPerRun(200, func() {
		out, code := s.Exec(raw, pool.GetBytes())
		if code != 200 {
			t.Fatalf("exec: %d %s", code, out)
		}
		pool.PutBytes(out)
	})
	if got > serveSumWhereAllocBudget {
		t.Fatalf("warm sum_where costs %.0f allocs/op, budget %d", got, serveSumWhereAllocBudget)
	}
}

// BenchmarkServeSumWhere measures the warm per-request serving path.
func BenchmarkServeSumWhere(b *testing.B) {
	s, body := benchServer(b)
	raw := []byte(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, code := s.Exec(raw, pool.GetBytes())
		if code != 200 {
			b.Fatalf("exec: %d %s", code, out)
		}
		pool.PutBytes(out)
	}
}
