package server

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridstore"
	"hybridstore/internal/obs"
)

// newItemServer opens a DB with a loaded item table and a server over
// it. Returns the server and the table for ground-truth queries.
func newItemServer(t *testing.T, opts hybridstore.Options, cfg Config) (*Server, *hybridstore.Table) {
	t.Helper()
	db := hybridstore.Open(opts)
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Free)
	const rows = 800
	for i := uint64(0); i < rows; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Leave unmerged deltas so the serving path crosses the MVCC patch.
	for i := uint64(0); i < rows; i += 41 {
		if err := tbl.Update(i, hybridstore.ItemPriceColumn, hybridstore.FloatValue(float64(i%53))); err != nil {
			t.Fatal(err)
		}
	}
	cfg.DB = db
	return New(cfg), tbl
}

// prep prepares one statement or fails the test.
func prep(t *testing.T, s *Server, sid, op string, col, keyCol int) int {
	t.Helper()
	id, err := s.Prepare(sid, op, "item", col, keyCol)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", op, err)
	}
	return id
}

// exec1 runs one wire-format request and returns body and status.
func exec1(s *Server, body string) (string, int) {
	out, code := s.Exec([]byte(body), nil)
	return string(out), code
}

func TestServeLifecycle(t *testing.T) {
	s, tbl := newItemServer(t, hybridstore.Options{ChunkRows: 128}, Config{})
	sid := s.CreateSession("")

	get := prep(t, s, sid, "get", 0, 0)
	upd := prep(t, s, sid, "update", hybridstore.ItemPriceColumn, 0)
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)
	cnt := prep(t, s, sid, "count_where", hybridstore.ItemPriceColumn, 0)
	grp := prep(t, s, sid, "group_sum_where", hybridstore.ItemPriceColumn, 1)
	ins := prep(t, s, sid, "insert", 0, 0)
	pks := prep(t, s, sid, "get_pk", 0, 0)

	// Point read, then point write, then read back through the server.
	resp, code := exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":7}`, sid, get))
	if code != 200 || !strings.HasPrefix(resp, `{"record":[7,`) {
		t.Fatalf("get: %d %s", code, resp)
	}
	resp, code = exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":7,"value":12.25}`, sid, upd))
	if code != 200 || resp != `{"ok":true}` {
		t.Fatalf("update: %d %s", code, resp)
	}
	rec, err := tbl.Get(7)
	if err != nil || rec[hybridstore.ItemPriceColumn].F != 12.25 {
		t.Fatalf("update not visible: %v %v", rec, err)
	}

	// Predicate aggregate matches the facade bit for bit, including the
	// decimal round trip.
	wantSum, wantN, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, hybridstore.LtFloat(30))
	if err != nil {
		t.Fatal(err)
	}
	resp, code = exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":30}}`, sid, sum))
	exp := fmt.Sprintf(`{"sum":%s,"count":%d}`, string(appendF64(nil, wantSum)), wantN)
	if code != 200 || resp != exp {
		t.Fatalf("sum_where: %d %s, want %s", code, resp, exp)
	}
	resp, code = exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":30}}`, sid, cnt))
	if code != 200 || resp != fmt.Sprintf(`{"count":%d}`, wantN) {
		t.Fatalf("count_where: %d %s", code, resp)
	}

	// Grouped aggregate equals the facade's answer in key order.
	groups, err := tbl.GroupBySumWhere(1, hybridstore.ItemPriceColumn, hybridstore.GtFloat(1))
	if err != nil {
		t.Fatal(err)
	}
	var b []byte
	b = append(b, `{"groups":[`...)
	for i, g := range groups {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendI64(append(b, '['), g.Key)
		b = appendF64(append(b, ','), g.Sum)
		b = appendI64(append(b, ','), g.Count)
		b = append(b, ']')
	}
	b = append(b, `]}`...)
	resp, code = exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"gt","lo":1}}`, sid, grp))
	if code != 200 || resp != string(b) {
		t.Fatalf("group_sum_where: %d\n got %s\nwant %s", code, resp, b)
	}

	// Insert through the wire, then read it back by primary key.
	rows := tbl.Rows()
	resp, code = exec1(s, fmt.Sprintf(
		`{"session_id":"%s","stmt_id":%d,"record":[9001,17,"itmx","ab",3.5]}`, sid, ins))
	if code != 200 || resp != fmt.Sprintf(`{"row":%d}`, rows) {
		t.Fatalf("insert: %d %s", code, resp)
	}
	resp, code = exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pk":9001}`, sid, pks))
	if code != 200 || !strings.HasPrefix(resp, `{"record":[9001,17,"itmx","ab",3.5]`) {
		t.Fatalf("get_pk: %d %s", code, resp)
	}
}

func TestServeErrors(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128}, Config{})
	sid := s.CreateSession("")
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)

	for _, tc := range []struct {
		name, body string
		code       int
	}{
		{"bad json", `{"session_id"`, 400},
		{"unknown session", `{"session_id":"nope","stmt_id":0}`, 404},
		{"unknown stmt", fmt.Sprintf(`{"session_id":"%s","stmt_id":99}`, sid), 404},
		{"missing pred", fmt.Sprintf(`{"session_id":"%s","stmt_id":%d}`, sid, sum), 400},
		{"bad pred kind", fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"ge","lo":1}}`, sid, sum), 400},
	} {
		resp, code := exec1(s, tc.body)
		if code != tc.code || !strings.Contains(resp, `"error"`) {
			t.Errorf("%s: got %d %s, want status %d with error payload", tc.name, code, resp, tc.code)
		}
	}

	// Prepare-time validation.
	if _, err := s.Prepare(sid, "sum_where", "item", 0, 0); err == nil {
		t.Error("sum_where over an int column prepared without error")
	}
	if _, err := s.Prepare(sid, "get", "void", 0, 0); err == nil {
		t.Error("prepare against unknown table succeeded")
	}
	if _, err := s.Prepare("zz", "get", "item", 0, 0); err == nil {
		t.Error("prepare against unknown session succeeded")
	}
}

// TestBatchedBitIdentity is the serving-layer property test: under a
// live batching window, 32 concurrent clients firing compatible
// analytics must each receive exactly the bytes the solo (unbatched)
// execution of their request produces — shared passes are a pure
// execution-cost optimization, invisible in results.
func TestBatchedBitIdentity(t *testing.T) {
	s, tbl := newItemServer(t,
		hybridstore.Options{ChunkRows: 128, DeviceCache: true},
		Config{BatchWindow: 300 * time.Microsecond})
	sid := s.CreateSession("")
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)
	grp := prep(t, s, sid, "group_sum_where", hybridstore.ItemPriceColumn, 1)

	preds := []struct {
		wire string
		p    hybridstore.FloatPred
	}{
		{`{"kind":"lt","hi":30}`, hybridstore.LtFloat(30)},
		{`{"kind":"gt","lo":50}`, hybridstore.GtFloat(50)},
		{`{"kind":"between","lo":10,"hi":60}`, hybridstore.BetweenFloat(10, 60)},
		{`{"kind":"eq","lo":42}`, hybridstore.EqFloat(42)},
	}
	// Ground truth from the facade, serialized exactly as the server
	// serializes. Writes are quiesced for the whole read phase.
	wantSum := make([]string, len(preds))
	wantGrp := make([]string, len(preds))
	for i, pr := range preds {
		ws, wn, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, pr.p)
		if err != nil {
			t.Fatal(err)
		}
		wantSum[i] = fmt.Sprintf(`{"sum":%s,"count":%d}`, string(appendF64(nil, ws)), wn)
		groups, err := tbl.GroupBySumWhere(1, hybridstore.ItemPriceColumn, pr.p)
		if err != nil {
			t.Fatal(err)
		}
		var b []byte
		b = append(b, `{"groups":[`...)
		for j, g := range groups {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendI64(append(b, '['), g.Key)
			b = appendF64(append(b, ','), g.Sum)
			b = appendI64(append(b, ','), g.Count)
			b = append(b, ']')
		}
		wantGrp[i] = string(append(b, `]}`...))
	}

	before := obs.TakeSnapshot()
	const clients = 32
	const reqsEach = 20
	var wg sync.WaitGroup
	errs := make(chan string, clients*reqsEach)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < reqsEach; i++ {
				k := r.Intn(len(preds))
				if r.Intn(4) == 0 {
					resp, code := exec1(s, fmt.Sprintf(
						`{"session_id":"%s","stmt_id":%d,"pred":%s}`, sid, grp, preds[k].wire))
					if code != 200 || resp != wantGrp[k] {
						errs <- fmt.Sprintf("group pred %d: %d %s\nwant %s", k, code, resp, wantGrp[k])
						return
					}
				} else {
					resp, code := exec1(s, fmt.Sprintf(
						`{"session_id":"%s","stmt_id":%d,"pred":%s}`, sid, sum, preds[k].wire))
					if code != 200 || resp != wantSum[k] {
						errs <- fmt.Sprintf("sum pred %d: %d %s\nwant %s", k, code, resp, wantSum[k])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// The cohort structure must be visible: passes were shared.
	after := obs.TakeSnapshot()
	flushes := after.Counter("server.batch.flushes") - before.Counter("server.batch.flushes")
	joined := after.Counter("server.batch.joined") - before.Counter("server.batch.joined")
	if flushes == 0 {
		t.Error("no batch flushes under 32 concurrent clients")
	}
	if joined == 0 {
		t.Error("no requests joined a shared pass under 32 concurrent clients")
	}
	total := int64(clients * reqsEach)
	if flushes >= total {
		t.Errorf("flushes %d not smaller than requests %d: nothing was shared", flushes, total)
	}
}

func TestAdmissionThrottle(t *testing.T) {
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{Admission: Admission{Rate: 0.001, Burst: 2}})
	sid := s.CreateSession("tenant-a")
	get := prep(t, s, sid, "get", 0, 0)
	body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":1}`, sid, get)

	if _, code := exec1(s, body); code != 200 {
		t.Fatalf("first request: %d", code)
	}
	if _, code := exec1(s, body); code != 200 {
		t.Fatalf("second request (burst): %d", code)
	}
	resp, code := exec1(s, body)
	if code != 429 || !strings.Contains(resp, "throttled") {
		t.Fatalf("third request: %d %s, want 429", code, resp)
	}

	// Tenants are isolated: a fresh tenant still has its burst.
	sid2 := s.CreateSession("tenant-b")
	get2 := prep(t, s, sid2, "get", 0, 0)
	if _, code := exec1(s, fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"row":1}`, sid2, get2)); code != 200 {
		t.Fatalf("tenant-b first request: %d", code)
	}
}

func TestAdmissionInFlightCeiling(t *testing.T) {
	// A long batch window holds the first analytic in flight; the
	// ceiling of 1 must bounce the second with 503.
	s, _ := newItemServer(t, hybridstore.Options{ChunkRows: 128},
		Config{BatchWindow: 80 * time.Millisecond, Admission: Admission{MaxInFlight: 1}})
	sid := s.CreateSession("")
	sum := prep(t, s, sid, "sum_where", hybridstore.ItemPriceColumn, 0)
	body := fmt.Sprintf(`{"session_id":"%s","stmt_id":%d,"pred":{"kind":"lt","hi":30}}`, sid, sum)

	started := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		close(started)
		_, code := exec1(s, body)
		done <- code
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // let the leader enter its window
	resp, code := exec1(s, body)
	if code != 503 || !strings.Contains(resp, "overload") {
		t.Fatalf("second in-flight request: %d %s, want 503", code, resp)
	}
	if code := <-done; code != 200 {
		t.Fatalf("held request finished %d, want 200", code)
	}
	// Capacity is released: the next request is admitted.
	if _, code := exec1(s, body); code != 200 {
		t.Fatalf("post-release request: %d", code)
	}
}

// TestPredRoundTrip pins the wire format's bit-exactness: a predicate
// rendered by appendPredJSON parses back to identical bounds, for
// random (including non-representable-in-short-decimal) float64s.
func TestPredRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		var p hybridstore.FloatPred
		lo := math.Float64frombits(r.Uint64())
		hi := math.Float64frombits(r.Uint64())
		if math.IsNaN(lo) || math.IsNaN(hi) {
			continue
		}
		switch i % 4 {
		case 0:
			p = hybridstore.EqFloat(lo)
		case 1:
			p = hybridstore.LtFloat(hi)
		case 2:
			p = hybridstore.GtFloat(lo)
		default:
			p = hybridstore.BetweenFloat(lo, hi)
		}
		got, err := parsePred(appendPredJSON(nil, p))
		if err != nil {
			t.Fatalf("round trip %v: %v", p, err)
		}
		if math.Float64bits(got.Lo) != math.Float64bits(p.Lo) ||
			math.Float64bits(got.Hi) != math.Float64bits(p.Hi) || got.Op != p.Op {
			t.Fatalf("round trip changed pred: %#v -> %#v", p, got)
		}
	}
}
