package wal

import "hybridstore/internal/schema"

// TableLog binds one table name to a shared log — the hook non-MVCC
// engines (HyPer's in-place updates, L-Store's tail appends) thread
// their write paths through. Each call appends one logical record and
// blocks until it is durable under the log's sync policy; concurrent
// writers across all tables of the log share group-commit flushes.
type TableLog struct {
	// L is the shared log.
	L *Log
	// Table is the owning table name.
	Table string
}

// LogCreate records the table's creation (name, engine, schema).
func (t *TableLog) LogCreate(engine string, s *schema.Schema) error {
	lsn, err := t.L.Append(&Record{Kind: KindCreate, Table: t.Table, Engine: engine, Schema: s})
	if err != nil {
		return err
	}
	return t.L.Sync(lsn)
}

// LogInsert records one base insert at a known row position.
func (t *TableLog) LogInsert(row uint64, rec schema.Record) error {
	lsn, err := t.L.Append(&Record{Kind: KindInsert, Table: t.Table, Row: row, Rec: rec})
	if err != nil {
		return err
	}
	return t.L.Sync(lsn)
}

// LogUpdate records one single-cell update.
func (t *TableLog) LogUpdate(row uint64, col int, v schema.Value) error {
	lsn, err := t.L.Append(&Record{Kind: KindUpdate, Table: t.Table, Row: row, Col: col, Val: v})
	if err != nil {
		return err
	}
	return t.L.Sync(lsn)
}
