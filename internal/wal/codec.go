package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"hybridstore/internal/schema"
)

// Encoder builds the little-endian binary encoding shared by log
// payloads and checkpoint snapshot files. The zero value is ready to
// use; Bytes returns the accumulated buffer.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset empties the encoder, keeping the backing array.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// F64 appends an IEEE-754 double.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Value appends a self-describing schema.Value (kind tag + payload).
func (e *Encoder) Value(v schema.Value) {
	e.U8(uint8(v.Kind))
	switch v.Kind {
	case schema.Int32, schema.Int64:
		e.U64(uint64(v.I))
	case schema.Float64:
		e.F64(v.F)
	case schema.Char:
		e.Str(v.S)
	}
}

// Record appends a length-prefixed sequence of self-describing values.
func (e *Encoder) Record(rec schema.Record) {
	e.U32(uint32(len(rec)))
	for _, v := range rec {
		e.Value(v)
	}
}

// Schema appends a full schema description (arity, then per attribute
// its kind, byte width and name).
func (e *Encoder) Schema(s *schema.Schema) {
	e.U32(uint32(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		e.U8(uint8(a.Kind))
		e.U32(uint32(a.Size))
		e.Str(a.Name)
	}
}

// Decoder reads the Encoder's format. Errors are sticky: the first
// malformed read poisons the decoder and every later read returns zero
// values, so call sites check Err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for reading.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short buffer reading %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads an IEEE-754 double.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice (copied out of the buffer).
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	b := d.take(n, "blob")
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Value reads a self-describing schema.Value.
func (d *Decoder) Value() schema.Value {
	k := schema.Kind(d.U8())
	switch k {
	case schema.Int32, schema.Int64:
		return schema.Value{Kind: k, I: int64(d.U64())}
	case schema.Float64:
		return schema.Value{Kind: k, F: d.F64()}
	case schema.Char:
		return schema.Value{Kind: k, S: d.Str()}
	default:
		if d.err == nil && k != 0 { // kind 0 from a poisoned read stays silent
			d.err = fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, k)
		}
		return schema.Value{}
	}
}

// Record reads a length-prefixed value sequence.
func (d *Decoder) Record() schema.Record {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining() {
		d.fail("record")
		return nil
	}
	rec := make(schema.Record, 0, n)
	for i := 0; i < n; i++ {
		rec = append(rec, d.Value())
	}
	return rec
}

// Schema reads a schema description and rebuilds the schema.
func (d *Decoder) Schema() *schema.Schema {
	n := int(d.U32())
	if d.err != nil || n > d.Remaining() {
		d.fail("schema")
		return nil
	}
	attrs := make([]schema.Attribute, 0, n)
	for i := 0; i < n; i++ {
		a := schema.Attribute{Kind: schema.Kind(d.U8())}
		a.Size = int(d.U32())
		a.Name = d.Str()
		attrs = append(attrs, a)
	}
	if d.err != nil {
		return nil
	}
	s, err := schema.New(attrs...)
	if err != nil {
		d.err = fmt.Errorf("%w: rebuilding schema: %v", ErrCorrupt, err)
		return nil
	}
	return s
}
