package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hybridstore/internal/obs"
)

// Process-wide WAL counters.
var (
	mAppends   = obs.NewCounter("wal.appends")
	mFlushes   = obs.NewCounter("wal.flushes")
	mFsyncs    = obs.NewCounter("wal.fsyncs")
	mBytes     = obs.NewCounter("wal.bytes")
	mTornTail  = obs.NewCounter("wal.torn_tail_truncations")
	mCompacts  = obs.NewCounter("wal.compactions")
	mGroupSize = obs.NewHistogram("wal.group_size")
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

// Fsync policies, cheapest first.
const (
	// SyncGrouped batches concurrent committers behind one flush leader:
	// the leader waits GroupWindow for cohort arrivals, writes the whole
	// group, and issues a single fsync for all of it.
	SyncGrouped SyncPolicy = iota
	// SyncAlways fsyncs on every Sync call with no grouping window.
	SyncAlways
	// SyncNone writes to the OS on every Sync but never fsyncs: cheap,
	// survives process kill but not machine crash.
	SyncNone
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncGrouped:
		return "grouped"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configure a Log.
type Options struct {
	// Sync is the fsync policy (default SyncGrouped).
	Sync SyncPolicy
	// GroupWindow is how long a flush leader waits for cohort commits
	// under SyncGrouped. Zero still groups whatever arrived while the
	// previous flush was in flight, without an explicit wait.
	GroupWindow time.Duration
}

// frameHeaderSize is the per-record overhead: u32 length + u32 CRC.
const frameHeaderSize = 8

// Log is an append-only record log with CRC framing and group commit.
// Safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	path     string
	opts     Options
	buf      []byte // encoded frames appended but not yet written
	nextLSN  uint64 // LSN the next Append receives
	written  uint64 // highest LSN handed to the OS
	durable  uint64 // highest LSN known durable per policy
	flushing bool   // a flush leader is running
	err      error  // sticky I/O error; poisons all later operations
	closed   bool
}

// Open opens (creating if absent) the log at path, validates every
// frame, truncates a torn tail, and returns the log positioned for
// appending plus the decoded records that survived validation.
func Open(path string, opts Options) (*Log, []*Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	recs, good := scan(data)
	if good < int64(len(data)) {
		mTornTail.Inc()
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: path, opts: opts, nextLSN: uint64(len(recs)) + 1}
	l.written = l.nextLSN - 1
	l.durable = l.written
	l.cond = sync.NewCond(&l.mu)
	return l, recs, nil
}

// scan walks frames in data, returning the decoded records and the byte
// offset just past the last intact frame. Any framing or CRC damage
// stops the scan: everything after the last good frame is a torn tail.
func scan(data []byte) ([]*Record, int64) {
	var recs []*Record
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n <= 0 || len(data)-off-frameHeaderSize < n {
			break
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += frameHeaderSize + n
	}
	return recs, int64(off)
}

// Path returns the log file path.
func (l *Log) Path() string { return l.path }

// Append encodes and enqueues rec, returning its log sequence number.
// The record is not durable until Sync(lsn) returns.
func (l *Log) Append(rec *Record) (uint64, error) {
	var e Encoder
	rec.encode(&e)
	payload := e.Bytes()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.nextLSN++
	mAppends.Inc()
	return l.nextLSN - 1, nil
}

// Sync blocks until every record up to and including lsn is durable
// under the configured policy. Concurrent callers form a group: one
// becomes the flush leader, writes the whole pending buffer and fsyncs
// once; the rest wait on the result.
func (l *Log) Sync(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.durable >= lsn {
			return nil
		}
		if l.closed {
			return fmt.Errorf("wal: log closed")
		}
		if !l.flushing {
			l.flushLocked()
			continue // re-check: our lsn may still be undurable on error
		}
		l.cond.Wait()
	}
}

// flushLocked is the group-commit leader body. Called with l.mu held;
// releases and reacquires it around the I/O.
func (l *Log) flushLocked() {
	l.flushing = true
	if l.opts.Sync == SyncGrouped && l.opts.GroupWindow > 0 {
		// Hold the leader open for the cohort: commits arriving during
		// the window ride this flush's single fsync.
		l.mu.Unlock()
		time.Sleep(l.opts.GroupWindow)
		l.mu.Lock()
	}
	buf := l.buf
	l.buf = nil
	target := l.nextLSN - 1
	group := target - l.written
	l.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = l.f.Write(buf)
		mFlushes.Inc()
		mBytes.Add(int64(len(buf)))
		mGroupSize.Observe(int64(group))
	}
	if err == nil && l.opts.Sync != SyncNone {
		err = l.f.Sync()
		mFsyncs.Inc()
	}

	l.mu.Lock()
	l.flushing = false
	if err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
	} else {
		l.written = target
		l.durable = target
	}
	l.cond.Broadcast()
}

// Compact rewrites the log keeping only records for which keep returns
// true — the checkpoint truncation path. It drains any in-flight flush,
// writes the survivors to a temp file, fsyncs and atomically renames it
// over the log (fsyncing the directory so the swap survives power
// loss). Compact runs under concurrent writers: LSN numbering stays
// monotonic across it, so an Append that raced ahead of the compaction
// can still Sync its pre-compact LSN afterwards.
func (l *Log) Compact(keep func(*Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	// Flush the pending buffer so the file holds everything appended.
	if len(l.buf) > 0 {
		if _, err := l.f.Write(l.buf); err != nil {
			l.err = fmt.Errorf("wal: flush before compact: %w", err)
			return l.err
		}
		l.buf = nil
		l.written = l.nextLSN - 1
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	recs, _ := scan(data)

	tmp := l.path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	var e Encoder
	for _, rec := range recs {
		if !keep(rec) {
			continue
		}
		e.Reset()
		rec.encode(&e)
		payload := e.Bytes()
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := out.Write(hdr[:]); err == nil {
			_, err = out.Write(payload)
		}
		if err != nil {
			out.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: compact: %w", err)
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := syncDir(filepath.Dir(l.path)); err != nil {
		// The rename may not be durably published; poison the log rather
		// than acknowledge writes against an uncertain file.
		l.err = err
		return l.err
	}
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: reopen after compact: %w", err)
		return l.err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	old.Close()
	l.f = f
	// LSN numbering must stay monotonic: writers that appended before we
	// took the lock may still hold their LSNs and Sync them after we
	// return. Everything appended so far is durable now — kept records
	// were fsynced into the compacted file, and dropped ones are covered
	// by the checkpoint image whose publication triggered this
	// truncation — so those Syncs return immediately instead of waiting
	// on numbering that restarted underneath them.
	l.written = l.nextLSN - 1
	l.durable = l.written
	l.cond.Broadcast()
	mCompacts.Inc()
	return nil
}

// Close flushes pending records (with a final fsync unless SyncNone)
// and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.closed {
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	var err error
	if l.err == nil && len(l.buf) > 0 {
		_, err = l.f.Write(l.buf)
		l.buf = nil
	}
	if err == nil && l.err == nil && l.opts.Sync != SyncNone {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.err
}
