package wal_test

// Crash-recovery property test: a process can die at ANY byte of the
// write-ahead log — mid-frame, mid-payload, exactly on a frame edge —
// and recovery must produce exactly the state obtained by serially
// applying the records the truncated log still (fully) holds. The test
// cuts a real log at randomized offsets, recovers each prefix into a
// fresh engine (core's MVCC replay, HyPer's and L-Store's logical
// replay), and compares against an independently computed model.
// Lives in an external test package: core/hyper/lstore import wal.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/hyper"
	"hybridstore/internal/engines/lstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/wal"
	"hybridstore/internal/workload"
)

const (
	crashInserts = 100
	crashUpdates = 60
)

// crashTable is the slice of behaviour the property test needs from
// every engine.
type crashTable interface {
	Rows() uint64
	Get(row uint64) (schema.Record, error)
}

// writeCoreLog drives a WAL-enabled core table and returns the raw log
// bytes (inserts + MVCC commit records).
func writeCoreLog(t *testing.T, dir string) []byte {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	l, recs, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log holds %d records", len(recs))
	}
	e := core.New(engine.NewEnv(), core.Options{ChunkRows: 32, HotChunks: 1})
	et, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := et.(*core.Table)
	defer tbl.Free()
	tbl.EnableWAL(l)
	driveInsertsUpdates(t,
		func(rec schema.Record) error { _, err := tbl.Insert(rec); return err },
		func(row uint64, v schema.Value) error { return tbl.Update(row, workload.ItemPriceCol, v) })
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// driveInsertsUpdates runs the canonical interleaved workload.
func driveInsertsUpdates(t *testing.T, insert func(schema.Record) error, update func(uint64, schema.Value) error) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	u := 0
	for i := uint64(0); i < crashInserts; i++ {
		if err := insert(workload.Item(i)); err != nil {
			t.Fatal(err)
		}
		for u < crashUpdates && r.Intn(2) == 0 {
			row := uint64(r.Intn(int(i + 1)))
			if err := update(row, schema.FloatValue(float64(u)*0.5)); err != nil {
				t.Fatal(err)
			}
			u++
		}
	}
	for ; u < crashUpdates; u++ {
		if err := update(uint64(u)%crashInserts, schema.FloatValue(float64(u)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
}

func truncationPoints(r *rand.Rand, size int) []int {
	pts := []int{0, size, size - 1, size - 3} // empty, intact, torn tail
	for i := 0; i < 24; i++ {
		pts = append(pts, r.Intn(size))
	}
	return pts
}

// recoverLog writes data[:cut] to a fresh file and opens it, returning
// the decoded prefix records.
func recoverLog(t *testing.T, dir string, data []byte, cut int) []*wal.Record {
	t.Helper()
	if cut < 0 {
		cut = 0
	}
	path := filepath.Join(dir, "crash.log")
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatalf("cut %d: %v", cut, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// model applies the records serially: the ground truth every recovery
// must match.
func model(t *testing.T, recs []*wal.Record) []schema.Record {
	t.Helper()
	var rows []schema.Record
	lastTS := uint64(0)
	for _, r := range recs {
		switch r.Kind {
		case wal.KindInsert:
			if r.Row != uint64(len(rows)) {
				t.Fatalf("log prefix inserts out of order: row %d at position %d", r.Row, len(rows))
			}
			rows = append(rows, r.Rec)
		case wal.KindCommit:
			if r.TS <= lastTS {
				t.Fatalf("commit timestamps not increasing: %d after %d", r.TS, lastTS)
			}
			lastTS = r.TS
			for _, op := range r.Ops {
				if op.Deleted {
					rows[op.Row] = nil
				} else {
					rows[op.Row] = op.Rec
				}
			}
		case wal.KindUpdate:
			rec := make(schema.Record, len(rows[r.Row]))
			copy(rec, rows[r.Row])
			rec[r.Col] = r.Val
			rows[r.Row] = rec
		}
	}
	return rows
}

// checkRecovered compares an engine's recovered state to the model.
func checkRecovered(t *testing.T, cut int, tbl crashTable, want []schema.Record) {
	t.Helper()
	if tbl.Rows() != uint64(len(want)) {
		t.Fatalf("cut %d: recovered %d rows, want %d", cut, tbl.Rows(), len(want))
	}
	for row, w := range want {
		if w == nil {
			continue
		}
		got, err := tbl.Get(uint64(row))
		if err != nil {
			t.Fatalf("cut %d: Get(%d): %v", cut, row, err)
		}
		if !got.Equal(w) {
			t.Fatalf("cut %d: row %d = %v, want %v", cut, row, got, w)
		}
	}
}

func TestCrashRecoveryCore(t *testing.T) {
	data := writeCoreLog(t, t.TempDir())
	r := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	for _, cut := range truncationPoints(r, len(data)) {
		recs := recoverLog(t, dir, data, cut)
		want := model(t, recs)
		e := core.New(engine.NewEnv(), core.Options{ChunkRows: 32, HotChunks: 1})
		et, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			t.Fatal(err)
		}
		tbl := et.(*core.Table)
		for _, rec := range recs {
			switch rec.Kind {
			case wal.KindInsert:
				err = tbl.ReplayInsert(rec.Row, rec.Rec)
			case wal.KindCommit:
				err = tbl.ReplayCommit(rec.TS, rec.Ops)
			default:
				t.Fatalf("cut %d: unexpected record kind %v", cut, rec.Kind)
			}
			if err != nil {
				t.Fatalf("cut %d: replay: %v", cut, err)
			}
		}
		checkRecovered(t, cut, tbl, want)
		tbl.Free()
	}
}

func TestCrashRecoveryHyper(t *testing.T) {
	gen := t.TempDir()
	path := filepath.Join(gen, "wal.log")
	l, _, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := hyper.New(engine.NewEnv(), 32)
	et, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := et.(*hyper.Table)
	tbl.EnableWAL(l)
	driveInsertsUpdates(t,
		func(rec schema.Record) error { _, err := tbl.Insert(rec); return err },
		func(row uint64, v schema.Value) error { return tbl.Update(row, workload.ItemPriceCol, v) })
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tbl.Free()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	for _, cut := range truncationPoints(r, len(data)) {
		recs := recoverLog(t, dir, data, cut)
		want := model(t, recs)
		re := hyper.New(engine.NewEnv(), 32)
		ret, err := re.Create("item", workload.ItemSchema())
		if err != nil {
			t.Fatal(err)
		}
		rt := ret.(*hyper.Table)
		for _, rec := range recs {
			switch rec.Kind {
			case wal.KindInsert:
				err = rt.ReplayInsert(rec.Row, rec.Rec)
			case wal.KindUpdate:
				err = rt.ReplayUpdate(rec.Row, rec.Col, rec.Val)
			default:
				t.Fatalf("cut %d: unexpected record kind %v", cut, rec.Kind)
			}
			if err != nil {
				t.Fatalf("cut %d: replay: %v", cut, err)
			}
		}
		checkRecovered(t, cut, rt, want)
		rt.Free()
	}
}

func TestCrashRecoveryLStore(t *testing.T) {
	gen := t.TempDir()
	path := filepath.Join(gen, "wal.log")
	l, _, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := lstore.New(engine.NewEnv())
	et, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := et.(*lstore.Table)
	tbl.EnableWAL(l)
	driveInsertsUpdates(t,
		func(rec schema.Record) error { _, err := tbl.Insert(rec); return err },
		func(row uint64, v schema.Value) error { return tbl.Update(row, workload.ItemPriceCol, v) })
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(13))
	dir := t.TempDir()
	for _, cut := range truncationPoints(r, len(data)) {
		recs := recoverLog(t, dir, data, cut)
		want := model(t, recs)
		re := lstore.New(engine.NewEnv())
		ret, err := re.Create("item", workload.ItemSchema())
		if err != nil {
			t.Fatal(err)
		}
		rt := ret.(*lstore.Table)
		for _, rec := range recs {
			switch rec.Kind {
			case wal.KindInsert:
				err = rt.ReplayInsert(rec.Row, rec.Rec)
			case wal.KindUpdate:
				err = rt.ReplayUpdate(rec.Row, rec.Col, rec.Val)
			default:
				t.Fatalf("cut %d: unexpected record kind %v", cut, rec.Kind)
			}
			if err != nil {
				t.Fatalf("cut %d: replay: %v", cut, err)
			}
		}
		checkRecovered(t, cut, rt, want)
		rt.Free()
	}
}
