// Package wal implements the durability substrate: a write-ahead log
// with per-record CRC32 framing and group commit, plus the checked
// binary encoding shared by log records and checkpoint snapshot files.
//
// The log is logical: each record describes one storage-engine event
// (table create, base insert, MVCC commit, in-place update) rather than
// page images. Recovery replays records in log order, which — because
// every producer appends inside its engine's commit critical section —
// is also commit-timestamp order per table, preserving the tx layer's
// first-committer-wins semantics (a conflict during replay is corruption,
// not something to skip).
//
// Frame format, little-endian:
//
//	[u32 payload length][u32 CRC-32 (IEEE) of payload][payload]
//
// A torn final frame (short header, short payload, or CRC mismatch) is
// truncated on Open; anything before it is trusted.
package wal

import (
	"errors"
	"fmt"

	"hybridstore/internal/schema"
)

// Kind tags what a log record describes.
type Kind uint8

// Log record kinds.
const (
	// KindCreate records a table creation: name, engine and schema.
	KindCreate Kind = 1
	// KindInsert records one base-region insert at a known row position.
	KindInsert Kind = 2
	// KindCommit records one MVCC transaction commit: the commit
	// timestamp and the full write set, in install order.
	KindCommit Kind = 3
	// KindUpdate records one in-place (non-MVCC) single-cell update.
	KindUpdate Kind = 4
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCreate:
		return "create"
	case KindInsert:
		return "insert"
	case KindCommit:
		return "commit"
	case KindUpdate:
		return "update"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one entry of a commit record's write set.
type Op struct {
	// Row is the row the version installs at.
	Row uint64
	// Deleted marks a delete marker instead of a record image.
	Deleted bool
	// Rec is the after-image (nil when Deleted).
	Rec schema.Record
}

// Record is one logical log record. Only the fields relevant to its
// Kind are populated.
type Record struct {
	// Kind selects which fields below are meaningful.
	Kind Kind
	// Table is the owning table name (all kinds).
	Table string
	// Engine is the engine registry name (KindCreate).
	Engine string
	// Schema is the created table's schema (KindCreate).
	Schema *schema.Schema
	// Row addresses KindInsert / KindUpdate.
	Row uint64
	// Col addresses KindUpdate.
	Col int
	// Val is the new cell value (KindUpdate).
	Val schema.Value
	// Rec is the inserted record (KindInsert).
	Rec schema.Record
	// TS is the commit timestamp (KindCommit).
	TS uint64
	// Ops is the commit write set in install order (KindCommit).
	Ops []Op
}

// Encoding errors.
var (
	// ErrCorrupt is returned when a payload does not decode.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// encode appends the record payload (no frame header) to dst.
func (r *Record) encode(e *Encoder) {
	e.U8(uint8(r.Kind))
	e.Str(r.Table)
	switch r.Kind {
	case KindCreate:
		e.Str(r.Engine)
		e.Schema(r.Schema)
	case KindInsert:
		e.U64(r.Row)
		e.Record(r.Rec)
	case KindCommit:
		e.U64(r.TS)
		e.U32(uint32(len(r.Ops)))
		for _, op := range r.Ops {
			e.U64(op.Row)
			e.Bool(op.Deleted)
			if !op.Deleted {
				e.Record(op.Rec)
			}
		}
	case KindUpdate:
		e.U64(r.Row)
		e.U32(uint32(r.Col))
		e.Value(r.Val)
	}
}

// decodeRecord parses one payload back into a Record.
func decodeRecord(payload []byte) (*Record, error) {
	d := NewDecoder(payload)
	r := &Record{Kind: Kind(d.U8()), Table: d.Str()}
	switch r.Kind {
	case KindCreate:
		r.Engine = d.Str()
		r.Schema = d.Schema()
	case KindInsert:
		r.Row = d.U64()
		r.Rec = d.Record()
	case KindCommit:
		r.TS = d.U64()
		n := int(d.U32())
		if n > len(payload) { // cheap sanity bound before allocating
			return nil, fmt.Errorf("%w: %d ops in %d bytes", ErrCorrupt, n, len(payload))
		}
		r.Ops = make([]Op, 0, n)
		for i := 0; i < n; i++ {
			op := Op{Row: d.U64(), Deleted: d.Bool()}
			if !op.Deleted {
				op.Rec = d.Record()
			}
			r.Ops = append(r.Ops, op)
		}
	case KindUpdate:
		r.Row = d.U64()
		r.Col = int(d.U32())
		r.Val = d.Value()
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, r.Kind)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}
