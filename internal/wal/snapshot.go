package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapshotMagic heads every checkpoint file: "HSCK" + format version 1.
var snapshotMagic = [8]byte{'H', 'S', 'C', 'K', 1, 0, 0, 0}

// WriteSnapshotFile writes payload to path with a magic header and a
// trailing CRC-32, via a temp file and atomic rename, fsyncing the
// file before the swap and the parent directory after it. A crash
// mid-write leaves the previous snapshot (or none) intact; a torn file
// fails ReadSnapshotFile's checksum.
func WriteSnapshotFile(path string, payload []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err = f.Write(snapshotMagic[:]); err == nil {
		if _, err = f.Write(payload); err == nil {
			_, err = f.Write(crc[:])
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	// The rename must itself be durable before the caller drops the log
	// records this snapshot covers: fsyncing the file alone does not
	// persist its directory entry, and a power failure that kept the WAL
	// truncation but lost the rename would lose acknowledged writes.
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file inside it is
// durably reachable after power failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}

// ReadSnapshotFile reads a snapshot written by WriteSnapshotFile,
// validating magic and checksum, and returns the payload. A missing
// file returns os.ErrNotExist (wrapped).
func ReadSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("%w: snapshot %s too short", ErrCorrupt, path)
	}
	for i, b := range snapshotMagic {
		if data[i] != b {
			return nil, fmt.Errorf("%w: snapshot %s bad magic", ErrCorrupt, path)
		}
	}
	payload := data[len(snapshotMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: snapshot %s checksum mismatch", ErrCorrupt, path)
	}
	return payload, nil
}
