package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hybridstore/internal/schema"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.New(schema.Int64Attr("id"), schema.Float64Attr("price"), schema.CharAttr("name", 8))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecordRoundTrip(t *testing.T) {
	s := testSchema(t)
	recs := []*Record{
		{Kind: KindCreate, Table: "item", Engine: "core", Schema: s},
		{Kind: KindInsert, Table: "item", Row: 7, Rec: schema.Record{
			schema.IntValue(7), schema.FloatValue(1.5), schema.CharValue("ab"),
		}},
		{Kind: KindCommit, Table: "item", TS: 42, Ops: []Op{
			{Row: 1, Rec: schema.Record{schema.IntValue(1), schema.FloatValue(2), schema.CharValue("x")}},
			{Row: 2, Deleted: true},
		}},
		{Kind: KindUpdate, Table: "item", Row: 3, Col: 1, Val: schema.FloatValue(9.25)},
	}
	for _, in := range recs {
		var e Encoder
		in.encode(&e)
		out, err := decodeRecord(e.Bytes())
		if err != nil {
			t.Fatalf("%s: decode: %v", in.Kind, err)
		}
		if out.Kind != in.Kind || out.Table != in.Table || out.Row != in.Row ||
			out.Col != in.Col || out.TS != in.TS || len(out.Ops) != len(in.Ops) {
			t.Fatalf("%s: round trip mismatch: %+v vs %+v", in.Kind, out, in)
		}
		if in.Rec != nil && !out.Rec.Equal(in.Rec) {
			t.Fatalf("%s: record mismatch: %v vs %v", in.Kind, out.Rec, in.Rec)
		}
		if in.Kind == KindUpdate && !out.Val.Equal(in.Val) {
			t.Fatalf("update value mismatch: %v vs %v", out.Val, in.Val)
		}
		if in.Schema != nil {
			if out.Schema == nil || out.Schema.Arity() != in.Schema.Arity() ||
				out.Schema.Width() != in.Schema.Width() {
				t.Fatalf("schema round trip mismatch")
			}
		}
		for i, op := range in.Ops {
			got := out.Ops[i]
			if got.Row != op.Row || got.Deleted != op.Deleted || (op.Rec != nil && !got.Rec.Equal(op.Rec)) {
				t.Fatalf("op %d mismatch: %+v vs %+v", i, got, op)
			}
		}
	}
}

func TestLogAppendSyncReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(&Record{Kind: KindInsert, Table: "t", Row: uint64(i),
			Rec: schema.Record{schema.IntValue(int64(i))}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("reopened %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Row != uint64(i) {
			t.Fatalf("record %d has row %d", i, r.Row)
		}
	}
}

func TestLogGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{Sync: SyncGrouped, GroupWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(&Record{Kind: KindInsert, Table: "t", Row: uint64(i),
				Rec: schema.Record{schema.IntValue(int64(i))}})
			if err == nil {
				err = l.Sync(lsn)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lsn, _ := l.Append(&Record{Kind: KindInsert, Table: "t", Row: uint64(i),
			Rec: schema.Record{schema.IntValue(int64(i))}})
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-20 && cut > 0; cut-- {
		torn := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs, err := Open(torn, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 4 {
			t.Fatalf("cut %d: recovered %d records, want 4", cut, len(recs))
		}
		// The torn bytes must be gone: a fresh append then reopen yields 5.
		lsn, err := l2.Append(&Record{Kind: KindInsert, Table: "t", Row: 99,
			Rec: schema.Record{schema.IntValue(99)}})
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Sync(lsn); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err = Open(torn, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 5 || recs[4].Row != 99 {
			t.Fatalf("cut %d: after repair got %d records", cut, len(recs))
		}
	}
}

func TestLogCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lsn, _ := l.Append(&Record{Kind: KindInsert, Table: "t", Row: uint64(i),
			Rec: schema.Record{schema.IntValue(int64(i))}})
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff // flip a bit mid-log
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 3 {
		t.Fatalf("corrupt log yielded %d records", len(recs))
	}
}

func TestLogCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(&Record{Kind: KindCommit, Table: "t", TS: uint64(i + 1)})
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(func(r *Record) bool { return r.TS > 5 }); err != nil {
		t.Fatal(err)
	}
	// The log stays usable after compaction.
	lsn, err := l.Append(&Record{Kind: KindCommit, Table: "t", TS: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("compacted log has %d records, want 6", len(recs))
	}
	for i, r := range recs {
		if want := uint64(i + 6); r.TS != want {
			t.Fatalf("record %d has ts %d, want %d", i, r.TS, want)
		}
	}
}

func TestLogCompactPreservesLSNs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		last, err = l.Append(&Record{Kind: KindCommit, Table: "t", TS: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Compact while an appender still holds an unacknowledged LSN (the
	// records were never synced): the writer's Sync must still return —
	// the regression was numbering restarting underneath it, leaving
	// durable < lsn forever.
	if err := l.Compact(func(*Record) bool { return false }); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Sync(last) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Sync(pre-compact LSN): %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Sync on a pre-compact LSN hung after Compact")
	}
	// Numbering continues monotonically over the compacted file.
	lsn, err := l.Append(&Record{Kind: KindCommit, Table: "t", TS: 11})
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= last {
		t.Fatalf("LSN numbering restarted across Compact: got %d after %d", lsn, last)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TS != 11 {
		t.Fatalf("compacted log holds %d records", len(recs))
	}
}

func TestLogCompactConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := Open(path, Options{Sync: SyncGrouped})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 40
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(&Record{Kind: KindCommit, Table: "t",
					TS: uint64(w*perWriter + i + 1)})
				if err == nil {
					err = l.Sync(lsn)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	var compactErr error
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Compact(func(*Record) bool { return false }); err != nil {
				compactErr = err
				return
			}
		}
	}()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("writers hung against concurrent Compact")
	}
	close(stop)
	cwg.Wait()
	if compactErr != nil {
		t.Fatal(compactErr)
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.db")
	payload := []byte("hello checkpoint payload")
	if err := WriteSnapshotFile(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	// Corrupt one byte: checksum must catch it.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("corrupt snapshot read succeeded")
	}
}
