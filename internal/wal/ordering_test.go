package wal_test

// Regression tests for WAL append ordering: a write whose caller saw an
// error must never leave a record in the log. Engines append only after
// every fallible step (validation, buffer growth, chunk allocation, COW
// cloning) has succeeded — otherwise recovery would replay a write that
// was never applied or acknowledged, violating OpenDir's guarantee.

import (
	"path/filepath"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/hyper"
	"hybridstore/internal/engines/lstore"
	"hybridstore/internal/schema"
	"hybridstore/internal/wal"
	"hybridstore/internal/workload"
)

// walTable is the write surface shared by the engines under test.
type walTable interface {
	Insert(schema.Record) (uint64, error)
	Update(row uint64, col int, v schema.Value) error
	EnableWAL(*wal.Log)
}

// badItem is a well-arity record whose price attribute has the wrong
// kind: it must fail validation before reaching the log.
func badItem(i uint64) schema.Record {
	rec := workload.Item(i)
	rec[workload.ItemPriceCol] = schema.CharValue("x")
	return rec
}

// driveFailedWrites performs good insert, bad insert, bad update, good
// insert, asserting the bad ones error, then closes the log and returns
// the surviving records.
func driveFailedWrites(t *testing.T, dir string, tbl walTable, badUpdate bool) []*wal.Record {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	l, _, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl.EnableWAL(l)
	if _, err := tbl.Insert(workload.Item(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(badItem(1)); err == nil {
		t.Fatal("insert of a kind-mismatched record succeeded")
	}
	if badUpdate {
		if err := tbl.Update(0, workload.ItemPriceCol, schema.CharValue("x")); err == nil {
			t.Fatal("update with a kind-mismatched value succeeded")
		}
	}
	if _, err := tbl.Insert(workload.Item(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// checkOnlyGoodInserts asserts the log holds exactly the two successful
// inserts at consecutive rows — no trace of the failed writes.
func checkOnlyGoodInserts(t *testing.T, recs []*wal.Record) {
	t.Helper()
	if len(recs) != 2 {
		t.Fatalf("log holds %d records after failed writes, want 2", len(recs))
	}
	for i, r := range recs {
		if r.Kind != wal.KindInsert || r.Row != uint64(i) {
			t.Fatalf("record %d is %v at row %d, want insert at row %d", i, r.Kind, r.Row, i)
		}
		if !r.Rec.Equal(workload.Item(uint64(i))) {
			t.Fatalf("record %d holds %v, want item %d", i, r.Rec, i)
		}
	}
}

func TestFailedWriteNotLoggedCore(t *testing.T) {
	e := core.New(engine.NewEnv(), core.Options{ChunkRows: 32, HotChunks: 1})
	et, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := et.(*core.Table)
	defer tbl.Free()
	// Core updates route through the MVCC commit logger, not a bare
	// update record; only the insert path is exercised here.
	checkOnlyGoodInserts(t, driveFailedWrites(t, t.TempDir(), tbl, false))
}

func TestFailedWriteNotLoggedHyper(t *testing.T) {
	e := hyper.New(engine.NewEnv(), 32)
	et, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := et.(*hyper.Table)
	defer tbl.Free()
	checkOnlyGoodInserts(t, driveFailedWrites(t, t.TempDir(), tbl, true))
}

func TestFailedWriteNotLoggedLStore(t *testing.T) {
	e := lstore.New(engine.NewEnv())
	et, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := et.(*lstore.Table)
	checkOnlyGoodInserts(t, driveFailedWrites(t, t.TempDir(), tbl, true))
}
