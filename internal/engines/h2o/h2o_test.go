package h2o

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv())
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ht := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ht.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return ht
}

func TestDefaultIsPureNSM(t *testing.T) {
	tbl := load(t, 200)
	defer tbl.Free()
	snap := tbl.Snapshot()
	if len(snap.Layouts[0].Fragments) != 1 {
		t.Fatalf("fragments = %d", len(snap.Layouts[0].Fragments))
	}
	f := snap.Layouts[0].Fragments[0]
	if !f.Fat || f.Lin != layout.NSM {
		t.Fatalf("default fragment = %+v", f)
	}
	if len(tbl.ThinColumns()) != 0 {
		t.Fatalf("thin columns = %v", tbl.ThinColumns())
	}
}

func TestScanHeavyColumnDegeneratesToThin(t *testing.T) {
	tbl := load(t, 500)
	defer tbl.Free()
	for i := 0; i < 200; i++ {
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
	}
	changed, err := tbl.Adapt()
	if err != nil || !changed {
		t.Fatalf("Adapt = %v, %v", changed, err)
	}
	thin := tbl.ThinColumns()
	if len(thin) != 1 || thin[0] != workload.ItemPriceCol {
		t.Fatalf("thin = %v", thin)
	}
	// Resulting structure: fat NSM fragment over the other columns plus
	// one thin Direct fragment — "variable NSM-fixed partially
	// DSM-emulated".
	snap := tbl.Snapshot()
	var fat, thinFrags int
	for _, f := range snap.Layouts[0].Fragments {
		if f.Fat {
			fat++
		} else if f.Lin == layout.Direct {
			thinFrags++
		}
	}
	if fat != 1 || thinFrags != 1 {
		t.Fatalf("structure = %d fat, %d thin", fat, thinFrags)
	}
	// Answers survive.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(500)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	rec, err := tbl.Get(321)
	if err != nil || !rec.Equal(workload.Item(321)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestPointHeavyWorkloadKeepsNSM(t *testing.T) {
	tbl := load(t, 300)
	defer tbl.Free()
	all := layout.AllCols(tbl.Rel.Schema())
	for i := 0; i < 200; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: all})
	}
	changed, err := tbl.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if changed || len(tbl.ThinColumns()) != 0 {
		t.Fatalf("point-heavy workload degenerated columns: %v", tbl.ThinColumns())
	}
}

func TestAdaptOnEmptyTableIsNoOp(t *testing.T) {
	e := New(engine.NewEnv())
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Free()
	ht := tbl.(*Table)
	ht.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{4}})
	changed, err := ht.Adapt()
	if err != nil || changed {
		t.Fatalf("empty Adapt = %v, %v", changed, err)
	}
}

func TestAllColumnsCanDegenerate(t *testing.T) {
	tbl := load(t, 400)
	defer tbl.Free()
	for c := 0; c < 5; c++ {
		for i := 0; i < 100; i++ {
			tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{c}})
		}
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.ThinColumns()) != 5 {
		t.Fatalf("thin = %v, want all 5 (DSM-emulated)", tbl.ThinColumns())
	}
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(400)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	if tbl.Adapts() != 1 {
		t.Fatalf("Adapts = %d", tbl.Adapts())
	}
}

func TestLayoutPoolExists(t *testing.T) {
	tbl := load(t, 10)
	defer tbl.Free()
	// Per-attribute candidates plus the all-thin candidate.
	if len(tbl.pool) != 6 {
		t.Fatalf("pool = %d candidates", len(tbl.pool))
	}
}

func TestInsertAfterDegeneration(t *testing.T) {
	tbl := load(t, 100)
	defer tbl.Free()
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{4}})
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if err := workload.Generate(100, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(workload.Item(100 + i))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(199)
	if err != nil || !rec.Equal(workload.Item(199)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}
