// Package h2o implements the H₂O adaptive store (Alagiannis, Idreos,
// Ailamaki, 2014; paper Section IV-A.5): a single-layout, weak flexible
// engine whose relations are horizontally partitioned into fragments that
// are NSM-fixed fat by default, but that can degenerate per attribute
// into thin directly-linearized columns — "variable NSM-fixed partially
// DSM-emulated" linearization. Layout alternatives live in a pool, are
// costed lazily against the observed workload with the calibrated model,
// and the cheapest one is adopted.
package h2o

import (
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/layout"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// Engine is the H₂O storage engine.
type Engine struct {
	env *engine.Env
}

// New creates the engine.
func New(env *engine.Env) *Engine { return &Engine{env: env} }

// Name returns the survey name.
func (e *Engine) Name() string { return "H2O" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		Responsive: true,
		Processors: taxonomy.CPUOnly,
		Workloads:  taxonomy.HTAP,
		Year:       2014,
	}
}

// candidate is one pooled layout alternative: the set of attributes kept
// as thin DSM-emulated columns (the rest stay in the NSM-fixed fat
// fragment).
type candidate struct {
	thin map[int]bool
}

// Table is an H₂O relation.
type Table struct {
	*common.Table
	mon *workload.Monitor
	// thin is the adopted candidate: attributes currently stored as thin
	// columns.
	thin   map[int]bool
	pool   []candidate
	adapts int
}

// Create makes an empty relation in the default all-NSM layout, with a
// layout pool containing per-attribute thin alternatives.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	l, err := buildLayout(e.env, s, nil, 64)
	if err != nil {
		return nil, err
	}
	rel.AddLayout(l)
	t := &Table{
		Table: common.NewTable(e.env, rel),
		mon:   workload.NewMonitor(s.Arity()),
		thin:  map[int]bool{},
	}
	// The pool holds "thin {c}" plus "all columns thin" alternatives; the
	// workload evaluation composes them per attribute.
	for c := 0; c < s.Arity(); c++ {
		t.pool = append(t.pool, candidate{thin: map[int]bool{c: true}})
	}
	all := map[int]bool{}
	for c := 0; c < s.Arity(); c++ {
		all[c] = true
	}
	t.pool = append(t.pool, candidate{thin: all})
	t.Append = t.appendRecord
	return t, nil
}

// buildLayout creates the H₂O structure: one NSM fragment over the
// non-thin attributes (if two or more remain) plus one thin Direct
// fragment per degenerated attribute.
func buildLayout(env *engine.Env, s *schema.Schema, thin map[int]bool, rowCap uint64) (*layout.Layout, error) {
	l := layout.NewLayout("h2o", s)
	var fatCols []int
	for c := 0; c < s.Arity(); c++ {
		if !thin[c] {
			fatCols = append(fatCols, c)
		}
	}
	addFrag := func(cols []int, lin layout.Linearization) error {
		f, err := layout.NewFragment(env.Host, s, cols, layout.RowRange{Begin: 0, End: rowCap}, lin)
		if err != nil {
			return err
		}
		return l.Add(f)
	}
	switch len(fatCols) {
	case 0:
	case 1:
		if err := addFrag(fatCols, layout.Direct); err != nil {
			l.Free()
			return nil, fmt.Errorf("h2o: %w", err)
		}
	default:
		if err := addFrag(fatCols, layout.NSM); err != nil {
			l.Free()
			return nil, fmt.Errorf("h2o: %w", err)
		}
	}
	for c := 0; c < s.Arity(); c++ {
		if thin[c] {
			if err := addFrag([]int{c}, layout.Direct); err != nil {
				l.Free()
				return nil, fmt.Errorf("h2o: %w", err)
			}
		}
	}
	return l, nil
}

// appendRecord appends to all fragments, growing in lockstep.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	l, err := t.Rel.Primary()
	if err != nil {
		return err
	}
	for _, f := range l.Fragments() {
		if f.Len() == f.Cap() {
			grown, gerr := f.Grow(t.Env.Host, f.Cap()*2)
			if gerr != nil {
				return fmt.Errorf("h2o: growing fragment: %w", gerr)
			}
			if err := l.Replace(f, grown); err != nil {
				return err
			}
			f = grown
		}
		vals := make([]schema.Value, 0, f.Arity())
		for _, c := range f.Cols() {
			vals = append(vals, rec[c])
		}
		if err := f.AppendTuplet(vals); err != nil {
			return err
		}
	}
	return nil
}

// Observe feeds a workload operation into the layout advisor.
func (t *Table) Observe(op workload.Op) { t.mon.Observe(op) }

// Adapts returns the number of adopted re-organizations.
func (t *Table) Adapts() int { return t.adapts }

// ThinColumns returns the currently degenerated attributes, sorted.
func (t *Table) ThinColumns() []int {
	var out []int
	for c := 0; c < t.Rel.Schema().Arity(); c++ {
		if t.thin[c] {
			out = append(out, c)
		}
	}
	return out
}

// Adapt evaluates the layout pool against the observed workload using
// the calibrated cost model and lazily adopts the cheapest composition:
// an attribute goes thin when its scans would save more than its point
// reads lose. Returns whether the layout changed.
func (t *Table) Adapt() (bool, error) {
	if t.mon.Observations() == 0 {
		return false, nil
	}
	stats := t.mon.Snapshot()
	want := map[int]bool{}
	h := t.Cfg.Host
	if h.CacheLine == 0 {
		h = perfmodel.DefaultHost()
	}
	s := t.Rel.Schema()
	n := int64(t.Rel.Rows())
	if n == 0 {
		return false, nil
	}
	for c := 0; c < s.Arity(); c++ {
		size := s.Attr(c).Size
		// Cost of this attribute's observed operations under fat (NSM) vs
		// thin (direct) storage.
		fat := float64(stats.Scan[c]) * h.ScanSumNs(n, size, s.Width(), 1)
		fat += float64(stats.Point[c]) * h.MaterializeNs(1, n, s.Width(), 1, 1)
		thin := float64(stats.Scan[c]) * h.ScanSumNs(n, size, size, 1)
		thin += float64(stats.Point[c]) * h.MaterializeNs(1, n, s.Width(), 2, 1)
		if thin < fat {
			want[c] = true
		}
	}
	if equalSets(want, t.thin) {
		return false, nil
	}
	old, err := t.Rel.Primary()
	if err != nil {
		return false, err
	}
	rows := t.Rel.Rows()
	rowCap := rows
	if rowCap < 64 {
		rowCap = 64
	}
	nl, err := buildLayout(t.Env, s, want, rowCap)
	if err != nil {
		return false, err
	}
	for row := uint64(0); row < rows; row++ {
		rec, err := old.Record(row)
		if err != nil {
			nl.Free()
			return false, fmt.Errorf("h2o: migrating row %d: %w", row, err)
		}
		if err := common.AppendToFragments(rec, nl.Fragments()...); err != nil {
			nl.Free()
			return false, err
		}
	}
	t.Rel.RemoveLayout(old)
	old.Free()
	t.Rel.AddLayout(nl)
	t.thin = want
	t.adapts++
	t.mon.Reset()
	return true, nil
}

// equalSets compares two attribute sets.
func equalSets(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
