package all

import (
	"errors"
	"math"
	"testing"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestHostExhaustionFailsCleanly loads every host-based engine against a
// tiny host allocator: the failing insert must surface ErrOutOfMemory and
// everything stored before the failure must stay readable and aggregable.
func TestHostExhaustionFailsCleanly(t *testing.T) {
	for _, name := range []string{
		"PAX", "Fractured Mirrors", "HYRISE", "H2O", "HyPer", "CoGaDB", "L-Store", "Peloton",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			env := engine.NewEnv()
			env.Host = mem.NewAllocator(mem.Host, 48<<10) // 48 KiB
			e := ByName(env, name)
			tbl, err := e.Create("item", workload.ItemSchema())
			if err != nil {
				// Some engines pre-allocate more than the budget; that is
				// itself a clean failure.
				if errors.Is(err, mem.ErrOutOfMemory) {
					return
				}
				t.Fatalf("Create: %v", err)
			}
			defer tbl.Free()

			var loaded uint64
			var failure error
			for i := uint64(0); i < 50_000; i++ {
				if _, err := tbl.Insert(workload.Item(i)); err != nil {
					failure = err
					break
				}
				loaded++
			}
			if failure == nil {
				t.Fatalf("48 KiB host accepted 50k inserts (%d loaded)", loaded)
			}
			if !errors.Is(failure, mem.ErrOutOfMemory) {
				t.Fatalf("failure = %v, want ErrOutOfMemory", failure)
			}
			if loaded == 0 {
				t.Skip("engine failed on first insert; nothing to check")
			}
			// Survivors are intact. Engines that report the row as
			// inserted only after full success must still answer for all
			// acknowledged rows.
			for _, row := range []uint64{0, loaded / 2, loaded - 1} {
				rec, err := tbl.Get(row)
				if err != nil {
					t.Fatalf("Get(%d) after OOM: %v", row, err)
				}
				if rec[0].I != int64(row) {
					t.Fatalf("Get(%d) id = %d", row, rec[0].I)
				}
			}
		})
	}
}

// TestDeviceExhaustionGPUTx: the device-only engine must fail cleanly
// when the card fills up.
func TestDeviceExhaustionGPUTx(t *testing.T) {
	env := engine.NewEnv()
	prof := perfmodel.DefaultDevice()
	prof.GlobalMemory = 16 << 10 // 16 KiB card
	env.GPU = device.New(prof, env.Clock)
	e := ByName(env, "GPUTx")
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		if errors.Is(err, mem.ErrOutOfMemory) {
			return
		}
		t.Fatal(err)
	}
	defer tbl.Free()
	var loaded uint64
	var failure error
	for i := uint64(0); i < 10_000; i++ {
		if _, err := tbl.Insert(workload.Item(i)); err != nil {
			failure = err
			break
		}
		loaded++
	}
	if !errors.Is(failure, mem.ErrOutOfMemory) {
		t.Fatalf("failure = %v (loaded %d), want ErrOutOfMemory", failure, loaded)
	}
	if loaded > 0 {
		rec, err := tbl.Get(0)
		if err != nil || !rec.Equal(workload.Item(0)) {
			t.Fatalf("survivor Get = %v, %v", rec, err)
		}
	}
}

// TestAggregateConsistencyAfterPartialLoad cross-checks that a partially
// loaded table's aggregate equals the closed form for exactly the
// acknowledged rows (no phantom or missing tuplets) on a mid-sized
// budget.
func TestAggregateConsistencyAfterPartialLoad(t *testing.T) {
	for _, name := range []string{"PAX", "HYRISE", "HyPer", "L-Store", "Peloton"} {
		name := name
		t.Run(name, func(t *testing.T) {
			env := engine.NewEnv()
			env.Host = mem.NewAllocator(mem.Host, 192<<10)
			e := ByName(env, name)
			tbl, err := e.Create("item", workload.ItemSchema())
			if err != nil {
				t.Skipf("Create under budget: %v", err)
			}
			defer tbl.Free()
			var loaded uint64
			for i := uint64(0); i < 100_000; i++ {
				if _, err := tbl.Insert(workload.Item(i)); err != nil {
					break
				}
				loaded++
			}
			if loaded == 0 {
				t.Skip("nothing loaded")
			}
			if got := tbl.Rows(); got != loaded {
				t.Fatalf("Rows = %d, acknowledged %d", got, loaded)
			}
			sum, err := tbl.SumFloat64(workload.ItemPriceCol)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sum-workload.ExpectedItemPriceSum(loaded)) > 1e-6 {
				t.Fatalf("sum = %v, want %v for %d rows", sum, workload.ExpectedItemPriceSum(loaded), loaded)
			}
		})
	}
}

// TestEnginesRejectMalformedRecords: kind mismatches must never corrupt
// stored data.
func TestEnginesRejectMalformedRecords(t *testing.T) {
	for _, e := range Engines(engine.NewEnv()) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			tbl := loadItems(t, e, 10)
			defer tbl.Free()
			bad := workload.Item(10)
			bad[workload.ItemPriceCol] = schema.IntValue(5) // wrong kind
			if _, err := tbl.Insert(bad); err == nil {
				t.Fatal("kind-mismatched record accepted")
			}
			// Previously stored rows unharmed; row count may or may not
			// include a partially-applied insert depending on the engine,
			// but acknowledged rows must read back exactly.
			for i := uint64(0); i < 10; i++ {
				rec, err := tbl.Get(i)
				if err != nil || !rec.Equal(workload.Item(i)) {
					t.Fatalf("Get(%d) = %v, %v", i, rec, err)
				}
			}
		})
	}
}
