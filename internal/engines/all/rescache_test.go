package all

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/hyper"
	"hybridstore/internal/engines/lstore"
	"hybridstore/internal/exec"
	"hybridstore/internal/rescache"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// stampTable is the surface the result-cache property needs: predicate
// aggregation plus the engine's fragment-version stamp.
type stampTable interface {
	predTable
	VersionStamp(cols ...int) (rescache.Stamp, bool)
}

// TestResultCacheRacingWriters is the cross-engine correctness property
// of version-stamped result caching: under 16 racing writers (plus a
// maintenance goroutine bumping fragment versions via merge/compaction
// mid-flight), a cached answer served under stamp S must be
// byte-for-byte identical to a fresh execution bracketed by the same
// stamp. Readers run the double-stamp bracket —
//
//	s1 := VersionStamp(col)
//	cached, hadCached := cache.Lookup(key, s1)
//	fresh := SumFloat64Where(col, p)   // real execution
//	s2 := VersionStamp(col)
//	if s1 == s2: fresh is a pure function of the stamped state
//	             → any cached answer must match it exactly, and fresh
//	               may be published under that stamp
//
// — so every hit the cache ever serves is checked against a live
// recomputation over provably identical base state. Runs on the three
// engines the network server can front (reference/core, HyPer,
// L-Store) and is meant for -race. A quiesced epilogue guarantees the
// property is actually exercised: with writers stopped, stamps are
// stable and repeats MUST hit.
func TestResultCacheRacingWriters(t *testing.T) {
	const (
		n       = 384
		writers = 16
		readers = 4
		part    = n / writers
		rounds  = 30
	)
	preds := []exec.Pred[float64]{
		exec.Lt[float64](40),
		exec.Gt[float64](60),
		exec.Between[float64](10, 80),
		exec.Between[float64](13, 13), // normalizes to eq(13)
	}
	makers := []struct {
		name string
		make func(env *engine.Env) engine.Engine
		// maintain bumps fragment versions outside the write path:
		// merge (core, L-Store) or compaction (HyPer).
		maintain func(tbl engine.Table) error
	}{
		{"core", func(env *engine.Env) engine.Engine {
			// The engine-internal cache stays OFF: the bracket drives an
			// external cache so a wrong hit is caught by construction.
			return core.New(env, core.Options{ChunkRows: 64})
		}, func(tbl engine.Table) error { return tbl.(*core.Table).Merge() }},
		{"HyPer", func(env *engine.Env) engine.Engine { return hyper.New(env, 64) },
			func(tbl engine.Table) error { _, err := tbl.(*hyper.Table).Compact(); return err }},
		{"L-Store", func(env *engine.Env) engine.Engine { return lstore.New(env) },
			func(tbl engine.Table) error { return tbl.(*lstore.Table).Merge() }},
	}
	for _, m := range makers {
		m := m
		t.Run(m.name, func(t *testing.T) {
			env := engine.NewEnv()
			tbl := loadItems(t, m.make(env), n)
			defer tbl.Free()
			st, ok := tbl.(stampTable)
			if !ok {
				t.Fatalf("%s does not implement VersionStamp", m.name)
			}
			pt := tbl.(predTable)
			cache := rescache.New(1<<20, 0)
			keys := make([]rescache.Key, len(preds))
			for i, p := range preds {
				keys[i] = rescache.Key{
					Table: "item", Op: rescache.OpSumWhere,
					Col: workload.ItemPriceCol, Pred: exec.Normalize(p), HasPred: true,
				}
			}

			// bracket runs one checked query; it reports whether a cached
			// answer was validated against a fresh execution.
			bracket := func(i int) (validatedHit bool) {
				s1, ok1 := st.VersionStamp(workload.ItemPriceCol)
				var cached rescache.Value
				hadCached := false
				if ok1 {
					cached, hadCached = cache.Lookup(keys[i], s1)
				}
				sum, cnt, err := pt.SumFloat64Where(workload.ItemPriceCol, preds[i])
				if err != nil {
					t.Error(err)
					return false
				}
				s2, ok2 := st.VersionStamp(workload.ItemPriceCol)
				if !ok1 || !ok2 || !s1.Equal(s2) {
					return false // state moved (or unstampable): nothing provable
				}
				if hadCached {
					if math.Float64bits(cached.Sum) != math.Float64bits(sum) || cached.Count != cnt {
						t.Errorf("pred %d: cached (%v,%d) != fresh (%v,%d) under equal stamps",
							i, cached.Sum, cached.Count, sum, cnt)
					}
					return true
				}
				cache.Put(keys[i], s1, rescache.Value{Sum: sum, Count: cnt})
				return false
			}

			// Racing phase: writers bump versions mid-flight while readers
			// run the bracket. Written prices are integer-valued so any
			// fold order sums exactly.
			var writersWg, readersWg sync.WaitGroup
			stop := make(chan struct{})
			var validated atomic.Int64
			for w := 0; w < writers; w++ {
				w := w
				writersWg.Add(1)
				go func() {
					defer writersWg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < rounds; i++ {
						row := uint64(w*part + r.Intn(part))
						v := schema.FloatValue(float64(r.Intn(100)))
						if err := tbl.Update(row, workload.ItemPriceCol, v); err != nil {
							t.Error(err)
							return
						}
						if i%10 == 0 {
							if err := m.maintain(tbl); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}()
			}
			for g := 0; g < readers; g++ {
				g := g
				readersWg.Add(1)
				go func() {
					defer readersWg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if bracket((i + g) % len(preds)) {
							validated.Add(1)
						}
					}
				}()
			}
			// Writers run to completion; readers race them throughout and
			// are stopped only after every writer finished.
			writersDone := make(chan struct{})
			go func() { writersWg.Wait(); close(writersDone) }()
			for {
				select {
				case <-writersDone:
				default:
					if bracket(0) {
						validated.Add(1)
					}
					continue
				}
				break
			}
			close(stop)
			readersWg.Wait()

			// Quiesced epilogue: fold everything (clears core's deltas so
			// its stamps are valid again), then every pred must validate a
			// hit — stamps are stable, so the second bracket call of each
			// pred serves the first call's published entry.
			if err := m.maintain(tbl); err != nil {
				t.Fatal(err)
			}
			for i := range preds {
				bracket(i) // publish (or validate a racing-phase entry)
				if !bracket(i) {
					t.Fatalf("pred %d: no validated hit on a quiesced table", i)
				}
			}
			if validated.Load() == 0 {
				t.Fatal("property never exercised: zero validated hits")
			}

			// The normalized between(13,13) key IS the eq(13) key: a probe
			// spelled the other way hits the same entry.
			eqKey := rescache.Key{
				Table: "item", Op: rescache.OpSumWhere,
				Col: workload.ItemPriceCol, Pred: exec.Normalize(exec.Eq[float64](13)), HasPred: true,
			}
			if eqKey != keys[3] {
				t.Fatal("normalize failed to unify eq(13) and between(13,13) keys")
			}
		})
	}
}
