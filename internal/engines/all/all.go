// Package all assembles every surveyed storage engine (paper Section IV)
// with default configurations against one environment. The survey
// harness (cmd/taxonomy), the examples and the cross-engine conformance
// tests build on this single registry.
package all

import (
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/cogadb"
	"hybridstore/internal/engines/es2"
	"hybridstore/internal/engines/gputx"
	"hybridstore/internal/engines/h2o"
	"hybridstore/internal/engines/hyper"
	"hybridstore/internal/engines/hyrise"
	"hybridstore/internal/engines/lstore"
	"hybridstore/internal/engines/mirrors"
	"hybridstore/internal/engines/pax"
	"hybridstore/internal/engines/peloton"
)

// Engines returns the ten surveyed engines in the paper's Table-1 order
// (by publication year), constructed over env with default parameters.
// The reference engine of internal/core is deliberately not part of the
// survey list; it is the paper's proposal, not a surveyed system.
func Engines(env *engine.Env) []engine.Engine {
	return []engine.Engine{
		// 2002
		paxEngine(env),
		mirrors.New(env, 4),
		// 2010-2011
		hyrise.New(env, 0.5),
		es2.New(env, 4, 0),
		gputx.New(env),
		// 2014-2016
		h2o.New(env),
		hyper.New(env, 128),
		cogadb.New(env, 0),
		lstore.New(env),
		peloton.New(env, 0, 0),
	}
}

// ByName returns the engine with the given survey name, or nil.
func ByName(env *engine.Env, name string) engine.Engine {
	for _, e := range Engines(env) {
		if e.Name() == name {
			return e
		}
	}
	return nil
}

// paxEngine builds PAX with the default page size.
func paxEngine(env *engine.Env) engine.Engine { return pax.New(env, 0) }
