package all

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/hyper"
	"hybridstore/internal/engines/lstore"
	"hybridstore/internal/exec"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestConcurrentMixedWorkload is the serving-layer concurrency property:
// 16 goroutines of mixed point writes, predicate aggregations and fused
// group-bys — with compaction/merge maintenance racing them — must never
// trip the race detector, never return a malformed mid-flight answer,
// and must leave the table in exactly the state a serial replay of the
// writes produces. Runs on the three engines the network server can
// front: the reference engine, HyPer and L-Store.
//
// Writers own disjoint row partitions and each ends on a deterministic
// final value, so the final state is independent of interleaving. All
// written prices are integer-valued floats, so aggregate sums are exact
// in any accumulation order and compare bit-for-bit against the replay.
func TestConcurrentMixedWorkload(t *testing.T) {
	const (
		n        = 512
		writers  = 8           // goroutines updating disjoint partitions
		scanners = 5           // SumFloat64Where / CountWhereFloat64 loops
		groupers = 2           // GroupSumFloat64Where loops
		part     = n / writers // rows per writer
		keyCol   = 1           // int32 group key column
		groups   = 7
	)
	const rounds = 12 // update rounds per writer
	// finalPrice is each writer's deterministic last write per row.
	finalPrice := func(row uint64) float64 { return float64(row % 97) }
	preds := []exec.Pred[float64]{
		exec.Lt[float64](40),
		exec.Gt[float64](60),
		exec.Between[float64](10, 80),
		exec.Eq[float64](13),
		exec.Between[float64](5000, 6000), // empty against all written values
	}
	makers := []struct {
		name string
		make func(env *engine.Env) engine.Engine
	}{
		{"core", func(env *engine.Env) engine.Engine {
			return core.New(env, core.Options{ChunkRows: 128})
		}},
		{"HyPer", func(env *engine.Env) engine.Engine { return hyper.New(env, 128) }},
		{"L-Store", func(env *engine.Env) engine.Engine { return lstore.New(env) }},
	}
	for _, m := range makers {
		m := m
		t.Run(m.name, func(t *testing.T) {
			env := engine.NewEnv()
			tbl := loadItems(t, m.make(env), n)
			defer tbl.Free()
			for row := uint64(0); row < n; row++ {
				if err := tbl.Update(row, keyCol, schema.Int32Value(int32(row%groups))); err != nil {
					t.Fatalf("seed key %d: %v", row, err)
				}
			}
			pt, ok := tbl.(predTable)
			if !ok {
				t.Fatalf("%s does not implement the predicate query surface", m.name)
			}
			gt, ok := tbl.(groupTable)
			if !ok {
				t.Fatalf("%s does not implement the fused group-by surface", m.name)
			}
			seal := func() error {
				if c, ok := tbl.(interface{ Compact() (int, error) }); ok {
					if _, err := c.Compact(); err != nil {
						return err
					}
				}
				if mg, ok := tbl.(interface{ Merge() error }); ok {
					return mg.Merge()
				}
				return nil
			}
			if err := seal(); err != nil {
				t.Fatalf("seal: %v", err)
			}

			var (
				done     atomic.Bool // set when writers finish or anything fails
				writerWG sync.WaitGroup
				loopWG   sync.WaitGroup
				errOnce  sync.Once
				firstErr error
			)
			fail := func(err error) {
				errOnce.Do(func() { firstErr = err })
				done.Store(true)
			}

			// Writers: disjoint partitions, integer-valued prices, a
			// deterministic final write per row.
			for w := 0; w < writers; w++ {
				w := w
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					lo := uint64(w * part)
					for iter := 0; iter < rounds && !done.Load(); iter++ {
						for off := uint64(0); off < part; off++ {
							row := lo + off
							v := float64((w*131 + iter*17 + int(off)) % 500)
							if iter == rounds-1 {
								v = finalPrice(row)
							}
							if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(v)); err != nil {
								fail(err)
								return
							}
						}
						// Stretch the write phase so scans and merges
						// genuinely interleave with it.
						time.Sleep(200 * time.Microsecond)
					}
				}()
			}

			// Maintenance: fold deltas into base storage while writes and
			// scans are in flight. Paced — merges are O(table) and a hot
			// loop would dominate the run without adding interleavings.
			loopWG.Add(1)
			go func() {
				defer loopWG.Done()
				for !done.Load() {
					if err := seal(); err != nil {
						fail(err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}()

			// Scanners: every mid-flight answer must be well-formed — a
			// finite sum, a count within [0, n], the empty predicate
			// staying empty — even though the exact value races writers.
			for s := 0; s < scanners; s++ {
				s := s
				loopWG.Add(1)
				go func() {
					defer loopWG.Done()
					r := rand.New(rand.NewSource(int64(1000 + s)))
					for !done.Load() {
						k := r.Intn(len(preds))
						p := preds[k]
						sum, cnt, err := pt.SumFloat64Where(workload.ItemPriceCol, p)
						if err != nil {
							fail(err)
							return
						}
						if math.IsNaN(sum) || math.IsInf(sum, 0) || cnt < 0 || cnt > n {
							t.Errorf("mid-flight sum malformed: (%v, %d)", sum, cnt)
							done.Store(true)
							return
						}
						if k == len(preds)-1 && (cnt != 0 || sum != 0) {
							t.Errorf("empty predicate matched mid-flight: (%v, %d)", sum, cnt)
							done.Store(true)
							return
						}
						cnt2, err := pt.CountWhereFloat64(workload.ItemPriceCol, p)
						if err != nil {
							fail(err)
							return
						}
						if cnt2 < 0 || cnt2 > n {
							t.Errorf("mid-flight count malformed: %d", cnt2)
							done.Store(true)
							return
						}
						// Yield between scans: a continuous reader stream
						// would serialize every write behind a full scan.
						time.Sleep(100 * time.Microsecond)
					}
				}()
			}

			// Group-by scanners: keys sorted and in-domain, cardinalities
			// within [1, n], totals no larger than the table.
			for g := 0; g < groupers; g++ {
				g := g
				loopWG.Add(1)
				go func() {
					defer loopWG.Done()
					r := rand.New(rand.NewSource(int64(2000 + g)))
					for !done.Load() {
						p := preds[r.Intn(len(preds))]
						res, err := gt.GroupSumFloat64Where(keyCol, workload.ItemPriceCol, p)
						if err != nil {
							fail(err)
							return
						}
						var total int64
						for i, gr := range res {
							if i > 0 && res[i-1].Key >= gr.Key {
								t.Errorf("group keys out of order: %v", res)
								done.Store(true)
								return
							}
							if gr.Key < 0 || gr.Key >= groups || gr.Count < 1 || gr.Count > n {
								t.Errorf("malformed group %+v", gr)
								done.Store(true)
								return
							}
							total += gr.Count
						}
						if total > n {
							t.Errorf("group counts total %d > %d rows", total, n)
							done.Store(true)
							return
						}
						time.Sleep(100 * time.Microsecond)
					}
				}()
			}

			writerWG.Wait()
			done.Store(true)
			loopWG.Wait()
			if firstErr != nil {
				t.Fatalf("concurrent phase: %v", firstErr)
			}
			if t.Failed() {
				return
			}
			if err := seal(); err != nil {
				t.Fatalf("final seal: %v", err)
			}

			// Serial replay: the quiesced table must equal the final write
			// set exactly — point reads, predicate aggregates, and grouped
			// aggregates, all bit-identical.
			prices := make([]float64, n)
			for row := uint64(0); row < n; row++ {
				prices[row] = finalPrice(row)
				rec, err := tbl.Get(row)
				if err != nil {
					t.Fatalf("Get(%d): %v", row, err)
				}
				if got := rec[workload.ItemPriceCol].F; math.Float64bits(got) != math.Float64bits(prices[row]) {
					t.Fatalf("row %d: price %v, want %v", row, got, prices[row])
				}
			}
			for k, p := range preds {
				var wantSum float64
				var wantN int64
				for _, x := range prices {
					if p.Match(x) {
						wantSum += x
						wantN++
					}
				}
				gotSum, gotN, err := pt.SumFloat64Where(workload.ItemPriceCol, p)
				if err != nil {
					t.Fatalf("final SumFloat64Where(%v): %v", p, err)
				}
				if gotSum != wantSum || gotN != wantN {
					t.Errorf("pred %d (%v): final (%v, %d), replay (%v, %d)", k, p, gotSum, gotN, wantSum, wantN)
				}
				want := make(map[int64]*exec.GroupResult)
				for row, x := range prices {
					if !p.Match(x) {
						continue
					}
					key := int64(row % groups)
					gr := want[key]
					if gr == nil {
						gr = &exec.GroupResult{Key: key}
						want[key] = gr
					}
					gr.Sum += x
					gr.Count++
				}
				res, err := gt.GroupSumFloat64Where(keyCol, workload.ItemPriceCol, p)
				if err != nil {
					t.Fatalf("final GroupSumFloat64Where(%v): %v", p, err)
				}
				if len(res) != len(want) {
					t.Fatalf("pred %d: %d groups, replay has %d", k, len(res), len(want))
				}
				for _, gr := range res {
					w := want[gr.Key]
					if w == nil || gr.Sum != w.Sum || gr.Count != w.Count {
						t.Errorf("pred %d group %d: (%v, %d), replay %+v", k, gr.Key, gr.Sum, gr.Count, w)
					}
				}
			}
		})
	}
}
