package all

import (
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/exec/pool"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// loadItems creates a table of n deterministic item records on e.
func loadItems(t *testing.T, e engine.Engine, n uint64) engine.Table {
	t.Helper()
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatalf("%s: Create: %v", e.Name(), err)
	}
	err = workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		row, err := tbl.Insert(rec)
		if err != nil {
			return err
		}
		if row != i {
			t.Fatalf("%s: insert %d landed at row %d", e.Name(), i, row)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: load: %v", e.Name(), err)
	}
	return tbl
}

// TestConformance runs every surveyed engine through the same behaviour
// suite under each host execution policy: the answers to the paper's two
// query archetypes must be identical across all ten engines on identical
// data, whether operators run sequentially, blockwise, or morsel-driven
// on the shared pool.
func TestConformance(t *testing.T) {
	const n = 700
	// Shrink the morsel granularity so the 700-row tables genuinely
	// dispatch multi-morsel jobs through the shared pool.
	pool.SetMorselSize(128)
	pool.SetWorkers(4)
	t.Cleanup(func() {
		pool.SetMorselSize(0)
		pool.SetWorkers(0)
	})
	before := obs.TakeSnapshot()
	for _, policy := range []exec.Policy{exec.SingleThreaded, exec.MultiThreaded, exec.MorselDriven} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			env := engine.NewEnv()
			env.ExecPolicy = policy
			conformanceSuite(t, env, n)
		})
	}
	// The observability layer must have seen the suite: every policy ran
	// aggregations and materializations on every engine, and the
	// morsel-driven pass dispatched multi-morsel jobs through the pool.
	after := obs.TakeSnapshot()
	for _, policy := range []exec.Policy{exec.SingleThreaded, exec.MultiThreaded, exec.MorselDriven} {
		for _, op := range []string{"sum", "materialize"} {
			name := "exec." + op + "." + policy.String() + ".ops"
			if after.Counter(name) <= before.Counter(name) {
				t.Errorf("counter %s did not advance over the conformance suite", name)
			}
		}
	}
	if after.Counter("pool.jobs_submitted") <= before.Counter("pool.jobs_submitted") {
		t.Error("pool.jobs_submitted did not advance over the morsel-driven pass")
	}
	// The fused group-by query above must have flowed through the fused
	// operator's telemetry: ops and emitted groups counted, latency
	// recorded in the histogram.
	for _, name := range []string{"exec.groupby.fused.ops", "exec.groupby.fused.groups"} {
		if after.Counter(name) <= before.Counter(name) {
			t.Errorf("counter %s did not advance over the conformance suite", name)
		}
	}
	if after.Histograms["exec.groupby.fused.ns"].Count <= before.Histograms["exec.groupby.fused.ns"].Count {
		t.Error("histogram exec.groupby.fused.ns did not record over the conformance suite")
	}
}

func conformanceSuite(t *testing.T, env *engine.Env, n uint64) {
	for _, e := range Engines(env) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			tbl := loadItems(t, e, n)
			defer tbl.Free()

			if got := tbl.Rows(); got != n {
				t.Fatalf("Rows = %d, want %d", got, n)
			}

			// Point reads return the generated records.
			for _, row := range []uint64{0, 1, n / 2, n - 1} {
				rec, err := tbl.Get(row)
				if err != nil {
					t.Fatalf("Get(%d): %v", row, err)
				}
				if !rec.Equal(workload.Item(row)) {
					t.Fatalf("Get(%d) = %v, want %v", row, rec, workload.Item(row))
				}
			}
			if _, err := tbl.Get(n); err == nil {
				t.Fatal("Get past end succeeded")
			}

			// Attribute-centric aggregate (Q2).
			sum, err := tbl.SumFloat64(workload.ItemPriceCol)
			if err != nil {
				t.Fatalf("SumFloat64: %v", err)
			}
			want := workload.ExpectedItemPriceSum(n)
			if math.Abs(sum-want) > 1e-6 {
				t.Fatalf("sum = %v, want %v", sum, want)
			}

			// Updates are visible to both access patterns.
			if err := tbl.Update(3, workload.ItemPriceCol, schema.FloatValue(1000)); err != nil {
				t.Fatalf("Update: %v", err)
			}
			rec, err := tbl.Get(3)
			if err != nil || rec[workload.ItemPriceCol].F != 1000 {
				t.Fatalf("updated Get = %v, %v", rec, err)
			}
			sum2, err := tbl.SumFloat64(workload.ItemPriceCol)
			if err != nil {
				t.Fatalf("SumFloat64 after update: %v", err)
			}
			want2 := want - workload.ItemPrice(3) + 1000
			if math.Abs(sum2-want2) > 1e-6 {
				t.Fatalf("post-update sum = %v, want %v", sum2, want2)
			}
			if err := tbl.Update(n, 0, schema.IntValue(0)); err == nil {
				t.Fatal("Update past end succeeded")
			}

			// Fused predicate→group-by (the grouped flavor of Q2): one
			// pass computes filter, keys and aggregate together. The
			// i_im_id keys are singletons at this row count, so every
			// matching row is its own group with its own price.
			gt, ok := tbl.(interface {
				GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error)
			})
			if !ok {
				t.Fatalf("%s does not implement the fused group-by surface", e.Name())
			}
			gp := exec.Between(2.0, 3.0)
			wantGroups := map[int64]float64{}
			for i := uint64(0); i < n; i++ {
				price := workload.ItemPrice(i)
				if i == 3 {
					price = 1000
				}
				if gp.Match(price) {
					wantGroups[int64(i%100000)] = price
				}
			}
			// Three repetitions per engine: 90 fused calls across the
			// suite guarantee the 1-in-64 sampled latency histogram
			// records at least once inside the assertion window.
			for rep := 0; rep < 3; rep++ {
				groups, err := gt.GroupSumFloat64Where(1, workload.ItemPriceCol, gp)
				if err != nil {
					t.Fatalf("GroupSumFloat64Where: %v", err)
				}
				if len(groups) != len(wantGroups) {
					t.Fatalf("fused group-by returned %d groups, want %d", len(groups), len(wantGroups))
				}
				for _, g := range groups {
					wantPrice, ok := wantGroups[g.Key]
					if !ok {
						t.Fatalf("unexpected group %d", g.Key)
					}
					if g.Count != 1 || math.Abs(g.Sum-wantPrice) > 1e-9 {
						t.Fatalf("group %d = (%v, %d), want (%v, 1)", g.Key, g.Sum, g.Count, wantPrice)
					}
				}
			}

			// Record-centric materialization (Q1 generalized).
			r := rand.New(rand.NewSource(7))
			positions := workload.PositionList(r, 150, n)
			recs, err := tbl.Materialize(positions)
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if len(recs) != 150 {
				t.Fatalf("materialized %d records", len(recs))
			}
			for i, pos := range positions {
				wantRec := workload.Item(pos)
				if pos == 3 {
					wantRec[workload.ItemPriceCol] = schema.FloatValue(1000)
				}
				if !recs[i].Equal(wantRec) {
					t.Fatalf("materialized[%d] (row %d) = %v, want %v", i, pos, recs[i], wantRec)
				}
			}
			if _, err := tbl.Materialize([]uint64{n}); err == nil {
				t.Fatal("Materialize past end succeeded")
			}

			// Arity mismatch on insert.
			if _, err := tbl.Insert(schema.Record{schema.IntValue(1)}); err == nil {
				t.Fatal("short record accepted")
			}
		})
	}
}

// TestClassificationConsistency audits every engine against the
// taxonomy's rules: the classification derived from its live structure
// must be violation-free.
func TestClassificationConsistency(t *testing.T) {
	for _, e := range Engines(engine.NewEnv()) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			tbl := loadItems(t, e, 300)
			defer tbl.Free()
			c, violations, err := engine.Audit(e, tbl)
			if err != nil {
				t.Fatalf("Audit: %v", err)
			}
			for _, v := range violations {
				t.Errorf("violation: %v", v)
			}
			if c.Name != e.Name() {
				t.Errorf("classification name %q", c.Name)
			}
		})
	}
}

// paperRow is the expected Table-1 row of the paper for one engine.
type paperRow struct {
	handling     taxonomy.LayoutHandling
	flexibility  taxonomy.LayoutFlexibility
	adaptability taxonomy.LayoutAdaptability
	working      taxonomy.LocationKind
	primary      taxonomy.LocationKind
	locality     taxonomy.Locality
	lin          taxonomy.LinearizationClass
	scheme       taxonomy.FragmentScheme
	procs        taxonomy.ProcessorSupport
	workloads    taxonomy.WorkloadSupport
	year         int
}

// TestTable1MatchesPaper pins each engine's derived classification to the
// paper's published Table 1 (Section IV). This is the reproduction of the
// survey: the rows are not hard-coded into the engines — they fall out of
// the classifier run against each engine's live layout structure.
func TestTable1MatchesPaper(t *testing.T) {
	expect := map[string]paperRow{
		"PAX": {
			taxonomy.SingleLayout, taxonomy.Inflexible, taxonomy.Static,
			taxonomy.LocHost, taxonomy.LocSecondary, taxonomy.Centralized,
			taxonomy.FatDSMFixed, taxonomy.SchemeNone, taxonomy.CPUOnly, taxonomy.HTAP, 2002,
		},
		"Fractured Mirrors": {
			taxonomy.MultiLayoutBuiltIn, taxonomy.Inflexible, taxonomy.Static,
			taxonomy.LocHost, taxonomy.LocSecondary, taxonomy.Centralized,
			taxonomy.FatNSMPlusDSMFixed, taxonomy.SchemeReplication, taxonomy.CPUOnly, taxonomy.HTAP, 2002,
		},
		"HYRISE": {
			taxonomy.SingleLayout, taxonomy.WeakFlexible, taxonomy.Responsive,
			taxonomy.LocHost, taxonomy.LocHost, taxonomy.Centralized,
			taxonomy.FatVariable, taxonomy.SchemeNone, taxonomy.CPUOnly, taxonomy.HTAP, 2010,
		},
		"ES2": {
			taxonomy.MultiLayoutBuiltIn, taxonomy.StrongFlexibleConstrained, taxonomy.Responsive,
			taxonomy.LocSecondary, taxonomy.LocSecondary, taxonomy.Distributed,
			taxonomy.FatDSMFixed, taxonomy.SchemeDelegation, taxonomy.CPUOnly, taxonomy.HTAP, 2011,
		},
		"GPUTx": {
			taxonomy.SingleLayout, taxonomy.WeakFlexible, taxonomy.Static,
			taxonomy.LocDevice, taxonomy.LocDevice, taxonomy.Centralized,
			taxonomy.ThinDSMEmulated, taxonomy.SchemeNone, taxonomy.GPUOnly, taxonomy.OLTP, 2011,
		},
		"H2O": {
			taxonomy.SingleLayout, taxonomy.WeakFlexible, taxonomy.Responsive,
			taxonomy.LocHost, taxonomy.LocHost, taxonomy.Centralized,
			taxonomy.VarNSMFixedPartDSMEmulated, taxonomy.SchemeNone, taxonomy.CPUOnly, taxonomy.HTAP, 2014,
		},
		"HyPer": {
			taxonomy.SingleLayout, taxonomy.StrongFlexibleConstrained, taxonomy.Responsive,
			taxonomy.LocHost, taxonomy.LocHost, taxonomy.Centralized,
			taxonomy.ThinDSMEmulated, taxonomy.SchemeNone, taxonomy.CPUOnly, taxonomy.HTAP, 2015,
		},
		"CoGaDB": {
			taxonomy.MultiLayoutBuiltIn, taxonomy.WeakFlexible, taxonomy.Static,
			taxonomy.LocMixed, taxonomy.LocMixed, taxonomy.Distributed,
			taxonomy.ThinDSMEmulated, taxonomy.SchemeReplication, taxonomy.CPUAndGPU, taxonomy.OLAP, 2016,
		},
		"L-Store": {
			taxonomy.SingleLayout, taxonomy.StrongFlexibleConstrained, taxonomy.Responsive,
			taxonomy.LocHost, taxonomy.LocHost, taxonomy.Centralized,
			taxonomy.ThinDSMEmulated, taxonomy.SchemeDelegation, taxonomy.CPUOnly, taxonomy.HTAP, 2016,
		},
		"Peloton": {
			taxonomy.MultiLayoutBuiltIn, taxonomy.StrongFlexibleConstrained, taxonomy.Responsive,
			taxonomy.LocHost, taxonomy.LocHost, taxonomy.Centralized,
			taxonomy.FatVariable, taxonomy.SchemeDelegation, taxonomy.CPUOnly, taxonomy.HTAP, 2016,
		},
	}

	env := engine.NewEnv()
	for _, e := range Engines(env) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			want, ok := expect[e.Name()]
			if !ok {
				t.Fatalf("engine %q not in the paper's table", e.Name())
			}
			tbl := prepareForClassification(t, e)
			defer tbl.Free()
			c, err := engine.Classify(e, tbl)
			if err != nil {
				t.Fatalf("Classify: %v", err)
			}
			if c.Handling != want.handling {
				t.Errorf("handling = %v, want %v", c.Handling, want.handling)
			}
			if c.Flexibility != want.flexibility {
				t.Errorf("flexibility = %v, want %v", c.Flexibility, want.flexibility)
			}
			if c.Adaptability != want.adaptability {
				t.Errorf("adaptability = %v, want %v", c.Adaptability, want.adaptability)
			}
			if c.Working != want.working {
				t.Errorf("working = %v, want %v", c.Working, want.working)
			}
			if c.Primary != want.primary {
				t.Errorf("primary = %v, want %v", c.Primary, want.primary)
			}
			if c.Locality != want.locality {
				t.Errorf("locality = %v, want %v", c.Locality, want.locality)
			}
			if c.Linearization != want.lin {
				t.Errorf("linearization = %v, want %v", c.Linearization, want.lin)
			}
			if c.Scheme != want.scheme {
				t.Errorf("scheme = %v, want %v", c.Scheme, want.scheme)
			}
			if c.Processors != want.procs {
				t.Errorf("processors = %v, want %v", c.Processors, want.procs)
			}
			if c.Workloads != want.workloads {
				t.Errorf("workloads = %v, want %v", c.Workloads, want.workloads)
			}
			if c.Year != want.year {
				t.Errorf("year = %d, want %d", c.Year, want.year)
			}
		})
	}
}

// prepareForClassification loads a table and drives engine-specific state
// so the structural snapshot exhibits the engine's characteristic shape
// (e.g. CoGaDB needs a placed device column to show its mixed location;
// adaptive engines show their characteristic grouping after observing a
// mixed workload).
func prepareForClassification(t *testing.T, e engine.Engine) engine.Table {
	t.Helper()
	tbl := loadItems(t, e, 300)
	type placer interface{ Place(c int) error }
	if p, ok := tbl.(placer); ok {
		if err := p.Place(workload.ItemPriceCol); err != nil {
			t.Fatalf("%s: Place: %v", e.Name(), err)
		}
	}
	if a, ok := tbl.(engine.Adaptive); ok && (e.Name() == "HYRISE" || e.Name() == "H2O") {
		// Drive the adaptive CPU stores into their characteristic mixed
		// state: co-accessed record-centric attributes fuse into a fat
		// NSM region while the scan-dominated price column goes thin.
		for i := 0; i < 50; i++ {
			a.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
			a.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{4}})
		}
		if _, err := a.Adapt(); err != nil {
			t.Fatalf("%s Adapt: %v", e.Name(), err)
		}
	}
	if e.Name() == "ES2" {
		// Several partition stripes make the combined (strong flexible)
		// two-step fragmentation visible in the snapshot. Ids continue
		// past the loaded prefix (the pk index rejects duplicates).
		if err := workload.Generate(900, func(i uint64) schema.Record {
			return workload.Item(300 + i)
		}, func(i uint64, rec schema.Record) error {
			_, err := tbl.Insert(rec)
			return err
		}); err != nil {
			t.Fatalf("ES2 growth: %v", err)
		}
	}
	if e.Name() == "Peloton" {
		type transformer interface {
			Observe(op workload.Op)
			Adapt() (bool, error)
		}
		a := tbl.(transformer)
		for i := 0; i < 50; i++ {
			a.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{4}})
			a.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
		}
		if _, err := a.Adapt(); err != nil {
			t.Fatalf("Peloton Adapt: %v", err)
		}
		// Trigger new tile groups under the new advice so the relation
		// mixes groupings (the FSM archipelago).
		if err := workload.Generate(2000, workload.Item, func(i uint64, rec schema.Record) error {
			_, err := tbl.Insert(rec)
			return err
		}); err != nil {
			t.Fatalf("Peloton growth: %v", err)
		}
	}
	return tbl
}
