package all

import (
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// groupTable is the fused predicate→group-by surface every surveyed
// engine (and the reference engine) must offer: one pass computes the
// filter, the group keys and the aggregate together, with no
// intermediate selection vector or materialized copy.
type groupTable interface {
	GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error)
}

// groupItem is workload.Item with the i_im_id column re-purposed as a
// small int32 group key (7 groups) and the price column as an
// integer-valued aggregate over [0, 97) — integer-valued so group sums
// are exact in any accumulation order — poisoned with NaN on every
// 53rd-ish row to pin the predicate (not the arithmetic) as the only
// NaN filter.
func groupItem(i uint64) schema.Record {
	rec := workload.Item(i)
	rec[1] = schema.Int32Value(int32((i * 31) % 7))
	price := float64(int64((i * 13) % 97))
	if i%53 == 9 {
		price = math.NaN()
	}
	rec[workload.ItemPriceCol] = schema.FloatValue(price)
	return rec
}

// randomGroupPred draws predicates over the [0, 97) price domain plus
// the post-update outliers (599, 800): point, half-open, interval,
// outlier-only and provably-empty shapes.
func randomGroupPred(r *rand.Rand) exec.Pred[float64] {
	switch r.Intn(6) {
	case 0:
		return exec.Eq(float64(r.Intn(97)))
	case 1:
		return exec.Lt(r.Float64() * 97)
	case 2:
		return exec.Gt(r.Float64() * 97)
	case 3:
		lo := r.Float64() * 80
		return exec.Between(lo, lo+r.Float64()*25)
	case 4:
		// Catches only the post-update outliers.
		return exec.Gt[float64](400)
	default:
		// Provably empty: above the domain and the outliers.
		return exec.Between[float64](2000, 3000)
	}
}

// TestGroupFusionPropertyAllEngines is the fused group-by correctness
// property: for randomized predicates across all selectivities, the
// single-pass fused operator must return exactly the groups the
// record-centric path computes row by row — on every surveyed engine
// plus the reference engine, under every host execution policy, through
// updates that move a row between groups and push values outside sealed
// zones. NaN values must fall out of every group via the predicate.
func TestGroupFusionPropertyAllEngines(t *testing.T) {
	const n = 600
	const keyCol = 1 // int32 group key: exercises the 4-byte key path
	before := obs.TakeSnapshot()
	for _, policy := range []exec.Policy{exec.SingleThreaded, exec.MultiThreaded, exec.MorselDriven} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			env := engine.NewEnv()
			env.ExecPolicy = policy
			engines := Engines(env)
			engines = append(engines, core.New(env, core.Options{ChunkRows: 128}))
			for _, e := range engines {
				e := e
				t.Run(e.Name(), func(t *testing.T) {
					tbl, err := e.Create("item", workload.ItemSchema())
					if err != nil {
						t.Fatalf("Create: %v", err)
					}
					defer tbl.Free()
					if err := workload.Generate(n, groupItem, func(i uint64, rec schema.Record) error {
						_, err := tbl.Insert(rec)
						return err
					}); err != nil {
						t.Fatalf("load: %v", err)
					}
					gt, ok := tbl.(groupTable)
					if !ok {
						t.Fatalf("%s does not implement the fused group-by surface", e.Name())
					}

					// Seal zones at the engine's natural freeze point…
					if c, ok := tbl.(interface{ Compact() (int, error) }); ok {
						if _, err := c.Compact(); err != nil {
							t.Fatalf("Compact: %v", err)
						}
					}
					if m, ok := tbl.(interface{ Merge() error }); ok {
						if err := m.Merge(); err != nil {
							t.Fatalf("Merge: %v", err)
						}
					}
					// …then update through it: row 5 moves to a brand-new
					// group, rows 99 and 300 take values far outside the
					// sealed zone bounds.
					if err := tbl.Update(5, keyCol, schema.Int32Value(99)); err != nil {
						t.Fatalf("Update key: %v", err)
					}
					if err := tbl.Update(99, workload.ItemPriceCol, schema.FloatValue(599)); err != nil {
						t.Fatalf("Update(99): %v", err)
					}
					if err := tbl.Update(300, workload.ItemPriceCol, schema.FloatValue(800)); err != nil {
						t.Fatalf("Update(300): %v", err)
					}

					// One record-centric pass caches the authoritative
					// key/value columns; every predicate checks against them.
					keys := make([]int64, n)
					vals := make([]float64, n)
					for row := uint64(0); row < n; row++ {
						rec, err := tbl.Get(row)
						if err != nil {
							t.Fatalf("Get(%d): %v", row, err)
						}
						keys[row] = rec[keyCol].I
						vals[row] = rec[workload.ItemPriceCol].F
					}

					r := rand.New(rand.NewSource(int64(37*len(e.Name())) + int64(policy)))
					for i := 0; i < 24; i++ {
						p := randomGroupPred(r)
						want := map[int64]*exec.GroupResult{}
						for row := 0; row < n; row++ {
							if p.Match(vals[row]) {
								g := want[keys[row]]
								if g == nil {
									g = &exec.GroupResult{Key: keys[row]}
									want[keys[row]] = g
								}
								g.Sum += vals[row]
								g.Count++
							}
						}
						got, err := gt.GroupSumFloat64Where(keyCol, workload.ItemPriceCol, p)
						if err != nil {
							t.Fatalf("GroupSumFloat64Where(%v): %v", p, err)
						}
						if len(got) != len(want) {
							t.Fatalf("%v: %d groups, want %d", p, len(got), len(want))
						}
						for j, g := range got {
							if j > 0 && got[j-1].Key >= g.Key {
								t.Fatalf("%v: groups not key-sorted at %d", p, j)
							}
							if g.Count <= 0 {
								t.Fatalf("%v: empty group %d survived", p, g.Key)
							}
							w := want[g.Key]
							if w == nil {
								t.Fatalf("%v: unexpected group %d", p, g.Key)
							}
							if g.Count != w.Count {
								t.Errorf("%v: group %d count = %d, want %d", p, g.Key, g.Count, w.Count)
							}
							if math.Abs(g.Sum-w.Sum) > 1e-9 {
								t.Errorf("%v: group %d sum = %v, want %v", p, g.Key, g.Sum, w.Sum)
							}
						}
					}
				})
			}
		})
	}
	// The fused operator must have been exercised and produced groups.
	after := obs.TakeSnapshot()
	if after.Counter("exec.groupby.fused.ops") <= before.Counter("exec.groupby.fused.ops") {
		t.Error("exec.groupby.fused.ops did not advance over the property suite")
	}
	if after.Counter("exec.groupby.fused.groups") <= before.Counter("exec.groupby.fused.groups") {
		t.Error("exec.groupby.fused.groups did not advance over the property suite")
	}
}

// TestGroupFusionDeviceFallback forces the reference engine's device
// group path to refuse (a device too small to hold any fragment) and
// checks the query still answers exactly through the host fused
// operator, counting the abandonment.
func TestGroupFusionDeviceFallback(t *testing.T) {
	const n = 600
	env := engine.NewEnv()
	prof := perfmodel.DefaultDevice()
	prof.GlobalMemory = 64 // no fragment fits: every Alloc refuses
	env.GPU = device.New(prof, env.Clock)
	env.Cache = device.NewFragCache(env.GPU)

	e := core.New(env, core.Options{ChunkRows: 128, DeviceCache: true})
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer tbl.Free()
	if err := workload.Generate(n, groupItem, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(rec)
		return err
	}); err != nil {
		t.Fatalf("load: %v", err)
	}
	gt := tbl.(groupTable)

	before := obs.TakeSnapshot()
	p := exec.Between[float64](0, 96)
	got, err := gt.GroupSumFloat64Where(1, workload.ItemPriceCol, p)
	if err != nil {
		t.Fatalf("GroupSumFloat64Where: %v", err)
	}
	after := obs.TakeSnapshot()
	if after.Counter("exec.groupby.fused.fallbacks") <= before.Counter("exec.groupby.fused.fallbacks") {
		t.Error("exec.groupby.fused.fallbacks did not advance when the device refused")
	}

	want := map[int64]*exec.GroupResult{}
	for i := uint64(0); i < n; i++ {
		rec := groupItem(i)
		if p.Match(rec[workload.ItemPriceCol].F) {
			g := want[rec[1].I]
			if g == nil {
				g = &exec.GroupResult{Key: rec[1].I}
				want[rec[1].I] = g
			}
			g.Sum += rec[workload.ItemPriceCol].F
			g.Count++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for _, g := range got {
		w := want[g.Key]
		if w == nil || g.Count != w.Count || math.Abs(g.Sum-w.Sum) > 1e-9 {
			t.Errorf("group %d = (%v, %d), want %+v", g.Key, g.Sum, g.Count, w)
		}
	}
}
