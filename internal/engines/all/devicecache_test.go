package all

import (
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/cogadb"
	"hybridstore/internal/engines/hyper"
	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestDeviceCacheProperty is the fragment-cache correctness property:
// with device caching enabled, randomized interleavings of point writes,
// merges and scans must return exactly what a host-side ground-truth
// array computes — i.e. cached execution is indistinguishable from
// uncached except in bus traffic. Runs on the three engines that consume
// the cache: the reference engine, CoGaDB (HyPE may route any scan to
// the gpu-cache placement) and HyPer (device scans over frozen chunks).
func TestDeviceCacheProperty(t *testing.T) {
	const n = 600
	before := obs.TakeSnapshot()
	makers := []struct {
		name string
		make func(env *engine.Env) engine.Engine
	}{
		{"core", func(env *engine.Env) engine.Engine {
			return core.New(env, core.Options{ChunkRows: 128, DeviceCache: true})
		}},
		{"CoGaDB", func(env *engine.Env) engine.Engine {
			e := cogadb.New(env, 0)
			e.DeviceCache = true
			return e
		}},
		{"HyPer", func(env *engine.Env) engine.Engine {
			e := hyper.New(env, 128)
			e.DeviceScan = true
			return e
		}},
	}
	for _, m := range makers {
		m := m
		t.Run(m.name, func(t *testing.T) {
			env := engine.NewEnv()
			tbl := loadItems(t, m.make(env), n)
			defer tbl.Free()
			pt, ok := tbl.(predTable)
			if !ok {
				t.Fatalf("%s does not implement the predicate query surface", m.name)
			}
			seal := func() {
				if c, ok := tbl.(interface{ Compact() (int, error) }); ok {
					if _, err := c.Compact(); err != nil {
						t.Fatalf("Compact: %v", err)
					}
				}
				if mg, ok := tbl.(interface{ Merge() error }); ok {
					if err := mg.Merge(); err != nil {
						t.Fatalf("Merge: %v", err)
					}
				}
			}
			seal()

			prices := make([]float64, n)
			for row := uint64(0); row < n; row++ {
				rec, err := tbl.Get(row)
				if err != nil {
					t.Fatalf("Get(%d): %v", row, err)
				}
				prices[row] = rec[workload.ItemPriceCol].F
			}

			r := rand.New(rand.NewSource(int64(17 * len(m.name))))
			for i := 0; i < 60; i++ {
				switch op := r.Intn(10); {
				case op < 3: // point write
					row := uint64(r.Intn(n))
					val := math.Floor(r.Float64()*900) / 100
					if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(val)); err != nil {
						t.Fatalf("Update(%d): %v", row, err)
					}
					prices[row] = val
				case op == 3: // fold deltas in, invalidating written fragments
					seal()
				default: // scan; mostly closed predicates so the device path engages
					var p exec.Pred[float64]
					if r.Intn(4) == 0 {
						p = randomPred(r)
					} else {
						lo := r.Float64() * 8
						p = exec.Between(lo, lo+r.Float64()*4)
					}
					var wantSum float64
					var wantN int64
					for _, x := range prices {
						if p.Match(x) {
							wantSum += x
							wantN++
						}
					}
					gotSum, gotN, err := pt.SumFloat64Where(workload.ItemPriceCol, p)
					if err != nil {
						t.Fatalf("SumFloat64Where(%v): %v", p, err)
					}
					if gotN != wantN {
						t.Errorf("op %d: %v: count = %d, want %d", i, p, gotN, wantN)
					}
					if math.Abs(gotSum-wantSum) > 1e-6 {
						t.Errorf("op %d: %v: sum = %v, want %v", i, p, gotSum, wantSum)
					}
				}
			}
		})
	}
	// The suite must actually have exercised the cache, not just host
	// fallbacks: both cold uploads and warm reuses have to appear.
	after := obs.TakeSnapshot()
	if after.Counter("device.cache.misses") <= before.Counter("device.cache.misses") {
		t.Error("device.cache.misses did not advance: cache path never ran")
	}
	if after.Counter("device.cache.hits") <= before.Counter("device.cache.hits") {
		t.Error("device.cache.hits did not advance: no scan reused a resident image")
	}
}

// TestDeviceCacheWarmScanZeroBusBytes pins the headline behaviour: a
// repeated device scan over unchanged fragments costs zero H2D bytes,
// and a merged write re-ships exactly the written fragment, not the
// table.
func TestDeviceCacheWarmScanZeroBusBytes(t *testing.T) {
	const (
		chunkRows = 128
		coldFrags = 4
		n         = (coldFrags + 1) * chunkRows // one chunk stays hot
	)
	env := engine.NewEnv()
	tbl := loadItems(t, core.New(env, core.Options{ChunkRows: chunkRows, HotChunks: 1, DeviceCache: true}), n)
	defer tbl.Free()
	pt := tbl.(predTable)
	p := exec.Between[float64](0, 1000) // closed, admits every zone

	scan := func() (float64, int64) {
		t.Helper()
		sum, cnt, err := pt.SumFloat64Where(workload.ItemPriceCol, p)
		if err != nil {
			t.Fatalf("SumFloat64Where: %v", err)
		}
		return sum, cnt
	}

	sum1, n1 := scan()
	cold := env.GPU.Stats().HostToDeviceBytes
	if cold != coldFrags*chunkRows*8 {
		t.Fatalf("cold scan shipped %d H2D bytes, want %d (every cold fragment once)", cold, coldFrags*chunkRows*8)
	}

	sum2, n2 := scan()
	if warm := env.GPU.Stats().HostToDeviceBytes - cold; warm != 0 {
		t.Errorf("warm scan shipped %d H2D bytes, want 0", warm)
	}
	if sum1 != sum2 || n1 != n2 {
		t.Errorf("warm scan answer drifted: (%v, %d) vs (%v, %d)", sum2, n2, sum1, n1)
	}

	// Write one row and fold it into the base: only that row's fragment
	// may cross the bus again.
	if err := tbl.Update(chunkRows+5, workload.ItemPriceCol, schema.FloatValue(3.25)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := tbl.(interface{ Merge() error }).Merge(); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	base := env.GPU.Stats().HostToDeviceBytes
	sum3, n3 := scan()
	reshipped := env.GPU.Stats().HostToDeviceBytes - base
	if reshipped != chunkRows*8 {
		t.Errorf("post-write scan re-shipped %d bytes, want exactly one fragment (%d)", reshipped, chunkRows*8)
	}
	if n3 != n1 {
		t.Errorf("post-write count = %d, want %d", n3, n1)
	}
	wantSum := sum1 // replaced price for row chunkRows+5
	{
		rec, err := tbl.Get(chunkRows + 5)
		if err != nil {
			t.Fatal(err)
		}
		if rec[workload.ItemPriceCol].F != 3.25 {
			t.Fatalf("merge lost the update: price = %v", rec[workload.ItemPriceCol].F)
		}
	}
	old := workload.ItemPrice(chunkRows + 5)
	wantSum += 3.25 - old
	if math.Abs(sum3-wantSum) > 1e-6 {
		t.Errorf("post-write sum = %v, want %v", sum3, wantSum)
	}
}
