package all

import (
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// predTable is the sargable-predicate query surface every engine (and
// the reference engine) must offer: fused aggregation with zone-map
// pruning. The eight common.Table-backed engines inherit it; core,
// L-Store and GPUTx implement it against their own storage.
type predTable interface {
	SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error)
	CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error)
}

// randomPred draws a predicate over the item price domain ([1, ~7) for
// the row counts used here, plus post-update outliers around 500-800),
// spanning empty, sliver, moderate and full-range selectivities.
func randomPred(r *rand.Rand) exec.Pred[float64] {
	switch r.Intn(6) {
	case 0:
		return exec.Eq(workload.ItemPrice(uint64(r.Intn(1000))))
	case 1:
		return exec.Lt(r.Float64() * 9)
	case 2:
		return exec.Gt(r.Float64() * 9)
	case 3:
		lo := 1 + r.Float64()*6
		return exec.Between(lo, lo+r.Float64()*1.5)
	case 4:
		// Catches only the post-update outliers (if any match).
		return exec.Gt[float64](100)
	default:
		// Provably empty between the generated domain and the outliers.
		return exec.Between[float64](20, 30)
	}
}

// TestPrunePropertyAllEngines is the zone-map correctness property: for
// randomized predicates across all selectivities, the pruned fused
// operators must return exactly the answer the record-centric path
// computes row by row — on every surveyed engine plus the reference
// engine, under every host execution policy. Counts are compared
// bit-exactly; sums to a float tolerance (the accumulation order over
// partitions differs from the sequential ground-truth loop).
func TestPrunePropertyAllEngines(t *testing.T) {
	const n = 600
	before := obs.TakeSnapshot()
	for _, policy := range []exec.Policy{exec.SingleThreaded, exec.MultiThreaded, exec.MorselDriven} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			env := engine.NewEnv()
			env.ExecPolicy = policy
			engines := Engines(env)
			engines = append(engines, core.New(env, core.Options{ChunkRows: 128}))
			for _, e := range engines {
				e := e
				t.Run(e.Name(), func(t *testing.T) {
					tbl := loadItems(t, e, n)
					defer tbl.Free()
					pt, ok := tbl.(predTable)
					if !ok {
						t.Fatalf("%s does not implement the predicate query surface", e.Name())
					}

					// Seal zones at the engine's natural freeze point first…
					if c, ok := tbl.(interface{ Compact() (int, error) }); ok {
						if _, err := c.Compact(); err != nil {
							t.Fatalf("Compact: %v", err)
						}
					}
					if m, ok := tbl.(interface{ Merge() error }); ok {
						if err := m.Merge(); err != nil {
							t.Fatalf("Merge: %v", err)
						}
					}
					// …then update through it: outliers far outside the
					// sealed bounds exercise widening, invalidation and the
					// delta/tail patch paths under pruning.
					for _, row := range []uint64{5, 99, 300} {
						if err := tbl.Update(row, workload.ItemPriceCol, schema.FloatValue(float64(row)+500)); err != nil {
							t.Fatalf("Update(%d): %v", row, err)
						}
					}

					// One record-centric pass caches the authoritative
					// column; every predicate checks against it.
					prices := make([]float64, n)
					for row := uint64(0); row < n; row++ {
						rec, err := tbl.Get(row)
						if err != nil {
							t.Fatalf("Get(%d): %v", row, err)
						}
						prices[row] = rec[workload.ItemPriceCol].F
					}

					r := rand.New(rand.NewSource(int64(31*len(e.Name())) + int64(policy)))
					for i := 0; i < 24; i++ {
						p := randomPred(r)
						var wantSum float64
						var wantN int64
						for _, x := range prices {
							if p.Match(x) {
								wantSum += x
								wantN++
							}
						}
						gotN, err := pt.CountWhereFloat64(workload.ItemPriceCol, p)
						if err != nil {
							t.Fatalf("CountWhereFloat64(%v): %v", p, err)
						}
						if gotN != wantN {
							t.Errorf("%v: count = %d, want %d", p, gotN, wantN)
						}
						gotSum, gotN2, err := pt.SumFloat64Where(workload.ItemPriceCol, p)
						if err != nil {
							t.Fatalf("SumFloat64Where(%v): %v", p, err)
						}
						if gotN2 != wantN {
							t.Errorf("%v: sum-count = %d, want %d", p, gotN2, wantN)
						}
						if math.Abs(gotSum-wantSum) > 1e-6 {
							t.Errorf("%v: sum = %v, want %v", p, gotSum, wantSum)
						}
					}
				})
			}
		})
	}
	// The monotone price data gives every engine narrow per-fragment
	// zones, so the range predicates above must have pruned somewhere.
	after := obs.TakeSnapshot()
	if after.Counter("exec.zonemap.pruned") <= before.Counter("exec.zonemap.pruned") {
		t.Error("exec.zonemap.pruned did not advance over the property suite")
	}
	if after.Counter("exec.zonemap.scanned") <= before.Counter("exec.zonemap.scanned") {
		t.Error("exec.zonemap.scanned did not advance over the property suite")
	}
}

// TestPruneSelectionMatchesClosureSelect pins the specialized
// selection kernel to the generic closure path bit-for-bit: position
// lists are integers, so pruned and unpruned executions must agree
// exactly on every common-table engine.
func TestPruneSelectionMatchesClosureSelect(t *testing.T) {
	const n = 500
	env := engine.NewEnv()
	type selTable interface {
		SelectFloat64Where(col int, p exec.Pred[float64]) (*exec.SelVec, error)
		SelectFloat64(col int, pred func(float64) bool) ([]uint64, error)
	}
	for _, e := range Engines(env) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			tbl := loadItems(t, e, n)
			defer tbl.Free()
			st, ok := tbl.(selTable)
			if !ok {
				t.Skipf("%s does not expose the selection surface", e.Name())
			}
			for _, p := range []exec.Pred[float64]{
				exec.Between[float64](2, 3),
				exec.Lt(1.5),
				exec.Gt(4.25),
				exec.Eq(workload.ItemPrice(123)),
				exec.Between[float64](20, 30),
			} {
				sv, err := st.SelectFloat64Where(workload.ItemPriceCol, p)
				if err != nil {
					t.Fatalf("SelectFloat64Where(%v): %v", p, err)
				}
				want, err := st.SelectFloat64(workload.ItemPriceCol, p.Match)
				if err != nil {
					t.Fatalf("SelectFloat64(%v): %v", p, err)
				}
				got := sv.Positions()
				if len(got) != len(want) {
					t.Fatalf("%v: %d positions, want %d", p, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v: position[%d] = %d, want %d", p, i, got[i], want[i])
					}
				}
				sv.Release()
			}
		})
	}
}
