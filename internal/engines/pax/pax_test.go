package pax

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, pageBytes int, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv(), pageBytes)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	pt := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := pt.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPageGeometry(t *testing.T) {
	tbl := load(t, 8<<10, 1000)
	defer tbl.Free()
	// 8192 / 28 = 292 records per page.
	if got := tbl.RowsPerPage(); got != 292 {
		t.Fatalf("RowsPerPage = %d, want 292", got)
	}
	// ceil(1000/292) = 4 pages.
	if got := tbl.Pages(); got != 4 {
		t.Fatalf("Pages = %d, want 4", got)
	}
}

func TestPagesAreDSMFixedFat(t *testing.T) {
	tbl := load(t, 4<<10, 300)
	defer tbl.Free()
	snap := tbl.Snapshot()
	if len(snap.Layouts) != 1 {
		t.Fatalf("layouts = %d", len(snap.Layouts))
	}
	for _, f := range snap.Layouts[0].Fragments {
		if !f.Fat || f.Lin != layout.DSM {
			t.Fatalf("page fragment = %+v, want fat DSM", f)
		}
		if len(f.Cols) != 5 {
			t.Fatalf("page covers %d cols", len(f.Cols))
		}
	}
	if !snap.Layouts[0].HorizontalOnly {
		t.Fatal("PAX layout should be purely horizontal")
	}
}

func TestMinipageContiguity(t *testing.T) {
	// Within one page, a column's fields are contiguous (the minipage);
	// across pages they are not — the defining PAX property.
	tbl := load(t, 4<<10, 300)
	defer tbl.Free()
	l, err := tbl.Rel.Primary()
	if err != nil {
		t.Fatal(err)
	}
	f := l.Fragments()[0]
	v, err := f.ColVector(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Contiguous() {
		t.Fatal("minipage not contiguous")
	}
}

func TestRejectsTinyPages(t *testing.T) {
	e := New(engine.NewEnv(), 32) // 32 bytes < 2 records
	if _, err := e.Create("item", workload.ItemSchema()); err == nil {
		t.Fatal("tiny page accepted")
	}
}

func TestDefaultPageSize(t *testing.T) {
	e := New(engine.NewEnv(), 0)
	if e.pageBytes != DefaultPageBytes {
		t.Fatalf("pageBytes = %d", e.pageBytes)
	}
}

func TestSumAcrossPages(t *testing.T) {
	tbl := load(t, 4<<10, 777)
	defer tbl.Free()
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-workload.ExpectedItemPriceSum(777)) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestUpdateInPlace(t *testing.T) {
	tbl := load(t, 4<<10, 300)
	defer tbl.Free()
	if err := tbl.Update(299, workload.ItemPriceCol, schema.FloatValue(5)); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(299)
	if err != nil || rec[workload.ItemPriceCol].F != 5 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}
