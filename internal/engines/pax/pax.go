// Package pax implements the PAX storage model (Ailamaki et al., 2002;
// paper Section IV-A.1): a single-layout, page-level decomposition.
// A relation is horizontally split into page-sized fat fragments; each
// page is linearized DSM-fixed, i.e. the page holds one minipage per
// attribute. Fragmentation is dictated by the page size, which is why the
// paper classifies PAX as inflexible and static despite its many
// fragments. PAX targets disk-based systems: the primary copy is declared
// on secondary storage while the working set lives in host memory.
package pax

import (
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
)

// DefaultPageBytes is the classic 8 KiB page size.
const DefaultPageBytes = 8 << 10

// Engine is the PAX storage engine.
type Engine struct {
	env       *engine.Env
	pageBytes int
}

// New creates a PAX engine with the given page size in bytes (0 uses
// DefaultPageBytes).
func New(env *engine.Env, pageBytes int) *Engine {
	if pageBytes <= 0 {
		pageBytes = DefaultPageBytes
	}
	return &Engine{env: env, pageBytes: pageBytes}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "PAX" }

// Capabilities declares the paper's Table-1 row for PAX.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		FixedFragmentation: true,
		Processors:         taxonomy.CPUOnly,
		Workloads:          taxonomy.HTAP,
		PrimaryDeclared:    taxonomy.LocSecondary,
		HasPrimaryDeclared: true,
		Year:               2002,
	}
}

// Table is a PAX relation.
type Table struct {
	*common.Table
	rowsPerPage uint64
}

// Create makes an empty PAX relation.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rowsPerPage := uint64(e.pageBytes / s.Width())
	if rowsPerPage < 2 {
		return nil, fmt.Errorf("pax: page of %d bytes holds %d records of %d bytes; need >= 2",
			e.pageBytes, rowsPerPage, s.Width())
	}
	rel := layout.NewRelation(name, s)
	rel.AddLayout(layout.NewLayout("pages", s))
	t := &Table{Table: common.NewTable(e.env, rel), rowsPerPage: rowsPerPage}
	t.Append = t.appendRecord
	return t, nil
}

// RowsPerPage returns how many records one page holds.
func (t *Table) RowsPerPage() uint64 { return t.rowsPerPage }

// Pages returns the current page count.
func (t *Table) Pages() int {
	l, _ := t.Rel.Primary()
	return len(l.Fragments())
}

// appendRecord routes an insert into the last page, allocating a new
// page-sized DSM fragment when full.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	l, err := t.Rel.Primary()
	if err != nil {
		return err
	}
	frags := l.Fragments()
	var page *layout.Fragment
	if n := len(frags); n > 0 && frags[n-1].Len() < frags[n-1].Cap() {
		page = frags[n-1]
	} else {
		begin := row
		page, err = layout.NewFragment(t.Env.Host, t.Rel.Schema(), layout.AllCols(t.Rel.Schema()),
			layout.RowRange{Begin: begin, End: begin + t.rowsPerPage}, layout.DSM)
		if err != nil {
			return fmt.Errorf("pax: allocating page: %w", err)
		}
		if err := l.Add(page); err != nil {
			page.Free()
			return err
		}
	}
	return common.AppendToFragments(rec, page)
}
