package cogadb

import (
	"errors"
	"math"
	"testing"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, env *engine.Env, n uint64) *Table {
	t.Helper()
	e := New(env, 0)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ct := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ct.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestPlaceAllOrNothing(t *testing.T) {
	env := engine.NewEnv()
	tbl := load(t, env, 500)
	defer tbl.Free()
	if tbl.Placed(workload.ItemPriceCol) {
		t.Fatal("column placed before Place")
	}
	if err := tbl.Place(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}
	if !tbl.Placed(workload.ItemPriceCol) {
		t.Fatal("Place did not take")
	}
	// Idempotent.
	if err := tbl.Place(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Place(99); err == nil {
		t.Fatal("bad column accepted")
	}
	// The snapshot exposes the mixed host/device location.
	spaces := map[mem.Space]bool{}
	for _, l := range tbl.Snapshot().Layouts {
		for _, f := range l.Fragments {
			spaces[f.Space] = true
		}
	}
	if !spaces[mem.Host] || !spaces[mem.Device] {
		t.Fatalf("spaces = %v", spaces)
	}
}

func TestPlaceFallsBackOnDeviceExhaustion(t *testing.T) {
	env := engine.NewEnv()
	// A tiny device: the column cannot fit.
	prof := perfmodel.DefaultDevice()
	prof.GlobalMemory = 64
	env.GPU = device.New(prof, env.Clock)
	tbl := load(t, env, 500)
	defer tbl.Free()
	err := tbl.Place(workload.ItemPriceCol)
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if tbl.Placed(workload.ItemPriceCol) {
		t.Fatal("failed placement left column marked placed")
	}
	// Queries still work on the host.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(500)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
}

func TestReplicaStaysCoherent(t *testing.T) {
	env := engine.NewEnv()
	tbl := load(t, env, 300)
	defer tbl.Free()
	if err := tbl.Place(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}
	// Write-through on update.
	if err := tbl.Update(10, workload.ItemPriceCol, schema.FloatValue(500)); err != nil {
		t.Fatal(err)
	}
	// Write-through on insert.
	if _, err := tbl.Insert(workload.Item(300)); err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(301) - workload.ItemPrice(10) + 500
	// Force enough queries that HyPE tries both placements.
	for i := 0; i < 30; i++ {
		sum, err := tbl.SumFloat64(workload.ItemPriceCol)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sum-want) > 1e-6 {
			t.Fatalf("iteration %d: sum = %v, want %v", i, sum, want)
		}
	}
	cpu, gpu := tbl.Runs()
	if cpu == 0 || gpu == 0 {
		t.Fatalf("HyPE never balanced: cpu=%d gpu=%d", cpu, gpu)
	}
}

func TestEvict(t *testing.T) {
	env := engine.NewEnv()
	tbl := load(t, env, 200)
	defer tbl.Free()
	if err := tbl.Place(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}
	used := env.GPU.Allocator().Used()
	if used == 0 {
		t.Fatal("placement allocated nothing")
	}
	tbl.Evict(workload.ItemPriceCol)
	if tbl.Placed(workload.ItemPriceCol) || env.GPU.Allocator().Used() != 0 {
		t.Fatal("eviction did not free device memory")
	}
	tbl.Evict(workload.ItemPriceCol) // idempotent
}

func TestHypeLearnsToPreferTheFasterDevice(t *testing.T) {
	env := engine.NewEnv()
	tbl := load(t, env, 60_000)
	defer tbl.Free()
	if err := tbl.Place(workload.ItemPriceCol); err != nil {
		t.Fatal(err)
	}
	// At this size the device kernel is far cheaper under the simulated
	// clock; after warmup HyPE should route most sums to the GPU.
	for i := 0; i < 40; i++ {
		if _, err := tbl.SumFloat64(workload.ItemPriceCol); err != nil {
			t.Fatal(err)
		}
	}
	cpu, gpu := tbl.Runs()
	if gpu <= cpu {
		t.Fatalf("HyPE preferred the slower placement: cpu=%d gpu=%d", cpu, gpu)
	}
}

func TestHypeCostModel(t *testing.T) {
	h := newHype(0.1)
	if h.Samples("sum", "cpu") != 0 {
		t.Fatal("fresh model has samples")
	}
	h.Observe("sum", "cpu", 100, 1000) // 10 ns/elt
	h.Observe("sum", "gpu", 100, 100)  // 1 ns/elt
	if h.Samples("sum", "cpu") != 1 {
		t.Fatal("sample not recorded")
	}
	picks := map[string]int{}
	for i := 0; i < 100; i++ {
		picks[h.Choose("sum", 1000, []string{"cpu", "gpu"})]++
	}
	if picks["gpu"] <= picks["cpu"] {
		t.Fatalf("choices = %v, want gpu-dominant", picks)
	}
	if picks["cpu"] == 0 {
		t.Fatal("no exploration happened")
	}
	// Zero-length observations are ignored.
	h.Observe("sum", "cpu", 0, 1)
	if h.Samples("sum", "cpu") != 1 {
		t.Fatal("zero-n observation recorded")
	}
	if h.Choose("sum", 10, nil) != "" {
		t.Fatal("empty placement list")
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestBadEpsilonDefaults(t *testing.T) {
	h := newHype(7)
	if h.epsilon != 0.05 {
		t.Fatalf("epsilon = %v", h.epsilon)
	}
}
