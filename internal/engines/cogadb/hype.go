package cogadb

import "fmt"

// hype is the self-adapting query optimizer of CoGaDB (Breß & Saake,
// "Why it is time for a HyPE", 2013): it learns per-placement cost models
// from observed execution times and balances operators between the
// compute devices. The model here is the one HyPE ships with for single
// operators: a running linear estimate of nanoseconds per input element
// per (operator, placement) pair, with epsilon-greedy exploration so a
// placement that was slow once still gets re-probed as data sizes change.
type hype struct {
	models  map[string]*costModel
	epsilon float64
	step    uint64
}

// costModel is a per-(operator, placement) running estimate.
type costModel struct {
	samples  uint64
	nsPerElt float64
}

// newHype creates a scheduler with the given exploration rate.
func newHype(epsilon float64) *hype {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.05
	}
	return &hype{models: make(map[string]*costModel), epsilon: epsilon}
}

// key names one (operator, placement) pair.
func key(op, placement string) string { return op + "@" + placement }

// estimate predicts the cost of running op on placement over n elements;
// unknown pairs estimate optimistically at zero so they get tried.
func (h *hype) estimate(op, placement string, n int64) float64 {
	m := h.models[key(op, placement)]
	if m == nil || m.samples == 0 {
		return 0
	}
	return m.nsPerElt * float64(n)
}

// Choose picks a placement for op over n elements: usually the cheapest
// estimate, with epsilon-greedy exploration of the alternatives. The
// decision is deterministic given the call sequence (the exploration
// trigger is a counter, not a random source), keeping harness runs
// reproducible.
func (h *hype) Choose(op string, n int64, placements []string) string {
	if len(placements) == 0 {
		return ""
	}
	h.step++
	if h.epsilon > 0 && h.step%uint64(1/h.epsilon) == 0 {
		return placements[int(h.step/uint64(1/h.epsilon))%len(placements)]
	}
	best := placements[0]
	bestNs := h.estimate(op, best, n)
	for _, p := range placements[1:] {
		ns := h.estimate(op, p, n)
		if ns < bestNs {
			best, bestNs = p, ns
		}
	}
	return best
}

// Observe feeds one measured execution back into the model.
func (h *hype) Observe(op, placement string, n int64, elapsedNs float64) {
	if n <= 0 {
		return
	}
	k := key(op, placement)
	m := h.models[k]
	if m == nil {
		m = &costModel{}
		h.models[k] = m
	}
	perElt := elapsedNs / float64(n)
	m.samples++
	// Exponentially-weighted update keeps the model adaptive to workload
	// and data-size shifts.
	const alpha = 0.3
	if m.samples == 1 {
		m.nsPerElt = perElt
	} else {
		m.nsPerElt = (1-alpha)*m.nsPerElt + alpha*perElt
	}
}

// Samples returns how many observations a pair has accumulated.
func (h *hype) Samples(op, placement string) uint64 {
	if m := h.models[key(op, placement)]; m != nil {
		return m.samples
	}
	return 0
}

// String summarizes the learned models.
func (h *hype) String() string {
	return fmt.Sprintf("hype{%d models, eps=%.2f}", len(h.models), h.epsilon)
}
