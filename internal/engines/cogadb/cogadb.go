// Package cogadb implements the CoGaDB storage engine (Breß, 2014; paper
// Section IV-B.3): a cross-device CPU/GPU column store for analytic
// processing. Relations are thin directly-linearized sub-relation columns
// in host memory; individual columns may additionally be replicated into
// device memory under an "all or nothing" policy — either the whole
// column fits in device global memory, or the placement falls back to the
// host. Operator placement is decided by the self-learning HyPE scheduler
// (hype.go), which balances work between the devices from observed
// execution times.
package cogadb

import (
	"errors"
	"fmt"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
)

// Placements used by the HyPE scheduler.
const (
	placeCPU = "cpu"
	placeGPU = "gpu"
	// placeGPUCache is the device path through the fragment cache: no
	// standing replica, but the scan's column image is kept device-
	// resident by engine.Env.Cache and reused while the column is
	// unchanged — CoGaDB's caching column manager, as opposed to the
	// explicit Place/Evict replication above.
	placeGPUCache = "gpu-cache"
)

// Engine is the CoGaDB storage engine.
type Engine struct {
	env     *engine.Env
	epsilon float64
	// DeviceCache offers HyPE the cache-backed GPU placement for scans
	// over columns without a standing device replica. Off by default so
	// replica-focused behavior (and its tests) is unchanged.
	DeviceCache bool
}

// New creates the engine; epsilon is the HyPE exploration rate (0 uses
// the default).
func New(env *engine.Env, epsilon float64) *Engine {
	return &Engine{env: env, epsilon: epsilon}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "CoGaDB" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		BuiltInMultiLayout: true,
		Scheme:             taxonomy.SchemeReplication,
		Processors:         taxonomy.CPUAndGPU,
		Workloads:          taxonomy.OLAP,
		Year:               2016,
	}
}

// Table is a CoGaDB relation.
type Table struct {
	*common.Table
	eng      *Engine
	hostCols []*layout.Fragment
	// replicas maps attribute index → device-resident copy.
	replicas map[int]*layout.Fragment
	devLay   *layout.Layout
	hype     *hype
	// gpuRuns / cpuRuns count scheduler decisions (for tests/examples).
	gpuRuns, cpuRuns int
}

// Create makes an empty relation with host-resident columns.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	hostLay := layout.NewLayout("host-columns", s)
	const initialCap = 64
	t := &Table{
		eng:      e,
		replicas: make(map[int]*layout.Fragment),
		hype:     newHype(e.epsilon),
	}
	for c := 0; c < s.Arity(); c++ {
		f, err := layout.NewFragment(e.env.Host, s, []int{c}, layout.RowRange{Begin: 0, End: initialCap}, layout.Direct)
		if err != nil {
			hostLay.Free()
			return nil, fmt.Errorf("cogadb: %w", err)
		}
		hostLay.Add(f)
		t.hostCols = append(t.hostCols, f)
	}
	rel.AddLayout(hostLay)
	t.devLay = layout.NewLayout("device-columns", s)
	rel.AddLayout(t.devLay)
	t.Table = common.NewTable(e.env, rel)
	t.Append = t.appendRecord
	return t, nil
}

// appendRecord appends to the host columns and writes through to any
// device replicas (replication-based scheme), charging bus time.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	hostLay := t.Rel.Layouts()[0]
	for c, f := range t.hostCols {
		if f.Len() == f.Cap() {
			grown, err := f.Grow(t.Env.Host, f.Cap()*2)
			if err != nil {
				return fmt.Errorf("cogadb: growing column: %w", err)
			}
			if err := hostLay.Replace(f, grown); err != nil {
				return err
			}
			// The old backing store is gone; retire any device-cached
			// images of it eagerly.
			t.Env.InvalidateFrag(t.Rel.Name(), f.ID())
			t.hostCols[c] = grown
			f = grown
		}
		if err := f.AppendTuplet([]schema.Value{rec[c]}); err != nil {
			return err
		}
	}
	for c, r := range t.replicas {
		if r.Len() == r.Cap() {
			grown, err := r.Grow(t.Env.GPU.Allocator(), r.Cap()*2)
			if err != nil {
				// All-or-nothing: a replica that no longer fits is evicted.
				if errors.Is(err, mem.ErrOutOfMemory) {
					t.evictLocked(c)
					continue
				}
				return err
			}
			if err := t.devLay.Replace(r, grown); err != nil {
				return err
			}
			t.replicas[c] = grown
			r = grown
		}
		if err := r.AppendTuplet([]schema.Value{rec[c]}); err != nil {
			return err
		}
		if t.Env.Clock != nil {
			t.Env.Clock.Advance(t.Env.GPU.Profile().TransferNs(int64(t.Rel.Schema().Attr(c).Size)))
		}
	}
	return nil
}

// Place replicates column c into device memory following the
// all-or-nothing policy: on mem.ErrOutOfMemory the column stays on the
// host and the error is returned for the caller's fallback scheduling.
func (t *Table) Place(c int) error {
	if c < 0 || c >= len(t.hostCols) {
		return fmt.Errorf("%w: col %d", layout.ErrOutOfRange, c)
	}
	if _, ok := t.replicas[c]; ok {
		return nil
	}
	src := t.hostCols[c]
	replica, err := src.CloneTo(t.Env.GPU.Allocator())
	if err != nil {
		return fmt.Errorf("cogadb: placing column %d on device: %w", c, err)
	}
	if t.Env.Clock != nil {
		t.Env.Clock.Advance(t.Env.GPU.Profile().TransferNs(int64(replica.SizeBytes())))
	}
	t.replicas[c] = replica
	return t.devLay.Add(replica)
}

// Evict removes column c's device replica.
func (t *Table) Evict(c int) { t.evictLocked(c) }

func (t *Table) evictLocked(c int) {
	if r, ok := t.replicas[c]; ok {
		t.devLay.Remove(r)
		r.Free()
		delete(t.replicas, c)
	}
}

// Placed reports whether column c has a device replica.
func (t *Table) Placed(c int) bool { _, ok := t.replicas[c]; return ok }

// Runs returns the (cpu, gpu) scheduler decision counts.
func (t *Table) Runs() (cpu, gpu int) { return t.cpuRuns, t.gpuRuns }

// Update writes through host column and device replica.
func (t *Table) Update(row uint64, col int, v schema.Value) error {
	if err := t.Table.Update(row, col, v); err != nil {
		return err
	}
	if _, ok := t.replicas[col]; ok && t.Env.Clock != nil {
		t.Env.Clock.Advance(t.Env.GPU.Profile().TransferNs(int64(t.Rel.Schema().Attr(col).Size)))
	}
	return nil
}

// SumFloat64 lets HyPE choose the placement: the host bulk operator or
// the device reduction kernel over the replica. The measured (simulated)
// execution time feeds the scheduler's cost models.
func (t *Table) SumFloat64(col int) (float64, error) {
	if col < 0 || col >= len(t.hostCols) {
		return 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	n := int64(t.Rel.Rows())
	placements := []string{placeCPU}
	if _, ok := t.replicas[col]; ok {
		placements = append(placements, placeGPU)
	} else if t.cacheEnabled() {
		placements = append(placements, placeGPUCache)
	}
	choice := t.hype.Choose("sum", n, placements)

	var before float64
	if t.Env.Clock != nil {
		before = t.Env.Clock.ElapsedNs()
	}
	var sum float64
	var err error
	switch choice {
	case placeGPU:
		t.gpuRuns++
		sum, err = t.deviceSum(col)
	case placeGPUCache:
		t.gpuRuns++
		sum, err = t.cachedDeviceSum(col)
	default:
		t.cpuRuns++
		sum, err = t.hostSum(col)
	}
	if err != nil {
		return 0, err
	}
	if t.Env.Clock != nil {
		t.hype.Observe("sum", choice, n, t.Env.Clock.ElapsedNs()-before)
	}
	return sum, nil
}

// hostSum runs the bulk sum over the host column.
func (t *Table) hostSum(col int) (float64, error) {
	f := t.hostCols[col]
	v, err := f.ColVector(col)
	if err != nil {
		return 0, err
	}
	pieces := []exec.Piece{{Rows: layout.RowRange{Begin: 0, End: uint64(v.Len)}, Vec: v}}
	return exec.SumFloat64(t.Cfg, pieces)
}

// cacheEnabled reports whether the cache-backed GPU placement is on.
func (t *Table) cacheEnabled() bool { return t.eng.DeviceCache && t.Env.Cache != nil }

// hostPiece wraps the host column in an exec piece carrying the fragment
// identity the device cache keys on.
func (t *Table) hostPiece(col int) (exec.Piece, error) {
	f := t.hostCols[col]
	v, err := f.ColVector(col)
	if err != nil {
		return exec.Piece{}, err
	}
	return exec.Piece{
		Rows: layout.RowRange{Begin: 0, End: uint64(v.Len)},
		Vec:  v, Zone: f.Stats(col),
		FragID: f.ID(), FragVersion: f.Version(),
	}, nil
}

// deviceScan builds the cache-backed device scan executor: the fleet
// scheduler when the environment carries one, single-card otherwise.
func (t *Table) deviceScan() exec.ScanExecutor {
	return t.Env.DeviceExec(t.Rel.Name())
}

// cachedDeviceSum runs the reduction kernel over a cache-resident image
// of the host column: the first scan ships the column, repeats are free
// of bus traffic until a write bumps the column fragment's version.
func (t *Table) cachedDeviceSum(col int) (float64, error) {
	piece, err := t.hostPiece(col)
	if err != nil {
		return 0, err
	}
	return t.deviceScan().SumFloat64(col, []exec.Piece{piece})
}

// SumFloat64Where overrides the host-only fused scan with a HyPE choice
// among the host operator, the device replica, and the cache-backed
// device path. Predicates without a closed-interval form stay on the
// host (the device kernel is branch-free of comparison modes).
func (t *Table) SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error) {
	if col < 0 || col >= len(t.hostCols) {
		return 0, 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	lo, hi, closed := exec.ClosedFloat64(p)
	placements := []string{placeCPU}
	if closed {
		if _, ok := t.replicas[col]; ok {
			placements = append(placements, placeGPU)
		} else if t.cacheEnabled() {
			placements = append(placements, placeGPUCache)
		}
	}
	if len(placements) == 1 {
		return t.Table.SumFloat64Where(col, p)
	}
	n := int64(t.Rel.Rows())
	choice := t.hype.Choose("sumwhere", n, placements)
	var before float64
	if t.Env.Clock != nil {
		before = t.Env.Clock.ElapsedNs()
	}
	var sum float64
	var cnt int64
	var err error
	switch choice {
	case placeGPU:
		t.gpuRuns++
		sum, cnt, err = t.deviceSumWhere(col, lo, hi)
	case placeGPUCache:
		t.gpuRuns++
		piece, perr := t.hostPiece(col)
		if perr != nil {
			return 0, 0, perr
		}
		sum, cnt, err = t.deviceScan().SumFloat64Where(col, []exec.Piece{piece}, p)
	default:
		t.cpuRuns++
		sum, cnt, err = t.Table.SumFloat64Where(col, p)
	}
	if err != nil {
		return 0, 0, err
	}
	if t.Env.Clock != nil {
		t.hype.Observe("sumwhere", choice, n, t.Env.Clock.ElapsedNs()-before)
	}
	return sum, cnt, nil
}

// GroupSumFloat64Where lets HyPE place the fused predicate→group-by
// pipeline: the host fused operator, the one-launch fused group kernel
// over the device replicas (requires BOTH columns replicated — the
// kernel sweeps them together), or the cache-backed device path.
// Predicates without a closed-interval form stay on the host.
func (t *Table) GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	if keyCol < 0 || keyCol >= len(t.hostCols) || valCol < 0 || valCol >= len(t.hostCols) {
		return nil, fmt.Errorf("%w: cols %d,%d", layout.ErrOutOfRange, keyCol, valCol)
	}
	lo, hi, closed := exec.ClosedFloat64(p)
	placements := []string{placeCPU}
	if closed {
		_, kRep := t.replicas[keyCol]
		_, vRep := t.replicas[valCol]
		if kRep && vRep {
			placements = append(placements, placeGPU)
		} else if t.cacheEnabled() {
			placements = append(placements, placeGPUCache)
		}
	}
	if len(placements) == 1 {
		return t.Table.GroupSumFloat64Where(keyCol, valCol, p)
	}
	n := int64(t.Rel.Rows())
	choice := t.hype.Choose("groupsumwhere", n, placements)
	var before float64
	if t.Env.Clock != nil {
		before = t.Env.Clock.ElapsedNs()
	}
	var groups []exec.GroupResult
	var err error
	switch choice {
	case placeGPU:
		t.gpuRuns++
		groups, err = t.deviceGroupSumWhere(keyCol, valCol, lo, hi)
	case placeGPUCache:
		t.gpuRuns++
		var kp, vp exec.Piece
		if kp, err = t.hostPiece(keyCol); err != nil {
			return nil, err
		}
		if vp, err = t.hostPiece(valCol); err != nil {
			return nil, err
		}
		groups, err = t.deviceScan().GroupSumFloat64Where(keyCol, valCol, []exec.Piece{kp}, []exec.Piece{vp}, p)
	default:
		t.cpuRuns++
		groups, err = t.Table.GroupSumFloat64Where(keyCol, valCol, p)
	}
	if err != nil {
		return nil, err
	}
	if t.Env.Clock != nil {
		t.hype.Observe("groupsumwhere", choice, n, t.Env.Clock.ElapsedNs()-before)
	}
	return groups, nil
}

// deviceGroupSumWhere runs the one-launch fused group kernel over the
// key and value device replicas.
func (t *Table) deviceGroupSumWhere(keyCol, valCol int, lo, hi float64) ([]exec.GroupResult, error) {
	kv, err := t.replicas[keyCol].ColVector(keyCol)
	if err != nil {
		return nil, err
	}
	vv, err := t.replicas[valCol].ColVector(valCol)
	if err != nil {
		return nil, err
	}
	dk := device.Vec{Data: kv.Data, Base: kv.Base, Stride: kv.Stride, Size: kv.Size, Len: kv.Len}
	dv := device.Vec{Data: vv.Data, Base: vv.Base, Stride: vv.Stride, Size: vv.Size, Len: vv.Len}
	cfg := device.DefaultReduceConfig()
	if vv.Len < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	parts, err := t.Env.GPU.GroupReduceSumFloat64Where(dk, dv, lo, hi, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]exec.GroupResult, len(parts))
	for i, g := range parts {
		out[i] = exec.GroupResult{Key: g.Key, Sum: g.Sum, Count: g.Count}
	}
	return out, nil
}

// deviceSumWhere runs the fused filter+reduction over the device replica.
func (t *Table) deviceSumWhere(col int, lo, hi float64) (float64, int64, error) {
	r := t.replicas[col]
	v, err := r.ColVector(col)
	if err != nil {
		return 0, 0, err
	}
	dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: v.Len}
	cfg := device.DefaultReduceConfig()
	if v.Len < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	return t.Env.GPU.ReduceSumFloat64Where(dv, lo, hi, cfg)
}

// deviceSum runs the reduction kernel over the device replica.
func (t *Table) deviceSum(col int) (float64, error) {
	r := t.replicas[col]
	v, err := r.ColVector(col)
	if err != nil {
		return 0, err
	}
	dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: v.Len}
	cfg := device.DefaultReduceConfig()
	if v.Len < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	return t.Env.GPU.ReduceSumFloat64(dv, cfg)
}

// Free releases host columns and device replicas.
func (t *Table) Free() {
	t.Table.Free()
	t.replicas = nil
	t.hostCols = nil
}
