// Package hyrise implements the HYRISE storage engine (Grund et al.,
// 2010; paper Section IV-A.3): a single-layout, weak flexible engine that
// lays a relation out as vertical sub-relations ("containers"), each
// linearized NSM or DSM, and responds to workload changes by re-adapting
// the per-container widths. The width advisor is the co-access clustering
// of workload.Monitor: attributes touched together by record-centric
// operations fuse into NSM containers, scan-dominated attributes stay in
// thin columns.
package hyrise

import (
	"fmt"
	"reflect"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// Engine is the HYRISE storage engine.
type Engine struct {
	env *engine.Env
	// affinity is the co-access threshold for container fusion.
	affinity float64
}

// New creates the engine; affinity in (0,1] tunes how eagerly columns
// fuse into containers (0 uses 0.5).
func New(env *engine.Env, affinity float64) *Engine {
	if affinity <= 0 || affinity > 1 {
		affinity = 0.5
	}
	return &Engine{env: env, affinity: affinity}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "HYRISE" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		Responsive:            true,
		VariableLinearization: true,
		Processors:            taxonomy.CPUOnly,
		Workloads:             taxonomy.HTAP,
		Year:                  2010,
	}
}

// Table is a HYRISE relation.
type Table struct {
	*common.Table
	mon    *workload.Monitor
	groups [][]int
	eng    *Engine
	adapts int
}

// Create makes an empty relation with the all-thin (DSM-emulated)
// starting layout; adaptation fuses containers as the workload demands.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	groups := make([][]int, s.Arity())
	for c := 0; c < s.Arity(); c++ {
		groups[c] = []int{c}
	}
	l, err := buildContainers(e.env, s, groups, 64)
	if err != nil {
		return nil, err
	}
	rel.AddLayout(l)
	t := &Table{
		Table:  common.NewTable(e.env, rel),
		mon:    workload.NewMonitor(s.Arity()),
		groups: groups,
		eng:    e,
	}
	t.Append = t.appendRecord
	return t, nil
}

// buildContainers creates one fragment per column group spanning
// [0, rowCap): fat groups are NSM containers, singleton groups thin
// columns.
func buildContainers(env *engine.Env, s *schema.Schema, groups [][]int, rowCap uint64) (*layout.Layout, error) {
	l, err := layout.Vertical(env.Host, "containers", s, groups, rowCap,
		func([]int) layout.Linearization { return layout.NSM })
	if err != nil {
		return nil, fmt.Errorf("hyrise: building containers: %w", err)
	}
	return l, nil
}

// appendRecord appends to every container, growing them in lockstep.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	l, err := t.Rel.Primary()
	if err != nil {
		return err
	}
	for _, f := range l.Fragments() {
		if f.Len() == f.Cap() {
			grown, gerr := f.Grow(t.Env.Host, f.Cap()*2)
			if gerr != nil {
				return fmt.Errorf("hyrise: growing container: %w", gerr)
			}
			if err := l.Replace(f, grown); err != nil {
				return err
			}
			f = grown
		}
		vals := make([]schema.Value, 0, f.Arity())
		for _, c := range f.Cols() {
			vals = append(vals, rec[c])
		}
		if err := f.AppendTuplet(vals); err != nil {
			return err
		}
	}
	return nil
}

// Observe feeds a workload operation into the width advisor.
func (t *Table) Observe(op workload.Op) { t.mon.Observe(op) }

// Adapts returns how many re-organizations have happened.
func (t *Table) Adapts() int { return t.adapts }

// Groups returns the current container column groups.
func (t *Table) Groups() [][]int { return t.groups }

// Adapt re-partitions the containers to the advisor's suggestion if it
// differs from the current grouping, migrating all data. It returns
// whether the layout changed.
func (t *Table) Adapt() (bool, error) {
	if t.mon.Observations() == 0 {
		return false, nil
	}
	suggestion := t.mon.SuggestGroups(t.eng.affinity)
	if reflect.DeepEqual(suggestion, t.groups) {
		return false, nil
	}
	old, err := t.Rel.Primary()
	if err != nil {
		return false, err
	}
	rows := t.Rel.Rows()
	rowCap := rows
	if rowCap < 64 {
		rowCap = 64
	}
	nl, err := buildContainers(t.Env, t.Rel.Schema(), suggestion, rowCap)
	if err != nil {
		return false, err
	}
	// Migrate row by row through the old layout's record view.
	for row := uint64(0); row < rows; row++ {
		rec, err := old.Record(row)
		if err != nil {
			nl.Free()
			return false, fmt.Errorf("hyrise: migrating row %d: %w", row, err)
		}
		if err := common.AppendToFragments(rec, nl.Fragments()...); err != nil {
			nl.Free()
			return false, err
		}
	}
	t.Rel.RemoveLayout(old)
	old.Free()
	t.Rel.AddLayout(nl)
	t.groups = suggestion
	t.adapts++
	t.mon.Reset()
	return true, nil
}
