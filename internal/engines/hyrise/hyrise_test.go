package hyrise

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv(), 0.5)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ht := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ht.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return ht
}

func TestStartsAllThin(t *testing.T) {
	tbl := load(t, 100)
	defer tbl.Free()
	if got := len(tbl.Groups()); got != 5 {
		t.Fatalf("groups = %d, want 5 singletons", got)
	}
	snap := tbl.Snapshot()
	if !snap.Layouts[0].VerticalOnly {
		t.Fatal("containers must be a vertical fragmentation")
	}
}

func TestAdaptFusesCoAccessedContainers(t *testing.T) {
	tbl := load(t, 400)
	defer tbl.Free()
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{4}})
	}
	changed, err := tbl.Adapt()
	if err != nil || !changed {
		t.Fatalf("Adapt = %v, %v", changed, err)
	}
	if tbl.Adapts() != 1 {
		t.Fatalf("Adapts = %d", tbl.Adapts())
	}
	groups := tbl.Groups()
	if len(groups[0]) != 3 {
		t.Fatalf("groups = %v, want {0,1,2} fused", groups)
	}
	// Fused container is a fat NSM fragment.
	snap := tbl.Snapshot()
	var fat int
	for _, f := range snap.Layouts[0].Fragments {
		if f.Fat {
			fat++
			if f.Lin != layout.NSM {
				t.Fatalf("fused container lin = %v", f.Lin)
			}
		}
	}
	if fat != 1 {
		t.Fatalf("fat containers = %d, want 1", fat)
	}
	// Data survives the migration.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(400)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	for _, row := range []uint64{0, 200, 399} {
		rec, err := tbl.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("Get(%d) = %v, %v", row, rec, err)
		}
	}
}

func TestAdaptNoChangeIsStable(t *testing.T) {
	tbl := load(t, 50)
	defer tbl.Free()
	changed, err := tbl.Adapt()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("empty monitor must not trigger re-organization")
	}
}

func TestAdaptRevertsWhenWorkloadShifts(t *testing.T) {
	tbl := load(t, 200)
	defer tbl.Free()
	for i := 0; i < 50; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1}})
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Groups()[0]) != 2 {
		t.Fatalf("groups = %v", tbl.Groups())
	}
	// The workload turns analytic: scans dominate both columns.
	for i := 0; i < 500; i++ {
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{0}})
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{1}})
	}
	changed, err := tbl.Adapt()
	if err != nil || !changed {
		t.Fatalf("shift Adapt = %v, %v", changed, err)
	}
	for _, g := range tbl.Groups() {
		if len(g) != 1 {
			t.Fatalf("groups after shift = %v, want all thin", tbl.Groups())
		}
	}
	rec, err := tbl.Get(100)
	if err != nil || !rec.Equal(workload.Item(100)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestInsertAfterAdapt(t *testing.T) {
	tbl := load(t, 100)
	defer tbl.Free()
	for i := 0; i < 50; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if err := workload.Generate(200, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(workload.Item(100 + i))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(299)
	if err != nil || !rec.Equal(workload.Item(299)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestBadAffinityDefaults(t *testing.T) {
	e := New(engine.NewEnv(), -3)
	if e.affinity != 0.5 {
		t.Fatalf("affinity = %v", e.affinity)
	}
}
