package hyper

import "hybridstore/internal/rescache"

// VersionStamp collects the fragment-version vector a scan over cols
// folds, in chunk order. Every HyPer mutation — Insert (tail append),
// Update (in-place bump on an unshared chunk or COW clone with fresh
// fragment IDs), Compact (replacement frozen chunks) — holds the
// exclusive table lock, so two equal stamps bracket a window in which
// the observed column state was byte-identical. HyPer keeps no MVCC
// side store: the stamp alone is the complete correctness token for a
// result cache. ok is false only for an out-of-range column.
func (t *Table) VersionStamp(cols ...int) (rescache.Stamp, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var st rescache.Stamp
	for _, c := range t.chunks {
		st.Rows += uint64(c.len())
		for _, col := range cols {
			if col < 0 || col >= len(c.vectors) {
				return rescache.Stamp{}, false
			}
			f := c.vectors[col]
			st.Frags = append(st.Frags, rescache.FragVer{ID: f.ID(), Ver: f.Version()})
		}
	}
	return st, true
}
