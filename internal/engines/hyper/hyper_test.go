package hyper

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, chunkRows uint64, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv(), chunkRows)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	ht := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := ht.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return ht
}

func TestChunkVectorHierarchy(t *testing.T) {
	tbl := load(t, 128, 500)
	defer tbl.Free()
	if got := tbl.Chunks(); got != 4 { // ceil(500/128)
		t.Fatalf("chunks = %d, want 4", got)
	}
	snap := tbl.Snapshot()
	// Every fragment is a thin single-attribute vector.
	for _, f := range snap.Layouts[0].Fragments {
		if f.Fat || len(f.Cols) != 1 {
			t.Fatalf("fragment %+v is not a thin vector", f)
		}
	}
	// 4 chunks × 5 attributes.
	if got := len(snap.Layouts[0].Fragments); got != 20 {
		t.Fatalf("vectors = %d, want 20", got)
	}
	if !snap.Layouts[0].Combined {
		t.Fatal("partition→chunk→vector must classify as combined partitioning")
	}
}

func TestSnapshotIsolatesAnalyticsFromUpdates(t *testing.T) {
	tbl := load(t, 128, 400)
	defer tbl.Free()
	want := workload.ExpectedItemPriceSum(400)

	snap := tbl.AnalyticSnapshot()
	defer snap.Release()

	// Concurrent OLTP: update many rows after the snapshot.
	for i := uint64(0); i < 200; i++ {
		if err := tbl.Update(i, workload.ItemPriceCol, schema.FloatValue(0)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := snap.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("snapshot sum = %v, want %v (pre-update)", got, want)
	}
	// The live table sees the updates.
	live, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	var zeroed float64
	for i := uint64(0); i < 200; i++ {
		zeroed += workload.ItemPrice(i)
	}
	if math.Abs(live-(want-zeroed)) > 1e-6 {
		t.Fatalf("live sum = %v, want %v", live, want-zeroed)
	}
}

func TestSnapshotExcludesLaterInserts(t *testing.T) {
	tbl := load(t, 128, 100)
	defer tbl.Free()
	snap := tbl.AnalyticSnapshot()
	defer snap.Release()
	for i := uint64(100); i < 300; i++ {
		if _, err := tbl.Insert(workload.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Rows() != 100 {
		t.Fatalf("snapshot rows = %d", snap.Rows())
	}
	got, err := snap.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(got-workload.ExpectedItemPriceSum(100)) > 1e-6 {
		t.Fatalf("snapshot sum = %v, %v", got, err)
	}
}

func TestCopyOnWriteOnlyWhenShared(t *testing.T) {
	tbl := load(t, 128, 256)
	defer tbl.Free()
	// Unshared updates write in place: no detached chunks accumulate.
	if err := tbl.Update(1, workload.ItemPriceCol, schema.FloatValue(1)); err != nil {
		t.Fatal(err)
	}
	if len(tbl.detached) != 0 {
		t.Fatalf("in-place update detached %d chunks", len(tbl.detached))
	}
	snap := tbl.AnalyticSnapshot()
	if err := tbl.Update(2, workload.ItemPriceCol, schema.FloatValue(2)); err != nil {
		t.Fatal(err)
	}
	if len(tbl.detached) != 1 {
		t.Fatalf("COW did not detach the shared chunk: %d", len(tbl.detached))
	}
	snap.Release()
	if len(tbl.detached) != 0 {
		t.Fatal("Release did not free the detached chunk")
	}
}

func TestReleasedSnapshotRejectsQueries(t *testing.T) {
	tbl := load(t, 128, 100)
	defer tbl.Free()
	snap := tbl.AnalyticSnapshot()
	snap.Release()
	snap.Release() // idempotent
	if _, err := snap.SumFloat64(workload.ItemPriceCol); err == nil {
		t.Fatal("released snapshot answered a query")
	}
}

func TestCompactFusesColdChunks(t *testing.T) {
	tbl := load(t, 64, 512) // 8 full chunks
	defer tbl.Free()
	before := tbl.Chunks()
	merged, err := tbl.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merged == 0 || tbl.Chunks() >= before {
		t.Fatalf("compact merged %d, chunks %d→%d", merged, before, tbl.Chunks())
	}
	if tbl.FrozenChunks() == 0 {
		t.Fatal("no frozen chunks after compaction")
	}
	// Answers survive.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(512)) > 1e-6 {
		t.Fatalf("post-compact sum = %v, %v", sum, err)
	}
	rec, err := tbl.Get(300)
	if err != nil || !rec.Equal(workload.Item(300)) {
		t.Fatalf("post-compact Get = %v, %v", rec, err)
	}
}

func TestCompactSkipsHotChunks(t *testing.T) {
	tbl := load(t, 64, 512)
	defer tbl.Free()
	// Heat two adjacent chunks.
	tbl.Update(0, workload.ItemPriceCol, schema.FloatValue(1))
	tbl.Update(70, workload.ItemPriceCol, schema.FloatValue(1))
	merged, err := tbl.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Chunks 0 and 1 are hot; 2..7 fuse (5 eliminated).
	if merged != 5 {
		t.Fatalf("merged = %d, want 5", merged)
	}
	// Updated chunks still answer correctly.
	rec, err := tbl.Get(0)
	if err != nil || rec[workload.ItemPriceCol].F != 1 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestCompactThenUpdateUnfreezes(t *testing.T) {
	tbl := load(t, 64, 256)
	defer tbl.Free()
	if _, err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(10, workload.ItemPriceCol, schema.FloatValue(7)); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(10)
	if err != nil || rec[workload.ItemPriceCol].F != 7 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestSnapshotSurvivesCompact(t *testing.T) {
	tbl := load(t, 64, 256)
	defer tbl.Free()
	snap := tbl.AnalyticSnapshot()
	defer snap.Release()
	if _, err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := snap.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(got-workload.ExpectedItemPriceSum(256)) > 1e-6 {
		t.Fatalf("snapshot sum after compact = %v, %v", got, err)
	}
}

func TestDefaultChunkRows(t *testing.T) {
	e := New(engine.NewEnv(), 0)
	if e.chunkRows != DefaultChunkRows {
		t.Fatalf("chunkRows = %d", e.chunkRows)
	}
}

// TestFrozenCompressedScan covers Engine.Compress: compaction seals
// compressed column images on the frozen chunks it produces, predicate
// scans over those chunks execute in the compressed domain with the same
// answers as the dense path, and an update unfreezes the chunk and drops
// its stale images.
func TestFrozenCompressedScan(t *testing.T) {
	e := New(engine.NewEnv(), 64)
	e.Compress = true
	raw, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	tbl := raw.(*Table)
	defer tbl.Free()
	const n = 512
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	sealed := 0
	for _, c := range tbl.chunks {
		if c.frozen && len(c.comp) > workload.ItemPriceCol && c.comp[workload.ItemPriceCol] != nil {
			sealed++
		}
	}
	if sealed == 0 {
		t.Fatal("compaction sealed no compressed price images")
	}
	p := exec.Between(0.0, 50.0)
	var wantSum float64
	var wantN int64
	for i := uint64(0); i < n; i++ {
		if v := workload.ItemPrice(i); p.Match(v) {
			wantSum += v
			wantN++
		}
	}
	sum, cnt, err := tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != wantN || math.Abs(sum-wantSum) > 1e-6*math.Max(1, wantSum) {
		t.Fatalf("compressed scan = (%v, %d), want (%v, %d)", sum, cnt, wantSum, wantN)
	}
	// Heating a chunk drops its sealed images along with its frozen state.
	if err := tbl.Update(10, workload.ItemPriceCol, schema.FloatValue(7)); err != nil {
		t.Fatal(err)
	}
	for _, c := range tbl.chunks {
		if c.rows.Contains(10) && c.comp != nil {
			t.Fatal("update left stale compressed images on a heated chunk")
		}
	}
	var wantSum2 float64
	var wantN2 int64
	for i := uint64(0); i < n; i++ {
		v := workload.ItemPrice(i)
		if i == 10 {
			v = 7
		}
		if p.Match(v) {
			wantSum2 += v
			wantN2++
		}
	}
	sum, cnt, err = tbl.SumFloat64Where(workload.ItemPriceCol, p)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != wantN2 || math.Abs(sum-wantSum2) > 1e-6*math.Max(1, wantSum2) {
		t.Fatalf("post-update scan = (%v, %d), want (%v, %d)", sum, cnt, wantSum2, wantN2)
	}
}
