package hyper

import (
	"fmt"

	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/wal"
)

// This file makes the promoted common.Table surface participate in the
// table's reader/writer lock. Table embeds common.Table for the shared
// storage plumbing, but promoted methods would otherwise bypass the
// mutex added for concurrent serving — each override takes the lock and
// delegates to the embedded implementation. (Update, SumFloat64Where,
// GroupSumFloat64Where, Compact and Free lock in hyper.go where the
// engine has its own implementations.)

// Insert appends a record under the writer lock. With a WAL enabled
// the insert is logged under the lock at its predetermined row (log
// order matches apply order, so recovery lands every row where it was)
// and waits for durability only after the lock drops.
func (t *Table) Insert(rec schema.Record) (uint64, error) {
	row, lsn, err := t.insertLocked(rec)
	if err != nil {
		return 0, err
	}
	if lsn != 0 {
		if err := t.wal.L.Sync(lsn); err != nil {
			return 0, fmt.Errorf("hyper: insert at row %d not durable: %w", row, err)
		}
	}
	return row, nil
}

func (t *Table) insertLocked(rec schema.Record) (uint64, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var lsn uint64
	if t.wal != nil {
		// Exhaust every fallible step — record validation and tail-chunk
		// allocation — before the WAL append, so the log never holds an
		// insert the caller saw fail (recovery would replay it, shifting
		// every later logged row position).
		if err := schema.ValidateRecord(t.Rel.Schema(), rec); err != nil {
			return 0, 0, err
		}
		if _, err := t.ensureTail(t.Rel.Rows()); err != nil {
			return 0, 0, err
		}
		var err error
		lsn, err = t.wal.L.Append(&wal.Record{Kind: wal.KindInsert, Table: t.wal.Table, Row: t.Rel.Rows(), Rec: rec})
		if err != nil {
			return 0, 0, fmt.Errorf("hyper: logging insert: %w", err)
		}
	}
	row, err := t.Table.Insert(rec)
	return row, lsn, err
}

// Get materializes one record under the reader lock.
func (t *Table) Get(row uint64) (schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Get(row)
}

// Rows returns the row count under the reader lock.
func (t *Table) Rows() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Rows()
}

// Snapshot digests the physical layout under the reader lock.
func (t *Table) Snapshot() layout.Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Snapshot()
}

// SumFloat64 aggregates under the reader lock.
func (t *Table) SumFloat64(col int) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SumFloat64(col)
}

// SumInt64 aggregates under the reader lock.
func (t *Table) SumInt64(col int) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SumInt64(col)
}

// SumInt64Where aggregates under the reader lock.
func (t *Table) SumInt64Where(col int, p exec.Pred[int64]) (int64, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SumInt64Where(col, p)
}

// CountWhereFloat64 counts under the reader lock.
func (t *Table) CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.CountWhereFloat64(col, p)
}

// CountWhereInt64 counts under the reader lock.
func (t *Table) CountWhereInt64(col int, p exec.Pred[int64]) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.CountWhereInt64(col, p)
}

// SelectFloat64 selects under the reader lock.
func (t *Table) SelectFloat64(col int, pred func(float64) bool) ([]uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SelectFloat64(col, pred)
}

// SelectFloat64Where selects under the reader lock.
func (t *Table) SelectFloat64Where(col int, p exec.Pred[float64]) (*exec.SelVec, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SelectFloat64Where(col, p)
}

// Materialize resolves positions under the reader lock.
func (t *Table) Materialize(positions []uint64) ([]schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Materialize(positions)
}
