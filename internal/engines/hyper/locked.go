package hyper

import (
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
)

// This file makes the promoted common.Table surface participate in the
// table's reader/writer lock. Table embeds common.Table for the shared
// storage plumbing, but promoted methods would otherwise bypass the
// mutex added for concurrent serving — each override takes the lock and
// delegates to the embedded implementation. (Update, SumFloat64Where,
// GroupSumFloat64Where, Compact and Free lock in hyper.go where the
// engine has its own implementations.)

// Insert appends a record under the writer lock.
func (t *Table) Insert(rec schema.Record) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Table.Insert(rec)
}

// Get materializes one record under the reader lock.
func (t *Table) Get(row uint64) (schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Get(row)
}

// Rows returns the row count under the reader lock.
func (t *Table) Rows() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Rows()
}

// Snapshot digests the physical layout under the reader lock.
func (t *Table) Snapshot() layout.Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Snapshot()
}

// SumFloat64 aggregates under the reader lock.
func (t *Table) SumFloat64(col int) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SumFloat64(col)
}

// SumInt64 aggregates under the reader lock.
func (t *Table) SumInt64(col int) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SumInt64(col)
}

// SumInt64Where aggregates under the reader lock.
func (t *Table) SumInt64Where(col int, p exec.Pred[int64]) (int64, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SumInt64Where(col, p)
}

// CountWhereFloat64 counts under the reader lock.
func (t *Table) CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.CountWhereFloat64(col, p)
}

// CountWhereInt64 counts under the reader lock.
func (t *Table) CountWhereInt64(col int, p exec.Pred[int64]) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.CountWhereInt64(col, p)
}

// SelectFloat64 selects under the reader lock.
func (t *Table) SelectFloat64(col int, pred func(float64) bool) ([]uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SelectFloat64(col, pred)
}

// SelectFloat64Where selects under the reader lock.
func (t *Table) SelectFloat64Where(col int, p exec.Pred[float64]) (*exec.SelVec, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.SelectFloat64Where(col, p)
}

// Materialize resolves positions under the reader lock.
func (t *Table) Materialize(positions []uint64) ([]schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Table.Materialize(positions)
}
