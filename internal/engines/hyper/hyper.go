// Package hyper implements the HyPer storage engine as surveyed in the
// paper (Kemper & Neumann 2011, storage renewed by Funke et al. 2012;
// Section IV-B.2): a single-layout, constrained strong flexible engine
// that organizes a relation as a hierarchy of partitions, chunks and
// vectors — vertical partitioning first, each partition split into
// horizontal chunks, each chunk holding one thin directly-linearized
// vector per attribute (DSM-emulated linearization; the chunk boundaries
// constrain the vectors, hence "constrained").
//
// Two hallmark HyPer behaviours are reproduced:
//
//   - Analytic snapshots: AnalyticSnapshot pins the current state;
//     subsequent transactional updates copy-on-write the affected chunk,
//     so long-running analytics never observe (or block) OLTP — the
//     paper's challenge (b.iii), originally realized with virtual-memory
//     snapshots.
//   - Compaction (Funke et al.): chunks untouched by updates turn cold
//     and Compact fuses runs of adjacent full cold chunks into wider
//     frozen chunks, shrinking fragment counts for scan efficiency.
package hyper

import (
	"fmt"
	"sync"

	"hybridstore/internal/compress"
	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/wal"
)

// DefaultChunkRows is the default chunk capacity.
const DefaultChunkRows = 1024

// Engine is the HyPer storage engine.
type Engine struct {
	env       *engine.Env
	chunkRows uint64
	// DeviceScan routes predicate scans over frozen (compaction-produced,
	// immutable-until-updated) chunks through the device fragment cache:
	// the hot/cold split HyPer's compaction already maintains decides
	// what is worth keeping device-resident. Off by default — the
	// surveyed HyPer is CPU-only, and its Table-1 row must stay that way.
	DeviceScan bool
	// Compress seals compressed column images on the frozen chunks
	// compaction produces — the same freeze point that seals their zone
	// maps. Predicate scans over frozen chunks then execute in the
	// compressed domain (host), or ship the compressed image over the bus
	// (device, when DeviceScan is also set). An update unfreezes the chunk
	// and drops its images. Off by default.
	Compress bool
}

// New creates the engine with the given chunk capacity (0 uses
// DefaultChunkRows).
func New(env *engine.Env, chunkRows uint64) *Engine {
	if chunkRows == 0 {
		chunkRows = DefaultChunkRows
	}
	return &Engine{env: env, chunkRows: chunkRows}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "HyPer" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		Responsive: true,
		Processors: taxonomy.CPUOnly,
		Workloads:  taxonomy.HTAP,
		Year:       2015,
	}
}

// chunk is one horizontal slice of the relation: a set of thin vectors,
// one per attribute, plus sharing and temperature state.
type chunk struct {
	rows    layout.RowRange
	vectors []*layout.Fragment // indexed by attribute
	refs    int                // analytic snapshots referencing this chunk
	updates int                // writes since last Compact (temperature)
	frozen  bool               // produced by compaction
	// comp holds per-attribute compressed images sealed at compaction
	// (nil entries for non-compressible attributes); dropped when an
	// update unfreezes the chunk.
	comp []*compress.Column
}

// len returns the filled tuplets (all vectors fill in lockstep).
func (c *chunk) len() int { return c.vectors[0].Len() }

// free releases the chunk's vectors.
func (c *chunk) free() {
	for _, v := range c.vectors {
		v.Free()
	}
}

// Table is a HyPer relation.
//
// mu guards the chunk list, chunk contents, refcounts and the detached
// set: writers (Insert via appendRecord, Update, Compact, snapshot
// pin/release, Free) take it exclusively, readers (scans, point reads,
// snapshot scans) share it. The promoted common.Table entry points are
// re-declared in locked.go so every public method participates.
type Table struct {
	*common.Table
	mu        sync.RWMutex
	chunkRows uint64
	chunks    []*chunk
	// detached holds chunks that were replaced (by COW or compaction)
	// while snapshots still reference them.
	detached []*chunk
	// deviceScan and compress mirror the Engine flags at creation time.
	deviceScan bool
	compress   bool
	// wal, when set by EnableWAL, logs every Insert/Update before it
	// mutates the chunks.
	wal *wal.TableLog
}

// Create makes an empty relation.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	rel.AddLayout(layout.NewLayout("chunks", s))
	t := &Table{Table: common.NewTable(e.env, rel), chunkRows: e.chunkRows,
		deviceScan: e.DeviceScan, compress: e.Compress}
	t.Append = t.appendRecord
	return t, nil
}

// newChunk allocates a chunk's vectors starting at row begin.
func (t *Table) newChunk(begin, capRows uint64) (*chunk, error) {
	s := t.Rel.Schema()
	c := &chunk{rows: layout.RowRange{Begin: begin, End: begin + capRows}}
	for col := 0; col < s.Arity(); col++ {
		f, err := layout.NewFragment(t.Env.Host, s, []int{col}, c.rows, layout.Direct)
		if err != nil {
			c.free()
			return nil, fmt.Errorf("hyper: allocating vector: %w", err)
		}
		c.vectors = append(c.vectors, f)
	}
	return c, nil
}

// attach adds the chunk's vectors to the relation layout.
func (t *Table) attach(c *chunk) error {
	l, err := t.Rel.Primary()
	if err != nil {
		return err
	}
	for _, v := range c.vectors {
		if err := l.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// detach removes the chunk's vectors from the relation layout and either
// frees the chunk or parks it for live snapshots.
func (t *Table) detach(c *chunk) {
	l, _ := t.Rel.Primary()
	for _, v := range c.vectors {
		l.Remove(v)
	}
	// The chunk's vectors leave the live layout (COW replacement or
	// compaction); retire any device-cached images of them eagerly.
	for _, v := range c.vectors {
		t.Env.InvalidateFrag(t.Rel.Name(), v.ID())
	}
	if c.refs > 0 {
		t.detached = append(t.detached, c)
	} else {
		c.free()
	}
}

// ensureTail guarantees the tail chunk has room for a record landing at
// row, allocating and attaching a fresh chunk when the current tail is
// full (or absent). It is the fallible part of an insert, split out so
// the WAL path can run it before logging.
func (t *Table) ensureTail(row uint64) (*chunk, error) {
	if n := len(t.chunks); n > 0 && t.chunks[n-1].len() < t.chunks[n-1].Cap() {
		return t.chunks[n-1], nil
	}
	c, err := t.newChunk(row, t.chunkRows)
	if err != nil {
		return nil, err
	}
	if err := t.attach(c); err != nil {
		c.free()
		return nil, err
	}
	t.chunks = append(t.chunks, c)
	return c, nil
}

// appendRecord routes an insert into the tail chunk.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	tail, err := t.ensureTail(row)
	if err != nil {
		return err
	}
	for col, v := range tail.vectors {
		if err := v.AppendTuplet([]schema.Value{rec[col]}); err != nil {
			return err
		}
	}
	return nil
}

// Cap returns the chunk's row capacity.
func (c *chunk) Cap() int { return int(c.rows.Len()) }

// chunkFor locates the chunk covering row.
func (t *Table) chunkFor(row uint64) (*chunk, error) {
	for _, c := range t.chunks {
		if c.rows.Contains(row) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: row %d", engine.ErrNoSuchRow, row)
}

// Update copy-on-writes the chunk when an analytic snapshot references
// it, then writes in place and heats the chunk. With a WAL enabled the
// update is logged under the lock (so log order matches apply order)
// and waits for durability after the lock drops, sharing group-commit
// flushes with concurrent writers.
func (t *Table) Update(row uint64, col int, v schema.Value) error {
	lsn, err := t.updateLocked(row, col, v)
	if err != nil {
		return err
	}
	if lsn != 0 {
		if err := t.wal.L.Sync(lsn); err != nil {
			return fmt.Errorf("hyper: update of row %d not durable: %w", row, err)
		}
	}
	return nil
}

func (t *Table) updateLocked(row uint64, col int, v schema.Value) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if row >= t.Rel.Rows() {
		return 0, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.Rel.Rows())
	}
	c, err := t.chunkFor(row)
	if err != nil {
		return 0, err
	}
	if col < 0 || col >= len(c.vectors) {
		return 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	// Every fallible step — bounds, value validation, the COW
	// clone/attach — runs before the WAL append, so the log never holds
	// an update the caller saw fail (recovery would otherwise replay it).
	if err := schema.ValidateValue(t.Rel.Schema().Attr(col), v); err != nil {
		return 0, err
	}
	if c.refs > 0 {
		clone, err := t.cloneChunk(c)
		if err != nil {
			return 0, err
		}
		for i := range t.chunks {
			if t.chunks[i] == c {
				t.chunks[i] = clone
			}
		}
		t.detach(c)
		if err := t.attach(clone); err != nil {
			return 0, err
		}
		c = clone
	}
	var lsn uint64
	if t.wal != nil {
		lsn, err = t.wal.L.Append(&wal.Record{Kind: wal.KindUpdate, Table: t.wal.Table, Row: row, Col: col, Val: v})
		if err != nil {
			return 0, fmt.Errorf("hyper: logging update: %w", err)
		}
	}
	c.updates++
	c.frozen = false
	c.comp = nil // sealed images are stale the moment the chunk heats
	return lsn, c.vectors[col].Set(int(row-c.rows.Begin), col, v)
}

// cloneChunk deep-copies a chunk's vectors (the COW step).
func (t *Table) cloneChunk(c *chunk) (*chunk, error) {
	clone := &chunk{rows: c.rows, updates: c.updates, frozen: c.frozen}
	for _, v := range c.vectors {
		nv, err := v.CloneTo(t.Env.Host)
		if err != nil {
			for _, done := range clone.vectors {
				done.Free()
			}
			return nil, fmt.Errorf("hyper: copy-on-write: %w", err)
		}
		clone.vectors = append(clone.vectors, nv)
	}
	return clone, nil
}

// Chunks returns the live chunk count.
func (t *Table) Chunks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.chunks)
}

// FrozenChunks counts compaction-produced chunks.
func (t *Table) FrozenChunks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, c := range t.chunks {
		if c.frozen {
			n++
		}
	}
	return n
}

// Compact fuses adjacent, full, cold (update-free) chunks into single
// wider frozen chunks and cools every chunk for the next round. It
// returns the number of chunks eliminated.
func (t *Table) Compact() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*chunk
	merged := 0
	i := 0
	for i < len(t.chunks) {
		// Extend a run of adjacent full cold chunks.
		j := i
		for j < len(t.chunks) && t.chunks[j].updates == 0 &&
			t.chunks[j].len() == t.chunks[j].Cap() &&
			(j == i || t.chunks[j].rows.Begin == t.chunks[j-1].rows.End) {
			j++
		}
		if j-i >= 2 {
			fused, err := t.fuse(t.chunks[i:j])
			if err != nil {
				return merged, err
			}
			out = append(out, fused)
			merged += j - i - 1
			i = j
			continue
		}
		out = append(out, t.chunks[i])
		i++
	}
	for _, c := range out {
		c.updates = 0
	}
	t.chunks = out
	return merged, nil
}

// fuse concatenates a run of chunks into one frozen chunk.
func (t *Table) fuse(run []*chunk) (*chunk, error) {
	begin := run[0].rows.Begin
	end := run[len(run)-1].rows.End
	fused, err := t.newChunk(begin, end-begin)
	if err != nil {
		return nil, err
	}
	fused.frozen = true
	s := t.Rel.Schema()
	for col := 0; col < s.Arity(); col++ {
		for _, c := range run {
			for i := 0; i < c.len(); i++ {
				v, err := c.vectors[col].Get(i, col)
				if err != nil {
					fused.free()
					return nil, err
				}
				if err := fused.vectors[col].AppendTuplet([]schema.Value{v}); err != nil {
					fused.free()
					return nil, err
				}
			}
		}
	}
	// A compaction-produced chunk is frozen: seal exact per-vector bounds
	// so predicate scans can prune it (a later in-place Update widens the
	// zone and clears the seal).
	for _, v := range fused.vectors {
		v.SealStats()
	}
	// Compaction is also the compression freeze point: seal a compressed
	// image per 8-byte numeric vector so scans over the cold region run in
	// the compressed domain.
	if t.compress {
		fused.comp = make([]*compress.Column, len(fused.vectors))
		for col, v := range fused.vectors {
			a := s.Attr(col)
			if a.Size != 8 || (a.Kind != schema.Int64 && a.Kind != schema.Float64) {
				continue
			}
			cv, err := v.ColVector(col)
			if err != nil || !cv.Contiguous() {
				continue
			}
			cc, err := compress.Compress(cv.Data[cv.Base:cv.Base+cv.Len*8], cv.Len, 8)
			if err != nil {
				fused.free()
				return nil, fmt.Errorf("hyper: sealing compressed image: %w", err)
			}
			fused.comp[col] = cc
		}
	}
	if err := t.attach(fused); err != nil {
		fused.free()
		return nil, err
	}
	for _, c := range run {
		t.detach(c)
	}
	return fused, nil
}

// SumFloat64Where overrides the host fused scan when device scanning is
// enabled: frozen chunks — immutable until an update unfreezes them — go
// to the GPU through the fragment cache, so repeated analytics over the
// cold region cost zero bus bytes; unfrozen (hot) chunks stay on the
// host operator, where every write would otherwise invalidate their
// cached image.
func (t *Table) SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, _, closed := exec.ClosedFloat64(p)
	useDev := t.deviceScan && t.Env.Cache != nil && closed
	if (!useDev && !t.compress) ||
		col < 0 || col >= t.Rel.Schema().Arity() || t.Rel.Schema().Attr(col).Kind != schema.Float64 {
		return t.Table.SumFloat64Where(col, p)
	}
	rows := t.Rel.Rows()
	var hostPieces, devPieces []exec.Piece
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		f := c.vectors[col]
		v, err := f.ColVector(col)
		if err != nil {
			return 0, 0, err
		}
		piece := exec.Piece{
			Rows: layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(v.Len)},
			Vec:  v, Zone: f.Stats(col),
			FragID: f.ID(), FragVersion: f.Version(),
		}
		if c.frozen && col < len(c.comp) && c.comp[col] != nil {
			// The frozen chunk scans in the compressed domain; the vector
			// keeps only its logical metadata.
			piece.Comp = c.comp[col]
			piece.Vec.Data = nil
			piece.Vec.Base = 0
		}
		if useDev && c.frozen {
			devPieces = append(devPieces, piece)
		} else {
			hostPieces = append(hostPieces, piece)
		}
	}
	var sum float64
	var n int64
	if len(devPieces) > 0 {
		ds := t.Env.DeviceExec(t.Rel.Name())
		devSum, devN, err := ds.SumFloat64Where(col, devPieces, p)
		if err != nil {
			return 0, 0, err
		}
		sum += devSum
		n += devN
	}
	hostSum, hostN, err := exec.SumFloat64Where(t.Cfg, hostPieces, p)
	if err != nil {
		return 0, 0, err
	}
	return sum + hostSum, n + hostN, nil
}

// GroupSumFloat64Where overrides the fused grouped scan the same way
// SumFloat64Where does: frozen chunks go to the device through the
// fragment cache (one fused kernel launch and one group-table D2H per
// chunk) when device scanning is on, and scan in the compressed domain
// when compression is on; hot chunks stay on the host fused operator.
// Group keys stay raw on the device path — the fused kernel reads them
// alongside the value sweep.
func (t *Table) GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, _, closed := exec.ClosedFloat64(p)
	useDev := t.deviceScan && t.Env.Cache != nil && closed
	s := t.Rel.Schema()
	ok := keyCol >= 0 && keyCol < s.Arity() && valCol >= 0 && valCol < s.Arity() &&
		(s.Attr(keyCol).Kind == schema.Int64 || s.Attr(keyCol).Kind == schema.Int32) &&
		s.Attr(valCol).Kind == schema.Float64
	if (!useDev && !t.compress) || !ok {
		return t.Table.GroupSumFloat64Where(keyCol, valCol, p)
	}
	rows := t.Rel.Rows()
	var hostK, hostV, devK, devV []exec.Piece
	for _, c := range t.chunks {
		if c.rows.Begin >= rows {
			break
		}
		kf, vf := c.vectors[keyCol], c.vectors[valCol]
		kv, err := kf.ColVector(keyCol)
		if err != nil {
			return nil, err
		}
		vv, err := vf.ColVector(valCol)
		if err != nil {
			return nil, err
		}
		kp := exec.Piece{
			Rows: layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(kv.Len)},
			Vec:  kv, Zone: kf.Stats(keyCol),
			FragID: kf.ID(), FragVersion: kf.Version(),
		}
		vp := exec.Piece{
			Rows: layout.RowRange{Begin: c.rows.Begin, End: c.rows.Begin + uint64(vv.Len)},
			Vec:  vv, Zone: vf.Stats(valCol),
			FragID: vf.ID(), FragVersion: vf.Version(),
		}
		if c.frozen && valCol < len(c.comp) && c.comp[valCol] != nil {
			vp.Comp = c.comp[valCol]
			vp.Vec.Data = nil
			vp.Vec.Base = 0
		}
		if useDev && c.frozen {
			devK = append(devK, kp)
			devV = append(devV, vp)
			continue
		}
		if c.frozen && keyCol < len(c.comp) && c.comp[keyCol] != nil {
			kp.Comp = c.comp[keyCol]
			kp.Vec.Data = nil
			kp.Vec.Base = 0
		}
		hostK = append(hostK, kp)
		hostV = append(hostV, vp)
	}
	var devGroups []exec.GroupResult
	if len(devV) > 0 {
		ds := t.Env.DeviceExec(t.Rel.Name())
		var err error
		devGroups, err = ds.GroupSumFloat64Where(keyCol, valCol, devK, devV, p)
		if err != nil {
			return nil, err
		}
	}
	hostGroups, err := exec.GroupSumFloat64Where(t.Cfg, hostK, hostV, p)
	if err != nil {
		return nil, err
	}
	return exec.MergeGroupResults(devGroups, hostGroups), nil
}

// AnalyticSnapshot pins the current state for long-running analytics.
// The snapshot sees exactly the rows present now; concurrent updates
// copy-on-write and never disturb it. Callers must Release it.
type AnalyticSnapshot struct {
	t      *Table
	chunks []*chunk
	rows   uint64
	freed  bool
}

// AnalyticSnapshot creates a snapshot of the table.
func (t *Table) AnalyticSnapshot() *AnalyticSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &AnalyticSnapshot{t: t, rows: t.Rel.Rows()}
	for _, c := range t.chunks {
		c.refs++
		snap.chunks = append(snap.chunks, c)
	}
	return snap
}

// Rows returns the snapshot's pinned row count.
func (s *AnalyticSnapshot) Rows() uint64 { return s.rows }

// SumFloat64 aggregates col over the snapshot's pinned chunks.
func (s *AnalyticSnapshot) SumFloat64(col int) (float64, error) {
	s.t.mu.RLock()
	defer s.t.mu.RUnlock()
	if s.freed {
		return 0, fmt.Errorf("hyper: %w: snapshot released", engine.ErrUnsupported)
	}
	var pieces []exec.Piece
	for _, c := range s.chunks {
		if c.rows.Begin >= s.rows {
			break
		}
		v, err := c.vectors[col].ColVector(col)
		if err != nil {
			return 0, err
		}
		end := c.rows.Begin + uint64(v.Len)
		if end > s.rows {
			v.Len = int(s.rows - c.rows.Begin)
			end = s.rows
		}
		pieces = append(pieces, exec.Piece{Rows: layout.RowRange{Begin: c.rows.Begin, End: end}, Vec: v})
	}
	return exec.SumFloat64(s.t.Cfg, pieces)
}

// Release unpins the snapshot; parked chunks with no remaining
// references are freed.
func (s *AnalyticSnapshot) Release() {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.freed {
		return
	}
	s.freed = true
	for _, c := range s.chunks {
		c.refs--
	}
	var still []*chunk
	for _, c := range s.t.detached {
		if c.refs <= 0 {
			c.free()
		} else {
			still = append(still, c)
		}
	}
	s.t.detached = still
}

// Free releases the table, its chunks and any parked chunks.
func (t *Table) Free() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Table.Free() // frees everything attached to the layout
	for _, c := range t.detached {
		c.free()
	}
	t.detached, t.chunks = nil, nil
}
