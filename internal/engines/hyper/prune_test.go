package hyper

import (
	"math"
	"testing"

	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestPruneStatsSealHyperCompact verifies that compaction seals the
// fused chunk's vector zones and that a later in-place update widens
// the zone and clears the seal.
func TestPruneStatsSealHyperCompact(t *testing.T) {
	tbl := load(t, 128, 512)
	defer tbl.Free()
	if _, err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	var fused *chunk
	for _, c := range tbl.chunks {
		if c.frozen {
			fused = c
		}
	}
	if fused == nil {
		t.Fatal("compaction produced no frozen chunk")
	}
	z := fused.vectors[workload.ItemPriceCol].Stats(workload.ItemPriceCol)
	if z == nil || !z.Sealed() {
		t.Fatal("fused price vector zone not sealed")
	}
	min, max, ok := z.Float64Bounds()
	if !ok {
		t.Fatal("sealed zone has no bounds")
	}
	wantMin := workload.ItemPrice(fused.rows.Begin)
	wantMax := workload.ItemPrice(fused.rows.Begin + uint64(fused.len()) - 1)
	if min != wantMin || max != wantMax {
		t.Fatalf("sealed bounds [%v,%v], want [%v,%v]", min, max, wantMin, wantMax)
	}

	// An in-place update through the frozen chunk widens and unseals.
	if err := tbl.Update(fused.rows.Begin, workload.ItemPriceCol, schema.FloatValue(900)); err != nil {
		t.Fatal(err)
	}
	z = fused.vectors[workload.ItemPriceCol].Stats(workload.ItemPriceCol)
	if z.Sealed() {
		t.Error("zone stayed sealed across an in-place update")
	}
	if _, max, _ = z.Float64Bounds(); max < 900 {
		t.Errorf("zone max %v did not widen to cover the update", max)
	}
}

// TestPruneHyperCompactedScan checks the whole pruned path over the
// compacted table: an out-of-range predicate prunes every chunk yet
// answers exactly, and the pruned counter advances.
func TestPruneHyperCompactedScan(t *testing.T) {
	tbl := load(t, 128, 512)
	defer tbl.Free()
	if _, err := tbl.Compact(); err != nil {
		t.Fatal(err)
	}
	before := obs.TakeSnapshot()
	sum, n, err := tbl.SumFloat64Where(workload.ItemPriceCol, exec.Gt[float64](500))
	if err != nil {
		t.Fatal(err)
	}
	if sum != 0 || n != 0 {
		t.Fatalf("impossible predicate returned (%v, %d)", sum, n)
	}
	after := obs.TakeSnapshot()
	if after.Counter("exec.zonemap.pruned") <= before.Counter("exec.zonemap.pruned") {
		t.Error("exec.zonemap.pruned did not advance")
	}

	sum, n, err = tbl.SumFloat64Where(workload.ItemPriceCol, exec.Lt[float64](2))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	var wantN int64
	for i := uint64(0); i < 512; i++ {
		if p := workload.ItemPrice(i); p < 2 {
			want += p
			wantN++
		}
	}
	if n != wantN || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("selective sum = (%v, %d), want (%v, %d)", sum, n, want, wantN)
	}
}
