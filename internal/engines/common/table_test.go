package common

import (
	"errors"
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.MustNew(schema.Int64Attr("id"), schema.Float64Attr("val"))
}

// mirroredTable builds a two-layout (NSM + per-column thin) table with a
// simple append router, exercising the common base the way multi-layout
// engines do.
func mirroredTable(t *testing.T, rows uint64) *Table {
	t.Helper()
	env := engine.NewEnv()
	s := testSchema()
	rel := layout.NewRelation("r", s)
	nsmL := layout.NewLayout("rows", s)
	nsm, err := layout.NewFragment(env.Host, s, layout.AllCols(s), layout.RowRange{Begin: 0, End: rows}, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	nsmL.Add(nsm)
	colL, err := layout.Vertical(env.Host, "cols", s, [][]int{{0}, {1}}, rows,
		func([]int) layout.Linearization { return layout.Direct })
	if err != nil {
		t.Fatal(err)
	}
	rel.AddLayout(nsmL)
	rel.AddLayout(colL)
	tbl := NewTable(env, rel)
	tbl.Append = func(row uint64, rec schema.Record) error {
		if err := AppendToFragments(rec, nsm); err != nil {
			return err
		}
		return AppendToFragments(rec, colL.Fragments()...)
	}
	return tbl
}

func fill(t *testing.T, tbl *Table, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		rec := schema.Record{schema.IntValue(int64(i)), schema.FloatValue(float64(i) / 2)}
		row, err := tbl.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		if row != i {
			t.Fatalf("row = %d, want %d", row, i)
		}
	}
}

func TestInsertRequiresRouter(t *testing.T) {
	env := engine.NewEnv()
	rel := layout.NewRelation("r", testSchema())
	tbl := NewTable(env, rel)
	if _, err := tbl.Insert(schema.Record{schema.IntValue(1), schema.FloatValue(1)}); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertChecksArity(t *testing.T) {
	tbl := mirroredTable(t, 8)
	if _, err := tbl.Insert(schema.Record{schema.IntValue(1)}); !errors.Is(err, schema.ErrArityMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateWritesAllLayouts(t *testing.T) {
	tbl := mirroredTable(t, 8)
	fill(t, tbl, 4)
	if err := tbl.Update(2, 1, schema.FloatValue(99)); err != nil {
		t.Fatal(err)
	}
	for _, l := range tbl.Rel.Layouts() {
		f, err := l.FragmentAt(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.Get(2, 1)
		if err != nil || v.F != 99 {
			t.Fatalf("layout %q value = %v, %v", l.Name(), v, err)
		}
	}
	if err := tbl.Update(9, 1, schema.FloatValue(1)); !errors.Is(err, engine.ErrNoSuchRow) {
		t.Fatalf("out of range err = %v", err)
	}
	if err := tbl.Update(2, 9, schema.FloatValue(1)); !errors.Is(err, layout.ErrNotCovered) {
		t.Fatalf("bad col err = %v", err)
	}
}

func TestScanRoutesToCheapestLayout(t *testing.T) {
	tbl := mirroredTable(t, 8)
	fill(t, tbl, 8)
	if got := tbl.LayoutForScan(1).Name(); got != "cols" {
		t.Fatalf("scan layout = %q", got)
	}
	if got := tbl.LayoutForMaterialize().Name(); got != "rows" {
		t.Fatalf("materialize layout = %q", got)
	}
	sum, err := tbl.SumFloat64(1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 8; i++ {
		want += float64(i) / 2
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	isum, err := tbl.SumInt64(0)
	if err != nil || isum != 28 {
		t.Fatalf("int sum = %d, %v", isum, err)
	}
}

func TestGetAndMaterialize(t *testing.T) {
	tbl := mirroredTable(t, 8)
	fill(t, tbl, 8)
	rec, err := tbl.Get(5)
	if err != nil || rec[0].I != 5 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
	if _, err := tbl.Get(8); !errors.Is(err, engine.ErrNoSuchRow) {
		t.Fatalf("err = %v", err)
	}
	recs, err := tbl.Materialize([]uint64{1, 3})
	if err != nil || len(recs) != 2 || recs[1][0].I != 3 {
		t.Fatalf("Materialize = %v, %v", recs, err)
	}
	if _, err := tbl.Materialize([]uint64{8}); !errors.Is(err, engine.ErrNoSuchRow) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyRelationOperations(t *testing.T) {
	env := engine.NewEnv()
	rel := layout.NewRelation("r", testSchema())
	tbl := NewTable(env, rel)
	if _, err := tbl.SumFloat64(1); !errors.Is(err, layout.ErrNoLayout) {
		t.Fatalf("sum err = %v", err)
	}
	if l := tbl.LayoutForScan(0); l != nil {
		t.Fatal("scan layout on empty relation")
	}
	if l := tbl.LayoutForMaterialize(); l != nil {
		t.Fatal("materialize layout on empty relation")
	}
}

func TestRecordSpreadOnEmptyRows(t *testing.T) {
	tbl := mirroredTable(t, 8)
	// Zero rows: spread falls back to fragment counts; the NSM layout
	// (1 fragment) wins.
	if got := tbl.LayoutForMaterialize().Name(); got != "rows" {
		t.Fatalf("materialize layout = %q", got)
	}
}

func TestSnapshotAndFree(t *testing.T) {
	tbl := mirroredTable(t, 8)
	fill(t, tbl, 2)
	snap := tbl.Snapshot()
	if len(snap.Layouts) != 2 || snap.Rows != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if tbl.Schema().Arity() != 2 {
		t.Fatal("schema accessor broken")
	}
	tbl.Free()
	if len(tbl.Rel.Layouts()) != 0 {
		t.Fatal("Free left layouts")
	}
}

func TestAppendToFragmentsProjection(t *testing.T) {
	env := engine.NewEnv()
	s := testSchema()
	f, err := layout.NewFragment(env.Host, s, []int{1}, layout.RowRange{Begin: 0, End: 2}, layout.Direct)
	if err != nil {
		t.Fatal(err)
	}
	rec := schema.Record{schema.IntValue(1), schema.FloatValue(2.5)}
	if err := AppendToFragments(rec, f); err != nil {
		t.Fatal(err)
	}
	v, err := f.Get(0, 1)
	if err != nil || v.F != 2.5 {
		t.Fatalf("projected append = %v, %v", v, err)
	}
	// Full fragment propagates the error.
	AppendToFragments(rec, f)
	if err := AppendToFragments(rec, f); !errors.Is(err, layout.ErrFragmentFull) {
		t.Fatalf("err = %v", err)
	}
}
