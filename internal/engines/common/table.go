// Package common provides the shared layout-backed table implementation
// the surveyed engines build on. Each engine contributes its distinctive
// structure (page geometry, mirrors, containers, tile groups, …) by
// constructing layouts and an append router; common supplies the generic
// query paths over any layout composition:
//
//   - reads route to the first covering fragment,
//   - updates write through to every covering fragment of every layout
//     (keeping replication-based multi-layout engines coherent),
//   - attribute-centric scans pick the cheapest layout by the calibrated
//     cost model (which is how Fractured Mirrors sends Q2 to its DSM
//     mirror and Q1 to its NSM mirror),
//   - record-centric materialization picks the layout with the smallest
//     per-record fragment spread.
package common

import (
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
)

// Table is the shared layout-backed table. Engines embed it and set
// Append to their routing logic.
type Table struct {
	// Env is the platform environment.
	Env *engine.Env
	// Rel is the relation with its layout set.
	Rel *layout.Relation
	// Cfg is the execution configuration for the bulk operators.
	Cfg exec.Config
	// Append routes one record into the engine's fragments and must
	// account for growth (new chunks, grown mirrors, …). It runs with the
	// row position the record will occupy.
	Append func(row uint64, rec schema.Record) error
}

// NewTable wires a table over a relation using the environment's host
// profile and clock for cost accounting.
func NewTable(env *engine.Env, rel *layout.Relation) *Table {
	return &Table{
		Env: env,
		Rel: rel,
		Cfg: exec.Config{
			Policy: env.ExecPolicy,
			Host:   env.HostProfile,
			Clock:  env.Clock,
		},
	}
}

// Schema returns the relation schema.
func (t *Table) Schema() *schema.Schema { return t.Rel.Schema() }

// Rows returns the row count.
func (t *Table) Rows() uint64 { return t.Rel.Rows() }

// Snapshot digests the live structure.
func (t *Table) Snapshot() layout.Snapshot { return t.Rel.Digest() }

// Free releases all layouts.
func (t *Table) Free() { t.Rel.Free() }

// Insert appends the record via the engine's router.
func (t *Table) Insert(rec schema.Record) (uint64, error) {
	if len(rec) != t.Rel.Schema().Arity() {
		return 0, fmt.Errorf("%w: arity %d vs schema %d", schema.ErrArityMismatch, len(rec), t.Rel.Schema().Arity())
	}
	row := t.Rel.Rows()
	if t.Append == nil {
		return 0, fmt.Errorf("%w: engine did not install an append router", engine.ErrUnsupported)
	}
	if err := t.Append(row, rec); err != nil {
		return 0, err
	}
	t.Rel.SetRows(row + 1)
	return row, nil
}

// Get materializes the record at row from the cheapest layout.
func (t *Table) Get(row uint64) (schema.Record, error) {
	if row >= t.Rel.Rows() {
		return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.Rel.Rows())
	}
	l := t.LayoutForMaterialize()
	if l == nil {
		return nil, layout.ErrNoLayout
	}
	return l.Record(row)
}

// Update writes v through to every fragment covering (row, col) in every
// layout, keeping replicas coherent.
func (t *Table) Update(row uint64, col int, v schema.Value) error {
	if row >= t.Rel.Rows() {
		return fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.Rel.Rows())
	}
	touched := 0
	for _, l := range t.Rel.Layouts() {
		for _, f := range l.Fragments() {
			if !f.Rows().Contains(row) || !f.HasCol(col) {
				continue
			}
			i := int(row - f.Rows().Begin)
			if i >= f.Len() {
				continue
			}
			if err := f.Set(i, col, v); err != nil {
				return err
			}
			touched++
		}
	}
	if touched == 0 {
		return fmt.Errorf("%w: no fragment covers row %d col %d", layout.ErrNotCovered, row, col)
	}
	return nil
}

// LayoutForScan returns the layout with the cheapest attribute-centric
// scan of col under the calibrated cost model.
func (t *Table) LayoutForScan(col int) *layout.Layout {
	var best *layout.Layout
	bestBytes := int64(-1)
	h := t.Cfg.Host
	if h.CacheLine == 0 {
		h = perfmodel.DefaultHost()
	}
	for _, l := range t.Rel.Layouts() {
		pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
		if err != nil {
			continue
		}
		var bytes int64
		for _, p := range pieces {
			bytes += h.StridedBytes(int64(p.Vec.Len), p.Vec.Size, p.Vec.Stride)
		}
		if bestBytes < 0 || bytes < bestBytes {
			best, bestBytes = l, bytes
		}
	}
	if best == nil && len(t.Rel.Layouts()) > 0 {
		return t.Rel.Layouts()[0]
	}
	return best
}

// LayoutForMaterialize returns the layout whose records span the fewest
// fragments (cheapest record-centric access).
func (t *Table) LayoutForMaterialize() *layout.Layout {
	var best *layout.Layout
	bestSpread := -1
	rows := t.Rel.Rows()
	for _, l := range t.Rel.Layouts() {
		spread := recordSpread(l, rows)
		if spread < 0 {
			continue
		}
		if bestSpread < 0 || spread < bestSpread {
			best, bestSpread = l, spread
		}
	}
	if best == nil && len(t.Rel.Layouts()) > 0 {
		return t.Rel.Layouts()[0]
	}
	return best
}

// recordSpread counts the fragments covering one representative record,
// or -1 when the layout does not cover the relation.
func recordSpread(l *layout.Layout, rows uint64) int {
	if rows == 0 {
		return len(l.Fragments())
	}
	probe := rows - 1
	seen := make(map[*layout.Fragment]bool)
	for c := 0; c < l.Schema().Arity(); c++ {
		f, err := l.FragmentAt(probe, c)
		if err != nil {
			return -1
		}
		seen[f] = true
	}
	return len(seen)
}

// SumFloat64 aggregates col over the cheapest layout.
func (t *Table) SumFloat64(col int) (float64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return 0, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return 0, err
	}
	return exec.SumFloat64(t.Cfg, pieces)
}

// SumInt64 aggregates an int64 attribute over the cheapest layout.
func (t *Table) SumInt64(col int) (int64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return 0, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return 0, err
	}
	return exec.SumInt64(t.Cfg, pieces)
}

// SumFloat64Where aggregates (sum, count) of col over the rows matching
// p, letting the executor prune fragments whose zone maps prove them
// match-free (ColumnView attaches each fragment's zone to its piece).
func (t *Table) SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return 0, 0, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return 0, 0, err
	}
	return exec.SumFloat64Where(t.Cfg, pieces, p)
}

// SumInt64Where is SumFloat64Where for int64 attributes.
func (t *Table) SumInt64Where(col int, p exec.Pred[int64]) (int64, int64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return 0, 0, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return 0, 0, err
	}
	return exec.SumInt64Where(t.Cfg, pieces, p)
}

// CountWhereFloat64 counts the rows matching p on col with zone pruning.
func (t *Table) CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return 0, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return 0, err
	}
	return exec.CountWhereFloat64(t.Cfg, pieces, p)
}

// CountWhereInt64 is CountWhereFloat64 for int64 attributes.
func (t *Table) CountWhereInt64(col int, p exec.Pred[int64]) (int64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return 0, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return 0, err
	}
	return exec.CountWhereInt64(t.Cfg, pieces, p)
}

// GroupSumFloat64Where computes SELECT key, SUM(val), COUNT(*) WHERE p
// GROUP BY key with the fused single-pass operator: no selection vector
// is materialized, fragments whose value zones exclude p are pruned
// with both columns' bytes saved. Both columns must come from one
// layout (so the piece lists stay row-aligned); the value column's
// cheapest layout is preferred, falling back to any layout covering
// both.
func (t *Table) GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	rows := t.Rel.Rows()
	candidates := make([]*layout.Layout, 0, len(t.Rel.Layouts())+1)
	if l := t.LayoutForScan(valCol); l != nil {
		candidates = append(candidates, l)
	}
	candidates = append(candidates, t.Rel.Layouts()...)
	tried := make(map[*layout.Layout]bool, len(candidates))
	var lastErr error
	for _, l := range candidates {
		if l == nil || tried[l] {
			continue
		}
		tried[l] = true
		keys, err := exec.ColumnView(l, keyCol, rows)
		if err != nil {
			lastErr = err
			continue
		}
		vals, err := exec.ColumnView(l, valCol, rows)
		if err != nil {
			lastErr = err
			continue
		}
		return exec.GroupSumFloat64Where(t.Cfg, keys, vals, p)
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, layout.ErrNoLayout
}

// SelectFloat64 returns the sorted positions whose col value satisfies
// an arbitrary predicate — the generic closure fallback for predicates
// the sargable vocabulary cannot express (no pruning, no
// specialization).
func (t *Table) SelectFloat64(col int, pred func(float64) bool) ([]uint64, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return nil, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return nil, err
	}
	return exec.SelectFloat64(t.Cfg, pieces, pred)
}

// SelectFloat64Where returns the sorted positions matching p on col as a
// pooled selection vector (callers must Release it).
func (t *Table) SelectFloat64Where(col int, p exec.Pred[float64]) (*exec.SelVec, error) {
	l := t.LayoutForScan(col)
	if l == nil {
		return nil, layout.ErrNoLayout
	}
	pieces, err := exec.ColumnView(l, col, t.Rel.Rows())
	if err != nil {
		return nil, err
	}
	return exec.SelectFloat64Pred(t.Cfg, pieces, p)
}

// Materialize resolves the position list against the cheapest layout.
func (t *Table) Materialize(positions []uint64) ([]schema.Record, error) {
	for _, p := range positions {
		if p >= t.Rel.Rows() {
			return nil, fmt.Errorf("%w: position %d of %d", engine.ErrNoSuchRow, p, t.Rel.Rows())
		}
	}
	l := t.LayoutForMaterialize()
	if l == nil {
		return nil, layout.ErrNoLayout
	}
	return exec.Materialize(t.Cfg, l, positions)
}

// AppendToFragments writes the record's tuplet pieces into each given
// fragment (projecting to the fragment's columns); a convenience for
// append routers.
func AppendToFragments(rec schema.Record, frags ...*layout.Fragment) error {
	for _, f := range frags {
		vals := make([]schema.Value, 0, f.Arity())
		for _, c := range f.Cols() {
			vals = append(vals, rec[c])
		}
		if err := f.AppendTuplet(vals); err != nil {
			return err
		}
	}
	return nil
}
