package gputx

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, n uint64) (*engine.Env, *Table) {
	t.Helper()
	env := engine.NewEnv()
	e := New(env)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	gt := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := gt.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return env, gt
}

func TestColumnsAreDeviceResident(t *testing.T) {
	_, tbl := load(t, 300)
	defer tbl.Free()
	snap := tbl.Snapshot()
	for _, f := range snap.Layouts[0].Fragments {
		if f.Space != mem.Device {
			t.Fatalf("fragment in %v, want device", f.Space)
		}
		if f.Fat || len(f.Cols) != 1 {
			t.Fatalf("fragment %+v is not a thin column", f)
		}
	}
}

func TestInsertsChargeBusTime(t *testing.T) {
	env, tbl := load(t, 100)
	defer tbl.Free()
	if env.Clock.ElapsedNs() <= 0 {
		t.Fatal("device loads charged no bus time")
	}
}

func TestBulkTransactionExecution(t *testing.T) {
	_, tbl := load(t, 200)
	defer tbl.Free()
	// A batch of transactions: two updates then a read of each updated
	// row; within-batch semantics are serial.
	tbl.Submit(
		TxOp{Row: 5, Col: workload.ItemPriceCol, Val: schema.FloatValue(50)},
		TxOp{Row: 6, Col: workload.ItemPriceCol, Val: schema.FloatValue(60)},
		TxOp{Read: true, Row: 5},
		TxOp{Row: 5, Col: workload.ItemPriceCol, Val: schema.FloatValue(55)},
		TxOp{Read: true, Row: 5},
		TxOp{Read: true, Row: 6},
	)
	if tbl.Pending() != 6 {
		t.Fatalf("Pending = %d", tbl.Pending())
	}
	if err := tbl.ExecuteBatch(); err != nil {
		t.Fatal(err)
	}
	if tbl.Pending() != 0 {
		t.Fatal("batch not drained")
	}
	results := tbl.ResultPool()
	if len(results) != 3 {
		t.Fatalf("result pool = %d records", len(results))
	}
	if results[0][workload.ItemPriceCol].F != 50 {
		t.Fatalf("first read = %v, want pre-second-update 50", results[0])
	}
	if results[1][workload.ItemPriceCol].F != 55 {
		t.Fatalf("second read = %v", results[1])
	}
	if results[2][workload.ItemPriceCol].F != 60 {
		t.Fatalf("third read = %v", results[2])
	}
	// Pool drained after retrieval.
	if len(tbl.ResultPool()) != 0 {
		t.Fatal("result pool not cleared")
	}
}

func TestBatchRejectsBadRow(t *testing.T) {
	_, tbl := load(t, 10)
	defer tbl.Free()
	tbl.Submit(TxOp{Read: true, Row: 10})
	if err := tbl.ExecuteBatch(); err == nil {
		t.Fatal("out-of-range batch op accepted")
	}
}

func TestDeviceReductionSum(t *testing.T) {
	env, tbl := load(t, 2000)
	defer tbl.Free()
	before := env.GPU.Stats().KernelLaunches
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-workload.ExpectedItemPriceSum(2000)) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
	if env.GPU.Stats().KernelLaunches <= before {
		t.Fatal("sum did not launch kernels")
	}
	if _, err := tbl.SumFloat64(99); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestScatterBatchesPerColumn(t *testing.T) {
	env, tbl := load(t, 100)
	defer tbl.Free()
	before := env.GPU.Stats().KernelLaunches
	// 10 updates on the same column with no interleaved read: one
	// scatter kernel.
	for i := uint64(0); i < 10; i++ {
		tbl.Submit(TxOp{Row: i, Col: workload.ItemPriceCol, Val: schema.FloatValue(1)})
	}
	if err := tbl.ExecuteBatch(); err != nil {
		t.Fatal(err)
	}
	if launches := env.GPU.Stats().KernelLaunches - before; launches != 1 {
		t.Fatalf("launches = %d, want 1 batched scatter", launches)
	}
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := uint64(10); i < 100; i++ {
		want += workload.ItemPrice(i)
	}
	want += 10
	if math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestGetAndMaterializeDeliverThroughHost(t *testing.T) {
	env, tbl := load(t, 50)
	defer tbl.Free()
	d2hBefore := env.GPU.Stats().DeviceToHostBytes
	_ = d2hBefore
	clkBefore := env.Clock.ElapsedNs()
	rec, err := tbl.Get(7)
	if err != nil || !rec.Equal(workload.Item(7)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
	if env.Clock.ElapsedNs() <= clkBefore {
		t.Fatal("result delivery charged no time")
	}
	recs, err := tbl.Materialize([]uint64{1, 2, 3})
	if err != nil || len(recs) != 3 {
		t.Fatalf("Materialize = %v, %v", recs, err)
	}
	if _, err := tbl.Get(50); err == nil {
		t.Fatal("out-of-range Get accepted")
	}
}

func TestUpdateSingleOpBatch(t *testing.T) {
	_, tbl := load(t, 20)
	defer tbl.Free()
	if err := tbl.Update(3, workload.ItemPriceCol, schema.FloatValue(77)); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(3)
	if err != nil || rec[workload.ItemPriceCol].F != 77 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
	if err := tbl.Update(0, 99, schema.IntValue(0)); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestKSetPartitioning(t *testing.T) {
	_, tbl := load(t, 100)
	defer tbl.Free()
	// Three transactions: tx1 and tx2 touch disjoint rows (one set);
	// tx3 conflicts with tx1 on row 1 (second set).
	tbl.Submit(
		TxOp{Row: 1, Col: workload.ItemPriceCol, Val: schema.FloatValue(10)},
		TxOp{Row: 2, Col: workload.ItemPriceCol, Val: schema.FloatValue(20)},
	)
	tbl.Submit(TxOp{Row: 3, Col: workload.ItemPriceCol, Val: schema.FloatValue(30)})
	tbl.Submit(
		TxOp{Read: true, Row: 1},
		TxOp{Row: 1, Col: workload.ItemPriceCol, Val: schema.FloatValue(11)},
	)
	if err := tbl.ExecuteBatch(); err != nil {
		t.Fatal(err)
	}
	if tbl.KSets() != 2 {
		t.Fatalf("KSets = %d, want 2", tbl.KSets())
	}
	// tx3's read runs in set 2, after set 1's scatter: it sees 10.
	results := tbl.ResultPool()
	if len(results) != 1 || results[0][workload.ItemPriceCol].F != 10 {
		t.Fatalf("results = %v", results)
	}
	// Final state: row 1 = 11 (tx3's write wins, it ran later).
	rec, err := tbl.Get(1)
	if err != nil || rec[workload.ItemPriceCol].F != 11 {
		t.Fatalf("Get(1) = %v, %v", rec, err)
	}
}

func TestKSetDisjointBatchIsOneSet(t *testing.T) {
	env, tbl := load(t, 200)
	defer tbl.Free()
	before := env.GPU.Stats().KernelLaunches
	// 50 single-update transactions on distinct rows: one set, one
	// scatter kernel — GPUTx's bulk parallelism.
	for i := uint64(0); i < 50; i++ {
		tbl.Submit(TxOp{Row: i, Col: workload.ItemPriceCol, Val: schema.FloatValue(1)})
	}
	if err := tbl.ExecuteBatch(); err != nil {
		t.Fatal(err)
	}
	if tbl.KSets() != 1 {
		t.Fatalf("KSets = %d, want 1", tbl.KSets())
	}
	if launches := env.GPU.Stats().KernelLaunches - before; launches != 1 {
		t.Fatalf("launches = %d, want 1", launches)
	}
}

func TestKSetReadYourOwnWrite(t *testing.T) {
	_, tbl := load(t, 10)
	defer tbl.Free()
	tbl.Submit(
		TxOp{Row: 4, Col: workload.ItemPriceCol, Val: schema.FloatValue(77)},
		TxOp{Read: true, Row: 4},
	)
	if err := tbl.ExecuteBatch(); err != nil {
		t.Fatal(err)
	}
	results := tbl.ResultPool()
	if len(results) != 1 || results[0][workload.ItemPriceCol].F != 77 {
		t.Fatalf("own write invisible: %v", results)
	}
}

func TestBatchValidatesBeforeExecuting(t *testing.T) {
	_, tbl := load(t, 10)
	defer tbl.Free()
	tbl.Submit(TxOp{Row: 0, Col: workload.ItemPriceCol, Val: schema.FloatValue(1)})
	tbl.Submit(TxOp{Row: 99, Col: workload.ItemPriceCol, Val: schema.FloatValue(2)})
	if err := tbl.ExecuteBatch(); err == nil {
		t.Fatal("bad batch accepted")
	}
	// Nothing executed: row 0 unchanged.
	rec, err := tbl.Get(0)
	if err != nil || rec[workload.ItemPriceCol].F != workload.ItemPrice(0) {
		t.Fatalf("partial execution: %v, %v", rec, err)
	}
}
