// Package gputx implements GPUTx (He & Yu, 2011; paper Section IV-B.1):
// an in-memory relational prototype that executes transactions in bulk on
// the graphics card to overcome the under-utilization a single small
// transaction would cause. Relations are thin directly-linearized
// sub-relation columns resident in device memory (a weak flexible,
// static, device-memory-only engine); a result pool in host memory
// receives the copies query answers are delivered through.
//
// Transactions are submitted to a batch queue and executed together
// following GPUTx's K-set model: the batch is partitioned into a sequence
// of conflict-free sets — transactions within one set touch pairwise
// disjoint rows, so the whole set executes as one parallel step on the
// device (updates fuse into one scatter kernel per column, reads into
// gathers delivering to the host result pool). Sets execute in order, so
// cross-set semantics are serial; within a transaction, operations see
// the transaction's own earlier writes.
package gputx

import (
	"fmt"
	"hash/fnv"

	"hybridstore/internal/device"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
)

// Engine is the GPUTx storage engine.
type Engine struct {
	env *engine.Env
}

// New creates the engine.
func New(env *engine.Env) *Engine { return &Engine{env: env} }

// Name returns the survey name.
func (e *Engine) Name() string { return "GPUTx" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		Processors: taxonomy.GPUOnly,
		Workloads:  taxonomy.OLTP,
		Year:       2011,
	}
}

// TxOp is one operation of a bulk-submitted transaction.
type TxOp struct {
	// Read reports whether this is a read (true) or an update (false).
	Read bool
	// Row is the target position.
	Row uint64
	// Col is the attribute (updates only).
	Col int
	// Val is the new value (updates only).
	Val schema.Value
}

// Table is a GPUTx relation: device-resident thin columns plus the host
// result pool and the pending transaction batch.
type Table struct {
	env  *engine.Env
	rel  *layout.Relation
	s    *schema.Schema
	cols []*layout.Fragment
	rows uint64

	// gpu is the device the table lives on: the environment's single
	// device, or the home fleet card's when a fleet is configured. card is
	// non-nil only in the fleet case; its lane time folds into the shared
	// clock after each synchronous batch.
	gpu  *device.GPU
	card *device.Card

	batch    [][]TxOp
	lastSets int
	results  []schema.Record
}

// homeCard places a table on one fleet card by hashing its name, so
// different relations spread across the fleet while every operation on
// one relation stays on its device-resident columns.
func homeCard(fleet *device.Env, name string) *device.Card {
	h := fnv.New32a()
	h.Write([]byte(name))
	return fleet.Card(int(h.Sum32() % uint32(fleet.N())))
}

// sync folds the home card's lane time into the shared clock after a
// synchronous device operation. A no-op on the single-device path, where
// the GPU charges the shared clock directly.
func (t *Table) sync() {
	if t.card != nil {
		t.card.Sync()
	}
}

// Create makes an empty relation with device-resident columns. Creation
// fails with mem.ErrOutOfMemory when the device cannot hold the columns.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	l := layout.NewLayout("device-columns", s)
	t := &Table{env: e.env, rel: rel, s: s, gpu: e.env.GPU}
	if e.env.Fleet != nil {
		t.card = homeCard(e.env.Fleet, name)
		t.gpu = t.card.GPU()
	}
	const initialCap = 64
	for c := 0; c < s.Arity(); c++ {
		f, err := layout.NewFragment(t.gpu.Allocator(), s, []int{c},
			layout.RowRange{Begin: 0, End: initialCap}, layout.Direct)
		if err != nil {
			l.Free()
			return nil, fmt.Errorf("gputx: allocating device column: %w", err)
		}
		l.Add(f)
		t.cols = append(t.cols, f)
	}
	rel.AddLayout(l)
	return t, nil
}

// Schema returns the relation schema.
func (t *Table) Schema() *schema.Schema { return t.s }

// Rows returns the row count.
func (t *Table) Rows() uint64 { return t.rows }

// Snapshot digests the live structure (all fragments device-resident).
func (t *Table) Snapshot() layout.Snapshot { return t.rel.Digest() }

// Free releases the device columns.
func (t *Table) Free() {
	t.rel.Free()
	t.cols = nil
	t.rows = 0
}

// Insert bulk-loads one record into the device columns, charging the bus
// for the transferred tuplet bytes.
func (t *Table) Insert(rec schema.Record) (uint64, error) {
	if len(rec) != t.s.Arity() {
		return 0, fmt.Errorf("%w: arity %d vs schema %d", schema.ErrArityMismatch, len(rec), t.s.Arity())
	}
	l, _ := t.rel.Primary()
	for c, f := range t.cols {
		if f.Len() == f.Cap() {
			grown, err := f.Grow(t.gpu.Allocator(), f.Cap()*2)
			if err != nil {
				return 0, fmt.Errorf("gputx: growing device column: %w", err)
			}
			// Device-to-device move: charge global-memory bandwidth.
			if t.env.Clock != nil {
				t.env.Clock.Advance(float64(grown.SizeBytes()) / t.gpu.Profile().GlobalBandwidth * 1e9)
			}
			if err := l.Replace(f, grown); err != nil {
				return 0, err
			}
			t.cols[c] = grown
			f = grown
		}
		if err := f.AppendTuplet([]schema.Value{rec[c]}); err != nil {
			return 0, err
		}
	}
	// One host→device shipment per inserted record (the write batch of a
	// transaction crossing the bus).
	if t.env.Clock != nil {
		t.env.Clock.Advance(t.gpu.Profile().TransferNs(int64(t.s.Width())))
	}
	row := t.rows
	t.rows++
	t.rel.SetRows(t.rows)
	return row, nil
}

// Submit queues one transaction (a list of operations) for bulk
// execution.
func (t *Table) Submit(ops ...TxOp) {
	t.batch = append(t.batch, append([]TxOp(nil), ops...))
}

// Pending returns the queued operation count.
func (t *Table) Pending() int {
	n := 0
	for _, tx := range t.batch {
		n += len(tx)
	}
	return n
}

// KSets reports how many conflict-free sets the last ExecuteBatch ran —
// the degree of inter-transaction parallelism GPUTx extracted (1 set =
// the whole batch ran as one parallel step).
func (t *Table) KSets() int { return t.lastSets }

// ResultPool returns the host-side results delivered by executed read
// operations, in execution order, and clears the pool.
func (t *Table) ResultPool() []schema.Record {
	out := t.results
	t.results = nil
	return out
}

// ExecuteBatch partitions the queued transactions into conflict-free
// K-sets and executes the sets in order: within a set, all updates fuse
// into one scatter kernel per column and reads gather into the host
// result pool (in submission order). Validation happens before any set
// executes, so a bad batch changes nothing.
func (t *Table) ExecuteBatch() error {
	for _, txn := range t.batch {
		for _, op := range txn {
			if op.Row >= t.rows {
				return fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, op.Row, t.rows)
			}
			if !op.Read && (op.Col < 0 || op.Col >= t.s.Arity()) {
				return fmt.Errorf("%w: col %d", layout.ErrOutOfRange, op.Col)
			}
		}
	}
	sets := t.conflictSets()
	t.lastSets = len(sets)
	for _, set := range sets {
		if err := t.executeSet(set); err != nil {
			return err
		}
	}
	t.batch = nil
	return nil
}

// conflictSets greedily assigns each transaction to the first set in
// which it conflicts with no member (two transactions conflict when they
// touch a common row).
func (t *Table) conflictSets() [][][]TxOp {
	var sets [][][]TxOp
	var setRows []map[uint64]bool
	for _, txn := range t.batch {
		rows := map[uint64]bool{}
		for _, op := range txn {
			rows[op.Row] = true
		}
		placed := false
		for si := range sets {
			conflict := false
			for r := range rows {
				if setRows[si][r] {
					conflict = true
					break
				}
			}
			if !conflict {
				sets[si] = append(sets[si], txn)
				for r := range rows {
					setRows[si][r] = true
				}
				placed = true
				break
			}
		}
		if !placed {
			sets = append(sets, [][]TxOp{txn})
			setRows = append(setRows, rows)
		}
	}
	return sets
}

// executeSet runs one conflict-free set: reads resolve against the
// pre-set device state merged with the transaction's own earlier writes,
// and all updates land in one scatter kernel per column at the end.
func (t *Table) executeSet(set [][]TxOp) error {
	type colUpdates struct {
		positions []int
		vals      []byte
	}
	pending := make(map[int]*colUpdates)
	for _, txn := range set {
		// ownWrites: (row,col) → value written earlier in this txn.
		type cell struct {
			row uint64
			col int
		}
		ownWrites := map[cell]schema.Value{}
		for _, op := range txn {
			if op.Read {
				rec, err := t.gatherRecord(op.Row)
				if err != nil {
					return err
				}
				for c := 0; c < t.s.Arity(); c++ {
					if v, ok := ownWrites[cell{op.Row, c}]; ok {
						rec[c] = v
					}
				}
				t.results = append(t.results, rec)
				continue
			}
			a := t.s.Attr(op.Col)
			buf := make([]byte, a.Size)
			if err := schema.EncodeValue(buf, a, op.Val); err != nil {
				return fmt.Errorf("gputx: encoding update: %w", err)
			}
			// Scatter writes bypass Fragment.Set, so the column's zone
			// would silently narrow; widen it here to keep it a
			// conservative envelope.
			if z := t.cols[op.Col].Stats(op.Col); z != nil {
				switch a.Kind {
				case schema.Int64:
					z.WidenInt64(op.Val.I)
				case schema.Float64:
					z.WidenFloat64(op.Val.F)
				}
			}
			ownWrites[cell{op.Row, op.Col}] = op.Val
			u := pending[op.Col]
			if u == nil {
				u = &colUpdates{}
				pending[op.Col] = u
			}
			u.positions = append(u.positions, int(op.Row))
			u.vals = append(u.vals, buf...)
		}
	}
	// All per-column scatters of the set go down one stream: each column's
	// value bytes overlap the bus with the previous column's scatter
	// kernel, and one Wait settles the overlapped total.
	s := t.gpu.NewStream()
	defer t.sync()
	defer s.Wait()
	for col, u := range pending {
		f := t.cols[col]
		v, err := f.ColVector(col)
		if err != nil {
			return err
		}
		dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: f.Len()}
		if err := s.Scatter(dv, u.positions, u.vals); err != nil {
			return fmt.Errorf("gputx: scatter on column %d: %w", col, err)
		}
		// Scatter writes bypass Fragment.Set; bump the version by hand so
		// device-cached images of the column stop validating.
		f.BumpVersion()
	}
	return nil
}

// gatherRecord materializes one row from the device columns into host
// memory (the result-pool delivery path), charging gather + transfer.
func (t *Table) gatherRecord(row uint64) (schema.Record, error) {
	rec := make(schema.Record, t.s.Arity())
	for c, f := range t.cols {
		v, err := f.Get(int(row), c)
		if err != nil {
			return nil, err
		}
		rec[c] = v
	}
	if t.env.Clock != nil {
		p := t.gpu.Profile()
		t.env.Clock.Advance(p.GatherKernelNs(1, int64(t.rows), t.s.Width()) + p.TransferNs(int64(t.s.Width())))
	}
	return rec, nil
}

// Get executes a single-read batch.
func (t *Table) Get(row uint64) (schema.Record, error) {
	if row >= t.rows {
		return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.rows)
	}
	return t.gatherRecord(row)
}

// Update executes a single-update batch.
func (t *Table) Update(row uint64, col int, v schema.Value) error {
	if col < 0 || col >= t.s.Arity() {
		return fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	t.Submit(TxOp{Row: row, Col: col, Val: v})
	return t.ExecuteBatch()
}

// SumFloat64 runs the parallel reduction kernel over the device-resident
// column (no bus crossing: the data already lives on the device).
func (t *Table) SumFloat64(col int) (float64, error) {
	if col < 0 || col >= t.s.Arity() {
		return 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	f := t.cols[col]
	v, err := f.ColVector(col)
	if err != nil {
		return 0, err
	}
	dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: v.Len}
	cfg := device.DefaultReduceConfig()
	if v.Len < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	sum, err := t.gpu.ReduceSumFloat64(dv, cfg)
	t.sync()
	return sum, err
}

// SumFloat64Where runs the fused filter+reduction kernel over the
// device-resident column — unless the column's zone map proves the
// predicate match-free, in which case no kernel launches at all.
func (t *Table) SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error) {
	if col < 0 || col >= t.s.Arity() {
		return 0, 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if t.s.Attr(col).Kind != schema.Float64 {
		return 0, 0, fmt.Errorf("%w: attribute %s is %s", exec.ErrBadColumn, t.s.Attr(col).Name, t.s.Attr(col).Kind)
	}
	f := t.cols[col]
	v, err := f.ColVector(col)
	if err != nil {
		return 0, 0, err
	}
	bytes := int64(v.Len) * int64(v.Size)
	if !exec.ZoneAdmitsFloat64(f.Stats(col), p) {
		exec.NoteZoneDecision(false, bytes)
		return 0, 0, nil
	}
	exec.NoteZoneDecision(true, bytes)
	lo, hi, ok := exec.ClosedFloat64(p)
	if !ok {
		return 0, 0, nil
	}
	if v.Len == 0 {
		return 0, 0, nil
	}
	dv := device.Vec{Data: v.Data, Base: v.Base, Stride: v.Stride, Size: v.Size, Len: v.Len}
	cfg := device.DefaultReduceConfig()
	if v.Len < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	sum, n, err := t.gpu.ReduceSumFloat64Where(dv, lo, hi, cfg)
	t.sync()
	return sum, n, err
}

// CountWhereFloat64 counts the rows matching p on col with the same
// device-side pruning as SumFloat64Where.
func (t *Table) CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error) {
	_, n, err := t.SumFloat64Where(col, p)
	return n, err
}

// GroupSumFloat64Where computes SELECT keyCol, SUM(valCol), COUNT(*)
// WHERE p GROUP BY keyCol as ONE fused group-reduce launch over the
// device-resident columns (both already live in device memory, so only
// the group table crosses the bus) — unless the value column's zone map
// proves the predicate match-free, in which case nothing launches.
func (t *Table) GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	if keyCol < 0 || keyCol >= t.s.Arity() || valCol < 0 || valCol >= t.s.Arity() {
		return nil, fmt.Errorf("%w: cols %d,%d", layout.ErrOutOfRange, keyCol, valCol)
	}
	kk := t.s.Attr(keyCol).Kind
	if kk != schema.Int64 && kk != schema.Int32 {
		return nil, fmt.Errorf("%w: group key %s is %s", exec.ErrBadColumn, t.s.Attr(keyCol).Name, kk)
	}
	if t.s.Attr(valCol).Kind != schema.Float64 {
		return nil, fmt.Errorf("%w: aggregate %s is %s", exec.ErrBadColumn, t.s.Attr(valCol).Name, t.s.Attr(valCol).Kind)
	}
	kv, err := t.cols[keyCol].ColVector(keyCol)
	if err != nil {
		return nil, err
	}
	vv, err := t.cols[valCol].ColVector(valCol)
	if err != nil {
		return nil, err
	}
	bytes := int64(kv.Len)*int64(kv.Size) + int64(vv.Len)*int64(vv.Size)
	if !exec.ZoneAdmitsFloat64(t.cols[valCol].Stats(valCol), p) {
		exec.NoteZoneDecision(false, bytes)
		return nil, nil
	}
	exec.NoteZoneDecision(true, bytes)
	lo, hi, ok := exec.ClosedFloat64(p)
	if !ok || vv.Len == 0 {
		return nil, nil
	}
	dk := device.Vec{Data: kv.Data, Base: kv.Base, Stride: kv.Stride, Size: kv.Size, Len: kv.Len}
	dv := device.Vec{Data: vv.Data, Base: vv.Base, Stride: vv.Stride, Size: vv.Size, Len: vv.Len}
	cfg := device.DefaultReduceConfig()
	if vv.Len < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	parts, err := t.gpu.GroupReduceSumFloat64Where(dk, dv, lo, hi, cfg)
	t.sync()
	if err != nil {
		return nil, err
	}
	out := make([]exec.GroupResult, len(parts))
	for i, g := range parts {
		out[i] = exec.GroupResult{Key: g.Key, Sum: g.Sum, Count: g.Count}
	}
	return out, nil
}

// Materialize gathers a position list into the host result pool format.
func (t *Table) Materialize(positions []uint64) ([]schema.Record, error) {
	out := make([]schema.Record, len(positions))
	for i, p := range positions {
		rec, err := t.Get(p)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}
