package lstore

import (
	"fmt"

	"hybridstore/internal/schema"
	"hybridstore/internal/wal"
)

// EnableWAL threads the table's write path (Insert, Update) through a
// shared log: each write appends a logical record under the table lock
// — so log order matches apply order, tail lineage included — and
// waits for durability after the lock drops, letting concurrent
// writers share group-commit flushes. L-Store's lineage chains are
// deterministic given update order, so logical replay rebuilds them
// exactly. Call it once, after any replay and before concurrent use.
func (t *Table) EnableWAL(l *wal.Log) {
	t.mu.Lock()
	t.wal = &wal.TableLog{L: l, Table: t.rel.Name()}
	t.mu.Unlock()
}

// ReplayInsert re-applies a logged insert during recovery (before
// EnableWAL, so it is not re-logged) and asserts the row lands where
// the log recorded it — divergence means the log or restore logic is
// corrupt, never something to skip.
func (t *Table) ReplayInsert(row uint64, rec schema.Record) error {
	got, err := t.Insert(rec)
	if err != nil {
		return fmt.Errorf("lstore: replaying insert at row %d: %w", row, err)
	}
	if got != row {
		return fmt.Errorf("lstore: replay diverged: insert landed at row %d, log says %d", got, row)
	}
	return nil
}

// ReplayUpdate re-applies a logged update during recovery.
func (t *Table) ReplayUpdate(row uint64, col int, v schema.Value) error {
	if err := t.Update(row, col, v); err != nil {
		return fmt.Errorf("lstore: replaying update of row %d col %d: %w", row, col, err)
	}
	return nil
}
