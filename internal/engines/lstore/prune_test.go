package lstore

import (
	"math"
	"testing"

	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// TestPruneStatsSealLstoreMerge verifies that the merge pass seals a
// zone beside the compressed base image with the settled (tail-patched)
// bounds.
func TestPruneStatsSealLstoreMerge(t *testing.T) {
	tbl := load(t, 400)
	defer tbl.Free()
	// A tail update must be folded into the sealed bounds.
	if err := tbl.Update(7, workload.ItemPriceCol, schema.FloatValue(250)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	z := tbl.cols[workload.ItemPriceCol].zone
	if z == nil || !z.Sealed() {
		t.Fatal("merge did not seal the price zone")
	}
	min, max, ok := z.Float64Bounds()
	if !ok {
		t.Fatal("sealed zone has no bounds")
	}
	if min != workload.ItemPrice(0) || max != 250 {
		t.Fatalf("sealed bounds [%v,%v], want [%v,250]", min, max, workload.ItemPrice(0))
	}
}

// TestPruneLstoreSkipsDecompression checks that a predicate the sealed
// zone rules out never decompresses the base image: the pruned-bytes
// counter advances by exactly the sealed region's size and the answer
// comes from the appendable region and tail patch alone.
func TestPruneLstoreSkipsDecompression(t *testing.T) {
	tbl := load(t, 400)
	defer tbl.Free()
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	// Post-merge insert and tail update live outside the sealed region's
	// bounds and must still be found.
	if _, err := tbl.Insert(workload.Item(400)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(3, workload.ItemPriceCol, schema.FloatValue(700)); err != nil {
		t.Fatal(err)
	}

	before := obs.TakeSnapshot()
	sum, n, err := tbl.SumFloat64Where(workload.ItemPriceCol, exec.Gt[float64](600))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || sum != 700 {
		t.Fatalf("tail-only result = (%v, %d), want (700, 1)", sum, n)
	}
	after := obs.TakeSnapshot()
	// 400 sealed rows skipped without decompression, plus the one-row
	// appendable piece the host operator pruned by its running zone.
	wantBytes := int64(400*8 + 8)
	if got := after.Counter("exec.zonemap.pruned_bytes_total") - before.Counter("exec.zonemap.pruned_bytes_total"); got != wantBytes {
		t.Errorf("pruned %d bytes, want %d", got, wantBytes)
	}

	// The complementary scan decompresses and patches exactly.
	sum, n, err = tbl.SumFloat64Where(workload.ItemPriceCol, exec.Lt[float64](600))
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedItemPriceSum(401) - workload.ItemPrice(3)
	if n != 400 || math.Abs(sum-want) > 1e-9 {
		t.Fatalf("complement = (%v, %d), want (%v, 400)", sum, n, want)
	}
}
