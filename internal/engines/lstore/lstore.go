// Package lstore implements the L-Store storage engine (Sadoghi et al.,
// 2016; paper Section IV-B.4): a single-layout, strong flexible engine
// with lineage-based updates and historic querying. Each attribute of a
// relation is one vertical fragment, split into a read-optimized base
// page region and an append-only tail page region; a page dictionary maps
// each logical record to its current slots and hides whether a value
// comes from base or tail pages. Updating a field appends a tail record
// carrying the new value and linking to its predecessor (its lineage),
// so every prior state remains queryable; Merge folds tails back into
// fresh base pages.
//
// Matching the paper's description of the base region as "read-only (and
// compressed)", Merge seals the base pages through internal/compress:
// after a merge, each attribute's settled prefix lives in a compressed
// column image (RLE/dictionary/frame-of-reference, whichever is
// smallest), while post-merge inserts land in an uncompressed appendable
// region that the next merge seals.
package lstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hybridstore/internal/compress"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/stats"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/wal"
)

// Engine is the L-Store storage engine.
type Engine struct {
	env *engine.Env
}

// New creates the engine.
func New(env *engine.Env) *Engine { return &Engine{env: env} }

// Name returns the survey name.
func (e *Engine) Name() string { return "L-Store" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		Responsive: true,
		Scheme:     taxonomy.SchemeDelegation,
		Processors: taxonomy.CPUOnly,
		Workloads:  taxonomy.HTAP,
		Year:       2016,
	}
}

// tailEntry is one lineage step of one attribute: the tail slot holding
// the value written by one update, linking back to the previous state.
type tailEntry struct {
	slot int // index into the attribute's tail fragment
	prev int // previous tailEntry index in the column's lineage arena, -1 = base
}

// column is one attribute's storage: a sealed (compressed, read-only)
// base region, an appendable uncompressed base region for post-merge
// inserts, and the append-only tail with its lineage arena.
type column struct {
	sealed  *compress.Column // rows [0, sealedRows); nil before first Merge
	zone    *stats.Zone      // sealed-region bounds, built by Merge; nil for non-numeric attrs
	active  *layout.Fragment // rows [sealedRows, ...)
	tail    *layout.Fragment
	lineage []tailEntry
}

// Table is an L-Store relation.
// mu guards the column pages, the page dictionary and lineage chains:
// writers (Insert, Update, Merge, Free) take it exclusively, readers
// (point reads, scans, grouped scans, stats accessors) share it.
type Table struct {
	mu sync.RWMutex

	env *engine.Env
	rel *layout.Relation
	cfg exec.Config
	s   *schema.Schema
	// cols holds per-attribute storage.
	cols []*column
	// dict is the page dictionary: dict[row][col] is -1 when the current
	// value lives in the base region, else the index of the newest
	// tailEntry in the column's lineage arena.
	dict       [][]int32
	rows       uint64
	sealedRows uint64
	merges     int
	// wal, when set by EnableWAL, logs every Insert/Update before it
	// mutates the base or tail regions.
	wal *wal.TableLog
}

// Create makes an empty relation.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	t := &Table{env: e.env, rel: rel, s: s,
		cfg: exec.Config{Policy: e.env.ExecPolicy, Host: e.env.HostProfile, Clock: e.env.Clock}}
	l := layout.NewLayout("base+tail", s)
	const initialCap = 64
	for c := 0; c < s.Arity(); c++ {
		active, err := layout.NewFragment(e.env.Host, s, []int{c}, layout.RowRange{Begin: 0, End: initialCap}, layout.Direct)
		if err != nil {
			l.Free()
			return nil, fmt.Errorf("lstore: %w", err)
		}
		tail, err := layout.NewFragment(e.env.Host, s, []int{c}, layout.RowRange{Begin: 0, End: initialCap}, layout.Direct)
		if err != nil {
			active.Free()
			l.Free()
			return nil, fmt.Errorf("lstore: %w", err)
		}
		l.Add(active)
		t.cols = append(t.cols, &column{active: active, tail: tail})
	}
	rel.AddLayout(l)
	return t, nil
}

// Schema returns the relation schema.
func (t *Table) Schema() *schema.Schema { return t.s }

// Rows returns the row count.
func (t *Table) Rows() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Merges returns how many merge passes have run.
func (t *Table) Merges() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.merges
}

// SealedRows returns how many rows live in the compressed base region.
func (t *Table) SealedRows() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sealedRows
}

// CompressionRatio returns the aggregate base-region compression ratio
// (uncompressed bytes / compressed bytes), or 1 before the first merge.
func (t *Table) CompressionRatio() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var raw, packed float64
	for c, col := range t.cols {
		if col.sealed == nil {
			continue
		}
		raw += float64(col.sealed.Len() * t.s.Attr(c).Size)
		packed += float64(col.sealed.CompressedBytes())
	}
	if packed == 0 {
		return 1
	}
	return raw / packed
}

// TailLength returns the total live tail records across all columns.
func (t *Table) TailLength() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, c := range t.cols {
		n += c.tail.Len()
	}
	return n
}

// Insert appends a base record to the appendable region. With a WAL
// enabled the insert is logged under the lock at its predetermined row
// (log order matches apply order, so recovery lands every row where it
// was) and waits for durability only after the lock drops, sharing
// group-commit flushes with concurrent writers.
func (t *Table) Insert(rec schema.Record) (uint64, error) {
	row, lsn, err := t.insertLocked(rec)
	if err != nil {
		return 0, err
	}
	if lsn != 0 {
		if err := t.wal.L.Sync(lsn); err != nil {
			return 0, fmt.Errorf("lstore: insert at row %d not durable: %w", row, err)
		}
	}
	return row, nil
}

func (t *Table) insertLocked(rec schema.Record) (uint64, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rec) != t.s.Arity() {
		return 0, 0, fmt.Errorf("%w: arity %d vs schema %d", schema.ErrArityMismatch, len(rec), t.s.Arity())
	}
	// Exhaust every fallible step — base-buffer growth and record
	// validation — before the WAL append, so the log never holds an
	// insert the caller saw fail (recovery would replay it, shifting
	// every later logged row position).
	l, _ := t.rel.Primary()
	for _, col := range t.cols {
		if col.active.Len() == col.active.Cap() {
			grown, err := col.active.Grow(t.env.Host, col.active.Cap()*2)
			if err != nil {
				return 0, 0, fmt.Errorf("lstore: growing base: %w", err)
			}
			if err := l.Replace(col.active, grown); err != nil {
				return 0, 0, err
			}
			col.active = grown
		}
	}
	var lsn uint64
	if t.wal != nil {
		if err := schema.ValidateRecord(t.s, rec); err != nil {
			return 0, 0, err
		}
		var err error
		lsn, err = t.wal.L.Append(&wal.Record{Kind: wal.KindInsert, Table: t.wal.Table, Row: t.rows, Rec: rec})
		if err != nil {
			return 0, 0, fmt.Errorf("lstore: logging insert: %w", err)
		}
	}
	for c, col := range t.cols {
		if err := col.active.AppendTuplet([]schema.Value{rec[c]}); err != nil {
			return 0, 0, err
		}
	}
	row := t.rows
	t.dict = append(t.dict, newDictRow(t.s.Arity()))
	t.rows++
	t.rel.SetRows(t.rows)
	return row, lsn, nil
}

// newDictRow is a dictionary row with every attribute resolving to base.
func newDictRow(arity int) []int32 {
	d := make([]int32, arity)
	for i := range d {
		d[i] = -1
	}
	return d
}

// Update appends a tail record for (row, col) with lineage to the prior
// state; the base region is never written (delegation between the base
// and tail regions of the layout). With a WAL enabled the update is
// logged under the lock — log order matches lineage order — and waits
// for durability after the lock drops.
func (t *Table) Update(row uint64, col int, v schema.Value) error {
	lsn, err := t.updateLocked(row, col, v)
	if err != nil {
		return err
	}
	if lsn != 0 {
		if err := t.wal.L.Sync(lsn); err != nil {
			return fmt.Errorf("lstore: update of row %d not durable: %w", row, err)
		}
	}
	return nil
}

func (t *Table) updateLocked(row uint64, col int, v schema.Value) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if row >= t.rows {
		return 0, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.rows)
	}
	if col < 0 || col >= t.s.Arity() {
		return 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	// Fallible preparation — tail growth and value validation — runs
	// before the WAL append, so the log never holds an update the caller
	// saw fail.
	c := t.cols[col]
	if c.tail.Len() == c.tail.Cap() {
		grown, err := c.tail.Grow(t.env.Host, c.tail.Cap()*2)
		if err != nil {
			return 0, fmt.Errorf("lstore: growing tail: %w", err)
		}
		c.tail = grown
	}
	var lsn uint64
	if t.wal != nil {
		if err := schema.ValidateValue(t.s.Attr(col), v); err != nil {
			return 0, err
		}
		var err error
		lsn, err = t.wal.L.Append(&wal.Record{Kind: wal.KindUpdate, Table: t.wal.Table, Row: row, Col: col, Val: v})
		if err != nil {
			return 0, fmt.Errorf("lstore: logging update: %w", err)
		}
	}
	slot := c.tail.Len()
	if err := c.tail.AppendTuplet([]schema.Value{v}); err != nil {
		return 0, err
	}
	c.lineage = append(c.lineage, tailEntry{slot: slot, prev: int(t.dict[row][col])})
	t.dict[row][col] = int32(len(c.lineage) - 1)
	return lsn, nil
}

// baseValue reads (row, col) from the base region: the sealed compressed
// image for settled rows, the appendable fragment otherwise.
func (t *Table) baseValue(row uint64, col int) (schema.Value, error) {
	c := t.cols[col]
	if row < t.sealedRows {
		buf := make([]byte, t.s.Attr(col).Size)
		el, err := c.sealed.At(int(row), buf)
		if err != nil {
			return schema.Value{}, err
		}
		return schema.DecodeValue(el, t.s.Attr(col))
	}
	return c.active.Get(int(row-t.sealedRows), col)
}

// valueAsOf resolves (row, col) walking `back` lineage steps (0 = newest).
func (t *Table) valueAsOf(row uint64, col int, back int) (schema.Value, error) {
	c := t.cols[col]
	cur := int(t.dict[row][col])
	for back > 0 && cur >= 0 {
		cur = c.lineage[cur].prev
		back--
	}
	if cur < 0 {
		return t.baseValue(row, col)
	}
	return c.tail.Get(c.lineage[cur].slot, col)
}

// Get materializes the current record, dereferencing base or tail slots
// through the page dictionary.
func (t *Table) Get(row uint64) (schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(row)
}

// getLocked is Get under an already-held lock (Materialize shares it;
// RWMutex read locks must not recurse while a writer waits).
func (t *Table) getLocked(row uint64) (schema.Record, error) {
	if row >= t.rows {
		return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.rows)
	}
	rec := make(schema.Record, t.s.Arity())
	for c := 0; c < t.s.Arity(); c++ {
		v, err := t.valueAsOf(row, c, 0)
		if err != nil {
			return nil, err
		}
		rec[c] = v
	}
	return rec, nil
}

// GetVersion materializes the record as of `back` updates ago per
// attribute (0 = current) — L-Store's historic querying.
func (t *Table) GetVersion(row uint64, back int) (schema.Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if row >= t.rows {
		return nil, fmt.Errorf("%w: row %d of %d", engine.ErrNoSuchRow, row, t.rows)
	}
	if back < 0 {
		return nil, fmt.Errorf("%w: negative history depth %d", layout.ErrOutOfRange, back)
	}
	rec := make(schema.Record, t.s.Arity())
	for c := 0; c < t.s.Arity(); c++ {
		v, err := t.valueAsOf(row, c, back)
		if err != nil {
			return nil, err
		}
		rec[c] = v
	}
	return rec, nil
}

// SumFloat64 aggregates col: the sealed region through the compressed
// fast path, the appendable region through the bulk operator, then rows
// with tail versions are patched through the dictionary.
func (t *Table) SumFloat64(col int) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= t.s.Arity() {
		return 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if t.s.Attr(col).Kind != schema.Float64 {
		return 0, fmt.Errorf("%w: attribute %s is %s", exec.ErrBadColumn, t.s.Attr(col).Name, t.s.Attr(col).Kind)
	}
	c := t.cols[col]
	var sum float64
	if c.sealed != nil {
		s, err := c.sealed.SumFloat64()
		if err != nil {
			return 0, err
		}
		sum += s
	}
	v, err := c.active.ColVector(col)
	if err != nil {
		return 0, err
	}
	pieces := []exec.Piece{{Rows: layout.RowRange{Begin: t.sealedRows, End: t.sealedRows + uint64(v.Len)}, Vec: v}}
	activeSum, err := exec.SumFloat64(t.cfg, pieces)
	if err != nil {
		return 0, err
	}
	sum += activeSum
	// Patch rows whose newest value lives in a tail page.
	for row := uint64(0); row < t.rows; row++ {
		li := t.dict[row][col]
		if li < 0 {
			continue
		}
		baseV, err := t.baseValue(row, col)
		if err != nil {
			return 0, err
		}
		tailV, err := c.tail.Get(c.lineage[li].slot, col)
		if err != nil {
			return 0, err
		}
		sum += tailV.F - baseV.F
	}
	return sum, nil
}

// Materialize resolves a position list through the dictionary.
func (t *Table) Materialize(positions []uint64) ([]schema.Record, error) {
	out := make([]schema.Record, len(positions))
	for i, p := range positions {
		rec, err := t.getLocked(p)
		if err != nil {
			return nil, err
		}
		out[i] = rec
	}
	return out, nil
}

// Merge folds every column's tail values into the base region, seals it
// as a fresh compressed image, resets the appendable region and the
// dictionary — the read-optimization pass that keeps L-Store's analytic
// scans fast. Historic versions are consolidated away, exactly like
// L-Store's epoch-based merge.
func (t *Table) Merge() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, _ := t.rel.Primary()
	for col, c := range t.cols {
		size := t.s.Attr(col).Size
		// Materialize the full settled column image: sealed + active,
		// with the newest tail value patched per row.
		image := make([]byte, int(t.rows)*size)
		if c.sealed != nil {
			if _, err := c.sealed.DecompressInto(image); err != nil {
				return fmt.Errorf("lstore: unsealing column %d: %w", col, err)
			}
		}
		activeBytes := int(t.rows-t.sealedRows) * size
		if activeBytes > 0 {
			v, err := c.active.ColVector(col)
			if err != nil {
				return err
			}
			copy(image[int(t.sealedRows)*size:], v.Data[v.Base:v.Base+activeBytes])
		}
		for row := uint64(0); row < t.rows; row++ {
			li := t.dict[row][col]
			if li < 0 {
				continue
			}
			tv, err := c.tail.FieldBytes(c.lineage[li].slot, col)
			if err != nil {
				return err
			}
			copy(image[int(row)*size:], tv)
		}
		sealed, err := compress.Compress(image, int(t.rows), size)
		if err != nil {
			return fmt.Errorf("lstore: sealing column %d: %w", col, err)
		}
		c.sealed = sealed
		c.zone = sealZone(image, int(t.rows), t.s.Attr(col))
		// Reset the appendable and tail regions.
		fresh, err := layout.NewFragment(t.env.Host, t.s, []int{col},
			layout.RowRange{Begin: t.rows, End: t.rows + 64}, layout.Direct)
		if err != nil {
			return err
		}
		if err := l.Replace(c.active, fresh); err != nil {
			fresh.Free()
			return err
		}
		// The appendable region's backing store is replaced and the tail
		// truncated: retire any device-cached images of either. (SetLen
		// bumps the tail's version too; the explicit call frees the
		// device memory now instead of at the next capacity squeeze.)
		t.env.InvalidateFrag(t.rel.Name(), c.active.ID())
		t.env.InvalidateFrag(t.rel.Name(), c.tail.ID())
		c.active.Free()
		c.active = fresh
		if err := c.tail.SetLen(0); err != nil {
			return err
		}
		c.lineage = c.lineage[:0]
	}
	for row := range t.dict {
		for col := range t.dict[row] {
			t.dict[row][col] = -1
		}
	}
	t.sealedRows = t.rows
	t.merges++
	return nil
}

// sealZone computes the sealed-region zone map from the settled column
// image — the merge pass is the base region's freeze point, so the
// bounds are exact and marked sealed. Non-8-byte and non-numeric
// attributes get no zone (their scans never prune).
func sealZone(image []byte, n int, a schema.Attribute) *stats.Zone {
	var z *stats.Zone
	switch {
	case a.Kind == schema.Int64 && a.Size == 8:
		z = stats.NewZone(stats.Int64)
	case a.Kind == schema.Float64 && a.Size == 8:
		z = stats.NewZone(stats.Float64)
	default:
		return nil
	}
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint64(image[i*8:])
		if z.Kind() == stats.Int64 {
			z.ObserveInt64(int64(bits))
		} else {
			z.ObserveFloat64(math.Float64frombits(bits))
		}
	}
	z.MarkSealed()
	return z
}

// SumFloat64Where aggregates (sum, count) of col over the rows matching
// p. When the sealed region's zone proves it match-free the compressed
// image is never decompressed — the pruning win compounds with the
// compression win. Tail patching stays exact under pruning because the
// zone is conservative: a base value matching p implies the sealed
// region was scanned.
func (t *Table) SumFloat64Where(col int, p exec.Pred[float64]) (float64, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sumFloat64WhereLocked(col, p)
}

// sumFloat64WhereLocked is SumFloat64Where under an already-held lock
// (CountWhereFloat64 shares it).
func (t *Table) sumFloat64WhereLocked(col int, p exec.Pred[float64]) (float64, int64, error) {
	if col < 0 || col >= t.s.Arity() {
		return 0, 0, fmt.Errorf("%w: col %d", layout.ErrOutOfRange, col)
	}
	if t.s.Attr(col).Kind != schema.Float64 {
		return 0, 0, fmt.Errorf("%w: attribute %s is %s", exec.ErrBadColumn, t.s.Attr(col).Name, t.s.Attr(col).Kind)
	}
	c := t.cols[col]
	size := t.s.Attr(col).Size
	var pieces []exec.Piece
	if c.sealed != nil && t.sealedRows > 0 {
		sealedBytes := int64(t.sealedRows) * int64(size)
		if !exec.ZoneAdmitsFloat64(c.zone, p) {
			exec.NoteZoneDecision(false, sealedBytes)
		} else {
			exec.NoteZoneDecision(true, sealedBytes)
			// The sealed image executes in the compressed domain — no
			// decompression; Vec carries only the logical metadata.
			pieces = append(pieces, exec.Piece{
				Rows: layout.RowRange{Begin: 0, End: t.sealedRows},
				Vec:  layout.ColVector{Stride: size, Size: size, Len: int(t.sealedRows)},
				Zone: c.zone,
				Comp: c.sealed,
			})
		}
	}
	v, err := c.active.ColVector(col)
	if err != nil {
		return 0, 0, err
	}
	pieces = append(pieces, exec.Piece{
		Rows: layout.RowRange{Begin: t.sealedRows, End: t.sealedRows + uint64(v.Len)},
		Vec:  v,
		Zone: c.active.Stats(col),
	})
	sum, n, err := exec.SumFloat64Where(t.cfg, pieces, p)
	if err != nil {
		return 0, 0, err
	}
	// Patch rows whose newest value lives in a tail page.
	for row := uint64(0); row < t.rows; row++ {
		li := t.dict[row][col]
		if li < 0 {
			continue
		}
		baseV, err := t.baseValue(row, col)
		if err != nil {
			return 0, 0, err
		}
		tailV, err := c.tail.Get(c.lineage[li].slot, col)
		if err != nil {
			return 0, 0, err
		}
		if p.Match(baseV.F) {
			sum -= baseV.F
			n--
		}
		if p.Match(tailV.F) {
			sum += tailV.F
			n++
		}
	}
	return sum, n, nil
}

// CountWhereFloat64 counts the rows matching p on col with the same
// pruning as SumFloat64Where.
func (t *Table) CountWhereFloat64(col int, p exec.Pred[float64]) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, n, err := t.sumFloat64WhereLocked(col, p)
	return n, err
}

// GroupSumFloat64Where computes SELECT key, SUM(val), COUNT(*) WHERE p
// GROUP BY key in one fused pass over both regions: the sealed key and
// value images aggregate in the compressed domain (the value zone still
// prunes the whole sealed pair), the appendable region scans raw, and
// rows with tail versions are patched through the dictionary — a tail
// update may change the key, the value, or both, so the patch moves the
// row's contribution between groups. Pruning stays exact because zones
// are conservative: a base value matching p implies the sealed pair was
// scanned.
func (t *Table) GroupSumFloat64Where(keyCol, valCol int, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if keyCol < 0 || keyCol >= t.s.Arity() || valCol < 0 || valCol >= t.s.Arity() {
		return nil, fmt.Errorf("%w: cols %d,%d", layout.ErrOutOfRange, keyCol, valCol)
	}
	kk := t.s.Attr(keyCol).Kind
	if kk != schema.Int64 && kk != schema.Int32 {
		return nil, fmt.Errorf("%w: group key %s is %s", exec.ErrBadColumn, t.s.Attr(keyCol).Name, kk)
	}
	if t.s.Attr(valCol).Kind != schema.Float64 {
		return nil, fmt.Errorf("%w: aggregate %s is %s", exec.ErrBadColumn, t.s.Attr(valCol).Name, t.s.Attr(valCol).Kind)
	}
	kc, vc := t.cols[keyCol], t.cols[valCol]
	ksize := t.s.Attr(keyCol).Size
	vsize := t.s.Attr(valCol).Size
	var keys, vals []exec.Piece
	if kc.sealed != nil && vc.sealed != nil && t.sealedRows > 0 {
		keys = append(keys, exec.Piece{
			Rows: layout.RowRange{Begin: 0, End: t.sealedRows},
			Vec:  layout.ColVector{Stride: ksize, Size: ksize, Len: int(t.sealedRows)},
			Zone: kc.zone,
			Comp: kc.sealed,
		})
		vals = append(vals, exec.Piece{
			Rows: layout.RowRange{Begin: 0, End: t.sealedRows},
			Vec:  layout.ColVector{Stride: vsize, Size: vsize, Len: int(t.sealedRows)},
			Zone: vc.zone,
			Comp: vc.sealed,
		})
	}
	kv, err := kc.active.ColVector(keyCol)
	if err != nil {
		return nil, err
	}
	vv, err := vc.active.ColVector(valCol)
	if err != nil {
		return nil, err
	}
	keys = append(keys, exec.Piece{
		Rows: layout.RowRange{Begin: t.sealedRows, End: t.sealedRows + uint64(kv.Len)},
		Vec:  kv,
		Zone: kc.active.Stats(keyCol),
	})
	vals = append(vals, exec.Piece{
		Rows: layout.RowRange{Begin: t.sealedRows, End: t.sealedRows + uint64(vv.Len)},
		Vec:  vv,
		Zone: vc.active.Stats(valCol),
	})
	groups, err := exec.GroupSumFloat64Where(t.cfg, keys, vals, p)
	if err != nil {
		return nil, err
	}
	table := make(map[int64]*exec.GroupResult, len(groups))
	for i := range groups {
		g := groups[i]
		table[g.Key] = &g
	}
	// Patch rows whose newest key or value lives in a tail page.
	for row := uint64(0); row < t.rows; row++ {
		if t.dict[row][keyCol] < 0 && t.dict[row][valCol] < 0 {
			continue
		}
		baseK, err := t.baseValue(row, keyCol)
		if err != nil {
			return nil, err
		}
		baseV, err := t.baseValue(row, valCol)
		if err != nil {
			return nil, err
		}
		curK, err := t.valueAsOf(row, keyCol, 0)
		if err != nil {
			return nil, err
		}
		curV, err := t.valueAsOf(row, valCol, 0)
		if err != nil {
			return nil, err
		}
		if p.Match(baseV.F) {
			if g := table[baseK.I]; g != nil {
				g.Sum -= baseV.F
				g.Count--
			}
		}
		if p.Match(curV.F) {
			g := table[curK.I]
			if g == nil {
				g = &exec.GroupResult{Key: curK.I}
				table[curK.I] = g
			}
			g.Sum += curV.F
			g.Count++
		}
	}
	out := make([]exec.GroupResult, 0, len(table))
	for _, g := range table {
		if g.Count > 0 {
			out = append(out, *g)
		}
	}
	return exec.MergeGroupResults(out), nil
}

// Snapshot digests the live structure. The sealed, appendable and tail
// regions are all part of the physical layout even though reads route
// through the dictionary; reporting them together is what makes the
// classifier see the combined (strong flexible) partitioning: vertical
// per attribute, horizontal base/tail within each attribute.
func (t *Table) Snapshot() layout.Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := layout.Snapshot{Relation: t.rel.Name(), Arity: t.s.Arity(), Rows: t.rows}
	li := layout.LayoutInfo{Name: "base+tail"}
	for col, c := range t.cols {
		if c.sealed != nil {
			li.Fragments = append(li.Fragments, layout.FragmentInfo{
				Rows:  layout.RowRange{Begin: 0, End: t.sealedRows},
				Cols:  []int{col},
				Lin:   layout.Direct,
				Space: mem.Host,
			})
		}
		ad := c.active.Digest()
		td := c.tail.Digest()
		// Tail rows live logically after the base region.
		td.Rows = layout.RowRange{Begin: ad.Rows.End, End: ad.Rows.End + uint64(c.tail.Cap())}
		li.Fragments = append(li.Fragments, ad, td)
	}
	li.Combined = true
	s.Layouts = append(s.Layouts, li)
	return s
}

// Free releases all storage.
func (t *Table) Free() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.cols {
		c.tail.Free()
	}
	t.rel.Free()
	t.cols, t.dict = nil, nil
	t.rows, t.sealedRows = 0, 0
}
