package lstore

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"hybridstore/internal/engine"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv())
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	lt := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := lt.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestUpdatesAppendToTailNotBase(t *testing.T) {
	tbl := load(t, 200)
	defer tbl.Free()
	if err := tbl.Update(5, workload.ItemPriceCol, schema.FloatValue(50)); err != nil {
		t.Fatal(err)
	}
	if tbl.TailLength() != 1 {
		t.Fatalf("tail length = %d", tbl.TailLength())
	}
	// Base region still holds the original value (lineage preserved).
	baseV, err := tbl.baseValue(5, workload.ItemPriceCol)
	if err != nil || baseV.F != workload.ItemPrice(5) {
		t.Fatalf("base overwritten: %v, %v", baseV, err)
	}
	// The dictionary routes reads to the tail.
	rec, err := tbl.Get(5)
	if err != nil || rec[workload.ItemPriceCol].F != 50 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestHistoricQuerying(t *testing.T) {
	tbl := load(t, 100)
	defer tbl.Free()
	for _, v := range []float64{10, 20, 30} {
		if err := tbl.Update(7, workload.ItemPriceCol, schema.FloatValue(v)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		back int
		want float64
	}{
		{0, 30}, {1, 20}, {2, 10}, {3, workload.ItemPrice(7)}, {99, workload.ItemPrice(7)},
	}
	for _, c := range cases {
		rec, err := tbl.GetVersion(7, c.back)
		if err != nil {
			t.Fatalf("GetVersion(back=%d): %v", c.back, err)
		}
		if rec[workload.ItemPriceCol].F != c.want {
			t.Fatalf("back=%d: got %v, want %v", c.back, rec[workload.ItemPriceCol].F, c.want)
		}
	}
	if _, err := tbl.GetVersion(7, -1); err == nil {
		t.Fatal("negative history depth accepted")
	}
	if _, err := tbl.GetVersion(100, 0); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestSumPatchesTailValues(t *testing.T) {
	tbl := load(t, 300)
	defer tbl.Free()
	want := workload.ExpectedItemPriceSum(300)
	for i := uint64(0); i < 50; i++ {
		if err := tbl.Update(i, workload.ItemPriceCol, schema.FloatValue(0)); err != nil {
			t.Fatal(err)
		}
		want -= workload.ItemPrice(i)
	}
	// Update the same row twice: only the newest counts.
	if err := tbl.Update(0, workload.ItemPriceCol, schema.FloatValue(5)); err != nil {
		t.Fatal(err)
	}
	want += 5
	got, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, %v; want %v", got, err, want)
	}
}

func TestMergeFoldsTailsIntoBase(t *testing.T) {
	tbl := load(t, 200)
	defer tbl.Free()
	for i := uint64(0); i < 80; i++ {
		if err := tbl.Update(i, workload.ItemPriceCol, schema.FloatValue(1)); err != nil {
			t.Fatal(err)
		}
	}
	sumBefore, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if tbl.TailLength() != 0 {
		t.Fatalf("tail not emptied: %d", tbl.TailLength())
	}
	if tbl.Merges() != 1 {
		t.Fatalf("Merges = %d", tbl.Merges())
	}
	sumAfter, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sumAfter-sumBefore) > 1e-6 {
		t.Fatalf("merge changed sum: %v → %v", sumBefore, sumAfter)
	}
	// History is consolidated away by the merge.
	rec, err := tbl.GetVersion(0, 5)
	if err != nil || rec[workload.ItemPriceCol].F != 1 {
		t.Fatalf("post-merge history = %v, %v", rec, err)
	}
}

func TestSumRejectsNonFloatColumns(t *testing.T) {
	tbl := load(t, 10)
	defer tbl.Free()
	if _, err := tbl.SumFloat64(0); err == nil {
		t.Fatal("int64 column summed as float")
	}
	if _, err := tbl.SumFloat64(99); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestSnapshotIsCombined(t *testing.T) {
	tbl := load(t, 100)
	defer tbl.Free()
	snap := tbl.Snapshot()
	if len(snap.Layouts) != 1 || !snap.Layouts[0].Combined {
		t.Fatalf("snapshot = %+v", snap.Layouts)
	}
	// Appendable + tail fragments per attribute (no sealed region before
	// the first merge).
	if got := len(snap.Layouts[0].Fragments); got != 10 {
		t.Fatalf("fragments = %d, want 10", got)
	}
}

// Property: any update sequence followed by Merge equals applying the
// updates to a model map, and history before merge walks correctly.
func TestQuickLineageEquivalence(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := New(engine.NewEnv())
		tbl, err := e.Create("item", workload.ItemSchema())
		if err != nil {
			return false
		}
		lt := tbl.(*Table)
		defer lt.Free()
		const n = 40
		if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
			_, err := lt.Insert(rec)
			return err
		}); err != nil {
			return false
		}
		model := map[uint64]float64{}
		for i := uint64(0); i < n; i++ {
			model[i] = workload.ItemPrice(i)
		}
		ops := int(opsRaw)%100 + 1
		for i := 0; i < ops; i++ {
			row := uint64(r.Int63n(n))
			val := math.Floor(r.Float64() * 100)
			if lt.Update(row, workload.ItemPriceCol, schema.FloatValue(val)) != nil {
				return false
			}
			model[row] = val
		}
		var want float64
		for _, v := range model {
			want += v
		}
		got, err := lt.SumFloat64(workload.ItemPriceCol)
		if err != nil || math.Abs(got-want) > 1e-6 {
			return false
		}
		if lt.Merge() != nil {
			return false
		}
		got, err = lt.SumFloat64(workload.ItemPriceCol)
		return err == nil && math.Abs(got-want) < 1e-6 && lt.TailLength() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSealsCompressedBase(t *testing.T) {
	tbl := load(t, 2000)
	defer tbl.Free()
	if tbl.SealedRows() != 0 || tbl.CompressionRatio() != 1 {
		t.Fatal("fresh table should have no sealed region")
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if tbl.SealedRows() != 2000 {
		t.Fatalf("sealed rows = %d", tbl.SealedRows())
	}
	// The item table's low-cardinality columns compress well.
	if ratio := tbl.CompressionRatio(); ratio < 1.5 {
		t.Fatalf("compression ratio = %v, want > 1.5", ratio)
	}
	// Sealed rows read back exactly.
	for _, row := range []uint64{0, 999, 1999} {
		rec, err := tbl.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("sealed Get(%d) = %v, %v", row, rec, err)
		}
	}
	// Sealed-region scan uses the compressed fast path and is exact.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(2000)) > 1e-6 {
		t.Fatalf("sealed sum = %v, %v", sum, err)
	}
	// A sealed fragment appears in the snapshot (15 = 5 sealed + 5
	// appendable + 5 tail).
	if got := len(tbl.Snapshot().Layouts[0].Fragments); got != 15 {
		t.Fatalf("fragments = %d, want 15", got)
	}
}

func TestInsertAndUpdateAfterSeal(t *testing.T) {
	tbl := load(t, 500)
	defer tbl.Free()
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	// Post-merge inserts land in the appendable region.
	for i := uint64(500); i < 700; i++ {
		if _, err := tbl.Insert(workload.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Updates to sealed rows go to the tail; the sealed image is
	// untouched.
	if err := tbl.Update(3, workload.ItemPriceCol, schema.FloatValue(1234)); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(3)
	if err != nil || rec[workload.ItemPriceCol].F != 1234 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
	base, err := tbl.baseValue(3, workload.ItemPriceCol)
	if err != nil || base.F != workload.ItemPrice(3) {
		t.Fatalf("sealed base mutated: %v, %v", base, err)
	}
	want := workload.ExpectedItemPriceSum(700) - workload.ItemPrice(3) + 1234
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-want) > 1e-6 {
		t.Fatalf("sum = %v, %v; want %v", sum, err, want)
	}
	// A second merge seals everything again.
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if tbl.SealedRows() != 700 || tbl.TailLength() != 0 {
		t.Fatalf("after second merge: sealed=%d tail=%d", tbl.SealedRows(), tbl.TailLength())
	}
	rec, err = tbl.Get(3)
	if err != nil || rec[workload.ItemPriceCol].F != 1234 {
		t.Fatalf("post-merge Get = %v, %v", rec, err)
	}
}
