package lstore

import "hybridstore/internal/rescache"

// VersionStamp collects the version vector a column read folds in
// L-Store: per requested column the active base fragment and the tail
// fragment (inserts append to active, updates append to the tail —
// both bump the fragment version; growth swaps in a fresh fragment
// ID), plus Epoch = the merge counter, because Merge rebuilds the
// sealed compressed region, which carries no fragment versions of its
// own. All three mutators hold the exclusive table lock, so two equal
// stamps bracket a window in which the observed column state —
// sealed + active + tail + lineage — was byte-identical. ok is false
// only for an out-of-range column.
func (t *Table) VersionStamp(cols ...int) (rescache.Stamp, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := rescache.Stamp{Rows: t.rows, Epoch: uint64(t.merges)}
	for _, col := range cols {
		if col < 0 || col >= len(t.cols) {
			return rescache.Stamp{}, false
		}
		c := t.cols[col]
		st.Frags = append(st.Frags,
			rescache.FragVer{ID: c.active.ID(), Ver: c.active.Version()},
			rescache.FragVer{ID: c.tail.ID(), Ver: c.tail.Version()},
		)
	}
	return st, true
}
