// Package mirrors implements Fractured Mirrors (Ramamurthy, DeWitt, Su,
// 2002; paper Section IV-A.2): a replication-based, inflexible,
// multi-layout engine holding two logical copies of each relation — one
// NSM-linearized, one DSM-linearized — rather than two identical physical
// copies. Writes go to both mirrors; reads route by access pattern (the
// common table base picks the NSM mirror for record-centric access and
// the DSM mirror for attribute-centric scans via its cost model). Pages
// of both mirrors are striped round-robin over the simulated disks so
// each disk carries a full copy of the relation for fault tolerance —
// the scheme's eponymous "fractured" mirroring.
package mirrors

import (
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
)

// Engine is the Fractured Mirrors storage engine.
type Engine struct {
	env   *engine.Env
	disks int
}

// New creates the engine with the given simulated disk count (minimum 2).
func New(env *engine.Env, disks int) *Engine {
	if disks < 2 {
		disks = 2
	}
	return &Engine{env: env, disks: disks}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "Fractured Mirrors" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		BuiltInMultiLayout: true,
		FixedFragmentation: true, // one full-relation fragment per mirror
		Scheme:             taxonomy.SchemeReplication,
		Processors:         taxonomy.CPUOnly,
		Workloads:          taxonomy.HTAP,
		PrimaryDeclared:    taxonomy.LocSecondary,
		HasPrimaryDeclared: true,
		Year:               2002,
	}
}

// Table is a fractured-mirrors relation.
type Table struct {
	*common.Table
	nsm, dsm *layout.Fragment
	disks    int
	// stripes[d] counts the pages assigned to disk d (both mirrors are
	// spread over all disks, skew-balanced).
	stripes  []int
	pageRows uint64
}

// Create makes an empty mirrored relation.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	const initialCap = 64
	nsmLayout := layout.NewLayout("nsm-mirror", s)
	dsmLayout := layout.NewLayout("dsm-mirror", s)
	nsm, err := layout.NewFragment(e.env.Host, s, layout.AllCols(s), layout.RowRange{Begin: 0, End: initialCap}, layout.NSM)
	if err != nil {
		return nil, fmt.Errorf("mirrors: %w", err)
	}
	dsm, err := layout.NewFragment(e.env.Host, s, layout.AllCols(s), layout.RowRange{Begin: 0, End: initialCap}, layout.DSM)
	if err != nil {
		nsm.Free()
		return nil, fmt.Errorf("mirrors: %w", err)
	}
	nsmLayout.Add(nsm)
	dsmLayout.Add(dsm)
	rel.AddLayout(nsmLayout)
	rel.AddLayout(dsmLayout)
	t := &Table{
		Table:    common.NewTable(e.env, rel),
		nsm:      nsm,
		dsm:      dsm,
		disks:    e.disks,
		stripes:  make([]int, e.disks),
		pageRows: 256,
	}
	t.Append = t.appendRecord
	return t, nil
}

// appendRecord writes the record into both mirrors, growing them as
// needed, and assigns newly started pages to disks round-robin.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	var err error
	if t.nsm.Len() == t.nsm.Cap() {
		grown, gerr := t.nsm.Grow(t.Env.Host, t.nsm.Cap()*2)
		if gerr != nil {
			return fmt.Errorf("mirrors: growing NSM mirror: %w", gerr)
		}
		if err = t.Rel.Layouts()[0].Replace(t.nsm, grown); err != nil {
			return err
		}
		t.nsm = grown
	}
	if t.dsm.Len() == t.dsm.Cap() {
		grown, gerr := t.dsm.Grow(t.Env.Host, t.dsm.Cap()*2)
		if gerr != nil {
			return fmt.Errorf("mirrors: growing DSM mirror: %w", gerr)
		}
		if err = t.Rel.Layouts()[1].Replace(t.dsm, grown); err != nil {
			return err
		}
		t.dsm = grown
	}
	if err := common.AppendToFragments(rec, t.nsm, t.dsm); err != nil {
		return err
	}
	// Page-level striping: every pageRows records start a new page of
	// each mirror on the next disk.
	if row%t.pageRows == 0 {
		t.stripes[int(row/t.pageRows)%t.disks] += 2 // one page per mirror
	}
	return nil
}

// DiskStripes returns the per-disk page counts; balanced striping keeps
// them within one page of each other.
func (t *Table) DiskStripes() []int {
	return append([]int(nil), t.stripes...)
}

// MirrorLinearizations reports the two mirrors' linearizations, for
// classification tests.
func (t *Table) MirrorLinearizations() (layout.Linearization, layout.Linearization) {
	return t.nsm.Lin(), t.dsm.Lin()
}
