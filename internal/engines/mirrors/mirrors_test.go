package mirrors

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, disks int, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv(), disks)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	mt := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := mt.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return mt
}

func TestTwoMirrorsWithOppositeLinearization(t *testing.T) {
	tbl := load(t, 4, 500)
	defer tbl.Free()
	nsm, dsm := tbl.MirrorLinearizations()
	if nsm != layout.NSM || dsm != layout.DSM {
		t.Fatalf("mirrors = %v/%v", nsm, dsm)
	}
	snap := tbl.Snapshot()
	if len(snap.Layouts) != 2 {
		t.Fatalf("layouts = %d", len(snap.Layouts))
	}
	for _, l := range snap.Layouts {
		if len(l.Fragments) != 1 {
			t.Fatalf("mirror %q has %d fragments (inflexible = 1)", l.Name, len(l.Fragments))
		}
	}
}

func TestMirrorsStayCoherentUnderWrites(t *testing.T) {
	tbl := load(t, 2, 300)
	defer tbl.Free()
	if err := tbl.Update(7, workload.ItemPriceCol, schema.FloatValue(123)); err != nil {
		t.Fatal(err)
	}
	// Both mirrors must hold the new value.
	for i, l := range tbl.Rel.Layouts() {
		f := l.Fragments()[0]
		v, err := f.Get(7, workload.ItemPriceCol)
		if err != nil || v.F != 123 {
			t.Fatalf("mirror %d value = %v, %v", i, v, err)
		}
	}
}

func TestQueryRoutingByAccessPattern(t *testing.T) {
	tbl := load(t, 2, 500)
	defer tbl.Free()
	// Attribute-centric scans route to the DSM mirror.
	scan := tbl.LayoutForScan(workload.ItemPriceCol)
	if scan.Name() != "dsm-mirror" {
		t.Fatalf("scan routed to %q", scan.Name())
	}
	// Record-centric materialization routes to the NSM mirror.
	mat := tbl.LayoutForMaterialize()
	if mat.Name() != "nsm-mirror" {
		t.Fatalf("materialize routed to %q", mat.Name())
	}
	// Both give the right answers.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(500)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	rec, err := tbl.Get(123)
	if err != nil || !rec.Equal(workload.Item(123)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestDiskStripingBalanced(t *testing.T) {
	tbl := load(t, 4, 3000) // pageRows=256 → 12 page starts
	defer tbl.Free()
	stripes := tbl.DiskStripes()
	if len(stripes) != 4 {
		t.Fatalf("disks = %d", len(stripes))
	}
	min, max := stripes[0], stripes[0]
	total := 0
	for _, s := range stripes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		total += s
	}
	if total == 0 {
		t.Fatal("no pages striped")
	}
	if max-min > 2 {
		t.Fatalf("striping skewed: %v", stripes)
	}
}

func TestMinimumDisks(t *testing.T) {
	e := New(engine.NewEnv(), 0)
	if e.disks != 2 {
		t.Fatalf("disks = %d, want clamped to 2", e.disks)
	}
}

func TestGrowthPreservesBothMirrors(t *testing.T) {
	tbl := load(t, 2, 1000) // forces several growth cycles from cap 64
	defer tbl.Free()
	for _, row := range []uint64{0, 63, 64, 999} {
		rec, err := tbl.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("Get(%d) = %v, %v", row, rec, err)
		}
	}
}
