package peloton

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

func load(t *testing.T, groupRows uint64, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv(), groupRows, 0.5)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	pt := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := pt.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestTileGroupsGrow(t *testing.T) {
	tbl := load(t, 128, 500)
	defer tbl.Free()
	if got := tbl.TileGroups(); got != 4 {
		t.Fatalf("tile groups = %d, want 4", got)
	}
	// Default advice: one full-width NSM tile per group.
	if g := tbl.GroupLayout(0); len(g) != 1 || len(g[0]) != 5 {
		t.Fatalf("group layout = %v", g)
	}
	if tbl.GroupLayout(99) != nil {
		t.Fatal("out-of-range GroupLayout should be nil")
	}
}

func TestAdaptChangesOnlyFutureGroups(t *testing.T) {
	tbl := load(t, 128, 256) // groups 0,1
	defer tbl.Free()
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{workload.ItemPriceCol}})
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
	}
	changed, err := tbl.Adapt()
	if err != nil || !changed {
		t.Fatalf("Adapt = %v, %v", changed, err)
	}
	// Existing groups keep the old layout.
	if g := tbl.GroupLayout(0); len(g) != 1 {
		t.Fatalf("old group transformed eagerly: %v", g)
	}
	// New groups adopt the advice — the layout archipelago.
	if err := workload.Generate(256, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := tbl.Insert(workload.Item(256 + i))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	newest := tbl.GroupLayout(tbl.TileGroups() - 1)
	if len(newest) < 2 {
		t.Fatalf("new group did not adopt advice: %v", newest)
	}
	// Mixed layouts answer correctly.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(512)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
}

func TestTransformGroupMigratesLayout(t *testing.T) {
	tbl := load(t, 128, 256)
	defer tbl.Free()
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1}})
		tbl.Observe(workload.Op{Kind: workload.ColumnScan, Cols: []int{4}})
	}
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.TransformGroup(0); err != nil {
		t.Fatal(err)
	}
	if g := tbl.GroupLayout(0); len(g) < 2 {
		t.Fatalf("group 0 not transformed: %v", g)
	}
	// Idempotent on an already-transformed group.
	if err := tbl.TransformGroup(0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.TransformGroup(42); err == nil {
		t.Fatal("out-of-range transform accepted")
	}
	// Data intact.
	for _, row := range []uint64{0, 127, 255} {
		rec, err := tbl.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("Get(%d) = %v, %v", row, rec, err)
		}
	}
}

func TestLogicalTileLayoutTransparency(t *testing.T) {
	tbl := load(t, 128, 200)
	defer tbl.Free()
	lt := tbl.LogicalTile(0, []int{4, 0})
	if lt == nil || lt.Len() != 128 {
		t.Fatalf("logical tile = %v", lt)
	}
	rec, err := lt.Record(10)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0].F != workload.ItemPrice(10) || rec[1].I != 10 {
		t.Fatalf("logical record = %v", rec)
	}
	if _, err := lt.Value(0, 99); err == nil {
		t.Fatal("missing attribute accepted")
	}
	if tbl.LogicalTile(-1, nil) != nil {
		t.Fatal("negative group index accepted")
	}
}

func TestAdaptWithoutSignalIsStable(t *testing.T) {
	tbl := load(t, 128, 100)
	defer tbl.Free()
	// The monitor is empty: the advice collapses to all-thin, which
	// differs from the initial all-NSM default — one change, then stable.
	if _, err := tbl.Adapt(); err != nil {
		t.Fatal(err)
	}
	changed, err := tbl.Adapt()
	if err != nil || changed {
		t.Fatalf("second Adapt = %v, %v", changed, err)
	}
}

func TestUpdateWritesThroughTiles(t *testing.T) {
	tbl := load(t, 128, 300)
	defer tbl.Free()
	if err := tbl.Update(130, 4, schema.FloatValue(9)); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(130)
	if err != nil || rec[4].F != 9 {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}
