// Package peloton implements the tile-based architecture of Arulraj,
// Pavlo & Menon (2016; paper Section IV-B.5), the storage engine of the
// Peloton DBMS: a relation is a sequence of tile groups (horizontal
// fragments), each vertically partitioned into physical tiles whose
// column grouping is chosen per group — the flexible storage model (FSM).
// New tile groups adopt the currently-advised grouping while old groups
// keep theirs, so the relation's layout evolves incrementally with the
// workload; TransformGroup migrates cold groups in the background.
// Logical tiles provide layout transparency: they reference tuplets
// stored in physical tiles (possibly shared by several logical tiles — a
// delegation-based scheme) without exposing their linearization.
package peloton

import (
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// DefaultGroupRows is the default tile-group capacity.
const DefaultGroupRows = 1024

// Engine is the Peloton storage engine.
type Engine struct {
	env       *engine.Env
	groupRows uint64
	affinity  float64
}

// New creates the engine; groupRows 0 uses DefaultGroupRows, affinity
// outside (0,1] uses 0.5.
func New(env *engine.Env, groupRows uint64, affinity float64) *Engine {
	if groupRows == 0 {
		groupRows = DefaultGroupRows
	}
	if affinity <= 0 || affinity > 1 {
		affinity = 0.5
	}
	return &Engine{env: env, groupRows: groupRows, affinity: affinity}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "Peloton" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		BuiltInMultiLayout:    true,
		Responsive:            true,
		VariableLinearization: true,
		Scheme:                taxonomy.SchemeDelegation,
		Processors:            taxonomy.CPUOnly,
		Workloads:             taxonomy.HTAP,
		Year:                  2016,
	}
}

// tileGroup is one horizontal slice with its own vertical tile layout.
type tileGroup struct {
	rows   layout.RowRange
	groups [][]int
	tiles  []*layout.Fragment
}

// len returns the filled tuplets.
func (g *tileGroup) len() int {
	if len(g.tiles) == 0 {
		return 0
	}
	return g.tiles[0].Len()
}

// Table is a Peloton relation.
type Table struct {
	*common.Table
	eng    *Engine
	mon    *workload.Monitor
	groups []*tileGroup
	// advised is the grouping new tile groups adopt.
	advised [][]int
	adapts  int
}

// Create makes an empty relation advised to the all-columns-NSM grouping
// (Peloton's default row-friendly layout for fresh, OLTP-hot data).
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	rel.AddLayout(layout.NewLayout("tile-groups", s))
	t := &Table{
		Table:   common.NewTable(e.env, rel),
		eng:     e,
		mon:     workload.NewMonitor(s.Arity()),
		advised: [][]int{layout.AllCols(s)},
	}
	t.Append = t.appendRecord
	return t, nil
}

// newGroup allocates a tile group at row begin with the advised layout.
func (t *Table) newGroup(begin uint64) (*tileGroup, error) {
	s := t.Rel.Schema()
	g := &tileGroup{
		rows:   layout.RowRange{Begin: begin, End: begin + t.eng.groupRows},
		groups: t.advised,
	}
	for _, cols := range t.advised {
		lin := layout.Direct
		if len(cols) > 1 {
			lin = layout.NSM
		}
		f, err := layout.NewFragment(t.Env.Host, s, cols, g.rows, lin)
		if err != nil {
			for _, done := range g.tiles {
				done.Free()
			}
			return nil, fmt.Errorf("peloton: allocating physical tile: %w", err)
		}
		g.tiles = append(g.tiles, f)
	}
	return g, nil
}

// attach adds the group's tiles to the relation layout.
func (t *Table) attach(g *tileGroup) error {
	l, err := t.Rel.Primary()
	if err != nil {
		return err
	}
	for _, f := range g.tiles {
		if err := l.Add(f); err != nil {
			return err
		}
	}
	return nil
}

// appendRecord routes an insert to the tail tile group.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	var tail *tileGroup
	if n := len(t.groups); n > 0 && t.groups[n-1].len() < int(t.eng.groupRows) {
		tail = t.groups[n-1]
	}
	if tail == nil {
		g, err := t.newGroup(row)
		if err != nil {
			return err
		}
		if err := t.attach(g); err != nil {
			return err
		}
		t.groups = append(t.groups, g)
		tail = g
	}
	return common.AppendToFragments(rec, tail.tiles...)
}

// TileGroups returns the group count.
func (t *Table) TileGroups() int { return len(t.groups) }

// GroupLayout returns the column grouping of tile group i.
func (t *Table) GroupLayout(i int) [][]int {
	if i < 0 || i >= len(t.groups) {
		return nil
	}
	return t.groups[i].groups
}

// Adapts returns the number of advisory changes.
func (t *Table) Adapts() int { return t.adapts }

// Observe feeds a workload operation into the layout advisor.
func (t *Table) Observe(op workload.Op) { t.mon.Observe(op) }

// Adapt re-derives the advised grouping from the monitor. It only
// changes what FUTURE tile groups look like (Peloton's incremental FSM);
// TransformGroup migrates existing groups. Returns whether the advice
// changed.
func (t *Table) Adapt() (bool, error) {
	if t.mon.Observations() == 0 {
		return false, nil
	}
	advice := t.mon.SuggestGroups(t.eng.affinity)
	if groupingEqual(advice, t.advised) {
		return false, nil
	}
	t.advised = advice
	t.adapts++
	t.mon.Reset()
	return true, nil
}

// TransformGroup migrates tile group i to the currently advised layout
// (the background transformation of cold tile groups).
func (t *Table) TransformGroup(i int) error {
	if i < 0 || i >= len(t.groups) {
		return fmt.Errorf("%w: tile group %d of %d", layout.ErrOutOfRange, i, len(t.groups))
	}
	old := t.groups[i]
	if groupingEqual(old.groups, t.advised) {
		return nil
	}
	s := t.Rel.Schema()
	ng := &tileGroup{rows: old.rows, groups: t.advised}
	for _, cols := range t.advised {
		lin := layout.Direct
		if len(cols) > 1 {
			lin = layout.NSM
		}
		f, err := layout.NewFragment(t.Env.Host, s, cols, old.rows, lin)
		if err != nil {
			for _, done := range ng.tiles {
				done.Free()
			}
			return fmt.Errorf("peloton: transforming tile group: %w", err)
		}
		ng.tiles = append(ng.tiles, f)
	}
	// Migrate tuplets through a logical tile over the old group.
	lt := t.LogicalTile(i, layout.AllCols(s))
	for pos := 0; pos < old.len(); pos++ {
		rec, err := lt.Record(pos)
		if err != nil {
			for _, done := range ng.tiles {
				done.Free()
			}
			return err
		}
		if err := common.AppendToFragments(rec, ng.tiles...); err != nil {
			for _, done := range ng.tiles {
				done.Free()
			}
			return err
		}
	}
	l, _ := t.Rel.Primary()
	for _, f := range old.tiles {
		l.Remove(f)
		f.Free()
	}
	t.groups[i] = ng
	return t.attach(ng)
}

// LogicalTile is Peloton's layout-transparency abstraction: a projection
// over one tile group that resolves attributes to whatever physical tile
// stores them, without exposing linearization. Several logical tiles may
// reference the same physical tuplets (delegation).
type LogicalTile struct {
	group *tileGroup
	cols  []int
}

// LogicalTile builds a logical tile over tile group i with the given
// attribute projection.
func (t *Table) LogicalTile(i int, cols []int) *LogicalTile {
	if i < 0 || i >= len(t.groups) {
		return nil
	}
	return &LogicalTile{group: t.groups[i], cols: cols}
}

// Len returns the tuplet count of the logical tile.
func (lt *LogicalTile) Len() int { return lt.group.len() }

// Value resolves (pos, col) through the physical tiles.
func (lt *LogicalTile) Value(pos int, col int) (schema.Value, error) {
	for _, f := range lt.group.tiles {
		if f.HasCol(col) {
			return f.Get(pos, col)
		}
	}
	return schema.Value{}, fmt.Errorf("%w: attribute %d", layout.ErrOutOfRange, col)
}

// Record materializes the logical tile's projection at pos.
func (lt *LogicalTile) Record(pos int) (schema.Record, error) {
	rec := make(schema.Record, len(lt.cols))
	for i, c := range lt.cols {
		v, err := lt.Value(pos, c)
		if err != nil {
			return nil, err
		}
		rec[i] = v
	}
	return rec, nil
}

// groupingEqual compares two column groupings.
func groupingEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
