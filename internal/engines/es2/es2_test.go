package es2

import (
	"math"
	"testing"

	"hybridstore/internal/engine"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

func load(t *testing.T, nodes int, partRows uint64, n uint64) *Table {
	t.Helper()
	e := New(engine.NewEnv(), nodes, partRows)
	tbl, err := e.Create("item", workload.ItemSchema())
	if err != nil {
		t.Fatal(err)
	}
	et := tbl.(*Table)
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		_, err := et.Insert(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return et
}

func TestTwoStepFragmentation(t *testing.T) {
	tbl := load(t, 4, 128, 500)
	defer tbl.Free()
	// Step 1 default: all-singleton groups; step 2: 4 stripes of 128.
	if got := tbl.Partitions(); got != 5*4 {
		t.Fatalf("partitions = %d, want 20", got)
	}
	snap := tbl.Snapshot()
	if !snap.Layouts[0].Combined {
		t.Fatal("two-step fragmentation must classify as combined")
	}
	// Everything on secondary (DFS) storage.
	for _, l := range snap.Layouts {
		for _, f := range l.Fragments {
			if f.Space != 2 { // mem.Secondary
				t.Fatalf("fragment space = %v", f.Space)
			}
			if f.Lin != layout.DSM {
				t.Fatalf("fragment lin = %v, want PAX-formatted DSM", f.Lin)
			}
		}
	}
}

func TestDataBalancedAcrossNodes(t *testing.T) {
	tbl := load(t, 4, 64, 1024)
	defer tbl.Free()
	bytes := tbl.NodeBytes()
	if len(bytes) != 4 {
		t.Fatalf("nodes = %d", len(bytes))
	}
	var min, max int64 = bytes[0], bytes[0]
	for _, b := range bytes {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min == 0 {
		t.Fatalf("a node stores nothing: %v", bytes)
	}
	if float64(max) > 2.0*float64(min) {
		t.Fatalf("placement skewed: %v", bytes)
	}
}

func TestDistributedSecondaryIndex(t *testing.T) {
	tbl := load(t, 3, 128, 400)
	defer tbl.Free()
	row, ok := tbl.LookupPK(250)
	if !ok || row != 250 {
		t.Fatalf("LookupPK = %d, %v", row, ok)
	}
	if _, ok := tbl.LookupPK(9999); ok {
		t.Fatal("missing key found")
	}
	rec, err := tbl.Get(row)
	if err != nil || !rec.Equal(workload.Item(250)) {
		t.Fatalf("Get = %v, %v", rec, err)
	}
}

func TestFailoverToReplicas(t *testing.T) {
	tbl := load(t, 3, 64, 600)
	defer tbl.Free()
	want := workload.ExpectedItemPriceSum(600)
	if err := tbl.FailNode(0); err != nil {
		t.Fatal(err)
	}
	// All rows remain readable and aggregable.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-want) > 1e-6 {
		t.Fatalf("post-failure sum = %v, %v", sum, err)
	}
	for _, row := range []uint64{0, 100, 599} {
		rec, err := tbl.Get(row)
		if err != nil || !rec.Equal(workload.Item(row)) {
			t.Fatalf("post-failure Get(%d) = %v, %v", row, rec, err)
		}
	}
	// Writes continue; new partitions avoid the failed node.
	if _, err := tbl.Insert(workload.Item(600)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FailNode(9); err == nil {
		t.Fatal("bad node id accepted")
	}
}

func TestAdaptRefragments(t *testing.T) {
	tbl := load(t, 2, 64, 300)
	defer tbl.Free()
	for i := 0; i < 100; i++ {
		tbl.Observe(workload.Op{Kind: workload.PointRead, Cols: []int{0, 1, 2}})
	}
	changed, err := tbl.Adapt()
	if err != nil || !changed {
		t.Fatalf("Adapt = %v, %v", changed, err)
	}
	if len(tbl.Groups()[0]) != 3 {
		t.Fatalf("groups = %v", tbl.Groups())
	}
	if tbl.Adapts() != 1 {
		t.Fatalf("Adapts = %d", tbl.Adapts())
	}
	// Data intact and a fat DSM (PAX) partition now exists.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(300)) > 1e-6 {
		t.Fatalf("sum = %v, %v", sum, err)
	}
	var fat bool
	for _, f := range tbl.Snapshot().Layouts[0].Fragments {
		if f.Fat && f.Lin == layout.DSM {
			fat = true
		}
	}
	if !fat {
		t.Fatal("no PAX-formatted fat partition after regrouping")
	}
	// Stable afterwards.
	changed, err = tbl.Adapt()
	if err != nil || changed {
		t.Fatalf("second Adapt = %v, %v", changed, err)
	}
}

func TestClusterDistributedLocality(t *testing.T) {
	tbl := load(t, 2, 64, 100)
	defer tbl.Free()
	e := New(engine.NewEnv(), 2, 64)
	c, err := engine.Classify(e, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if c.Locality != taxonomy.Distributed {
		t.Fatalf("locality = %v", c.Locality)
	}
}

func TestMinimumNodes(t *testing.T) {
	e := New(engine.NewEnv(), 0, 0)
	if e.nodes != 2 || e.partRows != DefaultPartitionRows {
		t.Fatalf("defaults = %d nodes, %d rows", e.nodes, e.partRows)
	}
}

func TestElasticityAddNodeAndRebalance(t *testing.T) {
	tbl := load(t, 2, 64, 1024)
	defer tbl.Free()
	want := workload.ExpectedItemPriceSum(1024)

	id := tbl.AddNode()
	if id != 2 || tbl.Nodes() != 3 {
		t.Fatalf("AddNode = %d, nodes = %d", id, tbl.Nodes())
	}
	before := tbl.NodeBytes()
	if before[2] != 0 {
		t.Fatal("fresh node should be empty")
	}
	moved, err := tbl.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing")
	}
	after := tbl.NodeBytes()
	if after[2] == 0 {
		t.Fatalf("new node still empty after rebalance: %v", after)
	}
	var min, max int64 = after[0], after[0]
	for _, b := range after {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if float64(max) > 2.5*float64(min+1) {
		t.Fatalf("rebalance left skew: %v", after)
	}
	// Primary and replica never co-locate.
	for _, p := range tbl.parts {
		if p.primary != p.replica && p.primaryNode == p.replicaNode {
			t.Fatalf("partition co-located on node %d", p.primaryNode)
		}
	}
	// Data intact.
	sum, err := tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-want) > 1e-6 {
		t.Fatalf("post-rebalance sum = %v, %v", sum, err)
	}
	rec, err := tbl.Get(777)
	if err != nil || !rec.Equal(workload.Item(777)) {
		t.Fatalf("post-rebalance Get = %v, %v", rec, err)
	}
	// New inserts use the grown cluster.
	for i := uint64(1024); i < 1600; i++ {
		if _, err := tbl.Insert(workload.Item(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Failover still works after elasticity.
	if err := tbl.FailNode(0); err != nil {
		t.Fatal(err)
	}
	sum, err = tbl.SumFloat64(workload.ItemPriceCol)
	if err != nil || math.Abs(sum-workload.ExpectedItemPriceSum(1600)) > 1e-6 {
		t.Fatalf("post-failure sum = %v, %v", sum, err)
	}
}
