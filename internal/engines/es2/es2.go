// Package es2 implements ES², the elastic storage engine of the epiC
// cloud platform (Cao et al., 2011; paper Section IV-A.4), over a
// simulated shared-nothing cluster. The built-in two-step fragmentation
// is reproduced: (1) columns that are frequently accessed together fuse
// into vertical sub-relations (driven by workload traces through the
// co-access monitor), then (2) each sub-relation is horizontally split
// into partitions placed round-robin across the cluster nodes. Tuplets
// are written PAX-formatted (DSM-fixed fat fragments) onto each node's
// DFS-backed storage, record-centric access goes through a distributed
// secondary index, and every partition is replicated onto the next node
// for load balancing and fault tolerance — FailNode flips reads over to
// the replicas.
package es2

import (
	"fmt"

	"hybridstore/internal/engine"
	"hybridstore/internal/engines/common"
	"hybridstore/internal/index"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/taxonomy"
	"hybridstore/internal/workload"
)

// DefaultPartitionRows is the default horizontal partition size.
const DefaultPartitionRows = 512

// Engine is the ES² storage engine.
type Engine struct {
	env      *engine.Env
	nodes    int
	partRows uint64
	affinity float64
}

// New creates the engine over a simulated cluster of the given size
// (minimum 2 nodes); partRows 0 uses DefaultPartitionRows.
func New(env *engine.Env, nodes int, partRows uint64) *Engine {
	if nodes < 2 {
		nodes = 2
	}
	if partRows == 0 {
		partRows = DefaultPartitionRows
	}
	return &Engine{env: env, nodes: nodes, partRows: partRows, affinity: 0.5}
}

// Name returns the survey name.
func (e *Engine) Name() string { return "ES2" }

// Capabilities declares the paper's Table-1 row.
func (e *Engine) Capabilities() taxonomy.Capabilities {
	return taxonomy.Capabilities{
		BuiltInMultiLayout: true,
		Responsive:         true,
		ClusterDistributed: true,
		Scheme:             taxonomy.SchemeDelegation,
		Processors:         taxonomy.CPUOnly,
		Workloads:          taxonomy.HTAP,
		PrimaryDeclared:    taxonomy.LocSecondary,
		HasPrimaryDeclared: true,
		Year:               2011,
	}
}

// node is one simulated cluster node with its own DFS-backed storage.
type node struct {
	id     int
	dfs    *mem.Allocator
	failed bool
}

// partition is one (column group × row range) cell with its primary and
// replica fragments and their nodes.
type partition struct {
	rows        layout.RowRange
	group       int
	primary     *layout.Fragment
	replica     *layout.Fragment
	primaryNode int
	replicaNode int
}

// Table is an ES² relation.
type Table struct {
	*common.Table
	eng    *Engine
	nodes  []*node
	groups [][]int
	parts  []*partition
	mon    *workload.Monitor
	// pkIndex is the distributed secondary index: primary key value
	// (attribute 0, int64) → row position.
	pkIndex *index.Hash
	adapts  int
}

// Create makes an empty relation with the all-thin initial grouping.
func (e *Engine) Create(name string, s *schema.Schema) (engine.Table, error) {
	rel := layout.NewRelation(name, s)
	rel.AddLayout(layout.NewLayout("primary", s))
	rel.AddLayout(layout.NewLayout("replica", s))
	t := &Table{
		eng:     e,
		mon:     workload.NewMonitor(s.Arity()),
		pkIndex: index.NewHash(64),
	}
	for i := 0; i < e.nodes; i++ {
		t.nodes = append(t.nodes, &node{id: i, dfs: mem.NewAllocator(mem.Secondary, 0)})
	}
	for c := 0; c < s.Arity(); c++ {
		t.groups = append(t.groups, []int{c})
	}
	t.Table = common.NewTable(e.env, rel)
	t.Append = t.appendRecord
	return t, nil
}

// Nodes returns the cluster size.
func (t *Table) Nodes() int { return len(t.nodes) }

// Groups returns the current sub-relation column groups.
func (t *Table) Groups() [][]int { return t.groups }

// Adapts returns the number of re-fragmentations.
func (t *Table) Adapts() int { return t.adapts }

// Partitions returns the partition count.
func (t *Table) Partitions() int { return len(t.parts) }

// newPartition allocates primary+replica fragments for (group, rows) on
// consecutive nodes, skipping failed ones.
func (t *Table) newPartition(group int, rows layout.RowRange, idx int) (*partition, error) {
	s := t.Rel.Schema()
	cols := t.groups[group]
	// Partitions are PAX-formatted pages: DSM-fixed even for degenerate
	// single-attribute sub-relations (the paper notes ES² "inherits the
	// fragmentation linearization property of PAX").
	lin := layout.DSM
	pn := t.pickNode(idx)
	rn := t.pickNode(idx + 1)
	prim, err := layout.NewFragment(t.nodes[pn].dfs, s, cols, rows, lin)
	if err != nil {
		return nil, fmt.Errorf("es2: allocating partition: %w", err)
	}
	repl, err := layout.NewFragment(t.nodes[rn].dfs, s, cols, rows, lin)
	if err != nil {
		prim.Free()
		return nil, fmt.Errorf("es2: allocating replica: %w", err)
	}
	p := &partition{rows: rows, group: group, primary: prim, replica: repl, primaryNode: pn, replicaNode: rn}
	if err := t.Rel.Layouts()[0].Add(prim); err != nil {
		return nil, err
	}
	if err := t.Rel.Layouts()[1].Add(repl); err != nil {
		return nil, err
	}
	return p, nil
}

// pickNode maps a partition index to a live node round-robin.
func (t *Table) pickNode(idx int) int {
	n := len(t.nodes)
	for probe := 0; probe < n; probe++ {
		cand := (idx + probe) % n
		if !t.nodes[cand].failed {
			return cand
		}
	}
	return idx % n
}

// appendRecord routes the insert into the tail partitions of every
// column group, creating a new partition stripe when the tail is full.
func (t *Table) appendRecord(row uint64, rec schema.Record) error {
	stripe := int(row / t.eng.partRows)
	begin := uint64(stripe) * t.eng.partRows
	rows := layout.RowRange{Begin: begin, End: begin + t.eng.partRows}
	for g := range t.groups {
		p := t.findPartition(g, row)
		if p == nil {
			var err error
			p, err = t.newPartition(g, rows, stripe*len(t.groups)+g)
			if err != nil {
				return err
			}
			t.parts = append(t.parts, p)
		}
		targets := []*layout.Fragment{p.primary}
		if p.replica != p.primary {
			targets = append(targets, p.replica)
		}
		if err := common.AppendToFragments(rec, targets...); err != nil {
			return err
		}
	}
	if err := t.pkIndex.Put(rec[0].I, row); err != nil {
		return fmt.Errorf("es2: indexing pk: %w", err)
	}
	return nil
}

// findPartition locates the partition of group g covering row.
func (t *Table) findPartition(g int, row uint64) *partition {
	for _, p := range t.parts {
		if p.group == g && p.rows.Contains(row) {
			return p
		}
	}
	return nil
}

// LookupPK resolves a primary-key value through the distributed secondary
// index to a row position.
func (t *Table) LookupPK(pk int64) (uint64, bool) {
	row, err := t.pkIndex.Get(pk)
	return row, err == nil
}

// FailNode marks a node as failed and promotes the replicas of its
// primary partitions into the read path, so every row stays readable
// after a single-node failure (the fractured-mirror-style guarantee the
// replica placement exists for).
func (t *Table) FailNode(id int) error {
	if id < 0 || id >= len(t.nodes) {
		return fmt.Errorf("%w: node %d of %d", layout.ErrOutOfRange, id, len(t.nodes))
	}
	t.nodes[id].failed = true
	primaryLayout := t.Rel.Layouts()[0]
	for _, p := range t.parts {
		if p.primaryNode == id && p.replicaNode != id {
			if err := primaryLayout.Replace(p.primary, p.replica); err != nil {
				return err
			}
			p.primary.Free()
			p.primary, p.primaryNode = p.replica, p.replicaNode
		}
	}
	return nil
}

// Observe feeds a workload operation into the fragmentation advisor.
func (t *Table) Observe(op workload.Op) { t.mon.Observe(op) }

// Adapt re-runs the built-in two-step fragmentation against the observed
// trace: step one re-derives the vertical sub-relations from co-access,
// step two re-partitions them horizontally across the nodes. Returns
// whether the grouping changed.
func (t *Table) Adapt() (bool, error) {
	if t.mon.Observations() == 0 {
		return false, nil
	}
	suggestion := t.mon.SuggestGroups(t.eng.affinity)
	if groupingEqual(suggestion, t.groups) {
		return false, nil
	}
	rows := t.Rel.Rows()
	// Materialize all rows through the old structure, then rebuild.
	recs := make([]schema.Record, rows)
	for row := uint64(0); row < rows; row++ {
		rec, err := t.Get(row)
		if err != nil {
			return false, fmt.Errorf("es2: migrating row %d: %w", row, err)
		}
		recs[row] = rec
	}
	for _, l := range t.Rel.Layouts() {
		l.Free()
	}
	t.Rel.RemoveLayout(t.Rel.Layouts()[0])
	t.Rel.RemoveLayout(t.Rel.Layouts()[0])
	s := t.Rel.Schema()
	t.Rel.AddLayout(layout.NewLayout("primary", s))
	t.Rel.AddLayout(layout.NewLayout("replica", s))
	t.parts = nil
	t.groups = suggestion
	t.Rel.SetRows(0)
	t.pkIndex = index.NewHash(int(rows))
	for row, rec := range recs {
		if err := t.appendRecord(uint64(row), rec); err != nil {
			return false, err
		}
		t.Rel.SetRows(uint64(row) + 1)
	}
	t.adapts++
	t.mon.Reset()
	return true, nil
}

// NodeBytes returns each node's stored bytes (for balance tests).
func (t *Table) NodeBytes() []int64 {
	out := make([]int64, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = n.dfs.Used()
	}
	return out
}

// groupingEqual compares two column groupings.
func groupingEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// AddNode grows the simulated cluster by one node (epiC's elasticity:
// the storage layer absorbs new machines at runtime). New partition
// stripes consider the node immediately; Rebalance moves existing
// partitions onto it.
func (t *Table) AddNode() int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, &node{id: id, dfs: mem.NewAllocator(mem.Secondary, 0)})
	return id
}

// Rebalance migrates partitions from the most- to the least-loaded live
// nodes until every node is within one partition-size of the mean —
// epiC's elastic load balancing after cluster growth. Primary and
// replica of one partition never co-locate. Returns the number of
// fragment moves.
func (t *Table) Rebalance() (int, error) {
	moved := 0
	for {
		src, dst := t.mostLoaded(), t.leastLoaded()
		if src < 0 || dst < 0 || src == dst {
			return moved, nil
		}
		gap := t.nodes[src].dfs.Used() - t.nodes[dst].dfs.Used()
		p, isPrimary := t.victimOn(src, dst)
		if p == nil {
			return moved, nil
		}
		frag := p.primary
		if !isPrimary {
			frag = p.replica
		}
		if gap <= int64(frag.SizeBytes()) {
			return moved, nil
		}
		clone, err := frag.CloneTo(t.nodes[dst].dfs)
		if err != nil {
			return moved, fmt.Errorf("es2: rebalancing: %w", err)
		}
		layoutIdx := 0
		if !isPrimary {
			layoutIdx = 1
		}
		if err := t.Rel.Layouts()[layoutIdx].Replace(frag, clone); err != nil {
			clone.Free()
			return moved, err
		}
		frag.Free()
		if isPrimary {
			p.primary, p.primaryNode = clone, dst
		} else {
			p.replica, p.replicaNode = clone, dst
		}
		moved++
	}
}

// mostLoaded and leastLoaded pick live nodes by stored bytes.
func (t *Table) mostLoaded() int {
	best, bytes := -1, int64(-1)
	for i, n := range t.nodes {
		if !n.failed && n.dfs.Used() > bytes {
			best, bytes = i, n.dfs.Used()
		}
	}
	return best
}

func (t *Table) leastLoaded() int {
	best := -1
	var bytes int64
	for i, n := range t.nodes {
		if !n.failed && (best < 0 || n.dfs.Used() < bytes) {
			best, bytes = i, n.dfs.Used()
		}
	}
	return best
}

// victimOn finds a fragment on src movable to dst without co-locating a
// partition's primary and replica.
func (t *Table) victimOn(src, dst int) (*partition, bool) {
	for _, p := range t.parts {
		if p.primaryNode == src && p.replicaNode != dst {
			return p, true
		}
		if p.replicaNode == src && p.primaryNode != dst && p.replica != p.primary {
			return p, false
		}
	}
	return nil, false
}
