package figures

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"hybridstore/internal/compress"
	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/perfmodel"
)

// The compression panel measures compressed-domain execution (paper
// Section IV-B, "compression as a storage-engine dimension"): the same
// SUM(x) WHERE predicate runs over 64 frozen fragments in four data
// shapes whose achieved ratios differ — all-distinct values that stay
// raw, a low-cardinality dictionary column, a sorted frame-of-reference
// column and a runny RLE column — on the host and on the device, each
// both uncompressed and in the compressed format. The device legs show
// the bus effect the tentpole is after: a compressed scan ships only
// the encoded image, and a warm rescan through the fragment cache ships
// nothing at all.

// CompressionShape is one data shape of the sweep, with both platforms'
// uncompressed and compressed legs.
type CompressionShape struct {
	// Shape names the generator; Encoding is what Compress actually
	// picked for its fragments.
	Shape, Encoding string
	// RawBytes is the dense column size; CompressedBytes the summed
	// marshaled images; Ratio their quotient.
	RawBytes, CompressedBytes int64
	Ratio                     float64
	// HostNs and HostCompNs are the simulated host scan times over the
	// dense and the compressed fragments.
	HostNs, HostCompNs float64
	// DeviceH2DBytes / DeviceNs are the cold uncached device scan over
	// dense fragments; DeviceCompH2DBytes / DeviceCompNs the cold scan
	// shipping compressed images instead.
	DeviceH2DBytes, DeviceCompH2DBytes int64
	DeviceNs, DeviceCompNs             float64
	// WarmCompH2DBytes is the bus traffic of rescanning the compressed
	// column once its images are cache-resident (zero when everything
	// hit), and WarmHits the cache hits that rescan scored.
	WarmCompH2DBytes, WarmHits int64
	// WarmCompNs is the simulated time of the warm compressed rescan.
	WarmCompNs float64
}

// CompressionSweep is the full panel.
type CompressionSweep struct {
	// Rows is the column size; FragmentRows the rows per frozen fragment.
	Rows, FragmentRows uint64
	// Fragments is the fragment count.
	Fragments int
	// Shapes holds one entry per data shape.
	Shapes []CompressionShape
}

// compressionValues generates the column for one shape. Values are
// float64; the shape controls which encoding Compress picks per
// fragment.
func compressionValues(shape string, rows, fragRows uint64) []float64 {
	vals := make([]float64, rows)
	switch shape {
	case "distinct":
		// Every value distinct: incompressible, fragments stay Raw.
		for i := range vals {
			vals[i] = 1 + float64(i)*1.0009
		}
	case "dict8":
		// Eight distinct prices: one byte of code per 8-byte value.
		prices := [8]float64{4.99, 9.99, 14.99, 19.99, 24.99, 29.99, 34.99, 39.99}
		for i := range vals {
			vals[i] = prices[(uint64(i)*2654435761)%8]
		}
	case "sorted-for":
		// Sorted within each fragment, stepping one ULP per row: the bit
		// patterns are a narrow integer range, so frame-of-reference packs
		// each element into two delta bytes.
		base := math.Float64bits(100.0)
		for i := uint64(0); i < rows; i++ {
			vals[i] = math.Float64frombits(base + i%fragRows)
		}
	case "runny-rle":
		// Runs of 512 identical values.
		for i := uint64(0); i < rows; i++ {
			vals[i] = 5 + float64((i/512)%64)
		}
	}
	return vals
}

// MeasureCompression executes the sweep for real. Every leg's answer is
// cross-checked against a host-side shadow accumulation.
func MeasureCompression(rows uint64, fragments int) (*CompressionSweep, error) {
	if fragments < 1 || rows%uint64(fragments) != 0 {
		return nil, fmt.Errorf("figures: rows %d not divisible into %d fragments", rows, fragments)
	}
	fragRows := rows / uint64(fragments)
	sweep := &CompressionSweep{Rows: rows, FragmentRows: fragRows, Fragments: fragments}
	host := perfmodel.DefaultHost()

	for _, shape := range []string{"distinct", "dict8", "sorted-for", "runny-rle"} {
		vals := compressionValues(shape, rows, fragRows)
		dense := make([]byte, rows*8)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			binary.LittleEndian.PutUint64(dense[i*8:], math.Float64bits(v))
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		// A half-range predicate: selective enough to filter, closed so the
		// device path admits it.
		p := exec.Between(lo, lo+(hi-lo)/2)
		var wantSum float64
		var wantN int64
		for _, v := range vals {
			if p.Match(v) {
				wantSum += v
				wantN++
			}
		}

		// Build matching dense and compressed piece lists: fragment i
		// covers rows [i*fragRows, (i+1)*fragRows).
		rawPieces := make([]exec.Piece, fragments)
		compPieces := make([]exec.Piece, fragments)
		row := CompressionShape{Shape: shape, RawBytes: int64(rows * 8)}
		for i := 0; i < fragments; i++ {
			begin := uint64(i) * fragRows
			rr := layout.RowRange{Begin: begin, End: begin + fragRows}
			vec := layout.ColVector{
				Data: dense, Base: int(begin * 8),
				Stride: 8, Size: 8, Len: int(fragRows),
			}
			rawPieces[i] = exec.Piece{Rows: rr, Vec: vec, FragID: uint64(i + 1), FragVersion: 1}
			cc, err := compress.Compress(dense[begin*8:(begin+fragRows)*8], int(fragRows), 8)
			if err != nil {
				return nil, fmt.Errorf("figures: compressing %s fragment %d: %w", shape, i, err)
			}
			if i == 0 {
				row.Encoding = cc.Encoding().String()
			}
			row.CompressedBytes += int64(cc.MarshaledBytes())
			compPieces[i] = exec.Piece{
				Rows: rr,
				Vec:  layout.ColVector{Stride: 8, Size: 8, Len: int(fragRows)},
				Comp: cc, FragID: uint64(i + 1), FragVersion: 1,
			}
		}
		row.Ratio = float64(row.RawBytes) / float64(row.CompressedBytes)

		check := func(leg string, sum float64, n int64) error {
			if n != wantN || math.Abs(sum-wantSum) > 1e-6*math.Max(1, math.Abs(wantSum)) {
				return fmt.Errorf("figures: compression %s %s: got (%v, %d), want (%v, %d)",
					shape, leg, sum, n, wantSum, wantN)
			}
			return nil
		}

		// Host legs: sequential scans with simulated-time charging.
		for _, leg := range []struct {
			name   string
			pieces []exec.Piece
			ns     *float64
		}{{"host", rawPieces, &row.HostNs}, {"host-comp", compPieces, &row.HostCompNs}} {
			clock := &perfmodel.Clock{}
			cfg := exec.Config{Policy: exec.SingleThreaded, Host: host, Clock: clock}
			sum, n, err := exec.SumFloat64Where(cfg, leg.pieces, p)
			if err != nil {
				return nil, err
			}
			if err := check(leg.name, sum, n); err != nil {
				return nil, err
			}
			*leg.ns = clock.ElapsedNs()
		}

		// Device leg, uncompressed: a cold uncached scan ships the dense
		// column over the bus every time.
		{
			clock := &perfmodel.Clock{}
			gpu := device.New(perfmodel.DefaultDevice(), clock)
			ds := exec.DeviceScan{GPU: gpu, Table: "compression"}
			sum, n, err := ds.SumFloat64Where(0, rawPieces, p)
			if err != nil {
				return nil, err
			}
			if err := check("device", sum, n); err != nil {
				return nil, err
			}
			row.DeviceH2DBytes = gpu.Stats().HostToDeviceBytes
			row.DeviceNs = clock.ElapsedNs()
		}

		// Device leg, compressed: the cold scan ships only the marshaled
		// images into the fragment cache; the warm rescan ships nothing.
		{
			clock := &perfmodel.Clock{}
			gpu := device.New(perfmodel.DefaultDevice(), clock)
			cache := device.NewFragCache(gpu)
			ds := exec.DeviceScan{GPU: gpu, Cache: cache, Table: "compression"}
			sum, n, err := ds.SumFloat64Where(0, compPieces, p)
			if err != nil {
				return nil, err
			}
			if err := check("device-comp", sum, n); err != nil {
				return nil, err
			}
			row.DeviceCompH2DBytes = gpu.Stats().HostToDeviceBytes
			row.DeviceCompNs = clock.ElapsedNs()

			h0 := cache.Stats().Hits
			sum, n, err = ds.SumFloat64Where(0, compPieces, p)
			if err != nil {
				return nil, err
			}
			if err := check("device-comp-warm", sum, n); err != nil {
				return nil, err
			}
			row.WarmCompH2DBytes = gpu.Stats().HostToDeviceBytes - row.DeviceCompH2DBytes
			row.WarmHits = cache.Stats().Hits - h0
			row.WarmCompNs = clock.ElapsedNs() - row.DeviceCompNs
		}

		sweep.Shapes = append(sweep.Shapes, row)
	}
	return sweep, nil
}

// Render formats the sweep as a fixed-width table.
func (s *CompressionSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compression panel: SUM(x) WHERE over %d rows in %d frozen fragments (%d rows each)\n",
		s.Rows, s.Fragments, s.FragmentRows)
	b.WriteString("comp legs execute in the compressed domain; device comp legs ship the encoded image over the bus\n")
	rows := [][]string{{"shape", "enc", "ratio", "host ns", "host comp ns",
		"dev h2d", "dev comp h2d", "dev ns", "dev comp ns", "warm h2d", "warm hits"}}
	for _, r := range s.Shapes {
		rows = append(rows, []string{
			r.Shape, r.Encoding,
			fmt.Sprintf("%.1fx", r.Ratio),
			fmt.Sprintf("%.0f", r.HostNs),
			fmt.Sprintf("%.0f", r.HostCompNs),
			fmt.Sprintf("%d", r.DeviceH2DBytes),
			fmt.Sprintf("%d", r.DeviceCompH2DBytes),
			fmt.Sprintf("%.0f", r.DeviceNs),
			fmt.Sprintf("%.0f", r.DeviceCompNs),
			fmt.Sprintf("%d", r.WarmCompH2DBytes),
			fmt.Sprintf("%d", r.WarmHits),
		})
	}
	renderTable(&b, rows)
	return b.String()
}

// CSV renders the sweep as comma-separated values, one row per shape.
func (s *CompressionSweep) CSV() string {
	var b strings.Builder
	b.WriteString("shape,encoding,raw_bytes,compressed_bytes,ratio," +
		"host_ns,host_comp_ns,device_h2d_bytes,device_comp_h2d_bytes," +
		"device_ns,device_comp_ns,warm_comp_h2d_bytes,warm_hits,warm_comp_ns\n")
	for _, r := range s.Shapes {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%g,%g,%g,%d,%d,%g,%g,%d,%d,%g\n",
			r.Shape, r.Encoding, r.RawBytes, r.CompressedBytes, r.Ratio,
			r.HostNs, r.HostCompNs, r.DeviceH2DBytes, r.DeviceCompH2DBytes,
			r.DeviceNs, r.DeviceCompNs, r.WarmCompH2DBytes, r.WarmHits, r.WarmCompNs)
	}
	return b.String()
}
