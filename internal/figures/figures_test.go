package figures

import (
	"strings"
	"testing"
)

func TestAllFourFindingsReproduce(t *testing.T) {
	f := Default().Evaluate()
	if !f.TinyInputsFavourSingle {
		t.Error("finding (i) failed: single-threaded should win on 150-record workloads")
	}
	if !f.RecordCentricFavoursNSM {
		t.Error("finding (ii) failed: NSM should win record-centric materialization")
	}
	if !f.AttrCentricFavoursDSM {
		t.Error("finding (iii) failed: DSM should win attribute-centric scans")
	}
	if !f.DeviceWinsWhenResident {
		t.Error("finding (iv) failed: resident device should dominate")
	}
	if !f.MorselAmortizesScheduling {
		t.Error("finding (v) failed: morsel-driven should beat blockwise on tiny inputs and hold the scan plateau")
	}
}

func TestPanel1Shape(t *testing.T) {
	p := Default().Panel1(DefaultSizes(1))
	if len(p.Series) != 6 || len(p.Series[0].Values) != 5 {
		t.Fatalf("panel 1 shape: %d series × %d points", len(p.Series), len(p.Series[0].Values))
	}
	// NSM beats DSM at every size, by several ×.
	row := p.find(RowSingle)
	col := p.find(ColSingle)
	for i := range p.Sizes {
		if row.Values[i] >= col.Values[i] {
			t.Errorf("size %d: row %.3f >= col %.3f ms", p.Sizes[i], row.Values[i], col.Values[i])
		}
		if col.Values[i]/row.Values[i] < 3 {
			t.Errorf("size %d: NSM advantage only %.1fx", p.Sizes[i], col.Values[i]/row.Values[i])
		}
	}
	// Thread management dominates a 150-record materialization.
	if p.find(RowSingle).Values[0] >= p.find(RowMulti).Values[0] {
		t.Error("multi-threading should lose on 150-record materialization")
	}
	// The resident pool sits between: cheaper than spawning threads,
	// costlier than staying single-threaded.
	if p.find(RowMorsel).Values[0] >= p.find(RowMulti).Values[0] {
		t.Error("morsel-driven should beat blockwise on 150-record materialization")
	}
	if p.find(RowMorsel).Values[0] <= p.find(RowSingle).Values[0] {
		t.Error("the pool wake should cost more than staying single-threaded")
	}
}

func TestPanel2Shape(t *testing.T) {
	p := Default().Panel2(DefaultSizes(2))
	if len(p.Series) != 6 || len(p.Series[0].Values) != 6 {
		t.Fatalf("panel 2 shape wrong")
	}
	// Single-threaded wins across the sweep (finding i).
	for i := range p.Sizes {
		if p.find(ColSingle).Values[i] >= p.find(ColMulti).Values[i] {
			t.Errorf("size %d: single %.2f >= multi %.2f µs", p.Sizes[i],
				p.find(ColSingle).Values[i], p.find(ColMulti).Values[i])
		}
		// Morsel-driven nearly closes the gap: single < morsel < multi.
		if p.find(ColMorsel).Values[i] >= p.find(ColMulti).Values[i] {
			t.Errorf("size %d: morsel %.2f >= multi %.2f µs", p.Sizes[i],
				p.find(ColMorsel).Values[i], p.find(ColMulti).Values[i])
		}
	}
}

func TestPanel3Shape(t *testing.T) {
	p := Default().Panel3(DefaultSizes(3))
	if len(p.Series) != 7 {
		t.Fatalf("panel 3 series = %d, want 7 (6 host + device)", len(p.Series))
	}
	last := len(p.Sizes) - 1
	colMulti := p.find(ColMulti).Values[last]
	rowMulti := p.find(RowMulti).Values[last]
	colSingle := p.find(ColSingle).Values[last]
	dev := p.find(ColDevice).Values[last]
	// Column beats row (finding iii).
	if colMulti <= rowMulti {
		t.Errorf("col multi %.0f <= row multi %.0f M rows/s", colMulti, rowMulti)
	}
	// Multi beats single at scale.
	if colMulti <= colSingle {
		t.Errorf("multi %.0f <= single %.0f M rows/s", colMulti, colSingle)
	}
	// The transfer-bound device does not dominate the multi-threaded host.
	if dev > 2*colMulti {
		t.Errorf("transfer-bound device %.0f dominates host %.0f", dev, colMulti)
	}
	// Host multi plateau lands near the paper's ~1500-2500M rows/s.
	if colMulti < 1200 || colMulti > 4000 {
		t.Errorf("host plateau = %.0fM rows/s, want ~2000M", colMulti)
	}
	// The morsel policy holds the blockwise plateau on full scans
	// (acceptance: no worse than 5% below it).
	colMorsel := p.find(ColMorsel).Values[last]
	if colMorsel < 0.95*colMulti {
		t.Errorf("morsel plateau %.0f < 95%% of blockwise %.0f M rows/s", colMorsel, colMulti)
	}
}

func TestPanel4Shape(t *testing.T) {
	p3 := Default().Panel3(DefaultSizes(3))
	p4 := Default().Panel4(DefaultSizes(4))
	last := len(p4.Sizes) - 1
	resident := p4.find(ColDeviceNoBus).Values[last]
	withBus := p3.find(ColDevice).Values[last]
	// Excluding the transfer lifts throughput to the ~10000M plateau.
	if resident < 7000 || resident > 13000 {
		t.Errorf("resident device = %.0fM rows/s, want ~10000M", resident)
	}
	if resident <= withBus {
		t.Error("excluding the transfer did not help")
	}
	// Crossover factor device/host ≈ 5x (paper: ~10000M vs ~2000M).
	host := p4.find(ColMulti).Values[last]
	if resident/host < 3 || resident/host > 10 {
		t.Errorf("device/host factor = %.1f, want ~5", resident/host)
	}
}

func TestPanelsDispatch(t *testing.T) {
	c := Default()
	all, err := c.Panels(0)
	if err != nil || len(all) != 4 {
		t.Fatalf("Panels(0) = %d, %v", len(all), err)
	}
	for i := 1; i <= 4; i++ {
		ps, err := c.Panels(i)
		if err != nil || len(ps) != 1 || ps[0].Number != i {
			t.Fatalf("Panels(%d) = %v, %v", i, ps, err)
		}
	}
	if _, err := c.Panels(9); err == nil {
		t.Fatal("Panels(9) accepted")
	}
}

func TestRenderAndCSV(t *testing.T) {
	p := Default().Panel3(DefaultSizes(3))
	out := p.Render()
	for _, want := range []string{"panel 3", "5M", "65M", ColDevice, "M rows/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	csv := p.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(p.Sizes) {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "records,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestVerifyRealExecution(t *testing.T) {
	report, err := Verify(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Checks) < 8 {
		t.Fatalf("checks = %d", len(report.Checks))
	}
	if !report.AllOK() {
		t.Fatalf("real execution mismatch:\n%s", report)
	}
	if !strings.Contains(report.String(), "ok") {
		t.Fatal("report rendering broken")
	}
}

func TestFindMissingSeries(t *testing.T) {
	p := Default().Panel1(DefaultSizes(1))
	if p.find("nope") != nil {
		t.Fatal("found a missing series")
	}
}

func TestRealScanPanelMeasures(t *testing.T) {
	p, err := RealScanPanel([]uint64{50_000, 100_000}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 || len(p.Series[0].Values) != 2 {
		t.Fatalf("panel shape: %+v", p)
	}
	for _, s := range p.Series {
		for i, v := range s.Values {
			if v <= 0 {
				t.Fatalf("%s point %d = %v", s.Label, i, v)
			}
		}
	}
	// The real cache effect: the dense column scan beats the strided
	// row-store scan on this machine. Race instrumentation distorts
	// relative memory-access costs, so the ordering is only asserted on
	// uninstrumented builds.
	if !raceEnabled {
		row, col := p.Series[0].Values[1], p.Series[1].Values[1]
		if col <= row {
			t.Fatalf("measured col %.0f <= row %.0f M rows/s", col, row)
		}
	}
}
