package figures

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/stats"
)

// The multidevice panel measures the cross-device scheduler: SELECT
// SUM(val), COUNT(*) WHERE val BETWEEN … fanned over a fleet of 1/2/4
// simulated cards plus the host morsel pool, swept over physical layout
// (thin DSM column versus an NSM record the column is packed out of) and
// selectivity. Fragments are value-clustered so zone maps prune the
// non-matching tail; the admitted fragments shard across the fleet by
// fragment-ID hash, every card's lane runs concurrently, and the shared
// clock advances by the slowest lane — which is where the device-count
// scaling comes from. The cold pass ships every admitted fragment; the
// warm pass replays the same scan against the per-card fragment caches
// and measures the steady state an HTAP mix would see.

// MultiDevicePoint is one (devices, layout, selectivity) cell.
type MultiDevicePoint struct {
	// Devices is the fleet size; Layout "col" (thin DSM column) or "row"
	// (column packed out of NSM records); Selectivity the achieved
	// matching fraction.
	Devices     int
	Layout      string
	Selectivity float64
	Matched     int64
	// ColdNs prices the first scan (transfers + kernels + host lane);
	// WarmNs the replay against populated caches.
	ColdNs, WarmNs float64
	// HostOnlyNs prices the same scan on the host operator alone
	// (single-device comparison baseline, morsel-driven).
	HostOnlyNs float64
	// ColdH2DBytes and WarmH2DBytes meter fleet bus traffic per pass.
	ColdH2DBytes, WarmH2DBytes int64
	// CacheHits and CacheMisses aggregate the per-card caches after the
	// warm pass.
	CacheHits, CacheMisses int64
	// WarmSpeedup is the 1-device warm time of the same (layout,
	// selectivity) cell divided by this cell's warm time.
	WarmSpeedup float64
}

// MultiDeviceSweep is the full panel.
type MultiDeviceSweep struct {
	// Rows is the column size; FragmentRows the rows per fragment.
	Rows, FragmentRows uint64
	// Fragments is the fragment count.
	Fragments int
	// Points holds one entry per (devices, layout, selectivity) cell.
	Points []MultiDevicePoint
}

// DefaultMultiDeviceCounts returns the swept fleet sizes.
func DefaultMultiDeviceCounts() []int { return []int{1, 2, 4} }

// DefaultMultiDeviceSelectivities returns the swept selectivities.
func DefaultMultiDeviceSelectivities() []float64 { return []float64{0.10, 0.50, 1.00} }

// multiDeviceRecordWidth is the NSM record width of the "row" layout:
// the scanned column is one of four 8-byte attributes.
const multiDeviceRecordWidth = 32

// MeasureMultiDevice executes the sweep for real. Every leg is
// cross-checked against a host shadow aggregation, and the fleet result
// must be bit-identical to a single-card DeviceScan over the same
// pieces.
func MeasureMultiDevice(rows uint64, fragments int, counts []int, sels []float64) (*MultiDeviceSweep, error) {
	if fragments < 1 || rows%uint64(fragments) != 0 {
		return nil, fmt.Errorf("figures: rows %d not divisible into %d fragments", rows, fragments)
	}
	fragRows := rows / uint64(fragments)
	sweep := &MultiDeviceSweep{Rows: rows, FragmentRows: fragRows, Fragments: fragments}
	host := perfmodel.DefaultHost()

	// Values are clustered: fragment i holds values in [i, i+1), so a
	// BETWEEN [0, s*fragments) predicate admits exactly the first
	// s*fragments fragments and the zone maps prune the rest.
	vals := make([]float64, rows)
	for i := uint64(0); i < rows; i++ {
		frag := i / fragRows
		vals[i] = float64(frag) + float64(i%fragRows)/float64(fragRows)
	}

	for _, lay := range []string{"col", "row"} {
		pieces := multiDevicePieces(vals, fragments, fragRows, lay)
		warm1 := make(map[float64]float64) // selectivity → 1-device warm ns
		for _, d := range counts {
			for _, s := range sels {
				admitted := int(s*float64(fragments) + 0.5)
				p := exec.Between(0.0, float64(admitted)-0.5/float64(fragRows))
				pt := MultiDevicePoint{Devices: d, Layout: lay}
				var wantSum float64
				for _, v := range vals {
					if p.Match(v) {
						wantSum += v
						pt.Matched++
					}
				}
				pt.Selectivity = float64(pt.Matched) / float64(rows)

				// Host-only reference: the morsel-driven fused operator.
				{
					clock := &perfmodel.Clock{}
					cfg := exec.Config{Policy: exec.MorselDriven, Host: host, Clock: clock}
					sum, n, err := exec.SumFloat64Where(cfg, pieces, p)
					if err != nil {
						return nil, fmt.Errorf("figures: multidevice host leg: %w", err)
					}
					if n != pt.Matched || math.Abs(sum-wantSum) > 1e-6*math.Max(1, math.Abs(wantSum)) {
						return nil, fmt.Errorf("figures: multidevice host leg: got (%v, %d), want (%v, %d)", sum, n, wantSum, pt.Matched)
					}
					pt.HostOnlyNs = clock.ElapsedNs()
				}

				// Single-card reference for the bit-identity cross-check.
				refClock := &perfmodel.Clock{}
				refGPU := device.New(perfmodel.DefaultDevice(), refClock)
				refScan := exec.DeviceScan{GPU: refGPU, Cache: device.NewFragCache(refGPU), Table: "multidev"}
				refSum, refN, err := refScan.SumFloat64Where(0, pieces, p)
				if err != nil {
					return nil, fmt.Errorf("figures: multidevice reference leg: %w", err)
				}

				// The fleet, cold then warm.
				shared := &perfmodel.Clock{}
				env := device.NewEnv(d, perfmodel.DefaultDevice(), shared)
				md := &exec.MultiDeviceScan{
					Env: env, Table: "multidev",
					Shards:   layout.NewShardMap(d, layout.ShardHash),
					Host:     exec.Config{Policy: exec.MorselDriven, Host: host, Clock: shared},
					HostLane: false,
				}
				for pass, target := range []*float64{&pt.ColdNs, &pt.WarmNs} {
					mark := shared.ElapsedNs()
					h2dMark := env.Stats().HostToDeviceBytes
					sum, n, err := md.SumFloat64Where(0, pieces, p)
					if err != nil {
						return nil, fmt.Errorf("figures: multidevice %d-card pass %d: %w", d, pass, err)
					}
					if sum != refSum || n != refN {
						return nil, fmt.Errorf("figures: multidevice %d-card pass %d: got (%v, %d), single-card (%v, %d)",
							d, pass, sum, n, refSum, refN)
					}
					*target = shared.ElapsedNs() - mark
					delta := env.Stats().HostToDeviceBytes - h2dMark
					if pass == 0 {
						pt.ColdH2DBytes = delta
					} else {
						pt.WarmH2DBytes = delta
					}
				}
				cs := env.CacheStats()
				pt.CacheHits, pt.CacheMisses = cs.Hits, cs.Misses
				if d == counts[0] {
					warm1[s] = pt.WarmNs
				}
				if base := warm1[s]; base > 0 && pt.WarmNs > 0 {
					pt.WarmSpeedup = base / pt.WarmNs
				}
				sweep.Points = append(sweep.Points, pt)
			}
		}
	}
	return sweep, nil
}

// multiDevicePieces builds zone-carrying pieces over the value column in
// the requested physical layout: "col" is a dense thin column, "row"
// embeds the column at offset 0 of a 32-byte NSM record (packed dense by
// the device path before shipping, scanned strided by the host).
func multiDevicePieces(vals []float64, fragments int, fragRows uint64, lay string) []exec.Piece {
	stride := 8
	if lay == "row" {
		stride = multiDeviceRecordWidth
	}
	dense := make([]byte, uint64(len(vals))*uint64(stride))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dense[i*stride:], math.Float64bits(v))
	}
	pieces := make([]exec.Piece, fragments)
	for i := 0; i < fragments; i++ {
		begin := uint64(i) * fragRows
		z := stats.NewZone(stats.Float64)
		for j := begin; j < begin+fragRows; j++ {
			z.ObserveFloat64(vals[j])
		}
		pieces[i] = exec.Piece{
			Rows: layout.RowRange{Begin: begin, End: begin + fragRows},
			Vec: layout.ColVector{
				Data: dense, Base: int(begin) * stride,
				Stride: stride, Size: 8, Len: int(fragRows),
			},
			Zone:   z,
			FragID: uint64(i + 1), FragVersion: 1,
		}
	}
	return pieces
}

// WarmScales reports whether, at full selectivity, every fleet size
// warmed up at least minSpeedup× faster than the single-device warm pass
// per additional pair of cards (2 cards ≥ minSpeedup, 4 cards ≥
// minSpeedup², …) in at least one layout.
func (s *MultiDeviceSweep) WarmScales(minSpeedup float64) bool {
	ok := false
	for _, pt := range s.Points {
		if pt.Selectivity < 0.99 || pt.Devices < 2 {
			continue
		}
		want := math.Pow(minSpeedup, math.Log2(float64(pt.Devices)))
		if pt.WarmSpeedup >= want {
			ok = true
		} else if pt.Layout == "col" {
			return false
		}
	}
	return ok
}

// Render formats the sweep as a fixed-width table.
func (s *MultiDeviceSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multidevice panel: SELECT SUM(val), COUNT(*) WHERE … over %d rows in %d fragments (%d rows each), hash-sharded across the fleet\n",
		s.Rows, s.Fragments, s.FragmentRows)
	b.WriteString("cold = first scan (transfers + kernels); warm = replay against per-card fragment caches; host = morsel-driven host operator\n")
	rows := [][]string{{"devices", "layout", "sel", "cold ns", "warm ns", "host ns",
		"cold h2d", "warm h2d", "hits/misses", "warm speedup"}}
	for _, p := range s.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			p.Layout,
			fmt.Sprintf("%.2f", p.Selectivity),
			fmt.Sprintf("%.0f", p.ColdNs),
			fmt.Sprintf("%.0f", p.WarmNs),
			fmt.Sprintf("%.0f", p.HostOnlyNs),
			fmt.Sprintf("%d", p.ColdH2DBytes),
			fmt.Sprintf("%d", p.WarmH2DBytes),
			fmt.Sprintf("%d/%d", p.CacheHits, p.CacheMisses),
			fmt.Sprintf("%.2f", p.WarmSpeedup),
		})
	}
	renderTable(&b, rows)
	fmt.Fprintf(&b, "warm throughput scales with device count (≥1.5x per doubling): %v\n", s.WarmScales(1.5))
	return b.String()
}

// CSV renders the sweep as comma-separated values, one row per point.
func (s *MultiDeviceSweep) CSV() string {
	var b strings.Builder
	b.WriteString("devices,layout,selectivity,matched,cold_ns,warm_ns,host_only_ns," +
		"cold_h2d_bytes,warm_h2d_bytes,cache_hits,cache_misses,warm_speedup\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d,%s,%g,%d,%g,%g,%g,%d,%d,%d,%d,%g\n",
			p.Devices, p.Layout, p.Selectivity, p.Matched,
			p.ColdNs, p.WarmNs, p.HostOnlyNs,
			p.ColdH2DBytes, p.WarmH2DBytes, p.CacheHits, p.CacheMisses, p.WarmSpeedup)
	}
	return b.String()
}
