package figures

import (
	"fmt"
	"time"

	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// RealScanPanel measures the panel-3 host series with actual wall-clock
// execution on this machine: the item table is materialized in both
// storage models at each size and the price column summed for real. Only
// the single-threaded series are portable measurements (multi-threading
// and the device depend on hardware this container does not have); the
// NSM-vs-DSM gap these series show is the physical cache effect behind
// the paper's finding (iii).
func RealScanPanel(sizes []uint64, repeats int) (Panel, error) {
	if repeats < 1 {
		repeats = 3
	}
	p := Panel{
		Number: 3,
		Title:  "sum all prices in items table (REAL wall-clock on this machine)",
		XLabel: "#records in item table",
		YLabel: "throughput (M rows/s, measured)",
		Sizes:  sizes,
	}
	row := Series{Label: RowSingle + " (measured)"}
	col := Series{Label: ColSingle + " (measured)"}
	for _, n := range sizes {
		rowNs, colNs, err := measureScan(n, repeats)
		if err != nil {
			return Panel{}, err
		}
		row.Values = append(row.Values, throughput(n, rowNs))
		col.Values = append(col.Values, throughput(n, colNs))
	}
	p.Series = append(p.Series, row, col)
	return p, nil
}

// measureScan builds both layouts at size n and times the scans.
func measureScan(n uint64, repeats int) (rowNs, colNs float64, err error) {
	host := mem.NewAllocator(mem.Host, 0)
	items := workload.ItemSchema()
	rowL, err := layout.Horizontal(host, "row", items, n, n, layout.NSM)
	if err != nil {
		return 0, 0, err
	}
	defer rowL.Free()
	colL, err := layout.Vertical(host, "col", items, singletonGroups(items.Arity()), n,
		func([]int) layout.Linearization { return layout.Direct })
	if err != nil {
		return 0, 0, err
	}
	defer colL.Free()
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		for _, l := range []*layout.Layout{rowL, colL} {
			for _, f := range l.Fragments() {
				vals := make([]schema.Value, 0, f.Arity())
				for _, c := range f.Cols() {
					vals = append(vals, rec[c])
				}
				if err := f.AppendTuplet(vals); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return 0, 0, err
	}

	want := workload.ExpectedItemPriceSum(n)
	time1 := func(l *layout.Layout) (float64, error) {
		pieces, err := exec.ColumnView(l, workload.ItemPriceCol, n)
		if err != nil {
			return 0, err
		}
		best := float64(0)
		for r := 0; r < repeats; r++ {
			start := time.Now()
			sum, err := exec.SumFloat64(exec.Single(), pieces)
			elapsed := float64(time.Since(start).Nanoseconds())
			if err != nil {
				return 0, err
			}
			if sum < want-1 || sum > want+1 {
				return 0, fmt.Errorf("figures: real scan mismatch: %v vs %v", sum, want)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, nil
	}
	if rowNs, err = time1(rowL); err != nil {
		return 0, 0, err
	}
	if colNs, err = time1(colL); err != nil {
		return 0, 0, err
	}
	return rowNs, colNs, nil
}
