package figures

import (
	"fmt"
	"math"
	"math/rand"

	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// VerifyReport records the real-execution cross-check: every Figure-2
// configuration is executed for real (at reduced scale on this machine)
// and its answer compared with the workload's closed forms.
type VerifyReport struct {
	// Rows is the scale the check ran at.
	Rows uint64
	// Checks lists each executed configuration and whether its answer
	// matched.
	Checks []VerifyCheck
}

// VerifyCheck is one executed configuration.
type VerifyCheck struct {
	Name string
	Got  float64
	Want float64
	OK   bool
}

// AllOK reports whether every check passed.
func (r VerifyReport) AllOK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the report.
func (r VerifyReport) String() string {
	out := fmt.Sprintf("real-execution verification at %d rows:\n", r.Rows)
	for _, c := range r.Checks {
		status := "ok"
		if !c.OK {
			status = "MISMATCH"
		}
		out += fmt.Sprintf("  %-55s got %.4f want %.4f  [%s]\n", c.Name, c.Got, c.Want, status)
	}
	return out
}

// Verify executes the Figure-2 queries for real over n item and customer
// records: row-store and column-store layouts, single- and multi-threaded
// host execution, and the software device's reduction kernel (resident
// and transfer-inclusive paths compute identically; timing differs only
// on the simulated clock). All answers are checked against closed forms.
func Verify(n uint64) (VerifyReport, error) {
	report := VerifyReport{Rows: n}
	host := mem.NewAllocator(mem.Host, 0)

	check := func(name string, got, want float64) {
		report.Checks = append(report.Checks, VerifyCheck{
			Name: name, Got: got, Want: want,
			OK: math.Abs(got-want) <= 1e-6*math.Max(1, math.Abs(want)),
		})
	}

	// Item table in both storage models.
	items := workload.ItemSchema()
	rowL, err := layout.Horizontal(host, "row", items, n, n, layout.NSM)
	if err != nil {
		return report, err
	}
	colL, err := layout.Vertical(host, "col", items, singletonGroups(items.Arity()), n,
		func([]int) layout.Linearization { return layout.Direct })
	if err != nil {
		return report, err
	}
	if err := workload.Generate(n, workload.Item, func(i uint64, rec schema.Record) error {
		for _, l := range []*layout.Layout{rowL, colL} {
			for _, f := range l.Fragments() {
				if !f.Rows().Contains(i) {
					continue
				}
				vals := make([]schema.Value, 0, f.Arity())
				for _, c := range f.Cols() {
					vals = append(vals, rec[c])
				}
				if err := f.AppendTuplet(vals); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return report, err
	}

	wantSum := workload.ExpectedItemPriceSum(n)
	for _, cfg := range []struct {
		name string
		l    *layout.Layout
		c    exec.Config
	}{
		{"sum all prices / " + RowSingle, rowL, exec.Single()},
		{"sum all prices / " + RowMulti, rowL, exec.MultiN(8)},
		{"sum all prices / " + RowMorsel, rowL, exec.Morsel()},
		{"sum all prices / " + ColSingle, colL, exec.Single()},
		{"sum all prices / " + ColMulti, colL, exec.MultiN(8)},
		{"sum all prices / " + ColMorsel, colL, exec.Morsel()},
	} {
		pieces, err := exec.ColumnView(cfg.l, workload.ItemPriceCol, n)
		if err != nil {
			return report, err
		}
		got, err := exec.SumFloat64(cfg.c, pieces)
		if err != nil {
			return report, err
		}
		check(cfg.name, got, wantSum)
	}

	// Device reduction over the price column (real kernel execution).
	gpu := device.New(perfmodel.DefaultDevice(), nil)
	pieces, err := exec.ColumnView(colL, workload.ItemPriceCol, n)
	if err != nil {
		return report, err
	}
	buf, err := gpu.Alloc(int(n) * PriceSize)
	if err != nil {
		return report, err
	}
	defer buf.Free()
	v := pieces[0].Vec
	if err := gpu.CopyToDevice(buf, 0, v.Data[v.Base:v.Base+v.Len*v.Size]); err != nil {
		return report, err
	}
	got, err := gpu.ReduceSumFloat64(device.Vec{Buf: buf, Stride: PriceSize, Size: PriceSize, Len: int(n)},
		device.DefaultReduceConfig())
	if err != nil {
		return report, err
	}
	check("sum all prices / "+ColDevice, got, wantSum)

	// Position-list queries (panels 1-2): 150 sorted positions.
	r := rand.New(rand.NewSource(42))
	positions := workload.PositionList(r, K, n)
	var wantK float64
	for _, p := range positions {
		wantK += workload.ItemPrice(p)
	}
	for _, cfg := range []struct {
		name string
		l    *layout.Layout
		c    exec.Config
	}{
		{"sum prices of 150 items / " + RowSingle, rowL, exec.Single()},
		{"sum prices of 150 items / " + ColMulti, colL, exec.MultiN(8)},
		{"sum prices of 150 items / " + ColMorsel, colL, exec.Morsel()},
	} {
		recs, err := exec.Materialize(cfg.c, cfg.l, positions)
		if err != nil {
			return report, err
		}
		var got float64
		for _, rec := range recs {
			got += rec[workload.ItemPriceCol].F
		}
		check(cfg.name, got, wantK)
	}

	// The full pipeline the paper measures *after*: a join producing the
	// sorted position list. An orders table references K distinct items;
	// the join's build positions feed the same materialization+sum.
	orders := schema.MustNew(schema.Int64Attr("o_id"), schema.Int64Attr("o_item_id"))
	ordL, err := layout.Horizontal(host, "orders", orders, K, K, layout.NSM)
	if err != nil {
		return report, err
	}
	var wantJoin float64
	for i, p := range positions {
		if err := ordL.Fragments()[0].AppendTuplet([]schema.Value{
			schema.IntValue(int64(i)), schema.IntValue(int64(p)),
		}); err != nil {
			return report, err
		}
		wantJoin += workload.ItemPrice(p)
	}
	buildKeys, err := exec.ColumnView(colL, workload.ItemIDCol, n)
	if err != nil {
		return report, err
	}
	probeKeys, err := exec.ColumnView(ordL, 1, K)
	if err != nil {
		return report, err
	}
	pairs, err := exec.HashJoin(exec.Single(), buildKeys, probeKeys)
	if err != nil {
		return report, err
	}
	joined, err := exec.Materialize(exec.Single(), colL, exec.BuildPositions(pairs))
	if err != nil {
		return report, err
	}
	var gotJoin float64
	for _, rec := range joined {
		gotJoin += rec[workload.ItemPriceCol].F
	}
	check("join→positions→materialize→sum pipeline", gotJoin, wantJoin)
	ordL.Free()

	// Customer materialization (panel 1): checksum over balances.
	customers := workload.CustomerSchema()
	custRows := n / 4
	if custRows < uint64(K) {
		custRows = uint64(K)
	}
	custL, err := layout.Horizontal(host, "row", customers, custRows, custRows, layout.NSM)
	if err != nil {
		return report, err
	}
	if err := workload.Generate(custRows, workload.Customer, func(i uint64, rec schema.Record) error {
		return custL.Fragments()[0].AppendTuplet(rec)
	}); err != nil {
		return report, err
	}
	cpos := workload.PositionList(r, K, custRows)
	recs, err := exec.Materialize(exec.Single(), custL, cpos)
	if err != nil {
		return report, err
	}
	var gotBal, wantBal float64
	for i, p := range cpos {
		gotBal += recs[i][workload.CustomerBalanceCol].F
		wantBal += workload.CustomerBalance(p)
	}
	check("materialize 150 customers / "+RowSingle, gotBal, wantBal)

	rowL.Free()
	colL.Free()
	custL.Free()
	return report, nil
}

// singletonGroups returns [[0],[1],...,[arity-1]].
func singletonGroups(arity int) [][]int {
	out := make([][]int, arity)
	for i := range out {
		out[i] = []int{i}
	}
	return out
}
