package figures

import (
	"fmt"
	"strings"
	"testing"

	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/workload"
)

// sweepRows/sweepFrags is the test geometry: 64 fragments so a 1%
// predicate prunes all but one, and a row count every default
// selectivity divides exactly.
const (
	sweepRows  = 160_000
	sweepFrags = 64
)

// TestSelectivitySweepPrunes is the acceptance check for the sweep: at
// 1% selectivity over frozen fragments the pruned fused scan must beat
// the unpruned generic scan by >= 5x wall-clock on both storage models,
// and the device series must move a fraction of the unpruned bus bytes.
// Every point's answer is already cross-checked against the closed form
// inside MeasureSelectivity, so a successful return is the exactness
// proof; the wall-clock ordering is only asserted on uninstrumented
// builds (the race detector distorts relative memory-access costs).
func TestSelectivitySweepPrunes(t *testing.T) {
	before := obs.TakeSnapshot()
	s, err := MeasureSelectivity(sweepRows, sweepFrags, DefaultSelectivities(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Host) != 6 {
		t.Fatalf("host series = %d, want 6", len(s.Host))
	}
	onePct := -1
	for i, sel := range s.Selectivities {
		if sel == 0.01 {
			onePct = i
		}
	}
	if onePct < 0 {
		t.Fatal("sweep lost the 1% point")
	}

	// Device: at 1% only the fragments overlapping the first 1% of the
	// monotone domain survive — 1 of 64 — so the bus traffic collapses.
	pruned, unpruned := s.Device.PrunedH2DBytes[onePct], s.Device.UnprunedH2DBytes[onePct]
	if unpruned != int64(sweepRows*8) {
		t.Errorf("unpruned transfer = %d bytes, want %d", unpruned, sweepRows*8)
	}
	if pruned >= unpruned/8 {
		t.Errorf("pruned transfer = %d bytes, want < 1/8 of %d", pruned, unpruned)
	}
	if s.Device.PrunedKernels[onePct] >= s.Device.UnprunedKernels[onePct] {
		t.Errorf("pruned kernels = %d, unpruned = %d", s.Device.PrunedKernels[onePct], s.Device.UnprunedKernels[onePct])
	}
	// At 100% nothing can be pruned: identical traffic.
	last := len(s.Selectivities) - 1
	if s.Selectivities[last] == 1.0 && s.Device.PrunedH2DBytes[last] != s.Device.UnprunedH2DBytes[last] {
		t.Errorf("full-range scan pruned bus traffic: %d vs %d",
			s.Device.PrunedH2DBytes[last], s.Device.UnprunedH2DBytes[last])
	}

	// The sweep's pruning decisions land in the process-wide counters.
	after := obs.TakeSnapshot()
	if after.Counter("exec.zonemap.pruned") <= before.Counter("exec.zonemap.pruned") {
		t.Error("exec.zonemap.pruned did not advance over the sweep")
	}

	if raceEnabled {
		t.Log("race detector on; skipping wall-clock assertions")
		return
	}
	for _, h := range s.Host {
		if sp := h.Speedup[onePct]; sp < 5 {
			t.Errorf("%s: 1%% selectivity speedup %.1fx, want >= 5x (pruned %.0fns generic %.0fns)",
				h.Label, sp, h.PrunedNs[onePct], h.GenericNs[onePct])
		}
	}
}

// TestSelectivitySweepRendering pins the report formats.
func TestSelectivitySweepRendering(t *testing.T) {
	s, err := MeasureSelectivity(16_000, 8, []float64{0.01, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Render()
	for _, want := range []string{"selectivity panel", "1.00%", "100.00%", RowSingle, ColMorsel, "device transfer profile"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "selectivity,series,pruned_ns") {
		t.Errorf("CSV header wrong: %q", csv[:min(len(csv), 60)])
	}
}

// TestSelectivityGeometryValidation covers the error paths.
func TestSelectivityGeometryValidation(t *testing.T) {
	if _, err := MeasureSelectivity(1000, 64, nil, 1); err == nil {
		t.Fatal("accepted rows not divisible by fragments")
	}
	if _, _, err := buildSelectivityLayouts(100, 0); err == nil {
		t.Fatal("accepted zero fragments")
	}
}

// BenchmarkSelectivitySweep times the three strategies at each default
// selectivity over the frozen column store; `go test -bench
// SelectivitySweep ./internal/figures` regenerates the panel's raw
// series.
func BenchmarkSelectivitySweep(b *testing.B) {
	_, colL, err := buildSelectivityLayouts(sweepRows, sweepFrags)
	if err != nil {
		b.Fatal(err)
	}
	defer colL.Free()
	pieces, err := exec.ColumnView(colL, workload.ItemPriceCol, sweepRows)
	if err != nil {
		b.Fatal(err)
	}
	stripped := stripZones(pieces)
	for _, sel := range DefaultSelectivities() {
		cut := sel * float64(sweepRows)
		p := exec.Lt(cut)
		b.Run(fmt.Sprintf("pruned/sel=%g", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exec.SumFloat64Where(exec.Single(), pieces, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fused/sel=%g", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exec.SumFloat64Where(exec.Single(), stripped, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("generic/sel=%g", sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.CountFloat64(exec.Single(), stripped, p.Match); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
