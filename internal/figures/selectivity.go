package figures

import (
	"fmt"
	"math"
	"strings"
	"time"

	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// The selectivity sweep extends Figure 2 with the data-skipping panel:
// the filtered aggregate SUM(price) WHERE price < cut is executed for
// real at selectivities from 0.01% to 100% over a table whose price
// column is monotone, so every fragment carries a narrow sealed zone and
// a range predicate prunes a prefix fraction of the fragments exactly.
// Three execution strategies are timed per host configuration:
//
//	Pruned  — the fused predicate operator consulting fragment zone maps
//	          (the path this repo's engines use).
//	Fused   — the same specialized operator with the zones stripped:
//	          isolates the kernel-specialization win from the skipping win.
//	Generic — the pre-existing closure-predicate scan over all fragments,
//	          the baseline an engine without the predicate API pays.
//
// The device series transfers and launches kernels only for surviving
// fragments, so pruning shows up as reduced bus traffic rather than
// host cycles.

// DefaultSelectivities is the sweep's x-axis: match fractions from one
// in ten thousand to the full table.
func DefaultSelectivities() []float64 {
	return []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}
}

// SelectivitySeries is one host configuration measured across the sweep.
// All times are best-of-repeats wall-clock nanoseconds on this machine.
type SelectivitySeries struct {
	// Label names the storage model and threading policy.
	Label string
	// PrunedNs times the fused operator with zone-map pruning.
	PrunedNs []float64
	// FusedNs times the fused operator with zones stripped (no skipping).
	FusedNs []float64
	// GenericNs times the closure-predicate scan (no zones, no fusion).
	GenericNs []float64
	// Speedup is GenericNs / PrunedNs per point.
	Speedup []float64
}

// DeviceSelectivity is the device-resident series: pruning decides which
// fragments are transferred and reduced at all.
type DeviceSelectivity struct {
	// Label names the series.
	Label string
	// PrunedH2DBytes and UnprunedH2DBytes are the host-to-device bytes
	// moved with and without zone-map pruning.
	PrunedH2DBytes, UnprunedH2DBytes []int64
	// PrunedKernels and UnprunedKernels count kernel launches.
	PrunedKernels, UnprunedKernels []int64
	// PrunedNs and UnprunedNs are simulated device times (transfer +
	// kernels) from the calibrated model.
	PrunedNs, UnprunedNs []float64
}

// SelectivitySweep is the full panel: the sweep geometry, the six host
// series and the device series.
type SelectivitySweep struct {
	// Rows is the table size; FragmentRows the rows per fragment.
	Rows, FragmentRows uint64
	// Fragments is the fragment count per layout.
	Fragments int
	// Selectivities is the x-axis (match fraction per predicate).
	Selectivities []float64
	// Host holds the six measured host series.
	Host []SelectivitySeries
	// Device holds the transfer-centric device series.
	Device DeviceSelectivity
}

// selPrice is the monotone price: price(i) = i. Each fragment's sealed
// zone is then the exact row range, so Lt(cut) admits precisely the
// prefix of fragments overlapping [0, cut).
func selPrice(i uint64) float64 { return float64(i) }

// selExpected returns the exact count and sum for price < cut.
func selExpected(rows uint64, cut float64) (int64, float64) {
	m := uint64(math.Ceil(cut))
	if m > rows {
		m = rows
	}
	return int64(m), float64(m) * (float64(m) - 1) / 2
}

// buildSelectivityLayouts materializes the item table twice — an NSM
// row store and a price-only DSM column store, both chunked into the
// given fragment count — with the monotone price, and seals every
// fragment's zone as a freeze point would.
func buildSelectivityLayouts(rows uint64, fragments int) (rowL, colL *layout.Layout, err error) {
	if fragments < 1 || rows%uint64(fragments) != 0 {
		return nil, nil, fmt.Errorf("figures: rows %d not divisible into %d fragments", rows, fragments)
	}
	chunk := rows / uint64(fragments)
	host := mem.NewAllocator(mem.Host, 0)
	items := workload.ItemSchema()
	rowL, err = layout.Horizontal(host, "sel-row", items, rows, chunk, layout.NSM)
	if err != nil {
		return nil, nil, err
	}
	colL = layout.NewLayout("sel-col", items)
	for begin := uint64(0); begin < rows; begin += chunk {
		f, err := layout.NewFragment(host, items, []int{workload.ItemPriceCol},
			layout.RowRange{Begin: begin, End: begin + chunk}, layout.Direct)
		if err == nil {
			err = colL.Add(f)
		}
		if err != nil {
			rowL.Free()
			colL.Free()
			return nil, nil, err
		}
	}
	rowFrags, colFrags := rowL.Fragments(), colL.Fragments()
	for i := uint64(0); i < rows; i++ {
		rec := workload.Item(i)
		rec[workload.ItemPriceCol] = schema.FloatValue(selPrice(i))
		fi := i / chunk
		if err := rowFrags[fi].AppendTuplet(rec); err == nil {
			err = colFrags[fi].AppendTuplet([]schema.Value{rec[workload.ItemPriceCol]})
		}
		if err != nil {
			rowL.Free()
			colL.Free()
			return nil, nil, err
		}
	}
	for _, l := range []*layout.Layout{rowL, colL} {
		for _, f := range l.Fragments() {
			f.SealStats()
		}
	}
	return rowL, colL, nil
}

// stripZones copies the pieces without their zone maps: the same data,
// no skipping possible.
func stripZones(pieces []exec.Piece) []exec.Piece {
	out := make([]exec.Piece, len(pieces))
	for i, p := range pieces {
		p.Zone = nil
		out[i] = p
	}
	return out
}

// bestOf runs fn repeats times and returns the fastest wall-clock ns.
func bestOf(repeats int, fn func() error) (float64, error) {
	best := math.Inf(1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		err := fn()
		elapsed := float64(time.Since(start).Nanoseconds())
		if err != nil {
			return 0, err
		}
		if elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// MeasureSelectivity executes the sweep for real at the given geometry.
// Every timed run's answer is cross-checked against the closed form.
func MeasureSelectivity(rows uint64, fragments int, selectivities []float64, repeats int) (*SelectivitySweep, error) {
	if repeats < 1 {
		repeats = 2
	}
	if len(selectivities) == 0 {
		selectivities = DefaultSelectivities()
	}
	rowL, colL, err := buildSelectivityLayouts(rows, fragments)
	if err != nil {
		return nil, err
	}
	defer rowL.Free()
	defer colL.Free()

	rowPieces, err := exec.ColumnView(rowL, workload.ItemPriceCol, rows)
	if err != nil {
		return nil, err
	}
	colPieces, err := exec.ColumnView(colL, workload.ItemPriceCol, rows)
	if err != nil {
		return nil, err
	}

	sweep := &SelectivitySweep{
		Rows:          rows,
		FragmentRows:  rows / uint64(fragments),
		Fragments:     fragments,
		Selectivities: selectivities,
	}
	threads := perfmodel.DefaultHost().Threads
	hostConfigs := []struct {
		label  string
		pieces []exec.Piece
		cfg    exec.Config
	}{
		{RowSingle, rowPieces, exec.Single()},
		{RowMulti, rowPieces, exec.MultiN(threads)},
		{RowMorsel, rowPieces, exec.Morsel()},
		{ColSingle, colPieces, exec.Single()},
		{ColMulti, colPieces, exec.MultiN(threads)},
		{ColMorsel, colPieces, exec.Morsel()},
	}
	for _, hc := range hostConfigs {
		s := SelectivitySeries{Label: hc.label}
		stripped := stripZones(hc.pieces)
		for _, sel := range selectivities {
			cut := sel * float64(rows)
			p := exec.Lt(cut)
			wantN, wantSum := selExpected(rows, cut)
			check := func(sum float64, n int64) error {
				if n != wantN || math.Abs(sum-wantSum) > 1e-6*math.Max(1, wantSum) {
					return fmt.Errorf("figures: selectivity %g on %s: got (%v, %d), want (%v, %d)",
						sel, hc.label, sum, n, wantSum, wantN)
				}
				return nil
			}
			pruned, err := bestOf(repeats, func() error {
				sum, n, err := exec.SumFloat64Where(hc.cfg, hc.pieces, p)
				if err != nil {
					return err
				}
				return check(sum, n)
			})
			if err != nil {
				return nil, err
			}
			fused, err := bestOf(repeats, func() error {
				sum, n, err := exec.SumFloat64Where(hc.cfg, stripped, p)
				if err != nil {
					return err
				}
				return check(sum, n)
			})
			if err != nil {
				return nil, err
			}
			generic, err := bestOf(repeats, func() error {
				n, err := exec.CountFloat64(hc.cfg, stripped, p.Match)
				if err != nil {
					return err
				}
				if n != wantN {
					return fmt.Errorf("figures: generic count at %g on %s: got %d, want %d", sel, hc.label, n, wantN)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			s.PrunedNs = append(s.PrunedNs, pruned)
			s.FusedNs = append(s.FusedNs, fused)
			s.GenericNs = append(s.GenericNs, generic)
			s.Speedup = append(s.Speedup, generic/pruned)
		}
		sweep.Host = append(sweep.Host, s)
	}

	dev, err := measureDeviceSelectivity(colPieces, rows, selectivities)
	if err != nil {
		return nil, err
	}
	sweep.Device = dev
	return sweep, nil
}

// measureDeviceSelectivity runs the column-store sweep on the simulated
// device: the unpruned run ships every fragment over the bus; the pruned
// run consults the zones first and only transfers survivors.
func measureDeviceSelectivity(pieces []exec.Piece, rows uint64, selectivities []float64) (DeviceSelectivity, error) {
	d := DeviceSelectivity{Label: ColDevice}
	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	run := func(p exec.Pred[float64], prune bool) (float64, int64, error) {
		lo, hi, ok := exec.ClosedFloat64(p)
		var sum float64
		var n int64
		for _, pc := range pieces {
			bytes := int64(pc.Vec.Len) * int64(pc.Vec.Size)
			if prune {
				admitted := exec.ZoneAdmitsFloat64(pc.Zone, p)
				exec.NoteZoneDecision(admitted, bytes)
				if !admitted {
					continue
				}
			}
			if !ok || pc.Vec.Len == 0 {
				continue
			}
			src := pc.Vec.Data[pc.Vec.Base : pc.Vec.Base+pc.Vec.Len*pc.Vec.Stride]
			buf, err := gpu.Alloc(len(src))
			if err != nil {
				return 0, 0, err
			}
			err = gpu.CopyToDevice(buf, 0, src)
			if err == nil {
				cfg := device.DefaultReduceConfig()
				if pc.Vec.Len < cfg.Blocks*2 {
					cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
				}
				var part float64
				var cnt int64
				part, cnt, err = gpu.ReduceSumFloat64Where(
					device.Vec{Buf: buf, Stride: pc.Vec.Stride, Size: pc.Vec.Size, Len: pc.Vec.Len}, lo, hi, cfg)
				sum += part
				n += cnt
			}
			buf.Free()
			if err != nil {
				return 0, 0, err
			}
		}
		return sum, n, nil
	}
	for _, sel := range selectivities {
		cut := sel * float64(rows)
		p := exec.Lt(cut)
		wantN, wantSum := selExpected(rows, cut)
		for _, prune := range []bool{false, true} {
			before := gpu.Stats()
			startNs := clock.ElapsedNs()
			sum, n, err := run(p, prune)
			if err != nil {
				return d, err
			}
			if n != wantN || math.Abs(sum-wantSum) > 1e-6*math.Max(1, wantSum) {
				return d, fmt.Errorf("figures: device selectivity %g (prune=%v): got (%v, %d), want (%v, %d)",
					sel, prune, sum, n, wantSum, wantN)
			}
			after := gpu.Stats()
			ns := clock.ElapsedNs() - startNs
			if prune {
				d.PrunedH2DBytes = append(d.PrunedH2DBytes, after.HostToDeviceBytes-before.HostToDeviceBytes)
				d.PrunedKernels = append(d.PrunedKernels, after.KernelLaunches-before.KernelLaunches)
				d.PrunedNs = append(d.PrunedNs, ns)
			} else {
				d.UnprunedH2DBytes = append(d.UnprunedH2DBytes, after.HostToDeviceBytes-before.HostToDeviceBytes)
				d.UnprunedKernels = append(d.UnprunedKernels, after.KernelLaunches-before.KernelLaunches)
				d.UnprunedNs = append(d.UnprunedNs, ns)
			}
		}
	}
	return d, nil
}

// Render formats the sweep as fixed-width tables: host speedups first,
// then the device transfer profile.
func (s *SelectivitySweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 / selectivity panel: SUM(price) WHERE price < cut, %d rows in %d fragments\n",
		s.Rows, s.Fragments)
	b.WriteString("host wall-clock (µs; pruned / fused-unpruned / generic, speedup = generic/pruned)\n")
	header := []string{"selectivity"}
	for _, h := range s.Host {
		header = append(header, h.Label)
	}
	rows := [][]string{header}
	for i, sel := range s.Selectivities {
		row := []string{fmt.Sprintf("%.2f%%", sel*100)}
		for _, h := range s.Host {
			row = append(row, fmt.Sprintf("%.0f / %.0f / %.0f (%.1fx)",
				h.PrunedNs[i]/1e3, h.FusedNs[i]/1e3, h.GenericNs[i]/1e3, h.Speedup[i]))
		}
		rows = append(rows, row)
	}
	renderTable(&b, rows)
	b.WriteString("\ndevice transfer profile (host-to-device bytes; pruned vs unpruned)\n")
	devRows := [][]string{{"selectivity", "pruned bytes", "unpruned bytes", "pruned kernels", "unpruned kernels", "sim speedup"}}
	for i, sel := range s.Selectivities {
		devRows = append(devRows, []string{
			fmt.Sprintf("%.2f%%", sel*100),
			fmt.Sprintf("%d", s.Device.PrunedH2DBytes[i]),
			fmt.Sprintf("%d", s.Device.UnprunedH2DBytes[i]),
			fmt.Sprintf("%d", s.Device.PrunedKernels[i]),
			fmt.Sprintf("%d", s.Device.UnprunedKernels[i]),
			fmt.Sprintf("%.1fx", s.Device.UnprunedNs[i]/math.Max(s.Device.PrunedNs[i], 1)),
		})
	}
	renderTable(&b, devRows)
	return b.String()
}

// CSV renders the sweep as comma-separated values, one row per
// (selectivity, series) pair.
func (s *SelectivitySweep) CSV() string {
	var b strings.Builder
	b.WriteString("selectivity,series,pruned_ns,fused_ns,generic_ns,speedup\n")
	for i, sel := range s.Selectivities {
		for _, h := range s.Host {
			fmt.Fprintf(&b, "%g,%s,%g,%g,%g,%g\n", sel, strings.ReplaceAll(h.Label, ",", ";"),
				h.PrunedNs[i], h.FusedNs[i], h.GenericNs[i], h.Speedup[i])
		}
		fmt.Fprintf(&b, "%g,%s,%d,%d,%d,%g\n", sel, "device h2d bytes (pruned; unpruned; kernels pruned; speedup)",
			s.Device.PrunedH2DBytes[i], s.Device.UnprunedH2DBytes[i], s.Device.PrunedKernels[i],
			s.Device.UnprunedNs[i]/math.Max(s.Device.PrunedNs[i], 1))
	}
	return b.String()
}

// renderTable writes rows as a fixed-width table with a rule under the
// header.
func renderTable(b *strings.Builder, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			total := 0
			for i, w := range widths {
				if i > 0 {
					total += 2
				}
				total += w
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
}
