package figures

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"hybridstore/internal/compress"
	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/perfmodel"
)

// The fusion panel measures the fused predicate→group-by pipeline
// against the classical materialize-then-aggregate plan: SELECT key,
// SUM(val), COUNT(*) WHERE val BETWEEN … GROUP BY key, swept over group
// cardinality and selectivity. The fused operator reads both columns in
// one pass and accumulates per-group partials directly; the baseline
// first builds a selection vector, then gathers the matching (key, val)
// pairs out of the columns (priced as a record-centric materialization
// of 16-byte records spread over two fragments), then aggregates the
// materialized pair. On the device the fused plan is one kernel launch
// and one group-table download per fragment, while the baseline runs a
// filter kernel plus two gather kernels and ships every matching pair
// over the bus. Compressed legs aggregate the dictionary-coded value
// column in the compressed domain versus decode-then-baseline.

// FusionPoint is one (group cardinality, selectivity) cell of the sweep.
type FusionPoint struct {
	// Groups is the group-key cardinality; Selectivity the achieved
	// matching fraction (Matched rows of the total).
	Groups      int
	Selectivity float64
	Matched     int64
	// Host dense legs: the fused single-pass operator versus the
	// materialize-then-aggregate baseline, per threading policy.
	FusedSingleNs, FusedMultiNs, FusedMorselNs float64
	BaseSingleNs, BaseMultiNs, BaseMorselNs    float64
	// Host compressed-domain legs (single-threaded): fused aggregation
	// over the dictionary-coded value column versus decode-then-baseline.
	FusedCompNs, BaseCompNs float64
	// Device legs through the fragment cache (cold): the one-launch fused
	// group kernel versus filter + gather + host aggregation.
	DeviceFusedNs, DeviceBaseNs             float64
	DeviceFusedKernels, DeviceBaseKernels   int64
	DeviceFusedD2HBytes, DeviceBaseD2HBytes int64
	// Device compressed leg: the fused kernel decoding and aggregating in
	// one launch per fragment.
	DeviceCompFusedNs      float64
	DeviceCompFusedKernels int64
}

// FusionSweep is the full panel.
type FusionSweep struct {
	// Rows is the column size; FragmentRows the rows per fragment.
	Rows, FragmentRows uint64
	// Fragments is the fragment count.
	Fragments int
	// Points holds one entry per (cardinality, selectivity) cell.
	Points []FusionPoint
}

// DefaultFusionCards returns the swept group cardinalities.
func DefaultFusionCards() []int { return []int{8, 1024} }

// DefaultFusionSelectivities returns the swept selectivities. The
// low end stays at 5% where the one-pass plan still wins on the host:
// below roughly 2% the model (correctly) lets the baseline's cheaper
// single-column selection scan pull ahead under parallel gathers.
func DefaultFusionSelectivities() []float64 { return []float64{0.05, 0.10, 0.50, 1.00} }

// fusionDistinct is the value-domain cardinality: values are the
// integers 0..99, so BETWEEN [0, s*100-1] selects a fraction s and the
// column dictionary-encodes at 8x.
const fusionDistinct = 100

// MeasureFusion executes the sweep for real. Every leg's group table is
// cross-checked against a host-side shadow aggregation.
func MeasureFusion(rows uint64, fragments int, cards []int, sels []float64) (*FusionSweep, error) {
	if fragments < 1 || rows%uint64(fragments) != 0 {
		return nil, fmt.Errorf("figures: rows %d not divisible into %d fragments", rows, fragments)
	}
	fragRows := rows / uint64(fragments)
	sweep := &FusionSweep{Rows: rows, FragmentRows: fragRows, Fragments: fragments}
	host := perfmodel.DefaultHost()

	// The value column is shared across cardinalities: a hashed spread of
	// the integers 0..fusionDistinct-1, so every fragment spans the full
	// value range (no zone pruning — this panel isolates fusion).
	vals := make([]float64, rows)
	valsDense := make([]byte, rows*8)
	for i := uint64(0); i < rows; i++ {
		vals[i] = float64((i * 2654435761 >> 7) % fusionDistinct)
		binary.LittleEndian.PutUint64(valsDense[i*8:], math.Float64bits(vals[i]))
	}
	valPieces, compVals, err := fusionValPieces(valsDense, fragments, fragRows)
	if err != nil {
		return nil, err
	}

	for _, card := range cards {
		keys := make([]int64, rows)
		keysDense := make([]byte, rows*8)
		for i := uint64(0); i < rows; i++ {
			keys[i] = int64((i * 0x9E3779B97F4A7C15 >> 11) % uint64(card))
			binary.LittleEndian.PutUint64(keysDense[i*8:], uint64(keys[i]))
		}
		keyPieces := fusionPieces(keysDense, fragments, fragRows)

		for _, s := range sels {
			q := float64(int(s*fusionDistinct+0.5) - 1)
			p := exec.Between(0.0, q)
			pt := FusionPoint{Groups: card}
			want := make(map[int64]*exec.GroupResult)
			for i := uint64(0); i < rows; i++ {
				if p.Match(vals[i]) {
					pt.Matched++
					if g, ok := want[keys[i]]; ok {
						g.Sum += vals[i]
						g.Count++
					} else {
						want[keys[i]] = &exec.GroupResult{Key: keys[i], Sum: vals[i], Count: 1}
					}
				}
			}
			pt.Selectivity = float64(pt.Matched) / float64(rows)
			check := func(leg string, got []exec.GroupResult, err error) error {
				if err != nil {
					return fmt.Errorf("figures: fusion %d/%.2f %s: %w", card, s, leg, err)
				}
				if len(got) != len(want) {
					return fmt.Errorf("figures: fusion %d/%.2f %s: %d groups, want %d", card, s, leg, len(got), len(want))
				}
				for _, g := range got {
					w := want[g.Key]
					if w == nil || g.Count != w.Count ||
						math.Abs(g.Sum-w.Sum) > 1e-6*math.Max(1, math.Abs(w.Sum)) {
						return fmt.Errorf("figures: fusion %d/%.2f %s: group %d got (%v, %d)", card, s, leg, g.Key, g.Sum, g.Count)
					}
				}
				return nil
			}

			// Host dense legs, all three policies.
			for _, leg := range []struct {
				policy          exec.Policy
				fusedNs, baseNs *float64
			}{
				{exec.SingleThreaded, &pt.FusedSingleNs, &pt.BaseSingleNs},
				{exec.MultiThreaded, &pt.FusedMultiNs, &pt.BaseMultiNs},
				{exec.MorselDriven, &pt.FusedMorselNs, &pt.BaseMorselNs},
			} {
				clock := &perfmodel.Clock{}
				cfg := exec.Config{Policy: leg.policy, Host: host, Clock: clock}
				groups, err := exec.GroupSumFloat64Where(cfg, keyPieces, valPieces, p)
				if err := check("fused", groups, err); err != nil {
					return nil, err
				}
				*leg.fusedNs = clock.ElapsedNs()

				clock = &perfmodel.Clock{}
				cfg = exec.Config{Policy: leg.policy, Host: host, Clock: clock}
				groups, err = fusionHostBaseline(cfg, host, keysDense, valsDense, rows, valPieces, p)
				if err := check("baseline", groups, err); err != nil {
					return nil, err
				}
				*leg.baseNs = clock.ElapsedNs()
			}

			// Host compressed legs (single-threaded): fused in the
			// compressed domain versus decode-then-baseline.
			{
				clock := &perfmodel.Clock{}
				cfg := exec.Config{Policy: exec.SingleThreaded, Host: host, Clock: clock}
				groups, err := exec.GroupSumFloat64Where(cfg, keyPieces, compVals, p)
				if err := check("fused-comp", groups, err); err != nil {
					return nil, err
				}
				pt.FusedCompNs = clock.ElapsedNs()

				clock = &perfmodel.Clock{}
				cfg = exec.Config{Policy: exec.SingleThreaded, Host: host, Clock: clock}
				// Decode pass: rebuild the dense value image, then run the
				// dense baseline over it.
				decoded := make([]byte, 0, rows*8)
				for _, cp := range compVals {
					decoded = append(decoded, cp.Comp.Decompress()...)
				}
				clock.Advance(host.SeqScanNs(int64(len(decoded)), int64(rows)))
				groups, err = fusionHostBaseline(cfg, host, keysDense, decoded, rows, valPieces, p)
				if err := check("baseline-comp", groups, err); err != nil {
					return nil, err
				}
				pt.BaseCompNs = clock.ElapsedNs()
			}

			// Device fused leg: one kernel launch and one group-table
			// download per fragment, through the fragment cache (cold).
			{
				clock := &perfmodel.Clock{}
				gpu := device.New(perfmodel.DefaultDevice(), clock)
				cache := device.NewFragCache(gpu)
				ds := exec.DeviceScan{GPU: gpu, Cache: cache, Table: "fusion"}
				groups, err := ds.GroupSumFloat64Where(0, 1, keyPieces, valPieces, p)
				if err := check("device-fused", groups, err); err != nil {
					return nil, err
				}
				st := gpu.Stats()
				pt.DeviceFusedNs = clock.ElapsedNs()
				pt.DeviceFusedKernels = st.KernelLaunches
				pt.DeviceFusedD2HBytes = st.DeviceToHostBytes
			}

			// Device baseline leg: per fragment a filter kernel plus two
			// gather kernels materializing every matching pair over the bus,
			// aggregated on the host.
			{
				clock := &perfmodel.Clock{}
				gpu := device.New(perfmodel.DefaultDevice(), clock)
				groups, err := fusionDeviceBaseline(gpu, clock, host, keysDense, valsDense, vals, fragments, fragRows, p)
				if err := check("device-baseline", groups, err); err != nil {
					return nil, err
				}
				st := gpu.Stats()
				pt.DeviceBaseNs = clock.ElapsedNs()
				pt.DeviceBaseKernels = st.KernelLaunches
				pt.DeviceBaseD2HBytes = st.DeviceToHostBytes
			}

			// Device compressed leg: the fused kernel decodes and aggregates
			// the dictionary image in the same single launch per fragment.
			{
				clock := &perfmodel.Clock{}
				gpu := device.New(perfmodel.DefaultDevice(), clock)
				cache := device.NewFragCache(gpu)
				ds := exec.DeviceScan{GPU: gpu, Cache: cache, Table: "fusion-comp"}
				groups, err := ds.GroupSumFloat64Where(0, 1, keyPieces, compVals, p)
				if err := check("device-fused-comp", groups, err); err != nil {
					return nil, err
				}
				pt.DeviceCompFusedNs = clock.ElapsedNs()
				pt.DeviceCompFusedKernels = gpu.Stats().KernelLaunches
			}

			sweep.Points = append(sweep.Points, pt)
		}
	}
	return sweep, nil
}

// fusionPieces slices a dense 8-byte column into per-fragment pieces.
func fusionPieces(dense []byte, fragments int, fragRows uint64) []exec.Piece {
	pieces := make([]exec.Piece, fragments)
	for i := 0; i < fragments; i++ {
		begin := uint64(i) * fragRows
		pieces[i] = exec.Piece{
			Rows: layout.RowRange{Begin: begin, End: begin + fragRows},
			Vec: layout.ColVector{
				Data: dense, Base: int(begin * 8),
				Stride: 8, Size: 8, Len: int(fragRows),
			},
			FragID: uint64(i + 1), FragVersion: 1,
		}
	}
	return pieces
}

// fusionValPieces builds the dense and the compressed piece lists of the
// value column.
func fusionValPieces(dense []byte, fragments int, fragRows uint64) (raw, comp []exec.Piece, err error) {
	raw = fusionPieces(dense, fragments, fragRows)
	comp = make([]exec.Piece, fragments)
	for i := 0; i < fragments; i++ {
		begin := uint64(i) * fragRows
		cc, err := compress.Compress(dense[begin*8:(begin+fragRows)*8], int(fragRows), 8)
		if err != nil {
			return nil, nil, fmt.Errorf("figures: compressing fusion fragment %d: %w", i, err)
		}
		comp[i] = exec.Piece{
			Rows: layout.RowRange{Begin: begin, End: begin + fragRows},
			Vec:  layout.ColVector{Stride: 8, Size: 8, Len: int(fragRows)},
			Comp: cc, FragID: uint64(i + 1), FragVersion: 1,
		}
	}
	return raw, comp, nil
}

// fusionHostBaseline is the materialize-then-aggregate plan: a predicate
// selection over the value column, a gather of the matching (key, val)
// pairs priced as a record-centric materialization of 16-byte records
// spread over two fragments, and a grouped aggregation over the
// materialized pair.
func fusionHostBaseline(cfg exec.Config, host perfmodel.HostProfile, keysDense, valsDense []byte, rows uint64, valPieces []exec.Piece, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	sel, err := exec.SelectFloat64Pred(cfg, valPieces, p)
	if err != nil {
		return nil, err
	}
	defer sel.Release()
	pos := sel.Positions()
	matK := make([]byte, len(pos)*8)
	matV := make([]byte, len(pos)*8)
	for i, gp := range pos {
		copy(matK[i*8:], keysDense[gp*8:gp*8+8])
		copy(matV[i*8:], valsDense[gp*8:gp*8+8])
	}
	if cfg.Clock != nil && len(pos) > 0 {
		k, n := int64(len(pos)), int64(rows)
		switch cfg.Policy {
		case exec.MorselDriven:
			cfg.Clock.Advance(host.MaterializeMorselNs(k, n, 16, 2, host.Threads))
		case exec.MultiThreaded:
			cfg.Clock.Advance(host.MaterializeNs(k, n, 16, 2, host.Threads))
		default:
			cfg.Clock.Advance(host.MaterializeNs(k, n, 16, 2, 1))
		}
	}
	mk := fusionPieces(matK, 1, uint64(len(pos)))
	mv := fusionPieces(matV, 1, uint64(len(pos)))
	if len(pos) == 0 {
		return nil, nil
	}
	return exec.GroupSumFloat64(cfg, mk, mv)
}

// fusionDeviceBaseline is the device materialize-then-aggregate plan:
// both columns cross the bus, a filter kernel evaluates the predicate,
// two gather kernels materialize the matching keys and values back over
// the bus, and the host folds the pairs into the group table.
func fusionDeviceBaseline(gpu *device.GPU, clock *perfmodel.Clock, host perfmodel.HostProfile, keysDense, valsDense []byte, vals []float64, fragments int, fragRows uint64, p exec.Pred[float64]) ([]exec.GroupResult, error) {
	lo, hi, ok := exec.ClosedFloat64(p)
	if !ok {
		return nil, fmt.Errorf("figures: fusion baseline predicate %v not closed", p.Op)
	}
	table := make(map[int64]*exec.GroupResult)
	for f := 0; f < fragments; f++ {
		begin := uint64(f) * fragRows
		kbuf, err := gpu.Alloc(int(fragRows) * 8)
		if err != nil {
			return nil, err
		}
		vbuf, err := gpu.Alloc(int(fragRows) * 8)
		if err != nil {
			return nil, err
		}
		if err := gpu.CopyToDevice(kbuf, 0, keysDense[begin*8:(begin+fragRows)*8]); err != nil {
			return nil, err
		}
		if err := gpu.CopyToDevice(vbuf, 0, valsDense[begin*8:(begin+fragRows)*8]); err != nil {
			return nil, err
		}
		vvec := device.Vec{Buf: vbuf, Stride: 8, Size: 8, Len: int(fragRows)}
		// The filter kernel: evaluates the predicate over the fragment and
		// reports the match count the gathers are sized for.
		if _, _, err := gpu.ReduceSumFloat64Where(vvec, lo, hi, device.DefaultReduceConfig()); err != nil {
			return nil, err
		}
		var positions []int
		for j := uint64(0); j < fragRows; j++ {
			if p.Match(vals[begin+j]) {
				positions = append(positions, int(j))
			}
		}
		kb, err := gpu.Gather(kbuf, 8, positions)
		if err != nil {
			return nil, err
		}
		vb, err := gpu.Gather(vbuf, 8, positions)
		if err != nil {
			return nil, err
		}
		for i := range positions {
			key := int64(binary.LittleEndian.Uint64(kb[i*8:]))
			v := math.Float64frombits(binary.LittleEndian.Uint64(vb[i*8:]))
			if g, okg := table[key]; okg {
				g.Sum += v
				g.Count++
			} else {
				table[key] = &exec.GroupResult{Key: key, Sum: v, Count: 1}
			}
		}
		clock.Advance(host.SeqScanNs(int64(len(positions))*16, int64(len(positions))))
		kbuf.Free()
		vbuf.Free()
	}
	out := make([]exec.GroupResult, 0, len(table))
	for _, g := range table {
		out = append(out, *g)
	}
	return exec.MergeGroupResults(out), nil
}

// HostFusedWins reports whether the fused operator beat the baseline at
// every swept point under every threading policy.
func (s *FusionSweep) HostFusedWins() bool {
	for _, pt := range s.Points {
		if pt.FusedSingleNs >= pt.BaseSingleNs ||
			pt.FusedMultiNs >= pt.BaseMultiNs ||
			pt.FusedMorselNs >= pt.BaseMorselNs {
			return false
		}
	}
	return true
}

// DeviceFusedWins reports whether the one-launch device plan beat the
// materializing device baseline at every swept point at or below the
// given selectivity.
func (s *FusionSweep) DeviceFusedWins(maxSel float64) bool {
	for _, pt := range s.Points {
		if pt.Selectivity <= maxSel && pt.DeviceFusedNs >= pt.DeviceBaseNs {
			return false
		}
	}
	return true
}

// Render formats the sweep as a fixed-width table.
func (s *FusionSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fusion panel: SELECT key, SUM(val), COUNT(*) WHERE … GROUP BY key over %d rows in %d fragments (%d rows each)\n",
		s.Rows, s.Fragments, s.FragmentRows)
	b.WriteString("fused = one-pass predicate→group-by; base = selection vector + pair materialization + aggregation\n")
	rows := [][]string{{"groups", "sel", "fused 1T", "base 1T", "fused MT", "base MT",
		"fused MD", "base MD", "fused comp", "base comp",
		"dev fused", "dev base", "dev krn f/b", "dev d2h f/b", "dev comp"}}
	for _, p := range s.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Groups),
			fmt.Sprintf("%.2f", p.Selectivity),
			fmt.Sprintf("%.0f", p.FusedSingleNs),
			fmt.Sprintf("%.0f", p.BaseSingleNs),
			fmt.Sprintf("%.0f", p.FusedMultiNs),
			fmt.Sprintf("%.0f", p.BaseMultiNs),
			fmt.Sprintf("%.0f", p.FusedMorselNs),
			fmt.Sprintf("%.0f", p.BaseMorselNs),
			fmt.Sprintf("%.0f", p.FusedCompNs),
			fmt.Sprintf("%.0f", p.BaseCompNs),
			fmt.Sprintf("%.0f", p.DeviceFusedNs),
			fmt.Sprintf("%.0f", p.DeviceBaseNs),
			fmt.Sprintf("%d/%d", p.DeviceFusedKernels, p.DeviceBaseKernels),
			fmt.Sprintf("%d/%d", p.DeviceFusedD2HBytes, p.DeviceBaseD2HBytes),
			fmt.Sprintf("%.0f", p.DeviceCompFusedNs),
		})
	}
	renderTable(&b, rows)
	fmt.Fprintf(&b, "host fused wins (all policies, all points): %v\n", s.HostFusedWins())
	fmt.Fprintf(&b, "device fused wins at ≤10%% selectivity:      %v\n", s.DeviceFusedWins(0.10))
	return b.String()
}

// CSV renders the sweep as comma-separated values, one row per point.
func (s *FusionSweep) CSV() string {
	var b strings.Builder
	b.WriteString("groups,selectivity,matched," +
		"fused_single_ns,base_single_ns,fused_multi_ns,base_multi_ns," +
		"fused_morsel_ns,base_morsel_ns,fused_comp_ns,base_comp_ns," +
		"device_fused_ns,device_base_ns,device_fused_kernels,device_base_kernels," +
		"device_fused_d2h_bytes,device_base_d2h_bytes," +
		"device_comp_fused_ns,device_comp_fused_kernels\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%d,%g,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d,%d,%d,%d,%g,%d\n",
			p.Groups, p.Selectivity, p.Matched,
			p.FusedSingleNs, p.BaseSingleNs, p.FusedMultiNs, p.BaseMultiNs,
			p.FusedMorselNs, p.BaseMorselNs, p.FusedCompNs, p.BaseCompNs,
			p.DeviceFusedNs, p.DeviceBaseNs, p.DeviceFusedKernels, p.DeviceBaseKernels,
			p.DeviceFusedD2HBytes, p.DeviceBaseD2HBytes,
			p.DeviceCompFusedNs, p.DeviceCompFusedKernels)
	}
	return b.String()
}
