package figures

import (
	"strings"
	"testing"
)

// TestDeviceCacheSweep is the acceptance check for the devicecache
// panel: warm rounds cost zero H2D bytes, a write+rescan round re-ships
// exactly one fragment, and the uncached baseline pays the full column
// every round. Answers are cross-checked against the host shadow inside
// MeasureDeviceCache, so a successful return is the exactness proof.
func TestDeviceCacheSweep(t *testing.T) {
	const (
		rows  = 16_384
		frags = 16
		warm  = 3
		write = 2
	)
	s, err := MeasureDeviceCache(rows, frags, warm, write)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 1+warm+write {
		t.Fatalf("rounds = %d, want %d", len(s.Rounds), 1+warm+write)
	}
	colBytes := int64(rows) * 8
	fragBytes := colBytes / frags
	for _, r := range s.Rounds {
		if r.BaselineH2DBytes != colBytes {
			t.Errorf("round %d (%s): baseline shipped %d bytes, want the whole column %d",
				r.Round, r.Kind, r.BaselineH2DBytes, colBytes)
		}
		switch r.Kind {
		case "cold":
			if r.H2DBytes != colBytes || r.Misses != frags {
				t.Errorf("cold round: %d bytes / %d misses, want %d / %d", r.H2DBytes, r.Misses, colBytes, frags)
			}
		case "warm":
			if r.H2DBytes != 0 {
				t.Errorf("warm round %d shipped %d bytes, want 0", r.Round, r.H2DBytes)
			}
			if r.Hits != frags {
				t.Errorf("warm round %d: %d hits, want %d", r.Round, r.Hits, frags)
			}
		case "write+rescan":
			if r.H2DBytes != fragBytes {
				t.Errorf("write round %d re-shipped %d bytes, want exactly one fragment (%d)",
					r.Round, r.H2DBytes, fragBytes)
			}
			if r.Misses != 1 || r.Hits != frags-1 {
				t.Errorf("write round %d: %d misses / %d hits, want 1 / %d", r.Round, r.Misses, r.Hits, frags-1)
			}
		}
	}
	if s.TotalH2DBytes >= s.TotalBaselineH2DBytes {
		t.Errorf("cache saved nothing: %d vs baseline %d bytes", s.TotalH2DBytes, s.TotalBaselineH2DBytes)
	}
	for _, out := range []string{s.Render(), s.CSV()} {
		for _, want := range []string{"cold", "warm", "write+rescan"} {
			if !strings.Contains(out, want) {
				t.Errorf("rendered panel missing %q", want)
			}
		}
	}
}
