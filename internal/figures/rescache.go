package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"hybridstore/internal/core"
	"hybridstore/internal/engine"
	"hybridstore/internal/exec"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// The resultcache panel measures the version-stamped cross-request
// result cache on the serving path: twin engines — one with the cache,
// one without — execute an identical operation sequence, and every
// answer pair is compared bit for bit. Three legs span the reuse
// spectrum:
//
//   - read-heavy: pure repeats of a small dashboard cut set. The cache
//     answers from an O(#fragments) version-vector compare instead of a
//     column scan — this is the headline p50 speedup.
//   - mixed: periodic point writes with periodic merges. Writes make
//     hot chunks uncacheable, merges bump fragment versions, so cached
//     entries go stale and are re-published — the leg exercises
//     invalidation-by-version under a realistic HTAP rhythm.
//   - write-storm: a write lands before every query. Nothing is ever
//     validly reusable; the leg proves the cache never serves a stale
//     byte when the table churns as fast as it is read.
//
// Correctness is structural, not sampled: a single divergent bit in any
// leg fails the measurement, and the cache's own accounting must
// satisfy hits+misses == lookups with stale counted on every
// invalidation.

// ResultCacheLeg is one workload leg of the sweep.
type ResultCacheLeg struct {
	// Name is "read-heavy", "mixed" or "write-storm".
	Name string
	// Queries is the number of timed query pairs the leg executed.
	Queries int
	// CachedP50Ns and UncachedP50Ns are the median per-query latencies
	// of the cached and uncached engines.
	CachedP50Ns, UncachedP50Ns float64
	// Speedup is UncachedP50Ns / CachedP50Ns.
	Speedup float64
	// Cache accounting deltas over the leg (cached engine only).
	Lookups, Hits, Misses, Stale int64
	// BitIdentical reports that every cached answer equalled the
	// uncached answer bit for bit.
	BitIdentical bool
}

// ResultCacheSweep is the full panel.
type ResultCacheSweep struct {
	// Rows is the item-table size; ChunkRows the fragment granularity.
	Rows, ChunkRows uint64
	// CacheBytes is the cache capacity the cached engine ran with.
	CacheBytes int64
	Legs       []ResultCacheLeg
}

// MeasureResultCache executes the sweep for real. rows is the item
// table size; queriesPerLeg the number of timed query pairs per leg.
func MeasureResultCache(rows uint64, queriesPerLeg int) (*ResultCacheSweep, error) {
	const chunkRows = 4096
	const cacheBytes = 64 << 20
	if queriesPerLeg < 8 {
		queriesPerLeg = 8
	}
	sweep := &ResultCacheSweep{Rows: rows, ChunkRows: chunkRows, CacheBytes: cacheBytes}

	// Twin engines: identical data, one result cache between them.
	envC, envP := engine.NewEnv(), engine.NewEnv()
	engC := core.New(envC, core.Options{ChunkRows: chunkRows, ResultCacheBytes: cacheBytes})
	engP := core.New(envP, core.Options{ChunkRows: chunkRows})
	items := workload.ItemSchema()
	tcI, err := engC.Create("item", items)
	if err != nil {
		return nil, err
	}
	tc := tcI.(*core.Table)
	defer tc.Free()
	tpI, err := engP.Create("item", items)
	if err != nil {
		return nil, err
	}
	tp := tpI.(*core.Table)
	defer tp.Free()
	for i := uint64(0); i < rows; i++ {
		rec := workload.Item(i)
		if _, err := tc.Insert(rec); err != nil {
			return nil, err
		}
		if _, err := tp.Insert(rec); err != nil {
			return nil, err
		}
	}
	both := func(f func(t *core.Table) error) error {
		if err := f(tc); err != nil {
			return err
		}
		return f(tp)
	}
	if err := both(func(t *core.Table) error { return t.Merge() }); err != nil {
		return nil, err
	}

	// The dashboard cut set, inside the generator's price domain
	// [1, 101): repeats across queries are what the cache monetizes.
	preds := []exec.Pred[float64]{
		exec.Lt[float64](30),
		exec.Gt[float64](50),
		exec.Between[float64](10, 60),
		exec.Between[float64](42, 42), // normalizes to eq(42)
	}
	const keyCol = 1 // i_im_id, the grouping key

	// query runs pair q of a leg on both engines, times each side, and
	// verifies bit-identity. Every 4th query is the fused group-by.
	runLeg := func(name string, pre func(q int) error) (ResultCacheLeg, error) {
		leg := ResultCacheLeg{Name: name, BitIdentical: true}
		s0 := engC.ResultCache().Stats()
		cNs := make([]float64, 0, queriesPerLeg)
		pNs := make([]float64, 0, queriesPerLeg)
		for q := 0; q < queriesPerLeg; q++ {
			if pre != nil {
				if err := pre(q); err != nil {
					return leg, err
				}
			}
			p := preds[q%len(preds)]
			if q%4 == 3 {
				t0 := time.Now()
				gc, err := tc.GroupSumFloat64Where(keyCol, workload.ItemPriceCol, p)
				d0 := time.Since(t0)
				if err != nil {
					return leg, err
				}
				t1 := time.Now()
				gp, err := tp.GroupSumFloat64Where(keyCol, workload.ItemPriceCol, p)
				d1 := time.Since(t1)
				if err != nil {
					return leg, err
				}
				cNs = append(cNs, float64(d0.Nanoseconds()))
				pNs = append(pNs, float64(d1.Nanoseconds()))
				if len(gc) != len(gp) {
					leg.BitIdentical = false
				} else {
					for i := range gc {
						if gc[i].Key != gp[i].Key || gc[i].Count != gp[i].Count ||
							math.Float64bits(gc[i].Sum) != math.Float64bits(gp[i].Sum) {
							leg.BitIdentical = false
							break
						}
					}
				}
			} else {
				t0 := time.Now()
				sc, nc, err := tc.SumFloat64Where(workload.ItemPriceCol, p)
				d0 := time.Since(t0)
				if err != nil {
					return leg, err
				}
				t1 := time.Now()
				sp, np, err := tp.SumFloat64Where(workload.ItemPriceCol, p)
				d1 := time.Since(t1)
				if err != nil {
					return leg, err
				}
				cNs = append(cNs, float64(d0.Nanoseconds()))
				pNs = append(pNs, float64(d1.Nanoseconds()))
				if math.Float64bits(sc) != math.Float64bits(sp) || nc != np {
					leg.BitIdentical = false
				}
			}
			leg.Queries++
		}
		s1 := engC.ResultCache().Stats()
		leg.Lookups = s1.Lookups - s0.Lookups
		leg.Hits = s1.Hits - s0.Hits
		leg.Misses = s1.Misses - s0.Misses
		leg.Stale = s1.Stale - s0.Stale
		leg.CachedP50Ns = p50(cNs)
		leg.UncachedP50Ns = p50(pNs)
		leg.Speedup = leg.UncachedP50Ns / math.Max(leg.CachedP50Ns, 1)
		return leg, nil
	}

	// Leg 1 — read-heavy: pure repeats over a quiesced table.
	leg, err := runLeg("read-heavy", nil)
	if err != nil {
		return nil, err
	}
	sweep.Legs = append(sweep.Legs, leg)

	// Leg 2 — mixed: every 8th query a point write lands and is merged,
	// so the cut set repeats inside each cacheable window (hits) and
	// every merge bumps fragment versions under published entries
	// (stale). Both engines take identical writes so answers stay
	// comparable.
	wrow := uint64(0)
	leg, err = runLeg("mixed", func(q int) error {
		if q%8 != 0 {
			return nil
		}
		wrow = (wrow + 7919) % rows
		v := schema.FloatValue(float64(30 + q%40))
		return both(func(t *core.Table) error {
			if err := t.Update(wrow, workload.ItemPriceCol, v); err != nil {
				return err
			}
			return t.Merge()
		})
	})
	if err != nil {
		return nil, err
	}
	sweep.Legs = append(sweep.Legs, leg)

	// Leg 3 — write-storm: a write lands before every single query.
	leg, err = runLeg("write-storm", func(q int) error {
		wrow = (wrow + 104729) % rows
		v := schema.FloatValue(float64(1 + q%100))
		return both(func(t *core.Table) error {
			return t.Update(wrow, workload.ItemPriceCol, v)
		})
	})
	if err != nil {
		return nil, err
	}
	sweep.Legs = append(sweep.Legs, leg)
	return sweep, nil
}

// p50 is the median of xs (xs is consumed).
func p50(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// Render formats the sweep as a fixed-width table.
func (s *ResultCacheSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "resultcache panel: version-stamped result cache, %d item rows (%d-row chunks, %d B cache)\n",
		s.Rows, s.ChunkRows, s.CacheBytes)
	b.WriteString("twin engines run identical ops; every cached answer is bit-compared against uncached execution\n")
	rows := [][]string{{"leg", "queries", "cached p50", "uncached p50", "speedup", "hits", "misses", "stale", "bit-identical"}}
	for _, l := range s.Legs {
		rows = append(rows, []string{
			l.Name,
			fmt.Sprintf("%d", l.Queries),
			fmt.Sprintf("%.1fµs", l.CachedP50Ns/1e3),
			fmt.Sprintf("%.1fµs", l.UncachedP50Ns/1e3),
			fmt.Sprintf("%.1fx", l.Speedup),
			fmt.Sprintf("%d", l.Hits),
			fmt.Sprintf("%d", l.Misses),
			fmt.Sprintf("%d", l.Stale),
			fmt.Sprintf("%v", l.BitIdentical),
		})
	}
	renderTable(&b, rows)
	return b.String()
}

// CSV renders the sweep as comma-separated values, one row per leg —
// the resultcache_panel.csv artifact CI uploads.
func (s *ResultCacheSweep) CSV() string {
	var b strings.Builder
	b.WriteString("leg,queries,cached_p50_us,uncached_p50_us,speedup,lookups,hits,misses,stale,bit_identical\n")
	for _, l := range s.Legs {
		fmt.Fprintf(&b, "%s,%d,%.1f,%.1f,%.2f,%d,%d,%d,%d,%v\n",
			l.Name, l.Queries, l.CachedP50Ns/1e3, l.UncachedP50Ns/1e3, l.Speedup,
			l.Lookups, l.Hits, l.Misses, l.Stale, l.BitIdentical)
	}
	return b.String()
}
