//go:build !race

package figures

// raceEnabled reports whether the race detector instruments this build;
// wall-clock assertions are skipped under instrumentation because it
// distorts relative memory-access costs.
const raceEnabled = false
