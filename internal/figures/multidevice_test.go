package figures

import (
	"strings"
	"testing"
)

// TestMultiDeviceSweepScalesAndMeters runs a reduced sweep and pins the
// panel's claims: the fleet answers match the single-card and host
// references (checked inside MeasureMultiDevice), warm passes ship zero
// bus bytes, warm time scales with device count, and cold bus traffic is
// independent of fleet size (the same admitted fragments ship once
// wherever they land).
func TestMultiDeviceSweepScalesAndMeters(t *testing.T) {
	s, err := MeasureMultiDevice(65536, 16, []int{1, 2, 4}, []float64{0.50, 1.00})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2*3*2 {
		t.Fatalf("points = %d, want 12", len(s.Points))
	}
	byCell := map[[2]interface{}]map[int]MultiDevicePoint{}
	for _, p := range s.Points {
		if p.WarmH2DBytes != 0 {
			t.Fatalf("%d-card %s sel %.2f: warm pass shipped %d bytes, want 0", p.Devices, p.Layout, p.Selectivity, p.WarmH2DBytes)
		}
		if p.ColdH2DBytes <= 0 {
			t.Fatalf("%d-card %s sel %.2f: cold pass shipped nothing", p.Devices, p.Layout, p.Selectivity)
		}
		if p.CacheMisses != p.CacheHits {
			t.Fatalf("%d-card %s sel %.2f: hits %d != misses %d (one cold + one warm pass over the same fragments)",
				p.Devices, p.Layout, p.Selectivity, p.CacheHits, p.CacheMisses)
		}
		cell := [2]interface{}{p.Layout, p.Selectivity}
		if byCell[cell] == nil {
			byCell[cell] = map[int]MultiDevicePoint{}
		}
		byCell[cell][p.Devices] = p
	}
	for cell, pts := range byCell {
		if pts[1].ColdH2DBytes != pts[2].ColdH2DBytes || pts[2].ColdH2DBytes != pts[4].ColdH2DBytes {
			t.Fatalf("%v: cold bus traffic varies with fleet size: %d/%d/%d",
				cell, pts[1].ColdH2DBytes, pts[2].ColdH2DBytes, pts[4].ColdH2DBytes)
		}
		if !(pts[1].WarmNs > pts[2].WarmNs && pts[2].WarmNs > pts[4].WarmNs) {
			t.Fatalf("%v: warm ns did not shrink with device count: %v/%v/%v",
				cell, pts[1].WarmNs, pts[2].WarmNs, pts[4].WarmNs)
		}
	}
	if !s.WarmScales(1.5) {
		t.Fatal("warm throughput does not scale >= 1.5x per card doubling")
	}
	if out := s.Render(); !strings.Contains(out, "multidevice panel") {
		t.Fatalf("render missing banner:\n%s", out)
	}
	if csv := s.CSV(); !strings.HasPrefix(csv, "devices,layout,selectivity,") {
		t.Fatalf("csv missing header:\n%s", csv)
	}
	if got := strings.Count(s.CSV(), "\n"); got != 13 {
		t.Fatalf("csv rows = %d, want 13 (header + 12 points)", got)
	}
}
