package figures

import (
	"strings"
	"testing"
)

// TestFusionSweep is the acceptance check for the fusion panel: the
// one-pass fused plan beats materialize-then-aggregate on the host
// under every threading policy at every swept point, beats the device
// filter+gather baseline at ≤10% selectivity, and the device fused plan
// spends exactly ONE kernel launch and ONE group-table download per
// fragment — also on the compressed leg, where the decode folds into
// the same launch. Every leg's group table is cross-checked against a
// host shadow inside MeasureFusion, so a successful return is the
// exactness proof.
func TestFusionSweep(t *testing.T) {
	// The two-column working set (16 bytes/row) must exceed L3 so the
	// baseline's pair gathers price at miss latency — the regime the
	// panel (and the paper's large-column figures) live in.
	const (
		rows  = 1 << 20
		frags = 64
	)
	s, err := MeasureFusion(rows, frags, DefaultFusionCards(), DefaultFusionSelectivities())
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(DefaultFusionCards()) * len(DefaultFusionSelectivities())
	if len(s.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(s.Points), wantPoints)
	}
	if !s.HostFusedWins() {
		t.Error("host fused plan lost to materialize-then-aggregate at some swept point/policy")
	}
	if !s.DeviceFusedWins(0.10) {
		t.Error("device fused plan lost to filter+gather at <=10% selectivity")
	}
	for _, pt := range s.Points {
		// The one-launch budget: one kernel and one 24-byte-per-group
		// download per fragment, dense and compressed alike.
		if pt.DeviceFusedKernels != frags {
			t.Errorf("groups=%d sel=%.2f: fused kernels = %d, want %d (one per fragment)",
				pt.Groups, pt.Selectivity, pt.DeviceFusedKernels, frags)
		}
		if pt.DeviceCompFusedKernels != frags {
			t.Errorf("groups=%d sel=%.2f: compressed fused kernels = %d, want %d (decode folded in)",
				pt.Groups, pt.Selectivity, pt.DeviceCompFusedKernels, frags)
		}
		if pt.DeviceBaseKernels <= pt.DeviceFusedKernels {
			t.Errorf("groups=%d sel=%.2f: baseline ran %d kernels, fused %d — no launch saving",
				pt.Groups, pt.Selectivity, pt.DeviceBaseKernels, pt.DeviceFusedKernels)
		}
		// The download is bounded by the group tables, never the rows.
		if max := int64(frags) * int64(pt.Groups) * 24; pt.DeviceFusedD2HBytes > max {
			t.Errorf("groups=%d sel=%.2f: fused D2H %d bytes, want <= %d (group tables only)",
				pt.Groups, pt.Selectivity, pt.DeviceFusedD2HBytes, max)
		}
		// At the small cardinality every fragment holds all groups.
		if pt.Groups == 8 && pt.DeviceFusedD2HBytes != int64(frags)*8*24 {
			t.Errorf("sel=%.2f: fused D2H %d bytes, want exactly %d",
				pt.Selectivity, pt.DeviceFusedD2HBytes, int64(frags)*8*24)
		}
		// Compressed-domain grouping beats the dense fused pass on the
		// host (fewer streamed bytes) and decode-then-aggregate by far.
		if pt.FusedCompNs >= pt.FusedSingleNs {
			t.Errorf("groups=%d sel=%.2f: compressed fused %.0fns, dense fused %.0fns",
				pt.Groups, pt.Selectivity, pt.FusedCompNs, pt.FusedSingleNs)
		}
		if pt.FusedCompNs >= pt.BaseCompNs {
			t.Errorf("groups=%d sel=%.2f: compressed fused %.0fns, decode-then-aggregate %.0fns",
				pt.Groups, pt.Selectivity, pt.FusedCompNs, pt.BaseCompNs)
		}
	}
	for _, out := range []string{s.Render(), s.CSV()} {
		for _, want := range []string{"0.05", "1024"} {
			if !strings.Contains(out, want) {
				t.Errorf("rendered panel missing %q", want)
			}
		}
	}
}
