package figures

import (
	"fmt"
	"math"
	"strings"

	"hybridstore/internal/device"
	"hybridstore/internal/exec"
	"hybridstore/internal/layout"
	"hybridstore/internal/mem"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
	"hybridstore/internal/workload"
)

// The devicecache panel demonstrates the device-resident fragment cache
// (paper Section IV-C, "mixed data location"): a repeated device scan
// over unchanged fragments costs zero bus bytes because the column
// images stay resident, while an interleaved write bumps one fragment's
// version and the next scan re-ships exactly that fragment. Every round
// is also priced against an uncached baseline device that re-ships the
// whole column each scan, so the panel reports the bus traffic and
// simulated time the cache saves.

// DeviceCacheRound is one scan of the sweep.
type DeviceCacheRound struct {
	// Round numbers the scans; Kind is "cold", "warm" or "write+rescan".
	Round int
	Kind  string
	// H2DBytes is what the cached scan moved over the bus this round;
	// BaselineH2DBytes what the uncached device moved for the same scan.
	H2DBytes, BaselineH2DBytes int64
	// Hits and Misses are the cache lookups this round.
	Hits, Misses int64
	// CachedNs and BaselineNs are the simulated device times.
	CachedNs, BaselineNs float64
}

// DeviceCacheSweep is the full panel.
type DeviceCacheSweep struct {
	// Rows is the table size; FragmentRows the rows per fragment.
	Rows, FragmentRows uint64
	// Fragments is the fragment count.
	Fragments int
	// Rounds holds every scan in order.
	Rounds []DeviceCacheRound
	// TotalH2DBytes and TotalBaselineH2DBytes sum the bus traffic of the
	// cached and uncached executions over the whole sweep.
	TotalH2DBytes, TotalBaselineH2DBytes int64
}

// MeasureDeviceCache executes the sweep for real: one cold scan,
// warmRounds warm scans, then writes rounds of write-one-row-and-rescan.
// Every scan's answer is cross-checked against a host-side shadow of the
// column on both devices.
func MeasureDeviceCache(rows uint64, fragments, warmRounds, writes int) (*DeviceCacheSweep, error) {
	if fragments < 1 || rows%uint64(fragments) != 0 {
		return nil, fmt.Errorf("figures: rows %d not divisible into %d fragments", rows, fragments)
	}
	if warmRounds < 1 {
		warmRounds = 2
	}
	if writes < 1 {
		writes = 2
	}
	chunk := rows / uint64(fragments)
	host := mem.NewAllocator(mem.Host, 0)
	items := workload.ItemSchema()
	col := layout.NewLayout("devcache", items)
	defer col.Free()
	for begin := uint64(0); begin < rows; begin += chunk {
		f, err := layout.NewFragment(host, items, []int{workload.ItemPriceCol},
			layout.RowRange{Begin: begin, End: begin + chunk}, layout.Direct)
		if err == nil {
			err = col.Add(f)
		}
		if err != nil {
			return nil, err
		}
	}
	shadow := make([]float64, rows)
	frags := col.Fragments()
	for i := uint64(0); i < rows; i++ {
		price := selPrice(i)
		shadow[i] = price
		if err := frags[i/chunk].AppendTuplet([]schema.Value{schema.FloatValue(price)}); err != nil {
			return nil, err
		}
	}
	for _, f := range frags {
		f.SealStats()
	}

	cachedClock, baseClock := &perfmodel.Clock{}, &perfmodel.Clock{}
	cachedGPU := device.New(perfmodel.DefaultDevice(), cachedClock)
	baseGPU := device.New(perfmodel.DefaultDevice(), baseClock)
	cache := device.NewFragCache(cachedGPU)
	p := exec.Between(0, float64(rows)) // closed, admits every sealed zone

	sweep := &DeviceCacheSweep{Rows: rows, FragmentRows: chunk, Fragments: fragments}
	scan := func(kind string) error {
		// Re-view each round: writes bump fragment versions and the scan
		// must carry the current ones.
		pieces, err := exec.ColumnView(col, workload.ItemPriceCol, rows)
		if err != nil {
			return err
		}
		var wantSum float64
		var wantN int64
		for _, x := range shadow {
			if p.Match(x) {
				wantSum += x
				wantN++
			}
		}
		round := DeviceCacheRound{Round: len(sweep.Rounds) + 1, Kind: kind}
		cb, bb := cachedGPU.Stats(), baseGPU.Stats()
		cst := cache.Stats()
		cNs, bNs := cachedClock.ElapsedNs(), baseClock.ElapsedNs()

		ds := exec.DeviceScan{GPU: cachedGPU, Cache: cache, Table: "devcache"}
		sum, n, err := ds.SumFloat64Where(workload.ItemPriceCol, pieces, p)
		if err != nil {
			return err
		}
		base := exec.DeviceScan{GPU: baseGPU, Table: "devcache"}
		bSum, bN, err := base.SumFloat64Where(workload.ItemPriceCol, pieces, p)
		if err != nil {
			return err
		}
		for _, got := range []struct {
			sum float64
			n   int64
		}{{sum, n}, {bSum, bN}} {
			if got.n != wantN || math.Abs(got.sum-wantSum) > 1e-6*math.Max(1, wantSum) {
				return fmt.Errorf("figures: devicecache round %d (%s): got (%v, %d), want (%v, %d)",
					round.Round, kind, got.sum, got.n, wantSum, wantN)
			}
		}

		ca, ba := cachedGPU.Stats(), baseGPU.Stats()
		csa := cache.Stats()
		round.H2DBytes = ca.HostToDeviceBytes - cb.HostToDeviceBytes
		round.BaselineH2DBytes = ba.HostToDeviceBytes - bb.HostToDeviceBytes
		round.Hits = csa.Hits - cst.Hits
		round.Misses = csa.Misses - cst.Misses
		round.CachedNs = cachedClock.ElapsedNs() - cNs
		round.BaselineNs = baseClock.ElapsedNs() - bNs
		sweep.Rounds = append(sweep.Rounds, round)
		sweep.TotalH2DBytes += round.H2DBytes
		sweep.TotalBaselineH2DBytes += round.BaselineH2DBytes
		return nil
	}

	if err := scan("cold"); err != nil {
		return nil, err
	}
	for i := 0; i < warmRounds; i++ {
		if err := scan("warm"); err != nil {
			return nil, err
		}
	}
	for w := 0; w < writes; w++ {
		// Write one row of one fragment, keeping the value inside the
		// sealed zone so pruning stays exact; the Set bumps the fragment
		// version and only this fragment's image goes stale.
		fi := w % fragments
		local := 3 + w
		row := uint64(fi)*chunk + uint64(local)
		val := selPrice(uint64(fi) * chunk) // fragment minimum: within bounds
		if err := frags[fi].Set(local, workload.ItemPriceCol, schema.FloatValue(val)); err != nil {
			return nil, err
		}
		shadow[row] = val
		if err := scan("write+rescan"); err != nil {
			return nil, err
		}
	}
	return sweep, nil
}

// Render formats the sweep as a fixed-width table.
func (s *DeviceCacheSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "devicecache panel: repeated SUM(price) WHERE on the device, %d rows in %d fragments (%d rows each)\n",
		s.Rows, s.Fragments, s.FragmentRows)
	b.WriteString("cached = fragment-cache device; baseline = uncached device re-shipping every scan\n")
	rows := [][]string{{"round", "kind", "h2d bytes", "baseline h2d", "hits", "misses", "sim speedup"}}
	for _, r := range s.Rounds {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Round),
			r.Kind,
			fmt.Sprintf("%d", r.H2DBytes),
			fmt.Sprintf("%d", r.BaselineH2DBytes),
			fmt.Sprintf("%d", r.Hits),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%.1fx", r.BaselineNs/math.Max(r.CachedNs, 1)),
		})
	}
	renderTable(&b, rows)
	fmt.Fprintf(&b, "total bus traffic: %d bytes cached vs %d bytes uncached (%.1fx less)\n",
		s.TotalH2DBytes, s.TotalBaselineH2DBytes,
		float64(s.TotalBaselineH2DBytes)/math.Max(float64(s.TotalH2DBytes), 1))
	return b.String()
}

// CSV renders the sweep as comma-separated values, one row per round.
func (s *DeviceCacheSweep) CSV() string {
	var b strings.Builder
	b.WriteString("round,kind,h2d_bytes,baseline_h2d_bytes,hits,misses,cached_ns,baseline_ns\n")
	for _, r := range s.Rounds {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%d,%g,%g\n",
			r.Round, r.Kind, r.H2DBytes, r.BaselineH2DBytes, r.Hits, r.Misses, r.CachedNs, r.BaselineNs)
	}
	return b.String()
}
