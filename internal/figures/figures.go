// Package figures regenerates the paper's experimental figure (Section
// II-B, Figure 2) as data series. Each of the four panels sweeps table
// sizes and reports one value per configuration:
//
//	Panel 1 — "materialize 150 customers": record-centric materialization
//	          of 150 customers by sorted position list, milliseconds,
//	          over row-store/column-store × single-/multi-threaded.
//	Panel 2 — "sum prices of 150 items": tiny attribute-centric aggregate
//	          over a 150-position list, microseconds, same four series.
//	Panel 3 — "sum all prices in items table": full-column aggregate
//	          throughput in million rows/second, host row/column ×
//	          single/multi plus the device with bus transfer included.
//	Panel 4 — the same with transfer costs to the device excluded
//	          (column resident in device memory).
//
// Times come from the calibrated analytical platform model
// (internal/perfmodel), the documented substitution for the paper's
// i7-6700HQ + CUDA testbed (DESIGN.md Section 2); Verify executes the
// same queries for real on engine-built tables at reduced scale and
// cross-checks every answer against the workload's closed forms.
package figures

import (
	"fmt"
	"strings"

	"hybridstore/internal/perfmodel"
)

// The paper's experimental constants.
const (
	// K is the position-list size ("150 customers", "150 items").
	K = 150
	// CustomerWidth and CustomerArity pin the customer record geometry.
	CustomerWidth, CustomerArity = 96, 21
	// ItemWidth and PriceSize pin the item record geometry.
	ItemWidth, PriceSize = 28, 8
)

// Series is one line of a panel: a label and one value per swept size.
type Series struct {
	// Label names the configuration as in the figure legend.
	Label string
	// Values holds one y-value per x point.
	Values []float64
}

// Panel is one sub-plot of Figure 2.
type Panel struct {
	// Number is the panel index (1-4, left to right in the figure).
	Number int
	// Title is the paper's caption for the sub-plot.
	Title string
	// XLabel and YLabel describe the axes.
	XLabel, YLabel string
	// Sizes are the x-axis points (#records).
	Sizes []uint64
	// Series are the plotted lines.
	Series []Series
}

// Legend labels, mirroring the figure. The morsel-driven series extend
// the paper's comparison with the shared resident-pool policy.
const (
	RowSingle      = "row-store / host & single-threaded"
	RowMulti       = "row-store / host & multi-threaded"
	RowMorsel      = "row-store / host & morsel-driven"
	ColSingle      = "column-store / host & single-threaded"
	ColMulti       = "column-store / host & multi-threaded"
	ColMorsel      = "column-store / host & morsel-driven"
	ColDevice      = "column-store / device"
	ColDeviceNoBus = "column-store / device (transfer excluded)"
)

// DefaultSizes returns the paper's sweep for each panel.
func DefaultSizes(panel int) []uint64 {
	switch panel {
	case 1:
		return []uint64{5e6, 25e6, 45e6, 65e6, 85e6}
	case 2:
		return []uint64{10e6, 20e6, 30e6, 40e6, 50e6, 60e6}
	default:
		return []uint64{5e6, 15e6, 25e6, 35e6, 45e6, 55e6, 65e6}
	}
}

// Config carries the platform profiles the panels are priced on.
type Config struct {
	Host   perfmodel.HostProfile
	Device perfmodel.DeviceProfile
}

// Default returns the paper-calibrated configuration.
func Default() Config {
	return Config{Host: perfmodel.DefaultHost(), Device: perfmodel.DefaultDevice()}
}

// Panel1 prices the record-centric materialization of K customers.
func (c Config) Panel1(sizes []uint64) Panel {
	p := Panel{
		Number: 1,
		Title:  "materialize 150 customers",
		XLabel: "#records in customer table",
		YLabel: "simulated ms",
		Sizes:  sizes,
	}
	configs := []struct {
		label   string
		spread  int
		threads int
		morsel  bool
	}{
		{RowSingle, 1, 1, false},
		{RowMulti, 1, c.Host.Threads, false},
		{RowMorsel, 1, c.Host.Threads, true},
		{ColSingle, CustomerArity, 1, false},
		{ColMulti, CustomerArity, c.Host.Threads, false},
		{ColMorsel, CustomerArity, c.Host.Threads, true},
	}
	for _, cfg := range configs {
		s := Series{Label: cfg.label}
		for _, n := range sizes {
			var ns float64
			if cfg.morsel {
				ns = c.Host.MaterializeMorselNs(K, int64(n), CustomerWidth, cfg.spread, cfg.threads)
			} else {
				ns = c.Host.MaterializeNs(K, int64(n), CustomerWidth, cfg.spread, cfg.threads)
			}
			s.Values = append(s.Values, ns/1e6)
		}
		p.Series = append(p.Series, s)
	}
	return p
}

// Panel2 prices the tiny attribute-centric aggregate over K item
// positions.
func (c Config) Panel2(sizes []uint64) Panel {
	p := Panel{
		Number: 2,
		Title:  "sum prices of 150 items",
		XLabel: "#records in item table",
		YLabel: "simulated µs",
		Sizes:  sizes,
	}
	configs := []struct {
		label   string
		width   int
		spread  int
		threads int
		morsel  bool
	}{
		{RowSingle, ItemWidth, 1, 1, false},
		{RowMulti, ItemWidth, 1, c.Host.Threads, false},
		{RowMorsel, ItemWidth, 1, c.Host.Threads, true},
		{ColSingle, PriceSize, 1, 1, false},
		{ColMulti, PriceSize, 1, c.Host.Threads, false},
		{ColMorsel, PriceSize, 1, c.Host.Threads, true},
	}
	for _, cfg := range configs {
		s := Series{Label: cfg.label}
		for _, n := range sizes {
			// K point accesses to the price field; the record width sets
			// the working set and per-access decode cost.
			var ns float64
			if cfg.morsel {
				ns = c.Host.MaterializeMorselNs(K, int64(n), cfg.width, cfg.spread, cfg.threads)
			} else {
				ns = c.Host.MaterializeNs(K, int64(n), cfg.width, cfg.spread, cfg.threads)
			}
			s.Values = append(s.Values, ns/1e3)
		}
		p.Series = append(p.Series, s)
	}
	return p
}

// Panel3 prices the full-column aggregate with the device series paying
// the bus transfer.
func (c Config) Panel3(sizes []uint64) Panel {
	p := c.fullScanPanel(3, "sum all prices in items table", sizes, true)
	return p
}

// Panel4 prices the full-column aggregate with the price column resident
// in device memory (transfer costs excluded).
func (c Config) Panel4(sizes []uint64) Panel {
	p := c.fullScanPanel(4, "sum all prices in items table (transfer costs to device excluded)", sizes, false)
	return p
}

// fullScanPanel builds panels 3 and 4.
func (c Config) fullScanPanel(number int, title string, sizes []uint64, withTransfer bool) Panel {
	p := Panel{
		Number: number,
		Title:  title,
		XLabel: "#records in item table",
		YLabel: "throughput (M rows/s)",
		Sizes:  sizes,
	}
	host := []struct {
		label   string
		stride  int
		threads int
		morsel  bool
	}{
		{RowSingle, ItemWidth, 1, false},
		{RowMulti, ItemWidth, c.Host.Threads, false},
		{RowMorsel, ItemWidth, c.Host.Threads, true},
		{ColSingle, PriceSize, 1, false},
		{ColMulti, PriceSize, c.Host.Threads, false},
		{ColMorsel, PriceSize, c.Host.Threads, true},
	}
	for _, cfg := range host {
		s := Series{Label: cfg.label}
		for _, n := range sizes {
			var ns float64
			if cfg.morsel {
				ns = c.Host.ScanSumMorselNs(int64(n), PriceSize, cfg.stride, cfg.threads)
			} else {
				ns = c.Host.ScanSumNs(int64(n), PriceSize, cfg.stride, cfg.threads)
			}
			s.Values = append(s.Values, throughput(n, ns))
		}
		p.Series = append(p.Series, s)
	}
	label := ColDeviceNoBus
	if withTransfer {
		label = ColDevice
	}
	dev := Series{Label: label}
	for _, n := range sizes {
		ns := c.Device.ReduceKernelNs(int64(n), PriceSize, PriceSize, 1024, 512)
		if withTransfer {
			ns += c.Device.TransferNs(int64(n) * PriceSize)
		}
		dev.Values = append(dev.Values, throughput(n, ns))
	}
	p.Series = append(p.Series, dev)
	return p
}

// throughput converts n records in ns nanoseconds to M rows/s.
func throughput(n uint64, ns float64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(n) / ns * 1e9 / 1e6
}

// Panels builds the requested panel (1-4), or all four for 0.
func (c Config) Panels(panel int) ([]Panel, error) {
	switch panel {
	case 0:
		return []Panel{
			c.Panel1(DefaultSizes(1)),
			c.Panel2(DefaultSizes(2)),
			c.Panel3(DefaultSizes(3)),
			c.Panel4(DefaultSizes(4)),
		}, nil
	case 1:
		return []Panel{c.Panel1(DefaultSizes(1))}, nil
	case 2:
		return []Panel{c.Panel2(DefaultSizes(2))}, nil
	case 3:
		return []Panel{c.Panel3(DefaultSizes(3))}, nil
	case 4:
		return []Panel{c.Panel4(DefaultSizes(4))}, nil
	default:
		return nil, fmt.Errorf("figures: no panel %d (want 0-4)", panel)
	}
}

// Render formats the panel as a fixed-width table: one row per size, one
// column per series.
func (p Panel) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 / panel %d: %s\n", p.Number, p.Title)
	fmt.Fprintf(&b, "y = %s\n", p.YLabel)
	header := []string{p.XLabel}
	for _, s := range p.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i, n := range p.Sizes {
		row := []string{formatRows(n)}
		for _, s := range p.Series {
			row = append(row, fmt.Sprintf("%.2f", s.Values[i]))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			total := 0
			for i, w := range widths {
				if i > 0 {
					total += 2
				}
				total += w
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// formatRows renders a row count compactly (250K, 65M).
func formatRows(n uint64) string {
	if n >= 1e6 {
		return fmt.Sprintf("%dM", n/1e6)
	}
	return fmt.Sprintf("%dK", n/1e3)
}

// CSV renders the panel as comma-separated values.
func (p Panel) CSV() string {
	var b strings.Builder
	b.WriteString("records")
	for _, s := range p.Series {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteByte('\n')
	for i, n := range p.Sizes {
		fmt.Fprintf(&b, "%d", n)
		for _, s := range p.Series {
			fmt.Fprintf(&b, ",%g", s.Values[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// find returns the series with the given label, or nil.
func (p Panel) find(label string) *Series {
	for i := range p.Series {
		if p.Series[i].Label == label {
			return &p.Series[i]
		}
	}
	return nil
}

// Findings summarizes whether the panel set reproduces the paper's four
// qualitative findings (Section II-B (i)-(iv)).
type Findings struct {
	// TinyInputsFavourSingle: finding (i) — on small position lists the
	// single-threaded policy beats the multi-threaded one.
	TinyInputsFavourSingle bool
	// RecordCentricFavoursNSM: finding (ii) — materialization is faster
	// on the row store.
	RecordCentricFavoursNSM bool
	// AttrCentricFavoursDSM: finding (iii) — full scans are faster on the
	// column store.
	AttrCentricFavoursDSM bool
	// DeviceWinsWhenResident: finding (iv) — the device dominates once
	// the column is device-resident.
	DeviceWinsWhenResident bool
	// MorselAmortizesScheduling: finding (v), beyond the paper — the
	// morsel-driven resident pool beats blockwise multi-threading on
	// tiny inputs (where the paper's policy loses to single-threaded)
	// while staying within a few percent of it on full scans.
	MorselAmortizesScheduling bool
}

// Evaluate checks the findings over freshly priced default panels.
func (c Config) Evaluate() Findings {
	p1 := c.Panel1(DefaultSizes(1))
	p2 := c.Panel2(DefaultSizes(2))
	p3 := c.Panel3(DefaultSizes(3))
	p4 := c.Panel4(DefaultSizes(4))
	var f Findings

	last := len(p1.Sizes) - 1
	f.TinyInputsFavourSingle = p1.find(RowSingle).Values[last] < p1.find(RowMulti).Values[last]
	f.RecordCentricFavoursNSM = p1.find(RowSingle).Values[last] < p1.find(ColSingle).Values[last]

	last3 := len(p3.Sizes) - 1
	f.AttrCentricFavoursDSM = p3.find(ColMulti).Values[last3] > p3.find(RowMulti).Values[last3]
	f.DeviceWinsWhenResident = p4.find(ColDeviceNoBus).Values[last3] > p3.find(ColMulti).Values[last3]

	// Finding (v): in the regime where finding (i) holds — panel 2's
	// 150-position aggregate, where blockwise threading loses to
	// single-threaded — the morsel-driven pool beats blockwise at every
	// point, and on the full scan it keeps >= 95% of blockwise
	// throughput.
	f.MorselAmortizesScheduling = true
	for i := range p2.Sizes {
		if p2.find(RowMorsel).Values[i] >= p2.find(RowMulti).Values[i] ||
			p2.find(ColMorsel).Values[i] >= p2.find(ColMulti).Values[i] {
			f.MorselAmortizesScheduling = false
		}
	}
	if p3.find(ColMorsel).Values[last3] < 0.95*p3.find(ColMulti).Values[last3] {
		f.MorselAmortizesScheduling = false
	}
	return f
}
