// Package servingfig measures the serving-layer panel: the warp-style
// load harness against loopback HTTP front ends over one warm
// device-cached store, batched vs unbatched, across a concurrency
// sweep. It lives beside (not inside) the figures package because it
// drives the public facade end to end, which the figures package —
// imported by the facade's own benchmarks — cannot.
package servingfig

import (
	"fmt"
	"net"
	"strings"
	"time"

	"hybridstore"
	"hybridstore/internal/server"
	"hybridstore/internal/server/loadgen"
)

// The serving panel measures the network serving layer end to end: the
// warp-style load harness drives loopback HTTP against one warm
// device-cached item table through two front ends over the same store —
// one with the shared-scan batching scheduler on, one executing every
// request solo — across a concurrency sweep. At one client the two
// paths are near-identical (a cohort of one); as concurrency grows the
// batched server folds compatible analytic requests into shared passes
// and pulls ahead on wall-clock QPS.

// ServingClass is one operation class of a leg: wall-clock throughput
// and tail latency in microseconds.
type ServingClass struct {
	Name         string
	Ops          int64
	QPS          float64
	P50us, P99us float64
}

// ServingLeg is one (concurrency, mode) cell of the sweep.
type ServingLeg struct {
	Concurrency int
	// Batched reports whether the leg ran through the batching server.
	Batched bool
	// WallSeconds is the measured wall-clock time; QPS the aggregate
	// completed-request rate over it.
	WallSeconds float64
	QPS         float64
	Ops, Errors int64
	// Classes holds the per-class breakdown (write, sum, group).
	Classes []ServingClass
}

// ServingSweep is the full panel.
type ServingSweep struct {
	Rows          uint64
	Mix           string
	LegSeconds    float64
	Concurrencies []int
	// Durable reports whether the item table ran with write-ahead
	// logging on: the write lane then pays a group-committed fsync per
	// acknowledged point write.
	Durable bool
	Legs    []ServingLeg
}

// servingGroups is the group-key cardinality of the serving fixture: a
// dashboard-scale domain (think warehouses or districts), not the item
// generator's near-unique image ids.
const servingGroups = 64

// MeasureServing runs the sweep: for each concurrency, one leg against
// the unbatched front end and one against the batched front end, both
// over the same warm device-cached table. legDur is the wall time per
// leg (default 1.2s). A non-empty walDir opens the item table durably
// from that directory: every acknowledged point write is group-committed
// to the write-ahead log first, so the sweep prices the durable write
// lane instead of the memory-only one.
func MeasureServing(rows uint64, concurrencies []int, legDur time.Duration, walDir string) (*ServingSweep, error) {
	if len(concurrencies) == 0 {
		concurrencies = DefaultServingConcurrencies()
	}
	if legDur <= 0 {
		legDur = 1200 * time.Millisecond
	}
	opts := hybridstore.Options{ChunkRows: 256, DeviceCache: true}
	var db *hybridstore.DB
	if walDir != "" {
		opts.Durability = hybridstore.Durability{Tables: []string{"item"}}
		var err error
		if db, err = hybridstore.OpenDir(walDir, opts); err != nil {
			return nil, err
		}
	} else {
		db = hybridstore.Open(opts)
	}
	defer db.Close()
	tbl, err := db.CreateTable("item", hybridstore.ItemSchema())
	if err != nil {
		return nil, err
	}
	defer tbl.Free()
	for i := uint64(0); i < rows; i++ {
		if _, err := tbl.Insert(hybridstore.Item(i)); err != nil {
			return nil, err
		}
	}
	// Re-key i_im_id to a dashboard-cardinality group domain (the raw
	// generator gives near-unique ids, which makes every group-by answer
	// as wide as the table), then fold the rewrites so the legs run over
	// clean base fragments.
	for i := uint64(0); i < rows; i++ {
		if err := tbl.Update(i, 1, hybridstore.Int32Value(int32(i%servingGroups))); err != nil {
			return nil, err
		}
	}
	if err := tbl.Merge(); err != nil {
		return nil, err
	}
	// Warm the device cache before any leg: the sweep compares serving
	// paths, not cold-start transfer costs.
	if _, _, err := tbl.SumFloat64Where(hybridstore.ItemPriceColumn, hybridstore.GtFloat(0)); err != nil {
		return nil, err
	}

	// Two front ends over the one store: solo execution and the batching
	// scheduler at its tuned window.
	urls := make(map[bool]string)
	for _, batched := range []bool{false, true} {
		window := time.Duration(0)
		if batched {
			window = server.DefaultBatchWindow
		}
		s := server.New(server.Config{DB: db, BatchWindow: window})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer l.Close()
		go s.Serve(l)
		urls[batched] = "http://" + l.Addr().String()
	}

	const mix = "write=20,sum=60,group=20"
	m, err := loadgen.ParseMix(mix)
	if err != nil {
		return nil, err
	}
	sweep := &ServingSweep{
		Rows:          rows,
		Mix:           mix,
		LegSeconds:    legDur.Seconds(),
		Concurrencies: concurrencies,
		Durable:       walDir != "",
	}
	// Short discarded shakeout leg per front end: connection setup, pool
	// priming and JIT-warm paths happen off the clock.
	for _, batched := range []bool{false, true} {
		if _, err := loadgen.Run(loadgen.Options{
			BaseURL: urls[batched], Rows: rows, Concurrency: 4,
			Duration: 150 * time.Millisecond, Mix: m,
		}); err != nil {
			return nil, err
		}
	}
	for _, conc := range concurrencies {
		for _, batched := range []bool{false, true} {
			res, err := loadgen.Run(loadgen.Options{
				BaseURL:     urls[batched],
				Rows:        rows,
				Concurrency: conc,
				Duration:    legDur,
				Mix:         m,
			})
			if err != nil {
				return nil, err
			}
			if res.TotalErrs > 0 {
				return nil, fmt.Errorf("figures: serving leg c=%d batched=%v had %d errors", conc, batched, res.TotalErrs)
			}
			leg := ServingLeg{
				Concurrency: conc,
				Batched:     batched,
				WallSeconds: res.Wall.Seconds(),
				QPS:         res.QPS,
				Ops:         res.TotalOps,
				Errors:      res.TotalErrs,
			}
			for _, c := range res.Classes {
				// The harness reports every class it knows (including the
				// zipfian point-read lane); the panel's published mix runs
				// write/sum/group only, so drop classes that saw no traffic.
				if c.Ops == 0 && c.Shed == 0 && c.Errors == 0 {
					continue
				}
				leg.Classes = append(leg.Classes, ServingClass{
					Name:  c.Name,
					Ops:   c.Ops,
					QPS:   c.QPS,
					P50us: float64(c.P50.Nanoseconds()) / 1e3,
					P99us: float64(c.P99.Nanoseconds()) / 1e3,
				})
			}
			sweep.Legs = append(sweep.Legs, leg)
		}
	}
	return sweep, nil
}

// DefaultServingConcurrencies is the published sweep: a lone client, a
// small pool, and a 32-client burst.
func DefaultServingConcurrencies() []int { return []int{1, 8, 32} }

// Leg returns the (concurrency, batched) cell, or nil.
func (s *ServingSweep) Leg(conc int, batched bool) *ServingLeg {
	for i := range s.Legs {
		if s.Legs[i].Concurrency == conc && s.Legs[i].Batched == batched {
			return &s.Legs[i]
		}
	}
	return nil
}

// Speedup returns batched QPS over unbatched QPS at one concurrency
// (0 when either leg is missing).
func (s *ServingSweep) Speedup(conc int) float64 {
	b, u := s.Leg(conc, true), s.Leg(conc, false)
	if b == nil || u == nil || u.QPS == 0 {
		return 0
	}
	return b.QPS / u.QPS
}

// Render formats the sweep as a fixed-width table.
func (s *ServingSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving panel: loopback HTTP over %d warm device-cached rows, mix %s, %.1fs per leg\n",
		s.Rows, s.Mix, s.LegSeconds)
	if s.Durable {
		b.WriteString("durable: point writes group-commit to the write-ahead log before acknowledging\n")
	}
	b.WriteString("batched = shared-scan batching scheduler; unbatched = every request executes solo\n")
	rows := [][]string{{"clients", "mode", "qps", "write p99", "sum p99", "group p99", "speedup"}}
	for _, leg := range s.Legs {
		mode := "unbatched"
		speed := ""
		if leg.Batched {
			mode = "batched"
			speed = fmt.Sprintf("%.2fx", s.Speedup(leg.Concurrency))
		}
		row := []string{fmt.Sprintf("%d", leg.Concurrency), mode, fmt.Sprintf("%.0f", leg.QPS)}
		for _, c := range leg.Classes {
			row = append(row, fmt.Sprintf("%.0fµs", c.P99us))
		}
		for len(row) < 6 {
			row = append(row, "")
		}
		row = append(row, speed)
		rows = append(rows, row)
	}
	renderTable(&b, rows)
	return b.String()
}

// CSV renders the sweep, one row per (concurrency, mode) leg.
func (s *ServingSweep) CSV() string {
	var b strings.Builder
	b.WriteString("clients,mode,qps,ops,errors,write_qps,write_p99_us,sum_qps,sum_p99_us,group_qps,group_p99_us\n")
	for _, leg := range s.Legs {
		mode := "unbatched"
		if leg.Batched {
			mode = "batched"
		}
		fmt.Fprintf(&b, "%d,%s,%.1f,%d,%d", leg.Concurrency, mode, leg.QPS, leg.Ops, leg.Errors)
		for _, c := range leg.Classes {
			fmt.Fprintf(&b, ",%.1f,%.1f", c.QPS, c.P99us)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderTable formats rows as a fixed-width table with a rule under the
// header (same layout the figures package uses).
func renderTable(b *strings.Builder, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			total := 0
			for i, w := range widths {
				if i > 0 {
					total += 2
				}
				total += w
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
}
