package servingfig

import (
	"strings"
	"testing"
	"time"
)

// TestServingSweep is the serving-layer acceptance gate: at a 32-client
// burst over warm device-cached data, the batching front end must beat
// the solo front end on wall-clock QPS, and every leg must report a
// per-class p99. Real wall-clock measurement on shared CI hardware is
// noisy, so the gate demands a conservative 1.2x (the published panel
// typically shows well above 1.5x) and allows one retry.
func TestServingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("serving sweep measures wall-clock legs; skipped in -short")
	}
	const minSpeedup = 1.2
	var s *ServingSweep
	for attempt := 0; attempt < 2; attempt++ {
		var err error
		s, err = MeasureServing(4096, []int{1, 32}, 800*time.Millisecond, "")
		if err != nil {
			t.Fatal(err)
		}
		if s.Speedup(32) >= minSpeedup {
			break
		}
		t.Logf("attempt %d: speedup at 32 clients %.2fx < %.1fx, retrying", attempt+1, s.Speedup(32), minSpeedup)
	}
	if got := s.Speedup(32); got < minSpeedup {
		t.Errorf("batched front end %.2fx vs unbatched at 32 clients, want >= %.1fx\n%s", got, minSpeedup, s.Render())
	}
	for _, leg := range s.Legs {
		if leg.Errors != 0 {
			t.Errorf("leg c=%d batched=%v had %d errors", leg.Concurrency, leg.Batched, leg.Errors)
		}
		if len(leg.Classes) != 3 {
			t.Fatalf("leg c=%d batched=%v has %d classes", leg.Concurrency, leg.Batched, len(leg.Classes))
		}
		for _, c := range leg.Classes {
			if c.Ops > 0 && c.P99us <= 0 {
				t.Errorf("leg c=%d batched=%v class %s: %d ops but p99 %.1fus",
					leg.Concurrency, leg.Batched, c.Name, c.Ops, c.P99us)
			}
		}
	}
	out := s.Render()
	for _, want := range []string{"batched", "unbatched", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "clients,mode,qps,ops,errors,write_qps,write_p99_us,sum_qps,sum_p99_us,group_qps,group_p99_us\n") {
		t.Errorf("bad csv header:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 1+len(s.Legs) {
		t.Errorf("csv row count mismatch:\n%s", csv)
	}
}
