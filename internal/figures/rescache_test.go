package figures

import (
	"strings"
	"testing"
)

// TestMeasureResultCache is the acceptance gate for the resultcache
// panel: repeat reads must clear a 5x p50 speedup, every leg must be
// bit-identical to uncached execution, the cache accounting must close
// (hits+misses == lookups), and the mixed leg must register stale
// entries — invalidation observed, not assumed.
func TestMeasureResultCache(t *testing.T) {
	s, err := MeasureResultCache(65536, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Legs) != 3 {
		t.Fatalf("want 3 legs, got %d", len(s.Legs))
	}
	byName := map[string]ResultCacheLeg{}
	for _, l := range s.Legs {
		byName[l.Name] = l
		if !l.BitIdentical {
			t.Errorf("leg %s: cached answers diverged from uncached execution", l.Name)
		}
		if l.Hits+l.Misses != l.Lookups {
			t.Errorf("leg %s: hits(%d)+misses(%d) != lookups(%d)", l.Name, l.Hits, l.Misses, l.Lookups)
		}
		if l.Lookups == 0 {
			t.Errorf("leg %s: no cache lookups recorded — path not accounted", l.Name)
		}
	}

	rh := byName["read-heavy"]
	if rh.Speedup < 5 {
		t.Errorf("read-heavy p50 speedup %.1fx below the 5x gate (cached %.0fns, uncached %.0fns)",
			rh.Speedup, rh.CachedP50Ns, rh.UncachedP50Ns)
	}
	if rh.Hits == 0 {
		t.Error("read-heavy leg never hit the cache")
	}

	mx := byName["mixed"]
	if mx.Stale == 0 {
		t.Error("mixed leg registered no stale entries: merges did not invalidate")
	}
	if mx.Hits == 0 {
		t.Error("mixed leg never hit between write bursts")
	}

	ws := byName["write-storm"]
	if ws.Hits != 0 {
		t.Errorf("write-storm leg reported %d hits: a churning table must never reuse", ws.Hits)
	}

	// Rendering smoke: the table and CSV carry every leg.
	out, csv := s.Render(), s.CSV()
	for _, want := range []string{"read-heavy", "mixed", "write-storm"} {
		if !strings.Contains(out, want) || !strings.Contains(csv, want) {
			t.Errorf("rendering missing leg %q", want)
		}
	}
	if !strings.HasPrefix(csv, "leg,queries,cached_p50_us,uncached_p50_us,speedup,lookups,hits,misses,stale,bit_identical\n") {
		t.Errorf("bad csv header:\n%s", csv)
	}
}
