package figures

import (
	"strings"
	"testing"
)

// TestCompressionSweep is the acceptance check for the compression
// panel: compressible shapes ship fewer bus bytes and finish sooner on
// the device than the uncompressed scan, warm rescans through the
// fragment cache ship nothing, and the incompressible shape honestly
// stays raw at ratio 1. Answers are cross-checked against the host
// shadow inside MeasureCompression, so a successful return is the
// exactness proof.
func TestCompressionSweep(t *testing.T) {
	// Fragments must be large enough that the bus saving amortizes the
	// per-fragment decode-kernel launch — the same small-work-unit
	// threshold the placement advisor prices (64Ki rows = 512KiB dense
	// per fragment, well past break-even at ~70KiB).
	const (
		rows  = 1 << 20
		frags = 16
	)
	s, err := MeasureCompression(rows, frags)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Shapes) != 4 {
		t.Fatalf("shapes = %d, want 4", len(s.Shapes))
	}
	byShape := map[string]CompressionShape{}
	for _, r := range s.Shapes {
		byShape[r.Shape] = r
	}
	wantEnc := map[string]string{
		"distinct": "raw", "dict8": "dict", "sorted-for": "for", "runny-rle": "rle",
	}
	dense := int64(rows) * 8
	for shape, enc := range wantEnc {
		r, ok := byShape[shape]
		if !ok {
			t.Fatalf("shape %q missing", shape)
		}
		if r.Encoding != enc {
			t.Errorf("%s: encoding %q, want %q", shape, r.Encoding, enc)
		}
		if r.DeviceH2DBytes < dense {
			t.Errorf("%s: uncompressed device scan shipped %d bytes, want >= dense %d",
				shape, r.DeviceH2DBytes, dense)
		}
		// The cold compressed scan ships exactly the marshaled images.
		if r.DeviceCompH2DBytes != r.CompressedBytes {
			t.Errorf("%s: compressed device scan shipped %d bytes, want the images (%d)",
				shape, r.DeviceCompH2DBytes, r.CompressedBytes)
		}
		// The warm rescan is fully cache-resident: zero bus bytes, one hit
		// per fragment.
		if r.WarmCompH2DBytes != 0 {
			t.Errorf("%s: warm compressed rescan shipped %d bytes, want 0", shape, r.WarmCompH2DBytes)
		}
		if r.WarmHits != frags {
			t.Errorf("%s: warm rescan scored %d hits, want %d", shape, r.WarmHits, frags)
		}
		if shape == "distinct" {
			if r.Ratio > 1.0 {
				t.Errorf("distinct: ratio %.2f, want <= 1 (incompressible)", r.Ratio)
			}
			continue
		}
		// Compressible shapes: the ratio is real, the bus moves fewer
		// bytes, and the cold compressed device scan beats the
		// uncompressed one despite paying the decode kernel — the
		// transfer-bound win the tentpole is after.
		if r.Ratio < 2 {
			t.Errorf("%s: ratio %.2f, want >= 2", shape, r.Ratio)
		}
		if r.DeviceCompH2DBytes >= r.DeviceH2DBytes {
			t.Errorf("%s: compressed scan shipped %d bytes, uncompressed %d — no bus saving",
				shape, r.DeviceCompH2DBytes, r.DeviceH2DBytes)
		}
		if r.DeviceCompNs >= r.DeviceNs {
			t.Errorf("%s: compressed device scan %.0fns, uncompressed %.0fns — no speedup",
				shape, r.DeviceCompNs, r.DeviceNs)
		}
		if r.HostCompNs >= r.HostNs {
			t.Errorf("%s: compressed host scan %.0fns, dense %.0fns — no host saving",
				shape, r.HostCompNs, r.HostNs)
		}
	}
	for _, out := range []string{s.Render(), s.CSV()} {
		for _, want := range []string{"distinct", "dict8", "sorted-for", "runny-rle"} {
			if !strings.Contains(out, want) {
				t.Errorf("rendered panel missing %q", want)
			}
		}
	}
}
