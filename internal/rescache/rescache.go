// Package rescache is the cross-request query-result cache: a bounded,
// sharded LRU keyed by (table, op, normalized predicate / group spec)
// whose entries are stamped with the fragment-version vector the
// executing snapshot saw.
//
// Correctness rests on a property the storage layer already provides:
// fragment IDs are process-globally unique and fragment versions are
// bumped on every in-place mutation, so the vector of (ID, Version)
// pairs a scan folded is a complete fingerprint of the bytes it read.
// A cached result is valid exactly while that vector is unchanged —
// the validity check is O(#fragments) integer compares, no data reads.
// Invalidation is purely passive: a write bumps a version (or replaces
// a fragment, changing its ID), the next lookup sees a stale stamp,
// counts it, drops the entry, and the caller recomputes. There are no
// write-path hooks and therefore no lock-order risk.
//
// Queries whose snapshot overlaps hot MVCC deltas are uncacheable (the
// delta store has no version vector); callers report them via Bypass so
// the accounting invariant hits + misses == lookups holds for every
// query that consulted the cache, cacheable or not.
package rescache

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hybridstore/internal/exec"
	"hybridstore/internal/obs"
	"hybridstore/internal/schema"
)

// Op names the cached operation class. It is part of the key: the same
// (table, col, pred) means different things to sum-where and
// count-where only in which field of the shared Value the caller reads,
// so those two share OpSumWhere; group-bys and point reads get their
// own classes.
type Op uint8

const (
	// OpSum caches unpredicated column sums.
	OpSum Op = iota + 1
	// OpSumWhere caches fused predicate sum+count pairs (count-where
	// reads the Count field of the same entry).
	OpSumWhere
	// OpGroupSum caches unpredicated fused group-bys.
	OpGroupSum
	// OpGroupSumWhere caches predicated fused group-bys.
	OpGroupSumWhere
	// OpGet caches single-row point reads.
	OpGet
)

// Key identifies a cacheable query. It is a comparable value type so it
// can index the shard maps directly; unused dimensions stay zero.
// Predicates must be normalized (exec.Normalize) before keying so that
// semantically identical spellings share an entry.
type Key struct {
	// Table is the serving name of the table.
	Table string
	// Op is the operation class.
	Op Op
	// Col is the aggregated / gathered column (unused for OpGet: a
	// point read returns the whole record).
	Col int
	// KeyCol is the grouping column for the group-by classes.
	KeyCol int
	// Row is the row position for OpGet.
	Row uint64
	// Pred is the normalized predicate for the *Where classes.
	Pred exec.Pred[float64]
	// HasPred distinguishes a zero-valued predicate from no predicate.
	HasPred bool
}

// Cacheable reports whether the key may be stored. NaN predicate
// bounds never compare equal to themselves, which would make the map
// entry unreachable by any future lookup — refuse it up front.
func (k Key) Cacheable() bool {
	if !k.HasPred {
		return true
	}
	return k.Pred.Lo == k.Pred.Lo && k.Pred.Hi == k.Pred.Hi
}

// FragVer is one fragment's identity and write version.
type FragVer struct {
	// ID is the process-globally unique fragment ID.
	ID uint64
	// Ver is the fragment's write version at stamp time.
	Ver uint64
}

// Stamp is the fragment-version vector a result was computed over,
// together with the row count and an engine-specific epoch (engines
// whose structural reorganizations do not touch every fragment — e.g.
// an L-Store merge counter — fold them in here so a reorganization
// invalidates even stamps whose surviving fragments kept their IDs).
type Stamp struct {
	// Rows is the table's row count at stamp time.
	Rows uint64
	// Epoch is an engine-specific structural version (0 when unused).
	Epoch uint64
	// Frags are the (ID, Version) pairs of every fragment the
	// executing snapshot folded, in walk order.
	Frags []FragVer
}

// Equal reports whether two stamps describe the same base state.
func (s Stamp) Equal(o Stamp) bool {
	if s.Rows != o.Rows || s.Epoch != o.Epoch || len(s.Frags) != len(o.Frags) {
		return false
	}
	for i, f := range s.Frags {
		if f != o.Frags[i] {
			return false
		}
	}
	return true
}

// Value is the cached answer. Which fields are meaningful depends on
// the key's Op; the rest stay zero. Groups and Rec are cloned on both
// Put and hit so no caller can alias (and later scribble on) the
// cached copy.
type Value struct {
	// Sum is the aggregate total (OpSum, OpSumWhere).
	Sum float64
	// Count is the qualifying-row count (OpSumWhere).
	Count int64
	// Groups is the sorted group table (OpGroupSum, OpGroupSumWhere).
	Groups []exec.GroupResult
	// Rec is the point-read record (OpGet).
	Rec schema.Record
}

// Stats is a point-in-time snapshot of one cache's accounting. Stale
// is a subset of Misses, so Hits + Misses == Lookups always holds.
type Stats struct {
	Lookups   int64
	Hits      int64
	Misses    int64
	Stale     int64
	Evictions int64
	Puts      int64
	Bytes     int64
	Entries   int64
}

// Process-wide observability: every cache in the process feeds the same
// obs series (caches are per-engine, the registry is global, so gauges
// are maintained by delta).
var (
	mLookups   = obs.NewCounter("rescache.lookups")
	mHits      = obs.NewCounter("rescache.hits")
	mMisses    = obs.NewCounter("rescache.misses")
	mStale     = obs.NewCounter("rescache.stale")
	mEvictions = obs.NewCounter("rescache.evictions")
	mPuts      = obs.NewCounter("rescache.puts")
	gBytes     = obs.NewGauge("rescache.bytes")
	gEntries   = obs.NewGauge("rescache.entries")
)

const numShards = 16

type entry struct {
	key   Key
	stamp Stamp
	val   Value
	bytes int64
	// expires is the TTL deadline; zero means no expiry.
	expires time.Time
	elem    *list.Element
}

type shard struct {
	mu    sync.Mutex
	m     map[Key]*entry
	lru   list.List // front = most recently used
	bytes int64
}

// Cache is a bounded, sharded, version-stamped LRU result cache. The
// zero value is not usable; call New.
type Cache struct {
	capBytes int64 // per-shard budget
	ttl      time.Duration
	shards   [numShards]shard

	lookups   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	stale     atomic.Int64
	evictions atomic.Int64
	puts      atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// New builds a cache bounded at capBytes total. ttl == 0 disables
// expiry (entries live until a version bump or eviction); a positive
// ttl additionally ages entries out, which bounds staleness windows
// for engines whose mutations the stamp cannot see.
func New(capBytes int64, ttl time.Duration) *Cache {
	if capBytes <= 0 {
		capBytes = 64 << 20
	}
	c := &Cache{capBytes: (capBytes + numShards - 1) / numShards, ttl: ttl}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
		c.shards[i].lru.Init()
	}
	return c
}

// shardFor hashes the key (FNV-1a over every dimension) to a shard.
func (c *Cache) shardFor(k Key) *shard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k.Table); i++ {
		h = (h ^ uint64(k.Table[i])) * prime
	}
	h = (h ^ uint64(k.Op)) * prime
	h = (h ^ uint64(uint32(k.Col))) * prime
	h = (h ^ uint64(uint32(k.KeyCol))) * prime
	h = (h ^ k.Row) * prime
	if k.HasPred {
		h = (h ^ uint64(k.Pred.Op+1)) * prime
		h = (h ^ math.Float64bits(k.Pred.Lo)) * prime
		h = (h ^ math.Float64bits(k.Pred.Hi)) * prime
	}
	return &c.shards[h%numShards]
}

// sizeOf estimates an entry's resident bytes. It only needs to be
// proportional and stable, not exact: it bounds memory and prices
// eviction, nothing else.
func sizeOf(k Key, st Stamp, v Value) int64 {
	n := int64(len(k.Table)) + 96
	n += int64(len(st.Frags)) * 16
	n += int64(len(v.Groups)) * 24
	n += int64(len(v.Rec)) * 32
	return n
}

// Lookup consults the cache. cur must be the fragment-version vector
// the caller's current snapshot sees: a stored entry answers only if
// its stamp equals cur (and its TTL, if any, has not lapsed). Stale or
// expired entries are dropped on the spot and counted as stale misses.
func (c *Cache) Lookup(k Key, cur Stamp) (Value, bool) {
	c.lookups.Add(1)
	mLookups.Inc()
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		mMisses.Inc()
		return Value{}, false
	}
	if (!e.expires.IsZero() && time.Now().After(e.expires)) || !e.stamp.Equal(cur) {
		s.removeLocked(e)
		s.mu.Unlock()
		c.entries.Add(-1)
		gEntries.Add(-1)
		c.bytes.Add(-e.bytes)
		gBytes.Add(-e.bytes)
		c.stale.Add(1)
		mStale.Inc()
		c.misses.Add(1)
		mMisses.Inc()
		return Value{}, false
	}
	s.lru.MoveToFront(e.elem)
	v := e.val
	s.mu.Unlock()
	if v.Rec != nil {
		v.Rec = v.Rec.Clone()
	}
	if v.Groups != nil {
		v.Groups = append([]exec.GroupResult(nil), v.Groups...)
	}
	c.hits.Add(1)
	mHits.Inc()
	return v, true
}

// Peek is the serving-path pre-check flavor of Lookup: a hit counts
// (and refreshes the LRU) exactly like Lookup, and a stale entry is
// dropped and counted, but a plain absence counts NOTHING — the caller
// is about to fall through to the executing path, whose own Lookup
// will record the miss, so counting it here would double-book one
// logical query.
func (c *Cache) Peek(k Key, cur Stamp) (Value, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return Value{}, false
	}
	if (!e.expires.IsZero() && time.Now().After(e.expires)) || !e.stamp.Equal(cur) {
		s.removeLocked(e)
		s.mu.Unlock()
		c.entries.Add(-1)
		gEntries.Add(-1)
		c.bytes.Add(-e.bytes)
		gBytes.Add(-e.bytes)
		c.lookups.Add(1)
		mLookups.Inc()
		c.stale.Add(1)
		mStale.Inc()
		c.misses.Add(1)
		mMisses.Inc()
		return Value{}, false
	}
	s.lru.MoveToFront(e.elem)
	v := e.val
	s.mu.Unlock()
	if v.Rec != nil {
		v.Rec = v.Rec.Clone()
	}
	if v.Groups != nil {
		v.Groups = append([]exec.GroupResult(nil), v.Groups...)
	}
	c.lookups.Add(1)
	mLookups.Inc()
	c.hits.Add(1)
	mHits.Inc()
	return v, true
}

// Bypass records a query that consulted the cache but was uncacheable
// (hot MVCC deltas in its snapshot, non-cacheable key). It counts one
// lookup and one miss so the hits + misses == lookups invariant covers
// the whole serving path.
func (c *Cache) Bypass() {
	c.lookups.Add(1)
	mLookups.Inc()
	c.misses.Add(1)
	mMisses.Inc()
}

// Put stores a result computed over the base state st. Oversized
// entries (larger than a full shard budget) are refused rather than
// flushing everything else. The stored Rec is deep-cloned.
func (c *Cache) Put(k Key, st Stamp, v Value) {
	if !k.Cacheable() {
		return
	}
	if v.Rec != nil {
		v.Rec = v.Rec.Clone()
	}
	if v.Groups != nil {
		v.Groups = append([]exec.GroupResult(nil), v.Groups...)
	}
	bytes := sizeOf(k, st, v)
	if bytes > c.capBytes {
		return
	}
	var exp time.Time
	if c.ttl > 0 {
		exp = time.Now().Add(c.ttl)
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		s.removeLocked(old)
		c.entries.Add(-1)
		gEntries.Add(-1)
		c.bytes.Add(-old.bytes)
		gBytes.Add(-old.bytes)
	}
	e := &entry{key: k, stamp: st, val: v, bytes: bytes, expires: exp}
	e.elem = s.lru.PushFront(e)
	s.m[k] = e
	s.bytes += bytes
	var evictedBytes int64
	var evicted int64
	for s.bytes > c.capBytes {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		s.removeLocked(victim)
		evictedBytes += victim.bytes
		evicted++
	}
	s.mu.Unlock()
	c.puts.Add(1)
	mPuts.Inc()
	c.entries.Add(1 - evicted)
	gEntries.Add(1 - evicted)
	c.bytes.Add(bytes - evictedBytes)
	gBytes.Add(bytes - evictedBytes)
	if evicted > 0 {
		c.evictions.Add(evicted)
		mEvictions.Add(evicted)
	}
}

// removeLocked unlinks e from the shard's map, list and byte count.
// Caller holds s.mu and settles the cache-level/global accounting.
func (s *shard) removeLocked(e *entry) {
	delete(s.m, e.key)
	s.lru.Remove(e.elem)
	s.bytes -= e.bytes
}

// Stats snapshots the cache's accounting.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:   c.lookups.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Evictions: c.evictions.Load(),
		Puts:      c.puts.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
	}
}
