package rescache

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"hybridstore/internal/exec"
	"hybridstore/internal/schema"
)

func stamp(rows uint64, frags ...FragVer) Stamp {
	return Stamp{Rows: rows, Frags: frags}
}

func checkInvariant(t *testing.T, c *Cache) {
	t.Helper()
	s := c.Stats()
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("hits(%d) + misses(%d) != lookups(%d)", s.Hits, s.Misses, s.Lookups)
	}
	if s.Stale > s.Misses {
		t.Fatalf("stale(%d) > misses(%d): stale must be a subset of misses", s.Stale, s.Misses)
	}
}

func TestHitRequiresEqualStamp(t *testing.T) {
	c := New(1<<20, 0)
	k := Key{Table: "item", Op: OpSumWhere, Col: 4, Pred: exec.Eq(9.5), HasPred: true}
	st := stamp(100, FragVer{ID: 1, Ver: 0}, FragVer{ID: 2, Ver: 3})

	if _, ok := c.Lookup(k, st); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Put(k, st, Value{Sum: 42.5, Count: 7})

	v, ok := c.Lookup(k, st)
	if !ok {
		t.Fatal("expected hit with equal stamp")
	}
	if v.Sum != 42.5 || v.Count != 7 {
		t.Fatalf("got %+v", v)
	}

	// A version bump anywhere in the vector invalidates.
	bumped := stamp(100, FragVer{ID: 1, Ver: 0}, FragVer{ID: 2, Ver: 4})
	if _, ok := c.Lookup(k, bumped); ok {
		t.Fatal("hit against a bumped fragment version")
	}
	// The stale entry was dropped: even the original stamp misses now.
	if _, ok := c.Lookup(k, st); ok {
		t.Fatal("stale entry was not dropped")
	}

	s := c.Stats()
	if s.Hits != 1 || s.Stale != 1 || s.Misses != 3 || s.Lookups != 4 {
		t.Fatalf("stats %+v", s)
	}
	checkInvariant(t, c)
}

func TestStampEqualDimensions(t *testing.T) {
	base := Stamp{Rows: 10, Epoch: 2, Frags: []FragVer{{1, 0}, {2, 1}}}
	same := Stamp{Rows: 10, Epoch: 2, Frags: []FragVer{{1, 0}, {2, 1}}}
	if !base.Equal(same) {
		t.Fatal("identical stamps unequal")
	}
	for _, o := range []Stamp{
		{Rows: 11, Epoch: 2, Frags: []FragVer{{1, 0}, {2, 1}}}, // rows moved
		{Rows: 10, Epoch: 3, Frags: []FragVer{{1, 0}, {2, 1}}}, // epoch moved
		{Rows: 10, Epoch: 2, Frags: []FragVer{{1, 0}}},         // fragment count
		{Rows: 10, Epoch: 2, Frags: []FragVer{{1, 0}, {3, 1}}}, // replaced ID
		{Rows: 10, Epoch: 2, Frags: []FragVer{{1, 0}, {2, 2}}}, // bumped version
	} {
		if base.Equal(o) {
			t.Fatalf("stamp %+v compared equal to %+v", o, base)
		}
	}
}

func TestTTLExpiryCountsStale(t *testing.T) {
	c := New(1<<20, time.Millisecond)
	k := Key{Table: "t", Op: OpSum, Col: 1}
	st := stamp(5, FragVer{ID: 9, Ver: 0})
	c.Put(k, st, Value{Sum: 1})
	time.Sleep(5 * time.Millisecond)
	if _, ok := c.Lookup(k, st); ok {
		t.Fatal("hit after TTL lapsed")
	}
	s := c.Stats()
	if s.Stale != 1 {
		t.Fatalf("TTL expiry must count stale, got %+v", s)
	}
	checkInvariant(t, c)
}

func TestEvictionBoundsBytes(t *testing.T) {
	// Cap small enough that a few entries overflow a shard. Keys on
	// the same table with different rows spread over shards, so drive
	// one shard deterministically by reusing one key shape with
	// varying predicates... simpler: use a tiny total cap and insert
	// many entries; total bytes must stay under cap and evictions
	// must be counted.
	const cap = 16 << 10
	c := New(cap, 0)
	st := stamp(1, FragVer{ID: 1, Ver: 0})
	for i := 0; i < 4096; i++ {
		k := Key{Table: "t", Op: OpGet, Row: uint64(i)}
		c.Put(k, st, Value{Rec: schema.Record{schema.FloatValue(float64(i))}})
	}
	s := c.Stats()
	if s.Bytes > cap {
		t.Fatalf("resident bytes %d exceed cap %d", s.Bytes, cap)
	}
	if s.Evictions == 0 {
		t.Fatal("expected evictions under a tiny cap")
	}
	if s.Entries <= 0 {
		t.Fatalf("entries gauge %d", s.Entries)
	}
	// LRU: the most recently inserted key must still be resident.
	if _, ok := c.Lookup(Key{Table: "t", Op: OpGet, Row: 4095}, st); !ok {
		t.Fatal("most recent entry was evicted")
	}
	checkInvariant(t, c)
}

func TestPutReplaceSameKey(t *testing.T) {
	c := New(1<<20, 0)
	k := Key{Table: "t", Op: OpSum, Col: 2}
	st1 := stamp(10, FragVer{ID: 1, Ver: 0})
	st2 := stamp(11, FragVer{ID: 1, Ver: 1})
	c.Put(k, st1, Value{Sum: 1})
	c.Put(k, st2, Value{Sum: 2})
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("replace left %d entries", s.Entries)
	}
	v, ok := c.Lookup(k, st2)
	if !ok || v.Sum != 2 {
		t.Fatalf("got %+v ok=%v, want the replacement", v, ok)
	}
	if _, ok := c.Lookup(k, st1); ok {
		t.Fatal("old stamp still answers after replace")
	}
	checkInvariant(t, c)
}

func TestBypassAccounting(t *testing.T) {
	c := New(1<<20, 0)
	c.Bypass()
	c.Bypass()
	s := c.Stats()
	if s.Lookups != 2 || s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats %+v", s)
	}
	checkInvariant(t, c)
}

func TestNaNPredicateRefused(t *testing.T) {
	c := New(1<<20, 0)
	k := Key{Table: "t", Op: OpSumWhere, Col: 1, Pred: exec.Pred[float64]{Op: exec.OpBetween, Lo: math.NaN(), Hi: 1}, HasPred: true}
	if k.Cacheable() {
		t.Fatal("NaN-bounded key reported cacheable")
	}
	c.Put(k, stamp(1, FragVer{ID: 1, Ver: 0}), Value{Sum: 1})
	if s := c.Stats(); s.Puts != 0 || s.Entries != 0 {
		t.Fatalf("NaN key was stored: %+v", s)
	}
}

func TestRecordsDoNotAlias(t *testing.T) {
	c := New(1<<20, 0)
	k := Key{Table: "t", Op: OpGet, Row: 3}
	st := stamp(4, FragVer{ID: 1, Ver: 0})
	rec := schema.Record{schema.FloatValue(1.5)}
	c.Put(k, st, Value{Rec: rec})
	rec[0] = schema.FloatValue(-9) // caller scribbles on its copy after Put

	got, ok := c.Lookup(k, st)
	if !ok {
		t.Fatal("miss")
	}
	if got.Rec[0] != schema.FloatValue(1.5) {
		t.Fatalf("cached record aliased the caller's slice: %v", got.Rec)
	}
	got.Rec[0] = schema.FloatValue(-7) // reader scribbles on its copy

	again, ok := c.Lookup(k, st)
	if !ok || again.Rec[0] != schema.FloatValue(1.5) {
		t.Fatalf("cached record aliased a reader's copy: %v ok=%v", again.Rec, ok)
	}
}

func TestOversizedEntryRefused(t *testing.T) {
	c := New(1024, 0) // 64 B per shard
	groups := make([]exec.GroupResult, 1024)
	c.Put(Key{Table: "t", Op: OpGroupSum, Col: 1}, stamp(1), Value{Groups: groups})
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("oversized entry stored: %+v", s)
	}
}

func TestPeekAccounting(t *testing.T) {
	c := New(1<<20, 0)
	k := Key{Table: "item", Op: OpSum, Col: 2}
	st := stamp(10, FragVer{ID: 1, Ver: 1})

	// Plain absence counts NOTHING: the caller falls through to the
	// executing path, whose own Lookup records the one logical miss.
	if _, ok := c.Peek(k, st); ok {
		t.Fatal("peek on empty cache hit")
	}
	if s := c.Stats(); s.Lookups != 0 || s.Misses != 0 {
		t.Fatalf("absence was counted: %+v", s)
	}

	c.Put(k, st, Value{Sum: 5})
	v, ok := c.Peek(k, st)
	if !ok || v.Sum != 5 {
		t.Fatalf("peek hit: ok=%v v=%+v", ok, v)
	}
	if s := c.Stats(); s.Lookups != 1 || s.Hits != 1 {
		t.Fatalf("hit not counted: %+v", s)
	}

	// A stale entry IS counted (and dropped): the executing path will
	// recompute without another cache probe for this logical query.
	bumped := stamp(10, FragVer{ID: 1, Ver: 2})
	if _, ok := c.Peek(k, bumped); ok {
		t.Fatal("peek hit a stale entry")
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Stale != 1 {
		t.Fatalf("stale peek accounting: %+v", s)
	}
	if s.Entries != 0 {
		t.Fatalf("stale entry not dropped: %+v", s)
	}
	checkInvariant(t, c)
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(256<<10, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Table: fmt.Sprintf("t%d", i%7), Op: OpSumWhere, Col: i % 3,
					Pred: exec.Gt(float64(i % 11)), HasPred: true}
				st := stamp(uint64(i%13), FragVer{ID: uint64(i % 5), Ver: uint64(i % 2)})
				if v, ok := c.Lookup(k, st); ok {
					if v.Sum != float64(i%11)+1 {
						// A different stamp generation may have stored a
						// different sum — but only under a different stamp,
						// and Lookup matched ours, so the sum is pinned.
						t.Errorf("worker %d: hit returned %v for pred %v", w, v.Sum, k.Pred)
						return
					}
				} else {
					c.Put(k, st, Value{Sum: float64(i%11) + 1})
				}
				if i%17 == 0 {
					c.Bypass()
				}
			}
		}(w)
	}
	wg.Wait()
	checkInvariant(t, c)
}
