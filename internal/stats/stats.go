// Package stats implements per-fragment, per-column small materialized
// aggregates — zone maps — for the data-skipping layer (paper Section
// II-B: the crossovers are byte-volume driven, so the cheapest bytes are
// the ones never touched). A Zone tracks the minimum, maximum and count
// of one 8-byte numeric column of one fragment. Zones are maintained
// incrementally as tuplets are appended, widen conservatively on
// in-place updates, and are sealed — recomputed to exact bounds — when a
// fragment freezes (core hot→cold, HyPer cold compaction, L-Store base
// merge).
//
// A zone is always a conservative envelope: the true value range of the
// column is contained in [Min, Max] whenever the zone is valid. Pruning
// with a conservative envelope can only err on the side of scanning, so
// predicate evaluation stays exact.
package stats

// Kind tags the element type a Zone summarizes. Only the 8-byte numeric
// kinds participate in data skipping; other columns carry no zone.
type Kind uint8

// Zone element kinds.
const (
	// Int64 summarizes signed 8-byte integers.
	Int64 Kind = iota
	// Float64 summarizes IEEE-754 doubles.
	Float64
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	default:
		return "Kind(?)"
	}
}

// Zone is the min/max/count envelope of one column of one fragment.
// The zero value is not usable; construct with NewZone. Zones are not
// internally synchronized: they share the owning fragment's locking
// discipline.
type Zone struct {
	kind    Kind
	count   int64
	minI    int64
	maxI    int64
	minF    float64
	maxF    float64
	sealed  bool
	invalid bool
}

// NewZone returns an empty, valid, unsealed zone for the given kind.
func NewZone(k Kind) *Zone {
	z := &Zone{kind: k}
	z.Reset()
	return z
}

// Kind returns the element kind the zone summarizes.
func (z *Zone) Kind() Kind { return z.kind }

// Count returns the number of observed values.
func (z *Zone) Count() int64 { return z.count }

// Sealed reports whether the bounds are exact (recomputed at a freeze
// point and not widened since).
func (z *Zone) Sealed() bool { return z.sealed }

// Valid reports whether the envelope can be trusted for pruning. A zone
// turns invalid when its fragment's bytes are rewritten wholesale (e.g.
// SetLen after a raw transfer) and becomes valid again on Reset/Seal.
func (z *Zone) Valid() bool { return !z.invalid }

// Reset empties the zone: valid, unsealed, no observations.
func (z *Zone) Reset() {
	z.count = 0
	z.sealed = false
	z.invalid = false
	z.minI, z.maxI = 0, 0
	z.minF, z.maxF = 0, 0
}

// Invalidate marks the envelope untrustworthy until the next Reset or
// Seal. Pruning must treat invalid zones as "may contain anything".
func (z *Zone) Invalidate() {
	z.invalid = true
	z.sealed = false
}

// MarkSealed records that the current bounds are exact. Callers (the
// freeze points) must have recomputed the envelope from the stored
// bytes immediately before.
func (z *Zone) MarkSealed() {
	if !z.invalid {
		z.sealed = true
	}
}

// ObserveInt64 widens the envelope with one appended or updated value.
// Widening after sealing clears the sealed flag (the bounds stay
// conservative but may no longer be tight).
func (z *Zone) ObserveInt64(x int64) {
	if z.count == 0 {
		z.minI, z.maxI = x, x
	} else {
		if x < z.minI {
			z.minI = x
		}
		if x > z.maxI {
			z.maxI = x
		}
		if z.sealed {
			z.sealed = false
		}
	}
	z.count++
}

// ObserveFloat64 is ObserveInt64 for doubles. NaNs invalidate the zone:
// a NaN is outside every interval, so no finite envelope can stay
// conservative for equality/range predicates over it.
func (z *Zone) ObserveFloat64(x float64) {
	if x != x { // NaN
		z.Invalidate()
		z.count++
		return
	}
	if z.count == 0 {
		z.minF, z.maxF = x, x
	} else {
		if x < z.minF {
			z.minF = x
		}
		if x > z.maxF {
			z.maxF = x
		}
		if z.sealed {
			z.sealed = false
		}
	}
	z.count++
}

// WidenInt64 widens the envelope for an in-place overwrite: the old
// value may or may not still be present elsewhere, so the envelope can
// only grow and the count stays put. Clears the sealed flag — after an
// update the bounds are conservative, not necessarily tight.
func (z *Zone) WidenInt64(x int64) {
	if z.invalid {
		return
	}
	z.sealed = false
	if z.count == 0 {
		return
	}
	if x < z.minI {
		z.minI = x
	}
	if x > z.maxI {
		z.maxI = x
	}
}

// WidenFloat64 is WidenInt64 for doubles; NaNs invalidate.
func (z *Zone) WidenFloat64(x float64) {
	if z.invalid {
		return
	}
	if x != x { // NaN
		z.Invalidate()
		return
	}
	z.sealed = false
	if z.count == 0 {
		return
	}
	if x < z.minF {
		z.minF = x
	}
	if x > z.maxF {
		z.maxF = x
	}
}

// Int64Bounds returns the envelope for an int64 zone. ok is false when
// the zone is invalid, empty, or of the wrong kind — callers must then
// scan unconditionally.
func (z *Zone) Int64Bounds() (min, max int64, ok bool) {
	if z == nil || z.invalid || z.count == 0 || z.kind != Int64 {
		return 0, 0, false
	}
	return z.minI, z.maxI, true
}

// Float64Bounds returns the envelope for a float64 zone; see
// Int64Bounds for the ok contract.
func (z *Zone) Float64Bounds() (min, max float64, ok bool) {
	if z == nil || z.invalid || z.count == 0 || z.kind != Float64 {
		return 0, 0, false
	}
	return z.minF, z.maxF, true
}

// Clone returns an independent copy (used when fragments are cloned
// across memory spaces).
func (z *Zone) Clone() *Zone {
	if z == nil {
		return nil
	}
	c := *z
	return &c
}
