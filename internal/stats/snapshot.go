package stats

// Snapshot is the exported image of a Zone, used by checkpoint files to
// persist sealed envelopes so a warm restart re-seals nothing: the
// restored zone carries the exact bounds (and the sealed bit) the
// freeze point computed before the crash.
type Snapshot struct {
	// Kind is the summarized element kind.
	Kind Kind
	// Count is the number of observed values.
	Count int64
	// MinI/MaxI are the int64 bounds (Kind == Int64).
	MinI, MaxI int64
	// MinF/MaxF are the float64 bounds (Kind == Float64).
	MinF, MaxF float64
	// Sealed records that the bounds were exact at snapshot time.
	Sealed bool
	// Invalid records an untrustworthy envelope (restored as-is: pruning
	// keeps treating it as "may contain anything").
	Invalid bool
}

// Snapshot exports the zone's state.
func (z *Zone) Snapshot() Snapshot {
	return Snapshot{
		Kind:  z.kind,
		Count: z.count,
		MinI:  z.minI, MaxI: z.maxI,
		MinF: z.minF, MaxF: z.maxF,
		Sealed:  z.sealed,
		Invalid: z.invalid,
	}
}

// FromSnapshot rebuilds a zone bit-identical to the one Snapshot
// exported — including its sealed flag, which is the whole point: a
// restored frozen fragment must not need a re-seal pass.
func FromSnapshot(s Snapshot) *Zone {
	return &Zone{
		kind:  s.Kind,
		count: s.Count,
		minI:  s.MinI, maxI: s.MaxI,
		minF: s.MinF, maxF: s.MaxF,
		sealed:  s.Sealed,
		invalid: s.Invalid,
	}
}
