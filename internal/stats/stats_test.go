package stats

import (
	"math"
	"testing"
)

func TestPruneZoneObserveAndBounds(t *testing.T) {
	z := NewZone(Float64)
	if _, _, ok := z.Float64Bounds(); ok {
		t.Fatal("empty zone must not expose bounds")
	}
	for _, x := range []float64{3, -1, 7, 2} {
		z.ObserveFloat64(x)
	}
	min, max, ok := z.Float64Bounds()
	if !ok || min != -1 || max != 7 {
		t.Fatalf("bounds = (%g,%g,%v), want (-1,7,true)", min, max, ok)
	}
	if z.Count() != 4 {
		t.Fatalf("count = %d, want 4", z.Count())
	}
	if _, _, ok := z.Int64Bounds(); ok {
		t.Fatal("float64 zone must not answer int64 bounds")
	}

	zi := NewZone(Int64)
	for _, x := range []int64{5, -9, 5} {
		zi.ObserveInt64(x)
	}
	imin, imax, ok := zi.Int64Bounds()
	if !ok || imin != -9 || imax != 5 {
		t.Fatalf("int bounds = (%d,%d,%v), want (-9,5,true)", imin, imax, ok)
	}
}

func TestPruneZoneSealAndWiden(t *testing.T) {
	z := NewZone(Int64)
	z.ObserveInt64(1)
	z.ObserveInt64(10)
	z.MarkSealed()
	if !z.Sealed() {
		t.Fatal("zone should be sealed")
	}
	// Widening outside the envelope clears the sealed flag but keeps
	// conservative bounds.
	z.ObserveInt64(42)
	if z.Sealed() {
		t.Fatal("widening must unseal")
	}
	min, max, ok := z.Int64Bounds()
	if !ok || min != 1 || max != 42 {
		t.Fatalf("bounds = (%d,%d,%v), want (1,42,true)", min, max, ok)
	}
}

func TestPruneZoneInvalidate(t *testing.T) {
	z := NewZone(Float64)
	z.ObserveFloat64(1)
	z.Invalidate()
	if z.Valid() {
		t.Fatal("invalidated zone reports valid")
	}
	if _, _, ok := z.Float64Bounds(); ok {
		t.Fatal("invalid zone must not expose bounds")
	}
	z.Reset()
	if !z.Valid() || z.Count() != 0 {
		t.Fatal("reset must restore an empty valid zone")
	}
}

func TestPruneZoneNaNInvalidates(t *testing.T) {
	z := NewZone(Float64)
	z.ObserveFloat64(1)
	z.ObserveFloat64(math.NaN())
	if _, _, ok := z.Float64Bounds(); ok {
		t.Fatal("NaN observation must invalidate the envelope")
	}
}

func TestPruneZoneClone(t *testing.T) {
	z := NewZone(Int64)
	z.ObserveInt64(3)
	z.MarkSealed()
	c := z.Clone()
	c.ObserveInt64(100)
	if min, max, _ := z.Int64Bounds(); min != 3 || max != 3 {
		t.Fatalf("clone mutated original: (%d,%d)", min, max)
	}
	if !z.Sealed() || c.Sealed() {
		t.Fatal("sealed flags should be independent")
	}
	var nilZone *Zone
	if nilZone.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
	if _, _, ok := nilZone.Int64Bounds(); ok {
		t.Fatal("nil zone must not expose bounds")
	}
}
