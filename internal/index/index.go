// Package index provides the access paths record-centric queries resolve
// through. The paper's query Q1 — SELECT * FROM R WHERE pk = c — relies
// on the system "efficiently identify[ing] exactly one record without
// scanning the entire relation" (Section II-A); ES² manages record-
// centric access with distributed secondary indexes (Section IV-A.4).
//
// Two structures are implemented from scratch:
//
//   - Hash: an open-addressing hash table with linear probing and
//     tombstone deletion, mapping int64 keys to row positions — the
//     write-optimized index maintained on every insert.
//   - Sorted: an immutable sorted (key, row) run with binary search and
//     range scans — the read-optimized index merge passes rebuild.
package index

import (
	"errors"
	"fmt"
	"sort"
)

// Index errors.
var (
	// ErrNotFound is returned when a key has no entry.
	ErrNotFound = errors.New("index: key not found")
	// ErrDuplicate is returned when inserting an existing key.
	ErrDuplicate = errors.New("index: duplicate key")
)

// slotState tags hash slots.
type slotState uint8

const (
	empty slotState = iota
	occupied
	tombstone
)

// slot is one hash bucket.
type slot struct {
	state slotState
	key   int64
	row   uint64
}

// Hash is an open-addressing hash index from int64 keys to row positions.
// Not safe for concurrent mutation.
type Hash struct {
	slots []slot
	n     int // live entries
	used  int // live + tombstones
}

// NewHash creates an index with the given initial capacity hint.
func NewHash(capacity int) *Hash {
	size := 16
	for size < capacity*2 {
		size *= 2
	}
	return &Hash{slots: make([]slot, size)}
}

// Len returns the number of live entries.
func (h *Hash) Len() int { return h.n }

// hash mixes the key (Fibonacci hashing over the table size).
func (h *Hash) hash(k int64) int {
	x := uint64(k) * 0x9E3779B97F4A7C15
	return int(x & uint64(len(h.slots)-1))
}

// Put inserts key → row; ErrDuplicate if the key exists.
func (h *Hash) Put(key int64, row uint64) error {
	if h.used*10 >= len(h.slots)*7 {
		h.grow()
	}
	i := h.hash(key)
	firstTomb := -1
	for {
		s := &h.slots[i]
		switch s.state {
		case empty:
			if firstTomb >= 0 {
				s = &h.slots[firstTomb]
			} else {
				h.used++
			}
			s.state, s.key, s.row = occupied, key, row
			h.n++
			return nil
		case tombstone:
			if firstTomb < 0 {
				firstTomb = i
			}
		case occupied:
			if s.key == key {
				return fmt.Errorf("%w: %d", ErrDuplicate, key)
			}
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

// Get returns the row of key.
func (h *Hash) Get(key int64) (uint64, error) {
	i := h.hash(key)
	for {
		s := &h.slots[i]
		switch s.state {
		case empty:
			return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
		case occupied:
			if s.key == key {
				return s.row, nil
			}
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

// Update re-points an existing key to a new row.
func (h *Hash) Update(key int64, row uint64) error {
	i := h.hash(key)
	for {
		s := &h.slots[i]
		switch s.state {
		case empty:
			return fmt.Errorf("%w: %d", ErrNotFound, key)
		case occupied:
			if s.key == key {
				s.row = row
				return nil
			}
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

// Delete removes key, leaving a tombstone.
func (h *Hash) Delete(key int64) error {
	i := h.hash(key)
	for {
		s := &h.slots[i]
		switch s.state {
		case empty:
			return fmt.Errorf("%w: %d", ErrNotFound, key)
		case occupied:
			if s.key == key {
				s.state = tombstone
				h.n--
				return nil
			}
		}
		i = (i + 1) & (len(h.slots) - 1)
	}
}

// grow doubles the table and rehashes live entries (dropping tombstones).
func (h *Hash) grow() {
	old := h.slots
	h.slots = make([]slot, len(old)*2)
	h.n, h.used = 0, 0
	for _, s := range old {
		if s.state == occupied {
			// Safe: capacity doubled, no duplicates among live entries.
			_ = h.Put(s.key, s.row)
		}
	}
}

// Entry is one (key, row) pair of a sorted index.
type Entry struct {
	Key int64
	Row uint64
}

// Sorted is an immutable read-optimized index: a sorted run of entries
// with binary-search lookups and range scans. Build it from the settled
// region during merge passes.
type Sorted struct {
	entries []Entry
}

// NewSorted sorts and stores the entries (duplicates by key are allowed;
// Lookup returns the first).
func NewSorted(entries []Entry) *Sorted {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Key != es[j].Key {
			return es[i].Key < es[j].Key
		}
		return es[i].Row < es[j].Row
	})
	return &Sorted{entries: es}
}

// Len returns the entry count.
func (s *Sorted) Len() int { return len(s.entries) }

// Lookup returns the row of the first entry with the given key.
func (s *Sorted) Lookup(key int64) (uint64, error) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Key >= key })
	if i == len(s.entries) || s.entries[i].Key != key {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	return s.entries[i].Row, nil
}

// Range streams every entry with lo <= key <= hi in key order.
func (s *Sorted) Range(lo, hi int64, fn func(Entry) bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Key >= lo })
	for ; i < len(s.entries) && s.entries[i].Key <= hi; i++ {
		if !fn(s.entries[i]) {
			return
		}
	}
}
