package index

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashPutGet(t *testing.T) {
	h := NewHash(4)
	for i := int64(0); i < 100; i++ {
		if err := h.Put(i*7, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := int64(0); i < 100; i++ {
		row, err := h.Get(i * 7)
		if err != nil || row != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v", i*7, row, err)
		}
	}
	if _, err := h.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestHashDuplicate(t *testing.T) {
	h := NewHash(4)
	h.Put(1, 1)
	if err := h.Put(1, 2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	row, _ := h.Get(1)
	if row != 1 {
		t.Fatal("duplicate overwrote")
	}
}

func TestHashUpdate(t *testing.T) {
	h := NewHash(4)
	h.Put(5, 10)
	if err := h.Update(5, 99); err != nil {
		t.Fatal(err)
	}
	row, _ := h.Get(5)
	if row != 99 {
		t.Fatalf("row = %d", row)
	}
	if err := h.Update(6, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestHashDeleteAndTombstoneReuse(t *testing.T) {
	h := NewHash(4)
	for i := int64(0); i < 50; i++ {
		h.Put(i, uint64(i))
	}
	for i := int64(0); i < 50; i += 2 {
		if err := h.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 25 {
		t.Fatalf("Len = %d", h.Len())
	}
	for i := int64(0); i < 50; i++ {
		_, err := h.Get(i)
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still found", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	// Re-insert into tombstones.
	for i := int64(0); i < 50; i += 2 {
		if err := h.Put(i, uint64(i+1000)); err != nil {
			t.Fatal(err)
		}
	}
	row, err := h.Get(4)
	if err != nil || row != 1004 {
		t.Fatalf("reused slot = %d, %v", row, err)
	}
	if err := h.Delete(9999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestHashGrowthKeepsEverything(t *testing.T) {
	h := NewHash(0)
	const n = 10_000
	for i := int64(0); i < n; i++ {
		if err := h.Put(i*13+7, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i++ {
		row, err := h.Get(i*13 + 7)
		if err != nil || row != uint64(i) {
			t.Fatalf("after growth Get(%d) = %d, %v", i*13+7, row, err)
		}
	}
}

func TestSortedLookupAndRange(t *testing.T) {
	s := NewSorted([]Entry{{5, 50}, {1, 10}, {3, 30}, {9, 90}, {3, 31}})
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	row, err := s.Lookup(3)
	if err != nil || row != 30 {
		t.Fatalf("Lookup(3) = %d, %v (first wins)", row, err)
	}
	if _, err := s.Lookup(4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	var got []int64
	s.Range(2, 5, func(e Entry) bool {
		got = append(got, e.Key)
		return true
	})
	want := []int64{3, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.Range(0, 100, func(Entry) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

// Property: the hash index agrees with a model map under random
// put/get/update/delete sequences.
func TestQuickHashModel(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHash(2)
		model := map[int64]uint64{}
		ops := int(opsRaw)%2000 + 10
		for i := 0; i < ops; i++ {
			k := int64(r.Intn(200))
			switch r.Intn(4) {
			case 0:
				err := h.Put(k, uint64(i))
				if _, exists := model[k]; exists != errors.Is(err, ErrDuplicate) {
					return false
				}
				if err == nil {
					model[k] = uint64(i)
				}
			case 1:
				row, err := h.Get(k)
				want, exists := model[k]
				if exists != (err == nil) || (exists && row != want) {
					return false
				}
			case 2:
				err := h.Update(k, uint64(i))
				if _, exists := model[k]; exists != (err == nil) {
					return false
				}
				if err == nil {
					model[k] = uint64(i)
				}
			case 3:
				err := h.Delete(k)
				if _, exists := model[k]; exists != (err == nil) {
					return false
				}
				delete(model, k)
			}
		}
		return h.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sorted.Lookup finds every inserted key and Range visits keys
// in order.
func TestQuickSortedOrder(t *testing.T) {
	f := func(keys []int64) bool {
		entries := make([]Entry, len(keys))
		for i, k := range keys {
			entries[i] = Entry{Key: k, Row: uint64(i)}
		}
		s := NewSorted(entries)
		for _, k := range keys {
			if _, err := s.Lookup(k); err != nil {
				return false
			}
		}
		prev := int64(-1 << 62)
		ok := true
		s.Range(-1<<62, 1<<62-1, func(e Entry) bool {
			if e.Key < prev {
				ok = false
				return false
			}
			prev = e.Key
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
