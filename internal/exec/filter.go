package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hybridstore/internal/exec/pool"
	"hybridstore/internal/layout"
)

// SelectFloat64 scans a float64 column view and returns the sorted global
// positions whose value satisfies pred. Selections feed the position
// lists that record-centric operators consume (the paper measures
// materialization "right after the output — sorted position lists — of
// the last preceding join operator is available"; selection is the
// equivalent producer in this library).
func SelectFloat64(cfg Config, pieces []Piece, pred func(float64) bool) ([]uint64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return nil, fmt.Errorf("%w: float64 selection over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	if err := rejectComp(pieces, "float64 selection"); err != nil {
		return nil, err
	}
	ot := obsSelect.start(cfg.Policy)
	out := selectPositions(cfg, pieces, func(buf []uint64, gFrom, gTo int) []uint64 {
		return scanMatchesF64(buf, pieces, gFrom, gTo, pred)
	})
	cfg.chargeScan(pieces)
	ot.end()
	return out, nil
}

// SelectInt64 is SelectFloat64 for int64 columns.
func SelectInt64(cfg Config, pieces []Piece, pred func(int64) bool) ([]uint64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return nil, fmt.Errorf("%w: int64 selection over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	if err := rejectComp(pieces, "int64 selection"); err != nil {
		return nil, err
	}
	ot := obsSelect.start(cfg.Policy)
	out := selectPositions(cfg, pieces, func(buf []uint64, gFrom, gTo int) []uint64 {
		return scanMatchesI64(buf, pieces, gFrom, gTo, pred)
	})
	cfg.chargeScan(pieces)
	ot.end()
	return out, nil
}

// scanMatchesF64 appends the global positions in pieces' local range
// [gFrom, gTo) whose float64 field satisfies pred, reusing buf's
// capacity. The contiguous stride-8 case re-slices to a dense byte run
// and decodes inline, so only the caller's predicate — not an
// additional per-row decode closure — runs per element.
func scanMatchesF64(buf []uint64, pieces []Piece, gFrom, gTo int, pred func(float64) bool) []uint64 {
	eachRange(pieces, gFrom, gTo, func(p Piece, from, to int) {
		v := p.Vec
		if v.Stride == 8 {
			data := v.Data[v.Base+from*8 : v.Base+to*8]
			base := p.Rows.Begin + uint64(from)
			for i := 0; i+8 <= len(data); i += 8 {
				if pred(math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))) {
					buf = append(buf, base+uint64(i>>3))
				}
			}
			return
		}
		off := v.Base + from*v.Stride
		for i := from; i < to; i++ {
			if pred(math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))) {
				buf = append(buf, p.Rows.Begin+uint64(i))
			}
			off += v.Stride
		}
	})
	return buf
}

// scanMatchesI64 is scanMatchesF64 for int64 columns.
func scanMatchesI64(buf []uint64, pieces []Piece, gFrom, gTo int, pred func(int64) bool) []uint64 {
	eachRange(pieces, gFrom, gTo, func(p Piece, from, to int) {
		v := p.Vec
		if v.Stride == 8 {
			data := v.Data[v.Base+from*8 : v.Base+to*8]
			base := p.Rows.Begin + uint64(from)
			for i := 0; i+8 <= len(data); i += 8 {
				if pred(int64(binary.LittleEndian.Uint64(data[i:]))) {
					buf = append(buf, base+uint64(i>>3))
				}
			}
			return
		}
		off := v.Base + from*v.Stride
		for i := from; i < to; i++ {
			if pred(int64(binary.LittleEndian.Uint64(v.Data[off:]))) {
				buf = append(buf, p.Rows.Begin+uint64(i))
			}
			off += v.Stride
		}
	})
	return buf
}

// selectPositionsInto runs a selection under the configured policy and
// returns the matches in a pooled buffer (the caller owns it and must
// eventually PutPositions or wrap it in a SelVec). The parallel paths
// partition the global position space (blockwise or in morsels),
// collect per-partition matches into recycled buffers, and merge them
// in global order, so the concatenation is already sorted.
func selectPositionsInto(cfg Config, pieces []Piece, scan func(buf []uint64, gFrom, gTo int) []uint64) []uint64 {
	total := totalLen(pieces)
	if total == 0 {
		return nil
	}
	switch cfg.Policy {
	case MorselDriven:
		msize := pool.MorselSize()
		if total <= msize {
			return scan(pool.GetPositions(), 0, total)
		}
		slots := pool.Slots()
		parts := make([][]uint64, pool.Morsels(total, msize))
		pool.Run(total, msize, slots, func(_, from, to int) {
			parts[from/msize] = scan(pool.GetPositions(), from, to)
		})
		return mergeParts(parts)
	case MultiThreaded:
		th := cfg.threads()
		if th == 1 {
			return scan(pool.GetPositions(), 0, total)
		}
		parts := make([][]uint64, th)
		var wg sync.WaitGroup
		for w := 0; w < th; w++ {
			gFrom, gTo := blockRange(w, th, total)
			if gFrom >= gTo {
				break
			}
			wg.Add(1)
			go func(w, gFrom, gTo int) {
				defer wg.Done()
				parts[w] = scan(pool.GetPositions(), gFrom, gTo)
			}(w, gFrom, gTo)
		}
		wg.Wait()
		return mergeParts(parts)
	default:
		return scan(pool.GetPositions(), 0, total)
	}
}

// selectPositions is selectPositionsInto for callers that hand the
// position list to the user: the result is an exactly-sized private
// slice and the (possibly append-grown, oversized) scan buffer goes
// back to the pool. Previously the single-threaded path returned the
// scan buffer itself, so a high-selectivity scan stranded up to 2× its
// match count in unreachable capacity and the pool never saw the grown
// buffer again.
func selectPositions(cfg Config, pieces []Piece, scan func(buf []uint64, gFrom, gTo int) []uint64) []uint64 {
	buf := selectPositionsInto(cfg, pieces, scan)
	if len(buf) == 0 {
		pool.PutPositions(buf)
		return nil
	}
	out := make([]uint64, len(buf))
	copy(out, buf)
	pool.PutPositions(buf)
	return out
}

// mergeParts concatenates ordered per-partition position lists into one
// pooled buffer and recycles the partition buffers.
func mergeParts(parts [][]uint64) []uint64 {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		for _, p := range parts {
			pool.PutPositions(p)
		}
		return nil
	}
	out := pool.GetPositionsCap(n)
	for _, p := range parts {
		out = append(out, p...)
		pool.PutPositions(p)
	}
	return out
}

// CountFloat64 counts the elements satisfying pred without building a
// position list.
func CountFloat64(cfg Config, pieces []Piece, pred func(float64) bool) (int64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return 0, fmt.Errorf("%w: float64 count over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	if err := rejectComp(pieces, "float64 count"); err != nil {
		return 0, err
	}
	ot := obsCount.start(cfg.Policy)
	n := int64(parallelSum(cfg, pieces, func(v layout.ColVector, from, to int) float64 {
		var c int64
		off := v.Base + from*v.Stride
		for i := from; i < to; i++ {
			if pred(math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))) {
				c++
			}
			off += v.Stride
		}
		return float64(c)
	}))
	cfg.chargeScan(pieces)
	ot.end()
	return n, nil
}

// MinMaxFloat64 returns the minimum and maximum of a float64 column view.
// It returns ok=false for an empty view.
func MinMaxFloat64(cfg Config, pieces []Piece) (min, max float64, ok bool, err error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return 0, 0, false, fmt.Errorf("%w: float64 minmax over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	if err := rejectComp(pieces, "float64 minmax"); err != nil {
		return 0, 0, false, err
	}
	ot := obsMinMax.start(cfg.Policy)
	total := totalLen(pieces)
	if total == 0 {
		cfg.chargeScan(pieces)
		ot.end()
		return 0, 0, false, nil
	}
	extreme := func(v layout.ColVector, from, to int, lo, hi *float64) {
		off := v.Base + from*v.Stride
		for i := from; i < to; i++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))
			if x < *lo {
				*lo = x
			}
			if x > *hi {
				*hi = x
			}
			off += v.Stride
		}
	}
	min, max = math.Inf(1), math.Inf(-1)
	switch cfg.Policy {
	case MorselDriven:
		slots := pool.Slots()
		lows, highs := pool.GetFloat64s(slots), pool.GetFloat64s(slots)
		for i := 0; i < slots; i++ {
			lows[i], highs[i] = math.Inf(1), math.Inf(-1)
		}
		pool.Run(total, pool.MorselSize(), slots, func(slot, from, to int) {
			eachRange(pieces, from, to, func(p Piece, a, b int) {
				extreme(p.Vec, a, b, &lows[slot], &highs[slot])
			})
		})
		for i := 0; i < slots; i++ {
			if lows[i] < min {
				min = lows[i]
			}
			if highs[i] > max {
				max = highs[i]
			}
		}
		pool.PutFloat64s(lows)
		pool.PutFloat64s(highs)
	case MultiThreaded:
		th := cfg.threads()
		if th == 1 {
			for _, p := range pieces {
				extreme(p.Vec, 0, p.Vec.Len, &min, &max)
			}
			break
		}
		lows, highs := pool.GetFloat64s(th), pool.GetFloat64s(th)
		for i := 0; i < th; i++ {
			lows[i], highs[i] = math.Inf(1), math.Inf(-1)
		}
		var wg sync.WaitGroup
		for w := 0; w < th; w++ {
			gFrom, gTo := blockRange(w, th, total)
			if gFrom >= gTo {
				break
			}
			wg.Add(1)
			go func(w, gFrom, gTo int) {
				defer wg.Done()
				eachRange(pieces, gFrom, gTo, func(p Piece, a, b int) {
					extreme(p.Vec, a, b, &lows[w], &highs[w])
				})
			}(w, gFrom, gTo)
		}
		wg.Wait()
		for i := 0; i < th; i++ {
			if lows[i] < min {
				min = lows[i]
			}
			if highs[i] > max {
				max = highs[i]
			}
		}
		pool.PutFloat64s(lows)
		pool.PutFloat64s(highs)
	default:
		for _, p := range pieces {
			extreme(p.Vec, 0, p.Vec.Len, &min, &max)
		}
	}
	cfg.chargeScan(pieces)
	ot.end()
	return min, max, true, nil
}
