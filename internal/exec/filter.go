package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
)

// SelectFloat64 scans a float64 column view and returns the sorted global
// positions whose value satisfies pred. Selections feed the position
// lists that record-centric operators consume (the paper measures
// materialization "right after the output — sorted position lists — of
// the last preceding join operator is available"; selection is the
// equivalent producer in this library).
func SelectFloat64(cfg Config, pieces []Piece, pred func(float64) bool) ([]uint64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return nil, fmt.Errorf("%w: float64 selection over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	th := cfg.threads()
	var out []uint64
	if th == 1 {
		for _, p := range pieces {
			v := p.Vec
			off := v.Base
			for i := 0; i < v.Len; i++ {
				if pred(math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))) {
					out = append(out, p.Rows.Begin+uint64(i))
				}
				off += v.Stride
			}
		}
	} else {
		parts := make([][]uint64, len(pieces))
		var wg sync.WaitGroup
		for pi := range pieces {
			wg.Add(1)
			go func(pi int) {
				defer wg.Done()
				p := pieces[pi]
				v := p.Vec
				off := v.Base
				for i := 0; i < v.Len; i++ {
					if pred(math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))) {
						parts[pi] = append(parts[pi], p.Rows.Begin+uint64(i))
					}
					off += v.Stride
				}
			}(pi)
		}
		wg.Wait()
		for _, part := range parts {
			out = append(out, part...)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	cfg.chargeScan(pieces)
	return out, nil
}

// SelectInt64 is SelectFloat64 for int64 columns.
func SelectInt64(cfg Config, pieces []Piece, pred func(int64) bool) ([]uint64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return nil, fmt.Errorf("%w: int64 selection over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	var out []uint64
	for _, p := range pieces {
		v := p.Vec
		off := v.Base
		for i := 0; i < v.Len; i++ {
			if pred(int64(binary.LittleEndian.Uint64(v.Data[off:]))) {
				out = append(out, p.Rows.Begin+uint64(i))
			}
			off += v.Stride
		}
	}
	cfg.chargeScan(pieces)
	return out, nil
}

// CountFloat64 counts the elements satisfying pred without building a
// position list.
func CountFloat64(cfg Config, pieces []Piece, pred func(float64) bool) (int64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return 0, fmt.Errorf("%w: float64 count over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	var n int64
	for _, p := range pieces {
		v := p.Vec
		off := v.Base
		for i := 0; i < v.Len; i++ {
			if pred(math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))) {
				n++
			}
			off += v.Stride
		}
	}
	cfg.chargeScan(pieces)
	return n, nil
}

// MinMaxFloat64 returns the minimum and maximum of a float64 column view.
// It returns ok=false for an empty view.
func MinMaxFloat64(cfg Config, pieces []Piece) (min, max float64, ok bool, err error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return 0, 0, false, fmt.Errorf("%w: float64 minmax over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	min, max = math.Inf(1), math.Inf(-1)
	for _, p := range pieces {
		v := p.Vec
		off := v.Base
		for i := 0; i < v.Len; i++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
			ok = true
			off += v.Stride
		}
	}
	cfg.chargeScan(pieces)
	return min, max, ok, nil
}
