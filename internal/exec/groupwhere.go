package exec

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"hybridstore/internal/exec/pool"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/stats"
)

// Fused predicate→group-by operators: SELECT key, SUM(val), COUNT(*)
// WHERE p GROUP BY key in one pass per piece. No selection vector is
// materialized — each element is tested and, on a match, folded straight
// into a per-worker group hash table; the tables merge at the end
// exactly like GroupSumFloat64's. Two layers of data skipping ride on
// the value column's zone map: fragments the predicate provably cannot
// match are pruned before any byte is touched (and the key column's
// bytes are saved along with the value column's), and fragments the
// zone proves all-matching take a dense accumulation loop with no
// per-element comparison at all.
//
// Predicates are normalized to a closed interval [lo, hi] once per call
// (ClosedFloat64/ClosedInt64), so the hot loop carries a single
// two-sided compare instead of a per-element Op switch — the same
// branch-light shape the device kernel consumes.

// Fused group-by observability: flat process-wide counters (the fused
// path is what the fusion panel and the adaptation layer watch, so the
// figures aggregate across policies) plus a 1-in-64 sampled latency
// histogram, mirroring the per-policy operator families' sampling.
var (
	mGroupFusedOps       = obs.NewCounter("exec.groupby.fused.ops")
	mGroupFusedGroups    = obs.NewCounter("exec.groupby.fused.groups")
	mGroupFusedFallbacks = obs.NewCounter("exec.groupby.fused.fallbacks")
	hGroupFusedNs        = obs.NewHistogram("exec.groupby.fused.ns")
)

// startGroupFused counts one fused grouped invocation and opens a
// latency sample every 64th call.
func startGroupFused() opTimer {
	if mGroupFusedOps.Inc()&latSampleMask != 0 {
		return opTimer{}
	}
	return opTimer{h: hGroupFusedNs, t0: time.Now()}
}

// NoteGroupFusedFallback records one abandonment of a fused grouped
// path — a caller that had to fall back to materialize-then-aggregate
// (or from device-fused to host-fused) because the predicate or layout
// was outside the fused operator's reach.
func NoteGroupFusedFallback() { mGroupFusedFallbacks.Inc() }

// GroupResultInt64 is one group of an integer grouped aggregation
// (exact mod 2^64, unlike GroupResult's float64 Sum).
type GroupResultInt64 struct {
	// Key is the grouping value (int64-widened).
	Key int64
	// Sum is the aggregated integer total.
	Sum int64
	// Count is the group cardinality.
	Count int64
}

// checkGroupCols validates the key/value piece shapes shared by the
// fused grouped operators.
func checkGroupCols(keys, vals []Piece) error {
	if err := checkAligned(keys, vals); err != nil {
		return err
	}
	if err := checkSize8(vals, "fused grouped aggregate"); err != nil {
		return err
	}
	for _, p := range keys {
		if p.Vec.Size != 8 && p.Vec.Size != 4 {
			return fmt.Errorf("%w: group key of %d bytes", ErrBadColumn, p.Vec.Size)
		}
	}
	return nil
}

// pruneAlignedByZone is pruneByZone for aligned key/value piece pairs:
// the value column's zones drive the decision and surviving pairs keep
// their index alignment. Skipping a fragment saves both columns' bytes,
// so the pruned-bytes figures count key and value bytes together.
func pruneAlignedByZone(cfg Config, keys, vals []Piece, admits func(z *stats.Zone) bool) (kKeys, kVals []Piece, prunedBytes int64) {
	pruned := 0
	for i := range vals {
		if admits(vals[i].Zone) {
			if pruned > 0 {
				kKeys = append(kKeys, keys[i])
				kVals = append(kVals, vals[i])
			}
			continue
		}
		if pruned == 0 {
			kKeys = append(kKeys, keys[:i]...)
			kVals = append(kVals, vals[:i]...)
		}
		pruned++
		prunedBytes += int64(vals[i].Vec.Len)*int64(vals[i].Vec.Size) +
			int64(keys[i].Vec.Len)*int64(keys[i].Vec.Size)
	}
	if pruned == 0 {
		kKeys, kVals = keys, vals
	}
	mZoneScanned.Add(int64(len(kVals)))
	gZonePrunedBytes.Set(prunedBytes)
	if pruned > 0 {
		sp := sfPrune.Start()
		mZonePruned.Add(int64(pruned))
		mZonePrunedBytes.Add(prunedBytes)
		sp.EndWith(fmt.Sprintf("pruned %d/%d fragments, %d bytes", pruned, len(vals), prunedBytes))
	}
	if cfg.Clock != nil && len(vals) > 0 {
		cfg.Clock.Advance(cfg.Host.ZoneCheckNs(len(vals)))
	}
	return kKeys, kVals, prunedBytes
}

// splitAlignedComp partitions aligned pairs into all-raw pairs (both
// columns carry bytes) and pairs where either side is compressed. The
// raw slices alias the inputs when nothing is compressed.
func splitAlignedComp(keys, vals []Piece) (rawKeys, rawVals, compKeys, compVals []Piece) {
	split := false
	for i := range keys {
		if keys[i].Comp == nil && vals[i].Comp == nil {
			if split {
				rawKeys = append(rawKeys, keys[i])
				rawVals = append(rawVals, vals[i])
			}
			continue
		}
		if !split {
			rawKeys = append(rawKeys, keys[:i]...)
			rawVals = append(rawVals, vals[:i]...)
			split = true
		}
		compKeys = append(compKeys, keys[i])
		compVals = append(compVals, vals[i])
	}
	if !split {
		return keys, vals, nil, nil
	}
	return rawKeys, rawVals, compKeys, compVals
}

// eachAligned visits the sub-ranges of aligned pairs covering the
// global element positions [gFrom, gTo); fn receives the pair index and
// the local element range within it.
func eachAligned(keys []Piece, gFrom, gTo int, fn func(pi, from, to int)) {
	base := 0
	for pi := range keys {
		n := keys[pi].Vec.Len
		pFrom, pTo := gFrom-base, gTo-base
		base += n
		if pTo <= 0 {
			break
		}
		if pFrom < 0 {
			pFrom = 0
		}
		if pFrom >= n {
			continue
		}
		if pTo > n {
			pTo = n
		}
		fn(pi, pFrom, pTo)
	}
}

// groupFusedTables runs fold over total global positions under the
// configured policy and returns the per-worker partial tables. Tables
// hold query results, so they are per-call (never pooled).
func groupFusedTables[G any](cfg Config, total int, fold func(table map[int64]*G, gFrom, gTo int)) []map[int64]*G {
	if total == 0 {
		return nil
	}
	switch {
	case cfg.Policy == MorselDriven:
		slots := pool.Slots()
		tables := make([]map[int64]*G, slots)
		pool.Run(total, pool.MorselSize(), slots, func(slot, from, to int) {
			if tables[slot] == nil {
				tables[slot] = make(map[int64]*G)
			}
			fold(tables[slot], from, to)
		})
		return tables
	case cfg.threads() == 1:
		table := make(map[int64]*G)
		fold(table, 0, total)
		return []map[int64]*G{table}
	default:
		th := cfg.threads()
		tables := make([]map[int64]*G, th)
		var wg sync.WaitGroup
		for w := 0; w < th; w++ {
			from, to := blockRange(w, th, total)
			if from >= to {
				break
			}
			wg.Add(1)
			go func(w, from, to int) {
				defer wg.Done()
				tables[w] = make(map[int64]*G)
				fold(tables[w], from, to)
			}(w, from, to)
		}
		wg.Wait()
		return tables
	}
}

// keyDecoder returns an indexed key accessor for a piece: raw vectors
// decode in place, compressed keys bulk-decode once into a scratch
// image (the sealed-key case is rare and the scratch is per-call).
func keyDecoder(p Piece) (func(i int) int64, error) {
	if p.Comp == nil {
		kp := p.Vec
		if kp.Size == 8 {
			return func(i int) int64 {
				return int64(binary.LittleEndian.Uint64(kp.Data[kp.Base+i*kp.Stride:]))
			}, nil
		}
		return func(i int) int64 {
			return int64(int32(binary.LittleEndian.Uint32(kp.Data[kp.Base+i*kp.Stride:])))
		}, nil
	}
	size := p.Comp.ElementSize()
	if size != 8 && size != 4 {
		return nil, fmt.Errorf("%w: compressed group key of %d bytes", ErrBadColumn, size)
	}
	img := p.Comp.Decompress()
	if size == 8 {
		return func(i int) int64 { return int64(binary.LittleEndian.Uint64(img[i*8:])) }, nil
	}
	return func(i int) int64 { return int64(int32(binary.LittleEndian.Uint32(img[i*4:]))) }, nil
}

// addGroupF64 folds one matching element into a float partial table.
func addGroupF64(table map[int64]*GroupResult, key int64, v float64) {
	if g, ok := table[key]; ok {
		g.Sum += v
		g.Count++
	} else {
		table[key] = &GroupResult{Key: key, Sum: v, Count: 1}
	}
}

// addGroupI64 folds one (sum, count) partial into an integer table.
func addGroupI64(table map[int64]*GroupResultInt64, key, sum, count int64) {
	if g, ok := table[key]; ok {
		g.Sum += sum
		g.Count += count
	} else {
		table[key] = &GroupResultInt64{Key: key, Sum: sum, Count: count}
	}
}

// groupWhereF64Into is the fused float kernel: decode value, compare
// against the closed interval, fold the match into the table. dense
// skips the compare when the fragment's zone proved every element
// matches (the zone is NaN-poisoned into invalidity, so a dense proof
// implies no NaNs).
func groupWhereF64Into(table map[int64]*GroupResult, kp, vp layout.ColVector, from, to int, lo, hi float64, dense bool) {
	kOff := kp.Base + from*kp.Stride
	vOff := vp.Base + from*vp.Stride
	key8 := kp.Size == 8
	for i := from; i < to; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(vp.Data[vOff:]))
		if dense || (lo <= x && x <= hi) {
			var key int64
			if key8 {
				key = int64(binary.LittleEndian.Uint64(kp.Data[kOff:]))
			} else {
				key = int64(int32(binary.LittleEndian.Uint32(kp.Data[kOff:])))
			}
			addGroupF64(table, key, x)
		}
		kOff += kp.Stride
		vOff += vp.Stride
	}
}

// groupWhereI64Into is groupWhereF64Into for int64 value columns.
func groupWhereI64Into(table map[int64]*GroupResultInt64, kp, vp layout.ColVector, from, to int, lo, hi int64, dense bool) {
	kOff := kp.Base + from*kp.Stride
	vOff := vp.Base + from*vp.Stride
	key8 := kp.Size == 8
	for i := from; i < to; i++ {
		x := int64(binary.LittleEndian.Uint64(vp.Data[vOff:]))
		if dense || (lo <= x && x <= hi) {
			var key int64
			if key8 {
				key = int64(binary.LittleEndian.Uint64(kp.Data[kOff:]))
			} else {
				key = int64(int32(binary.LittleEndian.Uint32(kp.Data[kOff:])))
			}
			addGroupI64(table, key, x, 1)
		}
		kOff += kp.Stride
		vOff += vp.Stride
	}
}

// denseFlagsF64 marks the raw pieces whose zone proves every element
// matches the closed interval — the all-match fast path.
func denseFlagsF64(vals []Piece, lo, hi float64) []bool {
	dense := make([]bool, len(vals))
	for i, p := range vals {
		if zmin, zmax, ok := p.Zone.Float64Bounds(); ok && lo <= zmin && zmax <= hi {
			dense[i] = true
		}
	}
	return dense
}

// denseFlagsI64 is denseFlagsF64 for int64 zones.
func denseFlagsI64(vals []Piece, lo, hi int64) []bool {
	dense := make([]bool, len(vals))
	for i, p := range vals {
		if zmin, zmax, ok := p.Zone.Int64Bounds(); ok && lo <= zmin && zmax <= hi {
			dense[i] = true
		}
	}
	return dense
}

// GroupSumFloat64Where computes SELECT key, SUM(val), COUNT(*) WHERE p
// GROUP BY key in one fused pass: no selection vector, zone-pruned
// fragments never touched, zone-proven all-match fragments accumulated
// densely. keys must be an int64 or int32 column view, vals a float64
// one, both covering the same positions (compressed pieces execute in
// the compressed domain). Results come back sorted by key.
func GroupSumFloat64Where(cfg Config, keys, vals []Piece, p Pred[float64]) ([]GroupResult, error) {
	if err := checkGroupCols(keys, vals); err != nil {
		return nil, err
	}
	ft := startGroupFused()
	kKeys, kVals, _ := pruneAlignedByZone(cfg, keys, vals, func(z *stats.Zone) bool {
		return zoneAdmitsFloat64(z, p)
	})
	lo, hi, ok := ClosedFloat64(p)
	if !ok {
		// Empty interval: provably no matches, nothing scanned.
		ft.end()
		return nil, nil
	}
	rawKeys, rawVals, compKeys, compVals := splitAlignedComp(kKeys, kVals)
	dense := denseFlagsF64(rawVals, lo, hi)
	tables := groupFusedTables(cfg, totalLen(rawKeys), func(table map[int64]*GroupResult, gFrom, gTo int) {
		eachAligned(rawKeys, gFrom, gTo, func(pi, from, to int) {
			groupWhereF64Into(table, rawKeys[pi].Vec, rawVals[pi].Vec, from, to, lo, hi, dense[pi])
		})
	})
	if len(compVals) > 0 {
		ct := make(map[int64]*GroupResult)
		cp := compPredF64(p)
		for i := range compVals {
			keyAt, err := keyDecoder(compKeys[i])
			if err != nil {
				ft.end()
				return nil, err
			}
			if c := compVals[i].Comp; c != nil {
				err := c.GroupSumFloat64Where(cp, keyAt, func(key int64, v float64) {
					addGroupF64(ct, key, v)
				})
				if err != nil {
					ft.end()
					return nil, fmt.Errorf("%w: %v", ErrBadColumn, err)
				}
				continue
			}
			// Raw value column under a compressed key.
			vp := compVals[i].Vec
			vOff := vp.Base
			for j := 0; j < vp.Len; j++ {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(vp.Data[vOff:])); lo <= x && x <= hi {
					addGroupF64(ct, keyAt(j), x)
				}
				vOff += vp.Stride
			}
		}
		tables = append(tables, ct)
	}
	merged := make(map[int64]*GroupResult)
	for _, t := range tables {
		for k, g := range t {
			if m, ok := merged[k]; ok {
				m.Sum += g.Sum
				m.Count += g.Count
			} else {
				merged[k] = g
			}
		}
	}
	out := make([]GroupResult, 0, len(merged))
	for _, g := range merged {
		out = append(out, *g)
	}
	SortGroupResults(out)
	mGroupFusedGroups.Add(int64(len(out)))
	cfg.chargeScan(kKeys)
	cfg.chargeScan(kVals)
	ft.end()
	return out, nil
}

// GroupSumInt64Where is GroupSumFloat64Where for int64 value columns
// (exact mod 2^64).
func GroupSumInt64Where(cfg Config, keys, vals []Piece, p Pred[int64]) ([]GroupResultInt64, error) {
	if err := checkGroupCols(keys, vals); err != nil {
		return nil, err
	}
	ft := startGroupFused()
	kKeys, kVals, _ := pruneAlignedByZone(cfg, keys, vals, func(z *stats.Zone) bool {
		return zoneAdmitsInt64(z, p)
	})
	lo, hi, ok := ClosedInt64(p)
	if !ok {
		ft.end()
		return nil, nil
	}
	rawKeys, rawVals, compKeys, compVals := splitAlignedComp(kKeys, kVals)
	dense := denseFlagsI64(rawVals, lo, hi)
	tables := groupFusedTables(cfg, totalLen(rawKeys), func(table map[int64]*GroupResultInt64, gFrom, gTo int) {
		eachAligned(rawKeys, gFrom, gTo, func(pi, from, to int) {
			groupWhereI64Into(table, rawKeys[pi].Vec, rawVals[pi].Vec, from, to, lo, hi, dense[pi])
		})
	})
	if len(compVals) > 0 {
		ct := make(map[int64]*GroupResultInt64)
		cp := compPredI64(p)
		for i := range compVals {
			keyAt, err := keyDecoder(compKeys[i])
			if err != nil {
				ft.end()
				return nil, err
			}
			if c := compVals[i].Comp; c != nil {
				err := c.GroupSumInt64Where(cp, keyAt, func(key, sum, count int64) {
					addGroupI64(ct, key, sum, count)
				})
				if err != nil {
					ft.end()
					return nil, fmt.Errorf("%w: %v", ErrBadColumn, err)
				}
				continue
			}
			vp := compVals[i].Vec
			vOff := vp.Base
			for j := 0; j < vp.Len; j++ {
				if x := int64(binary.LittleEndian.Uint64(vp.Data[vOff:])); lo <= x && x <= hi {
					addGroupI64(ct, keyAt(j), x, 1)
				}
				vOff += vp.Stride
			}
		}
		tables = append(tables, ct)
	}
	merged := make(map[int64]*GroupResultInt64)
	for _, t := range tables {
		for k, g := range t {
			if m, ok := merged[k]; ok {
				m.Sum += g.Sum
				m.Count += g.Count
			} else {
				merged[k] = g
			}
		}
	}
	out := make([]GroupResultInt64, 0, len(merged))
	for _, g := range merged {
		out = append(out, *g)
	}
	slices.SortFunc(out, func(a, b GroupResultInt64) int { return cmp.Compare(a.Key, b.Key) })
	mGroupFusedGroups.Add(int64(len(out)))
	cfg.chargeScan(kKeys)
	cfg.chargeScan(kVals)
	ft.end()
	return out, nil
}

// GroupCountWhereFloat64 computes SELECT key, COUNT(*) WHERE p GROUP BY
// key in one fused pass (GroupResult.Sum stays zero). Dense fragments
// count without decoding the value column at all.
func GroupCountWhereFloat64(cfg Config, keys, vals []Piece, p Pred[float64]) ([]GroupResult, error) {
	if err := checkGroupCols(keys, vals); err != nil {
		return nil, err
	}
	ft := startGroupFused()
	kKeys, kVals, _ := pruneAlignedByZone(cfg, keys, vals, func(z *stats.Zone) bool {
		return zoneAdmitsFloat64(z, p)
	})
	lo, hi, ok := ClosedFloat64(p)
	if !ok {
		ft.end()
		return nil, nil
	}
	rawKeys, rawVals, compKeys, compVals := splitAlignedComp(kKeys, kVals)
	dense := denseFlagsF64(rawVals, lo, hi)
	tables := groupFusedTables(cfg, totalLen(rawKeys), func(table map[int64]*GroupResult, gFrom, gTo int) {
		eachAligned(rawKeys, gFrom, gTo, func(pi, from, to int) {
			groupCountF64Into(table, rawKeys[pi].Vec, rawVals[pi].Vec, from, to, lo, hi, dense[pi])
		})
	})
	if len(compVals) > 0 {
		ct := make(map[int64]*GroupResult)
		cp := compPredF64(p)
		for i := range compVals {
			keyAt, err := keyDecoder(compKeys[i])
			if err != nil {
				ft.end()
				return nil, err
			}
			hit := func(key int64) {
				if g, ok := ct[key]; ok {
					g.Count++
				} else {
					ct[key] = &GroupResult{Key: key, Count: 1}
				}
			}
			if c := compVals[i].Comp; c != nil {
				if err := c.GroupCountWhereFloat64(cp, keyAt, hit); err != nil {
					ft.end()
					return nil, fmt.Errorf("%w: %v", ErrBadColumn, err)
				}
				continue
			}
			vp := compVals[i].Vec
			vOff := vp.Base
			for j := 0; j < vp.Len; j++ {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(vp.Data[vOff:])); lo <= x && x <= hi {
					hit(keyAt(j))
				}
				vOff += vp.Stride
			}
		}
		tables = append(tables, ct)
	}
	out := mergeCountTables(tables)
	mGroupFusedGroups.Add(int64(len(out)))
	cfg.chargeScan(kKeys)
	cfg.chargeScan(kVals)
	ft.end()
	return out, nil
}

// GroupCountWhereInt64 is GroupCountWhereFloat64 for int64 value
// columns.
func GroupCountWhereInt64(cfg Config, keys, vals []Piece, p Pred[int64]) ([]GroupResult, error) {
	if err := checkGroupCols(keys, vals); err != nil {
		return nil, err
	}
	ft := startGroupFused()
	kKeys, kVals, _ := pruneAlignedByZone(cfg, keys, vals, func(z *stats.Zone) bool {
		return zoneAdmitsInt64(z, p)
	})
	lo, hi, ok := ClosedInt64(p)
	if !ok {
		ft.end()
		return nil, nil
	}
	rawKeys, rawVals, compKeys, compVals := splitAlignedComp(kKeys, kVals)
	dense := denseFlagsI64(rawVals, lo, hi)
	tables := groupFusedTables(cfg, totalLen(rawKeys), func(table map[int64]*GroupResult, gFrom, gTo int) {
		eachAligned(rawKeys, gFrom, gTo, func(pi, from, to int) {
			groupCountI64Into(table, rawKeys[pi].Vec, rawVals[pi].Vec, from, to, lo, hi, dense[pi])
		})
	})
	if len(compVals) > 0 {
		ct := make(map[int64]*GroupResult)
		cp := compPredI64(p)
		for i := range compVals {
			keyAt, err := keyDecoder(compKeys[i])
			if err != nil {
				ft.end()
				return nil, err
			}
			hit := func(key int64) {
				if g, ok := ct[key]; ok {
					g.Count++
				} else {
					ct[key] = &GroupResult{Key: key, Count: 1}
				}
			}
			if c := compVals[i].Comp; c != nil {
				if err := c.GroupCountWhereInt64(cp, keyAt, hit); err != nil {
					ft.end()
					return nil, fmt.Errorf("%w: %v", ErrBadColumn, err)
				}
				continue
			}
			vp := compVals[i].Vec
			vOff := vp.Base
			for j := 0; j < vp.Len; j++ {
				if x := int64(binary.LittleEndian.Uint64(vp.Data[vOff:])); lo <= x && x <= hi {
					hit(keyAt(j))
				}
				vOff += vp.Stride
			}
		}
		tables = append(tables, ct)
	}
	out := mergeCountTables(tables)
	mGroupFusedGroups.Add(int64(len(out)))
	cfg.chargeScan(kKeys)
	cfg.chargeScan(kVals)
	ft.end()
	return out, nil
}

// groupCountF64Into is the fused float count kernel; dense ranges count
// keys without touching the value column.
func groupCountF64Into(table map[int64]*GroupResult, kp, vp layout.ColVector, from, to int, lo, hi float64, dense bool) {
	kOff := kp.Base + from*kp.Stride
	vOff := vp.Base + from*vp.Stride
	key8 := kp.Size == 8
	for i := from; i < to; i++ {
		match := dense
		if !match {
			x := math.Float64frombits(binary.LittleEndian.Uint64(vp.Data[vOff:]))
			match = lo <= x && x <= hi
		}
		if match {
			var key int64
			if key8 {
				key = int64(binary.LittleEndian.Uint64(kp.Data[kOff:]))
			} else {
				key = int64(int32(binary.LittleEndian.Uint32(kp.Data[kOff:])))
			}
			if g, ok := table[key]; ok {
				g.Count++
			} else {
				table[key] = &GroupResult{Key: key, Count: 1}
			}
		}
		kOff += kp.Stride
		vOff += vp.Stride
	}
}

// groupCountI64Into is groupCountF64Into for int64 value columns.
func groupCountI64Into(table map[int64]*GroupResult, kp, vp layout.ColVector, from, to int, lo, hi int64, dense bool) {
	kOff := kp.Base + from*kp.Stride
	vOff := vp.Base + from*vp.Stride
	key8 := kp.Size == 8
	for i := from; i < to; i++ {
		match := dense
		if !match {
			x := int64(binary.LittleEndian.Uint64(vp.Data[vOff:]))
			match = lo <= x && x <= hi
		}
		if match {
			var key int64
			if key8 {
				key = int64(binary.LittleEndian.Uint64(kp.Data[kOff:]))
			} else {
				key = int64(int32(binary.LittleEndian.Uint32(kp.Data[kOff:])))
			}
			if g, ok := table[key]; ok {
				g.Count++
			} else {
				table[key] = &GroupResult{Key: key, Count: 1}
			}
		}
		kOff += kp.Stride
		vOff += vp.Stride
	}
}

// mergeCountTables merges partial count tables and sorts by key.
func mergeCountTables(tables []map[int64]*GroupResult) []GroupResult {
	merged := make(map[int64]*GroupResult)
	for _, t := range tables {
		for k, g := range t {
			if m, ok := merged[k]; ok {
				m.Count += g.Count
			} else {
				merged[k] = g
			}
		}
	}
	out := make([]GroupResult, 0, len(merged))
	for _, g := range merged {
		out = append(out, *g)
	}
	SortGroupResults(out)
	return out
}
