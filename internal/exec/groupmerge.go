package exec

import "sort"

// MergeGroupResults folds any number of partial group-result slices
// (e.g. a host-fused table and a device-fused table over disjoint
// fragments) into one table sorted by key.
func MergeGroupResults(parts ...[]GroupResult) []GroupResult {
	merged := make(map[int64]*GroupResult)
	for _, part := range parts {
		for _, g := range part {
			if m, ok := merged[g.Key]; ok {
				m.Sum += g.Sum
				m.Count += g.Count
			} else {
				cp := g
				merged[g.Key] = &cp
			}
		}
	}
	out := make([]GroupResult, 0, len(merged))
	for _, g := range merged {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
