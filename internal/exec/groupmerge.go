package exec

import (
	"cmp"
	"slices"
)

// SortGroupResults orders a group table by key. Group tables are the
// tail of every grouped-aggregate answer, so this runs on the serving
// hot path — slices.SortFunc compiles to a monomorphic comparison,
// where sort.Slice pays reflect.Swapper per element.
func SortGroupResults(out []GroupResult) {
	slices.SortFunc(out, func(a, b GroupResult) int { return cmp.Compare(a.Key, b.Key) })
}

// MergeGroupResults folds any number of partial group-result slices
// (e.g. a host-fused table and a device-fused table over disjoint
// fragments) into one table sorted by key. Each part must itself be a
// group table — one entry per key — as every producer emits; a single
// non-empty part short-circuits to a sorted copy.
func MergeGroupResults(parts ...[]GroupResult) []GroupResult {
	single := -1
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if single >= 0 {
			single = -2
			break
		}
		single = i
	}
	if single == -1 {
		return nil
	}
	if single >= 0 {
		out := append([]GroupResult(nil), parts[single]...)
		SortGroupResults(out)
		return out
	}
	// Index into the output slice instead of a map of pointers: one
	// allocation for the table, not one per group.
	idx := make(map[int64]int)
	var out []GroupResult
	for _, part := range parts {
		for _, g := range part {
			if j, ok := idx[g.Key]; ok {
				out[j].Sum += g.Sum
				out[j].Count += g.Count
			} else {
				idx[g.Key] = len(out)
				out = append(out, g)
			}
		}
	}
	SortGroupResults(out)
	return out
}
