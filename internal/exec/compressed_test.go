package exec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/compress"
	"hybridstore/internal/device"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
)

// encodeF64 and encodeI64 build little-endian column images.
func encodeF64(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func encodeI64(vals []int64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// rawPieces splits an image into np pieces of dense raw vectors.
func rawPieces(image []byte, n, np int) []Piece {
	var out []Piece
	per := (n + np - 1) / np
	for begin := 0; begin < n; begin += per {
		end := begin + per
		if end > n {
			end = n
		}
		out = append(out, Piece{
			Rows: layout.RowRange{Begin: uint64(begin), End: uint64(end)},
			Vec: layout.ColVector{Data: image, Base: begin * 8, Stride: 8, Size: 8,
				Len: end - begin},
		})
	}
	return out
}

// compPieces builds the same split with each slice sealed under enc.
func compPieces(t *testing.T, enc compress.Encoding, image []byte, n, np int) []Piece {
	t.Helper()
	var out []Piece
	per := (n + np - 1) / np
	for begin := 0; begin < n; begin += per {
		end := begin + per
		if end > n {
			end = n
		}
		col, err := compress.CompressAs(enc, image[begin*8:end*8], end-begin, 8)
		if err != nil {
			t.Fatalf("CompressAs(%v): %v", enc, err)
		}
		out = append(out, Piece{
			Rows: layout.RowRange{Begin: uint64(begin), End: uint64(end)},
			Vec:  layout.ColVector{Stride: 8, Size: 8, Len: end - begin},
			Comp: col,
		})
	}
	return out
}

// floatShape generates a float64 column suited to the encoding; NaNs are
// mixed into the encodings that can hold arbitrary doubles.
func floatShape(rng *rand.Rand, enc compress.Encoding, n int) []float64 {
	vals := make([]float64, n)
	switch enc {
	case compress.RLE:
		v := rng.Float64() * 100
		for i := range vals {
			if rng.Intn(7) == 0 {
				if rng.Intn(16) == 0 {
					v = math.NaN()
				} else {
					v = rng.Float64() * 100
				}
			}
			vals[i] = v
		}
	case compress.Dict:
		card := 1 + rng.Intn(16)
		dict := make([]float64, card)
		for i := range dict {
			dict[i] = rng.Float64() * 100
		}
		if card > 1 && rng.Intn(4) == 0 {
			dict[0] = math.NaN()
		}
		for i := range vals {
			vals[i] = dict[rng.Intn(card)]
		}
	case compress.FOR:
		// FOR works on the 8-byte bit patterns: neighbors within a few
		// thousand ULPs of a base keep the delta span under 2^32.
		base := 1 + rng.Float64()*100
		bits := math.Float64bits(base)
		for i := range vals {
			vals[i] = math.Float64frombits(bits + uint64(rng.Intn(1<<16)))
		}
	default: // Raw
		for i := range vals {
			if rng.Intn(32) == 0 {
				vals[i] = math.NaN()
			} else {
				vals[i] = rng.NormFloat64() * 50
			}
		}
	}
	return vals
}

// intShape is floatShape for int64 columns, including the FOR width
// transition points (1-, 2- and 4-byte deltas).
func intShape(rng *rand.Rand, enc compress.Encoding, n int) []int64 {
	vals := make([]int64, n)
	switch enc {
	case compress.RLE:
		v := int64(rng.Intn(1000))
		for i := range vals {
			if rng.Intn(7) == 0 {
				v = int64(rng.Intn(1000))
			}
			vals[i] = v
		}
	case compress.Dict:
		card := 1 + rng.Intn(16)
		dict := make([]int64, card)
		for i := range dict {
			dict[i] = int64(rng.Intn(2000) - 1000)
		}
		for i := range vals {
			vals[i] = dict[rng.Intn(card)]
		}
	case compress.FOR:
		base := int64(rng.Intn(1 << 20))
		// Exercise the delta-width boundaries: spans that just fit and
		// just overflow the 1- and 2-byte widths, plus a wide 4-byte span.
		spans := []int64{255, 256, 65535, 65536, 1 << 24}
		span := spans[rng.Intn(len(spans))]
		for i := range vals {
			vals[i] = base + rng.Int63n(span+1)
		}
		// Pin the boundary values so the width is actually exercised.
		if n >= 2 {
			vals[0] = base
			vals[n-1] = base + span
		}
	default: // Raw
		for i := range vals {
			vals[i] = rng.Int63n(1<<40) - (1 << 39)
		}
	}
	return vals
}

// randPredF64 draws a predicate whose bounds straddle the data.
func randCompPredF64(rng *rand.Rand, vals []float64) Pred[float64] {
	pick := func() float64 {
		v := vals[rng.Intn(len(vals))]
		if math.IsNaN(v) {
			return 0
		}
		return v + rng.NormFloat64()
	}
	lo, hi := pick(), pick()
	if lo > hi {
		lo, hi = hi, lo
	}
	switch Op(rng.Intn(4)) {
	case OpEQ:
		return Eq(vals[rng.Intn(len(vals))])
	case OpLT:
		return Lt(hi)
	case OpGT:
		return Gt(lo)
	default:
		return Between(lo, hi)
	}
}

func randCompPredI64(rng *rand.Rand, vals []int64) Pred[int64] {
	pick := func() int64 { return vals[rng.Intn(len(vals))] + int64(rng.Intn(64)) - 32 }
	lo, hi := pick(), pick()
	if lo > hi {
		lo, hi = hi, lo
	}
	switch Op(rng.Intn(4)) {
	case OpEQ:
		return Eq(vals[rng.Intn(len(vals))])
	case OpLT:
		return Lt(hi)
	case OpGT:
		return Gt(lo)
	default:
		return Between(lo, hi)
	}
}

// sumsClose compares reassociated float sums: both NaN, or within a
// tight relative tolerance.
func sumsClose(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= 1e-9*math.Abs(a)+1e-9
}

// TestCompressedOpsMatchDecompressed is the compressed-domain equivalence
// property: for every encoding, over randomized shapes and predicates,
// the compressed-domain operators return results bit-identical to
// decompressing and running the dense operators.
func TestCompressedOpsMatchDecompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	encs := []compress.Encoding{compress.Raw, compress.RLE, compress.Dict, compress.FOR}
	cfg := Single()
	for _, enc := range encs {
		for round := 0; round < 40; round++ {
			n := 1 + rng.Intn(500)
			np := 1 + rng.Intn(3)

			// float64 column.
			fvals := floatShape(rng, enc, n)
			fimg := encodeF64(fvals)
			fraw := rawPieces(fimg, n, np)
			fcomp := compPieces(t, enc, fimg, n, np)
			fp := randCompPredF64(rng, fvals)

			wantSum, wantN, err := SumFloat64Where(cfg, fraw, fp)
			if err != nil {
				t.Fatalf("%v: baseline SumFloat64Where: %v", enc, err)
			}
			gotSum, gotN, err := SumFloat64Where(cfg, fcomp, fp)
			if err != nil {
				t.Fatalf("%v: compressed SumFloat64Where: %v", enc, err)
			}
			if math.Float64bits(wantSum) != math.Float64bits(gotSum) || wantN != gotN {
				t.Fatalf("%v round %d: SumFloat64Where(%v) = (%v, %d), want (%v, %d)",
					enc, round, fp, gotSum, gotN, wantSum, wantN)
			}
			wantCnt, err := CountWhereFloat64(cfg, fraw, fp)
			if err != nil {
				t.Fatal(err)
			}
			gotCnt, err := CountWhereFloat64(cfg, fcomp, fp)
			if err != nil {
				t.Fatal(err)
			}
			if wantCnt != gotCnt {
				t.Fatalf("%v: CountWhereFloat64(%v) = %d, want %d", enc, fp, gotCnt, wantCnt)
			}
			// The unfiltered compressed sum uses exact closed forms per run
			// and per dictionary code (a deliberate reassociation of the
			// dense loop), so it is compared within float tolerance; strict
			// bit-identity is the contract of the Where family above.
			wantUS, err := SumFloat64(cfg, fraw)
			if err != nil {
				t.Fatal(err)
			}
			gotUS, err := SumFloat64(cfg, fcomp)
			if err != nil {
				t.Fatal(err)
			}
			if !sumsClose(wantUS, gotUS) {
				t.Fatalf("%v: SumFloat64 = %v (%x), want %v (%x)",
					enc, gotUS, math.Float64bits(gotUS), wantUS, math.Float64bits(wantUS))
			}

			// int64 column. Magnitudes stay under 2^53/len so the dense
			// baseline's float64 partials are exact.
			ivals := intShape(rng, enc, n)
			iimg := encodeI64(ivals)
			iraw := rawPieces(iimg, n, np)
			icomp := compPieces(t, enc, iimg, n, np)
			ip := randCompPredI64(rng, ivals)

			wantISum, wantIN, err := SumInt64Where(cfg, iraw, ip)
			if err != nil {
				t.Fatalf("%v: baseline SumInt64Where: %v", enc, err)
			}
			gotISum, gotIN, err := SumInt64Where(cfg, icomp, ip)
			if err != nil {
				t.Fatalf("%v: compressed SumInt64Where: %v", enc, err)
			}
			if wantISum != gotISum || wantIN != gotIN {
				t.Fatalf("%v round %d: SumInt64Where(%v) = (%d, %d), want (%d, %d)",
					enc, round, ip, gotISum, gotIN, wantISum, wantIN)
			}
			wantICnt, err := CountWhereInt64(cfg, iraw, ip)
			if err != nil {
				t.Fatal(err)
			}
			gotICnt, err := CountWhereInt64(cfg, icomp, ip)
			if err != nil {
				t.Fatal(err)
			}
			if wantICnt != gotICnt {
				t.Fatalf("%v: CountWhereInt64(%v) = %d, want %d", enc, ip, gotICnt, wantICnt)
			}
			wantIUS, err := SumInt64(cfg, iraw)
			if err != nil {
				t.Fatal(err)
			}
			gotIUS, err := SumInt64(cfg, icomp)
			if err != nil {
				t.Fatal(err)
			}
			if wantIUS != gotIUS {
				t.Fatalf("%v: SumInt64 = %d, want %d", enc, gotIUS, wantIUS)
			}
		}
	}
}

// TestCompressedPoliciesAgree checks the multi-threaded and morsel-driven
// policies return the same counts (and sums within reassociation) as the
// sequential compressed path.
func TestCompressedPoliciesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := floatShape(rng, compress.Dict, 4096)
	// Dict shapes here carry no NaN by construction with this seed; make
	// sure (NaN would poison sums and break the comparison below).
	for i, v := range vals {
		if math.IsNaN(v) {
			vals[i] = 0
		}
	}
	img := encodeF64(vals)
	pieces := compPieces(t, compress.Dict, img, len(vals), 8)
	p := Between(10.0, 80.0)
	seqSum, seqN, err := SumFloat64Where(Single(), pieces, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{MultiN(4), Morsel()} {
		sum, n, err := SumFloat64Where(cfg, pieces, p)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Policy, err)
		}
		if n != seqN {
			t.Fatalf("%v: count %d, want %d", cfg.Policy, n, seqN)
		}
		if math.Abs(sum-seqSum) > 1e-6*math.Abs(seqSum)+1e-9 {
			t.Fatalf("%v: sum %v, want %v", cfg.Policy, sum, seqSum)
		}
	}
}

// TestSelectRejectsCompressed pins the guard: operators without a
// compressed-domain path refuse compressed pieces instead of crashing.
func TestSelectRejectsCompressed(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	img := encodeF64(vals)
	pieces := compPieces(t, compress.Raw, img, len(vals), 1)
	if _, err := SelectFloat64Pred(Single(), pieces, Gt(1.0)); err == nil {
		t.Fatal("SelectFloat64Pred accepted a compressed piece")
	}
	if _, err := SelectFloat64(Single(), pieces, func(float64) bool { return true }); err == nil {
		t.Fatal("SelectFloat64 accepted a compressed piece")
	}
	if _, _, _, err := MinMaxFloat64(Single(), pieces); err == nil {
		t.Fatal("MinMaxFloat64 accepted a compressed piece")
	}
}

// TestDeviceScanCompressedTransfers pins the tentpole's bus accounting:
// a device scan over a compressed piece charges the bus exactly the
// marshaled image size (not the dense bytes), and a warm rescan over the
// cached image charges zero bus bytes.
func TestDeviceScanCompressedTransfers(t *testing.T) {
	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	cache := device.NewFragCache(gpu)

	// A runny column: 64Ki rows in long runs — RLE shrinks it massively.
	n := 64 << 10
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i / 1024)
	}
	img := encodeF64(vals)
	col, err := compress.CompressAs(compress.RLE, img, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	piece := Piece{
		Rows:   layout.RowRange{Begin: 0, End: uint64(n)},
		Vec:    layout.ColVector{Stride: 8, Size: 8, Len: n},
		Comp:   col,
		FragID: 7, FragVersion: 1,
	}
	raw := Piece{
		Rows: layout.RowRange{Begin: 0, End: uint64(n)},
		Vec:  layout.ColVector{Data: img, Stride: 8, Size: 8, Len: n},
	}
	p := Between(10.0, 40.0)

	ds := DeviceScan{GPU: gpu, Cache: cache, Table: "t"}
	before := gpu.Stats()
	obsBefore := obs.TakeSnapshot()
	sum, cnt, err := ds.SumFloat64Where(0, []Piece{piece}, p)
	if err != nil {
		t.Fatal(err)
	}
	cold := gpu.Stats()
	obsCold := obs.TakeSnapshot()
	shipped := cold.HostToDeviceBytes - before.HostToDeviceBytes
	if want := int64(col.MarshaledBytes()); shipped != want {
		t.Fatalf("cold compressed scan shipped %d bytes, want marshaled size %d", shipped, want)
	}
	// The same claim through the process-wide observability counters.
	if got := obsCold.Counter("device.h2d_bytes") - obsBefore.Counter("device.h2d_bytes"); got != shipped {
		t.Fatalf("obs device.h2d_bytes moved %d, GPU instance says %d", got, shipped)
	}
	if dense := int64(n * 8); shipped >= dense {
		t.Fatalf("compressed transfer (%d bytes) not smaller than dense image (%d bytes)", shipped, dense)
	}

	// The device result must equal the host result over the raw bytes.
	wantSum, wantCnt, err := SumFloat64Where(Single(), []Piece{raw}, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sum) != math.Float64bits(wantSum) || cnt != wantCnt {
		t.Fatalf("device compressed scan = (%v, %d), want (%v, %d)", sum, cnt, wantSum, wantCnt)
	}

	// Warm rescan: cached image, zero bus bytes.
	sum2, cnt2, err := ds.SumFloat64Where(0, []Piece{piece}, p)
	if err != nil {
		t.Fatal(err)
	}
	warm := gpu.Stats()
	if warm.HostToDeviceBytes != cold.HostToDeviceBytes {
		t.Fatalf("warm compressed scan shipped %d bytes, want 0",
			warm.HostToDeviceBytes-cold.HostToDeviceBytes)
	}
	if cs := cache.Stats(); cs.Hits == 0 {
		t.Fatalf("warm scan did not hit the cache: %+v", cs)
	}
	if math.Float64bits(sum2) != math.Float64bits(sum) || cnt2 != cnt {
		t.Fatalf("warm scan = (%v, %d), want (%v, %d)", sum2, cnt2, sum, cnt)
	}

	// The cache entry is sized at the image length — the capacity win.
	if cs := cache.Stats(); cs.ResidentBytes >= int64(n*8) {
		t.Fatalf("cache resident bytes %d not smaller than dense image %d", cs.ResidentBytes, n*8)
	}
}

// TestDeviceScanCompressedUnfiltered covers the unfiltered compressed
// reduction path.
func TestDeviceScanCompressedUnfiltered(t *testing.T) {
	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	n := 8192
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 37)
	}
	img := encodeF64(vals)
	col, err := compress.CompressAs(compress.Dict, img, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	piece := Piece{
		Rows: layout.RowRange{Begin: 0, End: uint64(n)},
		Vec:  layout.ColVector{Stride: 8, Size: 8, Len: n},
		Comp: col,
	}
	ds := DeviceScan{GPU: gpu}
	got, err := ds.SumFloat64(0, []Piece{piece})
	if err != nil {
		t.Fatal(err)
	}
	raw := Piece{
		Rows: layout.RowRange{Begin: 0, End: uint64(n)},
		Vec:  layout.ColVector{Data: img, Stride: 8, Size: 8, Len: n},
	}
	want, err := SumFloat64(Single(), []Piece{raw})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("device compressed sum = %v, want %v", got, want)
	}
}
