package exec

import (
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/compress"
	"hybridstore/internal/obs"
	"hybridstore/internal/stats"
)

// zonedRawPieces builds raw pieces with sealed per-piece zones so the
// shared scan exercises per-predicate pruning.
func zonedRawPieces(vals []float64, np int) []Piece {
	pieces := rawPieces(encodeF64(vals), len(vals), np)
	for i := range pieces {
		z := stats.NewZone(stats.Float64)
		for r := pieces[i].Rows.Begin; r < pieces[i].Rows.End; r++ {
			z.ObserveFloat64(vals[r])
		}
		z.MarkSealed()
		pieces[i].Zone = z
	}
	return pieces
}

// TestSharedScanMatchesSolo asserts the core contract: every predicate's
// result from one shared pass is bit-identical to its solo fused scan,
// across predicate shapes, zone pruning, and compressed pieces.
func TestSharedScanMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 4096
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64()*1000) / 4 // includes fractional values
	}
	preds := []Pred[float64]{
		Lt[float64](125),
		Gt[float64](200),
		Between[float64](50, 100),
		Eq[float64](vals[17]),
		Between[float64](-10, -5), // fully pruned by every zone
		Lt[float64](250),          // same shape, different bound
	}

	t.Run("raw+zones", func(t *testing.T) {
		pieces := zonedRawPieces(vals, 8)
		sums, counts, err := SumFloat64WhereMulti(Single(), pieces, preds)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range preds {
			ws, wn, err := SumFloat64Where(Single(), pieces, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(sums[k]) != math.Float64bits(ws) || counts[k] != wn {
				t.Fatalf("pred %d (%v): shared (%v, %d) != solo (%v, %d)", k, p, sums[k], counts[k], ws, wn)
			}
		}
	})

	t.Run("mixed-compressed", func(t *testing.T) {
		// Half the pieces raw, half sealed as dictionary images over a
		// small value domain (bit-exact in the compressed domain).
		ivals := make([]float64, n)
		for i := range ivals {
			ivals[i] = math.Floor(rng.Float64() * 100)
		}
		raw := zonedRawPieces(ivals, 8)
		comp := compPieces(t, compress.Dict, encodeF64(ivals), n, 8)
		mixed := make([]Piece, 0, 8)
		for i := range raw {
			if i%2 == 0 {
				mixed = append(mixed, raw[i])
			} else {
				mixed = append(mixed, comp[i])
			}
		}
		sums, counts, err := SumFloat64WhereMulti(Single(), mixed, preds)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range preds {
			ws, wn, err := SumFloat64Where(Single(), mixed, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(sums[k]) != math.Float64bits(ws) || counts[k] != wn {
				t.Fatalf("pred %d (%v): shared (%v, %d) != solo (%v, %d)", k, p, sums[k], counts[k], ws, wn)
			}
		}
	})

	t.Run("parallel-policies-integer-data", func(t *testing.T) {
		ivals := make([]float64, n)
		for i := range ivals {
			ivals[i] = math.Floor(rng.Float64() * 100)
		}
		pieces := zonedRawPieces(ivals, 8)
		for _, cfg := range []Config{Single(), MultiN(4), Morsel()} {
			sums, counts, err := SumFloat64WhereMulti(cfg, pieces, preds)
			if err != nil {
				t.Fatal(err)
			}
			for k, p := range preds {
				ws, wn, err := SumFloat64Where(cfg, pieces, p)
				if err != nil {
					t.Fatal(err)
				}
				if sums[k] != ws || counts[k] != wn {
					t.Fatalf("policy %v pred %d: shared (%v, %d) != solo (%v, %d)", cfg.Policy, k, sums[k], counts[k], ws, wn)
				}
			}
		}
	})
}

// TestSharedScanDegenerate covers the 0- and 1-predicate fast paths.
func TestSharedScanDegenerate(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	pieces := rawPieces(encodeF64(vals), len(vals), 2)

	sums, counts, err := SumFloat64WhereMulti(Single(), pieces, nil)
	if err != nil || len(sums) != 0 || len(counts) != 0 {
		t.Fatalf("empty preds: %v %v %v", sums, counts, err)
	}

	sums, counts, err = SumFloat64WhereMulti(Single(), pieces, []Pred[float64]{Gt[float64](4)})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 5+6+7+8 || counts[0] != 4 {
		t.Fatalf("single pred: got (%v, %d)", sums[0], counts[0])
	}
}

// TestSharedScanAccounting asserts the sharing is visible in obs: one
// operator invocation per batch, saved passes counted, and the
// saved-bytes counter advancing when predicates overlap on the same
// pieces.
func TestSharedScanAccounting(t *testing.T) {
	obs.Reset()
	defer obs.Reset()
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i)
	}
	pieces := zonedRawPieces(vals, 4)
	preds := []Pred[float64]{Lt[float64](2000), Gt[float64](-1), Between[float64](0, 5000)}
	if _, _, err := SumFloat64WhereMulti(Single(), pieces, preds); err != nil {
		t.Fatal(err)
	}
	s := obs.TakeSnapshot()
	if got := s.Counter("exec.sharedsumwhere.single-threaded.ops"); got != 1 {
		t.Fatalf("shared ops = %d, want 1", got)
	}
	if got := s.Counter("exec.sharedscan.preds"); got != 3 {
		t.Fatalf("shared preds = %d, want 3", got)
	}
	if got := s.Counter("exec.sharedscan.saved_passes"); got != 2 {
		t.Fatalf("saved passes = %d, want 2", got)
	}
	// All three predicates admit all four pieces: 3×8 KiB streamed once,
	// 2×8 KiB saved.
	if got := s.Counter("exec.sharedscan.saved_bytes_total"); got != 2*1024*8 {
		t.Fatalf("saved bytes = %d, want %d", got, 2*1024*8)
	}
}
