package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"

	"hybridstore/internal/device"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
)

// fleetScan builds an n-card MultiDeviceScan over a fresh Env and shard
// map, host lane off unless a usable host config is given.
func fleetScan(n int, table string, host *Config) (*MultiDeviceScan, *device.Env, *perfmodel.Clock) {
	shared := &perfmodel.Clock{}
	env := device.NewEnv(n, perfmodel.DefaultDevice(), shared)
	m := &MultiDeviceScan{
		Env: env, Table: table,
		Shards: layout.NewShardMap(n, layout.ShardHash),
	}
	if host != nil {
		m.Host = *host
		m.Host.Clock = shared
		m.HostLane = true
	}
	return m, env, shared
}

// TestMultiDeviceScanBitIdentity pins the acceptance criterion: a 2-card
// sharded scan answers bit-identically to the single-card DeviceScan and
// to the host fused operator over the same pieces, for the plain sum,
// the filtered sum, and the fused grouped scan. Values are
// integer-valued doubles, so sums are exact in any fold order and every
// comparison is ==.
func TestMultiDeviceScanBitIdentity(t *testing.T) {
	const nf, fragRows = 8, 1024
	keys, vals, _, _, _ := groupScanFixture(nf, fragRows)
	p := Between(100.0, 499.0) // admits fragments 1-4, prunes the rest

	hostCfg := Config{Policy: SingleThreaded, Host: perfmodel.DefaultHost()}
	hostSum, hostN, err := SumFloat64Where(hostCfg, vals, p)
	if err != nil {
		t.Fatal(err)
	}
	hostGroups, err := GroupSumFloat64Where(hostCfg, keys, vals, p)
	if err != nil {
		t.Fatal(err)
	}
	hostPlain, err := SumFloat64(hostCfg, vals)
	if err != nil {
		t.Fatal(err)
	}

	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	single := DeviceScan{GPU: gpu, Cache: device.NewFragCache(gpu), Table: "bitident"}
	singleSum, singleN, err := single.SumFloat64Where(1, vals, p)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 4} {
		for _, withHost := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/host=%v", n, withHost)
			var hc *Config
			if withHost {
				hc = &Config{Policy: MorselDriven, Host: perfmodel.DefaultHost()}
			}
			m, _, _ := fleetScan(n, "bitident", hc)
			sum, cnt, err := m.SumFloat64Where(1, vals, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if sum != singleSum || cnt != singleN {
				t.Fatalf("%s: fleet (%v, %d) != single-card (%v, %d)", name, sum, cnt, singleSum, singleN)
			}
			if sum != hostSum || cnt != hostN {
				t.Fatalf("%s: fleet (%v, %d) != host (%v, %d)", name, sum, cnt, hostSum, hostN)
			}
			plain, err := m.SumFloat64(1, vals)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if plain != hostPlain {
				t.Fatalf("%s: fleet plain sum %v != host %v", name, plain, hostPlain)
			}
			groups, err := m.GroupSumFloat64Where(0, 1, keys, vals, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(groups) != len(hostGroups) {
				t.Fatalf("%s: %d groups, want %d", name, len(groups), len(hostGroups))
			}
			for i := range groups {
				if groups[i] != hostGroups[i] {
					t.Fatalf("%s: group[%d] = %+v, want %+v", name, i, groups[i], hostGroups[i])
				}
			}
		}
	}
}

// TestMultiDevicePerCardCountersSumToGlobal pins the fleet accounting
// invariant: the per-card registry counters (device.<i>.*) move by
// exactly the same totals as the process-global device.* counters, and
// each card's GPU.Stats matches its own registry deltas.
func TestMultiDevicePerCardCountersSumToGlobal(t *testing.T) {
	const n = 2
	const nf, fragRows = 8, 1024
	_, vals, _, _, _ := groupScanFixture(nf, fragRows)

	m, env, _ := fleetScan(n, "counters", nil)
	before := obs.TakeSnapshot()
	if _, _, err := m.SumFloat64Where(0, vals, Between(0.0, 1e9)); err != nil {
		t.Fatal(err)
	}
	// A second, warm pass so hits move too.
	if _, _, err := m.SumFloat64Where(0, vals, Between(0.0, 1e9)); err != nil {
		t.Fatal(err)
	}
	after := obs.TakeSnapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }

	for _, c := range []string{"h2d_bytes", "d2h_bytes", "h2d_ops", "d2h_ops", "kernels"} {
		var perCard int64
		for i := 0; i < n; i++ {
			perCard += delta(fmt.Sprintf("device.%d.%s", i, c))
		}
		if global := delta("device." + c); perCard != global {
			t.Fatalf("device.*.%s sums to %d, global device.%s moved %d", c, perCard, c, global)
		}
	}
	for _, c := range []string{"hits", "misses"} {
		var perCard int64
		for i := 0; i < n; i++ {
			perCard += delta(fmt.Sprintf("device.%d.cache.%s", i, c))
		}
		if global := delta("device.cache." + c); perCard != global {
			t.Fatalf("device.*.cache.%s sums to %d, global moved %d", c, perCard, global)
		}
	}
	// GPU.Stats ≡ the card's own registry counters.
	for i := 0; i < n; i++ {
		st := env.Card(i).GPU().Stats()
		if st.HostToDeviceBytes != delta(fmt.Sprintf("device.%d.h2d_bytes", i)) {
			t.Fatalf("card %d: Stats H2D %d != registry %d", i,
				st.HostToDeviceBytes, delta(fmt.Sprintf("device.%d.h2d_bytes", i)))
		}
		if st.KernelLaunches != delta(fmt.Sprintf("device.%d.kernels", i)) {
			t.Fatalf("card %d: Stats kernels %d != registry %d", i,
				st.KernelLaunches, delta(fmt.Sprintf("device.%d.kernels", i)))
		}
	}
	// Every piece admitted: hits+misses must equal acquires (2 passes × nf).
	cs := env.CacheStats()
	if cs.Hits+cs.Misses != 2*nf {
		t.Fatalf("hits %d + misses %d != %d acquires", cs.Hits, cs.Misses, 2*nf)
	}
}

// TestDeviceScanDegradesWhenCachePinned pins satellite behavior: a cache
// whose budget is exhausted by pinned images surfaces ErrCachePinned,
// and DeviceScan degrades that piece to an uncached direct transfer
// instead of failing the scan.
func TestDeviceScanDegradesWhenCachePinned(t *testing.T) {
	const fragRows = 512
	const img = fragRows * 8
	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	cache := device.NewFragCacheCap(gpu, img) // budget: exactly one image

	// Pin one image and never release it.
	key := device.FragKey{Table: "pinned", Frag: 99, Col: 0, Rows: fragRows}
	_, release, _, err := cache.Acquire(key, 1, img, func(b *device.Buffer) error {
		return gpu.CopyToDevice(b, 0, make([]byte, img))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	vals := make([]float64, fragRows)
	dense := make([]byte, img)
	var want float64
	for i := range vals {
		vals[i] = float64(i)
		want += vals[i]
		binary.LittleEndian.PutUint64(dense[i*8:], math.Float64bits(vals[i]))
	}
	piece := Piece{
		Rows:   layout.RowRange{Begin: 0, End: fragRows},
		Vec:    layout.ColVector{Data: dense, Stride: 8, Size: 8, Len: fragRows},
		FragID: 1, FragVersion: 1,
	}
	ds := DeviceScan{GPU: gpu, Cache: cache, Table: "pinned"}
	before := gpu.Stats()
	sum, err := ds.SumFloat64(0, []Piece{piece})
	if err != nil {
		t.Fatalf("scan should degrade to a direct transfer, got %v", err)
	}
	if sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	// The degraded piece shipped over the bus without entering the cache.
	if got := gpu.Stats().HostToDeviceBytes - before.HostToDeviceBytes; got != img {
		t.Fatalf("H2D bytes = %d, want %d (one direct transfer)", got, img)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1 (degraded image must not be cached)", st.Entries)
	}
	// A repeat scan ships again: still no residency for the new fragment.
	before = gpu.Stats()
	if _, err := ds.SumFloat64(0, []Piece{piece}); err != nil {
		t.Fatal(err)
	}
	if got := gpu.Stats().HostToDeviceBytes - before.HostToDeviceBytes; got != img {
		t.Fatalf("repeat H2D bytes = %d, want %d", got, img)
	}
}

// TestMultiDeviceVersionBumpNeverServesStale is the staleness property
// test: scans race against writers that mutate a fragment and bump its
// version; every scan's answer must match either the pre-write or the
// post-write image of the data it was given — never a mix — and a scan
// issued after the bump must see the new data.
func TestMultiDeviceVersionBumpNeverServesStale(t *testing.T) {
	const nf, fragRows = 4, 512
	const rounds = 8

	dense := make([]byte, nf*fragRows*8)
	sumAt := func(version uint64) float64 {
		// Data is derived from the version so expected answers are exact.
		var s float64
		for i := 0; i < nf*fragRows; i++ {
			s += float64(i%97) + float64(version)
		}
		return s
	}
	write := func(version uint64) {
		for i := 0; i < nf*fragRows; i++ {
			binary.LittleEndian.PutUint64(dense[i*8:], math.Float64bits(float64(i%97)+float64(version)))
		}
	}
	pieces := func(version uint64) []Piece {
		out := make([]Piece, nf)
		for f := 0; f < nf; f++ {
			begin := f * fragRows
			out[f] = Piece{
				Rows:   layout.RowRange{Begin: uint64(begin), End: uint64(begin + fragRows)},
				Vec:    layout.ColVector{Data: dense, Base: begin * 8, Stride: 8, Size: 8, Len: fragRows},
				FragID: uint64(f + 1), FragVersion: version,
			}
		}
		return out
	}

	m, env, _ := fleetScan(2, "stale", nil)
	for v := uint64(1); v <= rounds; v++ {
		write(v)
		ps := pieces(v)
		want := sumAt(v)
		// Concurrent duplicate scans at the same version: exercises the
		// dup-upload race across the fleet under -race.
		var wg sync.WaitGroup
		errc := make(chan error, 3)
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sum, err := m.SumFloat64(0, ps)
				if err != nil {
					errc <- err
					return
				}
				if sum != want {
					errc <- fmt.Errorf("round %d: sum %v, want %v (stale image served)", v, sum, want)
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatal(err)
		default:
		}
	}
	// Every acquire was a hit or a miss, never both, across all cards.
	cs := env.CacheStats()
	if cs.Hits+cs.Misses+cs.DupUploads <= 0 {
		t.Fatal("expected cache traffic")
	}
	// After the final round only current-version images are resident:
	// another scan at the final version must be all hits.
	before := env.Stats().HostToDeviceBytes
	if _, err := m.SumFloat64(0, pieces(rounds)); err != nil {
		t.Fatal(err)
	}
	if got := env.Stats().HostToDeviceBytes - before; got != 0 {
		t.Fatalf("final-version rescan shipped %d bytes, want 0 (all warm)", got)
	}
}

// TestMultiDeviceWarmThroughputScales pins the scaling acceptance
// criterion: with every fragment admitted and warm, the simulated time
// of a fleet scan shrinks as cards are added (concurrent lanes cost
// their maximum, not their sum).
func TestMultiDeviceWarmThroughputScales(t *testing.T) {
	const nf, fragRows = 16, 2048
	_, vals, _, _, _ := groupScanFixture(nf, fragRows)
	p := Between(0.0, 1e9)

	warm := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		m, _, shared := fleetScan(n, "scale", nil)
		if _, _, err := m.SumFloat64Where(1, vals, p); err != nil { // cold
			t.Fatal(err)
		}
		mark := shared.ElapsedNs()
		if _, _, err := m.SumFloat64Where(1, vals, p); err != nil { // warm
			t.Fatal(err)
		}
		warm[n] = shared.ElapsedNs() - mark
	}
	if !(warm[1] > warm[2] && warm[2] > warm[4]) {
		t.Fatalf("warm ns did not shrink with device count: 1=%v 2=%v 4=%v", warm[1], warm[2], warm[4])
	}
	if warm[2] < warm[1]/4 || warm[4] < warm[1]/16 {
		t.Fatalf("scaling implausibly superlinear: 1=%v 2=%v 4=%v", warm[1], warm[2], warm[4])
	}
	if speedup := warm[1] / warm[4]; speedup < 2 {
		t.Fatalf("4-card warm speedup = %.2f, want >= 2", speedup)
	}
}
