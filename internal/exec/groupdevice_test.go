package exec

import (
	"math"
	"testing"

	"hybridstore/internal/compress"
	"hybridstore/internal/device"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/stats"
)

// groupScanFixture builds an aligned key/value fragment list: nf
// fragments of fragRows rows, keys cycling over 8 groups, values
// confined per fragment to [f*100, f*100+99] so each fragment carries a
// narrow sealed zone.
func groupScanFixture(nf, fragRows int) (keys, vals []Piece, keyRaw, valRaw []int64, valF []float64) {
	n := nf * fragRows
	keyRaw = make([]int64, n)
	valF = make([]float64, n)
	for i := 0; i < n; i++ {
		keyRaw[i] = int64(i % 8)
		valF[i] = float64((i/fragRows)*100 + i%100)
	}
	kImg := encodeI64(keyRaw)
	vImg := encodeF64(valF)
	for f := 0; f < nf; f++ {
		begin := f * fragRows
		rr := layout.RowRange{Begin: uint64(begin), End: uint64(begin + fragRows)}
		z := stats.NewZone(stats.Float64)
		for i := begin; i < begin+fragRows; i++ {
			z.ObserveFloat64(valF[i])
		}
		z.MarkSealed()
		keys = append(keys, Piece{
			Rows:   rr,
			Vec:    layout.ColVector{Data: kImg, Base: begin * 8, Stride: 8, Size: 8, Len: fragRows},
			FragID: uint64(f + 1), FragVersion: 1,
		})
		vals = append(vals, Piece{
			Rows:   rr,
			Vec:    layout.ColVector{Data: vImg, Base: begin * 8, Stride: 8, Size: 8, Len: fragRows},
			Zone:   z,
			FragID: uint64(f + 1), FragVersion: 1,
		})
	}
	return keys, vals, keyRaw, nil, valF
}

// TestDeviceGroupScanOneLaunchPerFragment pins the fused device group
// contract: each unpruned fragment costs exactly ONE kernel launch and
// ONE device-to-host transfer (the group table, 24 bytes per group),
// and zone-pruned fragments cost nothing at all.
func TestDeviceGroupScanOneLaunchPerFragment(t *testing.T) {
	const nf, fragRows = 4, 1024
	keys, vals, keyRaw, _, valF := groupScanFixture(nf, fragRows)
	p := Between(100.0, 299.0) // admits fragments 1 and 2 only

	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	cache := device.NewFragCache(gpu)
	ds := DeviceScan{GPU: gpu, Cache: cache, Table: "groupscan"}

	obsBefore := obs.TakeSnapshot()
	before := gpu.Stats()
	groups, err := ds.GroupSumFloat64Where(0, 1, keys, vals, p)
	if err != nil {
		t.Fatal(err)
	}
	after := gpu.Stats()
	obsAfter := obs.TakeSnapshot()

	const unpruned = 2
	if got := after.KernelLaunches - before.KernelLaunches; got != unpruned {
		t.Fatalf("kernel launches = %d, want exactly %d (one per unpruned fragment)", got, unpruned)
	}
	if got := after.DeviceToHostOps - before.DeviceToHostOps; got != unpruned {
		t.Fatalf("D2H transfers = %d, want exactly %d (one group table per unpruned fragment)", got, unpruned)
	}
	// Each admitted fragment holds all 8 group keys, so each group table
	// is 8 partials of 24 bytes.
	if got, want := after.DeviceToHostBytes-before.DeviceToHostBytes, int64(unpruned*8*24); got != want {
		t.Fatalf("D2H bytes = %d, want %d", got, want)
	}
	// Both columns of the admitted fragments cross the bus, nothing else.
	if got, want := after.HostToDeviceBytes-before.HostToDeviceBytes, int64(unpruned*fragRows*8*2); got != want {
		t.Fatalf("H2D bytes = %d, want %d", got, want)
	}
	// The same claims through the process-wide observability counters.
	if got := obsAfter.Counter("device.kernels") - obsBefore.Counter("device.kernels"); got != unpruned {
		t.Fatalf("obs device.kernels moved %d, want %d", got, unpruned)
	}
	if got := obsAfter.Counter("exec.zonemap.pruned") - obsBefore.Counter("exec.zonemap.pruned"); got != nf-unpruned {
		t.Fatalf("obs exec.zonemap.pruned moved %d, want %d", got, nf-unpruned)
	}

	// The answer must equal the host fused operator's. Values are
	// integer-valued doubles, so per-group sums are exact in any
	// accumulation order and the comparison is bitwise.
	want := make(map[int64]*GroupResult)
	for i, v := range valF {
		if p.Match(v) {
			if g, ok := want[keyRaw[i]]; ok {
				g.Sum += v
				g.Count++
			} else {
				want[keyRaw[i]] = &GroupResult{Key: keyRaw[i], Sum: v, Count: 1}
			}
		}
	}
	if len(groups) != len(want) {
		t.Fatalf("groups = %d, want %d", len(groups), len(want))
	}
	for _, g := range groups {
		w := want[g.Key]
		if w == nil || g.Count != w.Count || math.Float64bits(g.Sum) != math.Float64bits(w.Sum) {
			t.Fatalf("group %d = (%v, %d), want %+v", g.Key, g.Sum, g.Count, w)
		}
	}
	host, err := GroupSumFloat64Where(Single(), keys, vals, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(host) != len(groups) {
		t.Fatalf("host fused returned %d groups, device %d", len(host), len(groups))
	}
	for i := range host {
		if host[i].Key != groups[i].Key || host[i].Count != groups[i].Count ||
			math.Float64bits(host[i].Sum) != math.Float64bits(groups[i].Sum) {
			t.Fatalf("host[%d] = %+v, device %+v", i, host[i], groups[i])
		}
	}
}

// TestDeviceGroupScanCompressedBitIdentical pins the compressed-domain
// group kernel to the dense one bit-for-bit: decoding inside the fused
// launch must aggregate in the same element order as aggregating the
// pre-decoded image, while shipping only the encoded bytes and still
// launching exactly once per fragment.
func TestDeviceGroupScanCompressedBitIdentical(t *testing.T) {
	const nf, fragRows = 4, 2048
	n := nf * fragRows
	keyRaw := make([]int64, n)
	valF := make([]float64, n)
	for i := 0; i < n; i++ {
		keyRaw[i] = int64(i % 5)
		valF[i] = float64(i/512)*0.1 + 0.3 // runny, non-integer: RLE-friendly, order-sensitive sums
	}
	kImg := encodeI64(keyRaw)
	vImg := encodeF64(valF)
	var keys, rawVals, compVals []Piece
	for f := 0; f < nf; f++ {
		begin := f * fragRows
		rr := layout.RowRange{Begin: uint64(begin), End: uint64(begin + fragRows)}
		keys = append(keys, Piece{
			Rows:   rr,
			Vec:    layout.ColVector{Data: kImg, Base: begin * 8, Stride: 8, Size: 8, Len: fragRows},
			FragID: uint64(f + 1), FragVersion: 1,
		})
		rawVals = append(rawVals, Piece{
			Rows:   rr,
			Vec:    layout.ColVector{Data: vImg, Base: begin * 8, Stride: 8, Size: 8, Len: fragRows},
			FragID: uint64(f + 1), FragVersion: 1,
		})
		col, err := compress.CompressAs(compress.RLE, vImg[begin*8:(begin+fragRows)*8], fragRows, 8)
		if err != nil {
			t.Fatal(err)
		}
		compVals = append(compVals, Piece{
			Rows:   rr,
			Vec:    layout.ColVector{Stride: 8, Size: 8, Len: fragRows},
			Comp:   col,
			FragID: uint64(f + 1), FragVersion: 1,
		})
	}
	p := Between(0.35, 1.25)

	run := func(table string, vals []Piece) ([]GroupResult, device.TransferStats, device.TransferStats) {
		clock := &perfmodel.Clock{}
		gpu := device.New(perfmodel.DefaultDevice(), clock)
		cache := device.NewFragCache(gpu)
		ds := DeviceScan{GPU: gpu, Cache: cache, Table: table}
		before := gpu.Stats()
		groups, err := ds.GroupSumFloat64Where(0, 1, keys, vals, p)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		return groups, before, gpu.Stats()
	}
	dense, db, da := run("dense", rawVals)
	comp, cb, ca := run("comp", compVals)

	if len(dense) == 0 || len(dense) != len(comp) {
		t.Fatalf("dense %d groups, compressed %d", len(dense), len(comp))
	}
	for i := range dense {
		if dense[i].Key != comp[i].Key || dense[i].Count != comp[i].Count ||
			math.Float64bits(dense[i].Sum) != math.Float64bits(comp[i].Sum) {
			t.Fatalf("group[%d]: dense %+v, compressed %+v", i, dense[i], comp[i])
		}
	}
	if got, want := ca.KernelLaunches-cb.KernelLaunches, int64(nf); got != want {
		t.Fatalf("compressed kernels = %d, want %d (decode fused into the group launch)", got, want)
	}
	if denseShip, compShip := da.HostToDeviceBytes-db.HostToDeviceBytes, ca.HostToDeviceBytes-cb.HostToDeviceBytes; compShip >= denseShip {
		t.Fatalf("compressed leg shipped %d bytes, dense %d", compShip, denseShip)
	}

	// The host fused operator agrees bit-for-bit too (single-threaded:
	// both the raw and the compressed path fold elements in global order
	// into one table).
	hostDense, err := GroupSumFloat64Where(Single(), keys, rawVals, p)
	if err != nil {
		t.Fatal(err)
	}
	hostComp, err := GroupSumFloat64Where(Single(), keys, compVals, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(hostDense) != len(hostComp) || len(hostDense) != len(dense) {
		t.Fatalf("host dense %d, host compressed %d, device %d groups", len(hostDense), len(hostComp), len(dense))
	}
	for i := range hostDense {
		if hostDense[i].Key != hostComp[i].Key || hostDense[i].Count != hostComp[i].Count ||
			math.Float64bits(hostDense[i].Sum) != math.Float64bits(hostComp[i].Sum) {
			t.Fatalf("host group[%d]: dense %+v, compressed %+v", i, hostDense[i], hostComp[i])
		}
	}
}

// TestDeviceScanFullyPrunedOpensNoStream is the data-skipping fast exit:
// when every fragment's zone excludes the predicate, the device scan
// returns before any device state exists — no stream span, no kernel,
// no bus byte.
func TestDeviceScanFullyPrunedOpensNoStream(t *testing.T) {
	const nf, fragRows = 4, 512
	keys, vals, _, _, _ := groupScanFixture(nf, fragRows)
	p := Between(5000.0, 6000.0) // outside every fragment's [0, nf*100) envelope

	clock := &perfmodel.Clock{}
	gpu := device.New(perfmodel.DefaultDevice(), clock)
	cache := device.NewFragCache(gpu)
	ds := DeviceScan{GPU: gpu, Cache: cache, Table: "pruned"}

	before := gpu.Stats()
	obsBefore := obs.TakeSnapshot()

	sum, cnt, err := ds.SumFloat64Where(1, vals, p)
	if err != nil || sum != 0 || cnt != 0 {
		t.Fatalf("pruned SumFloat64Where = (%v, %d, %v)", sum, cnt, err)
	}
	groups, err := ds.GroupSumFloat64Where(0, 1, keys, vals, p)
	if err != nil || groups != nil {
		t.Fatalf("pruned GroupSumFloat64Where = (%v, %v)", groups, err)
	}

	after := gpu.Stats()
	obsAfter := obs.TakeSnapshot()
	if after != before {
		t.Fatalf("fully-pruned scans touched the device: %+v -> %+v", before, after)
	}
	if b, a := obsBefore.Histograms["span.device.stream.ns"].Count, obsAfter.Histograms["span.device.stream.ns"].Count; a != b {
		t.Fatalf("fully-pruned scans recorded %d device.stream spans", a-b)
	}
	if got := obsAfter.Counter("exec.zonemap.pruned") - obsBefore.Counter("exec.zonemap.pruned"); got != 2*nf {
		t.Fatalf("exec.zonemap.pruned moved %d, want %d", got, 2*nf)
	}
}
