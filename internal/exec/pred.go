package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hybridstore/internal/exec/pool"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/stats"
)

// This file is the data-skipping and kernel-specialization layer: a
// small sargable predicate vocabulary (Pred), per-operator zone-map
// pruning over the fragment statistics of internal/stats, and fused
// scan kernels whose inner loops decode aligned 8-byte strides directly
// — no per-row closure, one comparison branch per element. The generic
// closure-based Select*/Count* operators in filter.go remain the
// fallback for predicates this vocabulary cannot express.

// Zone-map observability. Counters track pruned/scanned pieces
// process-wide; the gauge reports the bytes skipped by the most recent
// pruned operator (a per-query figure by construction, since operators
// under one query run back to back); the span family records prune
// decisions for the adaptation layer's diagnostics.
var (
	mZonePruned      = obs.NewCounter("exec.zonemap.pruned")
	mZoneScanned     = obs.NewCounter("exec.zonemap.scanned")
	mZonePrunedBytes = obs.NewCounter("exec.zonemap.pruned_bytes_total")
	gZonePrunedBytes = obs.NewGauge("exec.zonemap.last_pruned_bytes")
	sfPrune          = obs.NewSpanFamily("exec.zonemap.prune")
)

// Fused-operator families (registered per policy like the others).
var (
	obsSumWhere   = newOpObs("sumwhere")
	obsCountWhere = newOpObs("countwhere")
	obsSelectPred = newOpObs("selectpred")
)

// Op is the comparison of a Pred.
type Op uint8

// Predicate comparisons.
const (
	// OpEQ selects x == Lo.
	OpEQ Op = iota
	// OpLT selects x < Hi (strict).
	OpLT
	// OpGT selects x > Lo (strict).
	OpGT
	// OpBetween selects Lo <= x <= Hi (inclusive).
	OpBetween
)

// String names the comparison.
func (o Op) String() string {
	switch o {
	case OpEQ:
		return "eq"
	case OpLT:
		return "lt"
	case OpGT:
		return "gt"
	case OpBetween:
		return "between"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Number is the element domain of sargable predicates: the two 8-byte
// numeric kinds the zone maps cover.
type Number interface {
	~int64 | ~float64
}

// Pred is a sargable predicate over one 8-byte numeric column: an
// equality or range comparison the executor can both specialize (tight
// decode-and-compare loops) and prune (zone-map overlap tests). Lo
// carries the bound of OpEQ/OpGT and the lower bound of OpBetween; Hi
// carries the bound of OpLT and the upper bound of OpBetween.
type Pred[T Number] struct {
	// Op is the comparison.
	Op Op
	// Lo is the lower/equality bound (OpEQ, OpGT, OpBetween).
	Lo T
	// Hi is the upper bound (OpLT, OpBetween).
	Hi T
}

// Eq returns the predicate x == v.
func Eq[T Number](v T) Pred[T] { return Pred[T]{Op: OpEQ, Lo: v, Hi: v} }

// Lt returns the predicate x < v.
func Lt[T Number](v T) Pred[T] { return Pred[T]{Op: OpLT, Hi: v} }

// Gt returns the predicate x > v.
func Gt[T Number](v T) Pred[T] { return Pred[T]{Op: OpGT, Lo: v} }

// Between returns the predicate lo <= x <= hi (inclusive both sides).
func Between[T Number](lo, hi T) Pred[T] { return Pred[T]{Op: OpBetween, Lo: lo, Hi: hi} }

// Normalize canonicalizes a predicate so that semantically identical
// spellings compare equal as values: a between with equal bounds is an
// equality, and bound fields the operator never reads are zeroed (a
// wire-level `{"kind":"lt","lo":7,"hi":9}` matches the same rows as
// Lt(9) and must share its cohort and cache key). A degenerate NaN
// between stays a between: NaN == NaN is false, so the eq collapse
// does not fire and the (unmatchable) predicate keeps its shape.
func Normalize[T Number](p Pred[T]) Pred[T] {
	var zero T
	// canon scrubs float64 negative zero to positive zero: the two
	// compare equal and match the same rows, but carry different bit
	// patterns, which would split hash-sharded cohorts.
	canon := func(v T) T {
		if v == zero {
			return zero
		}
		return v
	}
	switch p.Op {
	case OpEQ:
		v := canon(p.Lo)
		return Pred[T]{Op: OpEQ, Lo: v, Hi: v}
	case OpLT:
		return Pred[T]{Op: OpLT, Lo: zero, Hi: canon(p.Hi)}
	case OpGT:
		return Pred[T]{Op: OpGT, Lo: canon(p.Lo), Hi: zero}
	case OpBetween:
		if p.Lo == p.Hi {
			v := canon(p.Lo)
			return Pred[T]{Op: OpEQ, Lo: v, Hi: v}
		}
		return Pred[T]{Op: OpBetween, Lo: canon(p.Lo), Hi: canon(p.Hi)}
	default:
		return p
	}
}

// Match evaluates the predicate on one value.
func (p Pred[T]) Match(x T) bool {
	switch p.Op {
	case OpEQ:
		return x == p.Lo
	case OpLT:
		return x < p.Hi
	case OpGT:
		return x > p.Lo
	case OpBetween:
		return p.Lo <= x && x <= p.Hi
	default:
		return false
	}
}

// admits reports whether a column whose values all lie in [min, max]
// can contain a match. This is the zone-map overlap test: false means
// the fragment is provably match-free and can be skipped.
func (p Pred[T]) admits(min, max T) bool {
	switch p.Op {
	case OpEQ:
		return min <= p.Lo && p.Lo <= max
	case OpLT:
		return min < p.Hi
	case OpGT:
		return max > p.Lo
	case OpBetween:
		return max >= p.Lo && min <= p.Hi
	default:
		return true
	}
}

// String renders the predicate.
func (p Pred[T]) String() string {
	switch p.Op {
	case OpEQ:
		return fmt.Sprintf("x == %v", p.Lo)
	case OpLT:
		return fmt.Sprintf("x < %v", p.Hi)
	case OpGT:
		return fmt.Sprintf("x > %v", p.Lo)
	case OpBetween:
		return fmt.Sprintf("%v <= x <= %v", p.Lo, p.Hi)
	default:
		return p.Op.String()
	}
}

// ClosedFloat64 normalizes a float64 predicate to the closed interval
// [lo, hi] with identical match semantics (strict bounds step to the
// adjacent representable double). ok is false for an empty interval.
// The device's fused filter kernel consumes this form.
func ClosedFloat64(p Pred[float64]) (lo, hi float64, ok bool) {
	switch p.Op {
	case OpEQ:
		return p.Lo, p.Lo, true
	case OpLT:
		return math.Inf(-1), math.Nextafter(p.Hi, math.Inf(-1)), !math.IsInf(p.Hi, -1)
	case OpGT:
		return math.Nextafter(p.Lo, math.Inf(1)), math.Inf(1), !math.IsInf(p.Lo, 1)
	case OpBetween:
		return p.Lo, p.Hi, p.Lo <= p.Hi
	default:
		return 0, 0, false
	}
}

// ClosedInt64 is ClosedFloat64 for int64 predicates.
func ClosedInt64(p Pred[int64]) (lo, hi int64, ok bool) {
	switch p.Op {
	case OpEQ:
		return p.Lo, p.Lo, true
	case OpLT:
		return math.MinInt64, p.Hi - 1, p.Hi != math.MinInt64
	case OpGT:
		return p.Lo + 1, math.MaxInt64, p.Lo != math.MaxInt64
	case OpBetween:
		return p.Lo, p.Hi, p.Lo <= p.Hi
	default:
		return 0, 0, false
	}
}

// zoneAdmitsFloat64 reports whether the piece's zone map allows a
// match. A nil, invalid or foreign-kind zone admits everything — the
// scan falls back to touching the bytes.
func zoneAdmitsFloat64(z *stats.Zone, p Pred[float64]) bool {
	min, max, ok := z.Float64Bounds()
	if !ok {
		return true
	}
	return p.admits(min, max)
}

// zoneAdmitsInt64 is zoneAdmitsFloat64 for int64 predicates.
func zoneAdmitsInt64(z *stats.Zone, p Pred[int64]) bool {
	min, max, ok := z.Int64Bounds()
	if !ok {
		return true
	}
	return p.admits(min, max)
}

// ZoneAdmitsFloat64 exposes the zone-overlap test to engine code that
// prunes outside the host operators — the device paths decide before
// paying the transfer or the kernel launch. A nil, invalid or
// foreign-kind zone admits everything.
func ZoneAdmitsFloat64(z *stats.Zone, p Pred[float64]) bool { return zoneAdmitsFloat64(z, p) }

// ZoneAdmitsInt64 is ZoneAdmitsFloat64 for int64 predicates.
func ZoneAdmitsInt64(z *stats.Zone, p Pred[int64]) bool { return zoneAdmitsInt64(z, p) }

// NoteZoneDecision records one zone consultation made outside the host
// operators (bytes is the fragment size the decision covered), keeping
// the pruned/scanned counters whole-system figures.
func NoteZoneDecision(admitted bool, bytes int64) {
	if admitted {
		mZoneScanned.Inc()
		return
	}
	mZonePruned.Inc()
	mZonePrunedBytes.Add(bytes)
}

// pruneByZone partitions pieces into the survivors of the zone test and
// accounts the decision: counters for pruned/scanned pieces, the
// per-query pruned-bytes gauge, a prune-decision span when anything was
// skipped, and — when the config carries a clock — the (tiny) cost of
// consulting one zone per piece. Survivors alias the input slice when
// nothing was pruned, so the common all-survive case allocates nothing.
func pruneByZone(cfg Config, pieces []Piece, admits func(z *stats.Zone) bool) (kept []Piece, prunedBytes int64) {
	pruned := 0
	for i, p := range pieces {
		if admits(p.Zone) {
			if pruned > 0 {
				kept = append(kept, p)
			}
			continue
		}
		if pruned == 0 {
			kept = append(kept, pieces[:i]...)
		}
		pruned++
		prunedBytes += int64(p.Vec.Len) * int64(p.Vec.Size)
	}
	if pruned == 0 {
		kept = pieces
	}
	mZoneScanned.Add(int64(len(kept)))
	gZonePrunedBytes.Set(prunedBytes)
	if pruned > 0 {
		sp := sfPrune.Start()
		mZonePruned.Add(int64(pruned))
		mZonePrunedBytes.Add(prunedBytes)
		sp.EndWith(fmt.Sprintf("pruned %d/%d pieces, %d bytes", pruned, len(pieces), prunedBytes))
	}
	if cfg.Clock != nil && len(pieces) > 0 {
		cfg.Clock.Advance(cfg.Host.ZoneCheckNs(len(pieces)))
	}
	return kept, prunedBytes
}

// checkSize8 rejects views whose fields are not 8 bytes wide.
func checkSize8(pieces []Piece, what string) error {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return fmt.Errorf("%w: %s over %d-byte fields", ErrBadColumn, what, p.Vec.Size)
		}
	}
	return nil
}

// --- Specialized kernels -------------------------------------------------
//
// One loop per (type, comparison) pair, chosen once outside the loop.
// The contiguous stride-8 case re-slices the vector to a dense byte run
// so the element load is a single bounds-check-friendly 8-byte decode;
// the strided (NSM) case steps by the tuplet width. Both compare inline
// — the branch predictor sees one well-behaved branch per element.

// sumWhereF64 returns the sum and count of matching elements in
// v[from:to).
func sumWhereF64(v layout.ColVector, from, to int, p Pred[float64]) (float64, int64) {
	var sum float64
	var n int64
	if v.Stride == 8 {
		data := v.Data[v.Base+from*8 : v.Base+to*8]
		switch p.Op {
		case OpEQ:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); x == p.Lo {
					sum += x
					n++
				}
			}
		case OpLT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); x < p.Hi {
					sum += x
					n++
				}
			}
		case OpGT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); x > p.Lo {
					sum += x
					n++
				}
			}
		case OpBetween:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); p.Lo <= x && x <= p.Hi {
					sum += x
					n++
				}
			}
		}
		return sum, n
	}
	off := v.Base + from*v.Stride
	for i := from; i < to; i++ {
		if x := math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:])); p.Match(x) {
			sum += x
			n++
		}
		off += v.Stride
	}
	return sum, n
}

// sumWhereI64 is sumWhereF64 for int64 columns.
func sumWhereI64(v layout.ColVector, from, to int, p Pred[int64]) (int64, int64) {
	var sum, n int64
	if v.Stride == 8 {
		data := v.Data[v.Base+from*8 : v.Base+to*8]
		switch p.Op {
		case OpEQ:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); x == p.Lo {
					sum += x
					n++
				}
			}
		case OpLT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); x < p.Hi {
					sum += x
					n++
				}
			}
		case OpGT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); x > p.Lo {
					sum += x
					n++
				}
			}
		case OpBetween:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); p.Lo <= x && x <= p.Hi {
					sum += x
					n++
				}
			}
		}
		return sum, n
	}
	off := v.Base + from*v.Stride
	for i := from; i < to; i++ {
		if x := int64(binary.LittleEndian.Uint64(v.Data[off:])); p.Match(x) {
			sum += x
			n++
		}
		off += v.Stride
	}
	return sum, n
}

// appendWhereF64 appends the global positions of matching elements in
// v[from:to) (whose global position base is rowBase+from) to buf.
func appendWhereF64(buf []uint64, rowBase uint64, v layout.ColVector, from, to int, p Pred[float64]) []uint64 {
	if v.Stride == 8 {
		data := v.Data[v.Base+from*8 : v.Base+to*8]
		base := rowBase + uint64(from)
		switch p.Op {
		case OpEQ:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); x == p.Lo {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		case OpLT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); x < p.Hi {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		case OpGT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); x > p.Lo {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		case OpBetween:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := math.Float64frombits(binary.LittleEndian.Uint64(data[i:])); p.Lo <= x && x <= p.Hi {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		}
		return buf
	}
	off := v.Base + from*v.Stride
	for i := from; i < to; i++ {
		if x := math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:])); p.Match(x) {
			buf = append(buf, rowBase+uint64(i))
		}
		off += v.Stride
	}
	return buf
}

// appendWhereI64 is appendWhereF64 for int64 columns.
func appendWhereI64(buf []uint64, rowBase uint64, v layout.ColVector, from, to int, p Pred[int64]) []uint64 {
	if v.Stride == 8 {
		data := v.Data[v.Base+from*8 : v.Base+to*8]
		base := rowBase + uint64(from)
		switch p.Op {
		case OpEQ:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); x == p.Lo {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		case OpLT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); x < p.Hi {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		case OpGT:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); x > p.Lo {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		case OpBetween:
			for i := 0; i+8 <= len(data); i += 8 {
				if x := int64(binary.LittleEndian.Uint64(data[i:])); p.Lo <= x && x <= p.Hi {
					buf = append(buf, base+uint64(i>>3))
				}
			}
		}
		return buf
	}
	off := v.Base + from*v.Stride
	for i := from; i < to; i++ {
		if x := int64(binary.LittleEndian.Uint64(v.Data[off:])); p.Match(x) {
			buf = append(buf, rowBase+uint64(i))
		}
		off += v.Stride
	}
	return buf
}

// --- Fused operators -----------------------------------------------------

// SumFloat64Where computes SUM(col), COUNT(*) WHERE p in one fused scan:
// no position list is materialized, pieces whose zone maps exclude the
// predicate are never touched, and only scanned bytes are charged to
// the platform model.
func SumFloat64Where(cfg Config, pieces []Piece, p Pred[float64]) (float64, int64, error) {
	if err := checkSize8(pieces, "fused float64 sum"); err != nil {
		return 0, 0, err
	}
	ot := obsSumWhere.start(cfg.Policy)
	kept, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsFloat64(z, p) })
	raw, comp := splitComp(kept)
	sum, n := parallelSumCount(cfg, raw, func(v layout.ColVector, from, to int) (float64, int64) {
		return sumWhereF64(v, from, to, p)
	})
	if len(comp) > 0 {
		cs, cn, err := compSumCountF64(cfg, comp, p)
		if err != nil {
			ot.end()
			return 0, 0, err
		}
		sum += cs
		n += cn
	}
	cfg.chargeScan(kept)
	ot.end()
	return sum, n, nil
}

// SumInt64Where is SumFloat64Where for int64 columns.
func SumInt64Where(cfg Config, pieces []Piece, p Pred[int64]) (int64, int64, error) {
	if err := checkSize8(pieces, "fused int64 sum"); err != nil {
		return 0, 0, err
	}
	ot := obsSumWhere.start(cfg.Policy)
	kept, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsInt64(z, p) })
	raw, comp := splitComp(kept)
	sum, n := parallelSumCount(cfg, raw, func(v layout.ColVector, from, to int) (float64, int64) {
		s, c := sumWhereI64(v, from, to, p)
		return float64(s), c
	})
	total := int64(sum)
	if len(comp) > 0 {
		cs, cn, err := compSumCountI64(cfg, comp, p)
		if err != nil {
			ot.end()
			return 0, 0, err
		}
		total += cs
		n += cn
	}
	cfg.chargeScan(kept)
	ot.end()
	return total, n, nil
}

// CountWhereFloat64 counts matches in one fused scan with zone-map
// pruning; the generic CountFloat64 remains the fallback for arbitrary
// predicates.
func CountWhereFloat64(cfg Config, pieces []Piece, p Pred[float64]) (int64, error) {
	if err := checkSize8(pieces, "fused float64 count"); err != nil {
		return 0, err
	}
	ot := obsCountWhere.start(cfg.Policy)
	kept, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsFloat64(z, p) })
	raw, comp := splitComp(kept)
	_, n := parallelSumCount(cfg, raw, func(v layout.ColVector, from, to int) (float64, int64) {
		return sumWhereF64(v, from, to, p)
	})
	if len(comp) > 0 {
		cn, err := compCountF64(cfg, comp, p)
		if err != nil {
			ot.end()
			return 0, err
		}
		n += cn
	}
	cfg.chargeScan(kept)
	ot.end()
	return n, nil
}

// CountWhereInt64 is CountWhereFloat64 for int64 columns.
func CountWhereInt64(cfg Config, pieces []Piece, p Pred[int64]) (int64, error) {
	if err := checkSize8(pieces, "fused int64 count"); err != nil {
		return 0, err
	}
	ot := obsCountWhere.start(cfg.Policy)
	kept, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsInt64(z, p) })
	raw, comp := splitComp(kept)
	_, n := parallelSumCount(cfg, raw, func(v layout.ColVector, from, to int) (float64, int64) {
		s, c := sumWhereI64(v, from, to, p)
		return float64(s), c
	})
	if len(comp) > 0 {
		cn, err := compCountI64(cfg, comp, p)
		if err != nil {
			ot.end()
			return 0, err
		}
		n += cn
	}
	cfg.chargeScan(kept)
	ot.end()
	return n, nil
}

// SelVec is a compact selection vector: the sorted global row positions
// a selection produced, backed by a pooled buffer. Callers that are done
// with the positions should Release the vector so high-selectivity
// results recycle instead of stranding their allocation.
type SelVec struct {
	pos []uint64
}

// Positions returns the sorted matching positions. The slice is invalid
// after Release.
func (s *SelVec) Positions() []uint64 {
	if s == nil {
		return nil
	}
	return s.pos
}

// Len returns the number of selected positions.
func (s *SelVec) Len() int {
	if s == nil {
		return 0
	}
	return len(s.pos)
}

// Release returns the backing buffer to the shared pool. The vector is
// empty afterwards; Release is idempotent.
func (s *SelVec) Release() {
	if s == nil || s.pos == nil {
		return
	}
	pool.PutPositions(s.pos)
	s.pos = nil
}

// SelectFloat64Pred scans a float64 column view with a specialized
// predicate kernel and returns the selection vector of matching global
// positions. Pieces excluded by their zone maps are skipped entirely.
func SelectFloat64Pred(cfg Config, pieces []Piece, p Pred[float64]) (*SelVec, error) {
	if err := checkSize8(pieces, "float64 predicate selection"); err != nil {
		return nil, err
	}
	if err := rejectComp(pieces, "predicate selection"); err != nil {
		return nil, err
	}
	ot := obsSelectPred.start(cfg.Policy)
	kept, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsFloat64(z, p) })
	out := selectPositionsInto(cfg, kept, func(buf []uint64, gFrom, gTo int) []uint64 {
		eachRange(kept, gFrom, gTo, func(pc Piece, from, to int) {
			buf = appendWhereF64(buf, pc.Rows.Begin, pc.Vec, from, to, p)
		})
		return buf
	})
	cfg.chargeScan(kept)
	ot.end()
	return &SelVec{pos: out}, nil
}

// SelectInt64Pred is SelectFloat64Pred for int64 columns.
func SelectInt64Pred(cfg Config, pieces []Piece, p Pred[int64]) (*SelVec, error) {
	if err := checkSize8(pieces, "int64 predicate selection"); err != nil {
		return nil, err
	}
	if err := rejectComp(pieces, "predicate selection"); err != nil {
		return nil, err
	}
	ot := obsSelectPred.start(cfg.Policy)
	kept, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsInt64(z, p) })
	out := selectPositionsInto(cfg, kept, func(buf []uint64, gFrom, gTo int) []uint64 {
		eachRange(kept, gFrom, gTo, func(pc Piece, from, to int) {
			buf = appendWhereI64(buf, pc.Rows.Begin, pc.Vec, from, to, p)
		})
		return buf
	})
	cfg.chargeScan(kept)
	ot.end()
	return &SelVec{pos: out}, nil
}

// parallelSumCount folds pieces into a (sum, count) pair under the
// configured policy; the partial kernel returns its range's partials.
// It mirrors parallelSum with a second pooled partials array for the
// counts (exact in float64 up to 2^53, far beyond any fragment).
func parallelSumCount(cfg Config, pieces []Piece, kernel func(v layout.ColVector, from, to int) (float64, int64)) (float64, int64) {
	total := totalLen(pieces)
	if total == 0 {
		return 0, 0
	}
	foldInto := func(sums, counts []float64, slot, gFrom, gTo int) {
		eachRange(pieces, gFrom, gTo, func(p Piece, from, to int) {
			s, c := kernel(p.Vec, from, to)
			sums[slot] += s
			counts[slot] += float64(c)
		})
	}
	reduce := func(sums, counts []float64) (float64, int64) {
		var sum, cnt float64
		for i := range sums {
			sum += sums[i]
			cnt += counts[i]
		}
		pool.PutFloat64s(sums)
		pool.PutFloat64s(counts)
		return sum, int64(cnt)
	}
	switch cfg.Policy {
	case MorselDriven:
		slots := pool.Slots()
		sums, counts := pool.GetFloat64s(slots), pool.GetFloat64s(slots)
		pool.Run(total, pool.MorselSize(), slots, func(slot, from, to int) {
			foldInto(sums, counts, slot, from, to)
		})
		return reduce(sums, counts)
	case MultiThreaded:
		th := cfg.threads()
		if th > 1 {
			sums, counts := pool.GetFloat64s(th), pool.GetFloat64s(th)
			var wg sync.WaitGroup
			for w := 0; w < th; w++ {
				gFrom, gTo := blockRange(w, th, total)
				if gFrom >= gTo {
					break
				}
				wg.Add(1)
				go func(w, gFrom, gTo int) {
					defer wg.Done()
					foldInto(sums, counts, w, gFrom, gTo)
				}(w, gFrom, gTo)
			}
			wg.Wait()
			return reduce(sums, counts)
		}
		fallthrough
	default:
		var sum float64
		var cnt int64
		for _, p := range pieces {
			s, c := kernel(p.Vec, 0, p.Vec.Len)
			sum += s
			cnt += c
		}
		return sum, cnt
	}
}
