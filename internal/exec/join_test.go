package exec

import (
	"errors"
	"testing"
	"testing/quick"

	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
)

// orderLayout builds an "orders" table whose item_id column references
// item ids with duplicates: order i references item i%items.
func orderLayout(t *testing.T, n, items uint64) *layout.Layout {
	t.Helper()
	s := schema.MustNew(schema.Int64Attr("o_id"), schema.Int64Attr("o_item_id"))
	l, err := layout.Horizontal(host(), "orders", s, n, n, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if err := l.Fragments()[0].AppendTuplet([]schema.Value{
			schema.IntValue(int64(i)), schema.IntValue(int64(i % items)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestHashJoin(t *testing.T) {
	const items, orders = 10, 25
	il, _ := buildLayout(t, layout.NSM, true, items) // item ids 0..9 (col 0)
	ol := orderLayout(t, orders, items)

	buildKeys, err := ColumnView(il, 0, items)
	if err != nil {
		t.Fatal(err)
	}
	probeKeys, err := ColumnView(ol, 1, orders)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := HashJoin(Single(), buildKeys, probeKeys)
	if err != nil {
		t.Fatal(err)
	}
	// Every order matches exactly one item: 25 pairs.
	if len(pairs) != orders {
		t.Fatalf("pairs = %d, want %d", len(pairs), orders)
	}
	for i, p := range pairs {
		if p.Build != p.Probe%items {
			t.Fatalf("pair %d = %+v, want build %d", i, p, p.Probe%items)
		}
		if i > 0 && pairs[i-1].Probe > p.Probe {
			t.Fatal("pairs not sorted by probe")
		}
	}
	// Position-list extraction: 10 distinct items matched.
	positions := BuildPositions(pairs)
	if len(positions) != items {
		t.Fatalf("positions = %v", positions)
	}
	for i, p := range positions {
		if p != uint64(i) {
			t.Fatalf("positions = %v", positions)
		}
	}
	// The join output feeds materialization — the paper's pipeline.
	recs, err := Materialize(Single(), il, positions)
	if err != nil || len(recs) != items {
		t.Fatalf("materialize after join: %v, %v", recs, err)
	}
}

func TestHashJoinDuplicatesAndMisses(t *testing.T) {
	// Build side with duplicate keys joins pairwise; unmatched probe keys
	// produce nothing.
	s := schema.MustNew(schema.Int64Attr("k"))
	mk := func(vals []int64) []Piece {
		l, err := layout.Horizontal(host(), "t", s, uint64(len(vals)), uint64(len(vals)), layout.NSM)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			l.Fragments()[0].AppendTuplet([]schema.Value{schema.IntValue(v)})
		}
		p, err := ColumnView(l, 0, uint64(len(vals)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pairs, err := HashJoin(Single(), mk([]int64{7, 7, 9}), mk([]int64{7, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 { // probe 7 matches both build 7s; probe 5 none
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].Build != 0 || pairs[1].Build != 1 || pairs[0].Probe != 0 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestHashJoinRejectsBadKeys(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 10)
	chars, _ := ColumnView(l, 2, 10) // CHAR(8)... size 8 is allowed; use float? also 8.
	// 8-byte columns are structurally valid keys; a truly invalid key
	// width needs a non-4/8-byte column, which this schema lacks — build
	// one.
	s := schema.MustNew(schema.CharAttr("c", 3))
	cl, err := layout.Horizontal(host(), "c", s, 2, 2, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	cl.Fragments()[0].AppendTuplet([]schema.Value{schema.CharValue("ab")})
	bad, _ := ColumnView(cl, 0, 1)
	if _, err := HashJoin(Single(), bad, chars); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := HashJoin(Single(), chars, bad); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
}

// Property: |join| equals the sum over keys of build-count × probe-count.
func TestQuickJoinCardinality(t *testing.T) {
	f := func(buildRaw, probeRaw []uint8) bool {
		if len(buildRaw) == 0 || len(probeRaw) == 0 {
			return true
		}
		s := schema.MustNew(schema.Int64Attr("k"))
		mk := func(vals []uint8) ([]Piece, map[int64]int, bool) {
			l, err := layout.Horizontal(host(), "t", s, uint64(len(vals)), uint64(len(vals)), layout.NSM)
			if err != nil {
				return nil, nil, false
			}
			counts := map[int64]int{}
			for _, v := range vals {
				k := int64(v % 16)
				counts[k]++
				if l.Fragments()[0].AppendTuplet([]schema.Value{schema.IntValue(k)}) != nil {
					return nil, nil, false
				}
			}
			p, err := ColumnView(l, 0, uint64(len(vals)))
			if err != nil {
				return nil, nil, false
			}
			return p, counts, true
		}
		b, bc, ok1 := mk(buildRaw)
		p, pc, ok2 := mk(probeRaw)
		if !ok1 || !ok2 {
			return false
		}
		pairs, err := HashJoin(Single(), b, p)
		if err != nil {
			return false
		}
		want := 0
		for k, n := range bc {
			want += n * pc[k]
		}
		return len(pairs) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
