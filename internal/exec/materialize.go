package exec

import (
	"fmt"
	"sync"

	"hybridstore/internal/exec/pool"
	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
)

// Materialize resolves a sorted position list against a layout and returns
// the full records (the paper's record-centric access pattern: the output
// of the preceding join operator is a sorted position list, and the
// operator materializes all fields of the addressed records). Under
// MultiThreaded the position list is partitioned blockwise.
func Materialize(cfg Config, l *layout.Layout, positions []uint64) ([]schema.Record, error) {
	ot := obsMaterialize.start(cfg.Policy)
	out := make([]schema.Record, len(positions))
	if cfg.Policy == MorselDriven && len(positions) > 0 {
		slots := pool.Slots()
		errs := make([]error, slots)
		pool.Run(len(positions), pool.MorselSize(), slots, func(slot, from, to int) {
			if errs[slot] != nil {
				return
			}
			for i := from; i < to; i++ {
				rec, e := l.Record(positions[i])
				if e != nil {
					errs[slot] = fmt.Errorf("materializing position %d: %w", positions[i], e)
					return
				}
				out[i] = rec
			}
		})
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		cfg.chargeMaterialize(l, len(positions))
		ot.end()
		return out, nil
	}
	th := cfg.threads()
	var err error
	if th == 1 {
		for i, row := range positions {
			out[i], err = l.Record(row)
			if err != nil {
				return nil, fmt.Errorf("materializing position %d: %w", row, err)
			}
		}
	} else {
		per := (len(positions) + th - 1) / th
		errs := make([]error, th)
		var wg sync.WaitGroup
		for w := 0; w < th; w++ {
			from := w * per
			if from >= len(positions) {
				break
			}
			to := from + per
			if to > len(positions) {
				to = len(positions)
			}
			wg.Add(1)
			go func(w, from, to int) {
				defer wg.Done()
				for i := from; i < to; i++ {
					rec, e := l.Record(positions[i])
					if e != nil {
						errs[w] = fmt.Errorf("materializing position %d: %w", positions[i], e)
						return
					}
					out[i] = rec
				}
			}(w, from, to)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	}
	cfg.chargeMaterialize(l, len(positions))
	ot.end()
	return out, nil
}

// chargeMaterialize prices a record-centric materialization: the number
// of distinct fragments a record's fields are spread over determines the
// cache misses per record (1-2 lines for NSM, one miss per attribute for
// emulated DSM).
func (c Config) chargeMaterialize(l *layout.Layout, k int) {
	if c.Clock == nil || k == 0 {
		return
	}
	s := l.Schema()
	// Count the distinct fragments covering row 0's attributes as the
	// per-record spread; uniform layouts make this exact.
	frags := make(map[*layout.Fragment]bool)
	for col := 0; col < s.Arity(); col++ {
		if f, err := l.FragmentAt(0, col); err == nil {
			frags[f] = true
		}
	}
	spread := len(frags)
	if spread == 0 {
		spread = 1
	}
	var rows uint64
	for _, f := range l.Fragments() {
		if f.Rows().End > rows {
			rows = f.Rows().End
		}
	}
	if c.Policy == MorselDriven {
		c.Clock.Advance(c.Host.MaterializeMorselNs(int64(k), int64(rows), s.Width(), spread, c.threads()))
		return
	}
	c.Clock.Advance(c.Host.MaterializeNs(int64(k), int64(rows), s.Width(), spread, c.threads()))
}
