package exec

import (
	"hybridstore/internal/obs"
	"hybridstore/internal/stats"
)

// This file is the shared-scan operator behind the serving layer's
// batching scheduler (Crescando/SharedDB-style): K sargable predicates
// over the same column evaluated in ONE pass over the data instead of K.
// Concurrent dashboard-style queries that arrive within a batching
// window differ only in their predicate bounds; streaming each fragment
// once and testing all predicates against the resident cache line
// amortizes the memory traffic that dominates fused aggregation.
//
// Contract: result k is the answer SumFloat64Where(cfg, pieces,
// preds[k]) would have produced. Under SingleThreaded the fold order per
// predicate is piece-major exactly like the solo operator's sequential
// fold, so results are bit-identical; under the parallel host policies
// the solo operator folds worker partials in slot order, so shared and
// solo agree exactly whenever the sums are fold-order insensitive
// (integer-valued data, or any count). The serving layer runs requests
// SingleThreaded — inter-query parallelism comes from the batch of
// clients, not from intra-query threads — which keeps the bit-identity
// guarantee end to end.

// Shared-scan observability: ops counts operator invocations, preds the
// predicates folded into them, and saved_passes the passes over the data
// the sharing avoided (preds - ops). bytes_once records the union bytes
// each invocation streamed.
var (
	obsSharedSum      = newOpObs("sharedsumwhere")
	mSharedPreds      = obs.NewCounter("exec.sharedscan.preds")
	mSharedSaved      = obs.NewCounter("exec.sharedscan.saved_passes")
	gSharedBytesOnce  = obs.NewGauge("exec.sharedscan.last_bytes_once")
	mSharedBytesSaved = obs.NewCounter("exec.sharedscan.saved_bytes_total")
)

// SumFloat64WhereMulti computes SUM(col), COUNT(*) WHERE preds[k] for
// every k in one shared scan. Zone maps are consulted per predicate —
// a piece is streamed when at least one predicate admits it and each
// predicate only sees the pieces its own zone test admits, exactly as in
// K solo scans — but the platform model is charged for the union of
// surviving pieces once, not K times: that is the batching win.
func SumFloat64WhereMulti(cfg Config, pieces []Piece, preds []Pred[float64]) ([]float64, []int64, error) {
	sums := make([]float64, len(preds))
	counts := make([]int64, len(preds))
	if len(preds) == 0 {
		return sums, counts, nil
	}
	if len(preds) == 1 {
		s, n, err := SumFloat64Where(cfg, pieces, preds[0])
		if err != nil {
			return nil, nil, err
		}
		sums[0], counts[0] = s, n
		return sums, counts, nil
	}
	if err := checkSize8(pieces, "shared fused float64 sum"); err != nil {
		return nil, nil, err
	}
	ot := obsSharedSum.start(cfg.Policy)
	mSharedPreds.Add(int64(len(preds)))
	mSharedSaved.Add(int64(len(preds) - 1))

	// Per-predicate zone decisions, with the same counter/span/clock
	// accounting K solo scans would have produced. The admit matrix
	// drives the shared pass; kept[k] feeds the compressed-domain path.
	admit := make([]bool, len(preds)*len(pieces))
	kept := make([][]Piece, len(preds))
	var perPredBytes int64
	for k := range preds {
		p := preds[k]
		kp, _ := pruneByZone(cfg, pieces, func(z *stats.Zone) bool { return zoneAdmitsFloat64(z, p) })
		kept[k] = kp
		row := admit[k*len(pieces) : (k+1)*len(pieces)]
		for i := range pieces {
			row[i] = zoneAdmitsFloat64(pieces[i].Zone, p)
			if row[i] {
				perPredBytes += int64(pieces[i].Vec.Len) * int64(pieces[i].Vec.Size)
			}
		}
	}

	// Shared raw pass, piece-major: each surviving raw piece is streamed
	// once and every admitting predicate folds it in original piece
	// order — the solo sequential fold order per predicate.
	for i := range pieces {
		pc := &pieces[i]
		if pc.Comp != nil {
			continue
		}
		for k := range preds {
			if !admit[k*len(pieces)+i] {
				continue
			}
			s, n := sumWhereF64(pc.Vec, 0, pc.Vec.Len, preds[k])
			sums[k] += s
			counts[k] += n
		}
	}

	// Compressed pieces fold after the raw ones per predicate, matching
	// the solo operator's raw-then-compressed order. Encoded images are
	// evaluated per predicate at encoding granularity; the encoded bytes
	// are typically a small fraction of the raw union.
	for k := range preds {
		var comp []Piece
		for _, pc := range kept[k] {
			if pc.Comp != nil {
				comp = append(comp, pc)
			}
		}
		if len(comp) == 0 {
			continue
		}
		cs, cn, err := compSumCountF64(cfg, comp, preds[k])
		if err != nil {
			ot.end()
			return nil, nil, err
		}
		sums[k] += cs
		counts[k] += cn
	}

	// Charge the union of surviving pieces once. K solo scans would have
	// streamed perPredBytes in total; the difference is the traffic the
	// shared pass saved.
	var union []Piece
	var unionBytes int64
	for i := range pieces {
		for k := range preds {
			if admit[k*len(pieces)+i] {
				union = append(union, pieces[i])
				unionBytes += int64(pieces[i].Vec.Len) * int64(pieces[i].Vec.Size)
				break
			}
		}
	}
	cfg.chargeScan(union)
	gSharedBytesOnce.Set(unionBytes)
	if saved := perPredBytes - unionBytes; saved > 0 {
		mSharedBytesSaved.Add(saved)
	}
	ot.end()
	return sums, counts, nil
}
