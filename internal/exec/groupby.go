package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hybridstore/internal/exec/pool"
)

// GroupResult is one group of a grouped aggregation.
type GroupResult struct {
	// Key is the grouping value (int64-widened).
	Key int64
	// Sum is the aggregated float64 total.
	Sum float64
	// Count is the group cardinality.
	Count int64
}

// GroupSumFloat64 computes SELECT key, SUM(val), COUNT(*) GROUP BY key
// over two parallel column views ("mostly aggregations and groupings are
// executed on read-only data" is the paper's characterization of the
// OLAP side, Section II-A). keys must be an int64 or int32 column view,
// vals a float64 one; both must cover the same positions. Results come
// back sorted by key. Under MultiThreaded, workers build partial tables
// over blockwise partitions which are then merged.
func GroupSumFloat64(cfg Config, keys, vals []Piece) ([]GroupResult, error) {
	if err := checkAligned(keys, vals); err != nil {
		return nil, err
	}
	for _, p := range vals {
		if p.Vec.Size != 8 {
			return nil, fmt.Errorf("%w: float64 aggregate over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	for _, p := range keys {
		if p.Vec.Size != 8 && p.Vec.Size != 4 {
			return nil, fmt.Errorf("%w: group key of %d bytes", ErrBadColumn, p.Vec.Size)
		}
	}

	ot := obsGroupBy.start(cfg.Policy)
	total := totalLen(keys)
	var tables []map[int64]*GroupResult
	switch {
	case cfg.Policy == MorselDriven && total > 0:
		// Partial hash tables hold query results, so they are per-call
		// (never recycled through sync.Pool) — a stale table must not leak
		// one query's groups into another.
		slots := pool.Slots()
		tables = make([]map[int64]*GroupResult, slots)
		pool.Run(total, pool.MorselSize(), slots, func(slot, from, to int) {
			if tables[slot] == nil {
				tables[slot] = make(map[int64]*GroupResult)
			}
			groupPartialInto(tables[slot], keys, vals, from, to)
		})
	case cfg.threads() == 1:
		tables = []map[int64]*GroupResult{groupPartial(keys, vals, 0, total)}
	default:
		th := cfg.threads()
		tables = make([]map[int64]*GroupResult, th)
		var wg sync.WaitGroup
		for w := 0; w < th; w++ {
			from, to := blockRange(w, th, total)
			if from >= to {
				break
			}
			wg.Add(1)
			go func(w, from, to int) {
				defer wg.Done()
				tables[w] = groupPartial(keys, vals, from, to)
			}(w, from, to)
		}
		wg.Wait()
	}

	merged := make(map[int64]*GroupResult)
	for _, t := range tables {
		for k, g := range t {
			if m, ok := merged[k]; ok {
				m.Sum += g.Sum
				m.Count += g.Count
			} else {
				merged[k] = g
			}
		}
	}
	out := make([]GroupResult, 0, len(merged))
	for _, g := range merged {
		out = append(out, *g)
	}
	SortGroupResults(out)
	cfg.chargeScan(keys)
	cfg.chargeScan(vals)
	ot.end()
	return out, nil
}

// groupPartial builds a hash aggregate over global positions [from, to).
func groupPartial(keys, vals []Piece, from, to int) map[int64]*GroupResult {
	table := make(map[int64]*GroupResult)
	groupPartialInto(table, keys, vals, from, to)
	return table
}

// groupPartialInto folds global positions [from, to) into an existing
// partial table (morsel-driven workers accumulate one table per slot
// across many morsels).
func groupPartialInto(table map[int64]*GroupResult, keys, vals []Piece, from, to int) {
	base := 0
	for pi := range keys {
		kp, vp := keys[pi].Vec, vals[pi].Vec
		pFrom, pTo := from-base, to-base
		base += kp.Len
		if pTo <= 0 {
			break
		}
		if pFrom < 0 {
			pFrom = 0
		}
		if pFrom >= kp.Len {
			continue
		}
		if pTo > kp.Len {
			pTo = kp.Len
		}
		kOff := kp.Base + pFrom*kp.Stride
		vOff := vp.Base + pFrom*vp.Stride
		for i := pFrom; i < pTo; i++ {
			var key int64
			if kp.Size == 8 {
				key = int64(binary.LittleEndian.Uint64(kp.Data[kOff:]))
			} else {
				key = int64(int32(binary.LittleEndian.Uint32(kp.Data[kOff:])))
			}
			val := math.Float64frombits(binary.LittleEndian.Uint64(vp.Data[vOff:]))
			if g, ok := table[key]; ok {
				g.Sum += val
				g.Count++
			} else {
				table[key] = &GroupResult{Key: key, Sum: val, Count: 1}
			}
			kOff += kp.Stride
			vOff += vp.Stride
		}
	}
}

// checkAligned verifies both views cover identical position runs.
func checkAligned(keys, vals []Piece) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("%w: %d key pieces vs %d value pieces", ErrBadColumn, len(keys), len(vals))
	}
	for i := range keys {
		if keys[i].Rows != vals[i].Rows || keys[i].Vec.Len != vals[i].Vec.Len {
			return fmt.Errorf("%w: piece %d misaligned (%v vs %v)", ErrBadColumn, i, keys[i].Rows, vals[i].Rows)
		}
	}
	return nil
}
