// Package exec implements the bulk-style operators of the paper's
// experiment (Section II-B): attribute-centric aggregation (query Q2),
// record-centric materialization by position list (query Q1 generalized),
// and selection producing sorted position lists, under the two host
// threading policies the paper compares — single-threaded sequential
// execution with no thread management at all, and multi-threaded
// execution with blockwise partitioning of the input positions.
//
// Operators do real work over fragment bytes in any linearization (via
// layout.ColVector) and, when configured with a simulated clock, also
// charge the calibrated platform cost from internal/perfmodel so harness
// runs report Figure-2-shaped timings regardless of this container's
// single CPU. A Volcano-style row iterator is included for the
// tuple-at-a-time comparison discussed in Section II-A.
//
// A third policy, MorselDriven, executes on the process-wide resident
// worker pool of internal/exec/pool: operators enqueue fixed-size
// morsels instead of spawning goroutines, and per-worker partial-result
// buffers are recycled through sync.Pool, so steady-state calls pay
// neither thread management nor allocation on the hot path.
package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"hybridstore/internal/compress"
	"hybridstore/internal/exec/pool"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/stats"
)

// Operator observability: each operator reports a per-policy invocation
// counter plus a per-policy latency histogram. The counter is updated on
// every call (one atomic add); wall-clock latency is sampled 1-in-64 so
// the tiny-input fast path — the exact case the morsel pool exists for —
// never pays two clock reads per call. Sampled histograms still converge
// on the steady-state latency distribution the adaptation layer needs.
const latSampleMask = 63

// opObs holds the registered handles of one operator family, indexed by
// Policy.
type opObs struct {
	ops [3]*obs.Counter
	lat [3]*obs.Histogram
}

// newOpObs registers the per-policy metrics of one operator.
func newOpObs(op string) opObs {
	var o opObs
	for p := SingleThreaded; p <= MorselDriven; p++ {
		o.ops[p] = obs.NewCounter("exec." + op + "." + p.String() + ".ops")
		o.lat[p] = obs.NewHistogram("exec." + op + "." + p.String() + ".ns")
	}
	return o
}

// Registered operator families.
var (
	obsSum         = newOpObs("sum")
	obsSelect      = newOpObs("select")
	obsCount       = newOpObs("count")
	obsMinMax      = newOpObs("minmax")
	obsMaterialize = newOpObs("materialize")
	obsGroupBy     = newOpObs("groupby")
)

// opTimer is an in-flight (possibly unsampled) operator measurement; the
// zero value is inert so unsampled calls cost nothing on completion.
type opTimer struct {
	h  *obs.Histogram
	t0 time.Time
}

// start counts one invocation and opens a latency sample every 64th
// call.
func (o *opObs) start(p Policy) opTimer {
	i := int(p)
	if i >= len(o.ops) {
		i = 0
	}
	if o.ops[i].Inc()&latSampleMask != 0 {
		return opTimer{}
	}
	return opTimer{h: o.lat[i], t0: time.Now()}
}

// end records the sampled latency, if this call was sampled.
func (t opTimer) end() {
	if t.h != nil {
		t.h.ObserveSince(t.t0)
	}
}

// Policy is the host threading policy.
type Policy uint8

// Threading policies.
const (
	// SingleThreaded runs sequentially on the calling goroutine with no
	// thread management involved at all.
	SingleThreaded Policy = iota
	// MultiThreaded partitions the input blockwise over Config.Threads
	// workers: each worker operates on one exclusive, subsequent range of
	// input positions.
	MultiThreaded
	// MorselDriven executes on the shared resident worker pool
	// (internal/exec/pool): the input positions are split into fixed-size
	// morsels that idle workers claim, so no threads are created per
	// query and skewed pieces rebalance across workers.
	MorselDriven
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case SingleThreaded:
		return "single-threaded"
	case MultiThreaded:
		return "multi-threaded"
	case MorselDriven:
		return "morsel-driven"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config selects the execution policy and, optionally, simulated-time
// accounting: when Clock is non-nil each operator charges the calibrated
// cost of its work on the Host profile.
type Config struct {
	// Policy is the threading policy.
	Policy Policy
	// Threads is the worker count for MultiThreaded (the paper fixes 8).
	Threads int
	// Host is the platform profile used for simulated-time charging.
	Host perfmodel.HostProfile
	// Clock, when non-nil, accumulates simulated time.
	Clock *perfmodel.Clock
}

// Single returns a sequential configuration with no time accounting.
func Single() Config { return Config{Policy: SingleThreaded} }

// Multi returns a blockwise multi-threaded configuration sized to the
// machine: the worker count resolves to runtime.GOMAXPROCS(0). The
// paper's fixed eight-thread policy is MultiN(8), used by the Figure-2
// harness.
func Multi() Config { return Config{Policy: MultiThreaded} }

// MultiN returns a blockwise multi-threaded configuration with exactly n
// workers.
func MultiN(n int) Config { return Config{Policy: MultiThreaded, Threads: n} }

// Morsel returns the morsel-driven configuration executing on the shared
// resident worker pool.
func Morsel() Config { return Config{Policy: MorselDriven} }

// threads returns the effective worker count.
func (c Config) threads() int {
	switch c.Policy {
	case MultiThreaded:
		if c.Threads >= 1 {
			return c.Threads
		}
		return runtime.GOMAXPROCS(0)
	case MorselDriven:
		return pool.Workers()
	default:
		return 1
	}
}

// Exec errors.
var (
	// ErrBadColumn is returned when an operator is asked for an attribute
	// the fragments do not cover, or of the wrong kind.
	ErrBadColumn = errors.New("exec: bad column")
	// ErrGap is returned when a column view has uncovered rows.
	ErrGap = errors.New("exec: rows not covered by layout")
)

// Piece is one contiguous run of a column: the rows it covers and the raw
// strided vector holding them.
type Piece struct {
	// Rows is the covered row range.
	Rows layout.RowRange
	// Vec is the raw strided access to the fields.
	Vec layout.ColVector
	// Zone is the owning fragment's zone map for this column, or nil.
	// The fragment-wide envelope is a superset of any clipped piece's
	// value range, so pruning against it stays conservative.
	Zone *stats.Zone
	// FragID and FragVersion identify the owning fragment and the write
	// version its bytes were read at; together with the clip they key
	// device-resident images (device.FragCache). A zero FragID marks a
	// piece with no stable owner — synthetic or engine-private vectors —
	// which the device cache treats as uncacheable.
	FragID      uint64
	FragVersion uint64
	// Comp, when non-nil, marks a compressed piece: the column's sealed
	// compressed image replaces Vec.Data as the execution format. Vec
	// still carries the logical metadata (Len, Size, Stride) so zone
	// pruning and accounting work unchanged, but Vec.Data is nil — the
	// sum/count operators evaluate predicates in the compressed domain
	// (run-, code- or delta-granular) and the device path ships the
	// marshaled image over the bus instead of dense bytes. Operators
	// without a compressed path (selection, materialization) reject
	// compressed pieces.
	Comp *compress.Column
}

// ColumnView assembles the pieces covering attribute col for rows
// [0, rows) from a layout, choosing the first covering fragment for each
// run (engines with overlapping layouts route reads the same way). It
// fails with ErrGap when a row is uncovered.
func ColumnView(l *layout.Layout, col int, rows uint64) ([]Piece, error) {
	var out []Piece
	for row := uint64(0); row < rows; {
		f, err := l.FragmentAt(row, col)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d col %d", ErrGap, row, col)
		}
		v, err := f.ColVector(col)
		if err != nil {
			return nil, err
		}
		begin := row
		end := f.Rows().End
		if end > rows {
			end = rows
		}
		// Clip the vector to [begin,end) within the fragment.
		skip := int(begin - f.Rows().Begin)
		v.Base += skip * v.Stride
		v.Len = int(end - begin)
		stored := f.Len() - skip
		if v.Len > stored {
			v.Len = stored
		}
		if v.Len < 0 {
			v.Len = 0
		}
		out = append(out, Piece{
			Rows: layout.RowRange{Begin: begin, End: begin + uint64(v.Len)},
			Vec:  v, Zone: f.Stats(col),
			FragID: f.ID(), FragVersion: f.Version(),
		})
		if uint64(v.Len) < end-begin {
			return nil, fmt.Errorf("%w: rows [%d,%d) allocated but not filled",
				ErrGap, begin+uint64(v.Len), end)
		}
		row = end
	}
	return out, nil
}

// totalLen sums piece lengths.
func totalLen(pieces []Piece) int {
	n := 0
	for _, p := range pieces {
		n += p.Vec.Len
	}
	return n
}

// chargeScan prices an attribute-centric scan on the configured profile.
func (c Config) chargeScan(pieces []Piece) {
	if c.Clock == nil {
		return
	}
	var ns float64
	for _, p := range pieces {
		ns += scanPieceNs(c.Host, p, 1) // bandwidth/ALU term once per piece
	}
	switch c.Policy {
	case MorselDriven:
		// The resident pool charges one wake plus amortized per-morsel
		// dispatch instead of per-query thread management.
		morsels := int64(pool.Morsels(totalLen(pieces), pool.MorselSize()))
		ns = c.Host.MorselAmortizedNs(ns, morsels, c.threads())
	case MultiThreaded:
		// Thread management is paid once per operator invocation, and the
		// streaming term divides across workers.
		if th := c.threads(); th > 1 {
			ns = ns/float64(th) + c.Host.ThreadMgmtNs(th)
		}
	}
	c.Clock.Advance(ns)
}

// scanPieceNs prices one piece single-threaded. A compressed piece
// streams its encoded payload instead of the raw bytes, with the ALU
// term at the encoding's predicate granularity — one evaluation per run
// for RLE, one bit test per element otherwise.
func scanPieceNs(h perfmodel.HostProfile, p Piece, threads int) float64 {
	if p.Comp != nil {
		ops := int64(p.Comp.Len())
		if p.Comp.Encoding() == compress.RLE {
			ops = int64(p.Comp.Runs())
		}
		return h.SeqScanNs(int64(p.Comp.CompressedBytes()), ops)
	}
	return h.ScanSumNs(int64(p.Vec.Len), p.Vec.Size, p.Vec.Stride, threads)
}

// SumFloat64 sums a float64 column given as pieces. Under MultiThreaded
// the element positions are partitioned blockwise across workers.
func SumFloat64(cfg Config, pieces []Piece) (float64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return 0, fmt.Errorf("%w: float64 sum over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	ot := obsSum.start(cfg.Policy)
	raw, comp := splitComp(pieces)
	sum := parallelSum(cfg, raw, func(v layout.ColVector, from, to int) float64 {
		var acc float64
		off := v.Base + from*v.Stride
		for i := from; i < to; i++ {
			acc += math.Float64frombits(binary.LittleEndian.Uint64(v.Data[off:]))
			off += v.Stride
		}
		return acc
	})
	if len(comp) > 0 {
		cs, err := compSumF64(cfg, comp)
		if err != nil {
			ot.end()
			return 0, err
		}
		sum += cs
	}
	cfg.chargeScan(pieces)
	ot.end()
	return sum, nil
}

// SumInt64 sums an int64 column given as pieces.
func SumInt64(cfg Config, pieces []Piece) (int64, error) {
	for _, p := range pieces {
		if p.Vec.Size != 8 {
			return 0, fmt.Errorf("%w: int64 sum over %d-byte fields", ErrBadColumn, p.Vec.Size)
		}
	}
	ot := obsSum.start(cfg.Policy)
	raw, comp := splitComp(pieces)
	sum := parallelSum(cfg, raw, func(v layout.ColVector, from, to int) float64 {
		var acc int64
		off := v.Base + from*v.Stride
		for i := from; i < to; i++ {
			acc += int64(binary.LittleEndian.Uint64(v.Data[off:]))
			off += v.Stride
		}
		return float64(acc)
	})
	total := int64(sum)
	if len(comp) > 0 {
		cs, err := compSumI64(cfg, comp)
		if err != nil {
			ot.end()
			return 0, err
		}
		total += cs
	}
	cfg.chargeScan(pieces)
	ot.end()
	return total, nil
}

// eachRange visits the sub-ranges of pieces covering the global element
// positions [gFrom, gTo), in order: fn receives each intersected piece
// and the local element range within it.
func eachRange(pieces []Piece, gFrom, gTo int, fn func(p Piece, from, to int)) {
	base := 0
	for _, p := range pieces {
		pFrom, pTo := gFrom-base, gTo-base
		base += p.Vec.Len
		if pTo <= 0 {
			break
		}
		if pFrom < 0 {
			pFrom = 0
		}
		if pFrom >= p.Vec.Len {
			continue
		}
		if pTo > p.Vec.Len {
			pTo = p.Vec.Len
		}
		fn(p, pFrom, pTo)
	}
}

// foldRange applies the sum kernel to the global element positions
// [gFrom, gTo) across pieces and returns the partial sum.
func foldRange(pieces []Piece, gFrom, gTo int, kernel func(v layout.ColVector, from, to int) float64) float64 {
	var acc float64
	base := 0
	for _, p := range pieces {
		pFrom, pTo := gFrom-base, gTo-base
		base += p.Vec.Len
		if pTo <= 0 {
			break
		}
		if pFrom < 0 {
			pFrom = 0
		}
		if pFrom >= p.Vec.Len {
			continue
		}
		if pTo > p.Vec.Len {
			pTo = p.Vec.Len
		}
		acc += kernel(p.Vec, pFrom, pTo)
	}
	return acc
}

// blockRange returns worker w's blockwise share of total positions split
// over th workers; from >= to means the worker has no share.
func blockRange(w, th, total int) (from, to int) {
	per := (total + th - 1) / th
	from = w * per
	if from >= total {
		return total, total
	}
	to = from + per
	if to > total {
		to = total
	}
	return from, to
}

// parallelSum folds pieces with the configured policy. The partial kernel
// receives a vector and a [from,to) element range and returns its partial
// sum as float64 (exact for the int64 magnitudes the engines produce).
func parallelSum(cfg Config, pieces []Piece, kernel func(v layout.ColVector, from, to int) float64) float64 {
	total := totalLen(pieces)
	if cfg.Policy == MorselDriven && total > 0 {
		slots := pool.Slots()
		partials := pool.GetFloat64s(slots)
		pool.Run(total, pool.MorselSize(), slots, func(slot, from, to int) {
			partials[slot] += foldRange(pieces, from, to, kernel)
		})
		var acc float64
		for _, x := range partials {
			acc += x
		}
		pool.PutFloat64s(partials)
		return acc
	}
	th := cfg.threads()
	if th == 1 {
		var acc float64
		for _, p := range pieces {
			acc += kernel(p.Vec, 0, p.Vec.Len)
		}
		return acc
	}
	// Blockwise partitioning of the global position space.
	partials := pool.GetFloat64s(th)
	var wg sync.WaitGroup
	for w := 0; w < th; w++ {
		gFrom, gTo := blockRange(w, th, total)
		if gFrom >= gTo {
			break
		}
		wg.Add(1)
		go func(w, gFrom, gTo int) {
			defer wg.Done()
			partials[w] = foldRange(pieces, gFrom, gTo, kernel)
		}(w, gFrom, gTo)
	}
	wg.Wait()
	var acc float64
	for _, x := range partials {
		acc += x
	}
	pool.PutFloat64s(partials)
	return acc
}
