// Cross-device scheduling: MultiDeviceScan fans one logical column scan
// out across every card of a device.Env and, optionally, the host morsel
// pool — all running concurrently. Fragment homes come from the layout
// shard map; per-fragment placement then refines against warmth (a
// cache-resident image at the current version always stays on its card)
// and the perfmodel cost of shipping versus scanning in place, so a cold
// fragment the host can scan faster than the bus can carry it never
// crosses the bus. Partial results fold back in original piece order,
// which keeps the fleet's answers bit-identical to the single-card
// DeviceScan over the same pieces.
//
// Simulated-time accounting: every card charges its own lane clock while
// the fan-out runs, and Env.SettleMax folds the longest lane (or the host
// lane, if it ran longest) into the shared platform clock — concurrent
// lanes cost their maximum, which is exactly where multi-device throughput
// scaling comes from.
package exec

import (
	"fmt"
	"sync"

	"hybridstore/internal/device"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
	"hybridstore/internal/perfmodel"
)

var (
	obsMultiScan     = obs.NewSpanFamily("exec.multidevice_scan")
	mMultiHostPieces = obs.NewCounter("exec.multidevice.host_pieces")
	mMultiDevPieces  = obs.NewCounter("exec.multidevice.device_pieces")
)

// MultiDeviceScan schedules device-routed scans across a card fleet plus
// the host morsel pool.
type MultiDeviceScan struct {
	// Env is the card fleet. Required.
	Env *device.Env
	// Table namespaces cache keys (the owning relation's name).
	Table string
	// Shards maps fragment IDs to cards; nil falls back to hashing the
	// fragment ID over the fleet.
	Shards *layout.ShardMap
	// Host configures the host lane (policy, profile). When HostLane is
	// set and the profile is usable, cold fragments that are cheaper to
	// scan in place run here, concurrently with the cards.
	Host Config
	// HostLane enables the host leg of the fan-out.
	HostLane bool
	// Launch overrides the per-card reduction geometry (zero = default).
	Launch device.LaunchConfig
	// Stages overrides the per-card stream depth (0 = double buffering).
	Stages int
}

// cardScan builds the single-card DeviceScan for card i.
func (m *MultiDeviceScan) cardScan(i int) DeviceScan {
	c := m.Env.Card(i)
	return DeviceScan{GPU: c.GPU(), Cache: c.Cache(), Table: m.Table, Launch: m.Launch, Stages: m.Stages}
}

// homeCard returns the shard-map home of a piece.
func (m *MultiDeviceScan) homeCard(p Piece) int {
	if m.Shards != nil {
		h := m.Shards.DeviceFor(p.FragID)
		if h >= 0 && h < m.Env.N() {
			return h
		}
	}
	return int(p.FragID % uint64(m.Env.N()))
}

// resident reports whether the piece's image is warm on its home card at
// the piece's version.
func (m *MultiDeviceScan) resident(card, col int, p Piece) bool {
	key := device.FragKey{Table: m.Table, Frag: p.FragID, Col: col, Row0: int(p.Rows.Begin), Rows: p.Vec.Len}
	if p.Comp != nil {
		key.Rows = p.Comp.Len()
		key.Comp = true
	}
	return m.Env.Card(card).Cache().Resident(key, p.FragVersion)
}

// deviceCostNs prices a cold scan of one piece on a card: ship the image
// (compressed pieces ship their marshaled bytes) and run the reduction.
func (m *MultiDeviceScan) deviceCostNs(p Piece) float64 {
	prof := m.Env.Profile()
	n := p.Vec.Len
	bytes := int64(n * p.Vec.Size)
	if p.Comp != nil {
		n = p.Comp.Len()
		bytes = int64(p.Comp.MarshaledBytes())
	}
	cfg := m.Launch
	if cfg.Blocks <= 0 {
		cfg = device.DefaultReduceConfig()
		if n < cfg.Blocks*2 {
			cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
		}
	}
	return prof.TransferNs(bytes) + prof.ReduceKernelNs(int64(n), p.Vec.Size, p.Vec.Size, cfg.Blocks, cfg.ThreadsPerBlock)
}

// hostUsable reports whether the host lane can actually price and run
// work (a zero profile would divide by zero bandwidth).
func (m *MultiDeviceScan) hostUsable() bool {
	return m.HostLane && m.Host.Host.SeqBandwidth > 0
}

// place assigns each piece index to a card (by shard home) or to the host
// lane. admit carries the piece's zone verdict: inadmissible pieces stay
// on their home card, whose DeviceScan prunes them for free — routing
// them anywhere else would double-count the zone decision. Admissible
// cold pieces go to the host lane when it is enabled and the in-place
// scan is cheaper than bus plus kernel.
func (m *MultiDeviceScan) place(col int, pieces []Piece, admit func(Piece) bool) (perCard [][]int, host []int) {
	perCard = make([][]int, m.Env.N())
	hostOK := m.hostUsable()
	for j, p := range pieces {
		home := m.homeCard(p)
		if admit != nil && !admit(p) {
			perCard[home] = append(perCard[home], j)
			continue
		}
		if hostOK && !m.resident(home, col, p) &&
			scanPieceNs(m.Host.Host, p, 1) < m.deviceCostNs(p) {
			host = append(host, j)
			continue
		}
		perCard[home] = append(perCard[home], j)
	}
	return perCard, host
}

// hostLaneConfig returns the host-leg execution config charging a private
// scratch clock, so the scheduler can fold the host lane's simulated time
// into the concurrent-phase maximum instead of serializing it.
func (m *MultiDeviceScan) hostLaneConfig() (Config, *perfmodel.Clock) {
	cfg := m.Host
	if cfg.Clock == nil {
		return cfg, nil
	}
	lane := &perfmodel.Clock{}
	cfg.Clock = lane
	return cfg, lane
}

// scanPartial is one piece's contribution to a scalar scan.
type scanPartial struct {
	sum   float64
	count int64
}

// runScalar executes the placed fan-out for a scalar (sum/count) scan:
// one goroutine per card works through its pieces in order on that card's
// stream, the host lane works through its pieces on the morsel pool, and
// the per-piece partials land indexed by original position.
func (m *MultiDeviceScan) runScalar(
	perCard [][]int, host []int, pieces []Piece,
	onCard func(d DeviceScan, p Piece) (scanPartial, error),
	onHost func(cfg Config, p Piece) (scanPartial, error),
) ([]scanPartial, error) {
	partials := make([]scanPartial, len(pieces))
	errs := make([]error, m.Env.N()+1)
	var wg sync.WaitGroup
	for i, idxs := range perCard {
		if len(idxs) == 0 {
			continue
		}
		mMultiDevPieces.Add(int64(len(idxs)))
		wg.Add(1)
		go func(i int, idxs []int) {
			defer wg.Done()
			d := m.cardScan(i)
			for _, j := range idxs {
				part, err := onCard(d, pieces[j])
				if err != nil {
					errs[i] = err
					return
				}
				partials[j] = part
			}
		}(i, idxs)
	}
	var lane *perfmodel.Clock
	if len(host) > 0 {
		mMultiHostPieces.Add(int64(len(host)))
		var cfg Config
		cfg, lane = m.hostLaneConfig()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, j := range host {
				part, err := onHost(cfg, pieces[j])
				if err != nil {
					errs[m.Env.N()] = err
					return
				}
				partials[j] = part
			}
		}()
	}
	wg.Wait()
	var hostNs float64
	if lane != nil {
		hostNs = lane.ElapsedNs()
	}
	m.Env.SettleMax(hostNs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return partials, nil
}

// SumFloat64Where computes SUM(col), COUNT(*) WHERE p across the fleet
// and the host lane, folding per-piece partials in piece order (bit-
// identical to the single-card DeviceScan). Predicates without a closed-
// interval form fail with ErrBadColumn exactly like DeviceScan, so
// callers keep their host-fallback logic.
func (m *MultiDeviceScan) SumFloat64Where(col int, pieces []Piece, p Pred[float64]) (float64, int64, error) {
	if err := checkSize8(pieces, "device fused float64 sum"); err != nil {
		return 0, 0, err
	}
	if _, _, ok := ClosedFloat64(p); !ok {
		return 0, 0, fmt.Errorf("%w: predicate %v has no closed-interval form for the device kernel", ErrBadColumn, p.Op)
	}
	sp := obsMultiScan.Start()
	defer sp.End()
	perCard, host := m.place(col, pieces, func(pc Piece) bool { return zoneAdmitsFloat64(pc.Zone, p) })
	partials, err := m.runScalar(perCard, host, pieces,
		func(d DeviceScan, pc Piece) (scanPartial, error) {
			s, n, err := d.SumFloat64Where(col, []Piece{pc}, p)
			return scanPartial{s, n}, err
		},
		func(cfg Config, pc Piece) (scanPartial, error) {
			admit := zoneAdmitsFloat64(pc.Zone, p)
			NoteZoneDecision(admit, int64(pc.Vec.Len*pc.Vec.Size))
			if !admit {
				return scanPartial{}, nil
			}
			s, n, err := SumFloat64Where(cfg, []Piece{pc}, p)
			return scanPartial{s, n}, err
		})
	if err != nil {
		return 0, 0, err
	}
	var sum float64
	var count int64
	for _, part := range partials {
		sum += part.sum
		count += part.count
	}
	return sum, count, nil
}

// SumFloat64 is the unfiltered fleet reduction.
func (m *MultiDeviceScan) SumFloat64(col int, pieces []Piece) (float64, error) {
	if err := checkSize8(pieces, "device float64 sum"); err != nil {
		return 0, err
	}
	sp := obsMultiScan.Start()
	defer sp.End()
	perCard, host := m.place(col, pieces, nil)
	partials, err := m.runScalar(perCard, host, pieces,
		func(d DeviceScan, pc Piece) (scanPartial, error) {
			s, err := d.SumFloat64(col, []Piece{pc})
			return scanPartial{sum: s}, err
		},
		func(cfg Config, pc Piece) (scanPartial, error) {
			s, err := SumFloat64(cfg, []Piece{pc})
			return scanPartial{sum: s}, err
		})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, part := range partials {
		sum += part.sum
	}
	return sum, nil
}

// GroupSumFloat64Where computes SUM(val), COUNT(*) WHERE p GROUP BY key
// across the fleet and the host lane. Key/value pairs are placed by the
// VALUE piece's fragment home; per-piece group tables merge in piece
// order through the shared MergeGroupResults machinery. Compressed group
// keys are host-only, exactly like DeviceScan.
func (m *MultiDeviceScan) GroupSumFloat64Where(keyCol, valCol int, keys, vals []Piece, p Pred[float64]) ([]GroupResult, error) {
	if err := checkGroupCols(keys, vals); err != nil {
		return nil, err
	}
	if _, _, ok := ClosedFloat64(p); !ok {
		return nil, fmt.Errorf("%w: predicate %v has no closed-interval form for the device kernel", ErrBadColumn, p.Op)
	}
	for _, kp := range keys {
		if kp.Comp != nil {
			return nil, fmt.Errorf("%w: compressed group keys are host-only", ErrBadColumn)
		}
	}
	sp := obsMultiScan.Start()
	defer sp.End()
	perCard, host := m.place(valCol, vals, func(pc Piece) bool { return zoneAdmitsFloat64(pc.Zone, p) })

	tables := make([][]GroupResult, len(vals))
	errs := make([]error, m.Env.N()+1)
	var wg sync.WaitGroup
	for i, idxs := range perCard {
		if len(idxs) == 0 {
			continue
		}
		mMultiDevPieces.Add(int64(len(idxs)))
		wg.Add(1)
		go func(i int, idxs []int) {
			defer wg.Done()
			d := m.cardScan(i)
			for _, j := range idxs {
				t, err := d.GroupSumFloat64Where(keyCol, valCol, []Piece{keys[j]}, []Piece{vals[j]}, p)
				if err != nil {
					errs[i] = err
					return
				}
				tables[j] = t
			}
		}(i, idxs)
	}
	var lane *perfmodel.Clock
	if len(host) > 0 {
		var cfg Config
		cfg, lane = m.hostLaneConfig()
		mMultiHostPieces.Add(int64(len(host)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, j := range host {
				t, err := GroupSumFloat64Where(cfg, []Piece{keys[j]}, []Piece{vals[j]}, p)
				if err != nil {
					errs[m.Env.N()] = err
					return
				}
				tables[j] = t
			}
		}()
	}
	wg.Wait()
	var hostNs float64
	if lane != nil {
		hostNs = lane.ElapsedNs()
	}
	m.Env.SettleMax(hostNs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return MergeGroupResults(tables...), nil
}
