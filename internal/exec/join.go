package exec

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// JoinPair is one match of an equi-join: the global positions of the
// joined rows on each side.
type JoinPair struct {
	// Build and Probe are row positions in the build-side and probe-side
	// relations.
	Build, Probe uint64
}

// HashJoin computes the equi-join of two integer key columns with the
// classic two-phase hash join: the build side is hashed, the probe side
// streamed. The output is the sorted (by probe, then build) position-pair
// list — exactly the "sorted position lists" the paper's experiment
// consumes from "the last directly preceding join operator" before
// materializing or aggregating (Section II-B). Both views must be int64
// or int32 columns; duplicate keys join pairwise.
func HashJoin(cfg Config, build, probe []Piece) ([]JoinPair, error) {
	for _, side := range [][]Piece{build, probe} {
		for _, p := range side {
			if p.Vec.Size != 8 && p.Vec.Size != 4 {
				return nil, fmt.Errorf("%w: join key of %d bytes", ErrBadColumn, p.Vec.Size)
			}
		}
	}
	// Build phase: key → build positions.
	table := make(map[int64][]uint64)
	for _, p := range build {
		v := p.Vec
		off := v.Base
		for i := 0; i < v.Len; i++ {
			k := readKey(v.Data[off:], v.Size)
			table[k] = append(table[k], p.Rows.Begin+uint64(i))
			off += v.Stride
		}
	}
	// Probe phase.
	var out []JoinPair
	for _, p := range probe {
		v := p.Vec
		off := v.Base
		for i := 0; i < v.Len; i++ {
			k := readKey(v.Data[off:], v.Size)
			for _, b := range table[k] {
				out = append(out, JoinPair{Build: b, Probe: p.Rows.Begin + uint64(i)})
			}
			off += v.Stride
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probe != out[j].Probe {
			return out[i].Probe < out[j].Probe
		}
		return out[i].Build < out[j].Build
	})
	cfg.chargeScan(build)
	cfg.chargeScan(probe)
	return out, nil
}

// readKey widens a 4- or 8-byte little-endian integer.
func readKey(b []byte, size int) int64 {
	if size == 8 {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return int64(int32(binary.LittleEndian.Uint32(b)))
}

// BuildPositions extracts the sorted, deduplicated build-side position
// list of a join result — the input shape the materialization operator
// expects.
func BuildPositions(pairs []JoinPair) []uint64 {
	seen := make(map[uint64]bool, len(pairs))
	out := make([]uint64, 0, len(pairs))
	for _, p := range pairs {
		if !seen[p.Build] {
			seen[p.Build] = true
			out = append(out, p.Build)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
