package exec

import (
	"errors"
	"io"

	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
)

// RowIterator is a Volcano-style tuple-at-a-time iterator over a layout
// (Section II-A: "NSM combined with the Volcano-style processing model
// suits well for [the record-centric] access pattern in case the costs
// for function calls can be hidden by data access costs"). It exists for
// the bulk-vs-tuple-at-a-time ablation; the bulk operators above are the
// primary execution path.
type RowIterator struct {
	l    *layout.Layout
	rows uint64
	next uint64
}

// NewRowIterator opens an iterator over rows [0, rows) of the layout.
func NewRowIterator(l *layout.Layout, rows uint64) *RowIterator {
	return &RowIterator{l: l, rows: rows}
}

// Next returns the next record, or io.EOF after the last one.
func (it *RowIterator) Next() (schema.Record, error) {
	if it.next >= it.rows {
		return nil, io.EOF
	}
	rec, err := it.l.Record(it.next)
	if err != nil {
		return nil, err
	}
	it.next++
	return rec, nil
}

// Reset rewinds the iterator.
func (it *RowIterator) Reset() { it.next = 0 }

// SumFloat64Volcano folds a float64 attribute tuple-at-a-time through the
// iterator — the slow path the bulk model replaces for attribute-centric
// queries.
func SumFloat64Volcano(it *RowIterator, col int) (float64, error) {
	var acc float64
	for {
		rec, err := it.Next()
		if errors.Is(err, io.EOF) {
			return acc, nil
		}
		if err != nil {
			return 0, err
		}
		acc += rec[col].F
	}
}
