package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
	"hybridstore/internal/stats"
)

// randPredF64 draws a predicate over roughly the buildLayout price
// domain [0.25, 100.25], including out-of-range and empty shapes.
func randPredF64(r *rand.Rand) Pred[float64] {
	switch r.Intn(5) {
	case 0:
		return Eq(float64(r.Intn(110)) + 0.25)
	case 1:
		return Lt(r.Float64() * 120)
	case 2:
		return Gt(r.Float64() * 120)
	case 3:
		lo := r.Float64() * 110
		return Between(lo, lo+r.Float64()*20)
	default:
		hi := r.Float64() * 100
		return Between(hi+1, hi) // empty interval
	}
}

// TestPredMatchAdmitsConsistency is the sargability invariant: whenever
// any value in [min, max] matches, the zone test must admit the range
// (the converse may not hold — admission is allowed to be conservative).
func TestPredMatchAdmitsConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		p := randPredF64(r)
		min := r.Float64() * 100
		max := min + r.Float64()*10
		admit := p.admits(min, max)
		for j := 0; j < 16; j++ {
			x := min + r.Float64()*(max-min)
			if p.Match(x) && !admit {
				t.Fatalf("%v matched %v inside rejected zone [%v,%v]", p, x, min, max)
			}
		}
		// Endpoints are part of the zone.
		if (p.Match(min) || p.Match(max)) && !admit {
			t.Fatalf("%v matched an endpoint of rejected zone [%v,%v]", p, min, max)
		}
	}
}

// TestClosedIntervalEquivalence pins the closed-interval normalization
// the device kernel consumes to Match exactly, including the strict
// bounds stepping to adjacent representable values.
func TestClosedIntervalEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 5000; i++ {
		p := randPredF64(r)
		lo, hi, ok := ClosedFloat64(p)
		probes := []float64{p.Lo, p.Hi,
			math.Nextafter(p.Lo, math.Inf(-1)), math.Nextafter(p.Lo, math.Inf(1)),
			math.Nextafter(p.Hi, math.Inf(-1)), math.Nextafter(p.Hi, math.Inf(1)),
			r.Float64() * 120,
		}
		for _, x := range probes {
			closed := ok && lo <= x && x <= hi
			if closed != p.Match(x) {
				t.Fatalf("%v: closed [%v,%v] ok=%v disagrees with Match at %v", p, lo, hi, ok, x)
			}
		}
	}
	for i := 0; i < 5000; i++ {
		var p Pred[int64]
		switch r.Intn(4) {
		case 0:
			p = Eq(int64(r.Intn(200)) - 100)
		case 1:
			p = Lt(int64(r.Intn(200)) - 100)
		case 2:
			p = Gt(int64(r.Intn(200)) - 100)
		default:
			p = Between(int64(r.Intn(200))-100, int64(r.Intn(200))-100)
		}
		lo, hi, ok := ClosedInt64(p)
		for x := int64(-120); x <= 120; x += 7 {
			closed := ok && lo <= x && x <= hi
			if closed != p.Match(x) {
				t.Fatalf("%v: closed [%d,%d] ok=%v disagrees with Match at %d", p, lo, hi, ok, x)
			}
		}
	}
}

// TestFusedWhereMatchesGenericAllPolicies checks the specialized fused
// operators against the closure-based baselines over both strided (NSM)
// and contiguous (thin DSM) views under every policy.
func TestFusedWhereMatchesGenericAllPolicies(t *testing.T) {
	const n = 700
	for _, vertical := range []bool{false, true} {
		l, _ := buildLayout(t, layout.NSM, vertical, n)
		defer l.Free()
		pieces, err := ColumnView(l, 3, n)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(21))
		for _, cfg := range []Config{Single(), Multi(), MultiN(3), Morsel()} {
			for i := 0; i < 12; i++ {
				p := randPredF64(r)
				wantN, err := CountFloat64(cfg, pieces, p.Match)
				if err != nil {
					t.Fatal(err)
				}
				var wantSum float64
				for j := uint64(0); j < n; j++ {
					if x := float64(j%101) + 0.25; p.Match(x) {
						wantSum += x
					}
				}
				sum, cnt, err := SumFloat64Where(cfg, pieces, p)
				if err != nil {
					t.Fatal(err)
				}
				if cnt != wantN || math.Abs(sum-wantSum) > 1e-9 {
					t.Fatalf("vertical=%v %v %v: fused (%v,%d), want (%v,%d)",
						vertical, cfg.Policy, p, sum, cnt, wantSum, wantN)
				}
				gotN, err := CountWhereFloat64(cfg, pieces, p)
				if err != nil || gotN != wantN {
					t.Fatalf("CountWhereFloat64 = %d, %v; want %d", gotN, err, wantN)
				}
			}
		}
	}
}

// TestSumInt64WhereMatchesLoop checks the int64 fused kernels.
func TestSumInt64WhereMatchesLoop(t *testing.T) {
	const n = 500
	l, _ := buildLayout(t, layout.NSM, false, n)
	defer l.Free()
	pieces, err := ColumnView(l, 0, n) // id(i) = i
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{Single(), Multi(), Morsel()} {
		for _, p := range []Pred[int64]{Eq[int64](42), Lt[int64](100), Gt[int64](450), Between[int64](100, 199), Between[int64](600, 700)} {
			var wantSum, wantN int64
			for i := int64(0); i < n; i++ {
				if p.Match(i) {
					wantSum += i
					wantN++
				}
			}
			sum, cnt, err := SumInt64Where(cfg, pieces, p)
			if err != nil {
				t.Fatal(err)
			}
			if sum != wantSum || cnt != wantN {
				t.Fatalf("%v %v: (%d,%d), want (%d,%d)", cfg.Policy, p, sum, cnt, wantSum, wantN)
			}
			gotN, err := CountWhereInt64(cfg, pieces, p)
			if err != nil || gotN != wantN {
				t.Fatalf("CountWhereInt64 = %d, %v; want %d", gotN, err, wantN)
			}
		}
	}
}

// TestSelectPredMatchesClosure pins the specialized selection to the
// closure path bit-for-bit and exercises SelVec's pooled lifecycle.
func TestSelectPredMatchesClosure(t *testing.T) {
	const n = 600
	l, _ := buildLayout(t, layout.NSM, true, n)
	defer l.Free()
	pieces, err := ColumnView(l, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	for _, cfg := range []Config{Single(), Multi(), Morsel()} {
		for i := 0; i < 10; i++ {
			p := randPredF64(r)
			sv, err := SelectFloat64Pred(cfg, pieces, p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := SelectFloat64(cfg, pieces, p.Match)
			if err != nil {
				t.Fatal(err)
			}
			got := sv.Positions()
			if len(got) != len(want) {
				t.Fatalf("%v %v: %d positions, want %d", cfg.Policy, p, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%v: position[%d] = %d, want %d", p, j, got[j], want[j])
				}
			}
			sv.Release()
			sv.Release() // idempotent
			if sv.Len() != 0 || sv.Positions() != nil {
				t.Fatal("released SelVec still exposes positions")
			}
		}
	}
}

// TestPruneByZoneSkipsAndStaysExact attaches synthetic zones to pieces
// so some are provably match-free: results must equal the unpruned run
// and the counters must record the skips.
func TestPruneByZoneSkipsAndStaysExact(t *testing.T) {
	const n = 800
	s := itemSchema()
	l, err := layout.Horizontal(host(), "chunks", s, n, 100, layout.NSM)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Free()
	// price(i) = i: monotone, so each 100-row chunk has a narrow zone.
	for i := uint64(0); i < n; i++ {
		for _, f := range l.Fragments() {
			if f.Rows().Contains(i) {
				f.AppendTuplet([]schema.Value{
					schema.IntValue(int64(i)), schema.Int32Value(0),
					schema.CharValue("x"), schema.FloatValue(float64(i)),
				})
			}
		}
	}
	pieces, err := ColumnView(l, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 8 {
		t.Fatalf("pieces = %d, want 8", len(pieces))
	}
	for _, pc := range pieces {
		if pc.Zone == nil {
			t.Fatal("ColumnView did not attach fragment zones")
		}
	}
	p := Between[float64](250, 349) // matches span chunks [200,300) and [300,400)
	kept, prunedBytes := pruneByZone(Single(), pieces, func(z *stats.Zone) bool { return zoneAdmitsFloat64(z, p) })
	if len(kept) != 2 || kept[0].Rows.Begin != 200 || kept[1].Rows.Begin != 300 {
		t.Fatalf("kept %d pieces starting at %v", len(kept), func() (b []uint64) {
			for _, k := range kept {
				b = append(b, k.Rows.Begin)
			}
			return
		}())
	}
	if prunedBytes != 6*100*8 {
		t.Fatalf("prunedBytes = %d, want %d", prunedBytes, 6*100*8)
	}
	sum, cnt, err := SumFloat64Where(Single(), pieces, p)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 250; i <= 349; i++ {
		want += float64(i)
	}
	if cnt != 100 || sum != want {
		t.Fatalf("pruned sum = (%v,%d), want (%v,100)", sum, cnt, want)
	}
	// All-survive case aliases the input (no allocation, no prune span).
	kept, prunedBytes = pruneByZone(Single(), pieces, func(*stats.Zone) bool { return true })
	if len(kept) != len(pieces) || &kept[0] != &pieces[0] || prunedBytes != 0 {
		t.Fatal("all-survive prune did not alias the input")
	}
}

// TestWhereValidation covers the error paths of the fused operators.
func TestWhereValidation(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 10)
	defer l.Free()
	pieces, err := ColumnView(l, 1, 10) // int32: 4-byte fields
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SumFloat64Where(Single(), pieces, Gt[float64](0)); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v, want ErrBadColumn", err)
	}
	if _, _, err := SumInt64Where(Single(), pieces, Gt[int64](0)); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v, want ErrBadColumn", err)
	}
	if _, err := CountWhereFloat64(Single(), pieces, Gt[float64](0)); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v, want ErrBadColumn", err)
	}
	if _, err := SelectFloat64Pred(Single(), pieces, Gt[float64](0)); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v, want ErrBadColumn", err)
	}
	sum, cnt, err := SumFloat64Where(Single(), nil, Gt[float64](0))
	if err != nil || sum != 0 || cnt != 0 {
		t.Fatalf("empty view: (%v,%d,%v)", sum, cnt, err)
	}
}

// TestNormalize checks that Normalize canonicalizes equivalent
// spellings to identical values without changing the match set.
func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want Pred[float64]
	}{
		{Between(7.0, 7.0), Eq(7.0)},                                 // degenerate between is eq
		{Pred[float64]{Op: OpLT, Lo: 3, Hi: 9}, Lt(9.0)},             // unused lo zeroed
		{Pred[float64]{Op: OpGT, Lo: 4, Hi: 8}, Gt(4.0)},             // unused hi zeroed
		{Pred[float64]{Op: OpEQ, Lo: 5, Hi: 99}, Eq(5.0)},            // eq hi rewritten from lo
		{Between(math.Copysign(0, -1), 0.0), Eq(0.0)},                // -0..+0 collapses to eq(+0)
		{Pred[float64]{Op: OpLT, Hi: math.Copysign(0, -1)}, Lt(0.0)}, // -0 bound scrubbed
		{Between(1.0, 2.0), Between(1.0, 2.0)},                       // proper ranges untouched
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}

	// NaN bounds: the eq collapse must not fire (NaN != NaN), and the
	// result stays degenerate / unmatchable like the input.
	nan := Normalize(Between(math.NaN(), math.NaN()))
	if nan.Op != OpBetween {
		t.Fatalf("NaN between collapsed to %v", nan.Op)
	}

	// Semantics: normalized and raw predicates match the same values.
	probes := []float64{-1, math.Copysign(0, -1), 0, 0.5, 1, 2, 3, 7, 9, math.Inf(1)}
	raws := []Pred[float64]{
		Between(7.0, 7.0), Between(math.Copysign(0, -1), 0),
		{Op: OpLT, Lo: 3, Hi: 9}, {Op: OpGT, Lo: 4, Hi: 8},
		Between(1.0, 2.0), Eq(0.0), Lt(0.0), Gt(7.0),
	}
	for _, p := range raws {
		n := Normalize(p)
		for _, x := range probes {
			if p.Match(x) != n.Match(x) {
				t.Errorf("Normalize(%+v) changed Match(%v): %v vs %v", p, x, p.Match(x), n.Match(x))
			}
		}
	}

	// Int64 predicates normalize too (shared cohort keys are generic).
	if got := Normalize(Between[int64](5, 5)); got != Eq[int64](5) {
		t.Errorf("int64 degenerate between = %+v", got)
	}
}
