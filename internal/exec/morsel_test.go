package exec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/exec/pool"
	"hybridstore/internal/layout"
	"hybridstore/internal/perfmodel"
	"hybridstore/internal/schema"
)

// forceMorsels shrinks the morsel granularity and grows the pool so that
// even the small layouts tests build dispatch as multi-morsel jobs on
// real pool workers (this container has one CPU, so the defaults would
// take the inline single-morsel fast path everywhere).
func forceMorsels(t *testing.T, morsel, workers int) {
	t.Helper()
	pool.SetMorselSize(morsel)
	pool.SetWorkers(workers)
	t.Cleanup(func() {
		pool.SetMorselSize(0)
		pool.SetWorkers(0)
	})
}

// buildRandomLayout fills a layout with n random rows and returns it;
// chunked horizontal layouts produce multi-piece column views.
func buildRandomLayout(r *rand.Rand, n uint64, vertical bool) (*layout.Layout, error) {
	s := itemSchema()
	var l *layout.Layout
	var err error
	if vertical {
		l, err = layout.Vertical(host(), "v", s, [][]int{{0}, {1}, {2}, {3}}, n,
			func([]int) layout.Linearization { return layout.Direct })
	} else {
		chunk := n/3 + 1
		l, err = layout.Horizontal(host(), "h", s, n, chunk, layout.NSM)
	}
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		rec := schema.Record{
			schema.IntValue(r.Int63n(1000)), schema.Int32Value(int32(r.Intn(5))),
			schema.CharValue("x"), schema.FloatValue(math.Floor(r.Float64() * 100)),
		}
		for _, f := range l.Fragments() {
			if !f.Rows().Contains(i) {
				continue
			}
			vals := make([]schema.Value, 0, f.Arity())
			for _, c := range f.Cols() {
				vals = append(vals, rec[c])
			}
			if err := f.AppendTuplet(vals); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// TestQuickMorselEqualsSequential is the ISSUE's property test: for
// random layouts, every operator returns identical results under
// MorselDriven and SingleThreaded — sums, selections, counts, extrema,
// materialization and grouped aggregation.
func TestQuickMorselEqualsSequential(t *testing.T) {
	forceMorsels(t, 64, 4)
	f := func(seed int64, nRaw uint16, vertical bool) bool {
		n := uint64(nRaw)%3000 + 1
		r := rand.New(rand.NewSource(seed))
		l, err := buildRandomLayout(r, n, vertical)
		if err != nil {
			return false
		}
		prices, err := ColumnView(l, 3, n)
		if err != nil {
			return false
		}
		ids, err := ColumnView(l, 0, n)
		if err != nil {
			return false
		}
		warehouses, err := ColumnView(l, 1, n)
		if err != nil {
			return false
		}
		single, morsel := Single(), Morsel()

		s1, e1 := SumFloat64(single, prices)
		s2, e2 := SumFloat64(morsel, prices)
		if e1 != nil || e2 != nil || math.Abs(s1-s2) > 1e-6 {
			t.Logf("SumFloat64: %v/%v vs %v/%v", s1, e1, s2, e2)
			return false
		}
		i1, e1 := SumInt64(single, ids)
		i2, e2 := SumInt64(morsel, ids)
		if e1 != nil || e2 != nil || i1 != i2 {
			t.Logf("SumInt64: %d vs %d", i1, i2)
			return false
		}
		pred := func(x float64) bool { return x < 50 }
		p1, e1 := SelectFloat64(single, prices, pred)
		p2, e2 := SelectFloat64(morsel, prices, pred)
		if e1 != nil || e2 != nil || !equalPositions(p1, p2) {
			t.Logf("SelectFloat64: %d vs %d matches", len(p1), len(p2))
			return false
		}
		ipred := func(x int64) bool { return x%3 == 0 }
		q1, e1 := SelectInt64(single, ids, ipred)
		q2, e2 := SelectInt64(morsel, ids, ipred)
		if e1 != nil || e2 != nil || !equalPositions(q1, q2) {
			t.Logf("SelectInt64: %d vs %d matches", len(q1), len(q2))
			return false
		}
		c1, e1 := CountFloat64(single, prices, pred)
		c2, e2 := CountFloat64(morsel, prices, pred)
		if e1 != nil || e2 != nil || c1 != c2 {
			t.Logf("CountFloat64: %d vs %d", c1, c2)
			return false
		}
		lo1, hi1, ok1, e1 := MinMaxFloat64(single, prices)
		lo2, hi2, ok2, e2 := MinMaxFloat64(morsel, prices)
		if e1 != nil || e2 != nil || ok1 != ok2 || lo1 != lo2 || hi1 != hi2 {
			t.Logf("MinMax: %v/%v vs %v/%v", lo1, hi1, lo2, hi2)
			return false
		}
		r1, e1 := Materialize(single, l, p1)
		r2, e2 := Materialize(morsel, l, p2)
		if e1 != nil || e2 != nil || len(r1) != len(r2) {
			return false
		}
		for i := range r1 {
			if r1[i][0].I != r2[i][0].I || r1[i][3].F != r2[i][3].F {
				return false
			}
		}
		g1, e1 := GroupSumFloat64(single, warehouses, prices)
		g2, e2 := GroupSumFloat64(morsel, warehouses, prices)
		if e1 != nil || e2 != nil || len(g1) != len(g2) {
			t.Logf("GroupSum: %d vs %d groups", len(g1), len(g2))
			return false
		}
		for i := range g1 {
			if g1[i].Key != g2[i].Key || g1[i].Count != g2[i].Count ||
				math.Abs(g1[i].Sum-g2[i].Sum) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func equalPositions(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPoolHygieneNoRowLeaks is the ISSUE's buffer-hygiene test: a query
// with a large result fills the recycled position and partial buffers,
// and subsequent queries with tiny or empty results must not see any of
// those rows or partial sums again.
func TestPoolHygieneNoRowLeaks(t *testing.T) {
	forceMorsels(t, 32, 4)
	l, _ := buildLayout(t, layout.NSM, false, 2000)
	prices, err := ColumnView(l, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Query 1: ~all rows match, stuffing pooled buffers with positions
	// and every partial-sum slot with non-zero values.
	big, err := SelectFloat64(Morsel(), prices, func(x float64) bool { return x >= 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != 2000 {
		t.Fatalf("query 1 matched %d rows, want 2000", len(big))
	}
	// Query 2: zero matches. Any leaked row from query 1 shows up here.
	none, err := SelectFloat64(Morsel(), prices, func(x float64) bool { return x < 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("empty query leaked %d recycled rows: %v", len(none), none[:min(4, len(none))])
	}
	// Query 3: three known matches; recycled buffers must contribute
	// nothing beyond them. price(i) = i%101+0.25 < 1 ⟺ i%101 == 0.
	few, err := SelectFloat64(Morsel(), prices, func(x float64) bool { return x < 1 })
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 101, 202, 303, 404, 505, 606, 707, 808, 909,
		1010, 1111, 1212, 1313, 1414, 1515, 1616, 1717, 1818, 1919}
	if !equalPositions(few, want) {
		t.Fatalf("selective query = %v, want %v", few, want)
	}
	// Partial-sum hygiene: repeated sums must stay exact even though
	// earlier queries left non-zero partials in the recycled scratch.
	sum1, err := SumFloat64(Single(), prices)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sumN, err := SumFloat64(Morsel(), prices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sumN-sum1) > 1e-6 {
			t.Fatalf("iteration %d: recycled partials drifted: %v vs %v", i, sumN, sum1)
		}
	}
}

// TestMorselChargingAmortizesManagement checks the simulated-time
// interaction: on a tiny input the morsel policy must charge close to
// the single-threaded cost (one pool wake, no per-thread management),
// strictly between single and the paper's 8-thread blockwise policy.
func TestMorselChargingAmortizesManagement(t *testing.T) {
	l, _ := buildLayout(t, layout.Direct, true, 10_000)
	pieces, _ := ColumnView(l, 3, 10_000)
	h := perfmodel.DefaultHost()
	run := func(cfg Config) float64 {
		var clk perfmodel.Clock
		cfg.Host, cfg.Clock = h, &clk
		if _, err := SumFloat64(cfg, pieces); err != nil {
			t.Fatal(err)
		}
		return clk.ElapsedNs()
	}
	single := run(Single())
	multi := run(MultiN(8))
	morsel := run(Morsel())
	if morsel <= single {
		t.Errorf("morsel %.0f <= single %.0f ns: the pool wake must cost something", morsel, single)
	}
	if morsel >= multi {
		t.Errorf("morsel %.0f >= blockwise %.0f ns on a tiny input: amortization failed", morsel, multi)
	}
	// The wake overhead is microseconds, not the ~100µs of 8 spawns.
	if morsel-single > 10*h.PoolWakeNs {
		t.Errorf("morsel overhead %.0f ns, want within ~10 wakes", morsel-single)
	}
}

// TestMorselMaterializeError checks error propagation through the pool.
func TestMorselMaterializeError(t *testing.T) {
	forceMorsels(t, 16, 3)
	l, _ := buildLayout(t, layout.NSM, false, 100)
	positions := make([]uint64, 90)
	for i := range positions {
		positions[i] = uint64(i)
	}
	positions[77] = 5000 // out of range
	if _, err := Materialize(Morsel(), l, positions); err == nil {
		t.Fatal("out-of-range position accepted under MorselDriven")
	}
}
