package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridstore/internal/layout"
	"hybridstore/internal/schema"
)

func TestGroupSumFloat64(t *testing.T) {
	for _, vertical := range []bool{false, true} {
		l, _ := buildLayout(t, layout.NSM, vertical, 700)
		keys, err := ColumnView(l, 1, 700) // int32 warehouse = i%7
		if err != nil {
			t.Fatal(err)
		}
		vals, err := ColumnView(l, 3, 700) // price = i%101 + 0.25
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{Single(), Multi(), MultiN(8), Morsel()} {
			groups, err := GroupSumFloat64(cfg, keys, vals)
			if err != nil {
				t.Fatal(err)
			}
			if len(groups) != 7 {
				t.Fatalf("groups = %d, want 7", len(groups))
			}
			// Model the expected result.
			wantSum := map[int64]float64{}
			wantCount := map[int64]int64{}
			for i := uint64(0); i < 700; i++ {
				k := int64(i % 7)
				wantSum[k] += float64(i%101) + 0.25
				wantCount[k]++
			}
			for gi, g := range groups {
				if gi > 0 && groups[gi-1].Key >= g.Key {
					t.Fatal("groups not sorted")
				}
				if g.Count != wantCount[g.Key] {
					t.Fatalf("group %d count = %d, want %d", g.Key, g.Count, wantCount[g.Key])
				}
				if math.Abs(g.Sum-wantSum[g.Key]) > 1e-6 {
					t.Fatalf("group %d sum = %v, want %v", g.Key, g.Sum, wantSum[g.Key])
				}
			}
		}
	}
}

func TestGroupSumInt64Keys(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 100)
	keys, _ := ColumnView(l, 0, 100) // int64 id
	vals, _ := ColumnView(l, 3, 100)
	groups, err := GroupSumFloat64(Single(), keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 100 {
		t.Fatalf("distinct int64 keys = %d", len(groups))
	}
}

func TestGroupSumValidation(t *testing.T) {
	l, _ := buildLayout(t, layout.NSM, false, 50)
	keys, _ := ColumnView(l, 1, 50)
	vals, _ := ColumnView(l, 3, 50)
	// Misaligned piece counts.
	if _, err := GroupSumFloat64(Single(), keys, nil); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
	// Wrong value width.
	badVals, _ := ColumnView(l, 1, 50)
	if _, err := GroupSumFloat64(Single(), keys, badVals); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
	// 8-byte char keys group by bit pattern (allowed at this layer: the
	// operator sees raw views, not kinds).
	charKeys, _ := ColumnView(l, 2, 50)
	if _, err := GroupSumFloat64(Single(), charKeys, vals); err != nil {
		t.Fatalf("8-byte char key rejected: %v", err)
	}
	// Misaligned row ranges.
	shortVals, _ := ColumnView(l, 3, 40)
	if _, err := GroupSumFloat64(Single(), keys, shortVals); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
}

// buildLayoutQuick fills a chunked NSM layout with seeded random prices.
func buildLayoutQuick(seed int64, n uint64) *layout.Layout {
	l, err := layout.Horizontal(host(), "h", itemSchema(), n, n/3+1, layout.NSM)
	if err != nil {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	for i := uint64(0); i < n; i++ {
		for _, fr := range l.Fragments() {
			if !fr.Rows().Contains(i) {
				continue
			}
			if fr.AppendTuplet([]schemaValue{
				intVal(int64(i)), int32Val(int32(r.Intn(10))),
				charVal("x"), floatVal(math.Floor(r.Float64() * 100)),
			}) != nil {
				return nil
			}
		}
	}
	return l
}

// Property: parallel grouped aggregation equals the sequential one.
func TestQuickGroupParallelEqualsSequential(t *testing.T) {
	g := func(seed int64, nRaw uint16, threadsRaw uint8) bool {
		n := uint64(nRaw)%2000 + 10
		l := buildLayoutQuick(seed, n)
		if l == nil {
			return false
		}
		keys, err1 := ColumnView(l, 1, n)
		vals, err2 := ColumnView(l, 3, n)
		if err1 != nil || err2 != nil {
			return false
		}
		seq, err1 := GroupSumFloat64(Single(), keys, vals)
		par, err2 := GroupSumFloat64(Config{Policy: MultiThreaded, Threads: int(threadsRaw)%7 + 2}, keys, vals)
		if err1 != nil || err2 != nil || len(seq) != len(par) {
			return false
		}
		for i := range seq {
			if seq[i].Key != par[i].Key || seq[i].Count != par[i].Count ||
				math.Abs(seq[i].Sum-par[i].Sum) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Small aliases keeping buildLayoutQuick readable.
type schemaValue = schema.Value

func intVal(v int64) schemaValue     { return schema.IntValue(v) }
func int32Val(v int32) schemaValue   { return schema.Int32Value(v) }
func charVal(s string) schemaValue   { return schema.CharValue(s) }
func floatVal(f float64) schemaValue { return schema.FloatValue(f) }
