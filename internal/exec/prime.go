package exec

import "fmt"

// Prime uploads the pieces' column images into the fragment cache
// without running any kernel — the warm-restart path: a recovered
// table replays its checkpoint manifest's resident-column list through
// Prime so the first post-restart scans hit a cache in the pre-crash
// state instead of paying cold-miss bus traffic. Pieces ride the same
// acquire paths as scans (dense or compressed), so a later scan's keys
// match exactly. A nil cache makes Prime a no-op.
func (d DeviceScan) Prime(col int, pieces []Piece, compressed bool) error {
	if d.Cache == nil {
		return nil
	}
	s := d.newStream()
	var releases []func()
	defer func() {
		s.Wait()
		for _, r := range releases {
			r()
		}
	}()
	for _, pc := range pieces {
		if pc.Vec.Len == 0 || pc.FragID == 0 {
			continue
		}
		if compressed {
			if pc.Comp == nil {
				continue
			}
			_, release, err := d.acquireCompressed(s, col, pc)
			if err != nil {
				return fmt.Errorf("exec: priming compressed col %d: %w", col, err)
			}
			releases = append(releases, release)
			continue
		}
		if pc.Vec.Data == nil {
			continue // compressed-only piece cannot provide dense bytes
		}
		_, release, err := d.acquirePiece(s, col, pc)
		if err != nil {
			return fmt.Errorf("exec: priming col %d: %w", col, err)
		}
		releases = append(releases, release)
	}
	return nil
}
