package exec

import (
	"fmt"
	"sync"

	"hybridstore/internal/compress"
)

// Host-side compressed-domain execution. Pieces carrying a sealed
// compressed image (Piece.Comp) are split off the raw list and handed
// to the compressed-domain operators of internal/compress; raw pieces
// keep the fused byte kernels. Per-piece partials are computed
// independently — in parallel under MultiThreaded/MorselDriven, capped
// at the policy's worker count — and folded in piece order, which is
// exactly the order the sequential baseline accumulates per-piece
// partial sums in, so single-policy results stay bit-identical to
// decompress-then-scan.

// splitComp partitions pieces into raw and compressed. The raw slice
// aliases the input when nothing is compressed, so the common all-raw
// case allocates nothing.
func splitComp(pieces []Piece) (raw, comp []Piece) {
	split := false
	for i, p := range pieces {
		if p.Comp == nil {
			if split {
				raw = append(raw, p)
			}
			continue
		}
		if !split {
			raw = append(raw, pieces[:i]...)
			split = true
		}
		comp = append(comp, p)
	}
	if !split {
		return pieces, nil
	}
	return raw, comp
}

// compPredF64 bridges an exec predicate to its compress twin (the enums
// share ordering and semantics).
func compPredF64(p Pred[float64]) compress.Pred[float64] {
	return compress.Pred[float64]{Op: compress.Op(p.Op), Lo: p.Lo, Hi: p.Hi}
}

// compPredI64 is compPredF64 for int64 predicates.
func compPredI64(p Pred[int64]) compress.Pred[int64] {
	return compress.Pred[int64]{Op: compress.Op(p.Op), Lo: p.Lo, Hi: p.Hi}
}

// forEachComp runs kernel over every compressed piece — concurrently
// when the policy has workers to spare — and reports the first error.
// Kernels write their partials into per-piece slots, so callers fold
// results in piece order regardless of scheduling.
func forEachComp(cfg Config, pieces []Piece, kernel func(i int, c *compress.Column) error) error {
	th := cfg.threads()
	if th <= 1 || len(pieces) == 1 {
		for i, pc := range pieces {
			if err := kernel(i, pc.Comp); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(pieces))
	sem := make(chan struct{}, th)
	var wg sync.WaitGroup
	for i, pc := range pieces {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c *compress.Column) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = kernel(i, c)
		}(i, pc.Comp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// compSumCountF64 folds SUM/COUNT WHERE over compressed pieces.
func compSumCountF64(cfg Config, pieces []Piece, p Pred[float64]) (float64, int64, error) {
	if len(pieces) == 0 {
		return 0, 0, nil
	}
	cp := compPredF64(p)
	sums := make([]float64, len(pieces))
	counts := make([]int64, len(pieces))
	err := forEachComp(cfg, pieces, func(i int, c *compress.Column) error {
		s, n, err := c.SumFloat64Where(cp)
		sums[i], counts[i] = s, n
		return err
	})
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadColumn, err)
	}
	var sum float64
	var n int64
	for i := range sums {
		sum += sums[i]
		n += counts[i]
	}
	return sum, n, nil
}

// compSumCountI64 is compSumCountF64 for int64 predicates.
func compSumCountI64(cfg Config, pieces []Piece, p Pred[int64]) (int64, int64, error) {
	if len(pieces) == 0 {
		return 0, 0, nil
	}
	cp := compPredI64(p)
	sums := make([]int64, len(pieces))
	counts := make([]int64, len(pieces))
	err := forEachComp(cfg, pieces, func(i int, c *compress.Column) error {
		s, n, err := c.SumInt64Where(cp)
		sums[i], counts[i] = s, n
		return err
	})
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadColumn, err)
	}
	var sum, n int64
	for i := range sums {
		sum += sums[i]
		n += counts[i]
	}
	return sum, n, nil
}

// compCountF64 folds COUNT WHERE over compressed pieces.
func compCountF64(cfg Config, pieces []Piece, p Pred[float64]) (int64, error) {
	if len(pieces) == 0 {
		return 0, nil
	}
	cp := compPredF64(p)
	counts := make([]int64, len(pieces))
	err := forEachComp(cfg, pieces, func(i int, c *compress.Column) error {
		n, err := c.CountWhereFloat64(cp)
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadColumn, err)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// compCountI64 is compCountF64 for int64 predicates.
func compCountI64(cfg Config, pieces []Piece, p Pred[int64]) (int64, error) {
	if len(pieces) == 0 {
		return 0, nil
	}
	cp := compPredI64(p)
	counts := make([]int64, len(pieces))
	err := forEachComp(cfg, pieces, func(i int, c *compress.Column) error {
		n, err := c.CountWhereInt64(cp)
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadColumn, err)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return n, nil
}

// compSumF64 folds the unfiltered float64 sum over compressed pieces.
func compSumF64(cfg Config, pieces []Piece) (float64, error) {
	if len(pieces) == 0 {
		return 0, nil
	}
	sums := make([]float64, len(pieces))
	err := forEachComp(cfg, pieces, func(i int, c *compress.Column) error {
		s, err := c.SumFloat64()
		sums[i] = s
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadColumn, err)
	}
	var sum float64
	for _, s := range sums {
		sum += s
	}
	return sum, nil
}

// compSumI64 is compSumF64 for int64 columns (exact, mod 2^64).
func compSumI64(cfg Config, pieces []Piece) (int64, error) {
	if len(pieces) == 0 {
		return 0, nil
	}
	sums := make([]int64, len(pieces))
	err := forEachComp(cfg, pieces, func(i int, c *compress.Column) error {
		s, err := c.SumInt64()
		sums[i] = s
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadColumn, err)
	}
	var sum int64
	for _, s := range sums {
		sum += s
	}
	return sum, nil
}

// rejectComp guards operators without a compressed path.
func rejectComp(pieces []Piece, what string) error {
	for _, p := range pieces {
		if p.Comp != nil {
			return fmt.Errorf("%w: %s has no compressed-domain path", ErrBadColumn, what)
		}
	}
	return nil
}
