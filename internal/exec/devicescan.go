// Device-side column scans backed by the fragment cache. This is the
// exec-layer face of the paper's "mixed data location" design point
// (Section IV-C): the same Piece lists the host operators scan can be
// shipped to the simulated GPU, and — when a device.FragCache is
// configured — repeated scans over unchanged fragments reuse the resident
// images and cost zero bus bytes. Uploads and kernels run on a Stream, so
// a cold multi-piece scan overlaps each fragment's H2D copy with the
// previous fragment's reduction kernel.
package exec

import (
	"errors"
	"fmt"

	"hybridstore/internal/device"
	"hybridstore/internal/layout"
	"hybridstore/internal/obs"
)

var obsDeviceScan = obs.NewSpanFamily("exec.device_scan")

// ScanExecutor is the shared face of the device-routed scan operators:
// the single-card DeviceScan and the cross-device MultiDeviceScan satisfy
// it, so engines pick per-environment without caring how many cards are
// behind the scan.
type ScanExecutor interface {
	SumFloat64(col int, pieces []Piece) (float64, error)
	SumFloat64Where(col int, pieces []Piece, p Pred[float64]) (float64, int64, error)
	GroupSumFloat64Where(keyCol, valCol int, keys, vals []Piece, p Pred[float64]) ([]GroupResult, error)
}

// DeviceScan configures device-side scans over exec Pieces.
type DeviceScan struct {
	// GPU is the executing card. Required.
	GPU *device.GPU
	// Cache, when non-nil, keeps uploaded column images device-resident
	// keyed by (Table, fragment, column, clip, version). Nil re-ships
	// every piece on every scan (the pre-cache behavior, and the cold
	// baseline the devicecache panel measures against).
	Cache *device.FragCache
	// Table namespaces cache keys (the owning relation's name).
	Table string
	// Launch overrides the reduction geometry; the zero value picks the
	// paper's 1024×512 grid, falling back to a small grid for inputs
	// shorter than two elements per block.
	Launch device.LaunchConfig
	// Stages overrides the stream pipeline depth (0 = double buffering).
	Stages int
}

// launchFor picks the kernel geometry for an n-element reduction.
func (d DeviceScan) launchFor(n int) device.LaunchConfig {
	if d.Launch.Blocks > 0 {
		return d.Launch
	}
	cfg := device.DefaultReduceConfig()
	if n < cfg.Blocks*2 {
		cfg = device.LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}
	}
	return cfg
}

// denseBytes returns the dense byte image of a column clip, packing
// strided (NSM) vectors into a contiguous run — the host-side pack real
// engines perform before shipping a column image over the bus.
func denseBytes(v layout.ColVector) []byte {
	if v.Contiguous() {
		return v.Data[v.Base : v.Base+v.Len*v.Size]
	}
	out := make([]byte, v.Len*v.Size)
	off := v.Base
	for i := 0; i < v.Len; i++ {
		copy(out[i*v.Size:], v.Data[off:off+v.Size])
		off += v.Stride
	}
	return out
}

// acquirePiece returns a device-resident image of the piece's column
// clip: from the cache when the piece is cacheable (hit = zero bus
// bytes), uploading through the stream otherwise. release returns the
// image (unpins, or frees a transient upload); it must be called after
// the consuming kernel's Wait.
func (d DeviceScan) acquirePiece(s *device.Stream, col int, p Piece) (vec device.Vec, release func(), err error) {
	n := p.Vec.Len
	size := n * p.Vec.Size
	upload := func(buf *device.Buffer) error { return s.CopyToDevice(buf, 0, denseBytes(p.Vec)) }

	if d.Cache != nil && p.FragID != 0 {
		key := device.FragKey{Table: d.Table, Frag: p.FragID, Col: col, Row0: int(p.Rows.Begin), Rows: n}
		buf, unpin, _, err := d.Cache.Acquire(key, p.FragVersion, size, upload)
		if err == nil {
			return device.Vec{Buf: buf, Stride: p.Vec.Size, Size: p.Vec.Size, Len: n}, unpin, nil
		}
		if !errors.Is(err, device.ErrCachePinned) {
			return device.Vec{}, nil, err
		}
		// Every resident image is pinned by in-flight scans: degrade to an
		// uncached direct transfer instead of failing the scan. The image
		// ships, computes and frees without ever entering the cache.
	}

	buf, err := d.GPU.Alloc(size)
	if err != nil {
		return device.Vec{}, nil, err
	}
	if err := upload(buf); err != nil {
		buf.Free()
		return device.Vec{}, nil, err
	}
	return device.Vec{Buf: buf, Stride: p.Vec.Size, Size: p.Vec.Size, Len: n}, buf.Free, nil
}

// acquireCompressed returns a device-resident copy of the piece's
// compressed wire image (compress.Column.Marshal). The bus is charged
// only the image's length — the whole point of compressed transfers —
// and cached entries occupy image-length device bytes, so the cache's
// effective capacity grows by the compression ratio. Marshal runs only
// inside the upload closure: a cache hit never materializes the image
// on the host.
func (d DeviceScan) acquireCompressed(s *device.Stream, col int, p Piece) (buf *device.Buffer, release func(), err error) {
	size := p.Comp.MarshaledBytes()
	upload := func(b *device.Buffer) error { return s.CopyToDevice(b, 0, p.Comp.Marshal()) }

	if d.Cache != nil && p.FragID != 0 {
		key := device.FragKey{Table: d.Table, Frag: p.FragID, Col: col,
			Row0: int(p.Rows.Begin), Rows: p.Comp.Len(), Comp: true}
		b, unpin, _, err := d.Cache.Acquire(key, p.FragVersion, size, upload)
		if err == nil {
			return b, unpin, nil
		}
		if !errors.Is(err, device.ErrCachePinned) {
			return nil, nil, err
		}
		// Pinned-full cache: fall through to an uncached direct transfer.
	}

	b, err := d.GPU.Alloc(size)
	if err != nil {
		return nil, nil, err
	}
	if err := upload(b); err != nil {
		b.Free()
		return nil, nil, err
	}
	return b, b.Free, nil
}

// SumFloat64Where computes SUM(col), COUNT(*) WHERE p over the pieces on
// the device with the fused filter+reduction kernel. Pieces whose zone
// maps exclude the predicate are pruned before any bus traffic (the
// decision is accounted via NoteZoneDecision); surviving pieces are
// acquired through the fragment cache and reduced on a stream. Only
// predicates normalizable to a closed interval run on the device (the
// kernel is branch-free of comparison modes); others fail with
// ErrBadColumn and the caller falls back to the host path.
func (d DeviceScan) SumFloat64Where(col int, pieces []Piece, p Pred[float64]) (float64, int64, error) {
	if err := checkSize8(pieces, "device fused float64 sum"); err != nil {
		return 0, 0, err
	}
	lo, hi, ok := ClosedFloat64(p)
	if !ok {
		return 0, 0, fmt.Errorf("%w: predicate %v has no closed-interval form for the device kernel", ErrBadColumn, p.Op)
	}
	// Zone decisions happen before any device state exists: when every
	// piece is pruned (or empty) the scan returns without opening a
	// stream, so a fully-pruned scan leaves zero device.stream spans and
	// charges nothing but the zone checks.
	var kept []Piece
	for _, pc := range pieces {
		if pc.Vec.Len == 0 {
			continue
		}
		admit := zoneAdmitsFloat64(pc.Zone, p)
		NoteZoneDecision(admit, int64(pc.Vec.Len*pc.Vec.Size))
		if admit {
			kept = append(kept, pc)
		}
	}
	if len(kept) == 0 {
		return 0, 0, nil
	}
	sp := obsDeviceScan.Start()
	s := d.newStream()
	var sum float64
	var count int64
	var releases []func()
	defer func() {
		s.Wait()
		for _, r := range releases {
			r()
		}
		sp.End()
	}()
	for _, pc := range kept {
		if pc.Comp != nil {
			buf, release, err := d.acquireCompressed(s, col, pc)
			if err != nil {
				return 0, 0, err
			}
			releases = append(releases, release)
			r, c, err := s.ReduceSumFloat64WhereCompressed(buf, lo, hi, d.launchFor(pc.Comp.Len()))
			if err != nil {
				return 0, 0, err
			}
			sum += r
			count += c
			continue
		}
		vec, release, err := d.acquirePiece(s, col, pc)
		if err != nil {
			return 0, 0, err
		}
		releases = append(releases, release)
		r, c, err := s.ReduceSumFloat64Where(vec, lo, hi, d.launchFor(vec.Len))
		if err != nil {
			return 0, 0, err
		}
		sum += r
		count += c
	}
	return sum, count, nil
}

// SumFloat64 is the unfiltered device reduction over the pieces, with the
// same cache-backed residency.
func (d DeviceScan) SumFloat64(col int, pieces []Piece) (float64, error) {
	if err := checkSize8(pieces, "device float64 sum"); err != nil {
		return 0, err
	}
	var kept []Piece
	for _, pc := range pieces {
		if pc.Vec.Len != 0 {
			kept = append(kept, pc)
		}
	}
	if len(kept) == 0 {
		return 0, nil
	}
	sp := obsDeviceScan.Start()
	s := d.newStream()
	var sum float64
	var releases []func()
	defer func() {
		s.Wait()
		for _, r := range releases {
			r()
		}
		sp.End()
	}()
	for _, pc := range kept {
		if pc.Comp != nil {
			buf, release, err := d.acquireCompressed(s, col, pc)
			if err != nil {
				return 0, err
			}
			releases = append(releases, release)
			r, err := s.ReduceSumFloat64Compressed(buf, d.launchFor(pc.Comp.Len()))
			if err != nil {
				return 0, err
			}
			sum += r
			continue
		}
		vec, release, err := d.acquirePiece(s, col, pc)
		if err != nil {
			return 0, err
		}
		releases = append(releases, release)
		r, err := s.ReduceSumFloat64(vec, d.launchFor(vec.Len))
		if err != nil {
			return 0, err
		}
		sum += r
	}
	return sum, nil
}

// GroupSumFloat64Where computes SUM(val), COUNT(*) WHERE p GROUP BY key
// on the device with the fused filter+hash-aggregate kernel: per
// surviving fragment pair, the key and value images are acquired
// through the fragment cache and exactly ONE kernel launch plus ONE D2H
// (the fragment's group table) run on the stream — no selection vector
// or intermediate positions ever cross the bus. Value pieces whose zone
// maps exclude the predicate are pruned (both columns' bytes count as
// saved) before any device state exists; a fully-pruned scan opens no
// stream. Compressed value pieces aggregate from their resident
// compressed images; compressed KEY pieces are not supported on the
// device and fail with ErrBadColumn so the caller falls back to the
// host fused path.
func (d DeviceScan) GroupSumFloat64Where(keyCol, valCol int, keys, vals []Piece, p Pred[float64]) ([]GroupResult, error) {
	if err := checkGroupCols(keys, vals); err != nil {
		return nil, err
	}
	lo, hi, ok := ClosedFloat64(p)
	if !ok {
		return nil, fmt.Errorf("%w: predicate %v has no closed-interval form for the device kernel", ErrBadColumn, p.Op)
	}
	var keptK, keptV []Piece
	for i, vp := range vals {
		if vp.Vec.Len == 0 {
			continue
		}
		admit := zoneAdmitsFloat64(vp.Zone, p)
		NoteZoneDecision(admit, int64(keys[i].Vec.Len*keys[i].Vec.Size+vp.Vec.Len*vp.Vec.Size))
		if !admit {
			continue
		}
		if keys[i].Comp != nil {
			return nil, fmt.Errorf("%w: compressed group keys are host-only", ErrBadColumn)
		}
		keptK = append(keptK, keys[i])
		keptV = append(keptV, vp)
	}
	if len(keptV) == 0 {
		return nil, nil
	}
	sp := obsDeviceScan.Start()
	s := d.newStream()
	table := make(map[int64]*GroupResult)
	var releases []func()
	defer func() {
		s.Wait()
		for _, r := range releases {
			r()
		}
		sp.End()
	}()
	for i, vp := range keptV {
		keyVec, release, err := d.acquirePiece(s, keyCol, keptK[i])
		if err != nil {
			return nil, err
		}
		releases = append(releases, release)
		var parts []device.GroupPartial
		if vp.Comp != nil {
			buf, rel, err := d.acquireCompressed(s, valCol, vp)
			if err != nil {
				return nil, err
			}
			releases = append(releases, rel)
			parts, err = s.GroupReduceSumFloat64WhereCompressed(keyVec, buf, lo, hi, d.launchFor(vp.Comp.Len()))
			if err != nil {
				return nil, err
			}
		} else {
			valVec, rel, err := d.acquirePiece(s, valCol, vp)
			if err != nil {
				return nil, err
			}
			releases = append(releases, rel)
			parts, err = s.GroupReduceSumFloat64Where(keyVec, valVec, lo, hi, d.launchFor(valVec.Len))
			if err != nil {
				return nil, err
			}
		}
		for _, part := range parts {
			if gr, ok := table[part.Key]; ok {
				gr.Sum += part.Sum
				gr.Count += part.Count
			} else {
				table[part.Key] = &GroupResult{Key: part.Key, Sum: part.Sum, Count: part.Count}
			}
		}
	}
	out := make([]GroupResult, 0, len(table))
	for _, gr := range table {
		out = append(out, *gr)
	}
	SortGroupResults(out)
	return out, nil
}

// newStream opens the scan's command stream at the configured depth.
func (d DeviceScan) newStream() *device.Stream {
	if d.Stages > 0 {
		return d.GPU.NewStreamDepth(d.Stages)
	}
	return d.GPU.NewStream()
}
