package pool

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridstore/internal/obs"
)

func TestDefaultsFollowGOMAXPROCS(t *testing.T) {
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if Slots() != Workers()+1 {
		t.Fatalf("Slots() = %d, want Workers()+1", Slots())
	}
	if MorselSize() != DefaultMorselSize {
		t.Fatalf("MorselSize() = %d, want %d", MorselSize(), DefaultMorselSize)
	}
}

func TestSetWorkersAndMorselSize(t *testing.T) {
	defer SetWorkers(0)
	defer SetMorselSize(0)
	SetWorkers(3)
	if Workers() != 3 || Slots() != 4 {
		t.Fatalf("Workers/Slots = %d/%d, want 3/4", Workers(), Slots())
	}
	SetMorselSize(64)
	if MorselSize() != 64 {
		t.Fatalf("MorselSize = %d", MorselSize())
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetWorkers did not restore default")
	}
}

// TestSetWorkersClampsHugeValues pins the saturation fix: the target is
// stored as an int32, and a value above the ceiling used to wrap —
// possibly to a negative, silently reverting the pool to its default.
func TestSetWorkersClampsHugeValues(t *testing.T) {
	defer SetWorkers(0)
	defer SetMorselSize(0)
	SetWorkers(math.MaxInt)
	if got := Workers(); got != MaxWorkers {
		t.Fatalf("Workers() after huge SetWorkers = %d, want clamp to %d", got, MaxWorkers)
	}
	SetMorselSize(math.MaxInt)
	if got := MorselSize(); got != math.MaxInt32 {
		t.Fatalf("MorselSize() after huge SetMorselSize = %d, want clamp to %d", got, math.MaxInt32)
	}
	// The clamped values must behave, not just read back: a single-morsel
	// job still runs inline.
	ran := false
	Run(10, MorselSize(), Slots(), func(_, from, to int) { ran = from == 0 && to == 10 })
	if !ran {
		t.Fatal("clamped configuration did not execute")
	}
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSetWorkersGrowStartsEagerly pins the eager-growth fix: growing the
// pool used to only take effect at the next Run, so an in-flight job
// sized for the larger pool could never use the new workers.
func TestSetWorkersGrowStartsEagerly(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	waitUntil(t, "pool shrink to 1", func() bool { return RunningWorkers() == 1 })

	// A job sized for a 4-worker pool (5 slots), submitted while only one
	// worker exists. Every executor parks in fn until released.
	const slots, morsels = 5, 6
	release := make(chan struct{})
	var parked atomic.Int32
	done := make(chan struct{})
	go func() {
		Run(morsels, 1, slots, func(slot, from, to int) {
			parked.Add(1)
			<-release
		})
		close(done)
	}()

	// Submitter + the single worker claim one morsel each and park.
	waitUntil(t, "submitter and worker 0 to park", func() bool { return parked.Load() == 2 })

	// Grow: workers 1..3 must start eagerly and claim from the in-flight
	// job (their ids are inside its slot bound) without another Run.
	SetWorkers(4)
	if got := RunningWorkers(); got != 4 {
		t.Fatalf("RunningWorkers() right after grow = %d, want 4", got)
	}
	waitUntil(t, "grown workers to claim in-flight morsels", func() bool { return parked.Load() == 5 })

	close(release)
	<-done
}

// TestGetFloat64sRepoolsOnGrow pins the leak fix: when GetFloat64s
// fetches a pooled buffer too small for the requested length, that
// buffer must go back to the pool (it used to be dropped on the floor,
// so mixed small/large-slot query patterns churned allocations). The
// fingerprint: a buffer with the unusual capacity 7 is planted, a large
// request forces the grow path, and the planted buffer must still be
// obtainable afterwards. sync.Pool's per-P private slot makes the
// sequence deterministic in practice; a few attempts absorb scheduling
// noise.
func TestGetFloat64sRepoolsOnGrow(t *testing.T) {
	for attempt := 0; attempt < 50; attempt++ {
		PutFloat64s(make([]float64, 0, 7))
		PutFloat64s(GetFloat64s(1 << 16)) // fetches the cap-7 buffer, must re-pool it
		if cap(GetFloat64s(4)) == 7 {
			return
		}
	}
	t.Fatal("too-small scratch buffers are dropped by GetFloat64s instead of re-pooled")
}

func TestMorsels(t *testing.T) {
	cases := []struct{ total, morsel, want int }{
		{0, 64, 0}, {-3, 64, 0}, {1, 64, 1}, {64, 64, 1}, {65, 64, 2},
		{1000, 64, 16}, {10, 0, 1},
	}
	for _, c := range cases {
		if got := Morsels(c.total, c.morsel); got != c.want {
			t.Errorf("Morsels(%d, %d) = %d, want %d", c.total, c.morsel, got, c.want)
		}
	}
}

// TestRunCoversEveryPosition checks that a multi-morsel job touches each
// position exactly once and that every reported slot is in range.
func TestRunCoversEveryPosition(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	const total, morsel = 10_000, 64
	slots := Slots()
	seen := make([]int32, total)
	var badSlot atomic.Int32
	Run(total, morsel, slots, func(slot, from, to int) {
		if slot < 0 || slot >= slots {
			badSlot.Store(int32(slot) + 1)
		}
		for i := from; i < to; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	if s := badSlot.Load(); s != 0 {
		t.Fatalf("out-of-range slot %d", s-1)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("position %d executed %d times", i, n)
		}
	}
}

// TestRunSingleMorselInline checks the fast path: a job no larger than
// one morsel runs on the caller's goroutine in the submitter slot.
func TestRunSingleMorselInline(t *testing.T) {
	slots := Slots()
	var calls int
	var gotSlot int
	Run(150, DefaultMorselSize, slots, func(slot, from, to int) {
		calls++
		gotSlot = slot
		if from != 0 || to != 150 {
			t.Fatalf("range [%d,%d), want [0,150)", from, to)
		}
	})
	if calls != 1 || gotSlot != slots-1 {
		t.Fatalf("calls=%d slot=%d, want 1 call in submitter slot %d", calls, gotSlot, slots-1)
	}
}

// TestConcurrentJobsShareThePool hammers the pool with overlapping
// multi-morsel jobs from many goroutines.
func TestConcurrentJobsShareThePool(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	const queries = 24
	var wg sync.WaitGroup
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			total := 1_000 + q*97
			var sum atomic.Int64
			slots := Slots()
			Run(total, 32, slots, func(_, from, to int) {
				var s int64
				for i := from; i < to; i++ {
					s += int64(i)
				}
				sum.Add(s)
			})
			want := int64(total) * int64(total-1) / 2
			if sum.Load() != want {
				t.Errorf("query %d: sum=%d want %d", q, sum.Load(), want)
			}
		}(q)
	}
	wg.Wait()
}

// TestResizeUnderLoad shrinks and grows the pool while jobs run;
// in-flight jobs keep their slot bound so no slot ever exceeds it.
func TestResizeUnderLoad(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 2, 5, 3, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetWorkers(sizes[i%len(sizes)])
			}
		}
	}()
	for round := 0; round < 200; round++ {
		slots := Slots()
		var n atomic.Int64
		Run(4_096, 64, slots, func(slot, from, to int) {
			if slot < 0 || slot >= slots {
				panic("slot out of bound")
			}
			n.Add(int64(to - from))
		})
		if n.Load() != 4_096 {
			t.Fatalf("round %d: covered %d positions", round, n.Load())
		}
	}
	close(stop)
	wg.Wait()
}

// TestPoolMetricsAdvance checks the pool's obs reporting: inline and
// submitted job counts, full morsel accounting (submitter + stolen ==
// total morsels), and the queue-depth/worker gauges.
func TestPoolMetricsAdvance(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	before := obs.TakeSnapshot()

	// Single-morsel job: inline, no scheduling.
	Run(50, DefaultMorselSize, Slots(), func(_, _, _ int) {})
	// Multi-morsel job through the shared queues.
	const total, morsel = 10_000, 64
	Run(total, morsel, Slots(), func(_, _, _ int) {})

	if d := obs.TakeSnapshot().Counter("pool.jobs_inline") - before.Counter("pool.jobs_inline"); d != 1 {
		t.Fatalf("jobs_inline advanced by %d, want 1", d)
	}
	if d := obs.TakeSnapshot().Counter("pool.jobs_submitted") - before.Counter("pool.jobs_submitted"); d != 1 {
		t.Fatalf("jobs_submitted advanced by %d, want 1", d)
	}
	// Workers publish their stolen-morsel counts right after the job
	// drains, which can trail Run's return by an instant.
	want := int64(Morsels(total, morsel))
	waitUntil(t, "morsel accounting to settle", func() bool {
		s := obs.TakeSnapshot()
		got := s.Counter("pool.morsels_submitter") + s.Counter("pool.morsels_stolen") -
			before.Counter("pool.morsels_submitter") - before.Counter("pool.morsels_stolen")
		return got == want
	})
	s := obs.TakeSnapshot()
	if got := s.Gauge("pool.queue_depth"); got != 0 {
		t.Fatalf("queue_depth after drain = %d, want 0", got)
	}
	if got := s.Gauge("pool.workers"); got != 4 {
		t.Fatalf("workers gauge = %d, want 4", got)
	}
}

func TestPositionBufferRecycling(t *testing.T) {
	b := GetPositions()
	if len(b) != 0 {
		t.Fatalf("GetPositions len = %d", len(b))
	}
	b = append(b, 7, 8, 9)
	PutPositions(b)
	c := GetPositions()
	if len(c) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(c))
	}
	PutPositions(c)
	PutPositions(nil) // zero-cap buffers are dropped, not pooled
}

func TestFloatScratchZeroed(t *testing.T) {
	s := GetFloat64s(8)
	for i := range s {
		s[i] = float64(i) + 0.5
	}
	PutFloat64s(s)
	r := GetFloat64s(8)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled scratch not zeroed at %d: %v", i, v)
		}
	}
	PutFloat64s(r)
	big := GetFloat64s(1 << 12)
	if len(big) != 1<<12 {
		t.Fatalf("grow: len=%d", len(big))
	}
	for _, v := range big {
		if v != 0 {
			t.Fatal("grown scratch not zeroed")
		}
	}
	PutFloat64s(big)
}
